// Target generation: feed known-responsive seeds to the five generators
// (6Tree, 6Graph, 6GAN, 6VecLM, distance clustering), scan the candidates,
// and compare hit rates — the Section 6 workflow.
//
// Candidates stream straight from each generator into the scan engine
// (tga.NewSource → Scanner.StreamResponsiveFrom): the candidate list is
// never materialized, which is how the pipeline stays flat in memory at
// paper scale (6Graph alone proposes 125.8 M addresses there).
//
//	go run ./examples/target-generation
package main

import (
	"context"
	"fmt"
	"log"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/tga"
	"hitlist6/internal/tga/dc"
	"hitlist6/internal/tga/sixgan"
	"hitlist6/internal/tga/sixgraph"
	"hitlist6/internal/tga/sixtree"
	"hitlist6/internal/tga/sixveclm"
	"hitlist6/internal/worldgen"
)

func main() {
	world, err := worldgen.Generate(worldgen.Params{Seed: 5, Scale: 1.0 / 5000, TailASes: 40, ScanIntervalDays: 7})
	if err != nil {
		log.Fatal(err)
	}
	day := worldgen.EndDay

	// Seeds: a 60 % sample of the responsive hosts — a stand-in for the
	// hitlist's responsive set, which never covers everything; the
	// generators' job is to find the remainder.
	var seeds []ip6.Addr
	world.Net.WalkHosts(func(h *netmodel.Host) bool {
		if h.RespondsTo(netmodel.ICMP, day) && rng.Mix(h.Addr.Hi(), h.Addr.Lo(), 0x5eed)%10 < 6 {
			seeds = append(seeds, h.Addr)
		}
		return true
	})
	ip6.SortAddrs(seeds)
	fmt.Printf("%d responsive seeds\n\n", len(seeds))

	cfg := scan.DefaultConfig(5)
	cfg.LossRate = 0
	scanner := scan.New(world.Net, cfg)
	ctx := context.Background()

	gens := []tga.Streamer{
		sixgraph.New(sixgraph.DefaultConfig()),
		sixtree.New(sixtree.DefaultConfig()),
		dc.New(dc.DefaultConfig()),
		sixgan.New(sixgan.DefaultConfig()),
		sixveclm.New(sixveclm.DefaultConfig()),
	}
	fmt.Printf("%-8s %10s %12s %10s\n", "algo", "candidates", "responsive", "hit rate")
	for _, g := range gens {
		// Generate → probe without a candidate slice: the engine pulls
		// the generator's stream shard by shard.
		src := tga.NewSource(g, seeds, 40000)
		sets, _, err := scanner.StreamResponsiveFrom(ctx, src, []netmodel.Protocol{netmodel.ICMP}, day)
		if err != nil {
			log.Fatal(err)
		}
		hits := sets[netmodel.ICMP].Len()
		rate := 0.0
		if src.Emitted() > 0 {
			rate = 100 * float64(hits) / float64(src.Emitted())
		}
		fmt.Printf("%-8s %10d %12d %9.1f%%\n", g.Name(), src.Emitted(), hits, rate)
	}
	fmt.Println("\npaper shape: DC has the best hit rate; 6Graph/6Tree the most new addresses;")
	fmt.Println("6GAN/6VecLM contribute little (hit rates below the structural miners).")
}
