// Alias analysis: detect fully responsive prefixes with the multi-level
// APD, then look inside them with TCP fingerprints and the Too Big Trick —
// the Section 5 workflow distinguishing single-host aliases from CDN
// load-balancing fleets.
//
//	go run ./examples/alias-analysis
package main

import (
	"context"
	"fmt"
	"log"

	"hitlist6/internal/apd"
	"hitlist6/internal/fingerprint"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
	"hitlist6/internal/worldgen"
)

func main() {
	world, err := worldgen.Generate(worldgen.Params{Seed: 3, Scale: 1.0 / 10000, TailASes: 40, ScanIntervalDays: 7})
	if err != nil {
		log.Fatal(err)
	}
	scanner := scan.New(world.Net, scan.DefaultConfig(3))
	ctx := context.Background()
	day := worldgen.EndDay

	// Candidates straight from the BGP table (plus /64s would come from
	// input in the real pipeline).
	cfg := apd.DefaultConfig()
	candidates := apd.Candidates(world.Net.AS.AnnouncedPrefixes(), nil, cfg)
	det := apd.NewDetector(scanner, cfg)
	var res *apd.Result
	for i := 0; i < 3; i++ { // merge across rounds, as the service does
		res, err = det.Run(ctx, candidates, day+i)
		if err != nil {
			log.Fatal(err)
		}
	}
	aliased := res.Aliased.Prefixes()
	fmt.Printf("multi-level APD: %d aliased of %d candidates\n\n", len(aliased), len(candidates))

	// Examine up to six detected prefixes.
	shown := 0
	for _, p := range aliased {
		if shown == 6 {
			break
		}
		as := world.Net.AS.Lookup(p.Addr())
		name := "?"
		if as != nil {
			name = as.Name
		}
		samples, err := fingerprint.CollectTCP(ctx, scanner, p, 10, day)
		if err != nil {
			log.Fatal(err)
		}
		sum := fingerprint.Summarize(samples)
		world.Net.ResetPMTU()
		tbt := fingerprint.TooBigTrick(world.Net, p, day)
		fmt.Printf("%-28s %-18s fp: uniform=%-5v windowOnly=%-5v  TBT: %s (%d/%d fragmented)\n",
			p, name, sum.Uniform, sum.WindowOnly, tbt.Outcome, tbt.Fragmented, tbt.Tested)
		shown++
	}

	// The paper's suggestion: one address per fully responsive prefix is
	// still a valuable target.
	fmt.Println("\nprobing one random address per aliased prefix (Table 2 style):")
	per := map[netmodel.Protocol]int{}
	for _, p := range aliased {
		addr := p.NthAddr(1)
		for _, proto := range []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.UDP443, netmodel.UDP53} {
			if scanner.ProbeOne(addr, proto, day).Success {
				per[proto]++
			}
		}
	}
	for _, proto := range []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.UDP443, netmodel.UDP53} {
		fmt.Printf("  %-8s %d/%d prefixes\n", proto, per[proto], len(aliased))
	}
	_ = ip6.Addr{}
}
