// GFW cleaning: scan a Chinese network on UDP/53 during an injection era,
// show the forged answers, and clean them with the evidence-based filter —
// the Section 4 workflow of the paper.
//
//	go run ./examples/gfw-cleaning
package main

import (
	"fmt"
	"log"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/gfw"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/worldgen"
)

func main() {
	world, err := worldgen.Generate(worldgen.Params{Seed: 7, Scale: 1.0 / 10000, TailASes: 40, ScanIntervalDays: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Targets inside China Telecom Backbone (AS4134) during the Teredo
	// injection era. None of these addresses is a real host.
	cn := world.Net.AS.ByASN(4134).Announced[0]
	r := rng.NewStream(7, "example-gfw")
	day := worldgen.EndDay // era 3 is active

	cfg := scan.DefaultConfig(7)
	cfg.LossRate = 0
	s := scan.New(world.Net, cfg)

	fmt.Println("probing 5 unused addresses in AS4134 with AAAA? www.google.com:")
	var results []scan.Result
	for i := 0; i < 5; i++ {
		target := cn.RandomAddr(r)
		res := s.ProbeOne(target, netmodel.UDP53, day)
		results = append(results, res)
		fmt.Printf("\n%v → success=%v, %d response(s)\n", target, res.Success, len(res.DNS))
		for _, wire := range res.DNS {
			m, err := dnswire.Decode(wire)
			if err != nil {
				continue
			}
			for _, a := range m.Answers {
				note := ""
				if a.Type == dnswire.TypeAAAA && a.AAAA.IsTeredo() {
					client, _ := a.AAAA.TeredoClient()
					note = fmt.Sprintf("  ← Teredo! embedded IPv4 %v (not Google)", client)
				}
				fmt.Printf("  %s %s %v%s\n", a.Name, a.Type, answerValue(a), note)
			}
		}
	}

	// The filter sees exactly the same evidence.
	kept, injected := gfw.FilterResults(results)
	fmt.Printf("\ngfw filter: kept %d, removed %d injected results\n", len(kept), len(injected))

	// A domain we own draws no response at all — the paper's own-domain test.
	cfg2 := cfg
	cfg2.QName = "our-own-domain.example"
	s2 := scan.New(world.Net, cfg2)
	res := s2.ProbeOne(cn.RandomAddr(r), netmodel.UDP53, day)
	fmt.Printf("same probe for an unblocked domain: success=%v (silence, as observed)\n", res.Success)
}

func answerValue(a dnswire.RR) string {
	switch a.Type {
	case dnswire.TypeA:
		return a.A.String()
	case dnswire.TypeAAAA:
		return a.AAAA.String()
	}
	return a.Target
}
