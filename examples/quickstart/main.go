// Quickstart: build a small synthetic IPv6 Internet, run one hitlist scan
// cycle through the full pipeline, and print what came back.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hitlist6/internal/analysis"
	"hitlist6/internal/core"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

func main() {
	// A miniature world: 1/10000 of the paper's magnitudes.
	params := worldgen.Params{Seed: 1, Scale: 1.0 / 10000, TailASes: 60, ScanIntervalDays: 7}
	world, err := worldgen.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d ASes, %d hosts, %d aliased prefixes, %d domains\n",
		world.Net.AS.NumASes(), world.Net.NumHosts(),
		len(world.Net.AliasRules()), world.Registry.NumDomains())

	// Wire the input feeds (DNS resolutions, traceroutes, CPE artifacts,
	// the GFW feeder) and assemble the service.
	tracer := yarrp.New(world.Net, yarrp.Config{Seed: 1})
	feeds := world.BuildFeeds(tracer)
	cfg := core.DefaultConfig(1)
	svc := core.NewService(cfg, world.Net, feeds, world.Blocklist)

	// Run the first four weekly scans.
	ctx := context.Background()
	for _, day := range world.ScanDays[:4] {
		rec, err := svc.RunScan(ctx, day)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  input+%-6d scanned=%-6d responsive=%-5d (ICMP %d, TCP/80 %d, UDP/53 %d)  aliased=%d\n",
			netmodel.DateString(rec.Day), rec.NewInput, rec.ScannedTargets, rec.TotalClean,
			rec.ResponsiveClean[netmodel.ICMP], rec.ResponsiveClean[netmodel.TCP80],
			rec.ResponsiveClean[netmodel.UDP53], rec.AliasedPrefixes)
	}

	// Where do the responsive addresses live?
	last := svc.Records()[len(svc.Records())-1]
	fmt.Printf("\nafter %d scans: %s responsive addresses, funnel %+v\n",
		len(svc.Records()), analysis.Humanize(last.TotalClean), svc.Funnel())
}
