package main

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"os"
	"strconv"
	"time"

	"hitlist6/internal/core"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// timelineMain is -timeline mode: the full service pipeline over the
// scheduled scan days, one CSV row per scan (the exact rows hitlist6
// emits), with optional durability. With -ckpt the service runs its
// journaled chunked ingest and checkpoints after every -ckptevery scans;
// -resume restarts from the last finalized checkpoint, re-emits the CSV
// rows of every completed scan, and continues the schedule — so a run
// SIGKILLed anywhere and resumed produces byte-identical CSV to an
// uninterrupted one (the CI kill-and-resume job diffs them with cmp).
func timelineMain(scale float64, seed uint64, stride int, ckptDir string, ckptEvery, ckptFull int, resume bool, pause time.Duration) {
	if resume && ckptDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -ckpt")
		os.Exit(2)
	}
	if stride < 1 {
		stride = 1
	}

	wp := worldgen.TimelineParams(seed)
	wp.Scale = scale
	w, err := worldgen.Generate(wp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "generating world: %v\n", err)
		os.Exit(1)
	}
	feeds := w.BuildFeeds(yarrp.New(w.Net, yarrp.Config{Seed: seed}))

	cfg := core.DefaultConfig(seed)
	cfg.GFWFilterFromDay = netmodel.DayOf(2022, time.February, 7)
	cfg.CheckpointDir = ckptDir
	cfg.CheckpointEvery = ckptEvery
	cfg.CheckpointFullEvery = ckptFull

	var svc *core.Service
	if resume {
		svc, err = core.Resume(ckptDir, cfg, w.Net, feeds, w.Blocklist)
		if errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "no checkpoint at %s, starting fresh\n", ckptDir)
			svc = nil
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "resuming: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "resumed from %s: %d scans completed\n", ckptDir, len(svc.Records()))
		}
	}
	if svc == nil {
		svc = core.NewService(cfg, w.Net, feeds, w.Blocklist)
	}
	defer svc.Close()
	die := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format, a...)
		svc.Close()
		os.Exit(1)
	}

	out := csv.NewWriter(os.Stdout)
	defer out.Flush()
	header := []string{"date", "scanned", "new_input", "total_raw", "total_clean", "injected_dns",
		"first_resp", "resp_again", "unresp", "aliased_prefixes", "evicted"}
	for _, p := range netmodel.Protocols {
		header = append(header, "raw_"+p.String(), "clean_"+p.String())
	}
	if err := out.Write(header); err != nil {
		die("writing header: %v\n", err)
	}

	writeRow := func(rec *core.ScanRecord) {
		row := []string{
			netmodel.DateString(rec.Day),
			strconv.Itoa(rec.ScannedTargets),
			strconv.Itoa(rec.NewInput),
			strconv.Itoa(rec.TotalRaw),
			strconv.Itoa(rec.TotalClean),
			strconv.Itoa(rec.InjectedDNS),
			strconv.Itoa(rec.FirstResp),
			strconv.Itoa(rec.RespAgain),
			strconv.Itoa(rec.Unresp),
			strconv.Itoa(rec.AliasedPrefixes),
			strconv.Itoa(rec.Evicted),
		}
		for _, p := range netmodel.Protocols {
			row = append(row, strconv.Itoa(rec.ResponsiveRaw[p]), strconv.Itoa(rec.ResponsiveClean[p]))
		}
		if err := out.Write(row); err != nil {
			die("writing row: %v\n", err)
		}
		out.Flush()
	}

	// Re-emit the rows of every scan the checkpoint already completed:
	// the resumed run's CSV is the full series, byte-identical to an
	// uninterrupted run's (the interrupted run's partial output is
	// discarded by the caller).
	for _, rec := range svc.Records() {
		writeRow(rec)
	}

	ctx := context.Background()
	for i := len(svc.Records()) * stride; i < len(w.ScanDays); i += stride {
		rec, err := svc.RunScan(ctx, w.ScanDays[i])
		if err != nil {
			die("scan at day %d: %v\n", w.ScanDays[i], err)
		}
		writeRow(rec)
		if pause > 0 {
			time.Sleep(pause)
		}
	}

	f := svc.Funnel()
	fmt.Fprintf(os.Stderr, "funnel: input=%d blocked=%d gfw=%d aliased=%d evicted=%d active=%d responsive=%d\n",
		f.Input, f.Blocked, f.GFWFiltered, f.AliasedInput, f.Evicted, f.ActiveScan, f.Responsive)
}
