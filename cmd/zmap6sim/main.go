// Command zmap6sim scans targets in the synthetic Internet with the
// ZMapv6-style scanner and writes result CSV to stdout.
//
// Targets come from a file (one IPv6 address per line), a .hl6 binary
// hitlist (-hitlist, mmap-backed — the engine's probe workers pull each
// shard's run straight off disk, so hitlist-scale inputs scan with
// resident memory bounded by pull buffers, not input size), or, with
// -sample N, from a random sample of the world's announced space. Either
// way they reach the probe workers through a pull-based scan.TargetSource
// — no global target slice is ever built (pass -ordered, which must
// buffer the full result set anyway, to opt out).
//
// Results stream through the sharded scan engine and are written as
// batches complete — like real ZMap, output row order is arrival order,
// not input order (rows within a batch stay in probe order). Pass
// -ordered to buffer the full result set and emit input order instead.
// Pass -fleet N to run the scan as a fleet of N scanner nodes
// (internal/fleet): rows come out in canonical shard order, byte-
// identical to a `-workers 1 -sinkqueue 0` single-process run for any N,
// even with workers killed mid-scan via -fleetkill. A per-worker summary
// table (shards/steals/probes/ms) prints to stderr.
// -batchstats prints one stderr line per completed batch; -shardstats
// prints the full per-shard throughput table after the scan. -distinct
// additionally counts distinct responsive addresses; with -spill DIR the
// counting set spills sorted runs under -membudget MiB of resident
// memory, so even a scan with hundreds of millions of responders stays
// budget-bounded.
//
// -cpuprofile and -memprofile write pprof profiles of the scan (the CPU
// profile starts after world generation), so probe-hot-path regressions
// are diagnosable against a real scan shape without editing benchmarks.
//
// -serve ADDR attaches the hitlist-as-a-service layer after the scan:
// the distinct-responder set (implies -distinct) freezes into a
// serve.Snapshot answered over DNS on ADDR until SIGINT/SIGTERM. The
// signal exit runs the same cleanup chain as a normal exit, so
// -cpuprofile flushes a valid profile either way.
//
// Usage:
//
//	zmap6sim -targets addrs.txt -protocols ICMP,UDP/53 -day 1376 > scan.csv
//	zmap6sim -hitlist targets.hl6 -spill /tmp/spill -membudget 64 > scan.csv
//	zmap6sim -sample 10000 -batchstats > scan.csv
//	zmap6sim -sample 100000 -cpuprofile cpu.out -memprofile mem.out > /dev/null
//	zmap6sim -sample 100000 -serve :5353 > scan.csv
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"hitlist6/internal/fleet"
	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/serve"
	"hitlist6/internal/worldgen"
)

// lineSource streams a target file line by line as a scan.TargetSource:
// the file is parsed at pull pace and never held in memory.
type lineSource struct {
	f  *os.File
	sc *bufio.Scanner
}

func openLineSource(path string) (*lineSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &lineSource{f: f, sc: bufio.NewScanner(f)}, nil
}

func (s *lineSource) Next(buf []ip6.Addr) (int, error) {
	n := 0
	for n < len(buf) {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return n, fmt.Errorf("reading targets: %w", err)
			}
			return n, io.EOF
		}
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ip6.ParseAddr(line)
		if err != nil {
			return n, err
		}
		buf[n] = a
		n++
	}
	return n, nil
}

func (s *lineSource) Close() error { return s.f.Close() }

// sampleSource draws N random addresses from the announced space on
// demand — the deterministic stream equals the former materialized
// sample exactly (same rng stream, same draw order).
type sampleSource struct {
	r        *rng.Stream
	prefixes []ip6.Prefix
	left     int
}

func (s *sampleSource) Next(buf []ip6.Addr) (int, error) {
	n := 0
	for n < len(buf) && s.left > 0 {
		buf[n] = s.prefixes[s.r.Intn(len(s.prefixes))].RandomAddr(s.r)
		n++
		s.left--
	}
	if s.left == 0 {
		return n, io.EOF
	}
	return n, nil
}

func main() {
	var (
		targetsFile = flag.String("targets", "", "file with one IPv6 address per line")
		hitlist     = flag.String("hitlist", "", "binary .hl6 hitlist file to scan (mmap-backed, sharded)")
		sample      = flag.Int("sample", 0, "scan N random addresses from announced space instead")
		distinct    = flag.Bool("distinct", false, "count distinct responsive addresses (resident set unless -spill)")
		spillDir    = flag.String("spill", "", "spill directory for the distinct-responder set (implies -distinct)")
		memBudget   = flag.Int("membudget", 64, "resident budget in MiB for the spilled distinct set")
		protocols   = flag.String("protocols", "ICMP,TCP/443,TCP/80,UDP/443,UDP/53", "comma-separated protocol list")
		day         = flag.Int("day", worldgen.EndDay, "simulation day of the scan")
		scale       = flag.Float64("scale", 1.0/500, "world scale")
		seed        = flag.Uint64("seed", 42, "world seed")
		loss        = flag.Float64("loss", 0.01, "per-probe loss rate")
		retries     = flag.Int("retries", 1, "probe retransmissions")
		qname       = flag.String("qname", "www.google.com", "DNS probe question")
		workers     = flag.Int("workers", 0, "probe concurrency (0 = GOMAXPROCS)")
		batchSize   = flag.Int("batch", 0, "streamed batch size (0 = default)")
		chunk       = flag.Int("chunk", 0, "target-source pull chunk size (0 = default)")
		sinkQueue   = flag.Int("sinkqueue", 8, "bounded CSV delivery queue depth (0 = write inline on probe workers)")
		ordered     = flag.Bool("ordered", false, "buffer results and write in input order")
		fleetN      = flag.Int("fleet", 0, "run the scan as a fleet of N scanner nodes; CSV comes out in canonical shard order, byte-identical to -workers 1 -sinkqueue 0")
		fleetKill   = flag.String("fleetkill", "", "comma-separated fleet worker indices to kill at their first fault point (recovery drill; leave at least one survivor)")
		batchStats  = flag.Bool("batchstats", false, "print per-batch throughput to stderr")
		shardStats  = flag.Bool("shardstats", false, "print the full per-shard throughput table to stderr")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the scan to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile (taken after the scan) to this file")
		serveAddr   = flag.String("serve", "", "after the scan, answer liveness queries for the distinct-responder set over DNS on this UDP address until SIGINT/SIGTERM (implies -distinct)")
		serveZone   = flag.String("servezone", "hitlist6.serve", "DNS zone for -serve")
		timeline    = flag.Bool("timeline", false, "run the full service timeline (one hitlist6-style CSV row per scan) instead of one scan")
		stride      = flag.Int("stride", 1, "-timeline: run every N-th scheduled scan")
		ckptDir     = flag.String("ckpt", "", "-timeline: checkpoint directory (enables journaled ingest and checkpoints)")
		ckptEvery   = flag.Int("ckptevery", 1, "-timeline: checkpoint after every Nth scan (0 = journaled ingest only)")
		ckptFull    = flag.Int("ckptfull", 0, "-timeline: full (compaction) checkpoint every Nth checkpoint, deltas in between (0 = default cadence, 1 = every checkpoint full)")
		resume      = flag.Bool("resume", false, "-timeline: resume from the checkpoint in -ckpt, re-emitting completed rows")
		pause       = flag.Duration("pause", 0, "-timeline: pause between scans")
	)
	flag.Parse()
	if *timeline {
		timelineMain(*scale, *seed, *stride, *ckptDir, *ckptEvery, *ckptFull, *resume, *pause)
		return
	}
	if *serveAddr != "" && *spillDir == "" {
		*distinct = true
	}

	wp := worldgen.TimelineParams(*seed)
	wp.Scale = *scale
	w, err := worldgen.Generate(wp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "generating world: %v\n", err)
		os.Exit(1)
	}

	var protos []netmodel.Protocol
	for _, s := range strings.Split(*protocols, ",") {
		p, err := netmodel.ParseProtocol(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		protos = append(protos, p)
	}

	var src scan.TargetSource
	switch {
	case *hitlist != "":
		hs, err := hlfile.OpenSource(*hitlist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening hitlist: %v\n", err)
			os.Exit(1)
		}
		src = hs
	case *targetsFile != "":
		ls, err := openLineSource(*targetsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening targets: %v\n", err)
			os.Exit(1)
		}
		src = ls
	case *sample > 0:
		src = &sampleSource{
			r:        rng.NewStream(*seed, "zmap6sim-sample"),
			prefixes: w.Net.AS.AnnouncedPrefixes(),
			left:     *sample,
		}
	default:
		fmt.Fprintln(os.Stderr, "need -targets, -hitlist or -sample")
		os.Exit(2)
	}

	// Distinct-responder accounting: a resident set by default, a
	// disk-spilling one under -spill so the counting memory is bounded by
	// -membudget rather than the responder count. cleanup releases the
	// scratch file; die routes error exits through it so a failed scan
	// never leaves multi-GB run files in the user's spill directory
	// (os.Exit skips defers).
	var responders ip6.SpillableSet
	var spillSet *ip6.SpillSet
	cleanup := func() {}
	if *spillDir != "" {
		budget := int64(*memBudget) << 20 / ip6.AddrBytes / ip6.AddrShards
		ss, err := ip6.NewSpillSet(*spillDir, int(budget))
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating spill set: %v\n", err)
			os.Exit(1)
		}
		cleanup = func() { ss.Close() }
		spillSet = ss
		responders = ss
	} else if *distinct {
		responders = ip6.NewShardedSet()
	}
	die := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format, a...)
		cleanup()
		os.Exit(1)
	}

	cfg := scan.DefaultConfig(*seed)
	cfg.LossRate = *loss
	cfg.Retries = *retries
	cfg.QName = *qname
	cfg.Workers = *workers
	cfg.BatchSize = *batchSize
	cfg.SourceChunk = *chunk
	cfg.SinkQueueDepth = *sinkQueue
	s := scan.New(w.Net, cfg)

	// Profiling hooks: probe-hot-path regressions are easiest to diagnose
	// against a real scan shape, so the scan loop is profiled right here
	// instead of by editing benchmarks. The CPU profile starts after
	// world generation — the scan is what the flag is for — and is
	// flushed through the cleanup chain so error exits keep it too.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			die("creating cpu profile: %v\n", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die("starting cpu profile: %v\n", err)
		}
		prev := cleanup
		cleanup = func() {
			pprof.StopCPUProfile()
			f.Close()
			prev()
		}
	}
	writeMemProfile := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating mem profile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // surface live heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "writing mem profile: %v\n", err)
		}
	}

	out, err := scan.NewWriter(os.Stdout)
	if err != nil {
		die("%v\n", err)
	}

	var stats scan.Stats
	var fleetRes *fleet.Result
	ctx := context.Background()
	if *fleetN > 0 {
		// Fleet mode: N scanner nodes split the 64 shards, each shard's
		// rows buffer in a per-shard body and the bodies concatenate in
		// canonical shard order — byte-identical to a single-process
		// `-workers 1 -sinkqueue 0` run regardless of node count, steals,
		// or killed workers.
		if *ordered {
			die("-fleet is incompatible with -ordered\n")
		}
		shSrc, ok := src.(scan.ShardedSource)
		if !ok {
			// Line and sample sources are plain streams; shard them by
			// materializing (the same trade -ordered makes).
			targets, err := scan.Collect(src)
			if err != nil {
				die("collecting targets: %v\n", err)
			}
			shSrc = scan.SliceSource(targets).(scan.ShardedSource)
		}
		fcfg := fleet.Config{Workers: *fleetN, Scan: cfg}
		if *fleetKill != "" {
			kill := make(map[int]bool)
			for _, f := range strings.Split(*fleetKill, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					die("parsing -fleetkill: %v\n", err)
				}
				kill[n] = true
			}
			fcfg.FaultHook = func(p fleet.FaultPoint) error {
				if kill[p.Worker] {
					return fleet.ErrWorkerKilled
				}
				return nil
			}
		}
		coord := fleet.New(w.Net, fcfg)
		var (
			mu   sync.Mutex // batch-stats stderr lines only
			bufs [ip6.AddrShards]bytes.Buffer
			ws   [ip6.AddrShards]*scan.Writer
		)
		res, err := coord.Scan(ctx, shSrc, protos, *day, func(b *scan.Batch) error {
			// Same-shard sink calls are sequential, so the per-shard
			// writer slots need no locking.
			if ws[b.Shard] == nil {
				ws[b.Shard] = scan.NewBodyWriter(&bufs[b.Shard])
			}
			for _, r := range b.Results {
				if responders != nil && r.Success {
					responders.AddToShard(b.Shard, r.Target)
				}
				if err := ws[b.Shard].Write(r); err != nil {
					return err
				}
			}
			if *batchStats {
				mu.Lock()
				fmt.Fprintf(os.Stderr, "batch shard=%d seq=%d results=%d probes=%d responses=%d successes=%d\n",
					b.Shard, b.Seq, len(b.Results), b.Stats.ProbesSent, b.Stats.Responses, b.Stats.Successes)
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			die("scanning: %v\n", err)
		}
		// Concurrent AddToShard rules out the streaming path's periodic
		// compaction; one pass here bounds the run fan-in just the same.
		if spillSet != nil {
			if err := spillSet.Compact(); err != nil {
				die("compacting spill set: %v\n", err)
			}
		}
		stats = res.Stats
		fleetRes = &res
		if err := out.Flush(); err != nil { // header row
			die("%v\n", err)
		}
		for sh := 0; sh < ip6.AddrShards; sh++ {
			if ws[sh] == nil {
				continue
			}
			if err := ws[sh].Flush(); err != nil {
				die("%v\n", err)
			}
			if _, err := os.Stdout.Write(bufs[sh].Bytes()); err != nil {
				die("%v\n", err)
			}
		}
	} else if *ordered {
		// Input-order output requires the full result cross product, and
		// therefore the materialized target list.
		targets, err := scan.Collect(src)
		if err != nil {
			die("collecting targets: %v\n", err)
		}
		results, st, err := s.Scan(ctx, targets, protos, *day)
		if err != nil {
			die("scanning: %v\n", err)
		}
		stats = st
		for _, r := range results {
			if responders != nil && r.Success {
				responders.Add(r.Target)
			}
			if err := out.Write(r); err != nil {
				die("%v\n", err)
			}
		}
		if spillSet != nil {
			if err := spillSet.Compact(); err != nil {
				die("compacting spill set: %v\n", err)
			}
		}
	} else {
		// Targets flow source → router → probe workers → CSV, all
		// streaming. With the default bounded sink queue, one delivery
		// goroutine writes CSV while probe workers run ahead (and block
		// on the full queue instead of on stdout — backpressure, not
		// serialization). -sinkqueue 0 falls back to inline sink calls
		// from many workers at once. The mutex covers both modes; it is
		// uncontended when the delivery goroutine is the only caller.
		var mu sync.Mutex
		batches := 0
		st, err := s.StreamFrom(ctx, src, protos, *day, func(b *scan.Batch) error {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range b.Results {
				if responders != nil && r.Success {
					responders.AddToShard(b.Shard, r.Target)
				}
				if err := out.Write(r); err != nil {
					return err
				}
			}
			// Periodic compaction keeps the spill set's per-shard run
			// fan-in near 1, so membership probes stay one fence lookup
			// instead of degrading with every frozen run. Safe here: the
			// mutex serializes all AddToShard calls with the compactor.
			if spillSet != nil {
				if batches++; batches%1024 == 0 {
					if err := spillSet.Compact(); err != nil {
						return err
					}
				}
			}
			if *batchStats {
				fmt.Fprintf(os.Stderr, "batch shard=%d seq=%d results=%d probes=%d responses=%d successes=%d\n",
					b.Shard, b.Seq, len(b.Results), b.Stats.ProbesSent, b.Stats.Responses, b.Stats.Successes)
			}
			return nil
		})
		if err != nil {
			die("scanning: %v\n", err)
		}
		stats = st
	}
	if err := out.Flush(); err != nil {
		die("%v\n", err)
	}
	fmt.Fprintf(os.Stderr, "probes=%d responses=%d successes=%d batches=%d est-duration=%.1fs\n",
		stats.ProbesSent, stats.Responses, stats.Successes, stats.Batches, stats.EstimatedSeconds)
	if responders != nil {
		if spillSet != nil {
			if err := spillSet.Err(); err != nil {
				die("spill set: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "distinct-responsive=%d spilled-runs=%d spilled-bytes=%d\n",
				spillSet.Len(), spillSet.FrozenRuns(), spillSet.SpilledBytes())
		} else {
			fmt.Fprintf(os.Stderr, "distinct-responsive=%d\n", responders.Len())
		}
	}
	printShardSummary(os.Stderr, stats.PerShard, *shardStats)
	if fleetRes != nil {
		printFleetSummary(os.Stderr, *fleetRes)
	}
	// -serve attach mode: freeze the responder set into a snapshot and
	// answer DNS liveness queries until a signal arrives. The signal only
	// breaks the wait — the function still falls through to the shared
	// exit tail below, so the cleanup chain (CPU profile flush, spill
	// scratch release) runs exactly as on a plain exit.
	if *serveAddr != "" {
		conn, err := net.ListenPacket("udp", *serveAddr)
		if err != nil {
			die("listening for -serve: %v\n", err)
		}
		var shards [ip6.AddrShards][]ip6.Addr
		for sh := 0; sh < ip6.AddrShards; sh++ {
			responders.WalkShard(sh, func(a ip6.Addr) bool {
				shards[sh] = append(shards[sh], a)
				return true
			})
			ip6.SortAddrs(shards[sh])
		}
		h := serve.NewHandle()
		var perProto [netmodel.NumProtocols]*ip6.SortedShardSet
		h.Publish(serve.NewSnapshot(*day, ip6.SortedFromShards(shards), perProto, nil, nil))
		responder := serve.NewDNSResponder(h, *serveZone)
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				if err := serve.ServeUDP(conn, responder); err != nil {
					fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				}
			}()
		}
		fmt.Fprintf(os.Stderr, "serving %d distinct responders over DNS on %s zone %s\n",
			responders.Len(), conn.LocalAddr(), responder.Zone())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		conn.Close()
	}
	writeMemProfile()
	cleanup()
}

// printFleetSummary renders the per-worker fleet table: shard counts,
// steals, probes, probe wall-clock and survival status.
func printFleetSummary(w io.Writer, res fleet.Result) {
	fmt.Fprintf(w, "fleet: workers=%d reissued=%d\n", len(res.Workers), res.Reissued)
	fmt.Fprintf(w, "%6s %8s %8s %12s %10s  %s\n", "worker", "shards", "steals", "probes", "ms", "status")
	for i, ws := range res.Workers {
		status := "ok"
		if ws.Failed {
			status = "killed"
		}
		fmt.Fprintf(w, "%6d %8d %8d %12d %10.2f  %s\n",
			i, ws.Shards, ws.Steals, ws.Probes, float64(ws.Nanos)/1e6, status)
	}
}

// printShardSummary renders the engine's per-shard throughput: always a
// one-line spread summary (the raw signal for adaptive rate control),
// and with full=true the whole table for active shards.
func printShardSummary(w io.Writer, shards []scan.ShardStats, full bool) {
	if len(shards) == 0 {
		return
	}
	type row struct {
		shard int
		s     scan.ShardStats
	}
	var active []row
	for i, s := range shards {
		if s.ProbesSent > 0 {
			active = append(active, row{i, s})
		}
	}
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool { return active[i].s.ProbesSent > active[j].s.ProbesSent })
	var probes uint64
	var nanos int64
	for _, r := range active {
		probes += r.s.ProbesSent
		nanos += r.s.Nanos
	}
	busiest, laziest := active[0], active[len(active)-1]
	fmt.Fprintf(w, "shards: active=%d/%d probes avg=%d max=%d (shard %d) min=%d (shard %d) probe-time=%.1fms\n",
		len(active), len(shards), probes/uint64(len(active)),
		busiest.s.ProbesSent, busiest.shard, laziest.s.ProbesSent, laziest.shard,
		float64(nanos)/1e6)
	if !full {
		return
	}
	fmt.Fprintf(w, "%6s %10s %10s %10s %8s %10s\n", "shard", "probes", "responses", "successes", "batches", "ms")
	sort.Slice(active, func(i, j int) bool { return active[i].shard < active[j].shard })
	for _, r := range active {
		fmt.Fprintf(w, "%6d %10d %10d %10d %8d %10.2f\n",
			r.shard, r.s.ProbesSent, r.s.Responses, r.s.Successes, r.s.Batches, float64(r.s.Nanos)/1e6)
	}
}
