// Command zmap6sim scans targets in the synthetic Internet with the
// ZMapv6-style scanner and writes result CSV to stdout.
//
// Targets come from a file (one IPv6 address per line) or, with
// -sample N, from a random sample of the world's announced space.
//
// Results stream through the sharded scan engine and are written as
// batches complete — like real ZMap, output row order is arrival order,
// not input order (rows within a batch stay in probe order). Pass
// -ordered to buffer the full result set and emit input order instead.
// -batchstats prints one stderr line per completed batch.
//
// Usage:
//
//	zmap6sim -targets addrs.txt -protocols ICMP,UDP/53 -day 1376 > scan.csv
//	zmap6sim -sample 10000 -batchstats > scan.csv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/worldgen"
)

func main() {
	var (
		targetsFile = flag.String("targets", "", "file with one IPv6 address per line")
		sample      = flag.Int("sample", 0, "scan N random addresses from announced space instead")
		protocols   = flag.String("protocols", "ICMP,TCP/443,TCP/80,UDP/443,UDP/53", "comma-separated protocol list")
		day         = flag.Int("day", worldgen.EndDay, "simulation day of the scan")
		scale       = flag.Float64("scale", 1.0/500, "world scale")
		seed        = flag.Uint64("seed", 42, "world seed")
		loss        = flag.Float64("loss", 0.01, "per-probe loss rate")
		retries     = flag.Int("retries", 1, "probe retransmissions")
		qname       = flag.String("qname", "www.google.com", "DNS probe question")
		workers     = flag.Int("workers", 0, "probe concurrency (0 = GOMAXPROCS)")
		batchSize   = flag.Int("batch", 0, "streamed batch size (0 = default)")
		sinkQueue   = flag.Int("sinkqueue", 8, "bounded CSV delivery queue depth (0 = write inline on probe workers)")
		ordered     = flag.Bool("ordered", false, "buffer results and write in input order")
		batchStats  = flag.Bool("batchstats", false, "print per-batch throughput to stderr")
	)
	flag.Parse()

	wp := worldgen.TimelineParams(*seed)
	wp.Scale = *scale
	w, err := worldgen.Generate(wp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "generating world: %v\n", err)
		os.Exit(1)
	}

	var protos []netmodel.Protocol
	for _, s := range strings.Split(*protocols, ",") {
		p, err := netmodel.ParseProtocol(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		protos = append(protos, p)
	}

	var targets []ip6.Addr
	switch {
	case *targetsFile != "":
		f, err := os.Open(*targetsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening targets: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			a, err := ip6.ParseAddr(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(2)
			}
			targets = append(targets, a)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "reading targets: %v\n", err)
			os.Exit(1)
		}
	case *sample > 0:
		r := rng.NewStream(*seed, "zmap6sim-sample")
		prefixes := w.Net.AS.AnnouncedPrefixes()
		for i := 0; i < *sample; i++ {
			targets = append(targets, prefixes[r.Intn(len(prefixes))].RandomAddr(r))
		}
	default:
		fmt.Fprintln(os.Stderr, "need -targets or -sample")
		os.Exit(2)
	}

	cfg := scan.DefaultConfig(*seed)
	cfg.LossRate = *loss
	cfg.Retries = *retries
	cfg.QName = *qname
	cfg.Workers = *workers
	cfg.BatchSize = *batchSize
	cfg.SinkQueueDepth = *sinkQueue
	s := scan.New(w.Net, cfg)

	out, err := scan.NewWriter(os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}

	var stats scan.Stats
	ctx := context.Background()
	if *ordered {
		results, st, err := s.Scan(ctx, targets, protos, *day)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scanning: %v\n", err)
			os.Exit(1)
		}
		stats = st
		for _, r := range results {
			if err := out.Write(r); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
		}
	} else {
		// With the default bounded sink queue, one delivery goroutine
		// writes CSV while probe workers run ahead (and block on the full
		// queue instead of on stdout — backpressure, not serialization).
		// -sinkqueue 0 falls back to inline sink calls from many workers
		// at once. The mutex covers both modes; it is uncontended when
		// the delivery goroutine is the only caller.
		var mu sync.Mutex
		st, err := s.Stream(ctx, targets, protos, *day, func(b *scan.Batch) error {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range b.Results {
				if err := out.Write(r); err != nil {
					return err
				}
			}
			if *batchStats {
				fmt.Fprintf(os.Stderr, "batch shard=%d seq=%d results=%d probes=%d responses=%d successes=%d\n",
					b.Shard, b.Seq, len(b.Results), b.Stats.ProbesSent, b.Stats.Responses, b.Stats.Successes)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scanning: %v\n", err)
			os.Exit(1)
		}
		stats = st
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "probes=%d responses=%d successes=%d batches=%d est-duration=%.1fs\n",
		stats.ProbesSent, stats.Responses, stats.Successes, stats.Batches, stats.EstimatedSeconds)
}
