// Command benchdiff compares two `go test -bench` outputs — a committed
// baseline and a fresh run — and renders a benchstat-style delta table
// for ns/op, B/op and allocs/op, so performance regressions surface in
// CI logs and pull requests.
//
// Usage:
//
//	benchdiff [-threshold PCT] baseline.txt current.txt
//
// With -threshold >= 0, the exit status is non-zero when any benchmark's
// ns/op or B/op regresses by more than PCT percent — the CI gate mode,
// where the bench artifact diff fails loudly instead of only reporting.
// The default (-1) reports without failing. -max-regress is the
// deprecated alias of -threshold.
//
// Benchmarks missing from the baseline are additions, not regressions:
// they are listed in the table, summarized as a warning on stderr, and
// never fail the gate — the reminder to refresh bench-baseline.txt, not
// a build breaker. Benchmarks missing from the current run are reported
// the same way (a deleted bench should also come with a baseline
// refresh).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type row struct {
	ns, bytes, allocs float64
	hasNS, hasB, hasA bool
	// extras holds per-benchmark custom metrics (b.ReportMetric units
	// like qps, results/s or steals) keyed by unit. They are
	// informational: printed under the benchmark's row and summarized
	// with the geomean line, never gated on — custom units carry no
	// universal better/worse direction.
	extras map[string]float64
}

func parseBench(path string) (map[string]row, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rows := make(map[string]row)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -GOMAXPROCS suffix so runs from different machines
		// line up.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := rows[name]
		if _, ok := rows[name]; !ok {
			order = append(order, name)
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.ns, r.hasNS = v, true
			case "B/op":
				r.bytes, r.hasB = v, true
			case "allocs/op":
				r.allocs, r.hasA = v, true
			default:
				if r.extras == nil {
					r.extras = make(map[string]float64)
				}
				r.extras[fields[i+1]] = v
			}
		}
		rows[name] = r
	}
	return rows, order, sc.Err()
}

func delta(base, cur float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-base)/base)
}

func main() {
	threshold := flag.Float64("threshold", -1,
		"fail when ns/op or B/op regresses by more than this percentage (-1 = report only)")
	maxRegress := flag.Float64("max-regress", -1,
		"deprecated alias of -threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] baseline.txt current.txt")
		os.Exit(2)
	}
	if *threshold < 0 {
		threshold = maxRegress
	}
	base, _, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, order, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-34s %26s %26s %26s\n", "benchmark", "ns/op (base→cur Δ)", "B/op (base→cur Δ)", "allocs/op (base→cur Δ)")
	failed := false
	var added []string
	// Geomean of the per-benchmark ns/op ratios: the one-line trajectory
	// summary (negative = faster overall) printed under the table.
	var logSum float64
	logN := 0
	// Per-unit geomeans of the custom metrics, reported alongside.
	extraLog := make(map[string]float64)
	extraN := make(map[string]int)
	for _, name := range order {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			// Missing from the baseline: an addition, never a failure.
			added = append(added, name)
			fmt.Fprintf(w, "%-34s %26s\n", strings.TrimPrefix(name, "Benchmark"), "(new benchmark)")
			continue
		}
		cell := func(has bool, bv, cv float64) string {
			if !has {
				return "-"
			}
			return fmt.Sprintf("%.3g→%.3g %s", bv, cv, delta(bv, cv))
		}
		if b.hasNS && c.hasNS && b.ns > 0 && c.ns > 0 {
			logSum += math.Log(c.ns / b.ns)
			logN++
		}
		mark := ""
		if *threshold >= 0 && b.hasNS && c.hasNS && b.ns > 0 &&
			(100*(c.ns-b.ns)/b.ns > *threshold || (b.hasB && c.hasB && b.bytes > 0 && 100*(c.bytes-b.bytes)/b.bytes > *threshold)) {
			mark = "  <-- REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-34s %26s %26s %26s%s\n", strings.TrimPrefix(name, "Benchmark"),
			cell(b.hasNS && c.hasNS, b.ns, c.ns),
			cell(b.hasB && c.hasB, b.bytes, c.bytes),
			cell(b.hasA && c.hasA, b.allocs, c.allocs), mark)
		// Custom metrics ride along informationally under the row; a unit
		// present on only one side still prints, with "-" for the other.
		if len(b.extras) > 0 || len(c.extras) > 0 {
			units := make(map[string]bool)
			for u := range b.extras {
				units[u] = true
			}
			for u := range c.extras {
				units[u] = true
			}
			sorted := make([]string, 0, len(units))
			for u := range units {
				sorted = append(sorted, u)
			}
			sort.Strings(sorted)
			parts := make([]string, 0, len(sorted))
			for _, u := range sorted {
				bv, bok := b.extras[u]
				cv, cok := c.extras[u]
				switch {
				case bok && cok:
					parts = append(parts, fmt.Sprintf("%s %.3g→%.3g %s", u, bv, cv, delta(bv, cv)))
					if bv > 0 && cv > 0 {
						extraLog[u] += math.Log(cv / bv)
						extraN[u]++
					}
				case cok:
					parts = append(parts, fmt.Sprintf("%s -→%.3g", u, cv))
				default:
					parts = append(parts, fmt.Sprintf("%s %.3g→-", u, bv))
				}
			}
			fmt.Fprintf(w, "%-34s   metrics: %s\n", "", strings.Join(parts, ", "))
		}
	}
	var gone []string
	for name := range base {
		if _, ok := cur[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-34s %26s\n", strings.TrimPrefix(name, "Benchmark"), "(missing from current)")
	}
	if logN > 0 {
		summary := ""
		if len(extraN) > 0 {
			units := make([]string, 0, len(extraN))
			for u := range extraN {
				units = append(units, u)
			}
			sort.Strings(units)
			parts := make([]string, 0, len(units))
			for _, u := range units {
				parts = append(parts, fmt.Sprintf("%s %+.1f%%", u,
					100*(math.Exp(extraLog[u]/float64(extraN[u]))-1)))
			}
			summary = fmt.Sprintf("; metrics (informational): %s", strings.Join(parts, ", "))
		}
		fmt.Fprintf(w, "geomean ns/op delta: %+.1f%% across %d benchmark(s)%s\n",
			100*(math.Exp(logSum/float64(logN))-1), logN, summary)
	}
	if len(added) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %d benchmark(s) missing from the baseline (treated as additions, not failures): %s — refresh bench-baseline.txt\n",
			len(added), strings.Join(added, ", "))
	}
	if len(gone) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %d benchmark(s) missing from the current run: %s\n",
			len(gone), strings.Join(gone, ", "))
	}
	if failed {
		w.Flush()
		os.Exit(1)
	}
}
