// Command tgen runs a target generation algorithm over a seed file and
// prints the candidate addresses.
//
// Usage:
//
//	tgen -algo 6graph -budget 100000 < seeds.txt > candidates.txt
//	tgen -algo dc -min-cluster 10 -max-gap 64 < seeds.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
	"hitlist6/internal/tga/dc"
	"hitlist6/internal/tga/sixgan"
	"hitlist6/internal/tga/sixgraph"
	"hitlist6/internal/tga/sixtree"
	"hitlist6/internal/tga/sixveclm"
)

func main() {
	var (
		algo       = flag.String("algo", "6graph", "6tree|6graph|6gan|6veclm|dc")
		budget     = flag.Int("budget", 100000, "max candidates to generate")
		seed       = flag.Uint64("seed", 6, "sampling seed (6gan/6veclm)")
		minCluster = flag.Int("min-cluster", 10, "dc: minimum cluster size")
		maxGap     = flag.Uint64("max-gap", 64, "dc: maximum member distance")
	)
	flag.Parse()

	var seeds []ip6.Addr
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ip6.ParseAddr(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		seeds = append(seeds, a)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "reading seeds: %v\n", err)
		os.Exit(1)
	}
	if len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "no seeds on stdin")
		os.Exit(2)
	}

	var g tga.ViewStreamer
	switch *algo {
	case "6tree":
		g = sixtree.New(sixtree.DefaultConfig())
	case "6graph":
		g = sixgraph.New(sixgraph.DefaultConfig())
	case "6gan":
		cfg := sixgan.DefaultConfig()
		cfg.Seed = *seed
		g = sixgan.New(cfg)
	case "6veclm":
		cfg := sixveclm.DefaultConfig()
		cfg.Seed = *seed
		g = sixveclm.New(cfg)
	case "dc":
		g = dc.New(dc.Config{MinClusterSize: *minCluster, MaxGap: *maxGap, MaxFill: 4096})
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	// Stream candidates as the generator emits them instead of
	// materializing the full list: the seed view is built once, and each
	// candidate goes straight to stdout.
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	view := tga.SeedViewOf(seeds)
	emitted := 0
	g.EmitView(view, *budget, func(a ip6.Addr) bool {
		fmt.Fprintln(out, a)
		emitted++
		return true
	})
	fmt.Fprintf(os.Stderr, "%s: %d candidates from %d seeds\n", g.Name(), emitted, view.Len())
}
