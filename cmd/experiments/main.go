// Command experiments regenerates the paper's tables and figures from the
// synthetic world.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3
//	experiments -run all -scale 0.002 -seed 42
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"hitlist6/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment to run (see -list), or 'all'")
		scale  = flag.Float64("scale", 1.0/500, "world scale relative to paper magnitudes")
		seed   = flag.Uint64("seed", 42, "world seed")
		stride = flag.Int("stride", 1, "run every N-th scheduled scan")
		tail   = flag.Int("tail-ases", 240, "synthetic tail AS count")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-14s %s\n", r.Name, r.About)
		}
		return
	}

	suite := experiments.NewSuite(experiments.Params{
		Seed: *seed, Scale: *scale, TailASes: *tail, ScanStride: *stride,
	})
	ctx := context.Background()

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.ByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (see -list)\n", *run)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	start := time.Now()
	for i, r := range runners {
		if i > 0 {
			fmt.Println()
			fmt.Println("================================================================")
			fmt.Println()
		}
		if err := r.Run(ctx, suite, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", r.Name, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "\n[%d experiment(s) in %v, scale %.5f, seed %d]\n",
		len(runners), time.Since(start).Round(time.Millisecond), *scale, *seed)
}
