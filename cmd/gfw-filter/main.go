// Command gfw-filter removes Great-Firewall-injected DNS results from a
// ZMap-style result CSV — the published companion tool of the paper.
//
// It reads a CSV produced by the scanner (or cmd/zmap6sim), classifies
// every UDP/53 row by response evidence (A records answering AAAA
// questions, Teredo addresses, multiple responses), writes the kept rows
// to stdout, and reports what it removed on stderr.
//
// Usage:
//
//	gfw-filter < scan.csv > cleaned.csv
//	gfw-filter -dropped dropped.csv < scan.csv > cleaned.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"hitlist6/internal/gfw"
	"hitlist6/internal/scan"
)

func main() {
	dropped := flag.String("dropped", "", "also write removed rows to this file")
	flag.Parse()

	recs, err := scan.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reading CSV: %v\n", err)
		os.Exit(1)
	}
	kept, injected := gfw.FilterRecords(recs)

	if err := writeRecords(os.Stdout, kept); err != nil {
		fmt.Fprintf(os.Stderr, "writing kept rows: %v\n", err)
		os.Exit(1)
	}
	if *dropped != "" {
		f, err := os.Create(*dropped)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *dropped, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := writeRecords(f, injected); err != nil {
			fmt.Fprintf(os.Stderr, "writing dropped rows: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "kept %d rows, removed %d injected DNS rows\n", len(kept), len(injected))
}

func writeRecords(f *os.File, recs []scan.Record) error {
	w, err := scan.NewWriter(f)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}
