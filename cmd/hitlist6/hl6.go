package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hitlist6/internal/ckpt"
	"hitlist6/internal/core"
	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
)

// hl6Main dispatches the `hitlist6 hl6` subcommands — the .hl6 binary
// hitlist toolbox:
//
//	hitlist6 hl6 convert -in targets.txt -out targets.hl6   # CSV/text → .hl6
//	hitlist6 hl6 synth -n 2000000 -out big.hl6              # synthetic file
//	hitlist6 hl6 info targets.hl6                            # header summary
//	hitlist6 hl6 sample -n 500 -miss 500 big.hl6             # query workload
//	hitlist6 hl6 check -in addrs.txt big.hl6                 # offline truth
//
// convert reads one address per line (or per CSV row; -col picks the
// column), streams it through the bounded-memory writer, and emits the
// sorted sharded binary file zmap6sim -hitlist and sources.HitlistFile
// scan without materialization. sample and check are the serve smoke
// pair: sample draws a deterministic mixed member/non-member workload,
// check answers it offline in the exact "addr,live" shape
// `hitlist6serve query` prints, so the two outputs diff byte for byte.
func hl6Main(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: hitlist6 hl6 convert|synth|info|sample|check ...")
		os.Exit(2)
	}
	switch args[0] {
	case "convert":
		hl6Convert(args[1:])
	case "synth":
		hl6Synth(args[1:])
	case "info":
		hl6Info(args[1:])
	case "sample":
		hl6Sample(args[1:])
	case "check":
		hl6Check(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "unknown hl6 subcommand %q (want convert, synth, info, sample or check)\n", args[0])
		os.Exit(2)
	}
}

func hl6Convert(args []string) {
	fs := flag.NewFlagSet("hl6 convert", flag.ExitOnError)
	var (
		in     = fs.String("in", "", "input file, one address per line or CSV ('-' = stdin)")
		out    = fs.String("out", "", "output .hl6 path")
		col    = fs.Int("col", 0, "CSV column holding the address (0-based)")
		budget = fs.Int("budget", hlfile.DefaultWriterBudget, "resident address budget of the writer")
		strict = fs.Bool("strict", false, "fail on unparsable lines instead of skipping them")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "hl6 convert needs -in and -out")
		os.Exit(2)
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	w, err := hlfile.NewWriterBudget(*out, *budget)
	if err != nil {
		fatal(err)
	}
	// fatal skips defers (os.Exit); abort the writer by hand so a failed
	// conversion never strands the scratch run file next to the output.
	fail := func(err error) {
		w.Abort()
		fatal(err)
	}

	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var total, skipped int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexByte(line, ','); i >= 0 {
			fields := strings.Split(line, ",")
			if *col >= len(fields) {
				if *strict {
					fail(fmt.Errorf("line %q has no column %d", line, *col))
				}
				skipped++
				continue
			}
			line = strings.TrimSpace(fields[*col])
		}
		a, err := ip6.ParseAddr(line)
		if err != nil {
			if *strict {
				fail(err)
			}
			skipped++
			continue
		}
		if err := w.Add(a); err != nil {
			fail(err)
		}
		total++
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if err := w.Finish(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hl6 convert: %d addresses in, %d skipped → %s\n", total, skipped, *out)
}

// hl6Synth writes a deterministic synthetic hitlist — the quick way to
// produce a multi-million-address .hl6 for smoke tests and benchmarks
// without a source list.
func hl6Synth(args []string) {
	fs := flag.NewFlagSet("hl6 synth", flag.ExitOnError)
	var (
		n      = fs.Int("n", 1_000_000, "addresses to generate")
		out    = fs.String("out", "", "output .hl6 path")
		seed   = fs.Uint64("seed", 42, "generator seed")
		budget = fs.Int("budget", hlfile.DefaultWriterBudget, "resident address budget of the writer")
	)
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "hl6 synth needs -out")
		os.Exit(2)
	}
	w, err := hlfile.NewWriterBudget(*out, *budget)
	if err != nil {
		fatal(err)
	}
	// Cluster the draws under 2001::/16-ish prefixes so the file looks
	// like a hitlist (shared routed prefixes, varied IIDs), not noise.
	r := rng.NewStream(*seed, "hl6-synth")
	for i := 0; i < *n; i++ {
		hi := 0x2001_0000_0000_0000 | r.Uint64()&0x0fff_ffff_0000 | r.Uint64()&0xffff
		lo := r.Uint64() >> (r.Uint64() % 48)
		if err := w.Add(ip6.AddrFromUint64s(hi, lo)); err != nil {
			w.Abort()
			fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hl6 synth: %d draws → %s (%d bytes)\n", *n, *out, st.Size())
}

func hl6Info(args []string) {
	fs := flag.NewFlagSet("hl6 info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hitlist6 hl6 info file.hl6|checkpoint-dir")
		os.Exit(2)
	}
	if st, err := os.Stat(fs.Arg(0)); err == nil && st.IsDir() {
		ckptInfo(fs.Arg(0))
		return
	}
	r, err := hlfile.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	minLen, maxLen, nonEmpty := -1, 0, 0
	for sh := 0; sh < ip6.AddrShards; sh++ {
		n := r.ShardLen(sh)
		if n > 0 {
			nonEmpty++
		}
		if minLen < 0 || n < minLen {
			minLen = n
		}
		if n > maxLen {
			maxLen = n
		}
	}
	fmt.Printf("addresses:       %d\n", r.Len())
	fmt.Printf("shards:          %d (%d non-empty)\n", ip6.AddrShards, nonEmpty)
	fmt.Printf("shard sizes:     min=%d max=%d\n", minLen, maxLen)
	fmt.Printf("mmap:            %v\n", r.Mapped())
}

// ckptInfo prints a checkpoint directory's manifest: scan cursor, serve
// generation, delta-chain shape (when the head is a delta checkpoint),
// every payload file with size and item count, and the ingest-journal
// status next to the directory.
func ckptInfo(dir string) {
	resolved, err := ckpt.Resolve(dir)
	if err != nil {
		fatal(err)
	}
	m, err := ckpt.ReadManifest(resolved)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("checkpoint:      %s\n", resolved)
	if resolved != dir {
		fmt.Printf("note:            resolved to a fallback directory (crash window mid-commit)\n")
	}
	lastDay := "none"
	if m.LastDay >= 0 {
		lastDay = fmt.Sprintf("%d (%s)", m.LastDay, netmodel.DateString(m.LastDay))
	}
	fmt.Printf("scans completed: %d\n", m.ScanIndex)
	fmt.Printf("last scan day:   %s\n", lastDay)
	fmt.Printf("generation:      %d\n", m.Generation)
	printFiles := func(files []ckpt.FileInfo) int64 {
		var bytes int64
		for _, fi := range files {
			bytes += fi.Bytes
		}
		fmt.Printf("payload files:   %d (%d bytes)\n", len(files), bytes)
		for _, fi := range files {
			suffix := ""
			if fi.Delta {
				if mask, err := strconv.ParseUint(fi.DeltaShards, 16, 64); err == nil {
					suffix = fmt.Sprintf("  [delta, %d/%d shards]", bits.OnesCount64(mask), ip6.AddrShards)
				} else {
					suffix = "  [delta]"
				}
			}
			if fi.Count > 0 {
				fmt.Printf("  %-20s %12d bytes %12d items%s\n", fi.Name, fi.Bytes, fi.Count, suffix)
			} else {
				fmt.Printf("  %-20s %12d bytes%s\n", fi.Name, fi.Bytes, suffix)
			}
		}
		return bytes
	}
	headBytes := printFiles(m.Files)
	if m.Parent != "" {
		fmt.Printf("delta chain:     depth %d (head + parents below, oldest last)\n", m.Depth)
		base := filepath.Dir(resolved)
		cur, total := m, headBytes
		for cur.Parent != "" {
			pdir := filepath.Join(base, cur.Parent)
			pm, err := ckpt.ReadManifest(pdir)
			if err != nil {
				fmt.Printf("  %-20s UNREADABLE: %v\n", cur.Parent, err)
				break
			}
			var pbytes int64
			for _, fi := range pm.Files {
				pbytes += fi.Bytes
			}
			total += pbytes
			kind := "delta"
			if pm.Parent == "" {
				kind = "full"
			}
			fmt.Printf("  %-20s scans=%-4d %12d bytes  (%s)\n", cur.Parent, pm.ScanIndex, pbytes, kind)
			cur = pm
		}
		fmt.Printf("chain total:     %d bytes\n", total)
	}
	count, jbytes, ok, err := ckpt.JournalStat(core.JournalPath(dir))
	if err != nil {
		fatal(err)
	}
	if !ok {
		fmt.Printf("journal:         none\n")
	} else {
		fmt.Printf("journal:         %d records (%d bytes) — mid-scan debris, discarded on resume\n", count, jbytes)
	}
}

// hl6Sample prints a deterministic query workload drawn from a .hl6:
// -n member addresses (uniform flat-index draws, so big shards weigh
// proportionally) interleaved with -miss uniform-random non-members,
// one address per line. Feed the output to `hitlist6serve query` and
// `hl6 check` to compare served answers against offline truth.
func hl6Sample(args []string) {
	fs := flag.NewFlagSet("hl6 sample", flag.ExitOnError)
	var (
		n    = fs.Int("n", 500, "member addresses to draw")
		miss = fs.Int("miss", 500, "non-member addresses to draw")
		seed = fs.Uint64("seed", 42, "draw seed")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hitlist6 hl6 sample [-n N] [-miss M] [-seed S] file.hl6")
		os.Exit(2)
	}
	r, err := hlfile.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	set, err := r.SortedSet()
	if err != nil {
		fatal(err)
	}
	if set.Len() == 0 && *n > 0 {
		fatal(fmt.Errorf("hl6 sample: %s is empty, cannot draw members", fs.Arg(0)))
	}
	rs := rng.NewStream(*seed, "hl6-sample")
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for hits, misses := *n, *miss; hits > 0 || misses > 0; {
		// Interleave so the served workload alternates answer kinds
		// instead of a positive block followed by a negative block.
		if hits > 0 {
			idx := rs.Intn(set.Len())
			for sh := 0; sh < ip6.AddrShards; sh++ {
				if run := set.Shard(sh); idx < len(run) {
					fmt.Fprintln(out, run[idx].String())
					break
				} else {
					idx -= len(run)
				}
			}
			hits--
		}
		if misses > 0 {
			// Uniform 128-bit draws collide with any realistic hitlist
			// with negligible probability; reject the draw if it does.
			a := ip6.AddrFromUint64s(rs.Uint64(), rs.Uint64())
			for set.Has(a) {
				a = ip6.AddrFromUint64s(rs.Uint64(), rs.Uint64())
			}
			fmt.Fprintln(out, a.String())
			misses--
		}
	}
}

// hl6Check answers a query workload offline: for each input address it
// prints "addr,live" with live = hitlist membership — the ground truth
// the serve smoke test diffs `hitlist6serve query` output against.
// Addresses print in canonical ip6 form, matching the query client.
func hl6Check(args []string) {
	fs := flag.NewFlagSet("hl6 check", flag.ExitOnError)
	in := fs.String("in", "-", "input file, one address per line ('-' = stdin)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hitlist6 hl6 check [-in addrs.txt] file.hl6")
		os.Exit(2)
	}
	r, err := hlfile.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	set, err := r.SortedSet()
	if err != nil {
		fatal(err)
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ip6.ParseAddr(line)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "%s,%v\n", a.String(), set.Has(a))
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
