// Command hitlist6 runs the IPv6 Hitlist service pipeline over the
// synthetic Internet for the full 2018-2022 schedule and streams one CSV
// row per scan to stdout (the Figure 3/4 series). With -membudget the
// cumulative pipeline sets (input seen, ever responsive, GFW drop list)
// spill to disk under the given resident budget, so history-sized state
// no longer scales with the run.
//
// The hl6 subcommand family manages .hl6 binary hitlist files (see
// internal/hlfile): `hl6 convert` turns CSV/text address lists into the
// sorted sharded binary format, `hl6 synth` generates synthetic ones,
// `hl6 info` prints a header summary.
//
// Usage:
//
//	hitlist6 -scale 0.002 -seed 42 > scans.csv
//	hitlist6 -membudget 64 -spill /tmp/hl6 > scans.csv
//	hitlist6 hl6 convert -in targets.txt -out targets.hl6
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"hitlist6/internal/core"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "hl6" {
		hl6Main(os.Args[2:])
		return
	}
	var (
		scale     = flag.Float64("scale", 1.0/500, "world scale relative to paper magnitudes")
		seed      = flag.Uint64("seed", 42, "world seed")
		stride    = flag.Int("stride", 1, "run every N-th scheduled scan")
		gfwDay    = flag.String("gfw-filter-from", "2022-02-07", "GFW filter deployment date (YYYY-MM-DD, 'never' disables)")
		memBudget = flag.Int("membudget", 0, "resident MiB budget for cumulative sets (0 = fully resident)")
		spillDir  = flag.String("spill", "", "spill directory (default: private temp dir)")
	)
	flag.Parse()

	wp := worldgen.TimelineParams(*seed)
	wp.Scale = *scale
	w, err := worldgen.Generate(wp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "generating world: %v\n", err)
		os.Exit(1)
	}
	tracer := yarrp.New(w.Net, yarrp.Config{Seed: *seed})
	feeds := w.BuildFeeds(tracer)

	cfg := core.DefaultConfig(*seed)
	cfg.GFWFilterFromDay = netmodel.Forever
	if *gfwDay != "never" {
		t, err := time.Parse("2006-01-02", *gfwDay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -gfw-filter-from: %v\n", err)
			os.Exit(2)
		}
		cfg.GFWFilterFromDay = netmodel.DayOf(t.Year(), t.Month(), t.Day())
	}
	cfg.MemoryBudget = int64(*memBudget) << 20
	cfg.SpillDir = *spillDir
	svc := core.NewService(cfg, w.Net, feeds, w.Blocklist)
	defer svc.Close()
	// os.Exit skips defers; die routes error exits through the spill
	// cleanup so a failed budgeted run leaves no scratch files behind.
	die := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format, a...)
		svc.Close()
		os.Exit(1)
	}

	out := csv.NewWriter(os.Stdout)
	defer out.Flush()
	header := []string{"date", "scanned", "new_input", "total_raw", "total_clean", "injected_dns",
		"first_resp", "resp_again", "unresp", "aliased_prefixes", "evicted"}
	for _, p := range netmodel.Protocols {
		header = append(header, "raw_"+p.String(), "clean_"+p.String())
	}
	if err := out.Write(header); err != nil {
		die("writing header: %v\n", err)
	}

	ctx := context.Background()
	for i := 0; i < len(w.ScanDays); i += *stride {
		rec, err := svc.RunScan(ctx, w.ScanDays[i])
		if err != nil {
			die("scan at day %d: %v\n", w.ScanDays[i], err)
		}
		row := []string{
			netmodel.DateString(rec.Day),
			strconv.Itoa(rec.ScannedTargets),
			strconv.Itoa(rec.NewInput),
			strconv.Itoa(rec.TotalRaw),
			strconv.Itoa(rec.TotalClean),
			strconv.Itoa(rec.InjectedDNS),
			strconv.Itoa(rec.FirstResp),
			strconv.Itoa(rec.RespAgain),
			strconv.Itoa(rec.Unresp),
			strconv.Itoa(rec.AliasedPrefixes),
			strconv.Itoa(rec.Evicted),
		}
		for _, p := range netmodel.Protocols {
			row = append(row, strconv.Itoa(rec.ResponsiveRaw[p]), strconv.Itoa(rec.ResponsiveClean[p]))
		}
		if err := out.Write(row); err != nil {
			die("writing row: %v\n", err)
		}
		out.Flush()
	}

	f := svc.Funnel()
	fmt.Fprintf(os.Stderr, "funnel: input=%d blocked=%d gfw=%d aliased=%d evicted=%d active=%d responsive=%d\n",
		f.Input, f.Blocked, f.GFWFiltered, f.AliasedInput, f.Evicted, f.ActiveScan, f.Responsive)
	if *memBudget > 0 {
		fmt.Fprintf(os.Stderr, "spill: budget=%dMiB runs-frozen=%d\n", *memBudget, svc.SpilledRuns())
	}
}
