// Command apd6 runs the multi-level aliased prefix detection against the
// synthetic Internet: candidates are derived from the BGP table plus an
// optional input-address file, probed with 16 pseudo-random addresses per
// prefix on ICMP and TCP/80, and the detected aliased prefixes are printed
// one per line.
//
// Usage:
//
//	apd6 > aliased.txt
//	apd6 -input addrs.txt -threshold 100 -rounds 4 > aliased.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hitlist6/internal/apd"
	"hitlist6/internal/ip6"
	"hitlist6/internal/scan"
	"hitlist6/internal/worldgen"
)

func main() {
	var (
		input     = flag.String("input", "", "file with input addresses (derives /64 and longer candidates)")
		threshold = flag.Int("threshold", 100, "min addresses for >/64 candidates")
		rounds    = flag.Int("rounds", 4, "detection rounds to merge")
		day       = flag.Int("day", worldgen.EndDay, "first simulation day")
		scale     = flag.Float64("scale", 1.0/500, "world scale")
		seed      = flag.Uint64("seed", 42, "world seed")
	)
	flag.Parse()

	wp := worldgen.TimelineParams(*seed)
	wp.Scale = *scale
	w, err := worldgen.Generate(wp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "generating world: %v\n", err)
		os.Exit(1)
	}

	var addrs []ip6.Addr
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening input: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			a, err := ip6.ParseAddr(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(2)
			}
			addrs = append(addrs, a)
		}
	}

	cfg := apd.DefaultConfig()
	cfg.MinAddrsLongPrefix = *threshold
	candidates := apd.Candidates(w.Net.AS.AnnouncedPrefixes(), addrs, cfg)
	fmt.Fprintf(os.Stderr, "testing %d candidate prefixes over %d rounds\n", len(candidates), *rounds)

	scanner := scan.New(w.Net, scan.DefaultConfig(*seed))
	det := apd.NewDetector(scanner, cfg)
	var last *apd.Result
	for i := 0; i < *rounds; i++ {
		last, err = det.Run(context.Background(), candidates, *day+i)
		if err != nil {
			fmt.Fprintf(os.Stderr, "round %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	aliased := apd.Aggregate(last.Aliased.Prefixes())
	for _, p := range aliased {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "aliased prefixes: %d (aggregated from %d detections, %d probes in final round)\n",
		len(aliased), last.Aliased.Len(), last.Probes)
}
