// Command hitlist6serve is the hitlist-as-a-service front end: it serves
// liveness/alias/GFW point queries over DNS (rbldnsd-style datasets
// under one zone) and HTTP/JSON, either from a static .hl6 hitlist or
// attached to a live timeline run that keeps publishing fresh snapshots
// while queries are answered.
//
//	hitlist6serve -hitlist big.hl6 -dns :5353 -http :8080
//	    serve a static hitlist: the "live" dataset answers membership,
//	    the other datasets are empty (a bare hitlist has no per-protocol
//	    or alias/GFW dimensions).
//
//	hitlist6serve -timeline -dns :5353 -http :8080
//	    generate a synthetic world and run the scan pipeline with
//	    Config.ServeSnapshots: each scan finalization atomically swaps a
//	    fresh snapshot under the running servers — the serve-while-scan
//	    demonstration.
//
//	hitlist6serve query -mode dns -server 127.0.0.1:5353 -in addrs.txt
//	    client mode: resolve each address against a running server and
//	    print "addr,live" CSV rows — the smoke test diffs this against
//	    hitlist6 hl6 check's offline truth.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"hitlist6/internal/core"
	"hitlist6/internal/dnswire"
	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/serve"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "query" {
		queryMain(os.Args[2:])
		return
	}
	var (
		hitlist  = flag.String("hitlist", "", "serve a static .hl6 hitlist")
		timeline = flag.Bool("timeline", false, "serve a live timeline run (synthetic world)")
		dnsAddr  = flag.String("dns", ":5353", "UDP listen address for DNS queries ('' disables)")
		httpAddr = flag.String("http", ":8080", "listen address for the HTTP/JSON API ('' disables)")
		zone     = flag.String("zone", "hitlist6.serve", "DNS zone the responder is authoritative for")
		day      = flag.Int("day", 0, "snapshot day stamp for -hitlist mode")
		scale    = flag.Float64("scale", 1.0/2000, "world scale for -timeline mode")
		seed     = flag.Uint64("seed", 42, "world seed for -timeline mode")
		interval = flag.Duration("interval", 2*time.Second, "pause between -timeline scans")
	)
	flag.Parse()
	if (*hitlist == "") == !*timeline {
		fmt.Fprintln(os.Stderr, "hitlist6serve needs exactly one of -hitlist or -timeline")
		os.Exit(2)
	}

	h := serve.NewHandle()
	metrics := serve.NewMetrics()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var closers []func()
	if *dnsAddr != "" {
		conn, err := net.ListenPacket("udp", *dnsAddr)
		if err != nil {
			fatal(err)
		}
		responder := serve.NewDNSResponder(h, *zone)
		responder.SetMetrics(metrics)
		// One receive loop per core: the responder is stateless and the
		// handle lock-free, so loops scale without coordination.
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				if err := serve.ServeUDP(conn, responder); err != nil {
					fmt.Fprintf(os.Stderr, "dns: %v\n", err)
				}
			}()
		}
		closers = append(closers, func() { conn.Close() })
		fmt.Fprintf(os.Stderr, "hitlist6serve: DNS on %s zone %s\n", conn.LocalAddr(), responder.Zone())
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: serve.NewHTTPHandlerWithMetrics(h, metrics)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "http: %v\n", err)
			}
		}()
		closers = append(closers, func() { srv.Close() })
		fmt.Fprintf(os.Stderr, "hitlist6serve: HTTP on %s\n", ln.Addr())
	}

	if *hitlist != "" {
		r, err := hlfile.Open(*hitlist)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		set, err := r.SortedSet()
		if err != nil {
			fatal(err)
		}
		var perProto [netmodel.NumProtocols]*ip6.SortedShardSet
		h.Publish(serve.NewSnapshot(*day, set, perProto, nil, nil))
		fmt.Fprintf(os.Stderr, "hitlist6serve: serving %d addresses from %s\n", set.Len(), *hitlist)
		<-stop
	} else {
		runTimeline(h, *scale, *seed, *interval, stop)
	}
	for _, c := range closers {
		c()
	}
}

// runTimeline drives the scan pipeline with snapshot publication on,
// sleeping between scans so the serve-while-scan behaviour is
// observable; it returns when the schedule ends or a signal arrives.
func runTimeline(h *serve.Handle, scale float64, seed uint64, interval time.Duration, stop <-chan os.Signal) {
	wp := worldgen.TimelineParams(seed)
	wp.Scale = scale
	w, err := worldgen.Generate(wp)
	if err != nil {
		fatal(err)
	}
	feeds := w.BuildFeeds(yarrp.New(w.Net, yarrp.Config{Seed: seed}))
	cfg := core.DefaultConfig(seed)
	cfg.ServeSnapshots = true
	svc := core.NewService(cfg, w.Net, feeds, w.Blocklist)
	defer svc.Close()

	// The service publishes to its own handle; mirror every publication
	// into the servers' handle (still one atomic swap per snapshot).
	ctx := context.Background()
	for _, d := range w.ScanDays {
		rec, err := svc.RunScan(ctx, d)
		if err != nil {
			fatal(err)
		}
		if snap := svc.QueryHandle().Current(); snap != nil {
			h.Publish(snap)
		}
		fmt.Fprintf(os.Stderr, "hitlist6serve: scan day %d: %d live, %d aliased prefixes\n",
			rec.Day, rec.TotalClean, rec.AliasedPrefixes)
		select {
		case <-stop:
			return
		case <-time.After(interval):
		}
	}
	<-stop
}

// queryMain is the client: resolve each input address against a running
// server and print "addr,live" rows, the exact shape `hitlist6 hl6
// check` prints offline. Addresses print in canonical ip6 form so the
// two outputs diff byte for byte.
func queryMain(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		mode    = fs.String("mode", "dns", "dns or http")
		server  = fs.String("server", "127.0.0.1:5353", "server address (host:port)")
		zone    = fs.String("zone", "hitlist6.serve", "DNS zone (dns mode)")
		dataset = fs.String("dataset", "live", "dataset to query (dns mode)")
		in      = fs.String("in", "-", "input file, one address per line ('-' = stdin)")
		timeout = fs.Duration("timeout", 5*time.Second, "per-query timeout")
	)
	fs.Parse(args)

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	var lookup func(a ip6.Addr) (bool, error)
	switch *mode {
	case "dns":
		conn, err := net.Dial("udp", *server)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		responder := serve.NewDNSResponder(serve.NewHandle(), *zone) // for QueryName only
		var mu sync.Mutex
		txid := uint16(1)
		buf := make([]byte, 4096)
		lookup = func(a ip6.Addr) (bool, error) {
			mu.Lock()
			defer mu.Unlock()
			txid++
			wire, err := dnswire.NewQuery(txid, responder.QueryName(a, *dataset), dnswire.TypeA).Encode()
			if err != nil {
				return false, err
			}
			if err := conn.SetDeadline(time.Now().Add(*timeout)); err != nil {
				return false, err
			}
			if _, err := conn.Write(wire); err != nil {
				return false, err
			}
			n, err := conn.Read(buf)
			if err != nil {
				return false, err
			}
			m, err := dnswire.Decode(buf[:n])
			if err != nil {
				return false, err
			}
			if m.Header.ID != txid {
				return false, fmt.Errorf("transaction ID mismatch: %d != %d", m.Header.ID, txid)
			}
			switch m.Header.RCode {
			case dnswire.RCodeNoError:
				return len(m.Answers) > 0, nil
			case dnswire.RCodeNXDomain:
				return false, nil
			}
			return false, fmt.Errorf("query for %v: rcode %v", a, m.Header.RCode)
		}
	case "http":
		client := &http.Client{Timeout: *timeout}
		lookup = func(a ip6.Addr) (bool, error) {
			resp, err := client.Get("http://" + *server + "/v1/query?addr=" + a.String())
			if err != nil {
				return false, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return false, fmt.Errorf("query for %v: HTTP %d", a, resp.StatusCode)
			}
			var ans struct {
				Live bool `json:"live"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
				return false, err
			}
			return ans.Live, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want dns or http)\n", *mode)
		os.Exit(2)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ip6.ParseAddr(line)
		if err != nil {
			fatal(err)
		}
		live, err := lookup(a)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "%s,%v\n", a.String(), live)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
