module hitlist6

go 1.22
