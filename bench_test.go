// Package hitlist6bench regenerates every evaluation artifact of the paper
// as a benchmark: one testing.B target per table and figure, plus
// throughput benches for the substrates (world generation, a full service
// scan, target generation, alias detection).
//
// Artifact benches run the corresponding experiment end to end at a
// reduced world scale and report domain metrics alongside time/op, so
// `go test -bench=. -benchmem` doubles as the reproduction smoke run.
package hitlist6bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"hitlist6/internal/core"
	"hitlist6/internal/dnswire"
	"hitlist6/internal/experiments"
	"hitlist6/internal/fleet"
	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/serve"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// benchSuite is shared across artifact benchmarks so the four-year service
// run is paid once per binary invocation.
var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Params{
			Seed: 42, Scale: 1.0 / 5000, TailASes: 64, ScanStride: 2,
		})
		benchErr = benchSuite.Run(context.Background())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

func benchArtifact(b *testing.B, name string) {
	s := suite(b)
	r, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.Run(ctx, s, &buf); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(buf.Len()), "output-bytes")
	}
}

// One benchmark per paper artifact.

func BenchmarkFigure1(b *testing.B)  { benchArtifact(b, "fig1") }
func BenchmarkFigure2(b *testing.B)  { benchArtifact(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { benchArtifact(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchArtifact(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchArtifact(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchArtifact(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchArtifact(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchArtifact(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchArtifact(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchArtifact(b, "fig10") }
func BenchmarkTable1(b *testing.B)   { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchArtifact(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchArtifact(b, "table4") }
func BenchmarkTable5(b *testing.B)   { benchArtifact(b, "table5") }

// In-text experiments.

func BenchmarkDNSEval(b *testing.B)      { benchArtifact(b, "dnseval") }
func BenchmarkFingerprints(b *testing.B) { benchArtifact(b, "fingerprints") }
func BenchmarkDomains(b *testing.B)      { benchArtifact(b, "domains") }
func BenchmarkEUI64(b *testing.B)        { benchArtifact(b, "eui64") }
func BenchmarkAblations(b *testing.B)    { benchArtifact(b, "ablations") }

// Substrate benches: how expensive are the moving parts themselves?

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := worldgen.Generate(worldgen.Params{
			Seed: uint64(i + 1), Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(w.Net.NumHosts()), "hosts")
	}
}

// BenchmarkServiceScan measures one full pipeline iteration (feeds, APD,
// scan, classification) on a fresh miniature world.
func BenchmarkServiceScan(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 9, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	tracer := yarrp.New(w.Net, yarrp.Config{Seed: 9})
	feeds := w.BuildFeeds(tracer)
	svc := core.NewService(core.DefaultConfig(9), w.Net, feeds, w.Blocklist)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := svc.RunScan(ctx, i*7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rec.ProbesSent), "probes/scan")
	}
}

// BenchmarkScanEngineStream measures the raw streaming scan engine: a
// five-protocol sweep over the announced space, consumed batch by batch
// without ever materializing the cross product.
func BenchmarkScanEngineStream(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 17, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(17, "bench-stream-targets")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	targets := make([]ip6.Addr, 4096)
	for i := range targets {
		targets[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	s := scan.New(w.Net, scan.DefaultConfig(17))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var results atomic.Uint64 // sinks run concurrently across shards
		stats, err := s.Stream(ctx, targets, protos, 100, func(batch *scan.Batch) error {
			results.Add(uint64(len(batch.Results)))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Batches), "batches")
		b.ReportMetric(float64(results.Load()), "results")
	}
}

// BenchmarkFleetScan measures the distributed scan fleet against the
// single-scanner engine path: the same five-protocol sweep split across
// N scanner nodes with work-stealing. On a multi-core runner wall-clock
// time should fall near-linearly with node count (every node is an
// independent scanner; only queue pops and merged stats are shared).
func BenchmarkFleetScan(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 17, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(17, "bench-fleet-targets")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	targets := make([]ip6.Addr, 8192)
	for i := range targets {
		targets[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	ctx := context.Background()
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			coord := fleet.New(w.Net, fleet.Config{Workers: nodes, Scan: scan.DefaultConfig(17)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var results atomic.Uint64
				res, err := coord.Scan(ctx, scan.SliceSource(targets).(scan.ShardedSource), protos, 100,
					func(batch *scan.Batch) error {
						results.Add(uint64(len(batch.Results)))
						return nil
					})
				if err != nil {
					b.Fatal(err)
				}
				steals := 0
				for _, ws := range res.Workers {
					steals += ws.Steals
				}
				b.ReportMetric(float64(results.Load()), "results")
				b.ReportMetric(float64(steals), "steals")
			}
		})
	}
}

// BenchmarkHitlistSource measures scanning straight off a .hl6 binary
// hitlist: the mmap-backed sharded source against the same five-protocol
// sweep BenchmarkScanEngineStream runs from a slice — the per-scan cost
// of the external-memory target path.
func BenchmarkHitlistSource(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 17, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(17, "bench-hitlist-targets")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	targets := make([]ip6.Addr, 4096)
	for i := range targets {
		targets[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}
	path := filepath.Join(b.TempDir(), "bench.hl6")
	if err := hlfile.Write(path, targets); err != nil {
		b.Fatal(err)
	}
	reader, err := hlfile.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer reader.Close()
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	s := scan.New(w.Net, scan.DefaultConfig(17))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var results atomic.Uint64
		stats, err := s.StreamFrom(ctx, reader.Source(), protos, 100, func(batch *scan.Batch) error {
			results.Add(uint64(len(batch.Results)))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Batches), "batches")
		b.ReportMetric(float64(results.Load()), "results")
	}
}

// BenchmarkFullTimeline runs the complete 2018-2022 schedule on a tiny
// world: the cost of the whole reproduction loop.
func BenchmarkFullTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := worldgen.Generate(worldgen.Params{
			Seed: uint64(i + 3), Scale: 1.0 / 20000, TailASes: 32, ScanIntervalDays: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		tracer := yarrp.New(w.Net, yarrp.Config{Seed: uint64(i + 3)})
		svc := core.NewService(core.DefaultConfig(9), w.Net, w.BuildFeeds(tracer), w.Blocklist)
		ctx := context.Background()
		for j := 0; j < len(w.ScanDays); j += 4 {
			if _, err := svc.RunScan(ctx, w.ScanDays[j]); err != nil {
				b.Fatal(err)
			}
		}
		recs := svc.Records()
		b.ReportMetric(float64(recs[len(recs)-1].TotalClean), "responsive")
	}
}

// BenchmarkGFWSpikeDetection measures classifying the cumulative
// injection evidence against the 2022 snapshot: how much of the
// published responsive set at the cleanup date was injection-tainted,
// and how much of the evidence pointed at addresses real on other
// protocols (the split the paper's one-time filter is built from).
func BenchmarkGFWSpikeDetection(b *testing.B) {
	s := suite(b)
	snap, ok := s.Svc.Snapshots()[netmodel.Day2022]
	if !ok {
		b.Fatal("no 2022 snapshot")
	}
	recs := s.Svc.Records()
	if len(recs) == 0 {
		b.Fatal("no records")
	}
	tracker := s.Svc.Tracker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		injected := tracker.InjectedSeen()
		published := injected.IntersectCount(snap.ResponsiveAny)
		injectedOnly := tracker.InjectedOnly().Len()
		total := 0
		for _, rec := range recs {
			total += rec.InjectedDNS
		}
		b.ReportMetric(float64(total), "injected-results")
		b.ReportMetric(float64(published), "published-injected")
		b.ReportMetric(float64(injectedOnly), "filter-list")
	}
}

// BenchmarkServeQPS measures the lock-free serving hot paths at full
// parallelism against a published snapshot: the DNS sub-benchmark drives
// DNSResponder.Respond (the zero-alloc wire path ServeUDP loops run),
// the HTTP sub-benchmark drives the JSON handler end to end. The qps
// metric is queries per wall-clock second across all client goroutines.
func BenchmarkServeQPS(b *testing.B) {
	r := rng.NewStream(42, "serve-bench")
	members := ip6.NewShardedSet()
	addrs := make([]ip6.Addr, 1<<17)
	for i := range addrs {
		addrs[i] = ip6.AddrFromUint64s(0x2001_0000_0000_0000|r.Uint64()&0xffff_ffff, r.Uint64())
		members.Add(addrs[i])
	}
	var perProto [netmodel.NumProtocols]*ip6.SortedShardSet
	h := serve.NewHandle()
	h.Publish(serve.NewSnapshot(100, ip6.FreezeSorted(members), perProto, nil, nil))

	// Query workload: alternate members and uniform-random misses.
	queries := make([]ip6.Addr, 1024)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = addrs[r.Intn(len(addrs))]
		} else {
			queries[i] = ip6.AddrFromUint64s(r.Uint64(), r.Uint64())
		}
	}

	b.Run("dns", func(b *testing.B) {
		responder := serve.NewDNSResponder(h, "hitlist6.serve")
		wires := make([][]byte, len(queries))
		for i, a := range queries {
			w, err := dnswire.NewQuery(uint16(i), responder.QueryName(a, "live"), dnswire.TypeA).Encode()
			if err != nil {
				b.Fatal(err)
			}
			wires[i] = w
		}
		var next atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var sc serve.Scratch
			dst := make([]byte, 0, 512)
			i := int(next.Add(1)) * 31
			for pb.Next() {
				dst = responder.Respond(wires[i%len(wires)], dst[:0], &sc)
				if dst == nil {
					b.Fatal("responder dropped a valid query")
				}
				i++
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})

	b.Run("http", func(b *testing.B) {
		handler := serve.NewHTTPHandler(h)
		urls := make([]string, len(queries))
		for i, a := range queries {
			urls[i] = "/v1/query?addr=" + a.String()
		}
		var next atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(next.Add(1)) * 31
			for pb.Next() {
				req := httptest.NewRequest("GET", urls[i%len(urls)], nil)
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Fatalf("HTTP %d", rec.Code)
				}
				i++
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
}

// BenchmarkServeUnderScan measures query latency while the timeline
// advances underneath: a writer goroutine runs scans (each finalization
// publishing a fresh snapshot with one atomic swap) while the parallel
// clients hammer QueryHandle.Lookup. The contract under test: readers
// never lock, so the advancing timeline costs them nothing.
func BenchmarkServeUnderScan(b *testing.B) {
	wp := worldgen.Params{Seed: 42, Scale: 1.0 / 5000, TailASes: 64, ScanIntervalDays: 7}
	w, err := worldgen.Generate(wp)
	if err != nil {
		b.Fatal(err)
	}
	feeds := w.BuildFeeds(yarrp.New(w.Net, yarrp.Config{Seed: 42}))
	cfg := core.DefaultConfig(42)
	cfg.ServeSnapshots = true
	svc := core.NewService(cfg, w.Net, feeds, w.Blocklist)
	defer svc.Close()
	if _, err := svc.RunScan(context.Background(), w.ScanDays[0]); err != nil {
		b.Fatal(err)
	}
	h := svc.QueryHandle()

	r := rng.NewStream(42, "serve-under-scan")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	queries := make([]ip6.Addr, 1024)
	for i := range queries {
		queries[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < len(w.ScanDays); i++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := svc.RunScan(context.Background(), w.ScanDays[i]); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 31
		for pb.Next() {
			if _, ok := h.Lookup(queries[i%len(queries)]); !ok {
				b.Fatal("no snapshot published")
			}
			i++
		}
	})
	b.StopTimer()
	close(done)
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	if snap := h.Current(); snap != nil {
		b.ReportMetric(float64(snap.Generation), "snapshots")
	}
}
