// Package hitlist6bench regenerates every evaluation artifact of the paper
// as a benchmark: one testing.B target per table and figure, plus
// throughput benches for the substrates (world generation, a full service
// scan, target generation, alias detection).
//
// Artifact benches run the corresponding experiment end to end at a
// reduced world scale and report domain metrics alongside time/op, so
// `go test -bench=. -benchmem` doubles as the reproduction smoke run.
package hitlist6bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"hitlist6/internal/ckpt"
	"hitlist6/internal/core"
	"hitlist6/internal/dnswire"
	"hitlist6/internal/experiments"
	"hitlist6/internal/fleet"
	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/serve"
	"hitlist6/internal/sources"
	"hitlist6/internal/tga"
	"hitlist6/internal/tga/dc"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// benchSuite is shared across artifact benchmarks so the four-year service
// run is paid once per binary invocation.
var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Params{
			Seed: 42, Scale: 1.0 / 5000, TailASes: 64, ScanStride: 2,
		})
		benchErr = benchSuite.Run(context.Background())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

func benchArtifact(b *testing.B, name string) {
	s := suite(b)
	r, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.Run(ctx, s, &buf); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(buf.Len()), "output-bytes")
	}
}

// One benchmark per paper artifact.

func BenchmarkFigure1(b *testing.B)  { benchArtifact(b, "fig1") }
func BenchmarkFigure2(b *testing.B)  { benchArtifact(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { benchArtifact(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchArtifact(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchArtifact(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchArtifact(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchArtifact(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchArtifact(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchArtifact(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchArtifact(b, "fig10") }
func BenchmarkTable1(b *testing.B)   { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchArtifact(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchArtifact(b, "table4") }
func BenchmarkTable5(b *testing.B)   { benchArtifact(b, "table5") }

// In-text experiments.

func BenchmarkDNSEval(b *testing.B)      { benchArtifact(b, "dnseval") }
func BenchmarkFingerprints(b *testing.B) { benchArtifact(b, "fingerprints") }
func BenchmarkDomains(b *testing.B)      { benchArtifact(b, "domains") }
func BenchmarkEUI64(b *testing.B)        { benchArtifact(b, "eui64") }
func BenchmarkAblations(b *testing.B)    { benchArtifact(b, "ablations") }

// Substrate benches: how expensive are the moving parts themselves?

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := worldgen.Generate(worldgen.Params{
			Seed: uint64(i + 1), Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(w.Net.NumHosts()), "hosts")
	}
}

// BenchmarkServiceScan measures one full pipeline iteration (feeds, APD,
// scan, classification) on a fresh miniature world.
func BenchmarkServiceScan(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 9, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	tracer := yarrp.New(w.Net, yarrp.Config{Seed: 9})
	feeds := w.BuildFeeds(tracer)
	svc := core.NewService(core.DefaultConfig(9), w.Net, feeds, w.Blocklist)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := svc.RunScan(ctx, i*7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rec.ProbesSent), "probes/scan")
	}
}

// BenchmarkScanEngineStream measures the raw streaming scan engine: a
// five-protocol sweep over the announced space, consumed batch by batch
// without ever materializing the cross product.
func BenchmarkScanEngineStream(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 17, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(17, "bench-stream-targets")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	targets := make([]ip6.Addr, 4096)
	for i := range targets {
		targets[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	s := scan.New(w.Net, scan.DefaultConfig(17))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var results atomic.Uint64 // sinks run concurrently across shards
		stats, err := s.Stream(ctx, targets, protos, 100, func(batch *scan.Batch) error {
			results.Add(uint64(len(batch.Results)))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Batches), "batches")
		b.ReportMetric(float64(results.Load()), "results")
	}
}

// BenchmarkFleetScan measures the distributed scan fleet against the
// single-scanner engine path: the same five-protocol sweep split across
// N scanner nodes with work-stealing. On a multi-core runner wall-clock
// time should fall near-linearly with node count (every node is an
// independent scanner; only queue pops and merged stats are shared).
func BenchmarkFleetScan(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 17, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(17, "bench-fleet-targets")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	targets := make([]ip6.Addr, 8192)
	for i := range targets {
		targets[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	ctx := context.Background()
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			coord := fleet.New(w.Net, fleet.Config{Workers: nodes, Scan: scan.DefaultConfig(17)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var results atomic.Uint64
				res, err := coord.Scan(ctx, scan.SliceSource(targets).(scan.ShardedSource), protos, 100,
					func(batch *scan.Batch) error {
						results.Add(uint64(len(batch.Results)))
						return nil
					})
				if err != nil {
					b.Fatal(err)
				}
				steals := 0
				for _, ws := range res.Workers {
					steals += ws.Steals
				}
				b.ReportMetric(float64(results.Load()), "results")
				b.ReportMetric(float64(steals), "steals")
			}
		})
	}
}

// BenchmarkHitlistSource measures scanning straight off a .hl6 binary
// hitlist: the mmap-backed sharded source against the same five-protocol
// sweep BenchmarkScanEngineStream runs from a slice — the per-scan cost
// of the external-memory target path.
func BenchmarkHitlistSource(b *testing.B) {
	w, err := worldgen.Generate(worldgen.Params{
		Seed: 17, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.NewStream(17, "bench-hitlist-targets")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	targets := make([]ip6.Addr, 4096)
	for i := range targets {
		targets[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}
	path := filepath.Join(b.TempDir(), "bench.hl6")
	if err := hlfile.Write(path, targets); err != nil {
		b.Fatal(err)
	}
	reader, err := hlfile.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer reader.Close()
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	s := scan.New(w.Net, scan.DefaultConfig(17))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var results atomic.Uint64
		stats, err := s.StreamFrom(ctx, reader.Source(), protos, 100, func(batch *scan.Batch) error {
			results.Add(uint64(len(batch.Results)))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Batches), "batches")
		b.ReportMetric(float64(results.Load()), "results")
	}
}

// BenchmarkFullTimeline runs the complete 2018-2022 schedule on a tiny
// world: the cost of the whole reproduction loop.
func BenchmarkFullTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := worldgen.Generate(worldgen.Params{
			Seed: uint64(i + 3), Scale: 1.0 / 20000, TailASes: 32, ScanIntervalDays: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		tracer := yarrp.New(w.Net, yarrp.Config{Seed: uint64(i + 3)})
		svc := core.NewService(core.DefaultConfig(9), w.Net, w.BuildFeeds(tracer), w.Blocklist)
		ctx := context.Background()
		for j := 0; j < len(w.ScanDays); j += 4 {
			if _, err := svc.RunScan(ctx, w.ScanDays[j]); err != nil {
				b.Fatal(err)
			}
		}
		recs := svc.Records()
		b.ReportMetric(float64(recs[len(recs)-1].TotalClean), "responsive")
	}
}

// BenchmarkGFWSpikeDetection measures classifying the cumulative
// injection evidence against the 2022 snapshot: how much of the
// published responsive set at the cleanup date was injection-tainted,
// and how much of the evidence pointed at addresses real on other
// protocols (the split the paper's one-time filter is built from).
func BenchmarkGFWSpikeDetection(b *testing.B) {
	s := suite(b)
	snap, ok := s.Svc.Snapshots()[netmodel.Day2022]
	if !ok {
		b.Fatal("no 2022 snapshot")
	}
	recs := s.Svc.Records()
	if len(recs) == 0 {
		b.Fatal("no records")
	}
	tracker := s.Svc.Tracker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		injected := tracker.InjectedSeen()
		published := injected.IntersectCount(snap.ResponsiveAny)
		injectedOnly := tracker.InjectedOnly().Len()
		total := 0
		for _, rec := range recs {
			total += rec.InjectedDNS
		}
		b.ReportMetric(float64(total), "injected-results")
		b.ReportMetric(float64(published), "published-injected")
		b.ReportMetric(float64(injectedOnly), "filter-list")
	}
}

// BenchmarkServeQPS measures the lock-free serving hot paths at full
// parallelism against a published snapshot: the DNS sub-benchmark drives
// DNSResponder.Respond (the zero-alloc wire path ServeUDP loops run),
// the HTTP sub-benchmark drives the JSON handler end to end. The qps
// metric is queries per wall-clock second across all client goroutines.
func BenchmarkServeQPS(b *testing.B) {
	r := rng.NewStream(42, "serve-bench")
	members := ip6.NewShardedSet()
	addrs := make([]ip6.Addr, 1<<17)
	for i := range addrs {
		addrs[i] = ip6.AddrFromUint64s(0x2001_0000_0000_0000|r.Uint64()&0xffff_ffff, r.Uint64())
		members.Add(addrs[i])
	}
	var perProto [netmodel.NumProtocols]*ip6.SortedShardSet
	h := serve.NewHandle()
	h.Publish(serve.NewSnapshot(100, ip6.FreezeSorted(members), perProto, nil, nil))

	// Query workload: alternate members and uniform-random misses.
	queries := make([]ip6.Addr, 1024)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = addrs[r.Intn(len(addrs))]
		} else {
			queries[i] = ip6.AddrFromUint64s(r.Uint64(), r.Uint64())
		}
	}

	b.Run("dns", func(b *testing.B) {
		responder := serve.NewDNSResponder(h, "hitlist6.serve")
		wires := make([][]byte, len(queries))
		for i, a := range queries {
			w, err := dnswire.NewQuery(uint16(i), responder.QueryName(a, "live"), dnswire.TypeA).Encode()
			if err != nil {
				b.Fatal(err)
			}
			wires[i] = w
		}
		var next atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var sc serve.Scratch
			dst := make([]byte, 0, 512)
			i := int(next.Add(1)) * 31
			for pb.Next() {
				dst = responder.Respond(wires[i%len(wires)], dst[:0], &sc)
				if dst == nil {
					b.Fatal("responder dropped a valid query")
				}
				i++
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})

	b.Run("http", func(b *testing.B) {
		handler := serve.NewHTTPHandler(h)
		urls := make([]string, len(queries))
		for i, a := range queries {
			urls[i] = "/v1/query?addr=" + a.String()
		}
		var next atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(next.Add(1)) * 31
			for pb.Next() {
				req := httptest.NewRequest("GET", urls[i%len(urls)], nil)
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Fatalf("HTTP %d", rec.Code)
				}
				i++
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	})
}

// BenchmarkSnapshotPublish measures building and publishing one serve
// snapshot generation from a 2^17-member set when only a few shards
// changed since the previous publication — the steady state of a stable
// hitlist. The full sub-benchmark re-freezes all 64 shards every time;
// the delta sub-benchmark uses copy-on-publish (FreezeSortedDelta),
// re-freezing only the dirty shards and sharing the rest with the
// previous generation.
func BenchmarkSnapshotPublish(b *testing.B) {
	const dirtyShards = 4 // churn confined to 4 of the 64 shards (<10% dirty)
	r := rng.NewStream(42, "publish-bench")
	members := ip6.NewShardedSet()
	for i := 0; i < 1<<17; i++ {
		members.Add(ip6.AddrFromUint64s(0x2001_0000_0000_0000|r.Uint64()&0xffff_ffff, r.Uint64()))
	}
	fresh := func(n int) []ip6.Addr {
		out := make([]ip6.Addr, 0, n)
		for len(out) < n {
			a := ip6.AddrFromUint64s(0x2001_0000_0000_0000|r.Uint64()&0xffff_ffff, r.Uint64())
			if ip6.ShardOf(a) < dirtyShards {
				out = append(out, a)
			}
		}
		return out
	}
	var perProto [netmodel.NumProtocols]*ip6.SortedShardSet

	b.Run("full", func(b *testing.B) {
		churn := fresh(b.N * dirtyShards)
		h := serve.NewHandle()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range churn[i*dirtyShards : (i+1)*dirtyShards] {
				members.Add(a)
			}
			h.Publish(serve.NewSnapshot(100, ip6.FreezeSorted(members), perProto, nil, nil))
		}
	})

	b.Run("delta", func(b *testing.B) {
		churn := fresh(b.N * dirtyShards)
		h := serve.NewHandle()
		prev := ip6.FreezeSorted(members)
		refrozen, shared := 0, 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range churn[i*dirtyShards : (i+1)*dirtyShards] {
				members.Add(a)
			}
			out, rf, sh := ip6.FreezeSortedDelta(members, prev)
			refrozen += rf
			shared += sh
			h.Publish(serve.NewSnapshot(100, out, perProto, nil, nil))
			prev = out
		}
		b.StopTimer()
		b.ReportMetric(float64(refrozen)/float64(b.N), "refrozen/op")
		b.ReportMetric(float64(shared)/float64(b.N), "shared/op")
	})
}

// BenchmarkSeedView measures the per-round cost of handing the TGA
// generators their seed view from a 2^17-member cumulative responsive
// set. steady is the no-new-responders round: every shard's epoch holds,
// the delta freeze shares all 64 spans and the round costs nanoseconds
// regardless of cumulative size. churn confines new responders to 4
// shards — only those re-walk and re-sort, so the freeze cost tracks the
// dirtied shards, not the set.
func BenchmarkSeedView(b *testing.B) {
	const dirtyShards = 4
	r := rng.NewStream(43, "seedview-bench")
	members := ip6.NewShardedSet()
	for i := 0; i < 1<<17; i++ {
		members.Add(ip6.AddrFromUint64s(0x2001_0000_0000_0000|r.Uint64()&0xffff_ffff, r.Uint64()))
	}
	fresh := func(n int) []ip6.Addr {
		out := make([]ip6.Addr, 0, n)
		for len(out) < n {
			a := ip6.AddrFromUint64s(0x2001_0000_0000_0000|r.Uint64()&0xffff_ffff, r.Uint64())
			if ip6.ShardOf(a) < dirtyShards {
				out = append(out, a)
			}
		}
		return out
	}

	b.Run("steady", func(b *testing.B) {
		prev, _, _ := ip6.FreezeSortedDelta(members, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, rf, _ := ip6.FreezeSortedDelta(members, prev)
			if rf != 0 {
				b.Fatalf("steady round refroze %d shards", rf)
			}
			prev = out
		}
		b.ReportMetric(0, "refrozen/op")
	})

	b.Run("churn", func(b *testing.B) {
		churn := fresh(b.N * dirtyShards)
		prev, _, _ := ip6.FreezeSortedDelta(members, nil)
		refrozen := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range churn[i*dirtyShards : (i+1)*dirtyShards] {
				members.Add(a)
			}
			out, rf, _ := ip6.FreezeSortedDelta(members, prev)
			refrozen += rf
			prev = out
		}
		b.StopTimer()
		b.ReportMetric(float64(refrozen)/float64(b.N), "refrozen/op")
	})
}

// BenchmarkTGARound measures one generate-round of the incremental TGA
// pipeline over a 2^17-seed view: the epoch-delta freeze, the
// generator's per-shard model update, and draining the streamed
// candidate source (the paper's distance-clustering generator, budget
// 4096). steady re-runs the round with no new seeds — the model proves
// every shard clean by span identity and pays emission alone, so time/op
// is independent of cumulative seed count. churn adds seeds to 4 shards
// per round — only those shards' statistics rebuild.
func BenchmarkTGARound(b *testing.B) {
	const dirtyShards = 4
	const budget = 4096
	seedSet := func() *ip6.ShardedSet {
		members := ip6.NewShardedSet()
		// Structured seeds: 1024 /64s, each a dense run with gap 2, so
		// distance clustering has gaps to fill.
		for net := uint64(0); net < 1024; net++ {
			hi := 0x2001_0000_0000_0000 | net<<8
			for i := uint64(0); i < 128; i++ {
				members.Add(ip6.AddrFromUint64s(hi, 1+i*2))
			}
		}
		return members
	}
	drain := func(b *testing.B, feed tga.CandidateFeed, view *tga.SeedView) int {
		b.Helper()
		src := feed.Candidates(0, view)
		buf := make([]ip6.Addr, 512)
		n := 0
		for {
			k, err := src.Next(buf)
			n += k
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		return n
	}

	b.Run("steady", func(b *testing.B) {
		members := seedSet()
		feed := tga.CandidateFeed{Gen: dc.New(dc.DefaultConfig()), Budget: budget}
		prev, _, _ := ip6.FreezeSortedDelta(members, nil)
		drain(b, feed, tga.NewSeedView(prev)) // prime: pay the one-time model build
		cands := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, rf, _ := ip6.FreezeSortedDelta(members, prev)
			if rf != 0 {
				b.Fatalf("steady round refroze %d shards", rf)
			}
			prev = out
			cands += drain(b, feed, tga.NewSeedView(out))
		}
		b.StopTimer()
		b.ReportMetric(float64(cands)/float64(b.N), "candidates/op")
		b.ReportMetric(0, "refrozen/op")
	})

	b.Run("churn", func(b *testing.B) {
		members := seedSet()
		feed := tga.CandidateFeed{Gen: dc.New(dc.DefaultConfig()), Budget: budget}
		r := rng.NewStream(44, "tga-round-bench")
		churn := make([]ip6.Addr, 0, b.N*dirtyShards)
		for len(churn) < b.N*dirtyShards {
			a := ip6.AddrFromUint64s(0x2001_0000_0000_0000|r.Uint64()&0xffff_ffff, r.Uint64())
			if ip6.ShardOf(a) < dirtyShards {
				churn = append(churn, a)
			}
		}
		prev, _, _ := ip6.FreezeSortedDelta(members, nil)
		drain(b, feed, tga.NewSeedView(prev)) // prime: pay the one-time model build
		cands, refrozen := 0, 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range churn[i*dirtyShards : (i+1)*dirtyShards] {
				members.Add(a)
			}
			out, rf, _ := ip6.FreezeSortedDelta(members, prev)
			refrozen += rf
			prev = out
			cands += drain(b, feed, tga.NewSeedView(out))
		}
		b.StopTimer()
		b.ReportMetric(float64(cands)/float64(b.N), "candidates/op")
		b.ReportMetric(float64(refrozen)/float64(b.N), "refrozen/op")
	})
}

// BenchmarkCheckpointDelta measures one steady-state checkpoint of a
// service carrying a large cumulative input-seen set (2^18 addresses)
// with per-scan churn confined to two shards. The full sub-benchmark
// rewrites every payload each time (CheckpointFullEvery=1); the delta
// sub-benchmark chains delta checkpoints carrying only the dirty shards.
// ckpt-bytes/op is the manifest's total payload size per checkpoint —
// the on-disk write amplification the delta path exists to cut.
func BenchmarkCheckpointDelta(b *testing.B) {
	const (
		poolSize    = 1 << 18
		prefixes64  = 256 // the pool clusters into 256 /64s, keeping seen64 tiny
		churnShards = 2
		churnPerDay = 100
	)
	churnFor := func(day int) []ip6.Addr {
		r := rng.NewStream(uint64(day), "ckpt-bench-churn")
		out := make([]ip6.Addr, 0, churnPerDay)
		for len(out) < churnPerDay {
			a := ip6.AddrFromUint64s(0x2600_0000_0000_0000|uint64(r.Intn(prefixes64)), r.Uint64())
			if ip6.ShardOf(a) < churnShards {
				out = append(out, a)
			}
		}
		return out
	}
	run := func(b *testing.B, fullEvery int) {
		w, err := worldgen.Generate(worldgen.Params{
			Seed: 7, Scale: 1.0 / 20000, TailASes: 32, ScanIntervalDays: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := rng.NewStream(7, "ckpt-bench-pool")
		pool := make([]ip6.Addr, poolSize)
		for i := range pool {
			pool[i] = ip6.AddrFromUint64s(0x2600_0000_0000_0000|uint64(i%prefixes64), r.Uint64())
		}
		feed := &sources.Feed{
			Name: "bench-synthetic", FromDay: 0, ToDay: 1 << 30,
			Collect: func(_ context.Context, day int) ([]ip6.Addr, error) {
				if day == 0 {
					return pool, nil
				}
				return churnFor(day), nil
			},
		}
		cfg := core.DefaultConfig(7)
		cfg.CheckpointFullEvery = fullEvery
		svc := core.NewService(cfg, w.Net, []*sources.Feed{feed}, nil)
		defer svc.Close()
		ctx := context.Background()
		// Day 0 ingests the pool; the day-31 scan evicts it (30-day
		// unresponsive horizon), so the always-rewritten active table stays
		// small and the cumulative input-seen set is what each checkpoint
		// has to carry.
		for _, day := range []int{0, 31} {
			if _, err := svc.RunScan(ctx, day); err != nil {
				b.Fatal(err)
			}
		}
		dir := filepath.Join(b.TempDir(), "ckpt")
		if err := svc.Checkpoint(dir); err != nil { // the head deltas chain from
			b.Fatal(err)
		}
		var bytesTotal int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if _, err := svc.RunScan(ctx, 32+i); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := svc.Checkpoint(dir); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			m, err := ckpt.ReadManifest(dir)
			if err != nil {
				b.Fatal(err)
			}
			for _, fi := range m.Files {
				bytesTotal += fi.Bytes
			}
			if fullEvery != 1 && m.Depth == 0 {
				b.Fatal("expected a delta checkpoint")
			}
			// Parked chain parents are only read on resume; prune them so a
			// long delta run doesn't fill the disk.
			parked, _ := filepath.Glob(dir + ".p[0-9]*")
			for _, p := range parked {
				os.RemoveAll(p)
			}
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(float64(bytesTotal)/float64(b.N), "ckpt-bytes/op")
	}
	b.Run("full", func(b *testing.B) { run(b, 1) })
	b.Run("delta", func(b *testing.B) { run(b, 1<<30) })
}

// BenchmarkServeUnderScan measures query latency while the timeline
// advances underneath: a writer goroutine runs scans (each finalization
// publishing a fresh snapshot with one atomic swap) while the parallel
// clients hammer QueryHandle.Lookup. The contract under test: readers
// never lock, so the advancing timeline costs them nothing.
func BenchmarkServeUnderScan(b *testing.B) {
	wp := worldgen.Params{Seed: 42, Scale: 1.0 / 5000, TailASes: 64, ScanIntervalDays: 7}
	w, err := worldgen.Generate(wp)
	if err != nil {
		b.Fatal(err)
	}
	feeds := w.BuildFeeds(yarrp.New(w.Net, yarrp.Config{Seed: 42}))
	cfg := core.DefaultConfig(42)
	cfg.ServeSnapshots = true
	svc := core.NewService(cfg, w.Net, feeds, w.Blocklist)
	defer svc.Close()
	if _, err := svc.RunScan(context.Background(), w.ScanDays[0]); err != nil {
		b.Fatal(err)
	}
	h := svc.QueryHandle()

	r := rng.NewStream(42, "serve-under-scan")
	prefixes := w.Net.AS.AnnouncedPrefixes()
	queries := make([]ip6.Addr, 1024)
	for i := range queries {
		queries[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < len(w.ScanDays); i++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := svc.RunScan(context.Background(), w.ScanDays[i]); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 31
		for pb.Next() {
			if _, ok := h.Lookup(queries[i%len(queries)]); !ok {
				b.Fatal("no snapshot published")
			}
			i++
		}
	})
	b.StopTimer()
	close(done)
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	if snap := h.Current(); snap != nil {
		b.ReportMetric(float64(snap.Generation), "snapshots")
	}
}
