package dnswire

import (
	"bytes"
	"testing"
)

func TestDecodeQueryInto(t *testing.T) {
	wire, err := NewQuery(0xbeef, "WWW.Example.COM.", TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var q ServerQuery
	if err := DecodeQueryInto(wire, &q); err != nil {
		t.Fatal(err)
	}
	if q.ID != 0xbeef || !q.RecursionDesired {
		t.Fatalf("header = %+v", q)
	}
	if string(q.Name) != "www.example.com" {
		t.Fatalf("Name = %q", q.Name)
	}
	if q.Type != TypeA || q.Class != ClassIN {
		t.Fatalf("type/class = %v/%v", q.Type, q.Class)
	}
	if len(q.Raw) != len(wire)-12 || !bytes.Equal(q.Raw, wire[12:]) {
		t.Fatalf("Raw mismatch")
	}
}

func TestDecodeQueryIntoRejects(t *testing.T) {
	query, _ := NewQuery(1, "a.example", TypeAAAA).Encode()
	resp := append([]byte(nil), query...)
	resp[2] |= 0x80 // QR bit

	twoQ := append([]byte(nil), query...)
	twoQ[5] = 2

	compressed := append([]byte(nil), query[:12]...)
	compressed = append(compressed, 0xc0, 0x0c, 0, 1, 0, 1)

	cases := []struct {
		name string
		msg  []byte
		want error
	}{
		{"short", []byte{1, 2, 3}, ErrTruncated},
		{"response", resp, ErrNotAQuery},
		{"two questions", twoQ, ErrBadQuestion},
		{"compressed qname", compressed, ErrBadPointer},
		{"truncated name", query[:14], ErrTruncated},
	}
	var q ServerQuery
	for _, c := range cases {
		if err := DecodeQueryInto(c.msg, &q); err != c.want {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// The raw-echo reply must be byte-identical to the parsed-question
// encoder for normalized names — that is what lets the serving layer
// answer off DecodeQueryInto scratch without re-deriving strings.
func TestAppendReplyRawMatchesAppendReply(t *testing.T) {
	names := []string{"20010db80000000000000000000000ff.live.hitlist6.test", "x.y", ""}
	rdata := []byte{127, 0, 0, 2}
	for _, name := range names {
		wire, err := NewQuery(7, name, TypeA).Encode()
		if err != nil {
			t.Fatal(err)
		}
		var q ServerQuery
		if err := DecodeQueryInto(wire, &q); err != nil {
			t.Fatal(err)
		}
		h := Header{ID: 7, Response: true, RecursionDesired: true, Authoritative: true}
		for _, ansType := range []Type{0, TypeA} {
			want, err := AppendReply(nil, h, Question{Name: name, Type: TypeA, Class: ClassIN}, ansType, 300, rdata)
			if err != nil {
				t.Fatal(err)
			}
			got := AppendReplyRaw(nil, h, q.Raw, ansType, 300, rdata)
			if !bytes.Equal(got, want) {
				t.Errorf("name %q ansType %v:\n got %x\nwant %x", name, ansType, got, want)
			}
		}
	}
}

// The server-side decode is the serving layer's per-query hot path; with
// a warmed scratch it must not allocate.
func TestDecodeQueryIntoAlloc(t *testing.T) {
	wire, err := NewQuery(42, "20010db80000000000000000000000ff.live.hitlist6.test", TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var q ServerQuery
	if err := DecodeQueryInto(wire, &q); err != nil { // warm the name buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeQueryInto(wire, &q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeQueryInto allocs/op = %v, want 0", allocs)
	}
}
