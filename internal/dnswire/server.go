package dnswire

import (
	"encoding/binary"
	"errors"
)

// Server-side decode errors.
var (
	// ErrNotAQuery means the message has the response bit set or a
	// non-standard opcode — nothing a query server should answer.
	ErrNotAQuery = errors.New("dnswire: message is not a standard query")
	// ErrBadQuestion means the question count is not exactly one, which
	// is the only shape a lookup server answers (rbldnsd rejects these
	// the same way).
	ErrBadQuestion = errors.New("dnswire: expected exactly one question")
)

// ServerQuery is the zero-allocation server-side view of one received
// query: the handful of header fields a responder echoes, the question
// name in normalized text form, and the raw wire bytes of the question
// section for verbatim echo into the reply. Name's backing array is
// reused across DecodeQueryInto calls on the same ServerQuery, so a
// warmed scratch decodes without allocating; Raw aliases the decoded
// message and is only valid while the caller holds the packet buffer.
type ServerQuery struct {
	ID               uint16
	RecursionDesired bool
	Type             Type
	Class            Class

	// Name is the question name, lowercased and dot-separated with no
	// trailing dot — the form NormalizeName produces.
	Name []byte

	// Raw is the wire encoding of the question section (name, type,
	// class), a subslice of the message passed to DecodeQueryInto.
	Raw []byte
}

// DecodeQueryInto parses the header and single question of a wire-format
// query into q, reusing q's scratch buffers — the server-side counterpart
// of the scanner's query templates: no strings are built and nothing
// allocates once q's name buffer has grown to the workload's largest
// qname. Compressed question names are rejected (queries never carry
// them; a pointer in the question is either malformed or hostile), as are
// responses, non-zero opcodes and multi-question messages. Bytes past the
// question section (e.g. an EDNS OPT record) are ignored.
func DecodeQueryInto(msg []byte, q *ServerQuery) error {
	if len(msg) < 12 {
		return ErrTruncated
	}
	flags := binary.BigEndian.Uint16(msg[2:])
	if flags&0x8000 != 0 || (flags>>11)&0xf != 0 {
		return ErrNotAQuery
	}
	if binary.BigEndian.Uint16(msg[4:]) != 1 {
		return ErrBadQuestion
	}
	q.ID = binary.BigEndian.Uint16(msg)
	q.RecursionDesired = flags&0x0100 != 0
	q.Name = q.Name[:0]
	off := 12
	total := 0
	for {
		if off >= len(msg) {
			return ErrTruncated
		}
		b := int(msg[off])
		if b == 0 {
			off++
			break
		}
		if b&0xc0 != 0 {
			return ErrBadPointer
		}
		if off+1+b > len(msg) {
			return ErrTruncated
		}
		if total += b + 1; total > 255 {
			return ErrNameTooLong
		}
		if len(q.Name) > 0 {
			q.Name = append(q.Name, '.')
		}
		for _, c := range msg[off+1 : off+1+b] {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			q.Name = append(q.Name, c)
		}
		off += 1 + b
	}
	if off+4 > len(msg) {
		return ErrTruncated
	}
	q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	q.Raw = msg[12 : off+4]
	return nil
}

// AppendReplyRaw is AppendReply with the question section echoed verbatim
// from the received query instead of re-encoded from a parsed Question —
// the reply path of a server that decoded the query with DecodeQueryInto.
// For a normalized query name the output is byte-identical to
// AppendReply's (pinned by TestAppendReplyRawMatchesAppendReply); because
// the question bytes are copied rather than parsed, the call cannot fail,
// and with enough capacity in dst it does not allocate. rawQuestion must
// be a well-formed question section as produced by DecodeQueryInto.
func AppendReplyRaw(dst []byte, h Header, rawQuestion []byte, ansType Type, ttl uint32, rdata []byte) []byte {
	size := 12 + len(rawQuestion)
	if ansType != 0 {
		size += 2 + 2 + 2 + 4 + 2 + len(rdata)
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	dst = dst[:start+12]
	binary.BigEndian.PutUint16(dst[start:], h.ID)
	binary.BigEndian.PutUint16(dst[start+2:], h.flags())
	binary.BigEndian.PutUint16(dst[start+4:], 1)
	an := uint16(0)
	if ansType != 0 {
		an = 1
	}
	binary.BigEndian.PutUint16(dst[start+6:], an)
	binary.BigEndian.PutUint16(dst[start+8:], 0)
	binary.BigEndian.PutUint16(dst[start+10:], 0)
	dst = append(dst, rawQuestion...)
	if ansType != 0 {
		if len(rawQuestion) > 0 && rawQuestion[0] == 0 {
			// Root question name: no compression target, same as
			// AppendReply.
			dst = append(dst, 0)
		} else {
			// Compression pointer to the question name at offset 12.
			dst = append(dst, 0xc0, 0x0c)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(ansType))
		dst = binary.BigEndian.AppendUint16(dst, uint16(ClassIN))
		dst = binary.BigEndian.AppendUint32(dst, ttl)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(rdata)))
		dst = append(dst, rdata...)
	}
	return dst
}
