package dnswire

import (
	"encoding/binary"
	"fmt"

	"hitlist6/internal/ip6"
)

// Type is a DNS RR type.
type Type uint16

// Record types used by the hitlist pipeline.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
)

// String returns the conventional mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes observed in the Section 4.2 DNS behaviour evaluation.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the conventional mnemonic.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// Header is the fixed 12-byte DNS message header, unpacked.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a single query.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is a resource record. Exactly one of the payload fields is meaningful
// depending on Type: A → A, AAAA → AAAA, NS/CNAME/PTR → Target,
// MX → Pref+Target, TXT → Text.
type RR struct {
	Name   string
	Type   Type
	Class  Class
	TTL    uint32
	A      ip6.IPv4
	AAAA   ip6.Addr
	Target string
	Pref   uint16
	Text   string
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive query for (name, type) with the
// given transaction ID — the shape ZMapv6's DNS probe module sends.
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: NormalizeName(name), Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton echoing the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			RecursionDesired: m.Header.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

func (h Header) flags() uint16 {
	var f uint16
	if h.Response {
		f |= 1 << 15
	}
	f |= uint16(h.Opcode&0xf) << 11
	if h.Authoritative {
		f |= 1 << 10
	}
	if h.Truncated {
		f |= 1 << 9
	}
	if h.RecursionDesired {
		f |= 1 << 8
	}
	if h.RecursionAvailable {
		f |= 1 << 7
	}
	f |= uint16(h.RCode & 0xf)
	return f
}

func headerFromFlags(id, f uint16) Header {
	return Header{
		ID:                 id,
		Response:           f&(1<<15) != 0,
		Opcode:             uint8(f >> 11 & 0xf),
		Authoritative:      f&(1<<10) != 0,
		Truncated:          f&(1<<9) != 0,
		RecursionDesired:   f&(1<<8) != 0,
		RecursionAvailable: f&(1<<7) != 0,
		RCode:              RCode(f & 0xf),
	}
}

// Encode serializes the message with name compression.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 12, 128)
	binary.BigEndian.PutUint16(buf[0:], m.Header.ID)
	binary.BigEndian.PutUint16(buf[2:], m.Header.flags())
	binary.BigEndian.PutUint16(buf[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[10:], uint16(len(m.Additional)))

	table := make(map[string]int)
	var err error
	for _, q := range m.Questions {
		buf, err = appendCompressedName(buf, q.Name, table)
		if err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			buf, err = appendRR(buf, rr, table)
			if err != nil {
				return nil, fmt.Errorf("rr %q: %w", rr.Name, err)
			}
		}
	}
	return buf, nil
}

func appendRR(buf []byte, rr RR, table map[string]int) ([]byte, error) {
	var err error
	buf, err = appendCompressedName(buf, rr.Name, table)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	cl := rr.Class
	if cl == 0 {
		cl = ClassIN
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(cl))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)

	// RDLENGTH placeholder.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	switch rr.Type {
	case TypeA:
		buf = append(buf, rr.A[:]...)
	case TypeAAAA:
		buf = append(buf, rr.AAAA[:]...)
	case TypeNS, TypeCNAME, TypePTR:
		buf, err = appendCompressedName(buf, rr.Target, table)
		if err != nil {
			return nil, err
		}
	case TypeMX:
		buf = binary.BigEndian.AppendUint16(buf, rr.Pref)
		buf, err = appendCompressedName(buf, rr.Target, table)
		if err != nil {
			return nil, err
		}
	case TypeTXT:
		// Single character-string; long text is split into 255-byte chunks.
		text := rr.Text
		for len(text) > 255 {
			buf = append(buf, 255)
			buf = append(buf, text[:255]...)
			text = text[255:]
		}
		buf = append(buf, byte(len(text)))
		buf = append(buf, text...)
	default:
		return nil, fmt.Errorf("dnswire: cannot encode type %v", rr.Type)
	}
	rdlen := len(buf) - lenAt - 2
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Decode parses a wire-format DNS message.
func Decode(msg []byte) (*Message, error) {
	out := new(Message)
	if err := DecodeInto(msg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto parses a wire-format DNS message into out, reusing out's
// section slices across calls — the steady-state low-allocation variant of
// Decode for loops that parse many messages into one scratch Message. On
// error out is left in an undefined state; the strings placed into out
// still allocate (they are new per call), but the per-message Message and
// slice-header allocations of Decode are gone.
func DecodeInto(msg []byte, out *Message) error {
	if len(msg) < 12 {
		return ErrTruncated
	}
	id := binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	if qd+an+ns+ar > 4096 {
		return ErrTooManyRecords
	}
	out.Header = headerFromFlags(id, flags)
	out.Questions = out.Questions[:0]
	out.Answers = out.Answers[:0]
	out.Authority = out.Authority[:0]
	out.Additional = out.Additional[:0]
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = parseName(msg, off)
		if err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return ErrTruncated
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		out.Questions = append(out.Questions, q)
	}
	for _, sec := range [...]struct {
		n    int
		dst  *[]RR
		name string
	}{{an, &out.Answers, "answer"}, {ns, &out.Authority, "authority"}, {ar, &out.Additional, "additional"}} {
		for i := 0; i < sec.n; i++ {
			var rr RR
			rr, off, err = parseRR(msg, off)
			if err != nil {
				return fmt.Errorf("%s %d: %w", sec.name, i, err)
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return nil
}

// AppendReply appends the wire form of a minimal reply to a
// single-question query: header h, the question q echoed, and — when
// ansType is non-zero — exactly one answer record named after the
// question, of that type, carrying rdata (4 bytes for A, 16 for AAAA).
// The output is byte-for-byte identical to building the same message with
// Reply/Encode (including the compression pointer for the answer name),
// but costs a single allocation and no compression table. It is the
// hot-path encoder behind the network model's DNS answers and the GFW
// injector, where per-probe Encode calls dominated the allocation
// profile.
func AppendReply(dst []byte, h Header, q Question, ansType Type, ttl uint32, rdata []byte) ([]byte, error) {
	size := 12 + len(q.Name) + 2 + 4
	if ansType != 0 {
		size += 2 + 2 + 2 + 4 + 2 + len(rdata)
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	dst = dst[:start+12]
	binary.BigEndian.PutUint16(dst[start:], h.ID)
	binary.BigEndian.PutUint16(dst[start+2:], h.flags())
	binary.BigEndian.PutUint16(dst[start+4:], 1)
	an := uint16(0)
	if ansType != 0 {
		an = 1
	}
	binary.BigEndian.PutUint16(dst[start+6:], an)
	binary.BigEndian.PutUint16(dst[start+8:], 0)
	binary.BigEndian.PutUint16(dst[start+10:], 0)
	var err error
	dst, err = AppendName(dst, q.Name)
	if err != nil {
		return nil, fmt.Errorf("question %q: %w", q.Name, err)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(q.Type))
	dst = binary.BigEndian.AppendUint16(dst, uint16(q.Class))
	if ansType != 0 {
		if NormalizeName(q.Name) == "" {
			// The root name never enters the compression table; Encode
			// writes it out as a bare terminator.
			dst = append(dst, 0)
		} else {
			// Compression pointer to the question name, which always sits
			// at offset 12 of the message — exactly what Encode emits for
			// an answer named after the question.
			dst = append(dst, 0xc0, 0x0c)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(ansType))
		dst = binary.BigEndian.AppendUint16(dst, uint16(ClassIN))
		dst = binary.BigEndian.AppendUint32(dst, ttl)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(rdata)))
		dst = append(dst, rdata...)
	}
	return dst, nil
}

// VisitAnswers walks the answer section of a wire-format message without
// allocating: record names are skipped rather than decoded, and only the
// RR type and AAAA rdata — the fields GFW-injection classification reads —
// are extracted. fn returning false stops the walk. Validation is
// shallower than Decode's: section bounds, label lengths and pointer
// direction are checked, but compression pointers are not followed (the
// pointed-to labels go unvalidated), and the authority and additional
// sections are not parsed at all — a malformed message can therefore
// yield answers here that Decode would reject wholesale.
func VisitAnswers(msg []byte, fn func(t Type, aaaa ip6.Addr) bool) error {
	if len(msg) < 12 {
		return ErrTruncated
	}
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	if qd+an+ns+ar > 4096 {
		return ErrTooManyRecords
	}
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		if off, err = skipName(msg, off); err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		if off+4 > len(msg) {
			return ErrTruncated
		}
		off += 4
	}
	for i := 0; i < an; i++ {
		if off, err = skipName(msg, off); err != nil {
			return fmt.Errorf("answer %d: %w", i, err)
		}
		if off+10 > len(msg) {
			return ErrTruncated
		}
		t := Type(binary.BigEndian.Uint16(msg[off:]))
		rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
		off += 10
		if off+rdlen > len(msg) {
			return ErrTruncated
		}
		var aaaa ip6.Addr
		if t == TypeAAAA {
			if rdlen != 16 {
				return fmt.Errorf("dnswire: AAAA rdata length %d", rdlen)
			}
			copy(aaaa[:], msg[off:])
		}
		if !fn(t, aaaa) {
			return nil
		}
		off += rdlen
	}
	return nil
}

// skipName advances past a possibly compressed name without decoding it.
// Pointers are bounds- and direction-checked (forward/self pointers are
// invalid, as in parseName) but not followed.
func skipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			return off + 1, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return 0, ErrTruncated
			}
			if ptr := int(b&0x3f)<<8 | int(msg[off+1]); ptr >= off {
				return 0, ErrBadPointer
			}
			return off + 2, nil
		case b&0xc0 != 0:
			return 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xc0)
		default:
			off += 1 + int(b)
		}
	}
}

func parseRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	var err error
	rr.Name, off, err = parseName(msg, off)
	if err != nil {
		return rr, 0, err
	}
	if off+10 > len(msg) {
		return rr, 0, ErrTruncated
	}
	rr.Type = Type(binary.BigEndian.Uint16(msg[off:]))
	rr.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
	rr.TTL = binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return rr, 0, ErrTruncated
	}
	rdEnd := off + rdlen
	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, 0, fmt.Errorf("dnswire: A rdata length %d", rdlen)
		}
		copy(rr.A[:], msg[off:])
	case TypeAAAA:
		if rdlen != 16 {
			return rr, 0, fmt.Errorf("dnswire: AAAA rdata length %d", rdlen)
		}
		copy(rr.AAAA[:], msg[off:])
	case TypeNS, TypeCNAME, TypePTR:
		rr.Target, _, err = parseName(msg, off)
		if err != nil {
			return rr, 0, err
		}
	case TypeMX:
		if rdlen < 3 {
			return rr, 0, fmt.Errorf("dnswire: MX rdata length %d", rdlen)
		}
		rr.Pref = binary.BigEndian.Uint16(msg[off:])
		rr.Target, _, err = parseName(msg, off+2)
		if err != nil {
			return rr, 0, err
		}
	case TypeTXT:
		var text []byte
		p := off
		for p < rdEnd {
			l := int(msg[p])
			p++
			if p+l > rdEnd {
				return rr, 0, ErrTruncated
			}
			text = append(text, msg[p:p+l]...)
			p += l
		}
		rr.Text = string(text)
	default:
		// Unknown types are skipped but kept with empty payload.
	}
	return rr, rdEnd, nil
}
