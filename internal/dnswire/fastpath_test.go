package dnswire

import (
	"bytes"
	"testing"

	"hitlist6/internal/ip6"
)

// TestAppendReplyMatchesEncode pins the single-allocation fast encoder to
// the generic Reply+Encode path byte for byte, across the reply shapes
// the network model and the GFW injector emit.
func TestAppendReplyMatchesEncode(t *testing.T) {
	aaaa := ip6.MustParseAddr("2001:db8::1234")
	a4 := []byte{31, 13, 94, 37}
	cases := []struct {
		name    string
		qname   string
		hdr     Header
		ansType Type
		ttl     uint32
		rdata   []byte
	}{
		{"refused", "www.google.com", Header{ID: 0x4242, Response: true, RecursionDesired: true, RCode: RCodeRefused}, 0, 0, nil},
		{"notimp", "x.example.org", Header{ID: 1, Response: true, RCode: RCodeNotImp}, 0, 0, nil},
		{"ra-no-answer", "a.b.c.example", Header{ID: 7, Response: true, RecursionDesired: true, RecursionAvailable: true}, 0, 0, nil},
		{"injected-a", "www.google.com", Header{ID: 0xbeef, Response: true, RecursionDesired: true, RecursionAvailable: true}, TypeA, 173, a4},
		{"injected-aaaa", "maps.google.com", Header{ID: 0xffff, Response: true, RecursionAvailable: true}, TypeAAAA, 60, aaaa[:]},
		{"open-resolver", "h0123.hitlist-exp.example", Header{ID: 9, Response: true, RecursionDesired: true, RecursionAvailable: true}, TypeAAAA, 300, aaaa[:]},
		{"root-question", "", Header{ID: 2, Response: true}, TypeA, 5, a4},
	}
	for _, tc := range cases {
		q := Question{Name: NormalizeName(tc.qname), Type: TypeAAAA, Class: ClassIN}

		ref := &Message{Header: tc.hdr, Questions: []Question{q}}
		if tc.ansType != 0 {
			rr := RR{Name: q.Name, Type: tc.ansType, TTL: tc.ttl}
			switch tc.ansType {
			case TypeA:
				copy(rr.A[:], tc.rdata)
			case TypeAAAA:
				copy(rr.AAAA[:], tc.rdata)
			}
			ref.Answers = append(ref.Answers, rr)
		}
		want, err := ref.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", tc.name, err)
		}

		got, err := AppendReply(nil, tc.hdr, q, tc.ansType, tc.ttl, tc.rdata)
		if err != nil {
			t.Fatalf("%s: AppendReply: %v", tc.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: wires differ\n fast: %x\n slow: %x", tc.name, got, want)
		}

		// The fast wire must round-trip through the full decoder.
		if _, err := Decode(got); err != nil {
			t.Errorf("%s: decoding fast wire: %v", tc.name, err)
		}
	}
}

// TestAppendReplyAppends: AppendReply must append to a non-empty dst
// without disturbing existing bytes, and the message must stay
// self-contained (pointers are message-relative).
func TestAppendReplyAppends(t *testing.T) {
	q := Question{Name: "www.example.com", Type: TypeAAAA, Class: ClassIN}
	hdr := Header{ID: 5, Response: true}
	first, err := AppendReply(nil, hdr, q, TypeA, 60, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	both, err := AppendReply(append([]byte(nil), first...), hdr, q, TypeA, 60, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(both[:len(first)], first) || !bytes.Equal(both[len(first):], first) {
		t.Fatal("AppendReply disturbed dst or emitted non-self-contained message")
	}
}

// TestVisitAnswersMatchesDecode pins the zero-allocation answer walker to
// the full decoder on every answer shape classification reads.
func TestVisitAnswersMatchesDecode(t *testing.T) {
	teredo := ip6.TeredoAddr(ip6.IPv4{65, 54, 227, 120}, ip6.IPv4{31, 13, 94, 37})
	build := func(rrs ...RR) []byte {
		r := NewQuery(3, "www.google.com", TypeAAAA).Reply()
		r.Answers = rrs
		w, err := r.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	wires := [][]byte{
		build(),
		build(RR{Name: "www.google.com", Type: TypeA, TTL: 60, A: ip6.IPv4{1, 2, 3, 4}}),
		build(RR{Name: "www.google.com", Type: TypeAAAA, TTL: 60, AAAA: teredo}),
		build(
			RR{Name: "www.google.com", Type: TypeAAAA, TTL: 60, AAAA: ip6.MustParseAddr("2607:f8b0::2004")},
			RR{Name: "www.google.com", Type: TypeA, TTL: 60, A: ip6.IPv4{142, 250, 1, 1}},
		),
		build(RR{Name: "www.google.com", Type: TypeCNAME, TTL: 0, Target: "localhost"}),
	}
	for i, wire := range wires {
		m, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		var got []RR
		if err := VisitAnswers(wire, func(ty Type, aaaa ip6.Addr) bool {
			got = append(got, RR{Type: ty, AAAA: aaaa})
			return true
		}); err != nil {
			t.Fatalf("wire %d: VisitAnswers: %v", i, err)
		}
		if len(got) != len(m.Answers) {
			t.Fatalf("wire %d: %d visited answers, Decode saw %d", i, len(got), len(m.Answers))
		}
		for j := range got {
			if got[j].Type != m.Answers[j].Type {
				t.Errorf("wire %d answer %d: type %v vs %v", i, j, got[j].Type, m.Answers[j].Type)
			}
			if m.Answers[j].Type == TypeAAAA && got[j].AAAA != m.Answers[j].AAAA {
				t.Errorf("wire %d answer %d: AAAA %v vs %v", i, j, got[j].AAAA, m.Answers[j].AAAA)
			}
		}
	}

	// Garbage must error, as Decode does.
	if err := VisitAnswers([]byte{1, 2, 3}, func(Type, ip6.Addr) bool { return true }); err == nil {
		t.Error("VisitAnswers accepted garbage")
	}
}

// TestDecodeIntoReuses: DecodeInto must fully reset the scratch message
// between calls.
func TestDecodeIntoReuses(t *testing.T) {
	var m Message
	w1, _ := NewQuery(1, "a.example.com", TypeAAAA).Encode()
	r2 := NewQuery(2, "b.example.net", TypeAAAA).Reply()
	r2.Answers = append(r2.Answers, RR{Name: "b.example.net", Type: TypeAAAA, TTL: 9, AAAA: ip6.MustParseAddr("2001:db8::9")})
	w2, _ := r2.Encode()

	if err := DecodeInto(w2, &m); err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(w1, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 0 || len(m.Questions) != 1 || m.Questions[0].Name != "a.example.com" || m.Header.ID != 1 {
		t.Fatalf("scratch not reset: %+v", m)
	}
	// DecodeInto and Decode agree.
	ref, err := Decode(w2)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(w2, &m); err != nil {
		t.Fatal(err)
	}
	if m.Header != ref.Header || len(m.Answers) != len(ref.Answers) || m.Answers[0] != ref.Answers[0] {
		t.Fatalf("DecodeInto diverges from Decode: %+v vs %+v", m, *ref)
	}
}

// TestVisitAnswersBadPointer: forward/self compression pointers are
// rejected, as Decode rejects them — a malformed message must not
// contribute classification evidence.
func TestVisitAnswersBadPointer(t *testing.T) {
	// Header: ID 1, QD=0, AN=1; answer name is a forward pointer.
	msg := []byte{
		0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0,
		0xc0, 0xff, // pointer past the end of the message
		0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4,
	}
	if err := VisitAnswers(msg, func(Type, ip6.Addr) bool { return true }); err == nil {
		t.Fatal("forward pointer accepted")
	}
	if _, err := Decode(msg); err == nil {
		t.Fatal("Decode accepted the same message — parity check broken")
	}
}
