// Package dnswire implements the DNS wire format (RFC 1035 with AAAA from
// RFC 3596): message building and parsing with name compression.
//
// The hitlist service probes UDP/53 by sending a real DNS query and judging
// responsiveness from whatever comes back — exactly the behaviour that made
// Great-Firewall injections look like responsive resolvers. The GFW filter
// therefore needs to look *inside* responses (A-for-AAAA answers, Teredo
// AAAA records, multiple answers), so the codec is a first-class substrate
// here, not a mock.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name-handling errors.
var (
	ErrNameTooLong     = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong    = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel      = errors.New("dnswire: empty label")
	ErrBadPointer      = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrTruncated       = errors.New("dnswire: message truncated")
	ErrTooManyRecords  = errors.New("dnswire: implausible record count")
	ErrTrailingGarbage = errors.New("dnswire: trailing bytes after message")
)

// NormalizeName lower-cases a domain name and strips one trailing dot.
// DNS names are case-insensitive; the registry and the codec use this
// canonical form throughout.
func NormalizeName(name string) string {
	name = strings.TrimSuffix(name, ".")
	return strings.ToLower(name)
}

// AppendName encodes name (dot-separated, optionally ending in a dot) into
// buf in uncompressed wire form. An empty name encodes the root. It is the
// building block of the fast reply encoders (AppendReply), which skip the
// compression table of the generic Encode path.
func AppendName(buf []byte, name string) ([]byte, error) {
	name = NormalizeName(name)
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			label := name[start:i]
			if len(label) == 0 {
				return nil, ErrEmptyLabel
			}
			if len(label) > 63 {
				return nil, ErrLabelTooLong
			}
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
			start = i + 1
		}
	}
	return append(buf, 0), nil
}

// appendCompressedName encodes name using compression against previously
// encoded names recorded in table (suffix -> offset). It records new suffix
// offsets for subsequent names.
func appendCompressedName(buf []byte, name string, table map[string]int) ([]byte, error) {
	name = NormalizeName(name)
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	for {
		if off, ok := table[name]; ok && off < 0x3fff {
			return append(buf, 0xc0|byte(off>>8), byte(off)), nil
		}
		if len(buf) < 0x3fff {
			table[name] = len(buf)
		}
		dot := strings.IndexByte(name, '.')
		var label string
		if dot < 0 {
			label = name
		} else {
			label = name[:dot]
		}
		if len(label) == 0 {
			return nil, ErrEmptyLabel
		}
		if len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
		if dot < 0 {
			return append(buf, 0), nil
		}
		name = name[dot+1:]
	}
}

// parseName decodes a possibly compressed name starting at off.
// It returns the name in normalized text form and the offset just past the
// name's bytes at the top level (pointers are followed but do not advance).
func parseName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	ptrBudget := 32 // generous; real messages chain a handful at most
	end := off
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			name := sb.String()
			if len(name) > 253 {
				return "", 0, ErrNameTooLong
			}
			return name, end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(b&0x3f)<<8 | int(msg[off+1])
			if !jumped {
				end = off + 2
			}
			if ptr >= off {
				// Forward or self pointers are invalid and would loop.
				return "", 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			off = ptr
			jumped = true
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xc0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			for _, c := range msg[off+1 : off+1+l] {
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				sb.WriteByte(c)
			}
			off += 1 + l
		}
	}
}
