package dnswire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"hitlist6/internal/ip6"
)

func TestQueryRoundtrip(t *testing.T) {
	q := NewQuery(0x1234, "WWW.Google.COM.", TypeAAAA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Errorf("header: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions: %d", len(got.Questions))
	}
	if got.Questions[0].Name != "www.google.com" {
		t.Errorf("name not normalized: %q", got.Questions[0].Name)
	}
	if got.Questions[0].Type != TypeAAAA || got.Questions[0].Class != ClassIN {
		t.Errorf("qtype/qclass: %v %v", got.Questions[0].Type, got.Questions[0].Class)
	}
}

func TestResponseRoundtripAllTypes(t *testing.T) {
	q := NewQuery(7, "example.org", TypeAAAA)
	r := q.Reply()
	r.Header.RCode = RCodeNoError
	r.Header.RecursionAvailable = true
	r.Header.Authoritative = true
	r.Answers = append(r.Answers,
		RR{Name: "example.org", Type: TypeCNAME, TTL: 60, Target: "cdn.example.org"},
		RR{Name: "cdn.example.org", Type: TypeAAAA, TTL: 300, AAAA: ip6.MustParseAddr("2001:db9::1")},
		RR{Name: "example.org", Type: TypeA, TTL: 300, A: ip6.IPv4{192, 0, 2, 7}},
		RR{Name: "example.org", Type: TypeTXT, TTL: 10, Text: "hello world"},
	)
	r.Authority = append(r.Authority,
		RR{Name: "example.org", Type: TypeNS, TTL: 3600, Target: "ns1.example.org"},
	)
	r.Additional = append(r.Additional,
		RR{Name: "example.org", Type: TypeMX, TTL: 3600, Pref: 10, Target: "mail.example.org"},
	)
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Response || !got.Header.Authoritative || !got.Header.RecursionAvailable {
		t.Errorf("flags: %+v", got.Header)
	}
	if len(got.Answers) != 4 || len(got.Authority) != 1 || len(got.Additional) != 1 {
		t.Fatalf("sections: %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if got.Answers[0].Target != "cdn.example.org" {
		t.Errorf("CNAME target: %q", got.Answers[0].Target)
	}
	if got.Answers[1].AAAA != ip6.MustParseAddr("2001:db9::1") {
		t.Errorf("AAAA: %v", got.Answers[1].AAAA)
	}
	if got.Answers[2].A != (ip6.IPv4{192, 0, 2, 7}) {
		t.Errorf("A: %v", got.Answers[2].A)
	}
	if got.Answers[3].Text != "hello world" {
		t.Errorf("TXT: %q", got.Answers[3].Text)
	}
	if got.Authority[0].Target != "ns1.example.org" {
		t.Errorf("NS: %q", got.Authority[0].Target)
	}
	mx := got.Additional[0]
	if mx.Pref != 10 || mx.Target != "mail.example.org" {
		t.Errorf("MX: %+v", mx)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	r := NewQuery(1, "a.very.long.domain.example.com", TypeAAAA).Reply()
	for i := 0; i < 5; i++ {
		r.Answers = append(r.Answers, RR{
			Name: "a.very.long.domain.example.com", Type: TypeAAAA, TTL: 1,
			AAAA: ip6.Addr{15: byte(i)},
		})
	}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, each answer would repeat the 32-byte name; compressed
	// answers use a 2-byte pointer.
	if len(wire) > 12+32+4+5*(2+10+16)+16 {
		t.Errorf("message not compressed: %d bytes", len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got.Answers {
		if a.Name != "a.very.long.domain.example.com" {
			t.Errorf("decompressed name: %q", a.Name)
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	// Arbitrary label data (constrained to legal label charset) survives
	// an encode/decode cycle.
	f := func(id uint16, raw [16]byte, labelSeed uint8) bool {
		label := strings.Repeat(string('a'+rune(labelSeed%26)), int(labelSeed%60)+1)
		name := label + ".example.net"
		q := NewQuery(id, name, TypeAAAA)
		r := q.Reply()
		r.Answers = append(r.Answers, RR{Name: name, Type: TypeAAAA, TTL: 42, AAAA: ip6.AddrFrom16(raw)})
		wire, err := r.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Header.ID == id &&
			got.Answers[0].AAAA == ip6.AddrFrom16(raw) &&
			got.Answers[0].Name == NormalizeName(name)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	q := NewQuery(9, "www.example.com", TypeAAAA)
	wire, _ := q.Encode()

	if _, err := Decode(wire[:8]); err == nil {
		t.Error("short header accepted")
	}
	if _, err := Decode(wire[:len(wire)-3]); err == nil {
		t.Error("truncated question accepted")
	}
	// Claim many questions with no data.
	bad := bytes.Clone(wire)
	bad[4], bad[5] = 0xff, 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("bogus qdcount accepted")
	}
	// Forward compression pointer.
	ptr := []byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x20, 0, 1, 0, 1}
	if _, err := Decode(ptr); err == nil {
		t.Error("forward pointer accepted")
	}
	// Self-referential pointer at offset 12.
	loop := []byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12, 0, 1, 0, 1}
	if _, err := Decode(loop); err == nil {
		t.Error("pointer loop accepted")
	}
}

func TestLabelLimits(t *testing.T) {
	long := strings.Repeat("a", 64) + ".com"
	if _, err := NewQuery(1, long, TypeAAAA).Encode(); err == nil {
		t.Error("64-byte label accepted")
	}
	huge := strings.Repeat("abcdefgh.", 32) + "com" // > 255 total
	if _, err := NewQuery(1, huge, TypeAAAA).Encode(); err == nil {
		t.Error("over-long name accepted")
	}
	if _, err := NewQuery(1, "a..b.com", TypeAAAA).Encode(); err == nil {
		t.Error("empty label accepted")
	}
	// 63-byte label is legal.
	ok := strings.Repeat("a", 63) + ".com"
	if _, err := NewQuery(1, ok, TypeAAAA).Encode(); err != nil {
		t.Errorf("63-byte label rejected: %v", err)
	}
}

func TestRootName(t *testing.T) {
	q := NewQuery(3, ".", TypeNS)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "" {
		t.Errorf("root name: %q", got.Questions[0].Name)
	}
}

func TestLongTXTChunking(t *testing.T) {
	text := strings.Repeat("x", 700)
	r := NewQuery(5, "t.example.com", TypeTXT).Reply()
	r.Answers = append(r.Answers, RR{Name: "t.example.com", Type: TypeTXT, TTL: 1, Text: text})
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Text != text {
		t.Errorf("TXT roundtrip lost data: %d bytes", len(got.Answers[0].Text))
	}
}

func TestRCodeAndTypeStrings(t *testing.T) {
	if RCodeRefused.String() != "REFUSED" || RCodeNoError.String() != "NOERROR" {
		t.Error("RCode strings")
	}
	if RCode(12).String() != "RCODE12" {
		t.Error("unknown RCode string")
	}
	if TypeAAAA.String() != "AAAA" || TypeMX.String() != "MX" {
		t.Error("Type strings")
	}
	if Type(999).String() != "TYPE999" {
		t.Error("unknown Type string")
	}
}

func TestNormalizeName(t *testing.T) {
	if NormalizeName("WWW.Example.COM.") != "www.example.com" {
		t.Error("NormalizeName failed")
	}
	if NormalizeName("") != "" {
		t.Error("empty name")
	}
}

func TestReplyEchoesQuestion(t *testing.T) {
	q := NewQuery(77, "abc.example.com", TypeAAAA)
	r := q.Reply()
	if r.Header.ID != 77 || !r.Header.Response {
		t.Error("Reply header wrong")
	}
	if len(r.Questions) != 1 || r.Questions[0].Name != "abc.example.com" {
		t.Error("Reply question wrong")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	// Hand-build a message with an unknown RR type (e.g. 99) and 4 bytes of
	// rdata; Decode should skip over rdata gracefully.
	msg := []byte{
		0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0, // header: 1 answer
		1, 'x', 0, // name "x"
		0, 99, 0, 1, // type 99, class IN
		0, 0, 0, 5, // TTL
		0, 4, 1, 2, 3, 4, // rdlength 4 + rdata
	}
	got, err := Decode(msg)
	if err != nil {
		t.Fatalf("unknown type: %v", err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Type != Type(99) {
		t.Errorf("answers: %+v", got.Answers)
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	q := NewQuery(1, "www.google.com", TypeAAAA)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResponse(b *testing.B) {
	r := NewQuery(1, "www.google.com", TypeAAAA).Reply()
	r.Answers = append(r.Answers, RR{Name: "www.google.com", Type: TypeAAAA, TTL: 300, AAAA: ip6.MustParseAddr("2607:f8b0::2004")})
	wire, _ := r.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
