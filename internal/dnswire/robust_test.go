package dnswire

import (
	"testing"
	"testing/quick"

	"hitlist6/internal/rng"
)

// TestDecodeNeverPanics feeds pseudo-random byte soup into the decoder:
// whatever the network sends, parsing must fail cleanly, never crash.
func TestDecodeNeverPanics(t *testing.T) {
	r := rng.NewStream(1, "dns-fuzz")
	for i := 0; i < 20000; i++ {
		n := int(r.Uint64n(64))
		buf := make([]byte, n)
		r.Fill(buf)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("Decode panicked on %x: %v", buf, rec)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}

// TestDecodeTruncationsOfValidMessage: every prefix of a valid message
// either parses or errors — no panics, no infinite loops.
func TestDecodeTruncationsOfValidMessage(t *testing.T) {
	m := NewQuery(7, "www.example.com", TypeAAAA).Reply()
	m.Answers = append(m.Answers, RR{Name: "www.example.com", Type: TypeAAAA, TTL: 1})
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(wire); i++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic at truncation %d: %v", i, rec)
				}
			}()
			_, _ = Decode(wire[:i])
		}()
	}
}

// TestDecodeBitflips: single-byte corruptions of a valid message must not
// panic and, when they parse, must yield a structurally bounded message.
func TestDecodeBitflips(t *testing.T) {
	m := NewQuery(7, "www.example.com", TypeAAAA).Reply()
	m.Answers = append(m.Answers,
		RR{Name: "www.example.com", Type: TypeA, TTL: 1, A: [4]byte{1, 2, 3, 4}},
		RR{Name: "www.example.com", Type: TypeCNAME, TTL: 1, Target: "x.example.com"},
	)
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(wire); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			buf := append([]byte(nil), wire...)
			buf[pos] ^= flip
			got, err := Decode(buf)
			if err != nil {
				continue
			}
			if len(got.Answers) > 4096 || len(got.Questions) > 4096 {
				t.Fatalf("unbounded sections after bitflip at %d", pos)
			}
		}
	}
}

// TestEncodeDecodeIdempotent: decode(encode(m)) re-encodes to identical
// bytes — the codec is a fixed point after one round trip.
func TestEncodeDecodeIdempotent(t *testing.T) {
	f := func(id uint16, raw [16]byte) bool {
		m := NewQuery(id, "idempotent.example.org", TypeAAAA).Reply()
		m.Answers = append(m.Answers, RR{
			Name: "idempotent.example.org", Type: TypeAAAA, TTL: 60, AAAA: raw,
		})
		w1, err := m.Encode()
		if err != nil {
			return false
		}
		d, err := Decode(w1)
		if err != nil {
			return false
		}
		// Re-encode needs Class defaulting to match.
		for i := range d.Answers {
			d.Answers[i].Class = ClassIN
		}
		w2, err := d.Encode()
		if err != nil {
			return false
		}
		if len(w1) != len(w2) {
			return false
		}
		for i := range w1 {
			if w1[i] != w2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
