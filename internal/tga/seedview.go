package tga

// SeedView is the sharded seed contract between the pipeline and the
// generators: per-shard sorted spans plus a total length and per-shard
// epochs, wrapping an ip6.SortedShardSet frozen from the cumulative
// responsive set. Views are cheap to hand out every round because the
// freeze is an epoch delta — shards whose membership did not change
// pointer-share their frozen span with the previous round's view, which
// is also what lets a generator's incremental model prove a shard's
// cached statistics current by slice identity alone (SameSpan).
//
// Spans are immutable by contract; generators read them but never write.

import (
	"runtime"

	"hitlist6/internal/ip6"
)

// SeedView wraps a frozen sorted shard set as the generators' seed
// contract. The zero/nil view is empty.
type SeedView struct {
	set *ip6.SortedShardSet
}

// NewSeedView wraps an already-frozen sorted shard set.
func NewSeedView(set *ip6.SortedShardSet) *SeedView { return &SeedView{set: set} }

// SeedViewOf materializes a view from a flat seed slice — the compat
// shim the stateless Generate/Emit paths and the CLI use. Seeds are
// partitioned by canonical shard, sorted, and deduplicated; the caller's
// slice is not modified.
func SeedViewOf(seeds []ip6.Addr) *SeedView {
	var shards [ip6.AddrShards][]ip6.Addr
	for _, a := range seeds {
		sh := ip6.ShardOf(a)
		shards[sh] = append(shards[sh], a)
	}
	for sh := range shards {
		span := shards[sh]
		ip6.SortAddrs(span)
		out := span[:0]
		for i, a := range span {
			if i > 0 && a == span[i-1] {
				continue
			}
			out = append(out, a)
		}
		shards[sh] = out
	}
	return &SeedView{set: ip6.SortedFromShards(shards)}
}

// Len returns the total seed count; a nil view is empty.
func (v *SeedView) Len() int {
	if v == nil {
		return 0
	}
	return v.set.Len()
}

// Shard returns shard i's sorted span; treat as read-only.
func (v *SeedView) Shard(i int) []ip6.Addr {
	if v == nil || v.set == nil {
		return nil
	}
	return v.set.Shard(i)
}

// ShardEpoch returns the mutation epoch shard i was frozen at (0 for
// views built by SeedViewOf).
func (v *SeedView) ShardEpoch(i int) uint64 {
	if v == nil || v.set == nil {
		return 0
	}
	return v.set.ShardEpoch(i)
}

// Has reports seed membership by binary search over the address's
// canonical shard — the emission-phase "is this a seed" test, replacing
// the per-round resident copy of the whole seed set.
func (v *SeedView) Has(a ip6.Addr) bool {
	if v == nil {
		return false
	}
	return v.set.Has(a)
}

// Walk visits every seed in canonical order (shard by shard, sorted
// within each shard); fn returning false stops the walk.
func (v *SeedView) Walk(fn func(ip6.Addr) bool) {
	if v == nil || v.set == nil {
		return
	}
	v.set.Walk(fn)
}

// SameSpan reports whether two frozen shard spans are the same immutable
// slice. The delta freeze pointer-shares unchanged shards and allocates
// fresh arrays for re-frozen ones, so slice identity is a sound and
// complete currency test for a model's per-shard statistics; two empty
// spans are trivially the same.
func SameSpan(a, b []ip6.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// ModelWorkers is the per-shard parallelism the incremental models use
// when rebuilding dirty-shard statistics (ip6.ParallelShards handles
// workers <= 1 inline). Shard slots are disjoint, so parallel rebuilds
// stay deterministic.
func ModelWorkers() int { return runtime.GOMAXPROCS(0) }
