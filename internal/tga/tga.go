// Package tga defines the target generation algorithm (TGA) interface and
// shared seed utilities used by the concrete generators (6Tree, 6Graph,
// 6GAN, 6VecLM and the paper's own distance clustering).
//
// All generators consume a seed set of known-responsive addresses and emit
// candidate addresses, the paper's Section 6 workload. The reimplementations
// follow the published algorithms' structure; where the originals train
// neural models (6GAN's GAN+RL, 6VecLM's transformer) we substitute
// deterministic statistical models over nibble sequences that preserve the
// generators' observable behaviour: their candidate volume, their bias
// towards dense regions, and their (low) hit rates.
package tga

import (
	"math"

	"hitlist6/internal/ip6"
)

// Generator produces candidate addresses from seeds.
type Generator interface {
	// Name is the analysis label ("6Tree", "6Graph", ...).
	Name() string
	// Generate returns up to budget candidates derived from seeds.
	// Implementations are deterministic and must not return seed
	// addresses themselves.
	Generate(seeds []ip6.Addr, budget int) []ip6.Addr
}

// DedupAgainstSeeds removes seed addresses and duplicates from candidates,
// preserving order.
func DedupAgainstSeeds(candidates, seeds []ip6.Addr) []ip6.Addr {
	seedSet := ip6.NewSet(len(seeds))
	seedSet.AddSlice(seeds)
	seen := ip6.NewSet(len(candidates))
	out := candidates[:0]
	for _, c := range candidates {
		if seedSet.Has(c) || !seen.Add(c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// NibbleCounts accumulates per-position nibble value counts over seeds
// into counts — the per-shard statistic the incremental models build in
// parallel and merge by plain addition.
func NibbleCounts(seeds []ip6.Addr, counts *[32][16]int64) {
	for _, a := range seeds {
		n := a.Nibbles()
		for i, v := range n {
			counts[i][v]++
		}
	}
}

// EntropyFromCounts computes the empirical Shannon entropy (bits) per
// nibble position from accumulated counts over total seeds. Counts are
// integers, so per-shard counts summed into globals yield bit-identical
// entropies to a from-scratch pass.
func EntropyFromCounts(counts *[32][16]int64, total int) [32]float64 {
	var out [32]float64
	if total == 0 {
		return out
	}
	t := float64(total)
	for i := range counts {
		h := 0.0
		for _, c := range counts[i] {
			if c == 0 {
				continue
			}
			p := float64(c) / t
			h -= p * math.Log2(p)
		}
		out[i] = h
	}
	return out
}

// NibbleEntropy computes the empirical Shannon entropy (bits) of each of
// the 32 nibble positions over the seed set — the Entropy/IP-style signal
// every structural TGA starts from.
func NibbleEntropy(seeds []ip6.Addr) [32]float64 {
	var counts [32][16]int64
	NibbleCounts(seeds, &counts)
	return EntropyFromCounts(&counts, len(seeds))
}

// NibbleValueSets returns, per position, the sorted distinct nibble values
// observed in the seed set.
func NibbleValueSets(seeds []ip6.Addr) [32][]byte {
	var seen [32][16]bool
	for _, a := range seeds {
		n := a.Nibbles()
		for i, v := range n {
			seen[i][v] = true
		}
	}
	var out [32][]byte
	for i := range seen {
		for v := byte(0); v < 16; v++ {
			if seen[i][v] {
				out[i] = append(out[i], v)
			}
		}
	}
	return out
}

// Slash64Group is one /64's seed addresses, sorted ascending. Distance
// clustering and the dense-region analyses operate per /64.
type Slash64Group struct {
	Prefix ip6.Prefix
	Addrs  []ip6.Addr
}

// GroupBySlash64 buckets seeds by their /64, returning groups sorted by
// prefix with members sorted ascending — determinism by construction,
// with no map and no per-bucket re-sort (the former map form forced
// every caller through a separate key sort to recover a stable order).
func GroupBySlash64(seeds []ip6.Addr) []Slash64Group {
	if len(seeds) == 0 {
		return nil
	}
	sorted := append([]ip6.Addr(nil), seeds...)
	ip6.SortAddrs(sorted)
	return GroupSortedBySlash64(sorted)
}

// GroupSortedBySlash64 is GroupBySlash64 over addresses already sorted
// ascending — one linear scan, with every group's Addrs a subslice of
// the input (no copying). This is the form the incremental models run
// per seed-view shard: frozen shard spans are already sorted, so a /64's
// members are contiguous.
func GroupSortedBySlash64(sorted []ip6.Addr) []Slash64Group {
	var out []Slash64Group
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && ip6.Slash64(sorted[i]) == ip6.Slash64(sorted[start]) {
			continue
		}
		out = append(out, Slash64Group{
			Prefix: ip6.Slash64(sorted[start]),
			Addrs:  sorted[start:i:i],
		})
		start = i
	}
	return out
}

// MergeSlash64Groups merges per-shard group lists (each sorted by
// prefix, members sorted) into one list with the same invariants. A /64's
// members scatter across shards (ShardOf hashes the full address), so
// same-prefix groups from different shards are merged member-wise with a
// k-way walk — no re-sorting, no hashing.
func MergeSlash64Groups(lists [][]Slash64Group) []Slash64Group {
	idx := make([]int, len(lists))
	var out []Slash64Group
	var heads []int // indices of lists whose head shares the minimum prefix
	for {
		heads = heads[:0]
		var min ip6.Prefix
		for li, l := range lists {
			if idx[li] >= len(l) {
				continue
			}
			p := l[idx[li]].Prefix
			if len(heads) == 0 || ip6.ComparePrefix(p, min) < 0 {
				heads = append(heads[:0], li)
				min = p
			} else if ip6.ComparePrefix(p, min) == 0 {
				heads = append(heads, li)
			}
		}
		if len(heads) == 0 {
			return out
		}
		if len(heads) == 1 {
			out = append(out, lists[heads[0]][idx[heads[0]]])
			idx[heads[0]]++
			continue
		}
		total := 0
		for _, li := range heads {
			total += len(lists[li][idx[li]].Addrs)
		}
		// Members are disjoint across shards, so concatenate-and-sort
		// yields the same ascending member list a k-way walk would.
		merged := make([]ip6.Addr, 0, total)
		for _, li := range heads {
			merged = append(merged, lists[li][idx[li]].Addrs...)
			idx[li]++
		}
		ip6.SortAddrs(merged)
		out = append(out, Slash64Group{Prefix: min, Addrs: merged})
	}
}
