// Package tga defines the target generation algorithm (TGA) interface and
// shared seed utilities used by the concrete generators (6Tree, 6Graph,
// 6GAN, 6VecLM and the paper's own distance clustering).
//
// All generators consume a seed set of known-responsive addresses and emit
// candidate addresses, the paper's Section 6 workload. The reimplementations
// follow the published algorithms' structure; where the originals train
// neural models (6GAN's GAN+RL, 6VecLM's transformer) we substitute
// deterministic statistical models over nibble sequences that preserve the
// generators' observable behaviour: their candidate volume, their bias
// towards dense regions, and their (low) hit rates.
package tga

import (
	"math"
	"sort"

	"hitlist6/internal/ip6"
)

// Generator produces candidate addresses from seeds.
type Generator interface {
	// Name is the analysis label ("6Tree", "6Graph", ...).
	Name() string
	// Generate returns up to budget candidates derived from seeds.
	// Implementations are deterministic and must not return seed
	// addresses themselves.
	Generate(seeds []ip6.Addr, budget int) []ip6.Addr
}

// DedupAgainstSeeds removes seed addresses and duplicates from candidates,
// preserving order.
func DedupAgainstSeeds(candidates, seeds []ip6.Addr) []ip6.Addr {
	seedSet := ip6.NewSet(len(seeds))
	seedSet.AddSlice(seeds)
	seen := ip6.NewSet(len(candidates))
	out := candidates[:0]
	for _, c := range candidates {
		if seedSet.Has(c) || !seen.Add(c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// NibbleEntropy computes the empirical Shannon entropy (bits) of each of
// the 32 nibble positions over the seed set — the Entropy/IP-style signal
// every structural TGA starts from.
func NibbleEntropy(seeds []ip6.Addr) [32]float64 {
	var counts [32][16]int
	for _, a := range seeds {
		n := a.Nibbles()
		for i, v := range n {
			counts[i][v]++
		}
	}
	var out [32]float64
	if len(seeds) == 0 {
		return out
	}
	total := float64(len(seeds))
	for i := range counts {
		h := 0.0
		for _, c := range counts[i] {
			if c == 0 {
				continue
			}
			p := float64(c) / total
			h -= p * math.Log2(p)
		}
		out[i] = h
	}
	return out
}

// NibbleValueSets returns, per position, the sorted distinct nibble values
// observed in the seed set.
func NibbleValueSets(seeds []ip6.Addr) [32][]byte {
	var seen [32][16]bool
	for _, a := range seeds {
		n := a.Nibbles()
		for i, v := range n {
			seen[i][v] = true
		}
	}
	var out [32][]byte
	for i := range seen {
		for v := byte(0); v < 16; v++ {
			if seen[i][v] {
				out[i] = append(out[i], v)
			}
		}
	}
	return out
}

// GroupBySlash64 buckets seeds by their /64, sorted within each bucket.
// Distance clustering and the dense-region analyses operate per /64.
func GroupBySlash64(seeds []ip6.Addr) map[ip6.Prefix][]ip6.Addr {
	out := make(map[ip6.Prefix][]ip6.Addr)
	for _, a := range seeds {
		p := ip6.Slash64(a)
		out[p] = append(out[p], a)
	}
	for _, v := range out {
		ip6.SortAddrs(v)
	}
	return out
}

// SortedPrefixes returns the map keys in stable order.
func SortedPrefixes(m map[ip6.Prefix][]ip6.Addr) []ip6.Prefix {
	out := make([]ip6.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}
