package tga

import (
	"testing"

	"hitlist6/internal/ip6"
)

func addrs(ss ...string) []ip6.Addr {
	out := make([]ip6.Addr, len(ss))
	for i, s := range ss {
		out[i] = ip6.MustParseAddr(s)
	}
	return out
}

func TestDedupAgainstSeeds(t *testing.T) {
	seeds := addrs("2001:db9::1", "2001:db9::2")
	cands := addrs("2001:db9::1", "2001:db9::3", "2001:db9::3", "2001:db9::4")
	out := DedupAgainstSeeds(cands, seeds)
	if len(out) != 2 || out[0] != ip6.MustParseAddr("2001:db9::3") || out[1] != ip6.MustParseAddr("2001:db9::4") {
		t.Errorf("dedup: %v", out)
	}
	if DedupAgainstSeeds(nil, seeds) != nil {
		t.Error("nil candidates")
	}
}

func TestNibbleEntropy(t *testing.T) {
	// All same → zero entropy everywhere.
	same := addrs("2001:db9::1", "2001:db9::1")
	e := NibbleEntropy(same)
	for i, v := range e {
		if v != 0 {
			t.Fatalf("entropy[%d] = %v for identical seeds", i, v)
		}
	}
	// Last nibble uniform over two values → 1 bit at position 31 only.
	two := addrs("2001:db9::1", "2001:db9::2")
	e = NibbleEntropy(two)
	if e[31] != 1 {
		t.Errorf("entropy[31] = %v, want 1", e[31])
	}
	for i := 0; i < 31; i++ {
		if e[i] != 0 {
			t.Errorf("entropy[%d] = %v, want 0", i, e[i])
		}
	}
	// Empty input.
	e = NibbleEntropy(nil)
	if e[0] != 0 {
		t.Error("empty entropy")
	}
}

func TestNibbleValueSets(t *testing.T) {
	vs := NibbleValueSets(addrs("2001:db9::1", "2001:db9::2", "2001:db9::f"))
	if len(vs[31]) != 3 || vs[31][0] != 1 || vs[31][1] != 2 || vs[31][2] != 0xf {
		t.Errorf("value set: %v", vs[31])
	}
	if len(vs[0]) != 1 || vs[0][0] != 2 {
		t.Errorf("fixed position: %v", vs[0])
	}
}

func TestGroupBySlash64(t *testing.T) {
	groups := GroupBySlash64(addrs("2001:db9::2", "2001:db9::1", "2001:db9:0:1::1"))
	if len(groups) != 2 {
		t.Fatalf("groups: %d", len(groups))
	}
	g := groups[ip6.MustParsePrefix("2001:db9::/64")]
	if len(g) != 2 || !g[0].Less(g[1]) {
		t.Errorf("group not sorted: %v", g)
	}
	ps := SortedPrefixes(groups)
	if len(ps) != 2 || ip6.ComparePrefix(ps[0], ps[1]) >= 0 {
		t.Errorf("sorted prefixes: %v", ps)
	}
}
