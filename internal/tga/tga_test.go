package tga

import (
	"testing"

	"hitlist6/internal/ip6"
)

func addrs(ss ...string) []ip6.Addr {
	out := make([]ip6.Addr, len(ss))
	for i, s := range ss {
		out[i] = ip6.MustParseAddr(s)
	}
	return out
}

func TestDedupAgainstSeeds(t *testing.T) {
	seeds := addrs("2001:db9::1", "2001:db9::2")
	cands := addrs("2001:db9::1", "2001:db9::3", "2001:db9::3", "2001:db9::4")
	out := DedupAgainstSeeds(cands, seeds)
	if len(out) != 2 || out[0] != ip6.MustParseAddr("2001:db9::3") || out[1] != ip6.MustParseAddr("2001:db9::4") {
		t.Errorf("dedup: %v", out)
	}
	if DedupAgainstSeeds(nil, seeds) != nil {
		t.Error("nil candidates")
	}
}

func TestNibbleEntropy(t *testing.T) {
	// All same → zero entropy everywhere.
	same := addrs("2001:db9::1", "2001:db9::1")
	e := NibbleEntropy(same)
	for i, v := range e {
		if v != 0 {
			t.Fatalf("entropy[%d] = %v for identical seeds", i, v)
		}
	}
	// Last nibble uniform over two values → 1 bit at position 31 only.
	two := addrs("2001:db9::1", "2001:db9::2")
	e = NibbleEntropy(two)
	if e[31] != 1 {
		t.Errorf("entropy[31] = %v, want 1", e[31])
	}
	for i := 0; i < 31; i++ {
		if e[i] != 0 {
			t.Errorf("entropy[%d] = %v, want 0", i, e[i])
		}
	}
	// Empty input.
	e = NibbleEntropy(nil)
	if e[0] != 0 {
		t.Error("empty entropy")
	}
}

func TestNibbleValueSets(t *testing.T) {
	vs := NibbleValueSets(addrs("2001:db9::1", "2001:db9::2", "2001:db9::f"))
	if len(vs[31]) != 3 || vs[31][0] != 1 || vs[31][1] != 2 || vs[31][2] != 0xf {
		t.Errorf("value set: %v", vs[31])
	}
	if len(vs[0]) != 1 || vs[0][0] != 2 {
		t.Errorf("fixed position: %v", vs[0])
	}
}

func TestGroupBySlash64(t *testing.T) {
	groups := GroupBySlash64(addrs("2001:db9::2", "2001:db9::1", "2001:db9:0:1::1"))
	if len(groups) != 2 {
		t.Fatalf("groups: %d", len(groups))
	}
	if ip6.ComparePrefix(groups[0].Prefix, groups[1].Prefix) >= 0 {
		t.Errorf("groups not sorted by prefix: %v, %v", groups[0].Prefix, groups[1].Prefix)
	}
	if groups[0].Prefix != ip6.MustParsePrefix("2001:db9::/64") {
		t.Errorf("first prefix: %v", groups[0].Prefix)
	}
	g := groups[0].Addrs
	if len(g) != 2 || !g[0].Less(g[1]) {
		t.Errorf("group not sorted: %v", g)
	}
	if GroupBySlash64(nil) != nil {
		t.Error("empty seeds")
	}
}

func TestGroupSortedBySlash64SharesInput(t *testing.T) {
	sorted := addrs("2001:db9::1", "2001:db9::2", "2001:db9:0:1::1")
	groups := GroupSortedBySlash64(sorted)
	if len(groups) != 2 {
		t.Fatalf("groups: %d", len(groups))
	}
	if &groups[0].Addrs[0] != &sorted[0] || &groups[1].Addrs[0] != &sorted[2] {
		t.Error("groups are not subslices of the input")
	}
}

func TestMergeSlash64Groups(t *testing.T) {
	// One /64's members split across two shard lists, plus a prefix only
	// one list holds — the merge must interleave members and keep prefix
	// order.
	l0 := GroupSortedBySlash64(addrs("2001:db9::1", "2001:db9::4"))
	l1 := GroupSortedBySlash64(addrs("2001:db9::2", "2001:db9:0:1::1"))
	merged := MergeSlash64Groups([][]Slash64Group{l0, l1, nil})
	if len(merged) != 2 {
		t.Fatalf("merged groups: %d", len(merged))
	}
	want := addrs("2001:db9::1", "2001:db9::2", "2001:db9::4")
	if len(merged[0].Addrs) != 3 {
		t.Fatalf("merged members: %v", merged[0].Addrs)
	}
	for i, a := range want {
		if merged[0].Addrs[i] != a {
			t.Errorf("member %d: %v, want %v", i, merged[0].Addrs[i], a)
		}
	}
	if merged[1].Prefix != ip6.MustParsePrefix("2001:db9:0:1::/64") {
		t.Errorf("second prefix: %v", merged[1].Prefix)
	}
	// Single-head groups pass through without copying.
	if &merged[1].Addrs[0] != &l1[1].Addrs[0] {
		t.Error("single-list group was copied")
	}
}

func TestSeedViewOf(t *testing.T) {
	seeds := addrs("2001:db9::2", "2001:db9::1", "2001:db9::2", "2a01:e00:4::1")
	v := SeedViewOf(seeds)
	if v.Len() != 3 {
		t.Fatalf("len: %d", v.Len())
	}
	for _, s := range seeds {
		if !v.Has(s) {
			t.Errorf("missing %v", s)
		}
	}
	if v.Has(ip6.MustParseAddr("2001:db9::3")) {
		t.Error("phantom member")
	}
	var walked []ip6.Addr
	v.Walk(func(a ip6.Addr) bool { walked = append(walked, a); return true })
	if len(walked) != 3 {
		t.Fatalf("walked: %d", len(walked))
	}
	for sh := 0; sh < ip6.AddrShards; sh++ {
		span := v.Shard(sh)
		for i := 1; i < len(span); i++ {
			if !span[i-1].Less(span[i]) {
				t.Fatalf("shard %d not strictly sorted", sh)
			}
		}
		for _, a := range span {
			if ip6.ShardOf(a) != sh {
				t.Fatalf("addr %v in wrong shard %d", a, sh)
			}
		}
	}
	// Nil and empty views are empty, not panics.
	var nilView *SeedView
	if nilView.Len() != 0 || nilView.Has(seeds[0]) || nilView.Shard(0) != nil {
		t.Error("nil view")
	}
	if SeedViewOf(nil).Len() != 0 {
		t.Error("empty view")
	}
}

func TestSameSpan(t *testing.T) {
	a := addrs("2001:db9::1", "2001:db9::2")
	if !SameSpan(a, a) {
		t.Error("identical slice")
	}
	if SameSpan(a, a[:1]) {
		t.Error("different lengths")
	}
	b := append([]ip6.Addr(nil), a...)
	if SameSpan(a, b) {
		t.Error("equal content, different backing")
	}
	if !SameSpan(nil, nil) || !SameSpan(a[:0], b[:0]) {
		t.Error("empty spans are the same")
	}
}
