// Package sixgan reimplements the observable behaviour of 6GAN (Cui et
// al., INFOCOM 2021): multi-pattern target generation with an adversarial
// generator per seed class.
//
// Substitution note (documented in DESIGN.md): the original trains one GAN
// per address-pattern class with reinforcement-learning feedback. Offline
// and stdlib-only, we keep the published pipeline shape — seed
// classification into pattern classes, a per-class generative sequence
// model, temperature sampling — but the per-class model is a deterministic
// per-position nibble distribution (a categorical "generator") instead of
// a trained network. This preserves what the hitlist paper measures about
// 6GAN: a modest candidate volume, heavy concentration on the dominant
// class, and a very low hit rate, since independent per-position sampling
// rarely recreates complete assigned addresses.
package sixgan

import (
	"math"

	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
	"hitlist6/internal/tga"
)

// Class is a seed addressing pattern class, following the categories 6GAN
// seeds its generators with.
type Class uint8

// Pattern classes.
const (
	ClassLowByte Class = iota // ::1-style low IIDs
	ClassEUI64                // ff:fe MAC-derived IIDs
	ClassWordy                // hex words / structured patterns
	ClassRandom               // privacy/random IIDs
	NumClasses
)

// Classify assigns a seed to its pattern class.
func Classify(a ip6.Addr) Class {
	if a.IsEUI64() {
		return ClassEUI64
	}
	if a.LowByteAddr() {
		return ClassLowByte
	}
	// "Wordy": few distinct nibble values in the IID suggest structure
	// (dead:beef uses five, repeated digits fewer); random IIDs draw
	// ~10 distinct values out of 16.
	var seen [16]bool
	distinct := 0
	for i := 16; i < 32; i++ {
		v := a.Nibble(i)
		if !seen[v] {
			seen[v] = true
			distinct++
		}
	}
	if distinct <= 5 {
		return ClassWordy
	}
	return ClassRandom
}

// Config tunes the generator.
type Config struct {
	// Seed drives sampling determinism.
	Seed uint64
	// Temperature flattens (>1) or sharpens (<1) the per-position
	// distributions.
	Temperature float64
}

// DefaultConfig mirrors published defaults.
func DefaultConfig() Config { return Config{Seed: 6, Temperature: 1.0} }

// Generator implements tga.Generator.
type Generator struct{ cfg Config }

// New returns a 6GAN generator.
func New(cfg Config) *Generator {
	if cfg.Temperature <= 0 {
		cfg.Temperature = 1.0
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6GAN" }

// classModel is the per-class categorical sequence model.
type classModel struct {
	class   Class
	support int
	// dist[i] is the smoothed nibble distribution at position i.
	dist [32]*rng.Weighted
}

func buildModel(class Class, seeds []ip6.Addr, temperature float64) *classModel {
	m := &classModel{class: class, support: len(seeds)}
	var counts [32][16]float64
	for _, a := range seeds {
		n := a.Nibbles()
		for i, v := range n {
			counts[i][v]++
		}
	}
	for i := range counts {
		w := make([]float64, 16)
		for v := 0; v < 16; v++ {
			// Additive smoothing then temperature.
			w[v] = math.Pow(counts[i][v]+0.05, 1.0/temperature)
		}
		m.dist[i] = rng.NewWeighted(w)
	}
	return m
}

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: classify seeds, build one model per
// class, sample candidates proportionally to class support, and yield
// the novel non-seed ones as they are drawn. The budget counts raw
// global-unicast samples (duplicates included), exactly as Generate
// always charged it before its final dedup, so the emission is
// byte-identical to the former materialize-then-dedup pipeline.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	if len(seeds) == 0 || budget <= 0 {
		return
	}
	byClass := make(map[Class][]ip6.Addr)
	for _, a := range seeds {
		c := Classify(a)
		byClass[c] = append(byClass[c], a)
	}
	var models []*classModel
	for c := Class(0); c < NumClasses; c++ {
		if len(byClass[c]) >= 8 {
			models = append(models, buildModel(c, byClass[c], g.cfg.Temperature))
		}
	}
	if len(models) == 0 {
		models = append(models, buildModel(ClassRandom, seeds, g.cfg.Temperature))
	}
	total := 0
	for _, m := range models {
		total += m.support
	}

	seedSet := ip6.NewSet(len(seeds))
	seedSet.AddSlice(seeds)
	seen := ip6.NewSet(0)
	raw := 0
	r := rng.NewStream(g.cfg.Seed, "6gan-sample")
	for _, m := range models {
		share := budget * m.support / total
		if share == 0 {
			share = 1
		}
		for i := 0; i < share && raw < budget; i++ {
			var nib [32]byte
			for pos := 0; pos < 32; pos++ {
				nib[pos] = byte(m.dist[pos].Sample(r))
			}
			a := ip6.AddrFromNibbles(nib)
			if a.IsGlobalUnicast() {
				raw++
				if !seedSet.Has(a) && seen.Add(a) {
					if !yield(a) {
						return
					}
				}
			}
		}
	}
}

// The generator is a full streaming TGA.
var _ tga.Streamer = (*Generator)(nil)
