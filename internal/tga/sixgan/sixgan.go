// Package sixgan reimplements the observable behaviour of 6GAN (Cui et
// al., INFOCOM 2021): multi-pattern target generation with an adversarial
// generator per seed class.
//
// Substitution note (documented in DESIGN.md): the original trains one GAN
// per address-pattern class with reinforcement-learning feedback. Offline
// and stdlib-only, we keep the published pipeline shape — seed
// classification into pattern classes, a per-class generative sequence
// model, temperature sampling — but the per-class model is a deterministic
// per-position nibble distribution (a categorical "generator") instead of
// a trained network. This preserves what the hitlist paper measures about
// 6GAN: a modest candidate volume, heavy concentration on the dominant
// class, and a very low hit rate, since independent per-position sampling
// rarely recreates complete assigned addresses.
package sixgan

import (
	"math"

	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
	"hitlist6/internal/tga"
)

// Class is a seed addressing pattern class, following the categories 6GAN
// seeds its generators with.
type Class uint8

// Pattern classes.
const (
	ClassLowByte Class = iota // ::1-style low IIDs
	ClassEUI64                // ff:fe MAC-derived IIDs
	ClassWordy                // hex words / structured patterns
	ClassRandom               // privacy/random IIDs
	NumClasses
)

// Classify assigns a seed to its pattern class.
func Classify(a ip6.Addr) Class {
	if a.IsEUI64() {
		return ClassEUI64
	}
	if a.LowByteAddr() {
		return ClassLowByte
	}
	// "Wordy": few distinct nibble values in the IID suggest structure
	// (dead:beef uses five, repeated digits fewer); random IIDs draw
	// ~10 distinct values out of 16.
	var seen [16]bool
	distinct := 0
	for i := 16; i < 32; i++ {
		v := a.Nibble(i)
		if !seen[v] {
			seen[v] = true
			distinct++
		}
	}
	if distinct <= 5 {
		return ClassWordy
	}
	return ClassRandom
}

// Config tunes the generator.
type Config struct {
	// Seed drives sampling determinism.
	Seed uint64
	// Temperature flattens (>1) or sharpens (<1) the per-position
	// distributions.
	Temperature float64
}

// DefaultConfig mirrors published defaults.
func DefaultConfig() Config { return Config{Seed: 6, Temperature: 1.0} }

// Generator implements tga.Generator.
type Generator struct {
	cfg   Config
	model *Model
}

// New returns a 6GAN generator.
func New(cfg Config) *Generator {
	if cfg.Temperature <= 0 {
		cfg.Temperature = 1.0
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6GAN" }

// classModel is the per-class categorical sequence model.
type classModel struct {
	class   Class
	support int
	// dist[i] is the smoothed nibble distribution at position i.
	dist [32]*rng.Weighted
}

// classCounts are per-class nibble statistics: the sufficient statistic
// of a classModel, held as integers so per-shard counts summed into
// globals reproduce a flat-slice count exactly (a float64 count of seeds
// is integer-valued and exact below 2^53, so float64(int64 sum) is the
// identical operand).
type classCounts struct {
	support int
	counts  [32][16]int64
}

// modelFromCounts builds the smoothed sampling distributions from
// accumulated counts.
func modelFromCounts(class Class, c *classCounts, temperature float64) *classModel {
	m := &classModel{class: class, support: c.support}
	for i := range c.counts {
		w := make([]float64, 16)
		for v := 0; v < 16; v++ {
			// Additive smoothing then temperature.
			w[v] = math.Pow(float64(c.counts[i][v])+0.05, 1.0/temperature)
		}
		m.dist[i] = rng.NewWeighted(w)
	}
	return m
}

func buildModel(class Class, seeds []ip6.Addr, temperature float64) *classModel {
	var c classCounts
	c.support = len(seeds)
	for _, a := range seeds {
		n := a.Nibbles()
		for i, v := range n {
			c.counts[i][v]++
		}
	}
	return modelFromCounts(class, &c, temperature)
}

// Model is the incremental 6GAN model: per-shard per-class nibble counts
// cached against the seed view's frozen spans, re-classified only for
// dirty shards; the per-class sampling distributions rebuild from the
// summed counts when anything changed.
type Model struct {
	cfg    Config
	built  bool
	spans  [ip6.AddrShards][]ip6.Addr
	counts [ip6.AddrShards][NumClasses]classCounts
	models []*classModel
	total  int
}

// NewModel returns an empty model; Update populates it.
func NewModel(cfg Config) *Model { return &Model{cfg: cfg} }

// Update refreshes the model for the view, re-classifying and re-counting
// only shards whose span changed (in parallel). It returns the number of
// dirty shards — 0 means the cached class models were provably current.
func (m *Model) Update(v *tga.SeedView) int {
	var dirty [ip6.AddrShards]bool
	n := 0
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if m.built && tga.SameSpan(m.spans[sh], v.Shard(sh)) {
			continue
		}
		dirty[sh] = true
		n++
	}
	if n == 0 {
		return 0
	}
	ip6.ParallelShards(tga.ModelWorkers(), func(sh int) {
		if !dirty[sh] {
			return
		}
		span := v.Shard(sh)
		var cc [NumClasses]classCounts
		for _, a := range span {
			c := &cc[Classify(a)]
			c.support++
			nib := a.Nibbles()
			for i, val := range nib {
				c.counts[i][val]++
			}
		}
		m.counts[sh] = cc
		m.spans[sh] = span
	})
	var sum [NumClasses]classCounts
	for sh := range m.counts {
		for cl := Class(0); cl < NumClasses; cl++ {
			c := &m.counts[sh][cl]
			sum[cl].support += c.support
			for i := range c.counts {
				for val, cnt := range c.counts[i] {
					sum[cl].counts[i][val] += cnt
				}
			}
		}
	}
	m.models = m.models[:0]
	for cl := Class(0); cl < NumClasses; cl++ {
		if sum[cl].support >= 8 {
			m.models = append(m.models, modelFromCounts(cl, &sum[cl], m.cfg.Temperature))
		}
	}
	if len(m.models) == 0 {
		// No class is well-supported: one model over every seed,
		// matching a flat build over the whole set.
		var all classCounts
		for cl := Class(0); cl < NumClasses; cl++ {
			all.support += sum[cl].support
			for i := range sum[cl].counts {
				for val, cnt := range sum[cl].counts[i] {
					all.counts[i][val] += cnt
				}
			}
		}
		m.models = append(m.models, modelFromCounts(ClassRandom, &all, m.cfg.Temperature))
	}
	m.total = 0
	for _, cm := range m.models {
		m.total += cm.support
	}
	m.built = true
	return n
}

// emit samples candidates proportionally to class support and yields the
// novel non-seed ones as they are drawn. The budget counts raw
// global-unicast samples (duplicates included), exactly as Generate
// always charged it before its final dedup, so the emission is
// byte-identical to the former materialize-then-dedup pipeline.
func (m *Model) emit(v *tga.SeedView, budget int, yield func(ip6.Addr) bool) {
	seen := ip6.NewSet(0)
	raw := 0
	r := rng.NewStream(m.cfg.Seed, "6gan-sample")
	for _, cm := range m.models {
		share := budget * cm.support / m.total
		if share == 0 {
			share = 1
		}
		for i := 0; i < share && raw < budget; i++ {
			var nib [32]byte
			for pos := 0; pos < 32; pos++ {
				nib[pos] = byte(cm.dist[pos].Sample(r))
			}
			a := ip6.AddrFromNibbles(nib)
			if a.IsGlobalUnicast() {
				raw++
				if !v.Has(a) && seen.Add(a) {
					if !yield(a) {
						return
					}
				}
			}
		}
	}
}

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: the stateless shim — a throwaway model
// over a materialized view, yielding exactly EmitView's stream.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	if len(seeds) == 0 || budget <= 0 {
		return
	}
	v := tga.SeedViewOf(seeds)
	m := NewModel(g.cfg)
	m.Update(v)
	m.emit(v, budget, yield)
}

// EmitView implements tga.ViewStreamer: refresh the persistent model for
// shards the view dirtied, then sample from the cached class models.
func (g *Generator) EmitView(v *tga.SeedView, budget int, yield func(ip6.Addr) bool) {
	if v.Len() == 0 || budget <= 0 {
		return
	}
	if g.model == nil {
		g.model = NewModel(g.cfg)
	}
	g.model.Update(v)
	g.model.emit(v, budget, yield)
}

// The generator is a full streaming TGA over both seed contracts.
var _ tga.ViewStreamer = (*Generator)(nil)
