package sixgan

import (
	"testing"

	"hitlist6/internal/ip6"
)

func TestClassify(t *testing.T) {
	cases := map[string]Class{
		"2001:db9::1":                      ClassLowByte,
		"2001:db9::25":                     ClassLowByte,
		"2001:db9::21e:73ff:fe11:2233":     ClassEUI64,
		"2001:db9::dead:beef:dead:beef":    ClassWordy,
		"2001:db9:0:0:1234:5678:9abc:def1": ClassRandom,
	}
	for s, want := range cases {
		if got := Classify(ip6.MustParseAddr(s)); got != want {
			t.Errorf("Classify(%s) = %v, want %v", s, got, want)
		}
	}
}

func trainingSeeds() []ip6.Addr {
	var out []ip6.Addr
	p := ip6.MustParsePrefix("2a01:e00:3::/64")
	for i := uint64(1); i <= 30; i++ {
		out = append(out, p.NthAddr(i)) // low-byte class
	}
	q := ip6.MustParsePrefix("2600:9000:7::/64")
	for i := uint64(0); i < 10; i++ {
		mac := ip6.MAC{0x00, 0x1e, 0x73, byte(i), 0x22, 0x33}
		out = append(out, ip6.AddrFromMAC(q, mac)) // EUI-64 class
	}
	return out
}

func TestGenerate(t *testing.T) {
	g := New(DefaultConfig())
	if g.Name() != "6GAN" {
		t.Error("name")
	}
	seeds := trainingSeeds()
	out := g.Generate(seeds, 500)
	if len(out) == 0 {
		t.Fatal("nothing generated")
	}
	if len(out) > 500 {
		t.Errorf("budget exceeded: %d", len(out))
	}
	seedSet := ip6.SetOf(seeds...)
	for _, a := range out {
		if seedSet.Has(a) {
			t.Fatalf("emitted seed %v", a)
		}
		if !a.IsGlobalUnicast() {
			t.Fatalf("non-global candidate %v", a)
		}
	}
	// Candidates should mostly stay in networks resembling the seeds:
	// their first nibbles come from seed distributions.
	inSeedNets := 0
	for _, a := range out {
		if a.Nibble(0) == 0x2 {
			inSeedNets++
		}
	}
	if inSeedNets < len(out)*9/10 {
		t.Errorf("candidates strayed from seed network space: %d/%d", inSeedNets, len(out))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	seeds := trainingSeeds()
	a := New(DefaultConfig()).Generate(seeds, 200)
	b := New(DefaultConfig()).Generate(seeds, 200)
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order differs")
		}
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	g := New(DefaultConfig())
	if g.Generate(nil, 100) != nil {
		t.Error("nil seeds")
	}
	if g.Generate(trainingSeeds(), 0) != nil {
		t.Error("zero budget")
	}
	// Tiny seed sets fall back to a single model.
	out := g.Generate([]ip6.Addr{
		ip6.MustParseAddr("2001:db9::1"),
		ip6.MustParseAddr("2001:db9::2"),
	}, 50)
	if len(out) == 0 {
		t.Error("tiny seed set generated nothing")
	}
}
