package dc

import (
	"testing"

	"hitlist6/internal/ip6"
)

func clusterSeeds(p ip6.Prefix, offsets ...uint64) []ip6.Addr {
	out := make([]ip6.Addr, len(offsets))
	for i, o := range offsets {
		out[i] = p.NthAddr(o)
	}
	return out
}

func TestFindClusters(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db9::/64")
	// A dense run of 10 within gaps ≤ 64, then a far-away pair.
	seeds := clusterSeeds(p, 0, 10, 30, 31, 60, 100, 140, 180, 200, 240, 1<<30, 1<<30+1)
	cfg := DefaultConfig()
	clusters := FindClusters(seeds, cfg)
	if len(clusters) != 1 {
		t.Fatalf("clusters: %+v", clusters)
	}
	c := clusters[0]
	if c.Seeds != 10 || c.First != p.NthAddr(0) || c.Last != p.NthAddr(240) {
		t.Errorf("cluster: %+v", c)
	}
	if c.Span() != 241 {
		t.Errorf("span: %d", c.Span())
	}
}

func TestFindClustersRespectsGapAndSize(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db9::/64")
	cfg := Config{MinClusterSize: 3, MaxGap: 10, MaxFill: 100}
	// Two runs split by a big gap; second run too small.
	seeds := clusterSeeds(p, 1, 5, 9, 1000, 1001)
	clusters := FindClusters(seeds, cfg)
	if len(clusters) != 1 || clusters[0].Seeds != 3 {
		t.Fatalf("clusters: %+v", clusters)
	}
	// Clusters never span /64 boundaries.
	mixed := append(clusterSeeds(p, 1, 2, 3),
		clusterSeeds(ip6.MustParsePrefix("2001:db9:0:1::/64"), 4, 5, 6)...)
	clusters = FindClusters(mixed, cfg)
	if len(clusters) != 2 {
		t.Fatalf("cross-prefix clusters: %+v", clusters)
	}
}

func TestGenerateFillsGaps(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db9::/64")
	var offsets []uint64
	for i := uint64(0); i < 10; i++ {
		offsets = append(offsets, i*10)
	}
	seeds := clusterSeeds(p, offsets...) // 0,10,...,90 → span 91, 81 gaps
	g := New(DefaultConfig())
	if g.Name() != "DC" {
		t.Error("name")
	}
	out := g.Generate(seeds, 1000)
	if len(out) != 81 {
		t.Fatalf("generated %d, want 81", len(out))
	}
	seedSet := ip6.SetOf(seeds...)
	for _, a := range out {
		if seedSet.Has(a) {
			t.Fatalf("generated seed %v", a)
		}
		if !p.Contains(a) {
			t.Fatalf("candidate %v outside /64", a)
		}
	}
	// Budget respected.
	out = g.Generate(seeds, 5)
	if len(out) != 5 {
		t.Errorf("budget: %d", len(out))
	}
	// No seeds → nothing.
	if g.Generate(nil, 100) != nil {
		t.Error("no-seed generation")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db9::/64")
	var offsets []uint64
	for i := uint64(0); i < 12; i++ {
		offsets = append(offsets, i*7)
	}
	seeds := clusterSeeds(p, offsets...)
	g := New(DefaultConfig())
	a := g.Generate(seeds, 50)
	b := g.Generate(seeds, 50)
	if len(a) != len(b) {
		t.Fatal("non-deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order differs")
		}
	}
}
