// Package dc implements the paper's own target generation approach,
// distance clustering (Section 6.1): "extending more densely clustered
// address regions that show high entropy in the last nibble(s)".
//
// Clusters are runs of at least MinClusterSize addresses inside one /64
// where consecutive addresses are at most MaxGap apart. Given the size of
// the IPv6 space, even ten addresses within distance 64 are very unlikely
// to be random, so the missing addresses inside a cluster's span are
// generated as candidates. The paper measures ~12 % responsiveness for
// these — the best hit rate among the evaluated generators.
package dc

import (
	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// Config are the clustering parameters; the paper uses clusters of at
// least 10 addresses with a distance of at most 64.
type Config struct {
	MinClusterSize int
	MaxGap         uint64
	// MaxFill caps generated addresses per cluster, guarding against
	// degenerate spans.
	MaxFill int
}

// DefaultConfig matches the paper's parameters.
func DefaultConfig() Config { return Config{MinClusterSize: 10, MaxGap: 64, MaxFill: 4096} }

// Cluster is one dense run found in a /64.
type Cluster struct {
	Prefix ip6.Prefix
	First  ip6.Addr
	Last   ip6.Addr
	Seeds  int
}

// Span returns the total number of addresses the cluster covers.
func (c Cluster) Span() uint64 { return c.Last.Lo() - c.First.Lo() + 1 }

// Generator implements tga.Generator.
type Generator struct{ cfg Config }

// New returns a distance-clustering generator.
func New(cfg Config) *Generator {
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = 10
	}
	if cfg.MaxGap == 0 {
		cfg.MaxGap = 64
	}
	if cfg.MaxFill <= 0 {
		cfg.MaxFill = 4096
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "DC" }

// FindClusters locates dense runs in the seed set.
func FindClusters(seeds []ip6.Addr, cfg Config) []Cluster {
	groups := tga.GroupBySlash64(seeds)
	var out []Cluster
	for _, p := range tga.SortedPrefixes(groups) {
		addrs := groups[p] // sorted ascending
		runStart := 0
		flush := func(end int) { // [runStart, end)
			if end-runStart >= cfg.MinClusterSize {
				out = append(out, Cluster{
					Prefix: p,
					First:  addrs[runStart],
					Last:   addrs[end-1],
					Seeds:  end - runStart,
				})
			}
		}
		for i := 1; i < len(addrs); i++ {
			if addrs[i].Lo()-addrs[i-1].Lo() > cfg.MaxGap {
				flush(i)
				runStart = i
			}
		}
		flush(len(addrs))
	}
	return out
}

// Fill generates the missing addresses inside a cluster's span, up to max.
func Fill(c Cluster, have ip6.Set, max int) []ip6.Addr {
	var out []ip6.Addr
	hi := c.First.Hi()
	for lo := c.First.Lo(); lo <= c.Last.Lo() && len(out) < max; lo++ {
		a := ip6.AddrFromUint64s(hi, lo)
		if !have.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: walk the clusters in order and yield the
// missing addresses inside each span as the walk reaches them. Cluster
// spans never overlap (clusters are disjoint runs of a sorted per-/64
// group), so the inline seen-set only mirrors the defensive dedup the
// former materialize-then-dedup pipeline ran, keeping the emission
// byte-identical to it.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	if len(seeds) == 0 || budget <= 0 {
		return
	}
	have := ip6.NewSet(len(seeds))
	have.AddSlice(seeds)
	seen := ip6.NewSet(0)
	for _, c := range FindClusters(seeds, g.cfg) {
		if budget <= 0 {
			break
		}
		max := g.cfg.MaxFill
		if max > budget {
			max = budget
		}
		count := 0
		hi := c.First.Hi()
		for lo := c.First.Lo(); lo <= c.Last.Lo() && count < max; lo++ {
			a := ip6.AddrFromUint64s(hi, lo)
			if have.Has(a) {
				continue
			}
			count++
			if seen.Add(a) {
				if !yield(a) {
					return
				}
			}
		}
		budget -= count
	}
}

// The generator is a full streaming TGA.
var _ tga.Streamer = (*Generator)(nil)
