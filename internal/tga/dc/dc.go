// Package dc implements the paper's own target generation approach,
// distance clustering (Section 6.1): "extending more densely clustered
// address regions that show high entropy in the last nibble(s)".
//
// Clusters are runs of at least MinClusterSize addresses inside one /64
// where consecutive addresses are at most MaxGap apart. Given the size of
// the IPv6 space, even ten addresses within distance 64 are very unlikely
// to be random, so the missing addresses inside a cluster's span are
// generated as candidates. The paper measures ~12 % responsiveness for
// these — the best hit rate among the evaluated generators.
package dc

import (
	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// Config are the clustering parameters; the paper uses clusters of at
// least 10 addresses with a distance of at most 64.
type Config struct {
	MinClusterSize int
	MaxGap         uint64
	// MaxFill caps generated addresses per cluster, guarding against
	// degenerate spans.
	MaxFill int
}

// DefaultConfig matches the paper's parameters.
func DefaultConfig() Config { return Config{MinClusterSize: 10, MaxGap: 64, MaxFill: 4096} }

// Cluster is one dense run found in a /64.
type Cluster struct {
	Prefix ip6.Prefix
	First  ip6.Addr
	Last   ip6.Addr
	Seeds  int
}

// Span returns the total number of addresses the cluster covers.
func (c Cluster) Span() uint64 { return c.Last.Lo() - c.First.Lo() + 1 }

// Generator implements tga.Generator.
type Generator struct {
	cfg   Config
	model *Model
}

// New returns a distance-clustering generator.
func New(cfg Config) *Generator {
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = 10
	}
	if cfg.MaxGap == 0 {
		cfg.MaxGap = 64
	}
	if cfg.MaxFill <= 0 {
		cfg.MaxFill = 4096
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "DC" }

// modelCluster pairs a cluster with its seed run — a subslice of the
// cluster's merged /64 group — so emission can merge-walk the span
// against its seeds instead of probing a resident copy of the whole set.
type modelCluster struct {
	c     Cluster
	seeds []ip6.Addr
}

// clustersOf locates dense runs in already-grouped seeds.
func clustersOf(groups []tga.Slash64Group, cfg Config) []modelCluster {
	var out []modelCluster
	for _, g := range groups {
		addrs := g.Addrs // sorted ascending
		runStart := 0
		flush := func(end int) { // [runStart, end)
			if end-runStart >= cfg.MinClusterSize {
				out = append(out, modelCluster{
					c: Cluster{
						Prefix: g.Prefix,
						First:  addrs[runStart],
						Last:   addrs[end-1],
						Seeds:  end - runStart,
					},
					seeds: addrs[runStart:end],
				})
			}
		}
		for i := 1; i < len(addrs); i++ {
			if addrs[i].Lo()-addrs[i-1].Lo() > cfg.MaxGap {
				flush(i)
				runStart = i
			}
		}
		flush(len(addrs))
	}
	return out
}

// FindClusters locates dense runs in the seed set.
func FindClusters(seeds []ip6.Addr, cfg Config) []Cluster {
	mcs := clustersOf(tga.GroupBySlash64(seeds), cfg)
	if len(mcs) == 0 {
		return nil
	}
	out := make([]Cluster, len(mcs))
	for i, mc := range mcs {
		out[i] = mc.c
	}
	return out
}

// Fill generates the missing addresses inside a cluster's span, up to max.
func Fill(c Cluster, have ip6.Set, max int) []ip6.Addr {
	var out []ip6.Addr
	hi := c.First.Hi()
	for lo := c.First.Lo(); lo <= c.Last.Lo() && len(out) < max; lo++ {
		a := ip6.AddrFromUint64s(hi, lo)
		if !have.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Model is the incremental distance-clustering model: per-shard /64
// group lists cached against the seed view's frozen spans, merged into
// global groups and clusters only when some shard's span changed.
type Model struct {
	cfg      Config
	built    bool
	spans    [ip6.AddrShards][]ip6.Addr
	perShard [ip6.AddrShards][]tga.Slash64Group
	clusters []modelCluster
}

// NewModel returns an empty model; Update populates it.
func NewModel(cfg Config) *Model { return &Model{cfg: cfg} }

// Update refreshes the model for the view, regrouping only shards whose
// span changed since the previous call (dirty shards rebuild in
// parallel; the cross-shard group merge and cluster scan are one linear
// pass). It returns the number of shards rebuilt — 0 means the cached
// clusters were provably current and nothing was touched.
func (m *Model) Update(v *tga.SeedView) int {
	var dirty [ip6.AddrShards]bool
	n := 0
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if m.built && tga.SameSpan(m.spans[sh], v.Shard(sh)) {
			continue
		}
		dirty[sh] = true
		n++
	}
	if n == 0 {
		return 0
	}
	ip6.ParallelShards(tga.ModelWorkers(), func(sh int) {
		if !dirty[sh] {
			return
		}
		span := v.Shard(sh)
		m.perShard[sh] = tga.GroupSortedBySlash64(span)
		m.spans[sh] = span
	})
	lists := make([][]tga.Slash64Group, ip6.AddrShards)
	for sh := range lists {
		lists[sh] = m.perShard[sh]
	}
	m.clusters = clustersOf(tga.MergeSlash64Groups(lists), m.cfg)
	m.built = true
	return n
}

// emit walks the clusters in order and yields the missing addresses
// inside each span as the walk reaches them. Seed membership inside a
// span is a merge-walk against the cluster's own seed run (a span never
// leaves its /64, and runs are maximal, so no other seed can fall inside
// it); cluster spans never overlap, so the inline seen-set only mirrors
// the defensive dedup the former materialize-then-dedup pipeline ran,
// keeping the emission byte-identical to it.
func (m *Model) emit(budget int, yield func(ip6.Addr) bool) {
	seen := ip6.NewSet(0)
	for _, mc := range m.clusters {
		if budget <= 0 {
			return
		}
		max := m.cfg.MaxFill
		if max > budget {
			max = budget
		}
		count := 0
		hi := mc.c.First.Hi()
		si := 0
		for lo := mc.c.First.Lo(); lo <= mc.c.Last.Lo() && count < max; lo++ {
			for si < len(mc.seeds) && mc.seeds[si].Lo() < lo {
				si++
			}
			if si < len(mc.seeds) && mc.seeds[si].Lo() == lo {
				si++
				continue
			}
			a := ip6.AddrFromUint64s(hi, lo)
			count++
			if seen.Add(a) {
				if !yield(a) {
					return
				}
			}
		}
		budget -= count
	}
}

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: the stateless shim — a throwaway model
// over a materialized view, yielding exactly EmitView's stream.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	if len(seeds) == 0 || budget <= 0 {
		return
	}
	m := NewModel(g.cfg)
	m.Update(tga.SeedViewOf(seeds))
	m.emit(budget, yield)
}

// EmitView implements tga.ViewStreamer: update the generator's
// persistent model for shards the view dirtied, then stream from the
// cached clusters.
func (g *Generator) EmitView(v *tga.SeedView, budget int, yield func(ip6.Addr) bool) {
	if v.Len() == 0 || budget <= 0 {
		return
	}
	if g.model == nil {
		g.model = NewModel(g.cfg)
	}
	g.model.Update(v)
	g.model.emit(budget, yield)
}

// The generator is a full streaming TGA over both seed contracts.
var _ tga.ViewStreamer = (*Generator)(nil)
