package sixtree

import (
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// denseSeeds builds seeds across two /64s: one dense structured region and
// one sparse region.
func denseSeeds() []ip6.Addr {
	var out []ip6.Addr
	dense := ip6.MustParsePrefix("2a01:e00:1:1::/64")
	for i := uint64(1); i <= 40; i++ {
		out = append(out, dense.NthAddr(i))
	}
	sparse := ip6.MustParsePrefix("2600:9000:55::/64")
	out = append(out, sparse.NthAddr(1), sparse.NthAddr(0x8000_0000))
	return out
}

func TestBuildTree(t *testing.T) {
	seeds := denseSeeds()
	tree := Build(seeds, DefaultConfig())
	if tree.Leaves() == 0 {
		t.Fatal("no leaves")
	}
	// Each leaf holds at most MaxLeafSize seeds unless unsplittable.
	for _, leaf := range tree.leaves {
		if len(leaf.seeds) > DefaultConfig().MaxLeafSize {
			// An oversized leaf must be constant in every dimension.
			vs := tga.NibbleValueSets(leaf.seeds)
			for i, v := range vs {
				if len(v) > 1 {
					t.Fatalf("oversized splittable leaf: dim %d has %d values", i, len(v))
				}
			}
		}
	}
}

func TestGenerateExpandsDenseRegion(t *testing.T) {
	seeds := denseSeeds()
	g := New(DefaultConfig())
	if g.Name() != "6Tree" {
		t.Error("name")
	}
	// A bounded budget exercises the density-priority ordering: the dense
	// region must be expanded before the sparse one.
	out := g.Generate(seeds, 300)
	if len(out) != 300 {
		t.Fatalf("generated %d, want full budget of 300", len(out))
	}
	seedSet := ip6.SetOf(seeds...)
	dense := ip6.MustParsePrefix("2a01:e00:1:1::/64")
	inDense := 0
	for _, a := range out {
		if seedSet.Has(a) {
			t.Fatalf("emitted seed %v", a)
		}
		if dense.Contains(a) {
			inDense++
		}
	}
	// The dense region dominates generation.
	if float64(inDense) < 0.5*float64(len(out)) {
		t.Errorf("dense region share: %d/%d", inDense, len(out))
	}
	seen := ip6.NewSet(len(out))
	for _, a := range out {
		if !seen.Add(a) {
			t.Fatalf("duplicate %v", a)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	seeds := denseSeeds()
	g := New(DefaultConfig())
	a := g.Generate(seeds, 500)
	b := g.Generate(seeds, 500)
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order differs")
		}
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	g := New(DefaultConfig())
	if g.Generate(nil, 100) != nil {
		t.Error("nil seeds")
	}
	if g.Generate(denseSeeds(), 0) != nil {
		t.Error("zero budget")
	}
	// A single seed has no free dims: nothing to generate.
	out := g.Generate([]ip6.Addr{ip6.MustParseAddr("2001:db9::1")}, 10)
	if len(out) != 0 {
		t.Errorf("single seed generated %d", len(out))
	}
}

func BenchmarkGenerate(b *testing.B) {
	seeds := denseSeeds()
	g := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(seeds, 1000)
	}
}
