// Package sixtree reimplements 6Tree (Liu et al., Computer Networks 2019):
// a space-tree model of the seed set built by divisive hierarchical
// clustering (DHC) over nibble vectors, with candidate generation inside
// the densest leaf regions.
//
// Following the hitlist paper's usage, the active-scan feedback loop of the
// original is disabled: "we prevented active scans, limited 6Tree to target
// generation only, and used the detection proposed by the IPv6 Hitlist
// service during our scans." The generator therefore only expands regions;
// alias handling is left to the pipeline's APD, reproducing the Akamai
// blow-up the paper reports when 6Tree's own alias check is trusted.
package sixtree

import (
	"sort"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// Config tunes the tree.
type Config struct {
	// MaxLeafSize stops DHC splitting below this many seeds.
	MaxLeafSize int
	// MaxFreeDims bounds how many variable nibble dimensions a leaf may
	// enumerate during generation.
	MaxFreeDims int
}

// DefaultConfig matches the published defaults at our scale.
func DefaultConfig() Config { return Config{MaxLeafSize: 16, MaxFreeDims: 2} }

// Tree is a built space tree.
type Tree struct {
	cfg    Config
	root   *node
	leaves []*node
}

type node struct {
	seeds    []ip6.Addr
	fixed    [32]bool // dimensions with a single observed value
	children []*node
	splitDim int
}

// Generator is the tga.Generator implementation.
type Generator struct{ cfg Config }

// New returns a 6Tree generator.
func New(cfg Config) *Generator {
	if cfg.MaxLeafSize <= 0 {
		cfg.MaxLeafSize = 16
	}
	if cfg.MaxFreeDims <= 0 {
		cfg.MaxFreeDims = 2
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Tree" }

// Build constructs the space tree over the seeds.
func Build(seeds []ip6.Addr, cfg Config) *Tree {
	t := &Tree{cfg: cfg, root: &node{seeds: seeds}}
	t.split(t.root)
	return t
}

// split applies DHC: recurse on the dimension with the fewest distinct
// values (>1) — the least-entropy split — until leaves are small.
func (t *Tree) split(n *node) {
	vals := tga.NibbleValueSets(n.seeds)
	for i, vs := range vals {
		n.fixed[i] = len(vs) == 1
	}
	if len(n.seeds) <= t.cfg.MaxLeafSize {
		t.leaves = append(t.leaves, n)
		return
	}
	// Least-entropy splitting dimension; ties break towards the most
	// significant position, approximating the vertical mode of 6Tree.
	best, bestCount := -1, 17
	for i, vs := range vals {
		if len(vs) > 1 && len(vs) < bestCount {
			best, bestCount = i, len(vs)
		}
	}
	if best < 0 { // all seeds identical
		t.leaves = append(t.leaves, n)
		return
	}
	n.splitDim = best
	buckets := make(map[byte][]ip6.Addr)
	for _, a := range n.seeds {
		buckets[a.Nibble(best)] = append(buckets[a.Nibble(best)], a)
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		child := &node{seeds: buckets[byte(k)]}
		n.children = append(n.children, child)
		t.split(child)
	}
}

// Leaves returns the number of leaf regions.
func (t *Tree) Leaves() int { return len(t.leaves) }

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: build the tree, then expand leaves in
// density order, yielding candidates as the expansion walks them. A
// shared novelty set makes the budget count genuinely new addresses,
// never duplicates or seeds.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	if len(seeds) == 0 || budget <= 0 {
		return
	}
	t := Build(seeds, g.cfg)

	// Densest leaves first: most seeds per free dimension.
	leaves := append([]*node(nil), t.leaves...)
	sort.SliceStable(leaves, func(i, j int) bool {
		return leafPriority(leaves[i]) > leafPriority(leaves[j])
	})

	seen := ip6.NewSet(len(seeds) + budget)
	seen.AddSlice(seeds)
	e := &emitter{budget: budget, seen: seen, yield: yield}
	for _, leaf := range leaves {
		if e.full() {
			break
		}
		// Single observations are not regions; expanding them would
		// extrapolate from density 1.
		if len(leaf.seeds) < 2 {
			continue
		}
		expandLeaf(leaf, g.cfg.MaxFreeDims, e)
	}
}

// emitter tracks one Emit pass: novelty-counted budget plus the
// consumer's early-stop signal.
type emitter struct {
	budget  int
	emitted int
	stopped bool
	seen    ip6.Set
	yield   func(ip6.Addr) bool
}

func (e *emitter) full() bool { return e.stopped || e.emitted >= e.budget }

// add yields a novel address, counting it toward the budget.
func (e *emitter) add(a ip6.Addr) {
	if e.seen.Add(a) {
		e.emitted++
		if !e.yield(a) {
			e.stopped = true
		}
	}
}

func leafPriority(n *node) float64 {
	free := 0
	for _, f := range n.fixed {
		if !f {
			free++
		}
	}
	if free == 0 {
		free = 1
	}
	return float64(len(n.seeds)) / float64(free)
}

// expandLeaf enumerates the region's free dimensions over all 16 nibble
// values, holding everything else at each seed's value — the "region
// expansion" of 6Tree. When the leaf's own variability offers fewer than
// maxDims dimensions (because DHC fixed them on the way down), the lowest
// address nibbles are expanded as well; this is what discovers genuinely
// new neighbors rather than only recombinations.
func expandLeaf(n *node, maxDims int, e *emitter) {
	// Free dims, least significant first.
	var free []int
	taken := [32]bool{}
	for i := 31; i >= 0 && len(free) < maxDims; i-- {
		if !n.fixed[i] {
			free = append(free, i)
			taken[i] = true
		}
	}
	for i := 31; i >= 16 && len(free) < maxDims; i-- {
		if !taken[i] {
			free = append(free, i)
			taken[i] = true
		}
	}
	if len(free) == 0 {
		return
	}
	for _, seed := range n.seeds {
		var rec func(addr ip6.Addr, d int)
		rec = func(addr ip6.Addr, d int) {
			if e.full() {
				return
			}
			if d == len(free) {
				e.add(addr)
				return
			}
			for v := byte(0); v < 16; v++ {
				rec(addr.SetNibble(free[d], v), d+1)
				if e.full() {
					return
				}
			}
		}
		rec(seed, 0)
		if e.full() {
			break
		}
	}
}

// The generator is a full streaming TGA.
var _ tga.Streamer = (*Generator)(nil)
