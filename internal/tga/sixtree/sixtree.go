// Package sixtree reimplements 6Tree (Liu et al., Computer Networks 2019):
// a space-tree model of the seed set built by divisive hierarchical
// clustering (DHC) over nibble vectors, with candidate generation inside
// the densest leaf regions. The space tree is exactly the incrementally
// maintainable structure the original advertises: because the seed set
// only grows, per-node nibble-value masks only gain bits, and a new seed
// descends the existing split dimensions — subtrees rebuild only when an
// insertion changes a node's least-entropy split choice.
//
// Following the hitlist paper's usage, the active-scan feedback loop of the
// original is disabled: "we prevented active scans, limited 6Tree to target
// generation only, and used the detection proposed by the IPv6 Hitlist
// service during our scans." The generator therefore only expands regions;
// alias handling is left to the pipeline's APD, reproducing the Akamai
// blow-up the paper reports when 6Tree's own alias check is trusted.
package sixtree

import (
	"math/bits"
	"sort"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// Config tunes the tree.
type Config struct {
	// MaxLeafSize stops DHC splitting below this many seeds.
	MaxLeafSize int
	// MaxFreeDims bounds how many variable nibble dimensions a leaf may
	// enumerate during generation.
	MaxFreeDims int
}

// DefaultConfig matches the published defaults at our scale.
func DefaultConfig() Config { return Config{MaxLeafSize: 16, MaxFreeDims: 2} }

// Tree is a built space tree.
type Tree struct {
	cfg    Config
	root   *node
	size   int
	leaves []*node
	fresh  bool // leaves cache valid
}

// node is one DHC region. mask[i] is the bitmask of nibble values
// observed at position i over the node's seeds — the structure that
// makes insertion cheap: split decisions depend only on masks, and masks
// are monotone under a grow-only seed set. Internal nodes hold no seeds;
// leaves keep theirs sorted ascending.
type node struct {
	mask     [32]uint16
	splitDim int // -1 at leaves
	children []*node
	keys     []byte // children[i]'s nibble value at splitDim, ascending
	seeds    []ip6.Addr
}

func (n *node) observe(a ip6.Addr) {
	for i := 0; i < 32; i++ {
		n.mask[i] |= 1 << a.Nibble(i)
	}
}

// bestSplit picks the DHC dimension: fewest distinct values (>1), ties
// towards the most significant position — the least-entropy split.
func (n *node) bestSplit() int {
	best, bestCount := -1, 17
	for i := 0; i < 32; i++ {
		if c := bits.OnesCount16(n.mask[i]); c > 1 && c < bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// fixedDim reports whether position i holds a single value over the
// node's seeds.
func (n *node) fixedDim(i int) bool { return bits.OnesCount16(n.mask[i]) == 1 }

// Generator is the tga.Generator implementation.
type Generator struct {
	cfg   Config
	model *Model
}

// New returns a 6Tree generator.
func New(cfg Config) *Generator {
	if cfg.MaxLeafSize <= 0 {
		cfg.MaxLeafSize = 16
	}
	if cfg.MaxFreeDims <= 0 {
		cfg.MaxFreeDims = 2
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Tree" }

// Build constructs the space tree over the seeds. Leaf seed order is
// normalized ascending, so the tree is a pure function of the seed set —
// the invariant that lets incremental insertion reproduce a scratch
// build bit for bit.
func Build(seeds []ip6.Addr, cfg Config) *Tree {
	return &Tree{cfg: cfg, root: buildNode(seeds, cfg), size: len(seeds)}
}

// buildNode applies DHC: recurse on the dimension with the fewest
// distinct values (>1) until regions are small.
func buildNode(seeds []ip6.Addr, cfg Config) *node {
	n := &node{splitDim: -1}
	for _, a := range seeds {
		n.observe(a)
	}
	if len(seeds) <= cfg.MaxLeafSize {
		n.seeds = sortedCopy(seeds)
		return n
	}
	best := n.bestSplit()
	if best < 0 { // all seeds identical
		n.seeds = sortedCopy(seeds)
		return n
	}
	n.splitDim = best
	var buckets [16][]ip6.Addr
	for _, a := range seeds {
		v := a.Nibble(best)
		buckets[v] = append(buckets[v], a)
	}
	for v := 0; v < 16; v++ {
		if len(buckets[v]) == 0 {
			continue
		}
		n.children = append(n.children, buildNode(buckets[v], cfg))
		n.keys = append(n.keys, byte(v))
	}
	return n
}

func sortedCopy(seeds []ip6.Addr) []ip6.Addr {
	out := append([]ip6.Addr(nil), seeds...)
	ip6.SortAddrs(out)
	return out
}

// insert adds one address, maintaining scratch-build equivalence: masks
// update along the descent path, and any node whose best-split choice
// the insertion flips is rebuilt from its gathered seeds — exactly what
// a scratch build would have produced there.
func (t *Tree) insert(a ip6.Addr, cfg Config) {
	t.fresh = false
	t.size++
	insertAt(t.root, a, cfg)
}

func insertAt(n *node, a ip6.Addr, cfg Config) {
	n.observe(a)
	if n.splitDim < 0 {
		i := sort.Search(len(n.seeds), func(i int) bool { return !n.seeds[i].Less(a) })
		if i < len(n.seeds) && n.seeds[i] == a {
			return
		}
		n.seeds = append(n.seeds, ip6.Addr{})
		copy(n.seeds[i+1:], n.seeds[i:])
		n.seeds[i] = a
		if len(n.seeds) > cfg.MaxLeafSize && n.bestSplit() >= 0 {
			*n = *buildNode(n.seeds, cfg)
		}
		return
	}
	if best := n.bestSplit(); best != n.splitDim {
		seeds := gatherSeeds(n, nil)
		seeds = append(seeds, a)
		*n = *buildNode(seeds, cfg)
		return
	}
	v := a.Nibble(n.splitDim)
	ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= v })
	if ci < len(n.keys) && n.keys[ci] == v {
		insertAt(n.children[ci], a, cfg)
		return
	}
	child := &node{splitDim: -1, seeds: []ip6.Addr{a}}
	child.observe(a)
	n.children = append(n.children, nil)
	copy(n.children[ci+1:], n.children[ci:])
	n.children[ci] = child
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = v
}

// gatherSeeds collects a subtree's seeds (leaf DFS order; order is
// irrelevant to the rebuild, which re-sorts at leaf creation).
func gatherSeeds(n *node, out []ip6.Addr) []ip6.Addr {
	if n.splitDim < 0 {
		return append(out, n.seeds...)
	}
	for _, c := range n.children {
		out = gatherSeeds(c, out)
	}
	return out
}

// leafList returns the leaves in DFS order, regenerating the cache after
// mutations.
func (t *Tree) leafList() []*node {
	if !t.fresh {
		t.leaves = t.leaves[:0]
		var dfs func(n *node)
		dfs = func(n *node) {
			if n.splitDim < 0 {
				t.leaves = append(t.leaves, n)
				return
			}
			for _, c := range n.children {
				dfs(c)
			}
		}
		if t.root != nil {
			dfs(t.root)
		}
		t.fresh = true
	}
	return t.leaves
}

// Leaves returns the number of leaf regions.
func (t *Tree) Leaves() int { return len(t.leafList()) }

// Model is the incremental 6Tree model: one space tree grown in place as
// the seed view's shards dirty, with per-shard span identities proving
// which shards changed.
type Model struct {
	cfg   Config
	built bool
	spans [ip6.AddrShards][]ip6.Addr
	tree  *Tree
}

// NewModel returns an empty model; Update populates it.
func NewModel(cfg Config) *Model { return &Model{cfg: cfg} }

// Update grows the tree with the view's new seeds, touching only shards
// whose span changed; it returns the number of dirty shards. The first
// call (and the defensive fallback, should a span ever shrink) builds
// from scratch.
func (m *Model) Update(v *tga.SeedView) int {
	if !m.built {
		return m.rebuild(v)
	}
	dirty := 0
	var fresh [ip6.AddrShards][]ip6.Addr
	for sh := 0; sh < ip6.AddrShards; sh++ {
		span := v.Shard(sh)
		if tga.SameSpan(m.spans[sh], span) {
			continue
		}
		dirty++
		// Grow-only diff: old must be a sorted subset of span.
		old, added := m.spans[sh], fresh[sh]
		i := 0
		for _, a := range span {
			if i < len(old) && old[i] == a {
				i++
				continue
			}
			added = append(added, a)
		}
		if i != len(old) {
			return m.rebuild(v) // shrank — not grow-only; start over
		}
		fresh[sh] = added
	}
	if dirty == 0 {
		return 0
	}
	for sh := 0; sh < ip6.AddrShards; sh++ {
		for _, a := range fresh[sh] {
			m.tree.insert(a, m.cfg)
		}
		m.spans[sh] = v.Shard(sh)
	}
	return dirty
}

func (m *Model) rebuild(v *tga.SeedView) int {
	all := make([]ip6.Addr, 0, v.Len())
	for sh := 0; sh < ip6.AddrShards; sh++ {
		span := v.Shard(sh)
		all = append(all, span...)
		m.spans[sh] = span
	}
	m.tree = Build(all, m.cfg)
	m.built = true
	return ip6.AddrShards
}

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: the stateless shim — a throwaway model
// over a materialized view, yielding exactly EmitView's stream.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	if len(seeds) == 0 || budget <= 0 {
		return
	}
	v := tga.SeedViewOf(seeds)
	m := NewModel(g.cfg)
	m.Update(v)
	m.emit(v, budget, yield)
}

// EmitView implements tga.ViewStreamer: grow the persistent tree with
// the view's dirty shards, then expand leaves in density order.
func (g *Generator) EmitView(v *tga.SeedView, budget int, yield func(ip6.Addr) bool) {
	if v.Len() == 0 || budget <= 0 {
		return
	}
	if g.model == nil {
		g.model = NewModel(g.cfg)
	}
	g.model.Update(v)
	g.model.emit(v, budget, yield)
}

// emit expands leaves in density order, yielding candidates as the
// expansion walks them. A shared novelty check (seed-view membership
// plus this round's emissions) makes the budget count genuinely new
// addresses, never duplicates or seeds.
func (m *Model) emit(v *tga.SeedView, budget int, yield func(ip6.Addr) bool) {
	leaves := append([]*node(nil), m.tree.leafList()...)
	sort.SliceStable(leaves, func(i, j int) bool {
		return leafPriority(leaves[i]) > leafPriority(leaves[j])
	})

	e := &emitter{budget: budget, view: v, seen: ip6.NewSet(budget), yield: yield}
	for _, leaf := range leaves {
		if e.full() {
			break
		}
		// Single observations are not regions; expanding them would
		// extrapolate from density 1.
		if len(leaf.seeds) < 2 {
			continue
		}
		expandLeaf(leaf, m.cfg.MaxFreeDims, e)
	}
}

// emitter tracks one emission pass: novelty-counted budget plus the
// consumer's early-stop signal.
type emitter struct {
	budget  int
	emitted int
	stopped bool
	view    *tga.SeedView
	seen    ip6.Set
	yield   func(ip6.Addr) bool
}

func (e *emitter) full() bool { return e.stopped || e.emitted >= e.budget }

// add yields a novel address, counting it toward the budget.
func (e *emitter) add(a ip6.Addr) {
	if !e.view.Has(a) && e.seen.Add(a) {
		e.emitted++
		if !e.yield(a) {
			e.stopped = true
		}
	}
}

func leafPriority(n *node) float64 {
	free := 0
	for i := 0; i < 32; i++ {
		if !n.fixedDim(i) {
			free++
		}
	}
	if free == 0 {
		free = 1
	}
	return float64(len(n.seeds)) / float64(free)
}

// expandLeaf enumerates the region's free dimensions over all 16 nibble
// values, holding everything else at each seed's value — the "region
// expansion" of 6Tree. When the leaf's own variability offers fewer than
// maxDims dimensions (because DHC fixed them on the way down), the lowest
// address nibbles are expanded as well; this is what discovers genuinely
// new neighbors rather than only recombinations.
func expandLeaf(n *node, maxDims int, e *emitter) {
	// Free dims, least significant first.
	var free []int
	taken := [32]bool{}
	for i := 31; i >= 0 && len(free) < maxDims; i-- {
		if !n.fixedDim(i) {
			free = append(free, i)
			taken[i] = true
		}
	}
	for i := 31; i >= 16 && len(free) < maxDims; i-- {
		if !taken[i] {
			free = append(free, i)
			taken[i] = true
		}
	}
	if len(free) == 0 {
		return
	}
	for _, seed := range n.seeds {
		var rec func(addr ip6.Addr, d int)
		rec = func(addr ip6.Addr, d int) {
			if e.full() {
				return
			}
			if d == len(free) {
				e.add(addr)
				return
			}
			for v := byte(0); v < 16; v++ {
				rec(addr.SetNibble(free[d], v), d+1)
				if e.full() {
					return
				}
			}
		}
		rec(seed, 0)
		if e.full() {
			break
		}
	}
}

// The generator is a full streaming TGA over both seed contracts.
var _ tga.ViewStreamer = (*Generator)(nil)
