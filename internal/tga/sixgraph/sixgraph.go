// Package sixgraph reimplements 6Graph (Yang et al., Computer Networks
// 2022): graph-theoretic address pattern mining. Seeds become nodes;
// addresses that agree on all but a few nibbles are linked; dense
// components become patterns — fixed nibbles plus wildcard dimensions —
// which are then enumerated as candidates.
//
// 6Graph is the most aggressive of the structural generators: it wildcards
// up to three dimensions per pattern, which is why the paper measures it
// producing the largest candidate set (125.8 M) at the lowest structural
// hit rate (~3 %), biased towards very dense regions (Free SAS).
package sixgraph

import (
	"sort"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// Config tunes pattern mining.
type Config struct {
	// MinPatternSupport is the minimum component size that forms a
	// pattern.
	MinPatternSupport int
	// MaxWildcards bounds wildcard dimensions per pattern.
	MaxWildcards int
}

// DefaultConfig matches the published defaults at our scale.
func DefaultConfig() Config { return Config{MinPatternSupport: 4, MaxWildcards: 3} }

// Pattern is a mined address pattern: a base address and wildcard
// dimensions.
type Pattern struct {
	Base      ip6.Addr
	Wildcards []int
	Support   int
}

// NumCandidatesLog16 returns the pattern volume as a power of 16.
func (p Pattern) NumCandidatesLog16() int { return len(p.Wildcards) }

// Generator implements tga.Generator.
type Generator struct{ cfg Config }

// New returns a 6Graph generator.
func New(cfg Config) *Generator {
	if cfg.MinPatternSupport <= 0 {
		cfg.MinPatternSupport = 4
	}
	if cfg.MaxWildcards <= 0 {
		cfg.MaxWildcards = 3
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Graph" }

// Mine extracts patterns from seeds. The graph's connected components are
// computed implicitly: grouping by "address with the k lowest-entropy
// varying nibbles masked" links exactly the addresses that differ only in
// those dimensions, which is the similarity the published edge criterion
// captures. Mining proceeds from 1 wildcard upwards so tight patterns win.
func Mine(seeds []ip6.Addr, cfg Config) []Pattern {
	if len(seeds) == 0 {
		return nil
	}
	entropy := tga.NibbleEntropy(seeds)
	// Wildcard dimension order: highest entropy last-32-positions first —
	// structural assignment varies in the low nibbles.
	dims := make([]int, 0, 32)
	for i := 31; i >= 16; i-- { // only IID dims are wildcard candidates
		if entropy[i] > 0 {
			dims = append(dims, i)
		}
	}
	sort.SliceStable(dims, func(a, b int) bool { return entropy[dims[a]] > entropy[dims[b]] })

	var patterns []Pattern
	used := ip6.NewSet(len(seeds))
	for k := 1; k <= cfg.MaxWildcards && k <= len(dims); k++ {
		wild := append([]int(nil), dims[:k]...)
		sort.Ints(wild)
		groups := make(map[ip6.Addr][]ip6.Addr)
		for _, a := range seeds {
			if used.Has(a) {
				continue
			}
			masked := a
			for _, d := range wild {
				masked = masked.SetNibble(d, 0)
			}
			groups[masked] = append(groups[masked], a)
		}
		keys := make([]ip6.Addr, 0, len(groups))
		for m := range groups {
			keys = append(keys, m)
		}
		ip6.SortAddrs(keys)
		for _, m := range keys {
			members := groups[m]
			if len(members) < cfg.MinPatternSupport {
				continue
			}
			patterns = append(patterns, Pattern{Base: m, Wildcards: wild, Support: len(members)})
			for _, a := range members {
				used.Add(a)
			}
		}
	}
	// Highest support first: enumeration under budget favors dense
	// regions, reproducing the Free SAS bias.
	sort.SliceStable(patterns, func(i, j int) bool { return patterns[i].Support > patterns[j].Support })
	return patterns
}

// Enumerate expands a pattern into concrete addresses, up to budget.
func Enumerate(p Pattern, budget int) []ip6.Addr {
	var out []ip6.Addr
	EnumerateEach(p, budget, func(a ip6.Addr) bool {
		out = append(out, a)
		return true
	})
	return out
}

// EnumerateEach walks a pattern's expansion in canonical wildcard order,
// yielding up to budget addresses (pre-dedup) until yield returns false.
// It returns how many addresses were walked.
func EnumerateEach(p Pattern, budget int, yield func(ip6.Addr) bool) int {
	n := 0
	stopped := false
	var rec func(addr ip6.Addr, d int)
	rec = func(addr ip6.Addr, d int) {
		if stopped || n >= budget {
			return
		}
		if d == len(p.Wildcards) {
			n++
			if !yield(addr) {
				stopped = true
			}
			return
		}
		for v := byte(0); v < 16; v++ {
			rec(addr.SetNibble(p.Wildcards[d], v), d+1)
			if stopped || n >= budget {
				return
			}
		}
	}
	rec(p.Base, 0)
	return n
}

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: mine patterns, then enumerate them in
// support order, yielding novel non-seed addresses as the expansions
// walk them. The budget counts enumerated (pre-dedup) addresses, exactly
// as Generate always charged it, so the emission is byte-identical to
// the former materialize-then-dedup pipeline.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	patterns := Mine(seeds, g.cfg)
	seedSet := ip6.NewSet(len(seeds))
	seedSet.AddSlice(seeds)
	seen := ip6.NewSet(0)
	stopped := false
	for _, p := range patterns {
		if budget <= 0 || stopped {
			break
		}
		budget -= EnumerateEach(p, budget, func(a ip6.Addr) bool {
			if !seedSet.Has(a) && seen.Add(a) {
				if !yield(a) {
					stopped = true
					return false
				}
			}
			return true
		})
	}
}

// The generator is a full streaming TGA.
var _ tga.Streamer = (*Generator)(nil)
