// Package sixgraph reimplements 6Graph (Yang et al., Computer Networks
// 2022): graph-theoretic address pattern mining. Seeds become nodes;
// addresses that agree on all but a few nibbles are linked; dense
// components become patterns — fixed nibbles plus wildcard dimensions —
// which are then enumerated as candidates.
//
// 6Graph is the most aggressive of the structural generators: it wildcards
// up to three dimensions per pattern, which is why the paper measures it
// producing the largest candidate set (125.8 M) at the lowest structural
// hit rate (~3 %), biased towards very dense regions (Free SAS).
package sixgraph

import (
	"sort"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// Config tunes pattern mining.
type Config struct {
	// MinPatternSupport is the minimum component size that forms a
	// pattern.
	MinPatternSupport int
	// MaxWildcards bounds wildcard dimensions per pattern.
	MaxWildcards int
}

// DefaultConfig matches the published defaults at our scale.
func DefaultConfig() Config { return Config{MinPatternSupport: 4, MaxWildcards: 3} }

// Pattern is a mined address pattern: a base address and wildcard
// dimensions.
type Pattern struct {
	Base      ip6.Addr
	Wildcards []int
	Support   int
}

// NumCandidatesLog16 returns the pattern volume as a power of 16.
func (p Pattern) NumCandidatesLog16() int { return len(p.Wildcards) }

// Generator implements tga.Generator.
type Generator struct {
	cfg   Config
	model *Model
}

// New returns a 6Graph generator.
func New(cfg Config) *Generator {
	if cfg.MinPatternSupport <= 0 {
		cfg.MinPatternSupport = 4
	}
	if cfg.MaxWildcards <= 0 {
		cfg.MaxWildcards = 3
	}
	return &Generator{cfg: cfg}
}

// Name implements tga.Generator.
func (g *Generator) Name() string { return "6Graph" }

// Mine extracts patterns from seeds. The graph's connected components are
// computed implicitly: grouping by "address with the k lowest-entropy
// varying nibbles masked" links exactly the addresses that differ only in
// those dimensions, which is the similarity the published edge criterion
// captures. Mining proceeds from 1 wildcard upwards so tight patterns win.
func Mine(seeds []ip6.Addr, cfg Config) []Pattern {
	if len(seeds) == 0 {
		return nil
	}
	entropy := tga.NibbleEntropy(seeds)
	walk := func(fn func(ip6.Addr) bool) {
		for _, a := range seeds {
			if !fn(a) {
				return
			}
		}
	}
	return minePatterns(walk, entropy, cfg)
}

// minePatterns is Mine over any seed iteration. Patterns are a pure
// function of the seed set: group membership, support counts and the
// used-set evolve identically under any iteration order, and group keys
// are sorted before pattern extraction — which is what lets the
// incremental model mine over the sharded view walk and still match a
// flat-slice mine bit for bit.
func minePatterns(walk func(func(ip6.Addr) bool), entropy [32]float64, cfg Config) []Pattern {
	// Wildcard dimension order: highest entropy last-32-positions first —
	// structural assignment varies in the low nibbles.
	dims := make([]int, 0, 32)
	for i := 31; i >= 16; i-- { // only IID dims are wildcard candidates
		if entropy[i] > 0 {
			dims = append(dims, i)
		}
	}
	sort.SliceStable(dims, func(a, b int) bool { return entropy[dims[a]] > entropy[dims[b]] })

	var patterns []Pattern
	used := ip6.NewSet(0)
	for k := 1; k <= cfg.MaxWildcards && k <= len(dims); k++ {
		wild := append([]int(nil), dims[:k]...)
		sort.Ints(wild)
		groups := make(map[ip6.Addr]int)
		walk(func(a ip6.Addr) bool {
			if used.Has(a) {
				return true
			}
			masked := a
			for _, d := range wild {
				masked = masked.SetNibble(d, 0)
			}
			groups[masked]++
			return true
		})
		keys := make([]ip6.Addr, 0, len(groups))
		for m, support := range groups {
			if support >= cfg.MinPatternSupport {
				keys = append(keys, m)
			}
		}
		ip6.SortAddrs(keys)
		for _, m := range keys {
			patterns = append(patterns, Pattern{Base: m, Wildcards: wild, Support: groups[m]})
		}
		// Mark every member of an accepted pattern used, so later (wider)
		// rounds do not re-mine them.
		if len(keys) > 0 {
			accepted := ip6.NewSet(len(keys))
			accepted.AddSlice(keys)
			walk(func(a ip6.Addr) bool {
				if used.Has(a) {
					return true
				}
				masked := a
				for _, d := range wild {
					masked = masked.SetNibble(d, 0)
				}
				if accepted.Has(masked) {
					used.Add(a)
				}
				return true
			})
		}
	}
	// Highest support first: enumeration under budget favors dense
	// regions, reproducing the Free SAS bias.
	sort.SliceStable(patterns, func(i, j int) bool { return patterns[i].Support > patterns[j].Support })
	return patterns
}

// Enumerate expands a pattern into concrete addresses, up to budget.
func Enumerate(p Pattern, budget int) []ip6.Addr {
	var out []ip6.Addr
	EnumerateEach(p, budget, func(a ip6.Addr) bool {
		out = append(out, a)
		return true
	})
	return out
}

// EnumerateEach walks a pattern's expansion in canonical wildcard order,
// yielding up to budget addresses (pre-dedup) until yield returns false.
// It returns how many addresses were walked.
func EnumerateEach(p Pattern, budget int, yield func(ip6.Addr) bool) int {
	n := 0
	stopped := false
	var rec func(addr ip6.Addr, d int)
	rec = func(addr ip6.Addr, d int) {
		if stopped || n >= budget {
			return
		}
		if d == len(p.Wildcards) {
			n++
			if !yield(addr) {
				stopped = true
			}
			return
		}
		for v := byte(0); v < 16; v++ {
			rec(addr.SetNibble(p.Wildcards[d], v), d+1)
			if stopped || n >= budget {
				return
			}
		}
	}
	rec(p.Base, 0)
	return n
}

// Model is the incremental 6Graph model: per-shard nibble counts cached
// against the seed view's frozen spans, re-counted only for dirty shards;
// entropy and the pattern mine rerun over the view walk when anything
// changed.
type Model struct {
	cfg      Config
	built    bool
	spans    [ip6.AddrShards][]ip6.Addr
	counts   [ip6.AddrShards][32][16]int64
	patterns []Pattern
}

// NewModel returns an empty model; Update populates it.
func NewModel(cfg Config) *Model { return &Model{cfg: cfg} }

// Update refreshes the model for the view, re-counting nibble statistics
// only for shards whose span changed (in parallel). It returns the number
// of dirty shards — 0 means the cached patterns were provably current.
func (m *Model) Update(v *tga.SeedView) int {
	var dirty [ip6.AddrShards]bool
	n := 0
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if m.built && tga.SameSpan(m.spans[sh], v.Shard(sh)) {
			continue
		}
		dirty[sh] = true
		n++
	}
	if n == 0 {
		return 0
	}
	ip6.ParallelShards(tga.ModelWorkers(), func(sh int) {
		if !dirty[sh] {
			return
		}
		span := v.Shard(sh)
		var c [32][16]int64
		tga.NibbleCounts(span, &c)
		m.counts[sh] = c
		m.spans[sh] = span
	})
	var total [32][16]int64
	for sh := range m.counts {
		for i := range m.counts[sh] {
			for val, c := range m.counts[sh][i] {
				total[i][val] += c
			}
		}
	}
	entropy := tga.EntropyFromCounts(&total, v.Len())
	if v.Len() == 0 {
		m.patterns = nil
	} else {
		m.patterns = minePatterns(v.Walk, entropy, m.cfg)
	}
	m.built = true
	return n
}

// emit enumerates the mined patterns in support order, yielding novel
// non-seed addresses as the expansions walk them. The budget counts
// enumerated (pre-dedup) addresses, exactly as Generate always charged
// it, so the emission is byte-identical to the former
// materialize-then-dedup pipeline.
func (m *Model) emit(v *tga.SeedView, budget int, yield func(ip6.Addr) bool) {
	seen := ip6.NewSet(0)
	stopped := false
	for _, p := range m.patterns {
		if budget <= 0 || stopped {
			break
		}
		budget -= EnumerateEach(p, budget, func(a ip6.Addr) bool {
			if !v.Has(a) && seen.Add(a) {
				if !yield(a) {
					stopped = true
					return false
				}
			}
			return true
		})
	}
}

// Generate implements tga.Generator: the materializing shim over Emit.
func (g *Generator) Generate(seeds []ip6.Addr, budget int) []ip6.Addr {
	return tga.Collect(g, seeds, budget)
}

// Emit implements tga.Streamer: the stateless shim — a throwaway model
// over a materialized view, yielding exactly EmitView's stream.
func (g *Generator) Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool) {
	if len(seeds) == 0 || budget <= 0 {
		return
	}
	v := tga.SeedViewOf(seeds)
	m := NewModel(g.cfg)
	m.Update(v)
	m.emit(v, budget, yield)
}

// EmitView implements tga.ViewStreamer: refresh the persistent model for
// shards the view dirtied, then enumerate the cached patterns.
func (g *Generator) EmitView(v *tga.SeedView, budget int, yield func(ip6.Addr) bool) {
	if v.Len() == 0 || budget <= 0 {
		return
	}
	if g.model == nil {
		g.model = NewModel(g.cfg)
	}
	g.model.Update(v)
	g.model.emit(v, budget, yield)
}

// The generator is a full streaming TGA over both seed contracts.
var _ tga.ViewStreamer = (*Generator)(nil)
