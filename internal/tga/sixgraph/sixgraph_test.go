package sixgraph

import (
	"testing"

	"hitlist6/internal/ip6"
)

func patternSeeds() []ip6.Addr {
	var out []ip6.Addr
	// A strong pattern: 2a01:e00:2:7::XY with both low nibbles varying
	// (two-dimensional wildcard support).
	p := ip6.MustParsePrefix("2a01:e00:2:7::/64")
	for i := uint64(1); i <= 12; i++ {
		out = append(out, p.NthAddr(i*17))
	}
	// Unrelated scattered addresses.
	out = append(out,
		ip6.MustParseAddr("2600:1111::dead:beef"),
		ip6.MustParseAddr("2604:2222::1"),
	)
	return out
}

func TestMine(t *testing.T) {
	patterns := Mine(patternSeeds(), DefaultConfig())
	if len(patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	top := patterns[0]
	if top.Support < 4 {
		t.Errorf("top pattern support %d", top.Support)
	}
	if len(top.Wildcards) == 0 || len(top.Wildcards) > DefaultConfig().MaxWildcards {
		t.Errorf("wildcards: %v", top.Wildcards)
	}
	if top.NumCandidatesLog16() != len(top.Wildcards) {
		t.Error("NumCandidatesLog16")
	}
	// Patterns sorted by support.
	for i := 1; i < len(patterns); i++ {
		if patterns[i].Support > patterns[i-1].Support {
			t.Fatal("patterns not sorted by support")
		}
	}
	// Mining nothing yields nothing.
	if Mine(nil, DefaultConfig()) != nil {
		t.Error("empty mine")
	}
}

func TestEnumerate(t *testing.T) {
	p := Pattern{Base: ip6.MustParseAddr("2a01:e00:2:7::"), Wildcards: []int{31}}
	out := Enumerate(p, 100)
	if len(out) != 16 {
		t.Fatalf("enumerate: %d", len(out))
	}
	seen := ip6.NewSet(16)
	for _, a := range out {
		if !seen.Add(a) {
			t.Fatal("duplicate in enumeration")
		}
		if a.Nibble(30) != 0 {
			t.Fatal("non-wildcard dim changed")
		}
	}
	// Budget respected.
	if len(Enumerate(p, 5)) != 5 {
		t.Error("budget")
	}
	// Two wildcards → 256.
	p2 := Pattern{Base: ip6.MustParseAddr("2a01:e00:2:7::"), Wildcards: []int{30, 31}}
	if len(Enumerate(p2, 1000)) != 256 {
		t.Error("two-wildcard enumeration")
	}
}

func TestGenerate(t *testing.T) {
	g := New(DefaultConfig())
	if g.Name() != "6Graph" {
		t.Error("name")
	}
	seeds := patternSeeds()
	out := g.Generate(seeds, 5000)
	if len(out) == 0 {
		t.Fatal("nothing generated")
	}
	seedSet := ip6.SetOf(seeds...)
	dense := ip6.MustParsePrefix("2a01:e00:2:7::/64")
	inDense := 0
	for _, a := range out {
		if seedSet.Has(a) {
			t.Fatalf("emitted seed %v", a)
		}
		if dense.Contains(a) {
			inDense++
		}
	}
	if float64(inDense) < 0.8*float64(len(out)) {
		t.Errorf("pattern region share: %d/%d", inDense, len(out))
	}
	// Deterministic.
	out2 := g.Generate(seeds, 5000)
	if len(out) != len(out2) {
		t.Fatal("non-deterministic")
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("order differs")
		}
	}
}

func TestGenerateProducesMoreThanSupport(t *testing.T) {
	// 6Graph's signature: wildcard enumeration yields far more candidates
	// than seeds.
	g := New(DefaultConfig())
	seeds := patternSeeds()
	out := g.Generate(seeds, 100000)
	if len(out) < 5*len(seeds) {
		t.Errorf("expansion factor too low: %d from %d seeds", len(out), len(seeds))
	}
}
