package sixgraph

import (
	"reflect"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

// TestIncrementalModelMatchesScratch grows the seed set shard by shard
// across rounds through epoch-delta frozen views and checks, every
// round, that the persistent incremental model's emission is
// byte-identical to a fresh model built from scratch on the same view —
// and to the stateless Generate shim over the flat slice.
func TestIncrementalModelMatchesScratch(t *testing.T) {
	var pool []ip6.Addr
	p1 := ip6.MustParsePrefix("2001:db9:1::/64")
	for i := uint64(0); i < 24; i += 2 { // dense run, gaps of 2
		pool = append(pool, p1.NthAddr(i))
	}
	p2 := ip6.MustParsePrefix("2a02:db8:7::/64")
	for i := uint64(0); i < 48; i++ { // consecutive run across many shards
		pool = append(pool, p2.NthAddr(i+1))
	}

	const budget = 400
	const rounds = 4
	collect := func(g *Generator, v *tga.SeedView) []ip6.Addr {
		var out []ip6.Addr
		g.EmitView(v, budget, func(a ip6.Addr) bool { out = append(out, a); return true })
		return out
	}

	inc := New(DefaultConfig())
	set := ip6.NewShardedSet()
	var prev *ip6.SortedShardSet
	var got []ip6.Addr
	for r := 0; r < rounds; r++ {
		for _, a := range pool[r*len(pool)/rounds : (r+1)*len(pool)/rounds] {
			set.Add(a)
		}
		frozen, _, shared := ip6.FreezeSortedDelta(set, prev)
		if r > 0 && shared == 0 {
			t.Fatalf("round %d: delta freeze shared no shards", r)
		}
		prev = frozen
		v := tga.NewSeedView(frozen)
		got = collect(inc, v)
		want := collect(New(DefaultConfig()), v)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: incremental emission diverges from scratch (%d vs %d candidates)",
				r, len(got), len(want))
		}
		flat := New(DefaultConfig()).Generate(set.Merge().Sorted(), budget)
		if !reflect.DeepEqual(got, flat) {
			t.Fatalf("round %d: view emission diverges from flat Generate (%d vs %d candidates)",
				r, len(got), len(flat))
		}
	}
	if len(got) == 0 {
		t.Fatal("final round emitted nothing — test exercised no candidates")
	}
}
