package tga_test

import (
	"context"
	"io"
	"reflect"
	"sync"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/tga"
	"hitlist6/internal/tga/dc"
	"hitlist6/internal/tga/sixgan"
	"hitlist6/internal/tga/sixgraph"
	"hitlist6/internal/tga/sixtree"
	"hitlist6/internal/tga/sixveclm"
)

// streamSeeds builds a structured seed set that exercises every
// generator: a dense low-IID cluster (distance clustering needs ≥10
// addresses within gap 64), EUI-64 and wordy IIDs for 6GAN's classes,
// and enough per-/64 variety for the tree/graph/Markov models.
func streamSeeds() []ip6.Addr {
	var seeds []ip6.Addr
	base := ip6.MustParsePrefix("2001:db8:1:1::/64")
	for i := uint64(1); i <= 14; i++ { // dense run, gaps of 2
		seeds = append(seeds, base.NthAddr(i*2))
	}
	r := rng.NewStream(99, "tga-stream-seeds")
	nets := []ip6.Prefix{
		ip6.MustParsePrefix("2001:db8:2:1::/64"),
		ip6.MustParsePrefix("2001:db8:2:2::/64"),
		ip6.MustParsePrefix("2a00:1450:8:9::/64"),
	}
	for _, p := range nets {
		for i := 0; i < 40; i++ {
			seeds = append(seeds, p.RandomAddr(r)) // random IIDs
		}
		for i := uint64(0); i < 12; i++ {
			seeds = append(seeds, p.NthAddr(i+1)) // low-byte IIDs
		}
	}
	ip6.SortAddrs(seeds)
	return tga.DedupAgainstSeeds(seeds, nil)
}

func streamers() []tga.Streamer {
	return []tga.Streamer{
		sixtree.New(sixtree.DefaultConfig()),
		sixgraph.New(sixgraph.DefaultConfig()),
		sixgan.New(sixgan.DefaultConfig()),
		sixveclm.New(sixveclm.DefaultConfig()),
		dc.New(dc.DefaultConfig()),
	}
}

// TestEmitMatchesGenerate pins the compat shim: Generate is exactly the
// collected Emit stream, and pulling through tga.NewSource reproduces it
// for any pull buffer size.
func TestEmitMatchesGenerate(t *testing.T) {
	seeds := streamSeeds()
	const budget = 3000
	for _, g := range streamers() {
		gen := g.Generate(seeds, budget)
		if len(gen) == 0 {
			t.Fatalf("%s: no candidates generated", g.Name())
		}
		for _, bufSize := range []int{1, 7, 513} {
			src := tga.NewSource(g, seeds, budget)
			var pulled []ip6.Addr
			buf := make([]ip6.Addr, bufSize)
			for {
				n, err := src.Next(buf)
				pulled = append(pulled, buf[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%s: Next: %v", g.Name(), err)
				}
			}
			if !reflect.DeepEqual(gen, pulled) {
				t.Fatalf("%s (buf %d): pulled stream diverges from Generate (%d vs %d candidates)",
					g.Name(), bufSize, len(pulled), len(gen))
			}
			if src.Emitted() != len(gen) {
				t.Errorf("%s: Emitted() = %d, want %d", g.Name(), src.Emitted(), len(gen))
			}
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// collectShardSequences streams and records each shard's target sequence
// in batch Seq order — the engine's full deterministic output shape.
func collectShardSequences(t *testing.T, stream func(scan.Sink) (scan.Stats, error)) (map[int][]ip6.Addr, scan.Stats) {
	t.Helper()
	var mu sync.Mutex
	seqs := make(map[int][]ip6.Addr)
	next := make(map[int]int)
	st, err := stream(func(b *scan.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		if b.Seq != next[b.Shard] {
			t.Errorf("shard %d: batch seq %d, want %d", b.Shard, b.Seq, next[b.Shard])
		}
		next[b.Shard]++
		for i := range b.Results {
			seqs[b.Shard] = append(seqs[b.Shard], b.Results[i].Target)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, st
}

// TestGenerateThenStreamEquivalence is the API-redesign acceptance test:
// for every TGA, materializing Generate's candidate list and Streaming it
// must be bit-identical — per-shard batch sequences and aggregate stats —
// to StreamFrom pulling the generator's stream directly, for several
// worker counts and chunk sizes. The candidate slice never exists on the
// StreamFrom side.
func TestGenerateThenStreamEquivalence(t *testing.T) {
	seeds := streamSeeds()
	const budget = 2500
	net := netmodel.NewNetwork(3, netmodel.NewASTable(nil))
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}

	for _, g := range streamers() {
		candidates := g.Generate(seeds, budget)
		mk := func(workers, chunk int) *scan.Scanner {
			cfg := scan.DefaultConfig(11)
			cfg.LossRate = 0.05
			cfg.Workers = workers
			cfg.BatchSize = 32
			cfg.SourceChunk = chunk
			return scan.New(net, cfg)
		}
		base, baseStats := collectShardSequences(t, func(sink scan.Sink) (scan.Stats, error) {
			return mk(1, 0).Stream(context.Background(), candidates, protos, 9, sink)
		})
		for _, workers := range []int{1, 4} {
			for _, chunk := range []int{1, 100, 0} {
				got, gotStats := collectShardSequences(t, func(sink scan.Sink) (scan.Stats, error) {
					return mk(workers, chunk).StreamFrom(context.Background(), tga.NewSource(g, seeds, budget), protos, 9, sink)
				})
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("%s workers=%d chunk=%d: StreamFrom shard sequences diverge from Generate-then-Stream",
						g.Name(), workers, chunk)
				}
				if baseStats.ProbesSent != gotStats.ProbesSent || baseStats.Batches != gotStats.Batches {
					t.Fatalf("%s workers=%d chunk=%d: stats diverge: %+v vs %+v",
						g.Name(), workers, chunk, baseStats, gotStats)
				}
			}
		}
	}
}

// TestSourceEarlyClose: closing a partially pulled source stops the
// generator goroutine and further pulls; double Close is safe.
func TestSourceEarlyClose(t *testing.T) {
	seeds := streamSeeds()
	g := sixgraph.New(sixgraph.DefaultConfig())
	src := tga.NewSource(g, seeds, 100000)
	buf := make([]ip6.Addr, 16)
	if n, err := src.Next(buf); n == 0 || err != nil {
		t.Fatalf("first pull: n=%d err=%v", n, err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	// Pulls after Close drain at most the already-buffered chunks and
	// then end; they must not hang.
	for i := 0; i < 100000/16; i++ {
		if _, err := src.Next(buf); err == io.EOF {
			return
		}
	}
	t.Fatal("source did not terminate after Close")
}

// TestStreamingDedupMatchesDedupAgainstSeeds pins scan.Dedup as the
// streaming counterpart of tga.DedupAgainstSeeds: same survivors, same
// order, for a stream with seed hits and repeats.
func TestStreamingDedupMatchesDedupAgainstSeeds(t *testing.T) {
	r := rng.NewStream(5, "dedup-test")
	p := ip6.MustParsePrefix("2001:db8:77::/64")
	var seeds, candidates []ip6.Addr
	for i := uint64(0); i < 50; i++ {
		seeds = append(seeds, p.NthAddr(i))
	}
	for i := 0; i < 600; i++ {
		candidates = append(candidates, p.NthAddr(uint64(r.Intn(120)))) // many dups + seed hits
	}

	want := tga.DedupAgainstSeeds(append([]ip6.Addr(nil), candidates...), seeds)

	seedSet := ip6.NewSet(len(seeds))
	seedSet.AddSlice(seeds)
	src := scan.Dedup(scan.SliceSource(candidates), seedSet.Has)
	got, err := scan.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("streaming dedup diverges: %d vs %d survivors", len(got), len(want))
	}

	// The same stream deduped against a disk-backed emitted set — how
	// the service's TGA feed round runs under a memory budget — must be
	// bit-identical too, even when every insert spills.
	spill, err := ip6.NewSpillSet(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	spilled, err := scan.Collect(scan.DedupWith(scan.SliceSource(candidates), seedSet.Has, spill))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, spilled) {
		t.Fatalf("spill-backed dedup diverges: %d vs %d survivors", len(spilled), len(want))
	}
	if spill.FrozenRuns() == 0 {
		t.Fatal("spill-backed dedup never spilled")
	}
}
