package tga

// Streaming target generation: every concrete generator implements
// Streamer — an incremental Emit that yields candidates in exactly
// Generate's order — and NewSource adapts that push stream into the scan
// engine's pull-based TargetSource, so "generate → probe → feed back"
// runs end to end without ever materializing a candidate list.

import (
	"io"
	"sync"

	"hitlist6/internal/ip6"
	"hitlist6/internal/scan"
)

// Streamer is a Generator that can emit its candidate stream
// incrementally: Emit yields up to budget candidates derived from seeds,
// in exactly the order Generate returns them, stopping early when yield
// returns false. Implementations are deterministic and never yield seed
// addresses or duplicates.
type Streamer interface {
	Generator
	Emit(seeds []ip6.Addr, budget int, yield func(ip6.Addr) bool)
}

// ViewStreamer is a Streamer that consumes the sharded SeedView contract
// directly: EmitView yields exactly the stream Emit yields for the same
// seed set, but the generator maintains an incremental statistical model
// across calls, rebuilding per-shard statistics only for spans that
// changed since the previous call (SameSpan) — so steady-state rounds
// cost the emission alone, independent of cumulative seed count. Emit
// and Generate remain stateless shims (a throwaway model over
// SeedViewOf), so a generator instance can serve both contracts.
type ViewStreamer interface {
	Streamer
	EmitView(view *SeedView, budget int, yield func(ip6.Addr) bool)
}

// Collect materializes a streamer's full emission — the Generate compat
// shim every concrete generator builds on, and the reference a streaming
// consumer can be checked against.
func Collect(g Streamer, seeds []ip6.Addr, budget int) []ip6.Addr {
	var out []ip6.Addr
	g.Emit(seeds, budget, func(a ip6.Addr) bool {
		out = append(out, a)
		return true
	})
	return out
}

// sourceChunk is the hand-off granularity between the generator
// goroutine and pulls; a few hundred addresses amortize the channel
// synchronization without buffering meaningful memory.
const sourceChunk = 256

// Source streams a generator's candidates as a pull-based
// scan.TargetSource. The generator runs in its own goroutine, bounded by
// a small chunk channel, so at most a few chunks exist at once no matter
// how large the budget is. The stream is deterministic: pulls see
// exactly Generate's output order. Close stops an unfinished generator;
// scan.Scanner.StreamFrom calls it automatically when the stream ends.
type Source struct {
	emit func(yield func(ip6.Addr) bool)

	started  bool
	ch       chan []ip6.Addr
	stop     chan struct{}
	stopOnce sync.Once
	cur      []ip6.Addr
	done     bool
	emitted  int
}

// NewSource returns a pull source over g's candidate stream for the
// given seeds and budget. Generation starts lazily on the first pull.
func NewSource(g Streamer, seeds []ip6.Addr, budget int) *Source {
	return &Source{emit: func(yield func(ip6.Addr) bool) { g.Emit(seeds, budget, yield) }}
}

// NewViewSource is NewSource over the sharded seed-view contract: the
// generator's incremental model updates for dirty shards when the first
// pull starts the emission.
func NewViewSource(g ViewStreamer, view *SeedView, budget int) *Source {
	return &Source{emit: func(yield func(ip6.Addr) bool) { g.EmitView(view, budget, yield) }}
}

func (s *Source) start() {
	s.ch = make(chan []ip6.Addr, 4)
	s.stop = make(chan struct{})
	go func() {
		defer close(s.ch)
		buf := make([]ip6.Addr, 0, sourceChunk)
		flush := func() bool {
			if len(buf) == 0 {
				return true
			}
			select {
			case s.ch <- buf:
				buf = make([]ip6.Addr, 0, sourceChunk)
				return true
			case <-s.stop:
				return false
			}
		}
		s.emit(func(a ip6.Addr) bool {
			buf = append(buf, a)
			if len(buf) == sourceChunk {
				return flush()
			}
			select {
			case <-s.stop:
				return false
			default:
				return true
			}
		})
		flush()
	}()
}

// Next implements scan.TargetSource.
func (s *Source) Next(buf []ip6.Addr) (int, error) {
	if !s.started {
		s.started = true
		s.start()
	}
	for len(s.cur) == 0 {
		if s.done {
			return 0, io.EOF
		}
		chunk, ok := <-s.ch
		if !ok {
			s.done = true
			return 0, io.EOF
		}
		s.cur = chunk
	}
	n := copy(buf, s.cur)
	s.cur = s.cur[n:]
	s.emitted += n
	return n, nil
}

// Close stops the generator goroutine; safe to call more than once, and
// after exhaustion. It never blocks.
func (s *Source) Close() error {
	if s.started {
		s.stopOnce.Do(func() { close(s.stop) })
	}
	return nil
}

// Emitted reports how many candidates have been pulled so far. Read it
// after the stream ends.
func (s *Source) Emitted() int { return s.emitted }

// CandidateFeed adapts a ViewStreamer into the service's per-scan
// candidate feed (core.Config.TGAFeed): each scan it streams up to
// Budget candidates generated from the service's cumulative responsive
// seeds, which the service probes and feeds back as input — the paper's
// Section 6 TGA workload as a closed loop. The service dedups the
// stream on the fly against every address ever seen as input; under a
// memory budget (core.Config.MemoryBudget) both that cumulative set and
// the round's emitted-candidate set are disk-backed, so the candidate
// stream is memory-bounded no matter how large Budget grows. Seeds
// arrive as a SeedView — per-shard frozen spans pointer-shared across
// rounds — so neither the service nor the generator ever materializes
// the cumulative seed slice again.
type CandidateFeed struct {
	Gen    ViewStreamer
	Budget int
}

// Name labels the feed in input accounting.
func (f CandidateFeed) Name() string { return f.Gen.Name() }

// Candidates returns the scan-day candidate stream. The day parameter is
// part of the feed contract (feeds may vary generation by day); the
// bundled generators are day-independent.
func (f CandidateFeed) Candidates(day int, seeds *SeedView) scan.TargetSource {
	return NewViewSource(f.Gen, seeds, f.Budget)
}
