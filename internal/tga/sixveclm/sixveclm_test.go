package sixveclm

import (
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/tga"
)

func seeds() []ip6.Addr {
	var out []ip6.Addr
	p := ip6.MustParsePrefix("2a01:e00:4::/64")
	for i := uint64(1); i <= 25; i++ {
		out = append(out, p.NthAddr(i))
	}
	q := ip6.MustParsePrefix("2604:a880:2::/64")
	for i := uint64(0); i < 8; i++ {
		out = append(out, q.NthAddr(i*0x10+1))
	}
	return out
}

func TestGenerateStaysInSeedNetworks(t *testing.T) {
	g := New(DefaultConfig())
	if g.Name() != "6VecLM" {
		t.Error("name")
	}
	s := seeds()
	out := g.Generate(s, 300)
	if len(out) == 0 {
		t.Fatal("nothing generated")
	}
	nets := make(map[ip6.Prefix]bool)
	for _, g := range tga.GroupBySlash64(s) {
		nets[g.Prefix] = true
	}
	for _, a := range out {
		if !nets[ip6.Slash64(a)] {
			t.Fatalf("candidate %v outside seed networks", a)
		}
	}
	seedSet := ip6.SetOf(s...)
	for _, a := range out {
		if seedSet.Has(a) {
			t.Fatalf("emitted seed %v", a)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := seeds()
	a := New(DefaultConfig()).Generate(s, 100)
	b := New(DefaultConfig()).Generate(s, 100)
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order differs")
		}
	}
}

func TestModelLearnsIIDStructure(t *testing.T) {
	// Seeds whose IIDs live entirely in the low 16 bits: novel candidates
	// (seeds themselves are deduplicated away) must still overwhelmingly
	// keep the high IID nibbles at zero — the learned structure.
	var s []ip6.Addr
	p := ip6.MustParsePrefix("2a01:e00:5::/64")
	for i := uint64(0); i < 40; i++ {
		s = append(s, p.NthAddr(i*16+1))
	}
	g := New(DefaultConfig())
	out := g.Generate(s, 200)
	if len(out) == 0 {
		t.Fatal("nothing generated")
	}
	structured := 0
	for _, a := range out {
		zeroHigh := true
		for pos := 16; pos < 24; pos++ {
			if a.Nibble(pos) != 0 {
				zeroHigh = false
				break
			}
		}
		if zeroHigh {
			structured++
		}
	}
	if structured < len(out)*8/10 {
		t.Errorf("IID structure not learned: %d/%d keep high nibbles zero", structured, len(out))
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	g := New(DefaultConfig())
	if g.Generate(nil, 100) != nil {
		t.Error("nil seeds")
	}
	if g.Generate(seeds(), 0) != nil {
		t.Error("zero budget")
	}
}
