package ip6

// SortedShardSet is a frozen address set stored as sorted per-shard
// slices — the read-only, cache-friendly form of a ShardedSet. Building
// it costs one sort per shard; after that, set algebra runs as linear
// merge walks over packed arrays with no hashing and no allocation,
// which is what the overlap matrices (Figures 7 and 10) want: the old
// path materialized flat map copies of every set just to count
// intersections.
type SortedShardSet struct {
	shards [AddrShards][]Addr
	total  int

	// src and epochs record which set object each freeze was built from
	// and the per-shard mutation epochs at freeze time, so the delta
	// freezes can prove a shard unchanged and share its frozen slice with
	// the next generation. src is identity only — never dereferenced for
	// content — and is nil for wrapped sets (SortedFromShards).
	src    any
	epochs [AddrShards]uint64
}

// FreezeSorted builds the sorted form of s. The result is independent of
// s (the addresses are copied), so s may keep growing afterwards.
func FreezeSorted(s *ShardedSet) *SortedShardSet { return FreezeSortedSet(s) }

// FreezeSortedSet is FreezeSorted over any SpillableSet — the resident
// ShardedSet or the disk-backed SpillSet; spilled shards stream through
// WalkShard and are sorted once into the shared backing array.
func FreezeSortedSet(s SpillableSet) *SortedShardSet {
	out := &SortedShardSet{src: s}
	n := s.Len()
	buf := make([]Addr, 0, n) // one backing array shared by all shards
	for sh := 0; sh < AddrShards; sh++ {
		start := len(buf)
		s.WalkShard(sh, func(a Addr) bool {
			buf = append(buf, a)
			return true
		})
		shard := buf[start:len(buf):len(buf)]
		SortAddrs(shard)
		out.shards[sh] = shard
		out.epochs[sh] = s.ShardEpoch(sh)
	}
	out.total = n
	return out
}

// FreezeSortedDelta builds the sorted form of s, sharing the frozen
// slices of unchanged shards with prev — a SortedShardSet previously
// frozen from the same ShardedSet object — instead of re-copying and
// re-sorting them. A shard is provably unchanged when prev was frozen
// from s (pointer identity) and its mutation epoch has not advanced
// since; changed shards are re-frozen into one fresh backing array.
// Sharing is safe because frozen slices are immutable by contract. With
// prev nil, or frozen from a different set object, this degrades to a
// full FreezeSorted. Returns the new set plus the number of shards
// re-frozen and shared.
func FreezeSortedDelta(s *ShardedSet, prev *SortedShardSet) (out *SortedShardSet, refrozen, shared int) {
	return FreezeSortedSetDelta(s, prev)
}

// FreezeSortedSetDelta is FreezeSortedDelta over any SpillableSet: the
// epoch-delta freeze the TGA seed views ride, working identically for
// the resident and disk-backed cumulative sets.
func FreezeSortedSetDelta(s SpillableSet, prev *SortedShardSet) (out *SortedShardSet, refrozen, shared int) {
	if prev == nil || prev.src != s {
		return FreezeSortedSet(s), AddrShards, 0
	}
	out = &SortedShardSet{src: prev.src}
	need := 0
	var dirty [AddrShards]bool
	for sh := 0; sh < AddrShards; sh++ {
		if s.ShardEpoch(sh) != prev.epochs[sh] {
			dirty[sh] = true
			need += s.ShardLen(sh)
		}
	}
	buf := make([]Addr, 0, need) // one backing array for all dirty shards
	for sh := 0; sh < AddrShards; sh++ {
		if !dirty[sh] {
			out.shards[sh] = prev.shards[sh]
			out.epochs[sh] = prev.epochs[sh]
			out.total += len(prev.shards[sh])
			shared++
			continue
		}
		start := len(buf)
		s.WalkShard(sh, func(a Addr) bool {
			buf = append(buf, a)
			return true
		})
		shard := buf[start:len(buf):len(buf)]
		SortAddrs(shard)
		out.shards[sh] = shard
		out.epochs[sh] = s.ShardEpoch(sh)
		out.total += len(shard)
		refrozen++
	}
	return out, refrozen, shared
}

// SortedFromShards wraps already-sorted per-shard slices — for example
// the mmap'd spans of a .hl6 file, whose on-disk layout is exactly this
// partition — as a SortedShardSet without copying. The slices must be
// sorted ascending, duplicate-free, and partitioned by ShardOf; callers
// own that invariant (hl6 files carry it by construction).
func SortedFromShards(shards [AddrShards][]Addr) *SortedShardSet {
	out := &SortedShardSet{shards: shards}
	for sh := 0; sh < AddrShards; sh++ {
		out.total += len(shards[sh])
	}
	return out
}

// Len returns the total cardinality; a nil receiver is an empty set.
func (s *SortedShardSet) Len() int {
	if s == nil {
		return 0
	}
	return s.total
}

// Has reports membership by binary search over the address's canonical
// shard — the point lookup the serving layer answers queries with. It
// allocates nothing; a nil receiver is an empty set.
func (s *SortedShardSet) Has(a Addr) bool {
	if s == nil {
		return false
	}
	return s.HasInShard(ShardOf(a), a)
}

// HasInShard is Has when the caller already knows the shard.
func (s *SortedShardSet) HasInShard(sh int, a Addr) bool {
	if s == nil {
		return false
	}
	shard := s.shards[sh]
	hi, lo := a.Hi(), a.Lo()
	i, j := 0, len(shard)
	for i < j {
		m := int(uint(i+j) >> 1)
		mhi, mlo := shard[m].Hi(), shard[m].Lo()
		if mhi < hi || (mhi == hi && mlo < lo) {
			i = m + 1
		} else {
			j = m
		}
	}
	return i < len(shard) && shard[i].Hi() == hi && shard[i].Lo() == lo
}

// Shard returns shard i's sorted members; treat as read-only.
func (s *SortedShardSet) Shard(i int) []Addr { return s.shards[i] }

// ShardEpoch returns the mutation epoch shard i was frozen at — the
// source set's ShardEpoch at freeze time, or 0 for wrapped sets. Epochs
// are comparable only between freezes of the same source object.
func (s *SortedShardSet) ShardEpoch(i int) uint64 { return s.epochs[i] }

// IntersectCount returns |s ∩ o| by per-shard sorted merge walks,
// allocating nothing. Shards partition the address space identically on
// both sides (ShardOf is canonical), so shards can be intersected
// pairwise.
func (s *SortedShardSet) IntersectCount(o *SortedShardSet) int {
	n := 0
	for sh := 0; sh < AddrShards; sh++ {
		a, b := s.shards[sh], o.shards[sh]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch c := a[i].Compare(b[j]); {
			case c < 0:
				i++
			case c > 0:
				j++
			default:
				n++
				i++
				j++
			}
		}
	}
	return n
}

// Walk visits every member in canonical order (shard by shard, sorted
// within each shard); fn returning false stops the walk.
func (s *SortedShardSet) Walk(fn func(Addr) bool) {
	for sh := 0; sh < AddrShards; sh++ {
		for _, a := range s.shards[sh] {
			if !fn(a) {
				return
			}
		}
	}
}
