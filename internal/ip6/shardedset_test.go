package ip6

import (
	"sync"
	"testing"
)

func shardedTestAddrs(n int) []Addr {
	out := make([]Addr, n)
	for i := range out {
		out[i] = AddrFromUint64s(0x2001_0db8_0000_0000+uint64(i/7), uint64(i)*0x9e37)
	}
	return out
}

func TestShardOfStableAndInRange(t *testing.T) {
	for _, a := range shardedTestAddrs(500) {
		sh := ShardOf(a)
		if sh < 0 || sh >= AddrShards {
			t.Fatalf("shard out of range: %d", sh)
		}
		if sh != ShardOf(a) {
			t.Fatalf("shard not stable for %v", a)
		}
	}
}

func TestShardOfSpreads(t *testing.T) {
	hit := make(map[int]int)
	for _, a := range shardedTestAddrs(4096) {
		hit[ShardOf(a)]++
	}
	if len(hit) < AddrShards/2 {
		t.Errorf("addresses concentrated in %d/%d shards", len(hit), AddrShards)
	}
}

func TestShardedSetBasics(t *testing.T) {
	s := NewShardedSet()
	addrs := shardedTestAddrs(300)
	for _, a := range addrs {
		if !s.Add(a) {
			t.Fatalf("fresh add reported duplicate: %v", a)
		}
	}
	if s.Add(addrs[0]) {
		t.Error("duplicate add reported fresh")
	}
	if s.Len() != len(addrs) {
		t.Errorf("len: %d vs %d", s.Len(), len(addrs))
	}
	for _, a := range addrs {
		if !s.Has(a) {
			t.Fatalf("missing %v", a)
		}
		if !s.HasInShard(ShardOf(a), a) {
			t.Fatalf("HasInShard missing %v", a)
		}
	}
	merged := s.Merge()
	if merged.Len() != len(addrs) {
		t.Errorf("merged len: %d", merged.Len())
	}
	for _, a := range addrs {
		if !merged.Has(a) {
			t.Fatalf("merged missing %v", a)
		}
	}
}

func TestShardedSetShardsAreDisjointAndCanonical(t *testing.T) {
	s := NewShardedSet()
	for _, a := range shardedTestAddrs(1000) {
		s.Add(a)
	}
	total := 0
	for sh := 0; sh < AddrShards; sh++ {
		for a := range s.Shard(sh) {
			if ShardOf(a) != sh {
				t.Fatalf("%v stored in shard %d, canonical %d", a, sh, ShardOf(a))
			}
			total++
		}
	}
	if total != s.Len() {
		t.Errorf("shard walk saw %d, Len %d", total, s.Len())
	}
}

func TestShardedSetConcurrentPerShardWriters(t *testing.T) {
	s := NewShardedSet()
	addrs := shardedTestAddrs(2000)
	byShard := make([][]Addr, AddrShards)
	for _, a := range addrs {
		sh := ShardOf(a)
		byShard[sh] = append(byShard[sh], a)
	}
	// One goroutine per shard — the writing contract the scan engine
	// provides. Must be race-free (run under -race) and lose nothing.
	var wg sync.WaitGroup
	for sh := range byShard {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for _, a := range byShard[sh] {
				s.AddToShard(sh, a)
			}
		}(sh)
	}
	wg.Wait()
	if s.Len() != len(addrs) {
		t.Errorf("len after concurrent fill: %d vs %d", s.Len(), len(addrs))
	}
}

func TestShardedSetCloneAndWalk(t *testing.T) {
	s := NewShardedSet()
	addrs := shardedTestAddrs(64)
	for _, a := range addrs {
		s.Add(a)
	}
	c := s.Clone()
	extra := AddrFromUint64s(0x2001_0db8_ffff_0000, 1)
	c.Add(extra)
	if s.Has(extra) {
		t.Error("clone shares storage with original")
	}
	n := 0
	s.Walk(func(Addr) bool { n++; return true })
	if n != len(addrs) {
		t.Errorf("walk visited %d", n)
	}
	n = 0
	s.Walk(func(Addr) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop walk visited %d", n)
	}
}

func TestShardedSetSetShardAndAddAll(t *testing.T) {
	s := NewShardedSet()
	addrs := shardedTestAddrs(128)
	byShard := make([]Set, AddrShards)
	for _, a := range addrs {
		sh := ShardOf(a)
		if byShard[sh] == nil {
			byShard[sh] = NewSet(0)
		}
		byShard[sh].Add(a)
	}
	for sh, set := range byShard {
		s.SetShard(sh, set)
	}
	if s.Len() != len(addrs) {
		t.Errorf("len after SetShard: %d", s.Len())
	}
	d := NewShardedSet()
	for sh, set := range byShard {
		d.AddAllToShard(sh, set)
	}
	if d.Len() != len(addrs) {
		t.Errorf("len after AddAllToShard: %d", d.Len())
	}
}
