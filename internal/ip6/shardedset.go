package ip6

import "hitlist6/internal/rng"

// AddrShards is the canonical shard count used by every hash-sharded
// address structure in the repository. It is a constant — not a knob — so
// that shard-indexed data from independent components (the scan engine's
// batches, the service's digest accumulators, the GFW tracker) always
// agrees on which shard an address belongs to, and so that merged outputs
// are bit-identical regardless of worker count or batch size.
const AddrShards = 64

// shardSalt namespaces the shard hash away from the simulation's other
// Mix draws.
const shardSalt = 0x5aa4d_06d1

// ShardOf returns the canonical shard index of an address, in
// [0, AddrShards).
func ShardOf(a Addr) int {
	return int(rng.Mix(a.Hi(), a.Lo(), shardSalt) % AddrShards)
}

// ShardedSet is an address set partitioned into AddrShards disjoint Sets
// by ShardOf. It exists for parallel accumulation: each shard may be
// written by at most one goroutine at a time (the scan engine guarantees
// this by processing each shard sequentially), so no locking is needed,
// and merging in canonical shard order is deterministic by construction.
//
// The zero value is not ready for use; call NewShardedSet.
//
// Each shard carries a mutation epoch: a counter bumped whenever the
// shard's membership actually changes. Consumers that derive per-shard
// artifacts (frozen sorted indexes, checkpoint payloads) record the
// epochs they built against and later rebuild only the shards whose
// epoch advanced. The invariant is one-directional per set object:
// an unchanged epoch guarantees unchanged membership; a bumped epoch
// merely permits a change.
type ShardedSet struct {
	shards [AddrShards]Set
	epochs [AddrShards]uint64
}

// NewShardedSet returns an empty ShardedSet. Shard maps are allocated
// lazily on first insert.
func NewShardedSet() *ShardedSet { return &ShardedSet{} }

// Add inserts a into its canonical shard; it reports whether a was newly
// added. Not safe for concurrent use — use AddToShard from per-shard
// workers instead.
func (s *ShardedSet) Add(a Addr) bool { return s.AddToShard(ShardOf(a), a) }

// AddToShard inserts a into shard i. The caller must ensure
// ShardOf(a) == i (the scan engine's batches satisfy this) and that no
// other goroutine touches shard i concurrently.
func (s *ShardedSet) AddToShard(i int, a Addr) bool {
	if s.shards[i] == nil {
		s.shards[i] = NewSet(0)
	}
	if s.shards[i].Add(a) {
		s.epochs[i]++
		return true
	}
	return false
}

// AddAllToShard inserts every member of set into shard i, under the same
// contract as AddToShard.
func (s *ShardedSet) AddAllToShard(i int, set Set) {
	if len(set) == 0 {
		return
	}
	if s.shards[i] == nil {
		s.shards[i] = NewSet(len(set))
	}
	before := len(s.shards[i])
	s.shards[i].AddAll(set)
	if len(s.shards[i]) != before {
		s.epochs[i]++
	}
}

// SetShard replaces shard i with set (taking ownership, no copy). Every
// member of set must hash to shard i. The shard's epoch advances only
// when the replacement actually changes membership — wholesale
// replacement with equal content (the digest finalizer installs a fresh
// per-scan responder set every scan, usually identical to the last) must
// not invalidate artifacts frozen from the old content.
func (s *ShardedSet) SetShard(i int, set Set) {
	if !s.shards[i].Equal(set) {
		s.epochs[i]++
	}
	s.shards[i] = set
}

// ShardEpoch returns shard i's mutation epoch.
func (s *ShardedSet) ShardEpoch(i int) uint64 { return s.epochs[i] }

// Shard returns shard i's Set; it may be nil when empty. Treat as
// read-only unless the per-shard writing contract is honored.
func (s *ShardedSet) Shard(i int) Set { return s.shards[i] }

// Has reports membership.
func (s *ShardedSet) Has(a Addr) bool {
	sh := s.shards[ShardOf(a)]
	return sh != nil && sh.Has(a)
}

// HasInShard reports membership of a in shard i, skipping the shard hash
// when the caller already knows it.
func (s *ShardedSet) HasInShard(i int, a Addr) bool {
	sh := s.shards[i]
	return sh != nil && sh.Has(a)
}

// ShardLen returns the cardinality of shard i.
func (s *ShardedSet) ShardLen(i int) int { return len(s.shards[i]) }

// Len returns the total cardinality across shards.
func (s *ShardedSet) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh)
	}
	return n
}

// Merge returns a new flat Set holding every member, built in canonical
// shard order. Shards are disjoint, so this is a plain disjoint union.
func (s *ShardedSet) Merge() Set {
	out := NewSet(s.Len())
	for _, sh := range s.shards {
		out.AddAll(sh)
	}
	return out
}

// Clone returns a deep copy, shard epochs included.
func (s *ShardedSet) Clone() *ShardedSet {
	c := &ShardedSet{epochs: s.epochs}
	for i, sh := range s.shards {
		if sh != nil {
			c.shards[i] = sh.Clone()
		}
	}
	return c
}

// Walk visits every member, shard by shard in canonical order; fn
// returning false stops the walk. Within a shard the order is map order
// (unspecified).
func (s *ShardedSet) Walk(fn func(Addr) bool) {
	for _, sh := range s.shards {
		for a := range sh {
			if !fn(a) {
				return
			}
		}
	}
}

// WalkShard visits every member of shard i in unspecified order; fn
// returning false stops the walk.
func (s *ShardedSet) WalkShard(i int, fn func(Addr) bool) {
	for a := range s.shards[i] {
		if !fn(a) {
			return
		}
	}
}
