package ip6

import (
	"os"
	"testing"

	"hitlist6/internal/rng"
)

// randAddrs draws n deterministic pseudo-random addresses (with some
// forced duplicates when dup is true).
func randAddrs(seed uint64, n int, dup bool) []Addr {
	r := rng.NewStream(seed, "spill-test")
	out := make([]Addr, 0, n)
	for i := 0; i < n; i++ {
		a := AddrFromUint64s(r.Uint64(), r.Uint64())
		out = append(out, a)
		if dup && i%7 == 0 {
			out = append(out, a)
			i++
		}
	}
	return out
}

func TestRunFileWriteHasMerge(t *testing.T) {
	rf, err := OpenRunFile(t.TempDir(), "runs-*")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()

	addrs := randAddrs(1, 3000, false)
	SortAddrs(addrs)
	half := len(addrs) / 2
	r1, err := rf.WriteRun(addrs[:half])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rf.WriteRun(addrs[half:])
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count()+r2.Count() != len(addrs) {
		t.Fatalf("run counts %d+%d != %d", r1.Count(), r2.Count(), len(addrs))
	}

	var scratch []byte
	for i, a := range addrs {
		run := &r1
		if i >= half {
			run = &r2
		}
		ok, err := run.Has(rf, a, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("addr %d missing from its run", i)
		}
	}
	// Probes for absent addresses.
	miss := 0
	for _, a := range randAddrs(2, 500, false) {
		ok1, err1 := r1.Has(rf, a, &scratch)
		ok2, err2 := r2.Has(rf, a, &scratch)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !ok1 && !ok2 {
			miss++
		}
	}
	if miss != 500 {
		t.Fatalf("expected 500 misses, got %d", miss)
	}

	// Merge restores the full sorted sequence, deduped.
	overlap := addrs[half-50 : half+50] // duplicate a window across a third run
	r3, err := rf.WriteRun(overlap)
	if err != nil {
		t.Fatal(err)
	}
	var merged []Addr
	if err := MergeRuns(rf, []*Run{&r1, &r2, &r3}, func(a Addr) error {
		merged = append(merged, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(addrs) {
		t.Fatalf("merged %d addrs, want %d", len(merged), len(addrs))
	}
	for i := range merged {
		if merged[i] != addrs[i] {
			t.Fatalf("merged[%d] = %v, want %v", i, merged[i], addrs[i])
		}
	}
}

// TestSpillSetMatchesShardedSet drives a SpillSet with a tiny budget and
// a resident ShardedSet through the same operation sequence and checks
// every observable view agrees.
func TestSpillSetMatchesShardedSet(t *testing.T) {
	spill, err := NewSpillSet(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()
	resident := NewShardedSet()

	addrs := randAddrs(3, 4000, true)
	for i, a := range addrs {
		sh := ShardOf(a)
		gotNew := spill.AddToShard(sh, a)
		wantNew := resident.AddToShard(sh, a)
		if gotNew != wantNew {
			t.Fatalf("insert %d: spill new=%v resident new=%v", i, gotNew, wantNew)
		}
		if i%997 == 0 {
			if err := spill.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Batch inserts through the AddAll path.
	batch := SetOf(randAddrs(4, 300, false)...)
	perShard := make([]Set, AddrShards)
	for a := range batch {
		sh := ShardOf(a)
		if perShard[sh] == nil {
			perShard[sh] = NewSet(0)
		}
		perShard[sh].Add(a)
	}
	for sh, set := range perShard {
		if set == nil {
			continue
		}
		spill.AddAllToShard(sh, set)
		resident.AddAllToShard(sh, set)
	}

	if spill.FrozenRuns() == 0 {
		t.Fatal("tiny budget froze no runs — spilling never happened")
	}
	if got, want := spill.Len(), resident.Len(); got != want {
		t.Fatalf("Len: spill %d, resident %d", got, want)
	}
	for _, a := range addrs {
		if !spill.Has(a) {
			t.Fatalf("spill set lost %v", a)
		}
	}
	for _, a := range randAddrs(5, 500, false) {
		if spill.Has(a) != resident.Has(a) {
			t.Fatalf("membership diverges for %v", a)
		}
	}

	// Merge and per-shard walks agree exactly.
	gotMerge, wantMerge := spill.Merge(), resident.Merge()
	if len(gotMerge) != len(wantMerge) {
		t.Fatalf("Merge: %d vs %d members", len(gotMerge), len(wantMerge))
	}
	for a := range wantMerge {
		if !gotMerge.Has(a) {
			t.Fatalf("Merge missing %v", a)
		}
	}
	for sh := 0; sh < AddrShards; sh++ {
		walked := NewSet(0)
		spill.WalkShard(sh, func(a Addr) bool {
			if ShardOf(a) != sh {
				t.Fatalf("WalkShard(%d) yielded foreign addr %v", sh, a)
			}
			if !walked.Add(a) {
				t.Fatalf("WalkShard(%d) yielded %v twice", sh, a)
			}
			return true
		})
		want := resident.Shard(sh)
		if walked.Len() != want.Len() {
			t.Fatalf("shard %d: walked %d, want %d", sh, walked.Len(), want.Len())
		}
	}

	// Compaction folds runs down without changing any view.
	lenBefore := spill.Len()
	if err := spill.Compact(); err != nil {
		t.Fatal(err)
	}
	if spill.Len() != lenBefore {
		t.Fatalf("Compact changed Len %d → %d", lenBefore, spill.Len())
	}
	for _, a := range addrs[:512] {
		if !spill.Has(a) {
			t.Fatalf("Compact lost %v", a)
		}
	}
	if err := spill.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillSetCloseRemovesScratch(t *testing.T) {
	dir := t.TempDir()
	spill, err := NewSpillSet(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range randAddrs(6, 64, false) {
		spill.Add(a)
	}
	if spill.SpilledBytes() == 0 {
		t.Fatal("budget 1 spilled nothing")
	}
	if err := spill.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("scratch files left behind: %v", entries)
	}
}

// TestSpillSetParallelShards exercises the per-shard contract: concurrent
// writers on distinct shards share one scratch file.
func TestSpillSetParallelShards(t *testing.T) {
	spill, err := NewSpillSet(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()

	addrs := randAddrs(7, 5000, false)
	perShard := make([][]Addr, AddrShards)
	for _, a := range addrs {
		sh := ShardOf(a)
		perShard[sh] = append(perShard[sh], a)
	}
	ParallelShards(8, func(sh int) {
		for _, a := range perShard[sh] {
			spill.AddToShard(sh, a)
		}
	})
	if err := spill.Err(); err != nil {
		t.Fatal(err)
	}
	if got := spill.Len(); got != len(addrs) {
		t.Fatalf("Len %d, want %d", got, len(addrs))
	}
	ParallelShards(8, func(sh int) {
		for _, a := range perShard[sh] {
			if !spill.HasInShard(sh, a) {
				t.Errorf("shard %d lost %v", sh, a)
				return
			}
		}
	})
}

// TestSpillSetCompactRotationReclaimsSpace drives enough churn through
// repeated compactions that dead bytes outgrow live data, and checks the
// scratch file is rewritten (bounded near the live size) with membership
// intact.
func TestSpillSetCompactRotationReclaimsSpace(t *testing.T) {
	dir := t.TempDir()
	spill, err := NewSpillSet(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()

	addrs := randAddrs(11, 300_000, false)
	chunk := 60_000
	for i := 0; i < len(addrs); i += chunk {
		end := i + chunk
		if end > len(addrs) {
			end = len(addrs)
		}
		for _, a := range addrs[i:end] {
			spill.Add(a)
		}
		// Each compaction rewrites the shard runs, turning the previous
		// copies into dead bytes; past the threshold Compact must rotate.
		if err := spill.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	if err := spill.Err(); err != nil {
		t.Fatal(err)
	}
	if got := spill.Len(); got != len(addrs) {
		t.Fatalf("Len %d, want %d", got, len(addrs))
	}
	// Live data is ≤ Len addresses on disk; without rotation the scratch
	// file would hold every superseded compaction output (several times
	// the live size). Allow 2x for the rotation threshold's hysteresis.
	liveBytes := int64(spill.Len()) * AddrBytes
	if sz := spill.SpilledBytes(); sz > 2*liveBytes+rotateMinDead {
		t.Fatalf("scratch file %d bytes for %d live — rotation never reclaimed space", sz, liveBytes)
	}
	// Exactly one scratch file lives in the dir (the rotated-away ones
	// are removed).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d scratch files after rotation, want 1", len(entries))
	}
	for _, a := range addrs[:1000] {
		if !spill.Has(a) {
			t.Fatalf("rotation lost %v", a)
		}
	}
}
