package ip6

import (
	"slices"
	"sort"
)

// Set is an unordered set of IPv6 addresses.
type Set map[Addr]struct{}

// NewSet returns an empty Set with capacity hint n.
func NewSet(n int) Set { return make(Set, n) }

// SetOf builds a Set from addresses.
func SetOf(addrs ...Addr) Set {
	s := make(Set, len(addrs))
	for _, a := range addrs {
		s[a] = struct{}{}
	}
	return s
}

// Add inserts a; it reports whether a was newly added.
func (s Set) Add(a Addr) bool {
	if _, ok := s[a]; ok {
		return false
	}
	s[a] = struct{}{}
	return true
}

// AddAll inserts every address from other.
func (s Set) AddAll(other Set) {
	for a := range other {
		s[a] = struct{}{}
	}
}

// AddSlice inserts every address from addrs.
func (s Set) AddSlice(addrs []Addr) {
	for _, a := range addrs {
		s[a] = struct{}{}
	}
}

// Has reports membership.
func (s Set) Has(a Addr) bool { _, ok := s[a]; return ok }

// Delete removes a.
func (s Set) Delete(a Addr) { delete(s, a) }

// Equal reports whether s and other hold exactly the same members; a nil
// set equals an empty one.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for a := range s {
		if _, ok := other[a]; !ok {
			return false
		}
	}
	return true
}

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Clone returns a copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for a := range s {
		c[a] = struct{}{}
	}
	return c
}

// Union returns a new set with all members of s and other.
func (s Set) Union(other Set) Set {
	u := make(Set, len(s)+len(other))
	for a := range s {
		u[a] = struct{}{}
	}
	for a := range other {
		u[a] = struct{}{}
	}
	return u
}

// Intersect returns the members present in both sets.
func (s Set) Intersect(other Set) Set {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	out := make(Set)
	for a := range small {
		if _, ok := large[a]; ok {
			out[a] = struct{}{}
		}
	}
	return out
}

// IntersectCount returns |s ∩ other| without allocating the intersection.
// Overlap matrices (Figures 7 and 10) are built from this.
func (s Set) IntersectCount(other Set) int {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	n := 0
	for a := range small {
		if _, ok := large[a]; ok {
			n++
		}
	}
	return n
}

// Diff returns the members of s not in other.
func (s Set) Diff(other Set) Set {
	out := make(Set)
	for a := range s {
		if _, ok := other[a]; !ok {
			out[a] = struct{}{}
		}
	}
	return out
}

// Sorted returns the members in ascending numeric order.
func (s Set) Sorted() []Addr {
	out := make([]Addr, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SortAddrs sorts a slice of addresses in place, ascending. The generic
// sort avoids the reflection and closure allocations of sort.Slice —
// per-shard scan-set sorting calls this once per shard per scan.
func SortAddrs(addrs []Addr) {
	slices.SortFunc(addrs, func(a, b Addr) int { return a.Compare(b) })
}
