package ip6

import (
	"fmt"
	"net/netip"

	"hitlist6/internal/rng"
)

// Prefix is an IPv6 prefix: a masked base address plus a length in bits.
// The base address is always stored in canonical (masked) form.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom builds a prefix from an address and length, masking the
// address down to the prefix length. Lengths outside [0,128] panic.
func PrefixFrom(a Addr, bits int) Prefix {
	if bits < 0 || bits > 128 {
		panic(fmt.Sprintf("ip6: invalid prefix length %d", bits))
	}
	return Prefix{addr: mask(a, bits), bits: uint8(bits)}
}

// ParsePrefix parses "addr/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, fmt.Errorf("ip6: parse prefix %q: %w", s, err)
	}
	if !p.Addr().Is6() || p.Addr().Is4In6() {
		return Prefix{}, fmt.Errorf("ip6: %q is not an IPv6 prefix", s)
	}
	return PrefixFrom(Addr(p.Addr().As16()), p.Bits()), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(a Addr, bits int) Addr {
	var m Addr
	full := bits / 8
	copy(m[:full], a[:full])
	if rem := bits % 8; rem != 0 {
		m[full] = a[full] & (0xff << (8 - uint(rem)))
	}
	return m
}

// Addr returns the masked base address.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// IsZero reports whether p is the zero Prefix (::/0 with zero addr is a
// valid prefix; IsZero is for "unset" detection via the full struct).
func (p Prefix) IsZero() bool { return p.addr.IsZero() && p.bits == 0 }

// String formats as "addr/len".
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr.String(), p.bits)
}

// Contains reports whether a is inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return mask(a, int(p.bits)) == p.addr
}

// ContainsPrefix reports whether q is fully inside p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// Parent returns the prefix shortened by n bits (clamped at /0).
func (p Prefix) Parent(n int) Prefix {
	nb := int(p.bits) - n
	if nb < 0 {
		nb = 0
	}
	return PrefixFrom(p.addr, nb)
}

// Child returns the i-th child prefix extended by n bits.
// i must fit in n bits.
func (p Prefix) Child(n int, i uint64) Prefix {
	nb := int(p.bits) + n
	if nb > 128 {
		panic("ip6: child prefix longer than /128")
	}
	if n < 64 && i >= 1<<uint(n) {
		panic("ip6: child index out of range")
	}
	a := p.addr
	for b := 0; b < n; b++ {
		bit := byte(i>>uint(n-1-b)) & 1
		a = a.SetBit(int(p.bits)+b, bit)
	}
	return Prefix{addr: a, bits: uint8(nb)}
}

// SubprefixOfNibble returns the prefix extended by 4 bits with the next
// nibble set to v; this is how the multi-level alias detection walks
// "2001:db8:[0-f]000::/36"-style subprefixes.
func (p Prefix) SubprefixOfNibble(v byte) Prefix {
	return p.Child(4, uint64(v&0x0f))
}

// First returns the lowest address in the prefix.
func (p Prefix) First() Addr { return p.addr }

// Last returns the highest address in the prefix.
func (p Prefix) Last() Addr {
	a := p.addr
	for i := int(p.bits); i < 128; i++ {
		a = a.SetBit(i, 1)
	}
	return a
}

// NumAddressesLog2 returns log2 of the prefix size (128 - bits).
func (p Prefix) NumAddressesLog2() int { return 128 - int(p.bits) }

// RandomAddr returns a uniformly random address inside the prefix.
// The paper's alias detection uses exactly this primitive: "the detection
// selects one random address within each of the 16 more specific prefixes".
func (p Prefix) RandomAddr(r *rng.Stream) Addr {
	a := p.addr
	hostBits := 128 - int(p.bits)
	// Fill host bits from the stream, most significant first. Each
	// 64-bit draw's top n bits land contiguously at the current offset;
	// they are deposited a byte at a time (bit-identical to a per-bit
	// loop, ~8× fewer operations — alias detection generates 16 of
	// these per candidate per round).
	for i := 0; i < hostBits; i += 64 {
		chunk := r.Uint64()
		n := hostBits - i
		if n > 64 {
			n = 64
		}
		pos := int(p.bits) + i
		for n > 0 {
			take := 8 - pos&7
			if take > n {
				take = n
			}
			bits := byte(chunk >> (64 - take)) // top `take` bits, MSB-first
			chunk <<= take
			shift := 8 - pos&7 - take
			mask := byte(1<<take-1) << shift
			a[pos>>3] = a[pos>>3]&^mask | bits<<shift
			pos += take
			n -= take
		}
	}
	return a
}

// NthAddr returns base + n (within the prefix, no overflow checking beyond
// the prefix boundary; callers use small n against large prefixes).
func (p Prefix) NthAddr(n uint64) Addr {
	a := p.addr
	lo := a.Lo() + n
	if lo < a.Lo() { // carry into the high half
		return AddrFromUint64s(a.Hi()+1, lo)
	}
	return AddrFromUint64s(a.Hi(), lo)
}

// PrefixOf returns the /bits prefix containing a.
func PrefixOf(a Addr, bits int) Prefix { return PrefixFrom(a, bits) }

// Slash64 returns the /64 containing a; the most common grouping in the
// hitlist pipeline.
func Slash64(a Addr) Prefix { return PrefixFrom(a, 64) }

// ComparePrefix orders prefixes by base address then length.
func ComparePrefix(a, b Prefix) int {
	if c := a.addr.Compare(b.addr); c != 0 {
		return c
	}
	switch {
	case a.bits < b.bits:
		return -1
	case a.bits > b.bits:
		return 1
	}
	return 0
}
