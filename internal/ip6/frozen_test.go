package ip6

import (
	"testing"

	"hitlist6/internal/rng"
)

// TestFrozenPrefixMapMatchesMapPath pins the frozen segment index to the
// per-length map walk on a nested BGP-shaped table: every lookup must
// return the identical (prefix, value, ok) triple.
func TestFrozenPrefixMapMatchesMapPath(t *testing.T) {
	m := NewPrefixMap[int]()
	prefixes := []string{
		"2001:db8::/32",
		"2001:db8::/48",      // nested at the parent's start
		"2001:db8:0:4::/64",  // nested deeper
		"2001:db8:8000::/33", // upper half, ends exactly at the /32's end
		"2600::/12",
		"2600:9000::/28",
		"2600:9000:1::/48",
		"240e::/20",
		"::/0", // everything is covered; gaps resolve to this
	}
	for i, ps := range prefixes {
		m.Insert(MustParsePrefix(ps), i+1)
	}

	type key struct {
		p  Prefix
		v  int
		ok bool
	}
	lookup := func(a Addr) key {
		p, v, ok := m.Lookup(a)
		return key{p, v, ok}
	}

	var samples []Addr
	r := rng.NewStream(11, "frozen-prefixmap")
	for _, ps := range prefixes {
		p := MustParsePrefix(ps)
		samples = append(samples, p.Addr(), lastAddrOf(p), lastAddrOf(p).Next(), p.Addr().Prev())
		for i := 0; i < 64; i++ {
			samples = append(samples, p.RandomAddr(r))
		}
	}
	for i := 0; i < 256; i++ {
		samples = append(samples, AddrFromUint64s(r.Uint64(), r.Uint64()))
	}

	want := make([]key, len(samples))
	for i, a := range samples {
		want[i] = lookup(a)
	}
	m.Freeze()
	for i, a := range samples {
		if got := lookup(a); got != want[i] {
			t.Fatalf("addr %v: frozen lookup %+v, map path %+v", a, got, want[i])
		}
		if m.Contains(a) != want[i].ok {
			t.Fatalf("addr %v: frozen Contains diverges", a)
		}
	}

	// Mutation drops the index and the map path takes over seamlessly.
	extra := MustParsePrefix("2001:db8:0:4:8000::/65")
	m.Insert(extra, 99)
	if p, v, ok := m.Lookup(extra.Addr()); !ok || v != 99 || p != extra {
		t.Fatalf("post-mutation lookup broken: %v %v %v", p, v, ok)
	}
	m.Freeze()
	if p, v, ok := m.Lookup(extra.Addr()); !ok || v != 99 || p != extra {
		t.Fatalf("refrozen lookup broken: %v %v %v", p, v, ok)
	}
}

// TestFrozenPrefixMapGaps exercises a table without a default route:
// uncovered gaps between and around prefixes must miss.
func TestFrozenPrefixMapGaps(t *testing.T) {
	m := NewPrefixMap[string]()
	m.Insert(MustParsePrefix("2001:db8::/48"), "a")
	m.Insert(MustParsePrefix("2001:db9::/48"), "b")
	m.Freeze()
	for _, tc := range []struct {
		addr string
		want string
		ok   bool
	}{
		{"::1", "", false},
		{"2001:db7:ffff:ffff:ffff:ffff:ffff:ffff", "", false},
		{"2001:db8::", "a", true},
		{"2001:db8:0:ffff:ffff:ffff:ffff:ffff", "a", true},
		{"2001:db8:1::", "", false},
		{"2001:db9::42", "b", true},
		{"2001:dba::", "", false},
		{"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", "", false},
	} {
		_, v, ok := m.Lookup(MustParseAddr(tc.addr))
		if ok != tc.ok || v != tc.want {
			t.Errorf("%s: got (%q,%v), want (%q,%v)", tc.addr, v, ok, tc.want, tc.ok)
		}
	}
}

// TestFrozenPrefixMapFullSpace: a prefix covering the top of the address
// space must not wrap the sweep.
func TestFrozenPrefixMapFullSpace(t *testing.T) {
	m := NewPrefixMap[int]()
	m.Insert(MustParsePrefix("ff00::/8"), 1)
	m.Freeze()
	if _, v, ok := m.Lookup(MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff")); !ok || v != 1 {
		t.Fatal("top-of-space address missed")
	}
	if _, _, ok := m.Lookup(MustParseAddr("fe00::")); ok {
		t.Fatal("address below range matched")
	}
}

// TestSortedShardSet pins FreezeSorted against the hash-set reference.
func TestSortedShardSet(t *testing.T) {
	r := rng.NewStream(5, "sorted-shards")
	mk := func(n int, overlapWith *ShardedSet, overlapEvery int) (*ShardedSet, Set) {
		sh := NewShardedSet()
		flat := NewSet(n)
		i := 0
		if overlapWith != nil {
			overlapWith.Walk(func(a Addr) bool {
				if i%overlapEvery == 0 {
					sh.Add(a)
					flat.Add(a)
				}
				i++
				return true
			})
		}
		for j := 0; j < n; j++ {
			a := AddrFromUint64s(0x2001_0db8_0000_0000|r.Uint64()>>32, r.Uint64())
			sh.Add(a)
			flat.Add(a)
		}
		return sh, flat
	}
	shA, flatA := mk(1000, nil, 0)
	shB, flatB := mk(700, shA, 3)

	sa, sb := FreezeSorted(shA), FreezeSorted(shB)
	if sa.Len() != flatA.Len() || sb.Len() != flatB.Len() {
		t.Fatalf("Len mismatch: %d/%d vs %d/%d", sa.Len(), sb.Len(), flatA.Len(), flatB.Len())
	}
	if got, want := sa.IntersectCount(sb), flatA.IntersectCount(flatB); got != want {
		t.Fatalf("IntersectCount %d, want %d", got, want)
	}
	if got, want := sb.IntersectCount(sa), flatB.IntersectCount(flatA); got != want {
		t.Fatalf("reverse IntersectCount %d, want %d", got, want)
	}
	// Self-intersection is the cardinality.
	if got := sa.IntersectCount(sa); got != sa.Len() {
		t.Fatalf("self IntersectCount %d, want %d", got, sa.Len())
	}
	// Shards are sorted and the walk is in canonical order.
	seen := 0
	for sh := 0; sh < AddrShards; sh++ {
		shard := sa.Shard(sh)
		for i := range shard {
			seen++
			if ShardOf(shard[i]) != sh {
				t.Fatalf("shard %d holds foreign address %v", sh, shard[i])
			}
			if i > 0 && !shard[i-1].Less(shard[i]) {
				t.Fatalf("shard %d not strictly sorted at %d", sh, i)
			}
		}
	}
	if seen != sa.Len() {
		t.Fatalf("walked %d members, Len says %d", seen, sa.Len())
	}
}
