package ip6

import (
	"testing"
	"testing/quick"

	"hitlist6/internal/rng"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		back string
	}{
		{"2001:db8::1", true, "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", true, "2001:db8::1"},
		{"::", true, "::"},
		{"ff02::1", true, "ff02::1"},
		{"192.0.2.1", false, ""},
		{"::ffff:192.0.2.1", false, ""},
		{"fe80::1%eth0", false, ""},
		{"not-an-address", false, ""},
		{"", false, ""},
	}
	for _, c := range cases {
		a, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && a.String() != c.back {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", c.in, a.String(), c.back)
		}
	}
}

func TestAddrHalves(t *testing.T) {
	a := MustParseAddr("2001:db8:1:2:3:4:5:6")
	if a.Hi() != 0x20010db800010002 {
		t.Errorf("Hi = %x", a.Hi())
	}
	if a.Lo() != 0x0003000400050006 {
		t.Errorf("Lo = %x", a.Lo())
	}
	if got := AddrFromUint64s(a.Hi(), a.Lo()); got != a {
		t.Errorf("AddrFromUint64s roundtrip: %v", got)
	}
}

func TestNibbleRoundtrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		a := AddrFrom16(raw)
		return AddrFromNibbles(a.Nibbles()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNibbleAccessors(t *testing.T) {
	a := MustParseAddr("2001:db8::f")
	if a.Nibble(0) != 0x2 || a.Nibble(1) != 0x0 || a.Nibble(3) != 0x1 {
		t.Errorf("nibbles: %v %v %v", a.Nibble(0), a.Nibble(1), a.Nibble(3))
	}
	if a.Nibble(31) != 0xf {
		t.Errorf("last nibble = %v", a.Nibble(31))
	}
	b := a.SetNibble(0, 0x3)
	if b.Nibble(0) != 3 || b.Nibble(1) != 0 {
		t.Errorf("SetNibble: %v", b)
	}
	if a.Nibble(0) != 2 {
		t.Error("SetNibble mutated receiver")
	}
}

func TestFullHexRoundtrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		a := AddrFrom16(raw)
		got, err := ParseFullHex(a.FullHex())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := ParseFullHex("zz"); err == nil {
		t.Error("ParseFullHex accepted short input")
	}
	if _, err := ParseFullHex("zz001db8000000000000000000000001"); err == nil {
		t.Error("ParseFullHex accepted bad digit")
	}
	// Upper case accepted.
	if a, err := ParseFullHex("20010DB8000000000000000000000001"); err != nil || a != MustParseAddr("2001:db8::1") {
		t.Errorf("upper-case full hex: %v %v", a, err)
	}
}

func TestBitOps(t *testing.T) {
	a := MustParseAddr("8000::")
	if a.Bit(0) != 1 || a.Bit(1) != 0 {
		t.Errorf("Bit: %v %v", a.Bit(0), a.Bit(1))
	}
	b := Addr{}.SetBit(127, 1)
	if b != MustParseAddr("::1") {
		t.Errorf("SetBit(127): %v", b)
	}
	if b.SetBit(127, 0) != (Addr{}) {
		t.Error("clearing bit failed")
	}
}

func TestNextPrev(t *testing.T) {
	a := MustParseAddr("2001:db8::ffff")
	if a.Next() != MustParseAddr("2001:db8::1:0") {
		t.Errorf("Next: %v", a.Next())
	}
	if a.Next().Prev() != a {
		t.Error("Next.Prev roundtrip failed")
	}
	// Carry across the /64 boundary.
	c := MustParseAddr("2001:db8:0:0:ffff:ffff:ffff:ffff")
	if c.Next() != MustParseAddr("2001:db8:0:1::") {
		t.Errorf("carry: %v", c.Next())
	}
	f := func(raw [16]byte) bool {
		a := AddrFrom16(raw)
		return a.Next().Prev() == a && a.Prev().Next() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	b := MustParseAddr("2001:db8::2")
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less wrong")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2001:db8::", "2001:db8::", 128},
		{"2001:db8::", "2001:db8::1", 127},
		{"2001:db8::", "2001:db9::", 31},
		{"::", "8000::", 0},
		{"2001::", "2002::", 14},
	}
	for _, c := range cases {
		got := MustParseAddr(c.a).CommonPrefixLen(MustParseAddr(c.b))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLoDistance(t *testing.T) {
	a := MustParseAddr("2001:db8::10")
	b := MustParseAddr("2001:db8::50")
	d, ok := a.LoDistance(b)
	if !ok || d != 0x40 {
		t.Errorf("LoDistance = %d, %v", d, ok)
	}
	if d2, _ := b.LoDistance(a); d2 != d {
		t.Error("LoDistance not symmetric")
	}
	c := MustParseAddr("2001:db9::10")
	if _, ok := a.LoDistance(c); ok {
		t.Error("LoDistance across /64s should fail")
	}
}

func TestXor(t *testing.T) {
	f := func(x, y [16]byte) bool {
		a, b := AddrFrom16(x), AddrFrom16(y)
		return a.Xor(b).Xor(b) == a && a.Xor(a) == (Addr{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEUI64(t *testing.T) {
	p := MustParsePrefix("2001:db8:1:2::/64")
	mac := MAC{0x00, 0x1e, 0x73, 0xaa, 0xbb, 0xcc} // ZTE OUI
	a := AddrFromMAC(p, mac)
	if !a.IsEUI64() {
		t.Fatal("AddrFromMAC not detected as EUI-64")
	}
	got, ok := a.EUI64MAC()
	if !ok || got != mac {
		t.Fatalf("EUI64MAC = %v, %v", got, ok)
	}
	if got.OUI() != [3]byte{0x00, 0x1e, 0x73} {
		t.Errorf("OUI = %v", got.OUI())
	}
	iid, ok := a.EUI64IID()
	if !ok || iid != a.Lo() {
		t.Errorf("EUI64IID = %x", iid)
	}
	// Same MAC under a rotated prefix keeps the IID.
	p2 := MustParsePrefix("2001:db8:ffff:1::/64")
	a2 := AddrFromMAC(p2, mac)
	iid2, _ := a2.EUI64IID()
	if iid2 != iid {
		t.Error("IID changed across prefix rotation")
	}
	if a2 == a {
		t.Error("rotated prefix produced identical address")
	}
	// Non-EUI-64 address.
	plain := MustParseAddr("2001:db8::1")
	if plain.IsEUI64() {
		t.Error("::1 detected as EUI-64")
	}
	if _, ok := plain.EUI64MAC(); ok {
		t.Error("EUI64MAC on non-EUI64 succeeded")
	}
	if plain.String() != "2001:db8::1" {
		t.Error("String broken")
	}
	if mac.String() != "00:1e:73:aa:bb:cc" {
		t.Errorf("MAC.String = %s", mac.String())
	}
}

func TestLowByteAddr(t *testing.T) {
	if !MustParseAddr("2001:db8::1").LowByteAddr() {
		t.Error("::1 should be low-byte")
	}
	if !MustParseAddr("2001:db8::1234").LowByteAddr() {
		t.Error("::1234 should be low-byte")
	}
	if MustParseAddr("2001:db8::1:0:0:1").LowByteAddr() {
		t.Error("spread IID should not be low-byte")
	}
	if MustParseAddr("2001:db8::").LowByteAddr() {
		t.Error("zero IID should not be low-byte")
	}
}

func TestTeredo(t *testing.T) {
	server := IPv4{65, 54, 227, 120}
	client := IPv4{192, 0, 2, 45}
	a := TeredoAddr(server, client)
	if !a.IsTeredo() {
		t.Fatal("TeredoAddr not detected")
	}
	s, ok := a.TeredoServer()
	if !ok || s != server {
		t.Errorf("TeredoServer = %v", s)
	}
	c, ok := a.TeredoClient()
	if !ok || c != client {
		t.Errorf("TeredoClient = %v", c)
	}
	if MustParseAddr("2001:db8::1").IsTeredo() {
		t.Error("2001:db8 is not Teredo (2001::/32)")
	}
	if !MustParseAddr("2001::5").IsTeredo() {
		t.Error("2001::5 should be Teredo")
	}
	if _, ok := MustParseAddr("2002::1").TeredoClient(); ok {
		t.Error("non-Teredo TeredoClient succeeded")
	}
}

func TestIPv4String(t *testing.T) {
	cases := map[IPv4]string{
		{0, 0, 0, 0}:         "0.0.0.0",
		{192, 0, 2, 1}:       "192.0.2.1",
		{255, 255, 255, 255}: "255.255.255.255",
		{10, 0, 99, 7}:       "10.0.99.7",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("IPv4.String() = %q, want %q", v.String(), want)
		}
	}
	if IPv4FromUint32(0xc0000201) != (IPv4{192, 0, 2, 1}) {
		t.Error("IPv4FromUint32 wrong")
	}
	if (IPv4{192, 0, 2, 1}).Uint32() != 0xc0000201 {
		t.Error("Uint32 wrong")
	}
}

func TestIsGlobalUnicast(t *testing.T) {
	yes := []string{"2001:db9::1", "2600::1", "2a00:1450::5"}
	no := []string{"::", "::1", "fe80::1", "fc00::1", "fd12::1", "ff02::1", "2001:db8::1"}
	for _, s := range yes {
		if !MustParseAddr(s).IsGlobalUnicast() {
			t.Errorf("%s should be global unicast", s)
		}
	}
	for _, s := range no {
		if MustParseAddr(s).IsGlobalUnicast() {
			t.Errorf("%s should not be global unicast", s)
		}
	}
}

func TestRandomAddrInPrefix(t *testing.T) {
	r := rng.NewStream(1, "random-addr")
	for _, ps := range []string{"2001:db8::/32", "2001:db8:1::/48", "2001:db8::/64", "2001:db8::/96", "2001:db8::1/128"} {
		p := MustParsePrefix(ps)
		for i := 0; i < 100; i++ {
			a := p.RandomAddr(r)
			if !p.Contains(a) {
				t.Fatalf("RandomAddr(%s) = %v outside prefix", ps, a)
			}
		}
	}
	// /128 must return exactly the address.
	p := MustParsePrefix("2001:db8::1/128")
	if p.RandomAddr(r) != MustParseAddr("2001:db8::1") {
		t.Error("/128 RandomAddr wrong")
	}
	// Distribution across subprefixes should touch many nibble values.
	p32 := MustParsePrefix("2001:db8::/32")
	seen := map[byte]bool{}
	for i := 0; i < 200; i++ {
		seen[p32.RandomAddr(r).Nibble(8)] = true
	}
	if len(seen) < 12 {
		t.Errorf("RandomAddr poorly distributed: %d/16 nibble values", len(seen))
	}
}
