package ip6

import (
	"testing"

	"hitlist6/internal/rng"
)

// sameBacking reports whether two non-empty shard slices share a backing
// array (the copy-on-publish sharing FreezeSortedDelta promises).
func sameBacking(a, b []Addr) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// requireEqualFrozen pins got against an independently built full freeze
// of the same ShardedSet: identical per-shard contents in order.
func requireEqualFrozen(t *testing.T, got, want *SortedShardSet) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len %d, want %d", got.Len(), want.Len())
	}
	for sh := 0; sh < AddrShards; sh++ {
		a, b := got.Shard(sh), want.Shard(sh)
		if len(a) != len(b) {
			t.Fatalf("shard %d: len %d, want %d", sh, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shard %d[%d]: %v, want %v", sh, i, a[i], b[i])
			}
		}
	}
}

// TestFreezeSortedDelta covers the sharing contract: unchanged shards are
// pointer-shared with the previous generation, mutated shards are
// re-frozen, and the result is always content-identical to a full
// FreezeSorted.
func TestFreezeSortedDelta(t *testing.T) {
	r := rng.NewStream(9, "freeze-delta")
	s := NewShardedSet()
	for i := 0; i < 4000; i++ {
		s.Add(AddrFromUint64s(0x2001_0db8_0000_0000|r.Uint64()>>32, r.Uint64()))
	}
	for sh := 0; sh < AddrShards; sh++ {
		if s.ShardLen(sh) == 0 {
			t.Fatalf("setup: shard %d empty, sharing check needs non-empty shards", sh)
		}
	}
	gen0 := FreezeSorted(s)

	// No mutation: every shard shared, none re-frozen, slices literally
	// the same arrays.
	gen1, refrozen, shared := FreezeSortedDelta(s, gen0)
	if refrozen != 0 || shared != AddrShards {
		t.Fatalf("clean delta: refrozen=%d shared=%d, want 0/%d", refrozen, shared, AddrShards)
	}
	requireEqualFrozen(t, gen1, FreezeSorted(s))
	for sh := 0; sh < AddrShards; sh++ {
		if !sameBacking(gen1.Shard(sh), gen0.Shard(sh)) {
			t.Fatalf("clean delta: shard %d not pointer-shared", sh)
		}
	}

	// Re-adding an existing member is membership-invariant and must not
	// dirty its shard.
	var member Addr
	s.Walk(func(a Addr) bool { member = a; return false })
	s.Add(member)
	gen2, refrozen, shared := FreezeSortedDelta(s, gen1)
	if refrozen != 0 || shared != AddrShards {
		t.Fatalf("re-add delta: refrozen=%d shared=%d, want 0/%d", refrozen, shared, AddrShards)
	}
	_ = gen2

	// Mutate exactly 3 shards; only those re-freeze.
	dirty := map[int]bool{}
	for i := uint64(0); len(dirty) < 3; i++ {
		a := AddrFromUint64s(0x2001_0db8_ffff_0000, i)
		sh := ShardOf(a)
		if sh > 2 { // constrain churn to shards 0..2
			continue
		}
		if s.Add(a) {
			dirty[sh] = true
		}
	}
	gen3, refrozen, shared := FreezeSortedDelta(s, gen1)
	if refrozen != 3 || shared != AddrShards-3 {
		t.Fatalf("dirty delta: refrozen=%d shared=%d, want 3/%d", refrozen, shared, AddrShards-3)
	}
	requireEqualFrozen(t, gen3, FreezeSorted(s))
	for sh := 0; sh < AddrShards; sh++ {
		if dirty[sh] == sameBacking(gen3.Shard(sh), gen1.Shard(sh)) {
			t.Fatalf("shard %d: dirty=%v but sharing=%v", sh, dirty[sh], !dirty[sh])
		}
	}

	// nil prev and a prev frozen from a different set object both degrade
	// to a full freeze.
	for name, prev := range map[string]*SortedShardSet{
		"nil":     nil,
		"foreign": FreezeSorted(NewShardedSet()),
	} {
		got, refrozen, shared := FreezeSortedDelta(s, prev)
		if refrozen != AddrShards || shared != 0 {
			t.Fatalf("%s prev: refrozen=%d shared=%d, want %d/0", name, refrozen, shared, AddrShards)
		}
		requireEqualFrozen(t, got, FreezeSorted(s))
	}
}

// TestSetShardEpoch pins the content-aware SetShard: replacing a shard
// with an equal set (including nil≡empty) must not advance the epoch,
// while a genuine change must.
func TestSetShardEpoch(t *testing.T) {
	s := NewShardedSet()
	a := AddrFromUint64s(0x2001_0db8, 1)
	sh := ShardOf(a)

	e0 := s.ShardEpoch(sh)
	s.SetShard(sh, NewSet(0)) // empty ≡ nil: no change
	if s.ShardEpoch(sh) != e0 {
		t.Fatal("empty-for-nil SetShard bumped the epoch")
	}
	other := NewSet(1)
	other.Add(a)
	s.SetShard(sh, other)
	if s.ShardEpoch(sh) == e0 {
		t.Fatal("content change did not bump the epoch")
	}
	e1 := s.ShardEpoch(sh)
	same := NewSet(1)
	same.Add(a)
	s.SetShard(sh, same) // different object, same content
	if s.ShardEpoch(sh) != e1 {
		t.Fatal("equal-content SetShard bumped the epoch")
	}
}
