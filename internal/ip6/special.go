package ip6

import "encoding/binary"

// IPv4 is an IPv4 address used where the simulation needs one (A records,
// Teredo analysis).
type IPv4 [4]byte

// String formats the IPv4 address in dotted-quad form.
func (v IPv4) String() string {
	var b []byte
	b = appendUint8(b, v[0])
	b = append(b, '.')
	b = appendUint8(b, v[1])
	b = append(b, '.')
	b = appendUint8(b, v[2])
	b = append(b, '.')
	b = appendUint8(b, v[3])
	return string(b)
}

func appendUint8(b []byte, v uint8) []byte {
	if v >= 100 {
		b = append(b, '0'+v/100)
	}
	if v >= 10 {
		b = append(b, '0'+(v/10)%10)
	}
	return append(b, '0'+v%10)
}

// Uint32 returns the address as a big-endian uint32.
func (v IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(v[:]) }

// IPv4FromUint32 builds an IPv4 address from a big-endian uint32.
func IPv4FromUint32(x uint32) IPv4 {
	var v IPv4
	binary.BigEndian.PutUint32(v[:], x)
	return v
}

var teredoPrefix = MustParsePrefix("2001::/32")

// IsTeredo reports whether a is a Teredo (RFC 4380) address, i.e. inside
// 2001::/32. The third GFW injection era returned AAAA records carrying
// Teredo addresses, which is one of the filter's pieces of evidence.
func (a Addr) IsTeredo() bool { return teredoPrefix.Contains(a) }

// TeredoClient extracts the obfuscated client IPv4 address embedded in a
// Teredo address (the low 32 bits, XOR 0xffffffff).
func (a Addr) TeredoClient() (IPv4, bool) {
	if !a.IsTeredo() {
		return IPv4{}, false
	}
	x := binary.BigEndian.Uint32(a[12:]) ^ 0xffffffff
	return IPv4FromUint32(x), true
}

// TeredoServer extracts the Teredo server IPv4 address (bytes 4..8).
func (a Addr) TeredoServer() (IPv4, bool) {
	if !a.IsTeredo() {
		return IPv4{}, false
	}
	return IPv4{a[4], a[5], a[6], a[7]}, true
}

// TeredoAddr builds a Teredo address for the given server and client IPv4
// addresses with zero flags and port, as seen in injected responses.
func TeredoAddr(server, client IPv4) Addr {
	var a Addr
	a[0], a[1] = 0x20, 0x01
	copy(a[4:8], server[:])
	binary.BigEndian.PutUint32(a[12:], client.Uint32()^0xffffffff)
	return a
}

var (
	linkLocal = MustParsePrefix("fe80::/10")
	ula       = MustParsePrefix("fc00::/7")
	multicast = MustParsePrefix("ff00::/8")
	docRange  = MustParsePrefix("2001:db8::/32")
)

// IsGlobalUnicast reports whether a is plausibly a globally routed unicast
// address: not ::, not link-local, ULA, multicast, loopback or documentation
// space. Candidate filtering uses this before scans.
func (a Addr) IsGlobalUnicast() bool {
	if a.IsZero() {
		return false
	}
	if a == (Addr{15: 1}) { // ::1
		return false
	}
	if linkLocal.Contains(a) || ula.Contains(a) || multicast.Contains(a) || docRange.Contains(a) {
		return false
	}
	return true
}
