package ip6

import (
	"testing"

	"hitlist6/internal/rng"
)

// TestFreezeSortedSetDeltaSpill covers the generalized epoch-delta freeze
// over the disk-backed SpillSet: unchanged shards pointer-share their
// frozen span across generations, dirtied shards re-freeze, and every
// generation is content-identical to a full freeze — the same contract
// TestFreezeSortedDelta pins for the resident ShardedSet.
func TestFreezeSortedSetDeltaSpill(t *testing.T) {
	spill, err := NewSpillSet(t.TempDir(), 8) // tiny budget: everything spills
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()

	r := rng.NewStream(11, "freeze-spill")
	for i := 0; i < 4000; i++ {
		spill.Add(AddrFromUint64s(0x2001_0db8_0000_0000|r.Uint64()>>32, r.Uint64()))
	}
	for sh := 0; sh < AddrShards; sh++ {
		if spill.ShardLen(sh) == 0 {
			t.Fatalf("setup: shard %d empty, sharing check needs non-empty shards", sh)
		}
	}
	gen0 := FreezeSortedSet(spill)
	requireEqualFrozen(t, gen0, FreezeSortedSet(spill))

	// No mutation: every shard shared.
	gen1, refrozen, shared := FreezeSortedSetDelta(spill, gen0)
	if refrozen != 0 || shared != AddrShards {
		t.Fatalf("clean delta: refrozen=%d shared=%d, want 0/%d", refrozen, shared, AddrShards)
	}
	for sh := 0; sh < AddrShards; sh++ {
		if !sameBacking(gen1.Shard(sh), gen0.Shard(sh)) {
			t.Fatalf("clean delta: shard %d not shared", sh)
		}
	}

	// Dirty a few shards; only they re-freeze.
	dirtied := map[int]bool{}
	n := 0
	for !dirtied[0] || len(dirtied) < 3 {
		a := AddrFromUint64s(0x2001_0db8_0000_0000|r.Uint64()>>32, r.Uint64())
		if spill.Add(a) {
			dirtied[ShardOf(a)] = true
			n++
		}
		if n > 100 {
			break
		}
	}
	gen2, refrozen, shared := FreezeSortedSetDelta(spill, gen1)
	if refrozen != len(dirtied) || shared != AddrShards-len(dirtied) {
		t.Fatalf("dirty delta: refrozen=%d shared=%d, want %d/%d",
			refrozen, shared, len(dirtied), AddrShards-len(dirtied))
	}
	requireEqualFrozen(t, gen2, FreezeSortedSet(spill))
	for sh := 0; sh < AddrShards; sh++ {
		if dirtied[sh] == sameBacking(gen2.Shard(sh), gen1.Shard(sh)) {
			t.Fatalf("shard %d: dirty=%v but shared=%v", sh, dirtied[sh], !dirtied[sh])
		}
	}

	// A different previous source degrades to a full freeze.
	other := NewShardedSet()
	other.Add(MustParseAddr("2001:db8::1"))
	gen3, refrozen, _ := FreezeSortedSetDelta(spill, FreezeSorted(other))
	if refrozen != AddrShards {
		t.Fatalf("cross-source delta: refrozen=%d, want full %d", refrozen, AddrShards)
	}
	requireEqualFrozen(t, gen3, gen2)
}

// TestShardSortedCursor pins the pull cursor against WalkShardSorted:
// identical addresses in identical order, duplicate-free across runs,
// clean end-of-stream.
func TestShardSortedCursor(t *testing.T) {
	spill, err := NewSpillSet(t.TempDir(), 4) // several runs per shard
	if err != nil {
		t.Fatal(err)
	}
	defer spill.Close()

	r := rng.NewStream(13, "cursor")
	for i := 0; i < 2000; i++ {
		spill.Add(AddrFromUint64s(0x2001_0db8_0000_0000|r.Uint64()>>32, r.Uint64()))
	}
	for sh := 0; sh < AddrShards; sh++ {
		var want []Addr
		if err := spill.WalkShardSorted(sh, func(a Addr) error {
			want = append(want, a)
			return nil
		}); err != nil {
			t.Fatalf("shard %d: walk: %v", sh, err)
		}
		cur, err := spill.ShardSortedCursor(sh)
		if err != nil {
			t.Fatalf("shard %d: %v", sh, err)
		}
		var got []Addr
		for {
			a, ok, err := cur()
			if err != nil {
				t.Fatalf("shard %d: cursor error: %v", sh, err)
			}
			if !ok {
				break
			}
			got = append(got, a)
		}
		if len(got) != len(want) {
			t.Fatalf("shard %d: %d addrs, want %d", sh, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shard %d[%d]: %v, want %v", sh, i, got[i], want[i])
			}
		}
		// Exhausted cursors stay exhausted.
		if _, ok, _ := cur(); ok {
			t.Fatalf("shard %d: cursor yielded past end", sh)
		}
	}
}
