// Package ip6 implements the IPv6 address machinery the hitlist service is
// built on: 128-bit addresses and prefixes with nibble-level accessors,
// EUI-64 and Teredo analysis, address sets, and a longest-prefix-match trie.
//
// The representation is a plain [16]byte value type so addresses are
// comparable, hashable and allocation-free. Conversions to and from
// net/netip are provided at the edges for parsing and formatting.
package ip6

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Addr is an IPv6 address in network byte order.
type Addr [16]byte

// ParseAddr parses an IPv6 address in any textual form accepted by
// net/netip. IPv4 and zoned addresses are rejected.
func ParseAddr(s string) (Addr, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return Addr{}, fmt.Errorf("ip6: parse %q: %w", s, err)
	}
	if !a.Is6() || a.Is4In6() {
		return Addr{}, fmt.Errorf("ip6: %q is not an IPv6 address", s)
	}
	if a.Zone() != "" {
		return Addr{}, fmt.Errorf("ip6: %q has a zone", s)
	}
	return Addr(a.As16()), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// AddrFrom16 converts a raw 16-byte value.
func AddrFrom16(b [16]byte) Addr { return Addr(b) }

// AddrFromUint64s builds an address from its high and low 64-bit halves.
func AddrFromUint64s(hi, lo uint64) Addr {
	var a Addr
	binary.BigEndian.PutUint64(a[:8], hi)
	binary.BigEndian.PutUint64(a[8:], lo)
	return a
}

// Netip converts to netip.Addr.
func (a Addr) Netip() netip.Addr { return netip.AddrFrom16(a) }

// String formats the address in canonical RFC 5952 form.
func (a Addr) String() string { return a.Netip().String() }

// Hi returns the high (network) 64 bits.
func (a Addr) Hi() uint64 { return binary.BigEndian.Uint64(a[:8]) }

// Lo returns the low (interface identifier) 64 bits.
func (a Addr) Lo() uint64 { return binary.BigEndian.Uint64(a[8:]) }

// IsZero reports whether the address is ::.
func (a Addr) IsZero() bool { return a == Addr{} }

// Compare orders addresses numerically: -1, 0 or +1.
func (a Addr) Compare(b Addr) int {
	for i := 0; i < 16; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b numerically.
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// Nibble returns the i-th 4-bit group, i in [0,32), counted from the most
// significant nibble. Nibble(0) is the top nibble of the first byte.
func (a Addr) Nibble(i int) byte {
	b := a[i>>1]
	if i&1 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// SetNibble returns a copy of a with the i-th nibble set to v (low 4 bits).
func (a Addr) SetNibble(i int, v byte) Addr {
	v &= 0x0f
	if i&1 == 0 {
		a[i>>1] = a[i>>1]&0x0f | v<<4
	} else {
		a[i>>1] = a[i>>1]&0xf0 | v
	}
	return a
}

// Nibbles expands the address into its 32 nibbles.
func (a Addr) Nibbles() [32]byte {
	var n [32]byte
	for i := 0; i < 16; i++ {
		n[2*i] = a[i] >> 4
		n[2*i+1] = a[i] & 0x0f
	}
	return n
}

// AddrFromNibbles assembles an address from 32 nibbles (low 4 bits each).
func AddrFromNibbles(n [32]byte) Addr {
	var a Addr
	for i := 0; i < 16; i++ {
		a[i] = n[2*i]<<4 | n[2*i+1]&0x0f
	}
	return a
}

// FullHex returns the fully expanded 32-character hex representation
// without separators, the "address string" form used by target generation
// algorithms (e.g. 6Tree, 6Graph operate on such strings).
func (a Addr) FullHex() string {
	const hexdigits = "0123456789abcdef"
	var sb strings.Builder
	sb.Grow(32)
	for i := 0; i < 16; i++ {
		sb.WriteByte(hexdigits[a[i]>>4])
		sb.WriteByte(hexdigits[a[i]&0x0f])
	}
	return sb.String()
}

// ParseFullHex parses the 32-character hex form produced by FullHex.
func ParseFullHex(s string) (Addr, error) {
	if len(s) != 32 {
		return Addr{}, fmt.Errorf("ip6: full-hex address must be 32 chars, got %d", len(s))
	}
	var a Addr
	for i := 0; i < 32; i++ {
		var v byte
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = c - '0'
		case c >= 'a' && c <= 'f':
			v = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			v = c - 'A' + 10
		default:
			return Addr{}, fmt.Errorf("ip6: bad hex digit %q at %d", c, i)
		}
		if i&1 == 0 {
			a[i>>1] = v << 4
		} else {
			a[i>>1] |= v
		}
	}
	return a, nil
}

// Bit returns bit i (0 = most significant) as 0 or 1.
func (a Addr) Bit(i int) byte {
	return (a[i>>3] >> (7 - uint(i&7))) & 1
}

// SetBit returns a copy of a with bit i set to v&1.
func (a Addr) SetBit(i int, v byte) Addr {
	mask := byte(1) << (7 - uint(i&7))
	if v&1 == 1 {
		a[i>>3] |= mask
	} else {
		a[i>>3] &^= mask
	}
	return a
}

// Next returns the address numerically after a, wrapping at the maximum.
func (a Addr) Next() Addr {
	for i := 15; i >= 0; i-- {
		a[i]++
		if a[i] != 0 {
			break
		}
	}
	return a
}

// Prev returns the address numerically before a, wrapping at zero.
func (a Addr) Prev() Addr {
	for i := 15; i >= 0; i-- {
		a[i]--
		if a[i] != 0xff {
			break
		}
	}
	return a
}

// Xor returns the bitwise XOR of two addresses.
func (a Addr) Xor(b Addr) Addr {
	var r Addr
	for i := range a {
		r[i] = a[i] ^ b[i]
	}
	return r
}

// CommonPrefixLen returns the length in bits of the longest common prefix
// of a and b, in [0, 128].
func (a Addr) CommonPrefixLen(b Addr) int {
	n := 0
	for i := 0; i < 16; i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			n += 8
			continue
		}
		for x&0x80 == 0 {
			n++
			x <<= 1
		}
		return n
	}
	return n
}

// LoDistance returns |a.Lo() - b.Lo()| when both share the same /64,
// and ok=false otherwise. Distance clustering (Section 6 of the paper)
// operates on this metric.
func (a Addr) LoDistance(b Addr) (d uint64, ok bool) {
	if a.Hi() != b.Hi() {
		return 0, false
	}
	al, bl := a.Lo(), b.Lo()
	if al > bl {
		return al - bl, true
	}
	return bl - al, true
}
