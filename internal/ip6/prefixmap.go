package ip6

import "sort"

// PrefixMap associates values with IPv6 prefixes and answers
// longest-prefix-match queries. It is the routing-table primitive behind
// AS attribution, alias matching and blocklists.
//
// The implementation keeps one hash map per populated prefix length, so a
// lookup costs at most one map access per distinct length in the table
// (BGP-style tables populate a handful of lengths). This is simpler and,
// for our workloads, faster than a pointer-chasing trie. Tables that stop
// changing can additionally be frozen (Freeze) into a flat sorted segment
// index, which turns every lookup into one cache-friendly binary search
// with no 16-byte-key hashing at all — the form the probe hot path reads.
type PrefixMap[T any] struct {
	byLen   [129]map[Addr]T
	lens    []int // populated lengths, descending (longest first)
	entries int

	// idx is the frozen lookup index; nil until Freeze, dropped by any
	// mutation. Lookup/Contains prefer it when live.
	idx *prefixIndex[T]
}

// prefixIndex is the frozen longest-prefix-match form of a PrefixMap: the
// address space cut into half-open segments, each labeled with the
// longest covering prefix at that point (noMatch when uncovered).
// starts is sorted ascending and always begins at ::, so the segment for
// an address is the one whose start is the greatest lower bound — a
// single binary search over a packed address array.
type prefixIndex[T any] struct {
	starts []Addr
	vals   []T
	bits   []uint8 // matched prefix length, noMatch for uncovered gaps
}

// noMatch marks an uncovered segment (valid prefix lengths are 0..128).
const noMatch = 0xff

// NewPrefixMap returns an empty PrefixMap.
func NewPrefixMap[T any]() *PrefixMap[T] { return &PrefixMap[T]{} }

// Len returns the number of entries.
func (m *PrefixMap[T]) Len() int { return m.entries }

// MaxBits returns the longest populated prefix length, or -1 when the
// map is empty. Lookup memoization keys off it: two addresses sharing
// their first MaxBits bits always yield the same longest-prefix match.
func (m *PrefixMap[T]) MaxBits() int {
	if len(m.lens) == 0 {
		return -1
	}
	return m.lens[0] // lens is kept sorted descending
}

// Insert adds or replaces the value for prefix p. Mutation drops a
// frozen index.
func (m *PrefixMap[T]) Insert(p Prefix, v T) {
	m.idx = nil
	b := p.Bits()
	if m.byLen[b] == nil {
		m.byLen[b] = make(map[Addr]T)
		m.lens = append(m.lens, b)
		sort.Sort(sort.Reverse(sort.IntSlice(m.lens)))
	}
	if _, ok := m.byLen[b][p.Addr()]; !ok {
		m.entries++
	}
	m.byLen[b][p.Addr()] = v
}

// Get returns the value stored for exactly p.
func (m *PrefixMap[T]) Get(p Prefix) (T, bool) {
	var zero T
	b := p.Bits()
	if m.byLen[b] == nil {
		return zero, false
	}
	v, ok := m.byLen[b][p.Addr()]
	if !ok {
		return zero, false
	}
	return v, true
}

// Delete removes prefix p; it reports whether it was present. Mutation
// drops a frozen index.
func (m *PrefixMap[T]) Delete(p Prefix) bool {
	b := p.Bits()
	if m.byLen[b] == nil {
		return false
	}
	if _, ok := m.byLen[b][p.Addr()]; !ok {
		return false
	}
	m.idx = nil
	delete(m.byLen[b], p.Addr())
	m.entries--
	return true
}

// Lookup returns the longest prefix containing a and its value.
func (m *PrefixMap[T]) Lookup(a Addr) (Prefix, T, bool) {
	if idx := m.idx; idx != nil {
		return idx.lookup(a)
	}
	for _, b := range m.lens {
		masked := mask(a, b)
		if v, ok := m.byLen[b][masked]; ok {
			return Prefix{addr: masked, bits: uint8(b)}, v, true
		}
	}
	var zero T
	return Prefix{}, zero, false
}

// Freeze builds the flat sorted segment index so subsequent Lookup and
// Contains calls are single binary searches instead of per-length map
// probes. Results are identical either way; freezing is purely a read-
// throughput optimization for tables that have stopped changing (the
// network model's alias rules and BGP view after world seal). Any Insert
// or Delete drops the index; Freeze again after a mutation batch. Freeze
// must not race with concurrent lookups.
//
// Freezing an already-frozen map is a no-op, so callers can re-freeze
// unconditionally after each mutation window (the service does, every
// scan) without paying a rebuild when nothing changed.
func (m *PrefixMap[T]) Freeze() {
	if m.idx != nil {
		return
	}
	type entry struct {
		p Prefix
		v T
	}
	entries := make([]entry, 0, m.entries)
	for _, b := range m.lens {
		for a, v := range m.byLen[b] {
			entries = append(entries, entry{Prefix{addr: a, bits: uint8(b)}, v})
		}
	}
	// Outer prefixes first at equal starts, so a nested prefix pushed
	// later overrides its parent's segment.
	sort.Slice(entries, func(i, j int) bool {
		if c := entries[i].p.addr.Compare(entries[j].p.addr); c != 0 {
			return c < 0
		}
		return entries[i].p.bits < entries[j].p.bits
	})

	idx := &prefixIndex[T]{}
	var zero T
	emit := func(start Addr, v T, bits uint8) {
		if n := len(idx.starts); n > 0 && idx.starts[n-1] == start {
			// A segment of length zero (nested prefix starting exactly at
			// its parent's start, or coinciding pop boundaries): the later
			// state wins.
			idx.vals[n-1], idx.bits[n-1] = v, bits
			return
		}
		idx.starts = append(idx.starts, start)
		idx.vals = append(idx.vals, v)
		idx.bits = append(idx.bits, bits)
	}
	emit(Addr{}, zero, noMatch)

	type frame struct {
		e   entry
		end Addr // last covered address
	}
	var stack []frame
	resume := func() {
		// Pop the deepest active prefix and resume its parent (or the
		// uncovered gap) just past its range — unless it covers the very
		// top of the space, where nothing follows.
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.end == (Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) {
			return
		}
		next := f.end.Next()
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			emit(next, top.e.v, top.e.p.bits)
		} else {
			emit(next, zero, noMatch)
		}
	}
	for _, e := range entries {
		for len(stack) > 0 && stack[len(stack)-1].end.Less(e.p.addr) {
			resume()
		}
		stack = append(stack, frame{e, lastAddrOf(e.p)})
		emit(e.p.addr, e.v, e.p.bits)
	}
	for len(stack) > 0 {
		resume()
	}
	m.idx = idx
}

// lastAddrOf returns the numerically last address covered by p.
func lastAddrOf(p Prefix) Addr {
	a := p.addr
	bits := int(p.bits)
	for i := range a {
		left := bits - i*8
		switch {
		case left >= 8:
		case left <= 0:
			a[i] = 0xff
		default:
			a[i] |= 0xff >> left
		}
	}
	return a
}

// lookup finds the segment covering a: the greatest start ≤ a.
func (idx *prefixIndex[T]) lookup(a Addr) (Prefix, T, bool) {
	ahi, alo := a.Hi(), a.Lo()
	i, j := 0, len(idx.starts)
	for i < j {
		m := int(uint(i+j) >> 1)
		shi := idx.starts[m].Hi()
		if shi < ahi || (shi == ahi && idx.starts[m].Lo() <= alo) {
			i = m + 1
		} else {
			j = m
		}
	}
	seg := i - 1 // starts[0] is ::, so seg >= 0
	b := idx.bits[seg]
	if b == noMatch {
		var zero T
		return Prefix{}, zero, false
	}
	return Prefix{addr: mask(a, int(b)), bits: b}, idx.vals[seg], true
}

// LookupAll returns every prefix containing a, longest first.
func (m *PrefixMap[T]) LookupAll(a Addr) []Prefix {
	var out []Prefix
	for _, b := range m.lens {
		masked := mask(a, b)
		if _, ok := m.byLen[b][masked]; ok {
			out = append(out, Prefix{addr: masked, bits: uint8(b)})
		}
	}
	return out
}

// Contains reports whether any prefix in the map covers a.
func (m *PrefixMap[T]) Contains(a Addr) bool {
	if idx := m.idx; idx != nil {
		_, _, ok := idx.lookup(a)
		return ok
	}
	for _, b := range m.lens {
		if _, ok := m.byLen[b][mask(a, b)]; ok {
			return true
		}
	}
	return false
}

// Walk calls fn for every entry. Iteration order is unspecified; fn
// returning false stops the walk.
func (m *PrefixMap[T]) Walk(fn func(Prefix, T) bool) {
	for _, b := range m.lens {
		for a, v := range m.byLen[b] {
			if !fn(Prefix{addr: a, bits: uint8(b)}, v) {
				return
			}
		}
	}
}

// Prefixes returns all prefixes sorted by address then length, a stable
// order for deterministic output.
func (m *PrefixMap[T]) Prefixes() []Prefix {
	out := make([]Prefix, 0, m.entries)
	m.Walk(func(p Prefix, _ T) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// PrefixSet is a PrefixMap without values.
type PrefixSet struct{ m PrefixMap[struct{}] }

// NewPrefixSet returns an empty PrefixSet.
func NewPrefixSet() *PrefixSet { return &PrefixSet{} }

// Add inserts prefix p.
func (s *PrefixSet) Add(p Prefix) { s.m.Insert(p, struct{}{}) }

// Has reports whether exactly p is in the set.
func (s *PrefixSet) Has(p Prefix) bool { _, ok := s.m.Get(p); return ok }

// Delete removes p, reporting whether it was present.
func (s *PrefixSet) Delete(p Prefix) bool { return s.m.Delete(p) }

// Contains reports whether any prefix in the set covers a.
func (s *PrefixSet) Contains(a Addr) bool { return s.m.Contains(a) }

// Match returns the longest prefix in the set containing a.
func (s *PrefixSet) Match(a Addr) (Prefix, bool) {
	p, _, ok := s.m.Lookup(a)
	return p, ok
}

// Len returns the number of prefixes.
func (s *PrefixSet) Len() int { return s.m.Len() }

// Freeze builds the flat segment index behind Contains/Match; any Add or
// Delete drops it (see PrefixMap.Freeze).
func (s *PrefixSet) Freeze() { s.m.Freeze() }

// Prefixes returns all prefixes in stable order.
func (s *PrefixSet) Prefixes() []Prefix { return s.m.Prefixes() }

// Walk visits every prefix; fn returning false stops the walk.
func (s *PrefixSet) Walk(fn func(Prefix) bool) {
	s.m.Walk(func(p Prefix, _ struct{}) bool { return fn(p) })
}
