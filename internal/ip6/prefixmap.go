package ip6

import "sort"

// PrefixMap associates values with IPv6 prefixes and answers
// longest-prefix-match queries. It is the routing-table primitive behind
// AS attribution, alias matching and blocklists.
//
// The implementation keeps one hash map per populated prefix length, so a
// lookup costs at most one map access per distinct length in the table
// (BGP-style tables populate a handful of lengths). This is simpler and,
// for our workloads, faster than a pointer-chasing trie.
type PrefixMap[T any] struct {
	byLen   [129]map[Addr]T
	lens    []int // populated lengths, descending (longest first)
	entries int
}

// NewPrefixMap returns an empty PrefixMap.
func NewPrefixMap[T any]() *PrefixMap[T] { return &PrefixMap[T]{} }

// Len returns the number of entries.
func (m *PrefixMap[T]) Len() int { return m.entries }

// MaxBits returns the longest populated prefix length, or -1 when the
// map is empty. Lookup memoization keys off it: two addresses sharing
// their first MaxBits bits always yield the same longest-prefix match.
func (m *PrefixMap[T]) MaxBits() int {
	if len(m.lens) == 0 {
		return -1
	}
	return m.lens[0] // lens is kept sorted descending
}

// Insert adds or replaces the value for prefix p.
func (m *PrefixMap[T]) Insert(p Prefix, v T) {
	b := p.Bits()
	if m.byLen[b] == nil {
		m.byLen[b] = make(map[Addr]T)
		m.lens = append(m.lens, b)
		sort.Sort(sort.Reverse(sort.IntSlice(m.lens)))
	}
	if _, ok := m.byLen[b][p.Addr()]; !ok {
		m.entries++
	}
	m.byLen[b][p.Addr()] = v
}

// Get returns the value stored for exactly p.
func (m *PrefixMap[T]) Get(p Prefix) (T, bool) {
	var zero T
	b := p.Bits()
	if m.byLen[b] == nil {
		return zero, false
	}
	v, ok := m.byLen[b][p.Addr()]
	if !ok {
		return zero, false
	}
	return v, true
}

// Delete removes prefix p; it reports whether it was present.
func (m *PrefixMap[T]) Delete(p Prefix) bool {
	b := p.Bits()
	if m.byLen[b] == nil {
		return false
	}
	if _, ok := m.byLen[b][p.Addr()]; !ok {
		return false
	}
	delete(m.byLen[b], p.Addr())
	m.entries--
	return true
}

// Lookup returns the longest prefix containing a and its value.
func (m *PrefixMap[T]) Lookup(a Addr) (Prefix, T, bool) {
	for _, b := range m.lens {
		masked := mask(a, b)
		if v, ok := m.byLen[b][masked]; ok {
			return Prefix{addr: masked, bits: uint8(b)}, v, true
		}
	}
	var zero T
	return Prefix{}, zero, false
}

// LookupAll returns every prefix containing a, longest first.
func (m *PrefixMap[T]) LookupAll(a Addr) []Prefix {
	var out []Prefix
	for _, b := range m.lens {
		masked := mask(a, b)
		if _, ok := m.byLen[b][masked]; ok {
			out = append(out, Prefix{addr: masked, bits: uint8(b)})
		}
	}
	return out
}

// Contains reports whether any prefix in the map covers a.
func (m *PrefixMap[T]) Contains(a Addr) bool {
	for _, b := range m.lens {
		if _, ok := m.byLen[b][mask(a, b)]; ok {
			return true
		}
	}
	return false
}

// Walk calls fn for every entry. Iteration order is unspecified; fn
// returning false stops the walk.
func (m *PrefixMap[T]) Walk(fn func(Prefix, T) bool) {
	for _, b := range m.lens {
		for a, v := range m.byLen[b] {
			if !fn(Prefix{addr: a, bits: uint8(b)}, v) {
				return
			}
		}
	}
}

// Prefixes returns all prefixes sorted by address then length, a stable
// order for deterministic output.
func (m *PrefixMap[T]) Prefixes() []Prefix {
	out := make([]Prefix, 0, m.entries)
	m.Walk(func(p Prefix, _ T) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// PrefixSet is a PrefixMap without values.
type PrefixSet struct{ m PrefixMap[struct{}] }

// NewPrefixSet returns an empty PrefixSet.
func NewPrefixSet() *PrefixSet { return &PrefixSet{} }

// Add inserts prefix p.
func (s *PrefixSet) Add(p Prefix) { s.m.Insert(p, struct{}{}) }

// Has reports whether exactly p is in the set.
func (s *PrefixSet) Has(p Prefix) bool { _, ok := s.m.Get(p); return ok }

// Delete removes p, reporting whether it was present.
func (s *PrefixSet) Delete(p Prefix) bool { return s.m.Delete(p) }

// Contains reports whether any prefix in the set covers a.
func (s *PrefixSet) Contains(a Addr) bool { return s.m.Contains(a) }

// Match returns the longest prefix in the set containing a.
func (s *PrefixSet) Match(a Addr) (Prefix, bool) {
	p, _, ok := s.m.Lookup(a)
	return p, ok
}

// Len returns the number of prefixes.
func (s *PrefixSet) Len() int { return s.m.Len() }

// Prefixes returns all prefixes in stable order.
func (s *PrefixSet) Prefixes() []Prefix { return s.m.Prefixes() }

// Walk visits every prefix; fn returning false stops the walk.
func (s *PrefixSet) Walk(fn func(Prefix) bool) {
	s.m.Walk(func(p Prefix, _ struct{}) bool { return fn(p) })
}
