package ip6

import "hitlist6/internal/rng"

func newBenchStream() *rng.Stream { return rng.NewStream(99, "ip6-bench") }
