package ip6

// External-memory address sets. The cumulative sets the hitlist pipeline
// carries across scans (every address ever seen as input, every address
// ever responsive, the deployed GFW drop list) grow with the full history
// of the measurement — at paper scale hundreds of millions of 16-byte
// addresses, far beyond what fits in RAM as Go maps. SpillableSet is the
// small interface both the resident ShardedSet and the disk-backed
// SpillSet satisfy, and RunFile/Run/MergeRuns are the sorted-run
// primitives SpillSet (and the hlfile writer) are built from: frozen
// sorted runs appended to a scratch file, fence-indexed point lookups,
// and k-way streaming merges.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// AddrBytes is the on-disk size of one address in every external-memory
// structure of this package (raw network byte order, no framing).
const AddrBytes = 16

// SpillableSet is the sharded address-set surface the service's
// cumulative sets are used through. ShardedSet implements it fully
// resident; SpillSet implements it with bounded resident memory, spilling
// frozen sorted runs to disk. The per-shard writing contract is the same
// as ShardedSet's: at most one goroutine touches a given shard at a time,
// and whole-set views (Len, Merge) run only outside per-shard sweeps.
type SpillableSet interface {
	// Add inserts a into its canonical shard; it reports whether a was
	// newly added. Single-goroutine use only.
	Add(a Addr) bool
	// AddToShard inserts a into shard i (ShardOf(a) must equal i),
	// reporting whether a was newly added.
	AddToShard(i int, a Addr) bool
	// AddAllToShard inserts every member of set into shard i under the
	// same contract as AddToShard.
	AddAllToShard(i int, set Set)
	// Has reports membership.
	Has(a Addr) bool
	// HasInShard reports membership of a in shard i, skipping the shard
	// hash when the caller already knows it.
	HasInShard(i int, a Addr) bool
	// Len returns the total cardinality across shards.
	Len() int
	// ShardLen returns the cardinality of shard i.
	ShardLen(i int) int
	// WalkShard visits every member of shard i in unspecified order; fn
	// returning false stops the walk.
	WalkShard(i int, fn func(Addr) bool)
	// Merge returns a new flat Set holding every member.
	Merge() Set
	// ShardEpoch returns shard i's mutation epoch: a counter that is
	// unchanged only if the shard's membership is unchanged (for this set
	// object — epochs are not comparable across objects). Dirty-shard
	// consumers (incremental snapshot freezes, delta checkpoints) hinge
	// on this guarantee.
	ShardEpoch(i int) uint64
}

// ShardedSet must satisfy the interface it anchors.
var _ SpillableSet = (*ShardedSet)(nil)

// fenceEvery is the fence-index granularity of a Run: one resident
// address per this many on-disk addresses, so a point lookup costs one
// bounded ReadAt after a resident binary search.
const fenceEvery = 256

// RunFile is an append-only scratch file of sorted address runs. Runs are
// written whole under an internal lock (safe from concurrent per-shard
// workers) and read with ReadAt (safe concurrently with appends).
// Superseded runs become dead space until the file is closed and removed
// — owners that churn runs (SpillSet.Compact) rotate to a fresh file
// once dead bytes outgrow live data.
type RunFile struct {
	f  *os.File
	mu sync.Mutex
	sz int64
}

// OpenRunFile creates a fresh scratch run file in dir ("" = the system
// temp directory). The file is removed by Close.
func OpenRunFile(dir, pattern string) (*RunFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, fmt.Errorf("ip6: creating run file: %w", err)
	}
	return &RunFile{f: f}, nil
}

// Close closes and removes the scratch file.
func (rf *RunFile) Close() error {
	name := rf.f.Name()
	err := rf.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// Size returns the bytes appended so far.
func (rf *RunFile) Size() int64 {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	return rf.sz
}

// Run is one frozen sorted run inside a RunFile: a contiguous range of
// strictly ascending addresses, plus a resident fence index (every
// fenceEvery-th address and the last) for bounded-cost point lookups.
type Run struct {
	off   int64
	count int
	fence []Addr
	last  Addr
}

// Count returns the number of addresses in the run.
func (r *Run) Count() int { return r.count }

// buildFence indexes a sorted address slice.
func buildFence(addrs []Addr) (fence []Addr, last Addr) {
	for i := 0; i < len(addrs); i += fenceEvery {
		fence = append(fence, addrs[i])
	}
	return fence, addrs[len(addrs)-1]
}

// WriteRun appends addrs — which must be sorted ascending — as one run
// and returns its handle. Duplicates within addrs are kept (MergeRuns
// drops them); an empty slice yields an empty run.
func (rf *RunFile) WriteRun(addrs []Addr) (Run, error) {
	if len(addrs) == 0 {
		return Run{}, nil
	}
	buf := make([]byte, len(addrs)*AddrBytes)
	for i, a := range addrs {
		copy(buf[i*AddrBytes:], a[:])
	}
	rf.mu.Lock()
	off := rf.sz
	rf.sz += int64(len(buf))
	rf.mu.Unlock()
	if _, err := rf.f.WriteAt(buf, off); err != nil {
		return Run{}, fmt.Errorf("ip6: writing run: %w", err)
	}
	fence, last := buildFence(addrs)
	return Run{off: off, count: len(addrs), fence: fence, last: last}, nil
}

// Has reports whether a is in the run. scratch is the caller's reusable
// read buffer (grown as needed); callers honoring the per-shard contract
// can share one per shard.
func (r *Run) Has(rf *RunFile, a Addr, scratch *[]byte) (bool, error) {
	if r.count == 0 || a.Less(r.fence[0]) || r.last.Less(a) {
		return false, nil
	}
	// Last fence block whose first address is <= a.
	blk := sort.Search(len(r.fence), func(i int) bool { return a.Less(r.fence[i]) }) - 1
	start := blk * fenceEvery
	n := r.count - start
	if n > fenceEvery {
		n = fenceEvery
	}
	need := n * AddrBytes
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	b := (*scratch)[:need]
	if _, err := rf.f.ReadAt(b, r.off+int64(start*AddrBytes)); err != nil {
		return false, fmt.Errorf("ip6: reading run block: %w", err)
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		c := compareBytes(a, b[mid*AddrBytes:])
		switch {
		case c == 0:
			return true, nil
		case c < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return false, nil
}

// compareBytes orders a against the 16 raw bytes at b[0:16].
func compareBytes(a Addr, b []byte) int {
	for i := 0; i < AddrBytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// runReader streams one run in order, chunk by chunk.
type runReader struct {
	rf   *RunFile
	run  *Run
	pos  int // addresses consumed
	buf  []byte
	cur  []byte // unread remainder of buf
	size int    // chunk size in addresses
}

func newRunReader(rf *RunFile, r *Run, chunkAddrs int) *runReader {
	if chunkAddrs <= 0 {
		chunkAddrs = 1024
	}
	return &runReader{rf: rf, run: r, size: chunkAddrs}
}

// next returns the next address; ok=false at end of run.
func (rr *runReader) next() (Addr, bool, error) {
	if len(rr.cur) == 0 {
		left := rr.run.count - rr.pos
		if left == 0 {
			return Addr{}, false, nil
		}
		n := rr.size
		if n > left {
			n = left
		}
		need := n * AddrBytes
		if cap(rr.buf) < need {
			rr.buf = make([]byte, need)
		}
		rr.cur = rr.buf[:need]
		if _, err := rr.rf.f.ReadAt(rr.cur, rr.run.off+int64(rr.pos*AddrBytes)); err != nil {
			return Addr{}, false, fmt.Errorf("ip6: reading run: %w", err)
		}
		rr.pos += n
	}
	var a Addr
	copy(a[:], rr.cur)
	rr.cur = rr.cur[AddrBytes:]
	return a, true, nil
}

// MergeRuns streams the sorted union of the given runs to emit, dropping
// duplicates (within and across runs). Runs must each be sorted; the
// merge reads bounded chunks per run and keeps a min-heap of run heads,
// so memory is O(runs) and comparisons O(N log runs) — linear even for
// the hundreds-of-runs fan-in an uncompacted writer accumulates on
// hitlist-scale conversions. A non-nil error from emit aborts the merge.
func MergeRuns(rf *RunFile, runs []*Run, emit func(Addr) error) error {
	h := mergeHeap{}
	for _, r := range runs {
		if r.count == 0 {
			continue
		}
		rr := newRunReader(rf, r, 0)
		a, ok, err := rr.next()
		if err != nil {
			return err
		}
		if ok {
			h.entries = append(h.entries, mergeEntry{head: a, rr: rr})
		}
	}
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	var lastEmitted Addr
	emitted := false
	for len(h.entries) > 0 {
		e := &h.entries[0]
		a := e.head
		if !emitted || lastEmitted != a {
			if err := emit(a); err != nil {
				return err
			}
			lastEmitted, emitted = a, true
		}
		nxt, ok, err := e.rr.next()
		if err != nil {
			return err
		}
		if ok {
			e.head = nxt
		} else {
			last := len(h.entries) - 1
			h.entries[0] = h.entries[last]
			h.entries = h.entries[:last]
		}
		h.siftDown(0)
	}
	return nil
}

// mergeHeap is a hand-rolled binary min-heap of run cursors keyed by
// their head address (container/heap's interface indirection costs an
// allocation per op on the merge hot path).
type mergeEntry struct {
	head Addr
	rr   *runReader
}

type mergeHeap struct{ entries []mergeEntry }

func (h *mergeHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.entries[l].head.Less(h.entries[min].head) {
			min = l
		}
		if r < n && h.entries[r].head.Less(h.entries[min].head) {
			min = r
		}
		if min == i {
			return
		}
		h.entries[i], h.entries[min] = h.entries[min], h.entries[i]
		i = min
	}
}

// runWriter appends one run incrementally — the streaming counterpart of
// WriteRun for merges whose output must not be materialized. The run's
// bytes are contiguous: the writer reserves nothing up front, so only one
// runWriter may be open per RunFile at a time (appends go through the
// file lock but interleaving two open writers would interleave their
// runs' bytes).
type runWriter struct {
	rf    *RunFile
	off   int64
	count int
	buf   []byte
	fence []Addr
	last  Addr
	open  bool
}

func (rf *RunFile) newRunWriter() *runWriter {
	return &runWriter{rf: rf}
}

// append adds the next address (must be > the previous one).
func (w *runWriter) append(a Addr) error {
	if !w.open {
		w.rf.mu.Lock()
		w.off = w.rf.sz
		w.rf.mu.Unlock()
		w.open = true
	}
	if w.count%fenceEvery == 0 {
		w.fence = append(w.fence, a)
	}
	w.buf = append(w.buf, a[:]...)
	w.count++
	w.last = a
	if len(w.buf) >= 64*1024 {
		return w.flush()
	}
	return nil
}

func (w *runWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	off := w.off + int64(w.count*AddrBytes) - int64(len(w.buf))
	if _, err := w.rf.f.WriteAt(w.buf, off); err != nil {
		return fmt.Errorf("ip6: writing merged run: %w", err)
	}
	w.buf = w.buf[:0]
	return nil
}

// finish flushes and returns the completed run.
func (w *runWriter) finish() (Run, error) {
	if err := w.flush(); err != nil {
		return Run{}, err
	}
	if w.open {
		w.rf.mu.Lock()
		end := w.off + int64(w.count*AddrBytes)
		if end > w.rf.sz {
			w.rf.sz = end
		}
		w.rf.mu.Unlock()
	}
	return Run{off: w.off, count: w.count, fence: w.fence, last: w.last}, nil
}

// SpillSet is the disk-backed SpillableSet: per shard, a small resident
// delta Set plus frozen sorted runs in a shared scratch RunFile. When a
// shard's delta reaches the configured budget it freezes — sorted, written
// as a run, cleared — so resident memory is bounded by
// AddrShards × budget addresses regardless of cardinality. Inserts check
// membership first (delta, then runs), so runs are mutually disjoint and
// Len is a plain counter sum. Compact merges each shard's runs into one,
// keeping point lookups at one fence search per run.
//
// The spill trigger is shard-local (delta size only), so whether an
// address lands in the delta or a run depends solely on the shard's own
// insert sequence — never on cross-shard timing — and every set-level
// observation (Has, Len, Merge, WalkShard membership) is deterministic
// under the same per-shard contract ShardedSet has.
//
// Disk errors are sticky: the failing operation degrades (Has reports
// false, Add drops the freeze) and Err returns the first error for the
// owner to surface at its next checkpoint.
type SpillSet struct {
	rf     *RunFile
	dir    string
	budget int
	shards [AddrShards]spillShard
	epochs [AddrShards]uint64 // per-shard mutation epochs (see SpillableSet)

	frozen atomic.Int64 // runs frozen over the set's lifetime (telemetry)
	failed atomic.Bool  // latch: stop freezing after the first disk error

	errMu    sync.Mutex
	firstErr error
}

type spillShard struct {
	delta   Set
	runs    []*Run
	ondisk  int // addresses in runs (disjoint from delta)
	scratch []byte
}

// NewSpillSet creates a disk-backed set whose scratch file lives in dir
// ("" = system temp). budget is the per-shard resident address count that
// triggers a freeze; values < 1 are clamped to 1 (every insert spills —
// maximal disk pressure, used by the larger-than-memory tests).
func NewSpillSet(dir string, budget int) (*SpillSet, error) {
	rf, err := OpenRunFile(dir, "ip6-spill-*.runs")
	if err != nil {
		return nil, err
	}
	if budget < 1 {
		budget = 1
	}
	return &SpillSet{rf: rf, dir: dir, budget: budget}, nil
}

var _ SpillableSet = (*SpillSet)(nil)

// Close releases the scratch file.
func (s *SpillSet) Close() error { return s.rf.Close() }

// Err returns the first disk error any operation hit, or nil.
func (s *SpillSet) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

// FrozenRuns reports how many runs have been frozen over the set's
// lifetime (compaction does not reset it) — the "did we actually spill"
// signal for tests and telemetry.
func (s *SpillSet) FrozenRuns() int64 { return s.frozen.Load() }

// SpilledBytes reports the scratch file's current size.
func (s *SpillSet) SpilledBytes() int64 { return s.rf.Size() }

func (s *SpillSet) fail(err error) {
	s.failed.Store(true)
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
}

// Add inserts a into its canonical shard.
func (s *SpillSet) Add(a Addr) bool { return s.AddToShard(ShardOf(a), a) }

// AddToShard inserts a into shard i under the per-shard contract,
// reporting whether a was newly added.
func (s *SpillSet) AddToShard(i int, a Addr) bool {
	if s.HasInShard(i, a) {
		return false
	}
	sh := &s.shards[i]
	if sh.delta == nil {
		sh.delta = NewSet(0)
	}
	sh.delta[a] = struct{}{}
	s.epochs[i]++
	// The failed latch stops freeze attempts after a disk error: without
	// it every over-budget insert would re-sort and re-write the whole
	// delta against a dead disk. Membership stays correct (the delta just
	// grows resident) and the sticky error surfaces via Err.
	if len(sh.delta) >= s.budget && !s.failed.Load() {
		s.freeze(i)
	}
	return true
}

// AddAllToShard inserts every member of set into shard i.
func (s *SpillSet) AddAllToShard(i int, set Set) {
	for a := range set {
		s.AddToShard(i, a)
	}
}

// freeze spills shard i's delta as a sorted run and clears it.
func (s *SpillSet) freeze(i int) {
	sh := &s.shards[i]
	if len(sh.delta) == 0 {
		return
	}
	addrs := sh.delta.Sorted()
	run, err := s.rf.WriteRun(addrs)
	if err != nil {
		// Keep the delta resident: membership stays correct, the error
		// surfaces via Err.
		s.fail(err)
		return
	}
	sh.runs = append(sh.runs, &run)
	sh.ondisk += run.count
	sh.delta = NewSet(0)
	s.frozen.Add(1)
}

// Has reports membership.
func (s *SpillSet) Has(a Addr) bool { return s.HasInShard(ShardOf(a), a) }

// HasInShard reports membership of a in shard i.
func (s *SpillSet) HasInShard(i int, a Addr) bool {
	sh := &s.shards[i]
	if sh.delta.Has(a) {
		return true
	}
	// Newest runs first: recent inserts are the likelier probes.
	for j := len(sh.runs) - 1; j >= 0; j-- {
		ok, err := sh.runs[j].Has(s.rf, a, &sh.scratch)
		if err != nil {
			s.fail(err)
			return false
		}
		if ok {
			return true
		}
	}
	return false
}

// Len returns the total cardinality across shards.
func (s *SpillSet) Len() int {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].delta) + s.shards[i].ondisk
	}
	return n
}

// ShardLen returns the cardinality of shard i.
func (s *SpillSet) ShardLen(i int) int {
	return len(s.shards[i].delta) + s.shards[i].ondisk
}

// WalkShard visits every member of shard i (delta first, then runs in
// freeze order); fn returning false stops the walk.
func (s *SpillSet) WalkShard(i int, fn func(Addr) bool) {
	sh := &s.shards[i]
	for a := range sh.delta {
		if !fn(a) {
			return
		}
	}
	for _, r := range sh.runs {
		rr := newRunReader(s.rf, r, 0)
		for {
			a, ok, err := rr.next()
			if err != nil {
				s.fail(err)
				return
			}
			if !ok {
				break
			}
			if !fn(a) {
				return
			}
		}
	}
}

// WalkShardSorted streams shard i's members to emit in ascending address
// order. The shard's resident delta is frozen to disk first (a
// membership-invariant state change: the spill trigger is shard-local, so
// later observations are unaffected), then the frozen runs are k-way
// merged. A non-nil error from emit aborts the walk; disk errors are
// sticky (Err) and returned.
func (s *SpillSet) WalkShardSorted(i int, emit func(Addr) error) error {
	s.freeze(i)
	sh := &s.shards[i]
	if len(sh.delta) != 0 {
		// freeze left the delta resident, which only happens on a disk
		// error — surface the sticky error rather than emitting out of
		// order.
		if err := s.Err(); err != nil {
			return err
		}
		return fmt.Errorf("ip6: shard %d delta not frozen", i)
	}
	return MergeRuns(s.rf, sh.runs, emit)
}

// ShardSortedCursor returns a pull cursor over shard i's members in
// ascending address order — the cursor form of WalkShardSorted, for
// consumers that interleave several shards' streams (the TGA feedback
// merge). The shard's resident delta is frozen first, then the cursor
// k-way merges the frozen runs with a bounded read buffer per run; the
// shard must not be mutated while the cursor is in use. Disk errors are
// sticky (Err) and returned through the cursor.
func (s *SpillSet) ShardSortedCursor(i int) (func() (Addr, bool, error), error) {
	s.freeze(i)
	sh := &s.shards[i]
	if len(sh.delta) != 0 {
		// freeze left the delta resident, which only happens on a disk
		// error — surface the sticky error rather than emitting out of
		// order.
		if err := s.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("ip6: shard %d delta not frozen", i)
	}
	h := &mergeHeap{}
	for _, r := range sh.runs {
		if r.count == 0 {
			continue
		}
		rr := newRunReader(s.rf, r, 0)
		a, ok, err := rr.next()
		if err != nil {
			s.fail(err)
			return nil, err
		}
		if ok {
			h.entries = append(h.entries, mergeEntry{head: a, rr: rr})
		}
	}
	for j := len(h.entries)/2 - 1; j >= 0; j-- {
		h.siftDown(j)
	}
	var last Addr
	emitted := false
	return func() (Addr, bool, error) {
		for len(h.entries) > 0 {
			e := &h.entries[0]
			a := e.head
			nxt, ok, err := e.rr.next()
			if err != nil {
				s.fail(err)
				return Addr{}, false, err
			}
			if ok {
				e.head = nxt
			} else {
				lastIdx := len(h.entries) - 1
				h.entries[0] = h.entries[lastIdx]
				h.entries = h.entries[:lastIdx]
			}
			h.siftDown(0)
			if !emitted || last != a { // runs are disjoint; dedup is defensive
				last, emitted = a, true
				return a, true, nil
			}
		}
		return Addr{}, false, nil
	}, nil
}

// ImportShardSorted bulk-loads shard i from a cursor yielding strictly
// ascending addresses (every one hashing to shard i). The shard must be
// empty — this is the checkpoint-restore path, not an insert path — and
// because the underlying run writer claims the scratch file's tail,
// imports must run serially across shards. The loaded addresses land as
// one frozen run without counting toward FrozenRuns (a reload is not a
// spill).
func (s *SpillSet) ImportShardSorted(i int, next func() (Addr, bool, error)) error {
	sh := &s.shards[i]
	if len(sh.delta) != 0 || len(sh.runs) != 0 {
		return fmt.Errorf("ip6: importing into non-empty shard %d", i)
	}
	w := s.rf.newRunWriter()
	for {
		a, ok, err := next()
		if err != nil {
			s.fail(err)
			return err
		}
		if !ok {
			break
		}
		if err := w.append(a); err != nil {
			s.fail(err)
			return err
		}
	}
	run, err := w.finish()
	if err != nil {
		s.fail(err)
		return err
	}
	if run.count > 0 {
		sh.runs = append(sh.runs, &run)
		sh.ondisk = run.count
		s.epochs[i]++
	}
	return nil
}

// ShardEpoch returns shard i's mutation epoch. Freezes, compaction and
// rotation are membership-invariant and do not advance it.
func (s *SpillSet) ShardEpoch(i int) uint64 { return s.epochs[i] }

// Merge materializes the whole set — the compat view for snapshot
// encodings and analyses that need a flat Set. It is the one operation
// whose output is not memory-bounded; larger-than-memory consumers should
// stream WalkShard instead.
func (s *SpillSet) Merge() Set {
	out := NewSet(s.Len())
	for i := range s.shards {
		s.WalkShard(i, func(a Addr) bool {
			out[a] = struct{}{}
			return true
		})
	}
	return out
}

// rotateMinDead is the dead-space floor below which Compact keeps
// appending instead of rewriting into a fresh file.
const rotateMinDead = 4 << 20

// Compact merges every shard's runs into at most one, bounding point
// lookups at one fence search per shard. Deltas stay resident (they are
// under budget by construction). The run file is append-only, so
// superseded runs accumulate as dead bytes; once dead space exceeds the
// live data (and a small floor), Compact rewrites the live runs into a
// fresh scratch file and drops the old one — bounding scratch disk at
// roughly 2× the set's size instead of growing with every merge.
// Compact must run outside per-shard sweeps (single goroutine).
func (s *SpillSet) Compact() error {
	var live int64
	for i := range s.shards {
		live += int64(s.shards[i].ondisk) * AddrBytes
	}
	if dead := s.rf.Size() - live; dead > live && dead > rotateMinDead {
		// Rotation merges every shard (fan-in 1 included) into the fresh
		// file, so it subsumes the in-place pass.
		if err := s.rotate(); err != nil {
			s.fail(err)
			return err
		}
		return s.Err()
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if len(sh.runs) < 2 {
			continue
		}
		w := s.rf.newRunWriter()
		if err := MergeRuns(s.rf, sh.runs, w.append); err != nil {
			s.fail(err)
			return err
		}
		run, err := w.finish()
		if err != nil {
			s.fail(err)
			return err
		}
		sh.runs = sh.runs[:0]
		if run.count > 0 {
			sh.runs = append(sh.runs, &run)
		}
		sh.ondisk = run.count
	}
	return s.Err()
}

// rotate rewrites every shard's live runs into a fresh scratch file and
// removes the old one. Shard state swaps only after every merge
// succeeded, so a mid-rotation failure leaves the set fully on the old
// file (the fresh one is dropped) — never split across both.
func (s *SpillSet) rotate() error {
	fresh, err := OpenRunFile(s.dir, "ip6-spill-*.runs")
	if err != nil {
		return err
	}
	var staged [AddrShards]*Run
	for i := range s.shards {
		sh := &s.shards[i]
		if len(sh.runs) == 0 {
			continue
		}
		w := fresh.newRunWriter()
		if err := MergeRuns(s.rf, sh.runs, w.append); err != nil {
			fresh.Close()
			return err
		}
		run, err := w.finish()
		if err != nil {
			fresh.Close()
			return err
		}
		if run.count > 0 {
			staged[i] = &run
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.runs = sh.runs[:0]
		sh.ondisk = 0
		if staged[i] != nil {
			sh.runs = append(sh.runs, staged[i])
			sh.ondisk = staged[i].count
		}
	}
	old := s.rf
	s.rf = fresh
	return old.Close()
}

var _ io.Closer = (*SpillSet)(nil)
