package ip6

import "fmt"

// MAC is a 48-bit IEEE 802 address.
type MAC [6]byte

// String formats the MAC in colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// OUI returns the 24-bit Organizationally Unique Identifier.
func (m MAC) OUI() [3]byte { return [3]byte{m[0], m[1], m[2]} }

// IsEUI64 reports whether the interface identifier of a follows the
// modified EUI-64 format derived from a MAC address, i.e. bytes 11 and 12
// are 0xff, 0xfe. Section 4.1 of the paper uses this to show that 282 M
// input addresses derive from only 22.7 M distinct MAC addresses.
func (a Addr) IsEUI64() bool {
	return a[11] == 0xff && a[12] == 0xfe
}

// EUI64MAC extracts the MAC address embedded in a modified EUI-64
// interface identifier. ok is false when the address is not EUI-64.
// The universal/local bit (bit 1 of the first MAC byte) is flipped back.
func (a Addr) EUI64MAC() (MAC, bool) {
	if !a.IsEUI64() {
		return MAC{}, false
	}
	return MAC{a[8] ^ 0x02, a[9], a[10], a[13], a[14], a[15]}, true
}

// EUI64IID returns the 64-bit interface identifier of a modified EUI-64
// address (the low 64 bits), and ok=false if the address is not EUI-64.
// Grouping input addresses by this value reveals prefix-rotation bias.
func (a Addr) EUI64IID() (uint64, bool) {
	if !a.IsEUI64() {
		return 0, false
	}
	return a.Lo(), true
}

// AddrFromMAC builds the modified EUI-64 address for mac inside the /64
// prefix p (bits beyond 64 in p are ignored).
func AddrFromMAC(p Prefix, mac MAC) Addr {
	a := mask(p.addr, 64)
	a[8] = mac[0] ^ 0x02
	a[9] = mac[1]
	a[10] = mac[2]
	a[11] = 0xff
	a[12] = 0xfe
	a[13] = mac[3]
	a[14] = mac[4]
	a[15] = mac[5]
	return a
}

// LowByteAddr reports whether the interface identifier is a "low" value:
// all zero except the final byte group (e.g. ::1, ::25). Such addresses
// are typical manual server assignments and are what dense-cluster target
// generation exploits.
func (a Addr) LowByteAddr() bool {
	for i := 8; i < 14; i++ {
		if a[i] != 0 {
			return false
		}
	}
	return a[14] != 0 || a[15] != 0
}
