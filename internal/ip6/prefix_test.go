package ip6

import (
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Bits() != 32 || p.Addr() != MustParseAddr("2001:db8::") {
		t.Errorf("parsed %v", p)
	}
	if p.String() != "2001:db8::/32" {
		t.Errorf("String = %q", p.String())
	}
	// Base must be masked.
	q := MustParsePrefix("2001:db8:ffff::1/32")
	if q != p {
		t.Errorf("masking failed: %v", q)
	}
	if _, err := ParsePrefix("192.0.2.0/24"); err == nil {
		t.Error("IPv4 prefix accepted")
	}
	if _, err := ParsePrefix("2001:db8::/129"); err == nil {
		t.Error("/129 accepted")
	}
	if _, err := ParsePrefix("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if !p.Contains(MustParseAddr("2001:db8:1234::1")) {
		t.Error("Contains failed inside")
	}
	if p.Contains(MustParseAddr("2001:db9::1")) {
		t.Error("Contains succeeded outside")
	}
	all := MustParsePrefix("::/0")
	if !all.Contains(MustParseAddr("ff02::1")) {
		t.Error("::/0 must contain everything")
	}
	host := MustParsePrefix("2001:db8::1/128")
	if !host.Contains(MustParseAddr("2001:db8::1")) || host.Contains(MustParseAddr("2001:db8::2")) {
		t.Error("/128 membership wrong")
	}
}

func TestContainsPrefixOverlaps(t *testing.T) {
	p32 := MustParsePrefix("2001:db8::/32")
	p48 := MustParsePrefix("2001:db8:1::/48")
	other := MustParsePrefix("2001:db9::/48")
	if !p32.ContainsPrefix(p48) || p48.ContainsPrefix(p32) {
		t.Error("ContainsPrefix wrong")
	}
	if !p32.ContainsPrefix(p32) {
		t.Error("prefix must contain itself")
	}
	if !p32.Overlaps(p48) || !p48.Overlaps(p32) {
		t.Error("Overlaps wrong for nested")
	}
	if p48.Overlaps(other) {
		t.Error("Overlaps wrong for disjoint")
	}
}

func TestParentChild(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Parent(4) != MustParsePrefix("2001:db0::/28") {
		t.Errorf("Parent: %v", p.Parent(4))
	}
	if p.Parent(40) != MustParsePrefix("::/0") {
		t.Errorf("Parent clamp: %v", p.Parent(40))
	}
	c := p.Child(4, 0xa)
	if c != MustParsePrefix("2001:db8:a000::/36") {
		t.Errorf("Child: %v", c)
	}
	// SubprefixOfNibble covers the paper's "2001:db8:[0-f]000::/36" walk.
	seen := map[Prefix]bool{}
	for v := byte(0); v < 16; v++ {
		sp := p.SubprefixOfNibble(v)
		if sp.Bits() != 36 || !p.ContainsPrefix(sp) {
			t.Fatalf("SubprefixOfNibble(%x) = %v", v, sp)
		}
		seen[sp] = true
	}
	if len(seen) != 16 {
		t.Errorf("got %d distinct subprefixes, want 16", len(seen))
	}
}

func TestFirstLast(t *testing.T) {
	p := MustParsePrefix("2001:db8::/64")
	if p.First() != MustParseAddr("2001:db8::") {
		t.Errorf("First: %v", p.First())
	}
	if p.Last() != MustParseAddr("2001:db8::ffff:ffff:ffff:ffff") {
		t.Errorf("Last: %v", p.Last())
	}
	if p.NumAddressesLog2() != 64 {
		t.Errorf("NumAddressesLog2: %d", p.NumAddressesLog2())
	}
}

func TestNthAddr(t *testing.T) {
	p := MustParsePrefix("2001:db8::/64")
	if p.NthAddr(0) != p.First() {
		t.Error("NthAddr(0)")
	}
	if p.NthAddr(255) != MustParseAddr("2001:db8::ff") {
		t.Errorf("NthAddr(255): %v", p.NthAddr(255))
	}
}

func TestSlash64(t *testing.T) {
	a := MustParseAddr("2001:db8:1:2:3:4:5:6")
	if Slash64(a) != MustParsePrefix("2001:db8:1:2::/64") {
		t.Errorf("Slash64: %v", Slash64(a))
	}
}

func TestComparePrefix(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8::/48")
	c := MustParsePrefix("2001:db9::/32")
	if ComparePrefix(a, b) != -1 || ComparePrefix(b, a) != 1 {
		t.Error("length ordering wrong")
	}
	if ComparePrefix(a, c) != -1 || ComparePrefix(a, a) != 0 {
		t.Error("address ordering wrong")
	}
}

func TestPrefixProperty(t *testing.T) {
	// Any address is contained by the prefix built from it at any length,
	// and masking is idempotent.
	f := func(raw [16]byte, bits uint8) bool {
		b := int(bits) % 129
		a := AddrFrom16(raw)
		p := PrefixFrom(a, b)
		if !p.Contains(a) {
			return false
		}
		return PrefixFrom(p.Addr(), b) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixMapLPM(t *testing.T) {
	m := NewPrefixMap[string]()
	m.Insert(MustParsePrefix("2001:db8::/32"), "as32")
	m.Insert(MustParsePrefix("2001:db8:1::/48"), "as48")
	m.Insert(MustParsePrefix("2000::/3"), "global")
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}

	p, v, ok := m.Lookup(MustParseAddr("2001:db8:1::5"))
	if !ok || v != "as48" || p.Bits() != 48 {
		t.Errorf("LPM: %v %v %v", p, v, ok)
	}
	_, v, ok = m.Lookup(MustParseAddr("2001:db8:2::5"))
	if !ok || v != "as32" {
		t.Errorf("LPM fallback: %v", v)
	}
	_, v, ok = m.Lookup(MustParseAddr("2a00::1"))
	if !ok || v != "global" {
		t.Errorf("LPM shortest: %v", v)
	}
	if _, _, ok := m.Lookup(MustParseAddr("fe80::1")); ok {
		t.Error("lookup outside all prefixes matched")
	}

	all := m.LookupAll(MustParseAddr("2001:db8:1::5"))
	if len(all) != 3 || all[0].Bits() != 48 || all[2].Bits() != 3 {
		t.Errorf("LookupAll: %v", all)
	}

	if !m.Contains(MustParseAddr("2001:db8::1")) {
		t.Error("Contains failed")
	}

	// Exact get / delete.
	if v, ok := m.Get(MustParsePrefix("2001:db8::/32")); !ok || v != "as32" {
		t.Error("Get failed")
	}
	if _, ok := m.Get(MustParsePrefix("2001:db8::/33")); ok {
		t.Error("Get matched non-exact prefix")
	}
	if !m.Delete(MustParsePrefix("2001:db8:1::/48")) || m.Len() != 2 {
		t.Error("Delete failed")
	}
	if m.Delete(MustParsePrefix("2001:db8:1::/48")) {
		t.Error("double Delete succeeded")
	}
	_, v, _ = m.Lookup(MustParseAddr("2001:db8:1::5"))
	if v != "as32" {
		t.Error("LPM after delete wrong")
	}
}

func TestPrefixMapReplaceAndWalk(t *testing.T) {
	m := NewPrefixMap[int]()
	p := MustParsePrefix("2001:db8::/32")
	m.Insert(p, 1)
	m.Insert(p, 2)
	if m.Len() != 1 {
		t.Errorf("replace should not grow: %d", m.Len())
	}
	if v, _ := m.Get(p); v != 2 {
		t.Errorf("replaced value: %d", v)
	}
	m.Insert(MustParsePrefix("2001:db9::/32"), 3)
	sum := 0
	m.Walk(func(_ Prefix, v int) bool { sum += v; return true })
	if sum != 5 {
		t.Errorf("Walk sum = %d", sum)
	}
	// Early stop.
	n := 0
	m.Walk(func(_ Prefix, _ int) bool { n++; return false })
	if n != 1 {
		t.Errorf("Walk early-stop visited %d", n)
	}
	ps := m.Prefixes()
	if len(ps) != 2 || !ps[0].Addr().Less(ps[1].Addr()) {
		t.Errorf("Prefixes order: %v", ps)
	}
}

func TestPrefixSet(t *testing.T) {
	s := NewPrefixSet()
	s.Add(MustParsePrefix("2001:db8::/32"))
	s.Add(MustParsePrefix("2001:db8:f::/48"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(MustParsePrefix("2001:db8::/32")) {
		t.Error("Has failed")
	}
	if !s.Contains(MustParseAddr("2001:db8:1::1")) {
		t.Error("Contains failed")
	}
	p, ok := s.Match(MustParseAddr("2001:db8:f::1"))
	if !ok || p.Bits() != 48 {
		t.Errorf("Match: %v %v", p, ok)
	}
	count := 0
	s.Walk(func(Prefix) bool { count++; return true })
	if count != 2 {
		t.Errorf("Walk visited %d", count)
	}
	if !s.Delete(MustParsePrefix("2001:db8:f::/48")) || s.Len() != 1 {
		t.Error("Delete failed")
	}
}

func TestSetOperations(t *testing.T) {
	a1 := MustParseAddr("2001:db8::1")
	a2 := MustParseAddr("2001:db8::2")
	a3 := MustParseAddr("2001:db8::3")
	s := SetOf(a1, a2)
	if s.Len() != 2 || !s.Has(a1) || s.Has(a3) {
		t.Fatal("SetOf wrong")
	}
	if !s.Add(a3) || s.Add(a3) {
		t.Error("Add return values wrong")
	}
	other := SetOf(a2, a3)
	if got := s.Intersect(other); got.Len() != 2 {
		t.Errorf("Intersect: %d", got.Len())
	}
	if got := s.IntersectCount(other); got != 2 {
		t.Errorf("IntersectCount: %d", got)
	}
	if got := s.Diff(other); got.Len() != 1 || !got.Has(a1) {
		t.Errorf("Diff: %v", got)
	}
	u := SetOf(a1).Union(SetOf(a2))
	if u.Len() != 2 {
		t.Errorf("Union: %d", u.Len())
	}
	c := s.Clone()
	c.Delete(a1)
	if !s.Has(a1) {
		t.Error("Clone aliases original")
	}
	sorted := s.Sorted()
	if len(sorted) != 3 || !sorted[0].Less(sorted[1]) || !sorted[1].Less(sorted[2]) {
		t.Errorf("Sorted: %v", sorted)
	}
	var sl []Addr
	sl = append(sl, a3, a1, a2)
	SortAddrs(sl)
	if sl[0] != a1 || sl[2] != a3 {
		t.Errorf("SortAddrs: %v", sl)
	}
	s2 := NewSet(0)
	s2.AddSlice(sl)
	s2.AddAll(other)
	if s2.Len() != 3 {
		t.Errorf("AddSlice/AddAll: %d", s2.Len())
	}
}

func BenchmarkPrefixMapLookup(b *testing.B) {
	m := NewPrefixMap[int]()
	r := newBenchStream()
	addrs := make([]Addr, 1024)
	for i := 0; i < 10000; i++ {
		a := AddrFromUint64s(0x2001<<48|uint64(i)<<16, 0)
		m.Insert(PrefixFrom(a, 32+(i%5)*8), i)
	}
	for i := range addrs {
		addrs[i] = AddrFromUint64s(0x2001<<48|uint64(r.Uint64n(10000))<<16, r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkSetAdd(b *testing.B) {
	r := newBenchStream()
	s := NewSet(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(AddrFromUint64s(r.Uint64(), r.Uint64()))
	}
}
