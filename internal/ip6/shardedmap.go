package ip6

import (
	"sync"
	"sync/atomic"
)

// ShardedMap is a map[Addr]V partitioned into AddrShards disjoint maps by
// ShardOf — the keyed counterpart of ShardedSet. It exists so that
// per-address bookkeeping (the service's active-target store) can live
// shard-aligned with the scan engine's batch delivery: each shard may be
// written by at most one goroutine at a time, so per-shard sweeps need no
// locking, and any consumer that merges derived state in canonical shard
// order is deterministic by construction.
//
// The zero value is not ready for use; call NewShardedMap.
type ShardedMap[V any] struct {
	shards [AddrShards]map[Addr]V
}

// NewShardedMap returns an empty ShardedMap. Shard maps are allocated
// lazily on first insert.
func NewShardedMap[V any]() *ShardedMap[V] { return &ShardedMap[V]{} }

// Get returns the value stored for a.
func (m *ShardedMap[V]) Get(a Addr) (V, bool) { return m.GetInShard(ShardOf(a), a) }

// GetInShard returns the value stored for a in shard i, skipping the
// shard hash when the caller already knows it.
func (m *ShardedMap[V]) GetInShard(i int, a Addr) (V, bool) {
	var zero V
	sh := m.shards[i]
	if sh == nil {
		return zero, false
	}
	v, ok := sh[a]
	if !ok {
		return zero, false
	}
	return v, true
}

// Put stores v for a in its canonical shard. Not safe for concurrent
// use — use PutInShard from per-shard workers instead.
func (m *ShardedMap[V]) Put(a Addr, v V) { m.PutInShard(ShardOf(a), a, v) }

// PutInShard stores v for a in shard i. The caller must ensure
// ShardOf(a) == i and that no other goroutine touches shard i
// concurrently.
func (m *ShardedMap[V]) PutInShard(i int, a Addr, v V) {
	if m.shards[i] == nil {
		m.shards[i] = make(map[Addr]V)
	}
	m.shards[i][a] = v
}

// Delete removes a; it reports whether a was present. Not safe for
// concurrent use — use DeleteInShard from per-shard workers instead.
func (m *ShardedMap[V]) Delete(a Addr) bool { return m.DeleteInShard(ShardOf(a), a) }

// DeleteInShard removes a from shard i under the same contract as
// PutInShard. Deleting the key most recently yielded by WalkShard is
// safe (Go map deletion during range).
func (m *ShardedMap[V]) DeleteInShard(i int, a Addr) bool {
	sh := m.shards[i]
	if sh == nil {
		return false
	}
	if _, ok := sh[a]; !ok {
		return false
	}
	delete(sh, a)
	return true
}

// Len returns the total entry count across shards.
func (m *ShardedMap[V]) Len() int {
	n := 0
	for _, sh := range m.shards {
		n += len(sh)
	}
	return n
}

// ShardLen returns the entry count of shard i.
func (m *ShardedMap[V]) ShardLen(i int) int { return len(m.shards[i]) }

// WalkShard visits every entry of shard i in map order (unspecified); fn
// returning false stops the walk. fn may delete the entry it was called
// with via DeleteInShard.
func (m *ShardedMap[V]) WalkShard(i int, fn func(Addr, V) bool) {
	for a, v := range m.shards[i] {
		if !fn(a, v) {
			return
		}
	}
}

// Walk visits every entry, shard by shard in canonical order; fn
// returning false stops the walk.
func (m *ShardedMap[V]) Walk(fn func(Addr, V) bool) {
	for i := range m.shards {
		for a, v := range m.shards[i] {
			if !fn(a, v) {
				return
			}
		}
	}
}

// ParallelShards runs fn for every shard index in [0, AddrShards) on up
// to workers goroutines, returning when all shards are done. Shard
// indices are handed out atomically, so each fn(i) runs exactly once and
// two invocations never share a shard — the locking-free contract every
// sharded structure in this package relies on. workers <= 1 runs inline
// on the calling goroutine with no goroutine overhead, so serial
// configurations pay nothing for the parallel plumbing. Callers must
// merge any cross-shard state in canonical shard order afterwards to
// stay deterministic.
func ParallelShards(workers int, fn func(shard int)) {
	if workers > AddrShards {
		workers = AddrShards
	}
	if workers <= 1 {
		for sh := 0; sh < AddrShards; sh++ {
			fn(sh)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= AddrShards {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
