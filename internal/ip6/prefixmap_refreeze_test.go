package ip6

import "testing"

// TestFreezeIdempotent pins the re-freeze contract the service relies
// on: freezing a frozen map keeps the existing index (no rebuild),
// mutations drop it, and the next Freeze picks the mutation up.
func TestFreezeIdempotent(t *testing.T) {
	s := NewPrefixSet()
	s.Add(MustParsePrefix("2001:db8::/32"))
	s.Add(MustParsePrefix("2600:9000::/28"))
	s.Freeze()
	idx := s.m.idx
	if idx == nil {
		t.Fatal("Freeze left no index")
	}
	s.Freeze()
	if s.m.idx != idx {
		t.Fatal("re-freeze of an unchanged set rebuilt the index")
	}
	if !s.Contains(MustParseAddr("2001:db8::1")) {
		t.Fatal("frozen lookup missed a member")
	}

	s.Add(MustParsePrefix("fd00::/8"))
	if s.m.idx != nil {
		t.Fatal("mutation did not drop the index")
	}
	if !s.Contains(MustParseAddr("fd00::1")) || !s.Contains(MustParseAddr("2001:db8::1")) {
		t.Fatal("map-path lookup wrong after mutation")
	}
	s.Freeze()
	if s.m.idx == nil || s.m.idx == idx {
		t.Fatal("freeze after mutation did not build a fresh index")
	}
	if !s.Contains(MustParseAddr("fd00::1")) || s.Contains(MustParseAddr("9999::1")) {
		t.Fatal("rebuilt index lookup wrong")
	}
}
