package ip6

import (
	"sync/atomic"
	"testing"
)

func TestShardedMapBasics(t *testing.T) {
	m := NewShardedMap[int]()
	addrs := shardedTestAddrs(500)
	for i, a := range addrs {
		m.Put(a, i)
	}
	if m.Len() != len(addrs) {
		t.Fatalf("len %d, want %d", m.Len(), len(addrs))
	}
	for i, a := range addrs {
		v, ok := m.Get(a)
		if !ok || v != i {
			t.Fatalf("get %v = %d,%v want %d", a, v, ok, i)
		}
		if v, ok := m.GetInShard(ShardOf(a), a); !ok || v != i {
			t.Fatalf("GetInShard %v = %d,%v", a, v, ok)
		}
	}
	// Shard lengths partition the total.
	sum := 0
	for sh := 0; sh < AddrShards; sh++ {
		sum += m.ShardLen(sh)
	}
	if sum != m.Len() {
		t.Errorf("shard lengths sum %d, want %d", sum, m.Len())
	}
	// Walk visits every entry once, shards in canonical order.
	seen := 0
	lastShard := -1
	m.Walk(func(a Addr, v int) bool {
		seen++
		if sh := ShardOf(a); sh < lastShard {
			t.Errorf("walk shard order regressed: %d after %d", sh, lastShard)
		} else {
			lastShard = sh
		}
		return true
	})
	if seen != len(addrs) {
		t.Errorf("walk visited %d, want %d", seen, len(addrs))
	}
	// Delete removes exactly the requested entries.
	for _, a := range addrs[:100] {
		if !m.Delete(a) {
			t.Fatalf("delete %v reported absent", a)
		}
		if m.Delete(a) {
			t.Fatalf("double delete %v reported present", a)
		}
	}
	if m.Len() != len(addrs)-100 {
		t.Errorf("len after delete %d", m.Len())
	}
	if _, ok := m.Get(addrs[0]); ok {
		t.Error("deleted entry still present")
	}
}

func TestShardedMapDeleteDuringWalk(t *testing.T) {
	m := NewShardedMap[int]()
	addrs := shardedTestAddrs(300)
	for i, a := range addrs {
		m.Put(a, i)
	}
	for sh := 0; sh < AddrShards; sh++ {
		m.WalkShard(sh, func(a Addr, v int) bool {
			if v%2 == 0 {
				m.DeleteInShard(sh, a)
			}
			return true
		})
	}
	want := 0
	for i := range addrs {
		if i%2 == 1 {
			want++
		}
	}
	if m.Len() != want {
		t.Errorf("len after walk-delete %d, want %d", m.Len(), want)
	}
	m.Walk(func(a Addr, v int) bool {
		if v%2 == 0 {
			t.Errorf("even entry %d survived", v)
		}
		return true
	})
}

func TestParallelShards(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, AddrShards + 5} {
		var hits [AddrShards]atomic.Int32
		ParallelShards(workers, func(sh int) {
			hits[sh].Add(1)
		})
		for sh := range hits {
			if got := hits[sh].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, sh, got)
			}
		}
	}
}
