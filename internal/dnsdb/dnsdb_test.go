package dnsdb

import (
	"testing"

	"hitlist6/internal/ip6"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Add(&Domain{
		Name: "Example.COM.",
		AAAA: []ip6.Addr{ip6.MustParseAddr("2600:9000:1::7")},
		NS:   []string{"ns1.example.com"},
		MX:   []string{"mail.example.com"},
	})
	r.AddHost("ns1.example.com", ip6.MustParseAddr("2600:9000:2::53"))
	r.AddHost("mail.example.com", ip6.MustParseAddr("2600:9000:3::25"))

	if r.NumDomains() != 1 {
		t.Fatalf("NumDomains: %d", r.NumDomains())
	}
	d, ok := r.Lookup("EXAMPLE.com")
	if !ok || d.Name != "example.com" {
		t.Fatalf("Lookup: %+v %v", d, ok)
	}
	if got := r.ResolveAAAA("example.com"); len(got) != 1 || got[0] != ip6.MustParseAddr("2600:9000:1::7") {
		t.Errorf("ResolveAAAA domain: %v", got)
	}
	if got := r.ResolveAAAA("ns1.example.com"); len(got) != 1 {
		t.Errorf("ResolveAAAA host: %v", got)
	}
	if got := r.ResolveAAAA("missing.example"); got != nil {
		t.Errorf("missing: %v", got)
	}
	if r.AllAAAA().Len() != 1 {
		t.Error("AllAAAA")
	}
	infra := r.InfraAAAA()
	if infra.Len() != 2 {
		t.Errorf("InfraAAAA: %d", infra.Len())
	}
}

func TestTopLists(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 10; i++ {
		d := &Domain{Name: domainName(i)}
		d.Ranks[Alexa] = 11 - i // reverse order
		if i <= 5 {
			d.Ranks[Majestic] = i
		}
		r.Add(d)
	}
	top3 := r.Top(Alexa, 3)
	if len(top3) != 3 {
		t.Fatalf("top3: %d", len(top3))
	}
	if top3[0].Ranks[Alexa] != 1 || top3[2].Ranks[Alexa] != 3 {
		t.Errorf("rank order: %d %d", top3[0].Ranks[Alexa], top3[2].Ranks[Alexa])
	}
	if r.ListLen(Majestic) != 5 || r.ListLen(Umbrella) != 0 {
		t.Errorf("list lens: %d %d", r.ListLen(Majestic), r.ListLen(Umbrella))
	}
	// Requesting more than available clamps.
	if len(r.Top(Majestic, 100)) != 5 {
		t.Error("clamp")
	}
	if Alexa.String() != "alexa" || Majestic.String() != "majestic" || Umbrella.String() != "umbrella" {
		t.Error("list names")
	}
}

func TestWalkAndReplace(t *testing.T) {
	r := NewRegistry()
	r.Add(&Domain{Name: "a.example"})
	r.Add(&Domain{Name: "b.example"})
	// Replacing does not duplicate.
	r.Add(&Domain{Name: "a.example", AAAA: []ip6.Addr{ip6.MustParseAddr("2001:db9::1")}})
	if r.NumDomains() != 2 {
		t.Fatalf("NumDomains: %d", r.NumDomains())
	}
	n := 0
	r.Walk(func(d *Domain) bool { n++; return true })
	if n != 2 {
		t.Errorf("walk: %d", n)
	}
	n = 0
	r.Walk(func(d *Domain) bool { n++; return false })
	if n != 1 {
		t.Errorf("walk stop: %d", n)
	}
	if d, _ := r.Lookup("a.example"); len(d.AAAA) != 1 {
		t.Error("replacement lost")
	}
}

func domainName(i int) string {
	return "site" + string(rune('a'+i)) + ".example"
}
