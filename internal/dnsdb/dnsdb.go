// Package dnsdb implements the synthetic DNS view the hitlist's input
// pipeline consumes: a registry of domains with AAAA, NS and MX records,
// and ranked top lists (Alexa/Majestic/Umbrella analogs).
//
// The paper's institution resolves >300 M domains (CZDS zones, CT logs,
// cc-TLDs, three top lists) to AAAA plus the AAAA of their NS and MX hosts.
// Here the registry is populated by the world generator so that resolution
// results land where the paper found them — notably inside CDN aliased
// prefixes (Section 5.2: 15 M domains in 5.2 k aliased prefixes).
package dnsdb

import (
	"sort"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
)

// TopList identifies one of the resolved rank lists.
type TopList uint8

// The three top lists the paper resolves.
const (
	Alexa TopList = iota
	Majestic
	Umbrella
	NumTopLists = 3
)

// String names the list.
func (l TopList) String() string {
	switch l {
	case Alexa:
		return "alexa"
	case Majestic:
		return "majestic"
	case Umbrella:
		return "umbrella"
	}
	return "unknown"
}

// Domain is one registered name.
type Domain struct {
	Name string
	AAAA []ip6.Addr
	// NS and MX name the serving hosts; their addresses live in the
	// registry's host table.
	NS []string
	MX []string
	// Ranks holds the 1-based rank on each top list (0 = unranked).
	Ranks [NumTopLists]int
}

// Registry stores domains and the addresses of infrastructure hosts.
type Registry struct {
	domains map[string]*Domain
	hosts   map[string][]ip6.Addr // NS/MX host name → AAAA
	// ranked[i] is sorted by rank for top-list queries.
	ranked [NumTopLists][]*Domain
	sorted bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		domains: make(map[string]*Domain),
		hosts:   make(map[string][]ip6.Addr),
	}
}

// Add registers a domain (replacing an existing entry of the same name).
func (r *Registry) Add(d *Domain) {
	d.Name = dnswire.NormalizeName(d.Name)
	if _, dup := r.domains[d.Name]; !dup {
		for i := 0; i < NumTopLists; i++ {
			if d.Ranks[i] > 0 {
				r.ranked[i] = append(r.ranked[i], d)
			}
		}
	}
	r.domains[d.Name] = d
	r.sorted = false
}

// AddHost registers the AAAA records of an NS/MX host.
func (r *Registry) AddHost(name string, addrs ...ip6.Addr) {
	name = dnswire.NormalizeName(name)
	r.hosts[name] = append(r.hosts[name], addrs...)
}

// Lookup returns the domain entry, if registered.
func (r *Registry) Lookup(name string) (*Domain, bool) {
	d, ok := r.domains[dnswire.NormalizeName(name)]
	return d, ok
}

// ResolveAAAA returns the AAAA records of a domain or infrastructure host.
func (r *Registry) ResolveAAAA(name string) []ip6.Addr {
	name = dnswire.NormalizeName(name)
	if d, ok := r.domains[name]; ok {
		return d.AAAA
	}
	return r.hosts[name]
}

// NumDomains returns the number of registered domains.
func (r *Registry) NumDomains() int { return len(r.domains) }

// Walk visits every domain in unspecified order; fn returning false stops.
func (r *Registry) Walk(fn func(*Domain) bool) {
	for _, d := range r.domains {
		if !fn(d) {
			return
		}
	}
}

// Top returns the n highest-ranked domains of a list, in rank order.
func (r *Registry) Top(list TopList, n int) []*Domain {
	if !r.sorted {
		for i := range r.ranked {
			li := i
			sort.Slice(r.ranked[li], func(a, b int) bool {
				return r.ranked[li][a].Ranks[li] < r.ranked[li][b].Ranks[li]
			})
		}
		r.sorted = true
	}
	l := r.ranked[list]
	if n > len(l) {
		n = len(l)
	}
	return l[:n]
}

// ListLen returns the size of one top list.
func (r *Registry) ListLen(list TopList) int { return len(r.ranked[list]) }

// AllAAAA returns the union of every domain's AAAA records — the direct
// resolution input the hitlist service already consumed before this work.
func (r *Registry) AllAAAA() ip6.Set {
	out := ip6.NewSet(len(r.domains))
	for _, d := range r.domains {
		out.AddSlice(d.AAAA)
	}
	return out
}

// InfraAAAA returns the union of NS/MX host addresses — the *new* input
// source Section 6 adds ("name server and mail exchanger domains were not
// explicitly included").
func (r *Registry) InfraAAAA() ip6.Set {
	out := ip6.NewSet(len(r.hosts))
	for _, addrs := range r.hosts {
		out.AddSlice(addrs)
	}
	return out
}
