package analysis

import (
	"strings"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

func testTable() *netmodel.ASTable {
	return netmodel.NewASTable([]*netmodel.AS{
		{ASN: 1, Name: "Big", Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:1::/32")}, AnnouncedFrom: []int{0}},
		{ASN: 2, Name: "Small", Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:2::/32")}, AnnouncedFrom: []int{0}},
	})
}

func TestByASAndCDF(t *testing.T) {
	set := ip6.NewSet(0)
	big := ip6.MustParsePrefix("2001:1::/32")
	small := ip6.MustParsePrefix("2001:2::/32")
	for i := uint64(0); i < 9; i++ {
		set.Add(big.NthAddr(i))
	}
	set.Add(small.NthAddr(0))
	set.Add(ip6.MustParseAddr("3fff::1")) // unrouted

	counts := ByAS(set, testTable())
	if len(counts) != 3 {
		t.Fatalf("counts: %+v", counts)
	}
	if counts[0].ASN != 1 || counts[0].Count != 9 {
		t.Errorf("top AS: %+v", counts[0])
	}
	if counts[0].Name != "Big" {
		t.Errorf("name: %q", counts[0].Name)
	}

	cdf := RankCDF(counts)
	if cdf.Total != 11 {
		t.Errorf("total: %d", cdf.Total)
	}
	if got := cdf.At(1); got < 0.81 || got > 0.82 {
		t.Errorf("At(1) = %v", got)
	}
	if cdf.At(3) != 1.0 {
		t.Errorf("At(3) = %v", cdf.At(3))
	}
	if cdf.At(99) != 1.0 || cdf.At(0) != 0 {
		t.Error("At clamping")
	}
	if cdf.RanksFor(0.5) != 1 || cdf.RanksFor(0.99) != 3 {
		t.Errorf("RanksFor: %d %d", cdf.RanksFor(0.5), cdf.RanksFor(0.99))
	}
	pts := cdf.SeriesPoints()
	if len(pts) == 0 || pts[len(pts)-1].Frac != 1.0 {
		t.Errorf("series: %+v", pts)
	}
}

// TestByASMemoizationExact: the per-prefix lookup memo must not change
// results when the table carries announcements longer than /48 (memo key
// widens to the longest announced length) — the CDN-specifics case.
func TestByASMemoizationExact(t *testing.T) {
	big := ip6.MustParsePrefix("2001:1::/32")
	// A /64 specific inside Big's /32, announced by a different AS: the
	// two origins share every bit down to /48, so a /48-keyed memo would
	// misattribute one of them.
	table := netmodel.NewASTable([]*netmodel.AS{
		{ASN: 1, Name: "Big", Announced: []ip6.Prefix{big}, AnnouncedFrom: []int{0}},
		{ASN: 3, Name: "CDN", Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:1::/64")}, AnnouncedFrom: []int{0}},
	})
	if got := table.MaxAnnouncedBits(); got != 64 {
		t.Fatalf("MaxAnnouncedBits = %d", got)
	}
	set := ip6.NewSet(0)
	for i := uint64(0); i < 5; i++ {
		set.Add(ip6.MustParsePrefix("2001:1::/64").NthAddr(i)) // CDN specific
	}
	for i := uint64(0); i < 7; i++ {
		set.Add(ip6.MustParsePrefix("2001:1:0:1::/64").NthAddr(i)) // Big, same /48 as the specific
	}
	counts := ByAS(set, table)
	if len(counts) != 2 {
		t.Fatalf("counts: %+v", counts)
	}
	if counts[0].ASN != 1 || counts[0].Count != 7 || counts[1].ASN != 3 || counts[1].Count != 5 {
		t.Errorf("attribution: %+v", counts)
	}
}

// benchTable builds a BGP-shaped table: announcements spread over many
// prefix lengths, which is exactly what makes longest-prefix matching
// expensive (one map probe per populated length, all of them for
// unrouted addresses).
func benchTable(b *testing.B) (*netmodel.ASTable, ip6.Set) {
	b.Helper()
	var ases []*netmodel.AS
	lens := []int{20, 24, 28, 32, 36, 40, 44, 48}
	asn := 1
	for i, bits := range lens {
		for j := 0; j < 24; j++ {
			p := ip6.PrefixFrom(ip6.AddrFromUint64s(0x2001_0000_0000_0000+uint64(i)<<40+uint64(j)<<(uint(128-bits)-64), 0), bits)
			ases = append(ases, &netmodel.AS{
				ASN: asn, Name: "AS", Announced: []ip6.Prefix{p}, AnnouncedFrom: []int{0},
			})
			asn++
		}
	}
	table := netmodel.NewASTable(ases)
	set := ip6.NewSet(0)
	// Dense hitlist-style population: many addresses per routed prefix,
	// plus an unrouted tail that probes every populated length.
	n := 0
	for _, as := range ases {
		p := as.Announced[0]
		for i := uint64(0); i < 400; i++ {
			set.Add(p.NthAddr(i * 131))
			n++
		}
	}
	for i := uint64(0); i < 20_000; i++ {
		set.Add(ip6.MustParsePrefix("3fff::/20").NthAddr(i * 77)) // unrouted
	}
	return table, set
}

// BenchmarkByAS measures per-AS aggregation over a BGP-shaped table —
// the memoization target: one longest-prefix lookup per /48 instead of
// one per address.
func BenchmarkByAS(b *testing.B) {
	table, set := benchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := ByAS(set, table)
		if len(counts) < 100 {
			b.Fatalf("counts: %d", len(counts))
		}
	}
}

func TestOverlap(t *testing.T) {
	a := ip6.SetOf(ip6.MustParseAddr("2001::1"), ip6.MustParseAddr("2001::2"))
	b := ip6.SetOf(ip6.MustParseAddr("2001::2"), ip6.MustParseAddr("2001::3"), ip6.MustParseAddr("2001::4"))
	m := Overlap([]string{"a", "b"}, []ip6.Set{a, b})
	if m[0][1] != 50 {
		t.Errorf("a∩b/a: %v", m[0][1])
	}
	if m[1][0] < 33.3 || m[1][0] > 33.4 {
		t.Errorf("a∩b/b: %v", m[1][0])
	}
	if m[0][0] != 0 || m[1][1] != 0 {
		t.Error("diagonal must stay zero")
	}
	// Empty set row is all zeros, no panic.
	m = Overlap([]string{"a", "e"}, []ip6.Set{a, ip6.NewSet(0)})
	if m[1][0] != 0 {
		t.Error("empty set row")
	}
}

func TestPrefixLenCDF(t *testing.T) {
	cdf := PrefixLenCDF([]ip6.Prefix{
		ip6.MustParsePrefix("2001::/32"),
		ip6.MustParsePrefix("2001:1::/64"),
		ip6.MustParsePrefix("2001:2::/64"),
		ip6.MustParsePrefix("2001:3::/96"),
	})
	if cdf[31] != 0 || cdf[32] != 0.25 || cdf[63] != 0.25 {
		t.Errorf("low lengths: %v %v %v", cdf[31], cdf[32], cdf[63])
	}
	if cdf[64] != 0.75 || cdf[128] != 1.0 {
		t.Errorf("high lengths: %v %v", cdf[64], cdf[128])
	}
	empty := PrefixLenCDF(nil)
	if empty[128] != 0 {
		t.Error("empty CDF")
	}
}

func TestHumanize(t *testing.T) {
	cases := map[int]string{
		31:         "31",
		1800:       "1.8 k",
		1000:       "1 k",
		550600:     "550.6 k",
		3200000:    "3.2 M",
		1000000:    "1 M",
		2500000000: "2.5 G",
	}
	for n, want := range cases {
		if got := Humanize(n); got != want {
			t.Errorf("Humanize(%d) = %q, want %q", n, got, want)
		}
	}
	if Pct(1, 4) != "25.0 %" || Pct(1, 0) != "n/a" {
		t.Error("Pct")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Year", "Addresses")
	tb.Row("2018", 1800000)
	tb.Row("2022", "3.2 M")
	out := tb.String()
	if !strings.Contains(out, "Year") || !strings.Contains(out, "3.2 M") {
		t.Errorf("render: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("lines: %d", len(lines))
	}
}

func TestEUI64Analysis(t *testing.T) {
	set := ip6.NewSet(0)
	mac1 := ip6.MAC{0x00, 0x1e, 0x73, 1, 2, 3}
	mac2 := ip6.MAC{0x28, 0x6f, 0x7f, 9, 9, 9}
	// mac1 under three prefixes (rotation), mac2 once, plus non-EUI.
	for i, ps := range []string{"2003:1::/64", "2003:2::/64", "2003:3::/64"} {
		set.Add(ip6.AddrFromMAC(ip6.MustParsePrefix(ps), mac1))
		_ = i
	}
	set.Add(ip6.AddrFromMAC(ip6.MustParsePrefix("2003:4::/64"), mac2))
	set.Add(ip6.MustParseAddr("2001::1"))

	st := EUI64Analysis(set)
	if st.Total != 5 || st.EUI64 != 4 {
		t.Errorf("totals: %+v", st)
	}
	if st.DistinctMACs != 2 || st.TopMACAddrs != 3 || st.SingleUseMACs != 1 {
		t.Errorf("macs: %+v", st)
	}
	if st.TopOUI != [3]byte{0x00, 0x1e, 0x73} {
		t.Errorf("top OUI: %v", st.TopOUI)
	}
}
