// Package analysis provides the statistical reductions the evaluation
// figures and tables are built from: per-AS aggregation, rank CDFs
// (Figures 2, 8, 9), overlap matrices (Figures 7, 10), prefix-length CDFs
// (Figure 5), and text rendering helpers for the experiment harness.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// ASCount is one AS with an address count.
type ASCount struct {
	ASN   int
	Name  string
	Count int
}

// ByAS aggregates an address set per origin AS. Unrouted addresses land
// under ASN 0.
//
// Longest-prefix lookups dominate on large sets, so they are memoized
// per prefix: two addresses sharing their first K bits — K being the
// table's longest announced prefix length, floored at /48 — always
// resolve to the same origin (or both to none), so each K-prefix is
// looked up once. This is exact, not an aggregation shortcut; tables
// announcing prefixes longer than /64 fall back to per-address lookups.
func ByAS(set ip6.Set, table *netmodel.ASTable) []ASCount {
	type asAgg struct {
		name  string
		count int
	}
	counts := make(map[int]*asAgg)
	memoBits := table.MaxAnnouncedBits()
	if memoBits < 48 {
		memoBits = 48
	}
	var memo map[ip6.Addr]int // masked K-prefix address → ASN (0 = unrouted)
	names := map[int]string{0: "unrouted"}
	if memoBits <= 64 {
		memo = make(map[ip6.Addr]int)
	}
	for a := range set {
		asn := 0
		if memo != nil {
			key := ip6.PrefixFrom(a, memoBits).Addr()
			cached, ok := memo[key]
			if !ok {
				if as := table.Lookup(a); as != nil {
					cached = as.ASN
					names[as.ASN] = as.Name
				}
				memo[key] = cached
			}
			asn = cached
		} else if as := table.Lookup(a); as != nil {
			asn = as.ASN
			names[as.ASN] = as.Name
		}
		c := counts[asn]
		if c == nil {
			c = &asAgg{name: names[asn]}
			counts[asn] = c
		}
		c.count++
	}
	out := make([]ASCount, 0, len(counts))
	for asn, c := range counts {
		out = append(out, ASCount{ASN: asn, Name: c.name, Count: c.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// CDF is a cumulative distribution over ranked counts: Y[i] is the
// cumulative fraction covered by the top i+1 ranks.
type CDF struct {
	Total int
	Y     []float64
}

// RankCDF builds the AS-rank CDF (the paper's log-x CDF plots).
func RankCDF(counts []ASCount) CDF {
	total := 0
	for _, c := range counts {
		total += c.Count
	}
	cdf := CDF{Total: total, Y: make([]float64, len(counts))}
	acc := 0
	for i, c := range counts {
		acc += c.Count
		cdf.Y[i] = float64(acc) / float64(total)
	}
	return cdf
}

// At returns the cumulative fraction covered by the top-k ranks.
func (c CDF) At(k int) float64 {
	if len(c.Y) == 0 || k <= 0 {
		return 0
	}
	if k > len(c.Y) {
		k = len(c.Y)
	}
	return c.Y[k-1]
}

// RanksFor returns the number of top ranks needed to cover fraction f.
func (c CDF) RanksFor(f float64) int {
	for i, y := range c.Y {
		if y >= f {
			return i + 1
		}
	}
	return len(c.Y)
}

// SeriesPoints renders a CDF at log-spaced ranks (1, 2, 5, 10, …),
// matching the log x-axis of the paper's plots.
func (c CDF) SeriesPoints() []struct {
	Rank int
	Frac float64
} {
	var out []struct {
		Rank int
		Frac float64
	}
	for _, r := range []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000} {
		if r > len(c.Y) {
			break
		}
		out = append(out, struct {
			Rank int
			Frac float64
		}{r, c.At(r)})
	}
	if n := len(c.Y); n > 0 {
		out = append(out, struct {
			Rank int
			Frac float64
		}{n, 1.0})
	}
	return out
}

// Overlap computes the row-normalized overlap matrix of Figures 7 and 10:
// cell [i][j] = |set_i ∩ set_j| / |set_i| × 100.
func Overlap(names []string, sets []ip6.Set) [][]float64 {
	n := len(sets)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i == j || sets[i].Len() == 0 {
				continue
			}
			out[i][j] = 100 * float64(sets[i].IntersectCount(sets[j])) / float64(sets[i].Len())
		}
	}
	return out
}

// OverlapSorted is Overlap over frozen sorted shard sets: every cell is a
// pair of per-shard merge walks instead of hashing one set against
// another, and no flat set copies are ever materialized. Intersections
// are symmetric, so each pair is walked once and normalized per row.
func OverlapSorted(names []string, sets []*ip6.SortedShardSet) [][]float64 {
	n := len(sets)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			common := sets[i].IntersectCount(sets[j])
			if sets[i].Len() > 0 {
				out[i][j] = 100 * float64(common) / float64(sets[i].Len())
			}
			if sets[j].Len() > 0 {
				out[j][i] = 100 * float64(common) / float64(sets[j].Len())
			}
		}
	}
	return out
}

// PrefixLenCDF computes the distribution of prefix lengths (Figure 5) as
// cumulative fractions per length 0..128.
func PrefixLenCDF(prefixes []ip6.Prefix) []float64 {
	out := make([]float64, 129)
	if len(prefixes) == 0 {
		return out
	}
	for _, p := range prefixes {
		out[p.Bits()]++
	}
	acc := 0.0
	for i := range out {
		acc += out[i]
		out[i] = acc / float64(len(prefixes))
	}
	return out
}

// Humanize renders a count the way the paper does: 1.8 M, 550.6 k, 31.
func Humanize(n int) string {
	switch {
	case n >= 1_000_000_000:
		return trimZero(fmt.Sprintf("%.1f G", float64(n)/1e9))
	case n >= 1_000_000:
		return trimZero(fmt.Sprintf("%.1f M", float64(n)/1e6))
	case n >= 1_000:
		return trimZero(fmt.Sprintf("%.1f k", float64(n)/1e3))
	}
	return fmt.Sprintf("%d", n)
}

func trimZero(s string) string {
	return strings.Replace(s, ".0 ", " ", 1)
}

// Pct formats a fraction as a percentage.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f %%", 100*float64(num)/float64(den))
}

// Table renders aligned text tables for the harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with a header row.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are stringified with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// EUI64Stats summarizes the EUI-64 composition of an address set
// (Section 4.1's input-bias analysis).
type EUI64Stats struct {
	Total        int
	EUI64        int
	DistinctMACs int
	// TopMACAddrs is how many addresses the most frequent MAC appears in.
	TopMACAddrs int
	// SingleUseMACs counts MACs seen in exactly one address.
	SingleUseMACs int
	TopOUI        [3]byte
}

// EUI64Analysis computes EUI-64 statistics over a set.
func EUI64Analysis(set ip6.Set) EUI64Stats {
	st := EUI64Stats{Total: set.Len()}
	macCount := make(map[ip6.MAC]int)
	for a := range set {
		if mac, ok := a.EUI64MAC(); ok {
			st.EUI64++
			macCount[mac]++
		}
	}
	st.DistinctMACs = len(macCount)
	var topMAC ip6.MAC
	for mac, c := range macCount {
		if c > st.TopMACAddrs {
			st.TopMACAddrs = c
			topMAC = mac
		}
		if c == 1 {
			st.SingleUseMACs++
		}
	}
	st.TopOUI = topMAC.OUI()
	return st
}
