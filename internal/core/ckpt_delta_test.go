package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hitlist6/internal/ckpt"
)

// parkedChainDirs lists the parked delta-parent directories next to a
// checkpoint head (dir.p<scanIndex>), excluding the ".prev" fallback.
func parkedChainDirs(t *testing.T, ckdir string) []string {
	t.Helper()
	parked, err := filepath.Glob(ckdir + ".p[0-9]*")
	if err != nil {
		t.Fatal(err)
	}
	return parked
}

// TestResumeFromDeltaChain is the delta-durability acceptance gate: with
// compaction disabled every checkpoint after the first is a delta, so
// interrupting after k scans leaves a k-1-deep parent chain — and a
// Resume through that chain, continued to the end of the timeline, is
// pinned to the same goldens every full-checkpoint run is.
func TestResumeFromDeltaChain(t *testing.T) {
	days := weekly(0, 196)
	const k = 10
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	mkCfg := func() Config {
		cfg := ckptTinyCfg(ckdir)
		cfg.CheckpointFullEvery = 1 << 20 // never compact within this run
		return cfg
	}

	n, feeds := tinyWorld(t)
	s := NewService(mkCfg(), n, feeds, nil)
	runDays(t, s, days[:k])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := ckpt.ReadManifest(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth != k-1 || m.Parent == "" {
		t.Fatalf("head manifest depth=%d parent=%q, want depth=%d and a parent ref", m.Depth, m.Parent, k-1)
	}
	if parked := parkedChainDirs(t, ckdir); len(parked) != k-1 {
		t.Fatalf("parked chain dirs = %v, want %d of them", parked, k-1)
	}

	n2, feeds2 := tinyWorld(t)
	s2, err := Resume(ckdir, mkCfg(), n2, feeds2, nil)
	if err != nil {
		t.Fatalf("resume through delta chain: %v", err)
	}
	if got := len(s2.Records()); got != k {
		t.Fatalf("resumed with %d records, want %d", got, k)
	}
	runDays(t, s2, days[k:])
	compareGolden(t, "reference_tiny.json", goldenFrom(s2.Records(), s2.Snapshots()), "resume from delta chain")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaChainCompaction pins the bounded-depth contract: with
// CheckpointFullEvery=4 the chain depth cycles 0,1,2,3,0,… — every
// fourth checkpoint is a full rewrite that also prunes the parked
// parents — and a resume from a mid-chain head still matches the
// goldens.
func TestDeltaChainCompaction(t *testing.T) {
	days := weekly(0, 196)
	const k = 6 // interrupt mid-chain: depth (6-1)%4 = 1
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	mkCfg := func() Config {
		cfg := ckptTinyCfg(ckdir)
		cfg.CheckpointFullEvery = 4
		return cfg
	}

	n, feeds := tinyWorld(t)
	s := NewService(mkCfg(), n, feeds, nil)
	for i, d := range days[:k] {
		runDays(t, s, []int{d})
		m, err := ckpt.ReadManifest(ckdir)
		if err != nil {
			t.Fatal(err)
		}
		wantDepth := i % 4 // checkpoint i+1: full at 1, 5, 9, …
		if m.Depth != wantDepth {
			t.Fatalf("after scan %d: chain depth %d, want %d", i+1, m.Depth, wantDepth)
		}
		if parked := parkedChainDirs(t, ckdir); len(parked) != wantDepth {
			t.Fatalf("after scan %d: parked dirs %v, want %d (full rewrites must prune the chain)",
				i+1, parked, wantDepth)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	n2, feeds2 := tinyWorld(t)
	s2, err := Resume(ckdir, mkCfg(), n2, feeds2, nil)
	if err != nil {
		t.Fatalf("resume mid-chain: %v", err)
	}
	runDays(t, s2, days[k:])
	compareGolden(t, "reference_tiny.json", goldenFrom(s2.Records(), s2.Snapshots()), "resume after compaction")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// deltaChainFixture runs k scans with compaction disabled and returns
// the checkpoint dir plus its parked parent dirs — a head whose restore
// must walk the whole chain.
func deltaChainFixture(t *testing.T, k int) (ckdir string, parked []string) {
	t.Helper()
	ckdir = filepath.Join(t.TempDir(), "ckpt")
	cfg := ckptTinyCfg(ckdir)
	cfg.CheckpointFullEvery = 1 << 20
	n, feeds := tinyWorld(t)
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, weekly(0, 196)[:k])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	parked = parkedChainDirs(t, ckdir)
	if len(parked) != k-1 {
		t.Fatalf("fixture: parked dirs = %v, want %d", parked, k-1)
	}
	return ckdir, parked
}

// TestResumeRefusesCorruptDeltaParent: a bit-flip anywhere in a parked
// chain parent must make Resume refuse with ckpt.ErrCorrupt — chain
// levels are CRC-verified exactly like the head.
func TestResumeRefusesCorruptDeltaParent(t *testing.T) {
	ckdir, parked := deltaChainFixture(t, 5)

	path := filepath.Join(parked[0], ckptActiveFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := ckptTinyCfg(ckdir)
	cfg.CheckpointFullEvery = 1 << 20
	n, feeds := tinyWorld(t)
	_, err = Resume(ckdir, cfg, n, feeds, nil)
	if !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("resume with bit-flipped chain parent: err = %v, want ErrCorrupt", err)
	}
}

// TestResumeRefusesMissingDeltaParent: a deleted chain parent must make
// Resume refuse with ckpt.ErrCorrupt, never half-load from the
// surviving levels.
func TestResumeRefusesMissingDeltaParent(t *testing.T) {
	ckdir, parked := deltaChainFixture(t, 5)
	if err := os.RemoveAll(parked[1]); err != nil {
		t.Fatal(err)
	}

	cfg := ckptTinyCfg(ckdir)
	cfg.CheckpointFullEvery = 1 << 20
	n, feeds := tinyWorld(t)
	_, err := Resume(ckdir, cfg, n, feeds, nil)
	if !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("resume with missing chain parent: err = %v, want ErrCorrupt", err)
	}
}
