// Package core implements the IPv6 Hitlist service pipeline — the paper's
// Figure 1 — as an operable library:
//
//	input feeds → blocklist filter → GFW filter → aliased-prefix filter
//	→ 30-day-unresponsive filter → ZMap-style scans on five protocols
//
// The service accumulates candidate addresses from its feeds, schedules
// scans over simulated days, runs the multi-level aliased prefix detection,
// classifies Great-Firewall injections from response evidence, applies the
// cumulative GFW input filter the moment it is "deployed" (February 2022 in
// the paper), and records per-scan series (responsiveness per protocol,
// published vs cleaned, churn) plus full snapshots at chosen days. Those
// records and snapshots are everything the evaluation figures and tables
// are derived from.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hitlist6/internal/apd"
	"hitlist6/internal/gfw"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
	"hitlist6/internal/sources"
)

// Config parameterizes the service.
type Config struct {
	// Seed namespaces the service's internal randomness (APD slot draws
	// come from the scan day, so this mainly affects sampling).
	Seed uint64

	// Protocols probed each scan; defaults to all five.
	Protocols []netmodel.Protocol

	// UnresponsiveDays is the 30-day filter horizon.
	UnresponsiveDays int

	// GFWFilterFromDay is the deployment day of the GFW filter
	// (netmodel.Forever = never, reproducing the pre-2022 service).
	GFWFilterFromDay int

	// APDEveryScans runs alias detection every N-th scan (min 1).
	APDEveryScans int

	// APDMaxNewCandidates bounds how many newly seen /64s are tested per
	// APD round (the rest queue up).
	APDMaxNewCandidates int

	// RetainUnresponsive keeps the set of addresses evicted by the
	// 30-day filter (needed by the Section 6 re-scan experiment; costs
	// memory).
	RetainUnresponsive bool

	// SnapshotDays requests full responsive-set snapshots at the first
	// scan at or after each listed day.
	SnapshotDays []int

	// ScanWorkers overrides the scanner's probe concurrency (0 means
	// GOMAXPROCS). Scan records and snapshots are bit-identical for any
	// value — the engine shards deterministically by address hash.
	ScanWorkers int

	// ScanBatchSize overrides the streamed batch size (0 means the scan
	// package default). A throughput knob only; outputs do not depend on
	// it.
	ScanBatchSize int
}

// DefaultConfig mirrors the real service.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                seed,
		Protocols:           []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53},
		UnresponsiveDays:    30,
		GFWFilterFromDay:    netmodel.Forever,
		APDEveryScans:       1,
		APDMaxNewCandidates: 4096,
	}
}

// targetState tracks one address in the active scan window.
type targetState struct {
	firstDay       int
	lastSuccessDay int // -1 until first success
}

// ScanRecord is the per-scan output row (the Figure 3/4 series).
type ScanRecord struct {
	Index int
	Day   int

	// NewInput is the count of never-before-seen candidate addresses.
	NewInput int
	// BlockedInput / GFWFilteredInput / AliasedInput count new input
	// removed by the respective filters.
	BlockedInput     int
	GFWFilteredInput int
	AliasedInput     int

	// ScannedTargets is the size of the scan set after all filters.
	ScannedTargets int

	// ResponsiveRaw is the published view: any response counts,
	// including GFW-injected DNS answers.
	ResponsiveRaw [netmodel.NumProtocols]int
	// ResponsiveClean removes responses classified as injected.
	ResponsiveClean [netmodel.NumProtocols]int
	// TotalRaw/TotalClean count addresses responsive to ≥1 protocol.
	TotalRaw   int
	TotalClean int

	// InjectedDNS counts results classified as GFW injections this scan.
	InjectedDNS int

	// Churn versus the previous scan (clean view): first-ever responders,
	// returning responders, and addresses that went unresponsive.
	FirstResp int
	RespAgain int
	Unresp    int

	// Evicted counts targets dropped by the 30-day filter this scan.
	Evicted int

	// AliasedPrefixes is the current aliased-prefix count.
	AliasedPrefixes int

	// ProbesSent counts scanner probes (scan + APD).
	ProbesSent uint64
}

// Snapshot is a full state capture at one scan.
type Snapshot struct {
	Day           int
	Responsive    map[netmodel.Protocol]ip6.Set // clean view
	ResponsiveAny ip6.Set
	Aliased       []ip6.Prefix
}

// Service is the running pipeline.
type Service struct {
	cfg      Config
	net      *netmodel.Network
	scanner  *scan.Scanner
	detector *apd.Detector
	feeds    []*sources.Feed
	block    *ip6.PrefixSet

	scanIndex int

	// Cumulative input accounting.
	inputSeen    ip6.Set
	perASInput   map[int]*ASInput
	inputTotal   int
	blockedTotal int
	gfwTotal     int
	aliasedTotal int
	evictedTotal int
	gfwDeployed  bool
	gfwInputDrop ip6.Set // the cumulative "134 M" filter once deployed
	unresponsive ip6.Set // evicted addresses (if retained)
	active       map[ip6.Addr]*targetState
	aliased      *ip6.PrefixSet
	pendingAPD64 []ip6.Prefix // newly seen /64s queued for APD
	seen64       map[ip6.Prefix]struct{}
	tracker      *gfw.Tracker
	everResp     [netmodel.NumProtocols]*ip6.ShardedSet
	everRespAny  *ip6.ShardedSet
	prevRespAny  *ip6.ShardedSet
	lastClean    map[netmodel.Protocol]*ip6.ShardedSet
	inputByFeed  map[string]int

	records   []*ScanRecord
	snapshots map[int]*Snapshot
	snapQueue []int
}

// ASInput aggregates cumulative input per AS (Figure 2's ingredients).
type ASInput struct {
	Total   int
	Aliased int
	GFW     int
}

// NewService assembles a pipeline over a world.
func NewService(cfg Config, net *netmodel.Network, feeds []*sources.Feed, blocklist *ip6.PrefixSet) *Service {
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	}
	if cfg.UnresponsiveDays <= 0 {
		cfg.UnresponsiveDays = 30
	}
	if cfg.APDEveryScans <= 0 {
		cfg.APDEveryScans = 1
	}
	if cfg.APDMaxNewCandidates <= 0 {
		cfg.APDMaxNewCandidates = 4096
	}
	if blocklist == nil {
		blocklist = ip6.NewPrefixSet()
	}
	scfg := scan.DefaultConfig(cfg.Seed)
	scfg.Workers = cfg.ScanWorkers
	scfg.BatchSize = cfg.ScanBatchSize
	s := &Service{
		cfg:          cfg,
		net:          net,
		scanner:      scan.New(net, scfg),
		feeds:        feeds,
		block:        blocklist,
		inputSeen:    ip6.NewSet(0),
		perASInput:   make(map[int]*ASInput),
		gfwInputDrop: ip6.NewSet(0),
		unresponsive: ip6.NewSet(0),
		active:       make(map[ip6.Addr]*targetState),
		aliased:      ip6.NewPrefixSet(),
		seen64:       make(map[ip6.Prefix]struct{}),
		tracker:      gfw.NewTracker(),
		everRespAny:  ip6.NewShardedSet(),
		prevRespAny:  ip6.NewShardedSet(),
		inputByFeed:  make(map[string]int),
		snapshots:    make(map[int]*Snapshot),
		snapQueue:    append([]int(nil), cfg.SnapshotDays...),
	}
	for i := range s.everResp {
		s.everResp[i] = ip6.NewShardedSet()
	}
	s.detector = apd.NewDetector(s.scanner, apd.DefaultConfig())
	return s
}

// Scanner exposes the service's scanner (for auxiliary experiments that
// must share its configuration and vantage point).
func (s *Service) Scanner() *scan.Scanner { return s.scanner }

// AliasedPrefixes returns the current aliased prefix set.
func (s *Service) AliasedPrefixes() *ip6.PrefixSet { return s.aliased }

// Records returns all per-scan records so far.
func (s *Service) Records() []*ScanRecord { return s.records }

// Snapshots returns the requested snapshots, keyed by requested day.
func (s *Service) Snapshots() map[int]*Snapshot { return s.snapshots }

// Tracker exposes cumulative GFW evidence.
func (s *Service) Tracker() *gfw.Tracker { return s.tracker }

// UnresponsivePool returns the 30-day-evicted addresses (empty unless
// Config.RetainUnresponsive).
func (s *Service) UnresponsivePool() ip6.Set { return s.unresponsive }

// InputByFeed returns cumulative new-input counts per feed name.
func (s *Service) InputByFeed() map[string]int { return s.inputByFeed }

// InputSeen returns every address ever accumulated as input (the
// cumulative hitlist input, before filters). Treat as read-only.
func (s *Service) InputSeen() ip6.Set { return s.inputSeen }

// Network returns the world the service operates on.
func (s *Service) Network() *netmodel.Network { return s.net }

// PerASInput returns cumulative input accounting per ASN.
func (s *Service) PerASInput() map[int]*ASInput { return s.perASInput }

// EverResponsive returns the cumulative clean responsive set for a
// protocol, merged from its shards into a fresh flat set. Callers that
// only need the cardinality should use EverResponsiveLen.
func (s *Service) EverResponsive(p netmodel.Protocol) ip6.Set { return s.everResp[p].Merge() }

// EverResponsiveLen returns the size of the cumulative clean responsive
// set for a protocol without materializing a merged copy.
func (s *Service) EverResponsiveLen(p netmodel.Protocol) int { return s.everResp[p].Len() }

// EverResponsiveAny returns addresses ever responsive to ≥1 protocol,
// merged from its shards into a fresh flat set. Callers that only need
// the cardinality should use EverResponsiveAnyLen.
func (s *Service) EverResponsiveAny() ip6.Set { return s.everRespAny.Merge() }

// EverResponsiveAnyLen returns the size of the ever-responsive-any set
// without materializing a merged copy.
func (s *Service) EverResponsiveAnyLen() int { return s.everRespAny.Len() }

// Funnel summarizes the cumulative pipeline (Figure 1's numbers).
type Funnel struct {
	Input        int
	Blocked      int
	GFWFiltered  int
	AliasedInput int
	Evicted      int
	ActiveScan   int
	Responsive   int
}

// Funnel returns the cumulative funnel counts.
func (s *Service) Funnel() Funnel {
	resp := 0
	if len(s.records) > 0 {
		resp = s.records[len(s.records)-1].TotalClean
	}
	return Funnel{
		Input:        s.inputTotal,
		Blocked:      s.blockedTotal,
		GFWFiltered:  s.gfwTotal,
		AliasedInput: s.aliasedTotal,
		Evicted:      s.evictedTotal,
		ActiveScan:   len(s.active),
		Responsive:   resp,
	}
}

// RunScan executes one full pipeline iteration at the given day.
func (s *Service) RunScan(ctx context.Context, day int) (*ScanRecord, error) {
	rec := &ScanRecord{Index: s.scanIndex, Day: day}

	// 1. Input accumulation.
	collected, err := sources.Drain(ctx, s.feeds, day)
	if err != nil {
		return nil, fmt.Errorf("core: draining feeds: %w", err)
	}
	if err := s.ingest(collected, day, rec); err != nil {
		return nil, err
	}

	// 2. GFW cumulative filter deployment (one-time event).
	if !s.gfwDeployed && day >= s.cfg.GFWFilterFromDay {
		s.deployGFWFilter(rec)
	}

	// 3. Aliased prefix detection (before the scan, as in the pipeline).
	if s.scanIndex%s.cfg.APDEveryScans == 0 {
		if err := s.runAPD(ctx, day, rec); err != nil {
			return nil, err
		}
	}
	rec.AliasedPrefixes = s.aliased.Len()

	// 4. 30-day filter: build the scan set, evicting stale targets.
	targets := s.buildScanSet(day, rec)
	rec.ScannedTargets = len(targets)

	// 5+6. The scan, streamed: batches are classified and folded into
	// per-shard accumulators concurrently as they complete — the full
	// targets × protocols result slice is never materialized — then the
	// accumulators merge in canonical shard order.
	digests := make([]*shardDigest, ip6.AddrShards)
	stats, err := s.scanner.Stream(ctx, targets, s.cfg.Protocols, day, s.digestSink(digests))
	if err != nil {
		return nil, fmt.Errorf("core: scanning: %w", err)
	}
	rec.ProbesSent += stats.ProbesSent
	s.finalizeDigest(digests, day, rec)

	// 7. Snapshots.
	s.maybeSnapshot(day)

	s.records = append(s.records, rec)
	s.scanIndex++
	return rec, nil
}

// ingest dedups, filters and admits new input.
func (s *Service) ingest(collected map[string][]ip6.Addr, day int, rec *ScanRecord) error {
	for feed, addrs := range collected {
		for _, a := range addrs {
			if !a.IsGlobalUnicast() {
				continue
			}
			if !s.inputSeen.Add(a) {
				continue // already known (or already evicted once)
			}
			rec.NewInput++
			s.inputTotal++
			s.inputByFeed[feed]++

			asn := 0
			if as := s.net.AS.Lookup(a); as != nil {
				asn = as.ASN
			}
			ai := s.perASInput[asn]
			if ai == nil {
				ai = &ASInput{}
				s.perASInput[asn] = ai
			}
			ai.Total++

			// Blocklist filter.
			if s.block.Contains(a) {
				rec.BlockedInput++
				s.blockedTotal++
				continue
			}
			// GFW input filter (active only once deployed).
			if s.gfwDeployed && s.gfwInputDrop.Has(a) {
				rec.GFWFilteredInput++
				s.gfwTotal++
				ai.GFW++
				continue
			}
			// Aliased prefix filter.
			if s.aliased.Contains(a) {
				rec.AliasedInput++
				s.aliasedTotal++
				ai.Aliased++
				continue
			}
			// Track the /64 for alias detection.
			p64 := ip6.Slash64(a)
			if _, ok := s.seen64[p64]; !ok {
				s.seen64[p64] = struct{}{}
				s.pendingAPD64 = append(s.pendingAPD64, p64)
			}
			s.active[a] = &targetState{firstDay: day, lastSuccessDay: -1}
		}
	}
	return nil
}

// deployGFWFilter materializes the cumulative injected-only list and
// removes it from the active window — the paper's one-time cleanup of
// 134 M addresses in February 2022.
func (s *Service) deployGFWFilter(rec *ScanRecord) {
	s.gfwDeployed = true
	s.gfwInputDrop = s.tracker.InjectedOnly()
	for a := range s.gfwInputDrop {
		if _, ok := s.active[a]; ok {
			delete(s.active, a)
			rec.GFWFilteredInput++
			s.gfwTotal++
			asn := 0
			if as := s.net.AS.Lookup(a); as != nil {
				asn = as.ASN
			}
			if ai := s.perASInput[asn]; ai != nil {
				ai.GFW++
			}
		}
	}
}

// runAPD tests BGP prefixes plus the queued new /64s and applies the
// aliased filter to the active window.
func (s *Service) runAPD(ctx context.Context, day int, rec *ScanRecord) error {
	var candidates []ip6.Prefix
	s.net.AS.WalkPrefixes(func(p ip6.Prefix, as *netmodel.AS) bool {
		if p.Bits()+4 <= 128 {
			// Only prefixes already announced at this day.
			for i, ap := range as.Announced {
				if ap == p && as.AnnouncedFrom[i] <= day {
					candidates = append(candidates, p)
					break
				}
			}
		}
		return true
	})
	// Queued /64s already covered by a known shorter aliased prefix need
	// no testing; they would only re-discover the same region.
	pending := s.pendingAPD64[:0]
	taken := 0
	for _, p64 := range s.pendingAPD64 {
		if s.coveredByAliased(p64) {
			continue
		}
		if taken < s.cfg.APDMaxNewCandidates {
			candidates = append(candidates, p64)
			taken++
			continue
		}
		pending = append(pending, p64)
	}
	s.pendingAPD64 = pending

	res, err := s.detector.Run(ctx, candidates, day)
	if err != nil {
		return fmt.Errorf("core: alias detection: %w", err)
	}
	rec.ProbesSent += uint64(res.Probes)
	// Add shortest-first so a detected /32 subsumes /64s found in the
	// same round.
	detected := res.Aliased.Prefixes()
	sort.Slice(detected, func(i, j int) bool { return detected[i].Bits() < detected[j].Bits() })
	for _, p := range detected {
		if !s.coveredByAliased(p) {
			s.aliased.Add(p)
		}
	}

	// Newly aliased prefixes purge matching active targets.
	for a := range s.active {
		if s.aliased.Contains(a) {
			delete(s.active, a)
			rec.AliasedInput++
			s.aliasedTotal++
			asn := 0
			if as := s.net.AS.Lookup(a); as != nil {
				asn = as.ASN
			}
			ai := s.perASInput[asn]
			if ai == nil {
				ai = &ASInput{}
				s.perASInput[asn] = ai
			}
			ai.Aliased++
		}
	}
	return nil
}

// coveredByAliased reports whether a shorter (or equal) aliased prefix
// already covers p.
func (s *Service) coveredByAliased(p ip6.Prefix) bool {
	m, ok := s.aliased.Match(p.Addr())
	return ok && m.Bits() <= p.Bits()
}

// buildScanSet applies the 30-day filter and returns the scan targets.
func (s *Service) buildScanSet(day int, rec *ScanRecord) []ip6.Addr {
	targets := make([]ip6.Addr, 0, len(s.active))
	for a, st := range s.active {
		ref := st.lastSuccessDay
		if ref < 0 {
			ref = st.firstDay
		}
		if day-ref > s.cfg.UnresponsiveDays {
			delete(s.active, a)
			rec.Evicted++
			s.evictedTotal++
			if s.cfg.RetainUnresponsive {
				s.unresponsive.Add(a)
			}
			continue
		}
		targets = append(targets, a)
	}
	ip6.SortAddrs(targets)
	return targets
}

// shardDigest accumulates one shard's slice of a scan. Each instance is
// only ever touched by the worker currently holding its shard (the scan
// engine serializes same-shard batches), so no locking is needed; the
// merge into the ScanRecord walks shards in canonical order, which makes
// records and snapshots bit-identical for any worker count or batch size.
type shardDigest struct {
	raw, clean   [netmodel.NumProtocols]int
	rawAny       ip6.Set
	cleanAny     ip6.Set
	cleanByProto [netmodel.NumProtocols]ip6.Set
	injectedDNS  ip6.Set
	injectedRes  int

	// Churn counters, filled in by finalizeDigest.
	firstResp, respAgain, unresp int
}

// digestSink returns the scan.Sink that classifies and folds streamed
// batches into per-shard accumulators. It runs on the engine's worker
// goroutines and touches only its shard's digest (an address lives in
// exactly one shard); service state stays untouched until finalizeDigest,
// so an errored or cancelled scan mutates nothing.
func (s *Service) digestSink(digests []*shardDigest) scan.Sink {
	return func(b *scan.Batch) error {
		d := digests[b.Shard]
		if d == nil {
			d = &shardDigest{
				rawAny:      ip6.NewSet(0),
				cleanAny:    ip6.NewSet(0),
				injectedDNS: ip6.NewSet(0),
			}
			for i := range d.cleanByProto {
				d.cleanByProto[i] = ip6.NewSet(0)
			}
			digests[b.Shard] = d
		}
		for i := range b.Results {
			r := &b.Results[i]
			if !r.Success {
				continue
			}
			// Classify exactly once; the evidence sets below feed the
			// GFW tracker at finalize time (the old path re-parsed the
			// DNS payload three times per result).
			injected := r.Proto == netmodel.UDP53 && gfw.ClassifyResult(*r).Injected()
			d.raw[r.Proto]++
			d.rawAny.Add(r.Target)
			if injected {
				d.injectedRes++
				d.injectedDNS.Add(r.Target)
			} else {
				d.clean[r.Proto]++
				d.cleanAny.Add(r.Target)
				d.cleanByProto[r.Proto].Add(r.Target)
			}
		}
		return nil
	}
}

// finalizeDigest applies the per-shard accumulators to service state —
// target liveness, GFW evidence, cumulative responsive sets, churn — in
// parallel (shards are independent), then merges the counters into the
// record in canonical shard order. It only runs for a completed scan, so
// aborted scans leave the service exactly as it was.
func (s *Service) finalizeDigest(digests []*shardDigest, day int, rec *ScanRecord) {
	lastClean := make(map[netmodel.Protocol]*ip6.ShardedSet, len(s.cfg.Protocols))
	for _, p := range s.cfg.Protocols {
		lastClean[p] = ip6.NewShardedSet()
	}

	var wg sync.WaitGroup
	for sh := 0; sh < ip6.AddrShards; sh++ {
		d := digests[sh]
		if d == nil {
			// A shard with no batches still matters: its previously
			// responsive addresses all churned to unresponsive. The zero
			// digest's nil sets are safe to read.
			d = &shardDigest{}
		}
		digests[sh] = d
		wg.Add(1)
		go func(sh int, d *shardDigest) {
			defer wg.Done()
			// Target liveness: before the filter deployment, injected
			// success keeps the target alive (that is the published
			// behaviour), so any response counts; after deployment only
			// clean responses do. Addresses of one shard never appear in
			// another, so the targetState writes are race-free.
			bump := d.cleanAny
			if !s.gfwDeployed {
				bump = d.rawAny
			}
			for a := range bump {
				if st, ok := s.active[a]; ok {
					st.lastSuccessDay = day
				}
			}
			s.tracker.AddEvidenceShard(sh, d.injectedDNS, &d.cleanByProto)

			prev := s.prevRespAny.Shard(sh)
			for a := range d.cleanAny {
				if !prev.Has(a) {
					if s.everRespAny.HasInShard(sh, a) {
						d.respAgain++
					} else {
						d.firstResp++
					}
				}
			}
			for a := range prev {
				if !d.cleanAny.Has(a) {
					d.unresp++
				}
			}
			s.everRespAny.AddAllToShard(sh, d.cleanAny)
			for _, p := range s.cfg.Protocols {
				s.everResp[p].AddAllToShard(sh, d.cleanByProto[p])
				lastClean[p].SetShard(sh, d.cleanByProto[p])
			}
			s.prevRespAny.SetShard(sh, d.cleanAny)
		}(sh, d)
	}
	wg.Wait()

	for sh := 0; sh < ip6.AddrShards; sh++ {
		d := digests[sh]
		for p := 0; p < netmodel.NumProtocols; p++ {
			rec.ResponsiveRaw[p] += d.raw[p]
			rec.ResponsiveClean[p] += d.clean[p]
		}
		// Shards partition the address space, so disjoint-set lengths sum
		// to the union's cardinality.
		rec.TotalRaw += d.rawAny.Len()
		rec.TotalClean += d.cleanAny.Len()
		rec.InjectedDNS += d.injectedRes
		rec.FirstResp += d.firstResp
		rec.RespAgain += d.respAgain
		rec.Unresp += d.unresp
	}
	s.lastClean = lastClean
}

func (s *Service) maybeSnapshot(day int) {
	for len(s.snapQueue) > 0 && day >= s.snapQueue[0] {
		want := s.snapQueue[0]
		s.snapQueue = s.snapQueue[1:]
		snap := &Snapshot{
			Day:           day,
			Responsive:    make(map[netmodel.Protocol]ip6.Set, len(s.lastClean)),
			ResponsiveAny: s.prevRespAny.Merge(),
			Aliased:       s.aliased.Prefixes(),
		}
		for p, set := range s.lastClean {
			snap.Responsive[p] = set.Merge()
		}
		s.snapshots[want] = snap
	}
}
