// Package core implements the IPv6 Hitlist service pipeline — the paper's
// Figure 1 — as an operable library:
//
//	input feeds → blocklist filter → GFW filter → aliased-prefix filter
//	→ 30-day-unresponsive filter → ZMap-style scans on five protocols
//
// The service accumulates candidate addresses from its feeds, schedules
// scans over simulated days, runs the multi-level aliased prefix detection,
// classifies Great-Firewall injections from response evidence, applies the
// cumulative GFW input filter the moment it is "deployed" (February 2022 in
// the paper), and records per-scan series (responsiveness per protocol,
// published vs cleaned, churn) plus full snapshots at chosen days. Those
// records and snapshots are everything the evaluation figures and tables
// are derived from.
package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"hitlist6/internal/apd"
	"hitlist6/internal/fleet"
	"hitlist6/internal/gfw"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
	"hitlist6/internal/serve"
	"hitlist6/internal/sources"
	"hitlist6/internal/tga"
)

// Config parameterizes the service.
type Config struct {
	// Seed namespaces the service's internal randomness (APD slot draws
	// come from the scan day, so this mainly affects sampling).
	Seed uint64

	// Protocols probed each scan; defaults to all five.
	Protocols []netmodel.Protocol

	// UnresponsiveDays is the 30-day filter horizon.
	UnresponsiveDays int

	// GFWFilterFromDay is the deployment day of the GFW filter
	// (netmodel.Forever = never, reproducing the pre-2022 service).
	GFWFilterFromDay int

	// APDEveryScans runs alias detection every N-th scan (min 1).
	APDEveryScans int

	// APDMaxNewCandidates bounds how many newly seen /64s are tested per
	// APD round (the rest queue up).
	APDMaxNewCandidates int

	// RetainUnresponsive keeps the set of addresses evicted by the
	// 30-day filter (needed by the Section 6 re-scan experiment; costs
	// memory).
	RetainUnresponsive bool

	// SnapshotDays requests full responsive-set snapshots at the first
	// scan at or after each listed day.
	SnapshotDays []int

	// ScanWorkers overrides the scanner's probe concurrency (0 means
	// GOMAXPROCS). Scan records and snapshots are bit-identical for any
	// value — the engine shards deterministically by address hash.
	ScanWorkers int

	// ScanBatchSize overrides the streamed batch size (0 means the scan
	// package default). A throughput knob only; outputs do not depend on
	// it.
	ScanBatchSize int

	// FleetWorkers, when > 1, runs the main scan as a fleet of that many
	// scanner nodes (internal/fleet) instead of the single in-process
	// scanner, seeding each scan's shard assignment with the previous
	// scan's per-shard timing. Records, snapshots, and digests are
	// bit-identical for any value — a deployment/wall-clock knob only.
	FleetWorkers int

	// FleetFaultHook injects worker failures into fleet-backed scans
	// (tests and recovery drills). Ignored unless FleetWorkers > 1.
	FleetFaultHook fleet.FaultHook

	// TGAFeed, when set, closes the paper's Section 6 loop inside the
	// pipeline: after each scan the feed streams candidate addresses
	// generated from the cumulative clean responsive set, the service
	// probes them through the streaming engine (deduplicated on the fly
	// against every address ever seen as input — no candidate list is
	// materialized), and the responders are ingested as next-scan input
	// under the feed's name. Nil reproduces the plain service.
	TGAFeed CandidateFeed

	// MemoryBudget, when > 0, bounds the resident size (in bytes) of the
	// cumulative sets that otherwise grow with the full measurement
	// history — every address ever seen as input, the per-protocol and
	// any-protocol ever-responsive sets, and the deployed GFW drop list.
	// The budget is split evenly across those sets and their shards;
	// each shard spills frozen sorted runs to disk past its slice and
	// merges them at digest finalization, so a run over hitlist-scale
	// input holds budget-bounded state instead of the whole history.
	// Outputs are bit-identical with and without a budget. 0 keeps
	// everything resident (the pre-spill behaviour). Scan-sized state
	// (the active window, per-scan responder sets, and — with TGAFeed —
	// the frozen per-shard seed spans the generators read) stays
	// resident; the budget governs the history-sized sets, including the
	// TGA round's candidate-dedup set and responder union.
	MemoryBudget int64

	// SpillDir is where spill scratch files live when MemoryBudget is
	// set; "" creates (and removes at Close) a private temp directory.
	SpillDir string

	// ServeSnapshots publishes an immutable serve.Snapshot to the
	// service's QueryHandle at each digest finalization: frozen sorted
	// copies of the current clean responsive sets, the aliased-prefix
	// index and the GFW injection-evidence set, swapped in with one
	// atomic pointer store. Query traffic (internal/serve) keeps reading
	// the previous snapshot until the swap and never blocks the scan.
	ServeSnapshots bool

	// ServeEvery publishes only every Nth scan's snapshot (0 or 1 means
	// every scan). The first scan always publishes, so the handle serves
	// as soon as data exists.
	ServeEvery int

	// CheckpointDir, when set, makes the service durable: RunScan spools
	// each scan's candidate stream through an on-disk rollback journal
	// next to this directory (bounded chunks instead of a resident
	// collected list, same all-or-nothing abort contract), and — with
	// CheckpointEvery — writes crash-consistent checkpoints of the full
	// service state here via Checkpoint. core.Resume restores from it.
	// Must differ from SpillDir. Outputs are bit-identical with and
	// without it.
	CheckpointDir string

	// CheckpointEvery checkpoints after every Nth completed scan (0
	// disables automatic checkpoints; Checkpoint can still be called
	// explicitly). Ignored unless CheckpointDir is set.
	CheckpointEvery int

	// CheckpointFullEvery bounds the delta-checkpoint chain: successive
	// checkpoints into the same directory write only dirty shards'
	// payloads against the previous checkpoint, and every Kth checkpoint
	// is a full rewrite (compaction) that collapses the chain. 0 means
	// the default (8); 1 disables deltas entirely. Restore cost and
	// crash-recovery surface grow with chain depth, write cost shrinks —
	// this is the dial between them.
	CheckpointFullEvery int
}

// CandidateFeed generates streaming scan candidates from the service's
// cumulative responsive seed set; tga.CandidateFeed adapts any streaming
// generator into one.
type CandidateFeed interface {
	// Name labels the feed in input accounting.
	Name() string
	// Candidates returns the candidate stream for one scan day given the
	// current responsive seeds as a sharded view: per-shard sorted frozen
	// spans that pointer-share unchanged shards across rounds, so
	// incremental generator models can skip clean shards (tga.SameSpan)
	// and no caller ever materializes the cumulative seed slice. The
	// service closes closable sources when the round ends.
	Candidates(day int, seeds *tga.SeedView) scan.TargetSource
}

// DefaultConfig mirrors the real service.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                seed,
		Protocols:           []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53},
		UnresponsiveDays:    30,
		GFWFilterFromDay:    netmodel.Forever,
		APDEveryScans:       1,
		APDMaxNewCandidates: 4096,
	}
}

// targetState tracks one address in the active scan window.
type targetState struct {
	firstDay       int
	lastSuccessDay int // -1 until first success
}

// ScanRecord is the per-scan output row (the Figure 3/4 series).
type ScanRecord struct {
	Index int
	Day   int

	// NewInput is the count of never-before-seen candidate addresses.
	NewInput int
	// BlockedInput / GFWFilteredInput / AliasedInput count new input
	// removed by the respective filters.
	BlockedInput     int
	GFWFilteredInput int
	AliasedInput     int

	// ScannedTargets is the size of the scan set after all filters.
	ScannedTargets int

	// ResponsiveRaw is the published view: any response counts,
	// including GFW-injected DNS answers.
	ResponsiveRaw [netmodel.NumProtocols]int
	// ResponsiveClean removes responses classified as injected.
	ResponsiveClean [netmodel.NumProtocols]int
	// TotalRaw/TotalClean count addresses responsive to ≥1 protocol.
	TotalRaw   int
	TotalClean int

	// InjectedDNS counts results classified as GFW injections this scan.
	InjectedDNS int

	// Churn versus the previous scan (clean view): first-ever responders,
	// returning responders, and addresses that went unresponsive.
	FirstResp int
	RespAgain int
	Unresp    int

	// Evicted counts targets dropped by the 30-day filter this scan.
	Evicted int

	// AliasedPrefixes is the current aliased-prefix count.
	AliasedPrefixes int

	// ProbesSent counts scanner probes (scan + APD + TGA round).
	ProbesSent uint64

	// ShardStats is the main scan's per-shard engine throughput (probes,
	// responses, wall nanos per canonical shard) — the raw signal for
	// adaptive rate control. ShardStats.Nanos is wall-clock and therefore
	// nondeterministic; the whole block is excluded from golden
	// encodings, which predate it.
	ShardStats []scan.ShardStats `json:"-"`

	// TGACandidates / TGAResponsive count the streamed TGA candidate
	// round: candidates probed after input dedup, and distinct addresses
	// among them that answered at least one protocol. Zero unless
	// Config.TGAFeed is set; excluded from goldens, which predate the
	// loop.
	TGACandidates int `json:"-"`
	TGAResponsive int `json:"-"`

	// TGARefrozenShards counts seed-view shards the round's epoch-delta
	// freeze had to re-freeze (dirtied since the previous round); 0 on
	// steady-state rounds. Excluded from goldens like the other TGA
	// counters.
	TGARefrozenShards int `json:"-"`
}

// Snapshot is a full state capture at one scan.
type Snapshot struct {
	Day           int
	Responsive    map[netmodel.Protocol]ip6.Set // clean view
	ResponsiveAny ip6.Set
	Aliased       []ip6.Prefix
}

// Service is the running pipeline.
type Service struct {
	cfg      Config
	net      *netmodel.Network
	scanner  *scan.Scanner
	detector *apd.Detector
	feeds    []*sources.Feed
	block    *ip6.PrefixSet

	// fleet is non-nil when FleetWorkers > 1: the main scan runs across
	// it instead of scanner (which still serves APD and TGA probing).
	fleet     *fleet.Coordinator
	lastFleet fleet.Result

	scanIndex int

	// workers is the resolved sweep concurrency (ScanWorkers, or
	// GOMAXPROCS when unset): every per-shard pass over the target store
	// runs on up to this many goroutines. Outputs never depend on it.
	workers int

	// Cumulative input accounting. The history-sized sets (inputSeen,
	// gfwInputDrop, everResp*, everRespAny) are used through
	// ip6.SpillableSet: resident ShardedSets by default, disk-backed
	// SpillSets under Config.MemoryBudget.
	inputSeen    ip6.SpillableSet
	perASInput   map[int]*ASInput
	inputTotal   int
	blockedTotal int
	gfwTotal     int
	aliasedTotal int
	evictedTotal int
	gfwDeployed  bool
	gfwInputDrop ip6.SpillableSet // the cumulative "134 M" filter once deployed
	unresponsive ip6.Set          // evicted addresses (if retained)

	// spill is non-nil when MemoryBudget is set: the scratch directory
	// and the disk-backed sets to compact, error-check and close.
	spill *spillState

	// active is the sharded target store: per-address scan-window state,
	// partitioned exactly like the scan engine's batch delivery. Ingest,
	// eviction, alias purges, the GFW cleanup and digest finalization all
	// run as per-shard sweeps over it and merge their counters in
	// canonical shard order, so records stay bit-identical for any
	// worker count.
	active *ip6.ShardedMap[*targetState]

	aliased      *ip6.PrefixSet
	pendingAPD64 []ip6.Prefix // newly seen /64s queued for APD
	seen64       map[ip6.Prefix]struct{}
	tracker      *gfw.Tracker
	everResp     [netmodel.NumProtocols]ip6.SpillableSet
	everRespAny  ip6.SpillableSet
	prevRespAny  *ip6.ShardedSet // last scan's clean responders: scan-sized, stays resident
	lastClean    map[netmodel.Protocol]*ip6.ShardedSet
	inputByFeed  map[string]int

	// lastShardStats is the previous main scan's per-shard throughput,
	// feeding the adaptive dispatch order (slowest shards first).
	lastShardStats []scan.ShardStats

	// scanShards holds the per-shard scan-set buffers, rebuilt by the
	// 30-day filter each scan and fed straight into StreamSharded; the
	// backing arrays are reused across scans, so steady-state scans
	// allocate no scan-set memory at all.
	scanShards [][]ip6.Addr
	// routeBuf is the reusable per-shard routing scratch of ingest.
	routeBuf [][]routedInput
	// evictBuf is the reusable per-shard eviction scratch of buildScanSet.
	evictBuf []evictRes

	records   []*ScanRecord
	snapshots map[int]*Snapshot
	snapQueue []int

	// queryHandle is the serving layer's atomic snapshot slot; non-nil
	// from construction so servers can attach before the first scan
	// (they answer SERVFAIL until the first publish). serveScans counts
	// finalizations for the ServeEvery gate.
	queryHandle *serve.Handle
	serveScans  int

	// tgaFrozen is the frozen sorted form of everRespAny runTGA hands its
	// generators (wrapped as tgaView); each round's epoch-delta freeze
	// re-freezes only dirtied shards and pointer-shares the rest, so
	// steady-state rounds (no new responders) reuse every span for free
	// and the cumulative seed slice is never materialized.
	tgaFrozen *ip6.SortedShardSet
	tgaView   *tga.SeedView

	// Delta-checkpoint state: identity of the last checkpoint this
	// process committed into ckptDir (or resumed from its head), the
	// chain depth there, and per-payload shard-epoch marks — what the
	// next Checkpoint diffs the cumulative sets against. ckptMarks nil
	// means no usable parent: the next checkpoint is a full rewrite.
	ckptMarks map[string]*ckptMark
	ckptDir   string
	ckptDepth int
	ckptScan  int
}

// routedInput is one ingest candidate routed to its shard: the address,
// the feed it came from, and its position in the deterministic
// (feed-name-sorted) input sequence of the scan, which fixes cross-shard
// ordering wherever it matters.
type routedInput struct {
	addr ip6.Addr
	feed int32
	seq  int32
}

// evictRes is one shard's slice of an eviction sweep.
type evictRes struct {
	count   int
	evicted []ip6.Addr // retained for the unresponsive pool only
}

// ASInput aggregates cumulative input per AS (Figure 2's ingredients).
type ASInput struct {
	Total   int
	Aliased int
	GFW     int
}

// spillState carries the external-memory context of a budgeted service:
// scratch directory, per-set/per-shard budget, and every disk-backed set
// for compaction, error checks and Close.
type spillState struct {
	dir         string
	ownsDir     bool
	shardBudget int
	sets        []*ip6.SpillSet
	initErr     error
}

// spillSets is how many history-sized sets share the memory budget: the
// per-protocol ever-responsive sets, the any-protocol one, the input
// dedup set and the GFW drop list.
const spillSets = netmodel.NumProtocols + 3

// newSet returns a fresh disk-backed set sharing the spill state's
// budget, recording (and re-reporting) the first creation error.
func (sp *spillState) newSet() *ip6.SpillSet {
	set, err := ip6.NewSpillSet(sp.dir, sp.shardBudget)
	if err != nil {
		if sp.initErr == nil {
			sp.initErr = err
		}
		return nil
	}
	sp.sets = append(sp.sets, set)
	return set
}

// err surfaces the first initialization or disk error across the sets.
func (sp *spillState) err() error {
	if sp.initErr != nil {
		return sp.initErr
	}
	for _, set := range sp.sets {
		if err := set.Err(); err != nil {
			return err
		}
	}
	return nil
}

// compact folds every set's runs down (one run per shard) — the merge
// step of digest finalization and snapshot capture.
func (sp *spillState) compact() error {
	for _, set := range sp.sets {
		if err := set.Compact(); err != nil {
			return err
		}
	}
	return nil
}

func (sp *spillState) close() error {
	var first error
	for _, set := range sp.sets {
		if err := set.Close(); err != nil && first == nil {
			first = err
		}
	}
	sp.sets = nil
	if sp.ownsDir {
		if err := os.RemoveAll(sp.dir); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// newSpillState resolves Config.MemoryBudget/SpillDir into a spill
// context, or nil when the service runs fully resident.
func newSpillState(cfg Config) *spillState {
	if cfg.MemoryBudget <= 0 {
		return nil
	}
	sp := &spillState{}
	// Even split: budget bytes over the sharing sets and their shards.
	// NewSpillSet clamps to ≥ 1 resident address per shard, so even a
	// pathological budget stays functional (it just spills constantly).
	sp.shardBudget = int(cfg.MemoryBudget / ip6.AddrBytes / spillSets / ip6.AddrShards)
	if cfg.SpillDir != "" {
		sp.dir = cfg.SpillDir
		if err := os.MkdirAll(sp.dir, 0o755); err != nil {
			sp.initErr = fmt.Errorf("core: creating spill dir: %w", err)
		}
	} else {
		dir, err := os.MkdirTemp("", "hitlist6-spill-*")
		if err != nil {
			sp.initErr = fmt.Errorf("core: creating spill dir: %w", err)
		}
		sp.dir, sp.ownsDir = dir, true
	}
	return sp
}

// NewService assembles a pipeline over a world. When Config.MemoryBudget
// is set the cumulative sets are disk-backed; call Close when done to
// release their scratch files (a resident service needs no Close).
func NewService(cfg Config, net *netmodel.Network, feeds []*sources.Feed, blocklist *ip6.PrefixSet) *Service {
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
	}
	if cfg.UnresponsiveDays <= 0 {
		cfg.UnresponsiveDays = 30
	}
	if cfg.APDEveryScans <= 0 {
		cfg.APDEveryScans = 1
	}
	if cfg.APDMaxNewCandidates <= 0 {
		cfg.APDMaxNewCandidates = 4096
	}
	if blocklist == nil {
		blocklist = ip6.NewPrefixSet()
	}
	// The blocklist is admission-read-only from here on; freeze it so
	// every ingest-time Contains runs on the flat index.
	blocklist.Freeze()
	scfg := scan.DefaultConfig(cfg.Seed)
	scfg.Workers = cfg.ScanWorkers
	scfg.BatchSize = cfg.ScanBatchSize
	workers := cfg.ScanWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		cfg:          cfg,
		net:          net,
		scanner:      scan.New(net, scfg),
		feeds:        feeds,
		block:        blocklist,
		workers:      workers,
		spill:        newSpillState(cfg),
		perASInput:   make(map[int]*ASInput),
		unresponsive: ip6.NewSet(0),
		active:       ip6.NewShardedMap[*targetState](),
		aliased:      ip6.NewPrefixSet(),
		seen64:       make(map[ip6.Prefix]struct{}),
		tracker:      gfw.NewTracker(),
		prevRespAny:  ip6.NewShardedSet(),
		inputByFeed:  make(map[string]int),
		scanShards:   make([][]ip6.Addr, ip6.AddrShards),
		routeBuf:     make([][]routedInput, ip6.AddrShards),
		snapshots:    make(map[int]*Snapshot),
		snapQueue:    append([]int(nil), cfg.SnapshotDays...),
		queryHandle:  serve.NewHandle(),
	}
	s.inputSeen = s.newCumulativeSet()
	// gfwInputDrop is only read once the filter deploys, and deployment
	// replaces it wholesale — an empty resident placeholder until then
	// (the budget split still reserves its post-deployment share).
	s.gfwInputDrop = ip6.NewShardedSet()
	s.everRespAny = s.newCumulativeSet()
	for i := range s.everResp {
		s.everResp[i] = s.newCumulativeSet()
	}
	s.detector = apd.NewDetector(s.scanner, apd.DefaultConfig())
	if cfg.FleetWorkers > 1 {
		s.fleet = fleet.New(net, fleet.Config{
			Workers:   cfg.FleetWorkers,
			Scan:      scfg,
			FaultHook: cfg.FleetFaultHook,
		})
	}
	return s
}

// newCumulativeSet picks the resident or disk-backed implementation for
// one history-sized set.
func (s *Service) newCumulativeSet() ip6.SpillableSet {
	if s.spill != nil {
		if set := s.spill.newSet(); set != nil {
			return set
		}
		// Creation failed; fall back resident so the service object stays
		// usable — RunScan surfaces spill.initErr before any scan runs.
	}
	return ip6.NewShardedSet()
}

// Close releases the spill scratch files (and the private spill
// directory, when the service created one). Harmless on a resident
// service.
func (s *Service) Close() error {
	if s.spill == nil {
		return nil
	}
	return s.spill.close()
}

// SpilledRuns reports how many sorted runs the cumulative sets have
// frozen to disk so far — 0 on a resident service, and the "did the
// budget actually bite" signal for tests and operators.
func (s *Service) SpilledRuns() int64 {
	if s.spill == nil {
		return 0
	}
	var n int64
	for _, set := range s.spill.sets {
		n += set.FrozenRuns()
	}
	return n
}

// Scanner exposes the service's scanner (for auxiliary experiments that
// must share its configuration and vantage point).
func (s *Service) Scanner() *scan.Scanner { return s.scanner }

// AliasedPrefixes returns the current aliased prefix set.
func (s *Service) AliasedPrefixes() *ip6.PrefixSet { return s.aliased }

// LastFleet returns the most recent fleet-backed scan's per-worker
// result (zero value when FleetWorkers <= 1 or before the first scan).
func (s *Service) LastFleet() fleet.Result { return s.lastFleet }

// Records returns all per-scan records so far.
func (s *Service) Records() []*ScanRecord { return s.records }

// Snapshots returns the requested snapshots, keyed by requested day.
func (s *Service) Snapshots() map[int]*Snapshot { return s.snapshots }

// Tracker exposes cumulative GFW evidence.
func (s *Service) Tracker() *gfw.Tracker { return s.tracker }

// QueryHandle returns the serving layer's snapshot handle. It is valid
// from construction — DNS/HTTP servers attach to it before the first
// scan and start answering from the first published snapshot (with
// Config.ServeSnapshots set, published inside RunScan's digest
// finalization). Lookups through it never block the timeline.
func (s *Service) QueryHandle() *serve.Handle { return s.queryHandle }

// UnresponsivePool returns the 30-day-evicted addresses (empty unless
// Config.RetainUnresponsive).
func (s *Service) UnresponsivePool() ip6.Set { return s.unresponsive }

// InputByFeed returns cumulative new-input counts per feed name.
func (s *Service) InputByFeed() map[string]int { return s.inputByFeed }

// InputSeen returns every address ever accumulated as input (the
// cumulative hitlist input, before filters), merged from its shards into
// a fresh flat set. Callers that only need membership should use
// InputSeenHas and skip the copy.
func (s *Service) InputSeen() ip6.Set { return s.inputSeen.Merge() }

// InputSeenHas reports whether a was ever accumulated as input, without
// materializing the merged set.
func (s *Service) InputSeenHas(a ip6.Addr) bool { return s.inputSeen.Has(a) }

// Network returns the world the service operates on.
func (s *Service) Network() *netmodel.Network { return s.net }

// PerASInput returns cumulative input accounting per ASN.
func (s *Service) PerASInput() map[int]*ASInput { return s.perASInput }

// EverResponsive returns the cumulative clean responsive set for a
// protocol, merged from its shards into a fresh flat set. Callers that
// only need the cardinality should use EverResponsiveLen.
func (s *Service) EverResponsive(p netmodel.Protocol) ip6.Set { return s.everResp[p].Merge() }

// EverResponsiveLen returns the size of the cumulative clean responsive
// set for a protocol without materializing a merged copy.
func (s *Service) EverResponsiveLen(p netmodel.Protocol) int { return s.everResp[p].Len() }

// EverResponsiveAny returns addresses ever responsive to ≥1 protocol,
// merged from its shards into a fresh flat set. Callers that only need
// the cardinality should use EverResponsiveAnyLen.
func (s *Service) EverResponsiveAny() ip6.Set { return s.everRespAny.Merge() }

// EverResponsiveAnyLen returns the size of the ever-responsive-any set
// without materializing a merged copy.
func (s *Service) EverResponsiveAnyLen() int { return s.everRespAny.Len() }

// Funnel summarizes the cumulative pipeline (Figure 1's numbers).
type Funnel struct {
	Input        int
	Blocked      int
	GFWFiltered  int
	AliasedInput int
	Evicted      int
	ActiveScan   int
	Responsive   int
}

// Funnel returns the cumulative funnel counts.
func (s *Service) Funnel() Funnel {
	resp := 0
	if len(s.records) > 0 {
		resp = s.records[len(s.records)-1].TotalClean
	}
	return Funnel{
		Input:        s.inputTotal,
		Blocked:      s.blockedTotal,
		GFWFiltered:  s.gfwTotal,
		AliasedInput: s.aliasedTotal,
		Evicted:      s.evictedTotal,
		ActiveScan:   s.active.Len(),
		Responsive:   resp,
	}
}

// RunScan executes one full pipeline iteration at the given day.
func (s *Service) RunScan(ctx context.Context, day int) (*ScanRecord, error) {
	if s.spill != nil {
		if err := s.spill.err(); err != nil {
			return nil, fmt.Errorf("core: spill state: %w", err)
		}
	}
	rec := &ScanRecord{Index: s.scanIndex, Day: day}

	// 1. Input accumulation: each active feed drains into a lazy
	// per-feed source and the admission sweep pulls them chunk-wise — no
	// global collected map is built.
	if err := s.ingest(sources.Open(ctx, s.feeds, day), day, rec); err != nil {
		return nil, fmt.Errorf("core: draining feeds: %w", err)
	}

	// 2. GFW cumulative filter deployment (one-time event).
	if !s.gfwDeployed && day >= s.cfg.GFWFilterFromDay {
		s.deployGFWFilter(rec)
	}

	// 3. Aliased prefix detection (before the scan, as in the pipeline).
	if s.scanIndex%s.cfg.APDEveryScans == 0 {
		if err := s.runAPD(ctx, day, rec); err != nil {
			return nil, err
		}
	}
	// APD was the last mutation point for the aliased set this scan:
	// re-freeze it (and the blocklist, a no-op unless a caller touched
	// it) so the admission filters below and next scan's ingest run
	// Contains on the flat index instead of the map path.
	s.aliased.Freeze()
	s.block.Freeze()
	rec.AliasedPrefixes = s.aliased.Len()

	// 4. 30-day filter: eviction runs as a per-shard sweep over the
	// target store, refilling the reusable per-shard scan-set buffers.
	rec.ScannedTargets = s.buildScanSet(day, rec)

	// 5+6. The scan, streamed: the per-shard scan sets wrap into a
	// sharded TargetSource the engine's probe workers pull directly (no
	// concatenated global target slice), batches are classified and
	// folded into per-shard accumulators concurrently as they complete —
	// the full targets × protocols result slice is never materialized —
	// then the accumulators merge in canonical shard order.
	// Adaptive dispatch: hand the previous scan's slowest shards out
	// first (ShardStats nanos, descending) so stragglers overlap the
	// cheap tail instead of serializing after it. Purely a wall-clock
	// knob — per-shard outputs are dispatch-order-invariant.
	digests := make([]*shardDigest, ip6.AddrShards)
	var stats scan.Stats
	if s.fleet != nil {
		// Fleet-backed scan: the previous scan's shard timing seeds the
		// LPT assignment (the fleet's generalization of the dispatch
		// order below), and the digest sink receives the same batches a
		// single-process run would deliver.
		s.fleet.SetShardProfile(s.lastShardStats)
		fres, err := s.fleet.Scan(ctx, scan.ShardSlices(s.scanShards), s.cfg.Protocols, day, s.digestSink(digests))
		if err != nil {
			return nil, fmt.Errorf("core: scanning: %w", err)
		}
		s.lastFleet = fres
		stats = fres.Stats
	} else {
		s.applyDispatchOrder()
		var err error
		stats, err = s.scanner.StreamFrom(ctx, scan.ShardSlices(s.scanShards), s.cfg.Protocols, day, s.digestSink(digests))
		if err != nil {
			return nil, fmt.Errorf("core: scanning: %w", err)
		}
	}
	rec.ProbesSent += stats.ProbesSent
	rec.ShardStats = stats.PerShard
	s.lastShardStats = stats.PerShard
	s.finalizeDigest(digests, day, rec)
	// Digest finalization is a merge point for the spilled sets: fold
	// each shard's frozen runs into one so membership probes stay one
	// fence lookup per shard, and surface any disk error now.
	if s.spill != nil {
		if err := s.spill.compact(); err != nil {
			return nil, fmt.Errorf("core: compacting spilled sets: %w", err)
		}
	}

	// 6b. TGA candidate round: generate → probe → feed back, streamed
	// end to end.
	if s.cfg.TGAFeed != nil {
		if err := s.runTGA(ctx, day, rec); err != nil {
			return nil, err
		}
	}

	// 7. Snapshots.
	s.maybeSnapshot(day)

	// Any disk error the sweeps hit (spill writes degrade softly and
	// record a sticky error) fails the scan rather than silently running
	// with a lossy membership view.
	if s.spill != nil {
		if err := s.spill.err(); err != nil {
			return nil, fmt.Errorf("core: spill state: %w", err)
		}
	}
	s.records = append(s.records, rec)
	s.scanIndex++

	// 8. Durability: auto-checkpoint after every Nth completed scan. The
	// scan is fully finalized at this point, so a crash during the write
	// loses at most the scans since the previous checkpoint — never a
	// half-applied one.
	if s.cfg.CheckpointDir != "" && s.cfg.CheckpointEvery > 0 && s.scanIndex%s.cfg.CheckpointEvery == 0 {
		if err := s.Checkpoint(s.cfg.CheckpointDir); err != nil {
			return nil, fmt.Errorf("core: checkpoint: %w", err)
		}
	}
	return rec, nil
}

// applyDispatchOrder feeds the previous scan's per-shard wall-clock
// profile back into the engine: slowest shards dispatch first. The first
// scan (no profile yet) keeps canonical order.
func (s *Service) applyDispatchOrder() {
	if len(s.lastShardStats) != ip6.AddrShards {
		return
	}
	order := make([]int, ip6.AddrShards)
	for i := range order {
		order[i] = i
	}
	stats := s.lastShardStats
	sort.SliceStable(order, func(i, j int) bool {
		return stats[order[i]].Nanos > stats[order[j]].Nanos
	})
	// Building the permutation locally means SetDispatchOrder cannot
	// reject it; ignore the impossible error to keep the scan path flat.
	_ = s.scanner.SetDispatchOrder(order)
}

// ingestCounters accumulates the outcome counters of an admission sweep;
// applyIngest folds them into the record and cumulative totals.
type ingestCounters struct {
	newInput, blocked, gfwDrop, aliasedDrop int
	perAS                                   map[int]*ASInput
}

// shardIngest accumulates one shard's slice of an ingest pass; counters
// merge into the record in canonical shard order.
type shardIngest struct {
	ingestCounters
	perFeed  []int
	admitted []routedInput // newly active, in seq order
}

// admitOutcome is what the shared admission chain did with one candidate.
type admitOutcome int

const (
	admitDup      admitOutcome = iota // already known: nothing counted
	admitFiltered                     // counted as input, removed by a filter
	admitAdmitted                     // counted and inserted into the store
)

// admitOne runs the admission chain — dedup, AS attribution, blocklist /
// GFW / aliased filters, store insert — for one candidate in shard sh,
// recording outcomes in c. It is the single copy both the serial and the
// per-shard parallel ingest paths execute; only shard-owned and
// counter state is written, so distinct shards may run it concurrently.
func (s *Service) admitOne(sh int, a ip6.Addr, day int, c *ingestCounters) admitOutcome {
	if !s.inputSeen.AddToShard(sh, a) {
		return admitDup // already known (or already evicted once)
	}
	c.newInput++

	asn := 0
	if as := s.net.AS.Lookup(a); as != nil {
		asn = as.ASN
	}
	ai := c.perAS[asn]
	if ai == nil {
		ai = &ASInput{}
		c.perAS[asn] = ai
	}
	ai.Total++

	// Blocklist filter.
	if s.block.Contains(a) {
		c.blocked++
		return admitFiltered
	}
	// GFW input filter (active only once deployed).
	if s.gfwDeployed && s.gfwInputDrop.HasInShard(sh, a) {
		c.gfwDrop++
		ai.GFW++
		return admitFiltered
	}
	// Aliased prefix filter.
	if s.aliased.Contains(a) {
		c.aliasedDrop++
		ai.Aliased++
		return admitFiltered
	}
	s.active.PutInShard(sh, a, &targetState{firstDay: day, lastSuccessDay: -1})
	return admitAdmitted
}

// applyIngest merges one admission sweep's counters into the record and
// the cumulative accounting.
func (s *Service) applyIngest(rec *ScanRecord, c *ingestCounters) {
	rec.NewInput += c.newInput
	s.inputTotal += c.newInput
	rec.BlockedInput += c.blocked
	s.blockedTotal += c.blocked
	rec.GFWFilteredInput += c.gfwDrop
	s.gfwTotal += c.gfwDrop
	rec.AliasedInput += c.aliasedDrop
	s.aliasedTotal += c.aliasedDrop
	for asn, d := range c.perAS {
		ai := s.perASInput[asn]
		if ai == nil {
			ai = &ASInput{}
			s.perASInput[asn] = ai
		}
		ai.Total += d.Total
		ai.GFW += d.GFW
		ai.Aliased += d.Aliased
	}
}

// ingestChunk is the pull granularity of the admission sweep over
// per-feed sources.
const ingestChunk = 512

// drainSource pulls src to exhaustion, handing each non-empty chunk to
// fn. buf backs pulls from sources without a span fast path.
func drainSource(src scan.TargetSource, buf []ip6.Addr, fn func([]ip6.Addr)) error {
	spanner, _ := src.(scan.SpanSource)
	for {
		var seg []ip6.Addr
		var err error
		if spanner != nil {
			seg, err = spanner.Span(len(buf))
		} else {
			var n int
			n, err = src.Next(buf)
			seg = buf[:n]
		}
		if len(seg) > 0 {
			fn(seg)
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if len(seg) == 0 {
			return fmt.Errorf("core: input source made no progress")
		}
	}
}

// ingest dedups, filters and admits new input, pulling each feed's
// source chunk-wise in feed-name-sorted order (the same deterministic
// sequence the old collected-map path walked). Candidates are routed to
// their canonical shards in one cheap pass, then every shard runs the
// lookup-heavy part (dedup, AS attribution, blocklist / GFW / alias
// filters, store insert) independently on the worker pool — an address
// only ever touches its own shard, so the sweep is lock-free. The merge
// walks shards in canonical order, and anything order-sensitive (the APD
// /64 queue, per-feed attribution of same-day duplicates) is resolved by
// the deterministic input sequence number, so results are bit-identical
// to a serial pass for any worker count. Both paths pull every source to
// exhaustion before admitting anything, so a source error aborts the
// sweep with no state mutated — all-or-nothing for any worker count,
// exactly like the old collect-then-admit pipeline.
func (s *Service) ingest(srcs []sources.NamedSource, day int, rec *ScanRecord) error {
	sort.SliceStable(srcs, func(i, j int) bool { return srcs[i].Name < srcs[j].Name })

	// A durable service spools the candidate stream through the on-disk
	// rollback journal and admits it back in bounded chunks — same
	// deterministic sequence, same all-or-nothing contract, bounded
	// resident footprint.
	if s.cfg.CheckpointDir != "" {
		return s.ingestJournaled(srcs, day, rec)
	}

	// A single worker skips the routing pass and per-shard scratch
	// entirely: the serial sweep below visits the same deterministic
	// sequence the parallel merge reconstructs, so both paths are
	// bit-identical (the reference goldens cross-check them).
	if s.workers <= 1 {
		return s.ingestSerial(srcs, day, rec)
	}

	// Route phase: partition the day's candidates by shard, preserving
	// the deterministic sequence order within each shard.
	seq := int32(0)
	buf := make([]ip6.Addr, ingestChunk)
	for fi, fs := range srcs {
		err := drainSource(fs.Src, buf, func(seg []ip6.Addr) {
			for _, a := range seg {
				if !a.IsGlobalUnicast() {
					continue
				}
				sh := ip6.ShardOf(a)
				s.routeBuf[sh] = append(s.routeBuf[sh], routedInput{addr: a, feed: int32(fi), seq: seq})
				seq++
			}
		})
		if err != nil {
			for sh := range s.routeBuf {
				s.routeBuf[sh] = s.routeBuf[sh][:0]
			}
			return err
		}
	}

	// Shard phase: per-shard filtering and admission. Shared reads
	// (blocklist, AS table, aliased prefixes) are lookup-only here; all
	// writes go to shard-owned state.
	results := make([]*shardIngest, ip6.AddrShards)
	ip6.ParallelShards(s.workers, func(sh int) {
		entries := s.routeBuf[sh]
		if len(entries) == 0 {
			return
		}
		r := &shardIngest{
			ingestCounters: ingestCounters{perAS: make(map[int]*ASInput)},
			perFeed:        make([]int, len(srcs)),
		}
		for _, e := range entries {
			outcome := s.admitOne(sh, e.addr, day, &r.ingestCounters)
			if outcome == admitDup {
				continue
			}
			r.perFeed[e.feed]++
			if outcome == admitAdmitted {
				r.admitted = append(r.admitted, e)
			}
		}
		results[sh] = r
	})

	// Merge phase, canonical shard order.
	var admitted []routedInput
	for sh := 0; sh < ip6.AddrShards; sh++ {
		s.routeBuf[sh] = s.routeBuf[sh][:0]
		r := results[sh]
		if r == nil {
			continue
		}
		s.applyIngest(rec, &r.ingestCounters)
		for fi, n := range r.perFeed {
			if n > 0 {
				s.inputByFeed[srcs[fi].Name] += n
			}
		}
		admitted = append(admitted, r.admitted...)
	}

	// Track newly admitted /64s for alias detection in input order, as a
	// serial pass would have: the APD candidate queue is order-sensitive
	// (its cap decides which /64s are tested this round vs queued).
	sort.Slice(admitted, func(i, j int) bool { return admitted[i].seq < admitted[j].seq })
	for _, e := range admitted {
		s.trackSlash64(e.addr)
	}
	return nil
}

// ingestSerial is the one-goroutine ingest sweep: one pass over the
// deterministic (feed-name-sorted) input sequence, running the same
// admission chain (admitOne) inline with /64 tracking in input order.
// Sources are pulled to exhaustion before any admission, so an erroring
// feed mutates nothing — matching the parallel path's all-or-nothing
// behavior (admitOne writes cannot be rolled back once made).
func (s *Service) ingestSerial(srcs []sources.NamedSource, day int, rec *ScanRecord) error {
	buf := make([]ip6.Addr, ingestChunk)
	collected := make([][]ip6.Addr, len(srcs))
	for fi, fs := range srcs {
		var addrs []ip6.Addr
		err := drainSource(fs.Src, buf, func(seg []ip6.Addr) {
			addrs = append(addrs, seg...)
		})
		if err != nil {
			return err
		}
		collected[fi] = addrs
	}

	c := ingestCounters{perAS: make(map[int]*ASInput)}
	for fi, fs := range srcs {
		feed := fs.Name
		for _, a := range collected[fi] {
			if !a.IsGlobalUnicast() {
				continue
			}
			outcome := s.admitOne(ip6.ShardOf(a), a, day, &c)
			if outcome == admitDup {
				continue
			}
			s.inputByFeed[feed]++
			if outcome == admitAdmitted {
				s.trackSlash64(a)
			}
		}
	}
	s.applyIngest(rec, &c)
	return nil
}

// trackSlash64 queues a newly admitted address's /64 for alias detection
// the first time it is seen.
func (s *Service) trackSlash64(a ip6.Addr) {
	p64 := ip6.Slash64(a)
	if _, ok := s.seen64[p64]; !ok {
		s.seen64[p64] = struct{}{}
		s.pendingAPD64 = append(s.pendingAPD64, p64)
	}
}

// deployGFWFilter materializes the cumulative injected-only list and
// removes it from the active window — the paper's one-time cleanup of
// 134 M addresses in February 2022. The drop list arrives sharded from
// the tracker, so the purge is a per-shard sweep: each shard deletes its
// own slice of the list from the target store, and the per-AS counter
// deltas merge in canonical shard order.
func (s *Service) deployGFWFilter(rec *ScanRecord) {
	s.gfwDeployed = true
	drop := s.tracker.InjectedOnlySharded()
	// Under a memory budget the cumulative drop list moves into a
	// disk-backed set inside the same per-shard sweep that purges the
	// active window, so the resident tracker-built copy dies with this
	// call instead of living for the rest of the run.
	var spillDrop *ip6.SpillSet
	if s.spill != nil {
		spillDrop = s.spill.newSet()
	}
	dropped := make([]shardPurge, ip6.AddrShards)
	ip6.ParallelShards(s.workers, func(sh int) {
		d := &dropped[sh]
		drop.WalkShard(sh, func(a ip6.Addr) bool {
			if s.active.DeleteInShard(sh, a) {
				d.count++
				asn := 0
				if as := s.net.AS.Lookup(a); as != nil {
					asn = as.ASN
				}
				d.addAS(asn)
			}
			return true
		})
		if spillDrop != nil {
			spillDrop.AddAllToShard(sh, drop.Shard(sh))
		}
	})
	if spillDrop != nil {
		s.gfwInputDrop = spillDrop
	} else {
		s.gfwInputDrop = drop
	}
	for sh := range dropped {
		d := &dropped[sh]
		rec.GFWFilteredInput += d.count
		s.gfwTotal += d.count
		for asn, n := range d.perAS {
			// Only ASes already holding input accounting are updated, as
			// in the pre-sharded cleanup.
			if ai := s.perASInput[asn]; ai != nil {
				ai.GFW += n
			}
		}
	}
}

// shardPurge counts one shard's removals in a purge sweep, with per-AS
// attribution deltas to merge after the sweep.
type shardPurge struct {
	count int
	perAS map[int]int
}

func (d *shardPurge) addAS(asn int) {
	if d.perAS == nil {
		d.perAS = make(map[int]int)
	}
	d.perAS[asn]++
}

// runAPD tests BGP prefixes plus the queued new /64s and applies the
// aliased filter to the active window.
func (s *Service) runAPD(ctx context.Context, day int, rec *ScanRecord) error {
	var candidates []ip6.Prefix
	s.net.AS.WalkPrefixes(func(p ip6.Prefix, as *netmodel.AS) bool {
		if p.Bits()+4 <= 128 {
			// Only prefixes already announced at this day.
			for i, ap := range as.Announced {
				if ap == p && as.AnnouncedFrom[i] <= day {
					candidates = append(candidates, p)
					break
				}
			}
		}
		return true
	})
	// Queued /64s already covered by a known shorter aliased prefix need
	// no testing; they would only re-discover the same region.
	pending := s.pendingAPD64[:0]
	taken := 0
	for _, p64 := range s.pendingAPD64 {
		if s.coveredByAliased(p64) {
			continue
		}
		if taken < s.cfg.APDMaxNewCandidates {
			candidates = append(candidates, p64)
			taken++
			continue
		}
		pending = append(pending, p64)
	}
	s.pendingAPD64 = pending

	res, err := s.detector.Run(ctx, candidates, day)
	if err != nil {
		return fmt.Errorf("core: alias detection: %w", err)
	}
	rec.ProbesSent += uint64(res.Probes)
	// Add shortest-first so a detected /32 subsumes /64s found in the
	// same round.
	detected := res.Aliased.Prefixes()
	sort.Slice(detected, func(i, j int) bool { return detected[i].Bits() < detected[j].Bits() })
	var fresh *ip6.PrefixSet
	for _, p := range detected {
		if !s.coveredByAliased(p) {
			s.aliased.Add(p)
			if fresh == nil {
				fresh = ip6.NewPrefixSet()
			}
			fresh.Add(p)
		}
	}

	// Newly aliased prefixes purge matching active targets. Targets are
	// only matched against this round's fresh prefixes: admission filters
	// against the aliased set at ingest time and every earlier round
	// purged its own detections, so no active target can be covered by an
	// older prefix — rounds that detect nothing new skip the sweep
	// entirely, and rounds that do only pay lookups against the small
	// fresh set.
	if fresh == nil {
		return nil
	}
	purged := make([]shardPurge, ip6.AddrShards)
	ip6.ParallelShards(s.workers, func(sh int) {
		d := &purged[sh]
		s.active.WalkShard(sh, func(a ip6.Addr, _ *targetState) bool {
			if fresh.Contains(a) {
				s.active.DeleteInShard(sh, a)
				d.count++
				asn := 0
				if as := s.net.AS.Lookup(a); as != nil {
					asn = as.ASN
				}
				d.addAS(asn)
			}
			return true
		})
	})
	for sh := range purged {
		d := &purged[sh]
		rec.AliasedInput += d.count
		s.aliasedTotal += d.count
		for asn, n := range d.perAS {
			ai := s.perASInput[asn]
			if ai == nil {
				ai = &ASInput{}
				s.perASInput[asn] = ai
			}
			ai.Aliased += n
		}
	}
	return nil
}

// coveredByAliased reports whether a shorter (or equal) aliased prefix
// already covers p.
func (s *Service) coveredByAliased(p ip6.Prefix) bool {
	m, ok := s.aliased.Match(p.Addr())
	return ok && m.Bits() <= p.Bits()
}

// buildScanSet applies the 30-day filter and rebuilds the per-shard scan
// sets in s.scanShards, returning the total target count. Every shard
// evicts its stale targets and sorts its survivors independently on the
// worker pool; the global concatenated-and-sorted target slice of the
// serial implementation is gone — the scanner consumes the shard slices
// directly. Per-shard sorting keeps the engine's batch sequences
// deterministic for order-sensitive sinks (records themselves are
// order-independent), and costs less than one global sort.
func (s *Service) buildScanSet(day int, rec *ScanRecord) int {
	if s.evictBuf == nil {
		s.evictBuf = make([]evictRes, ip6.AddrShards)
	}
	evs := s.evictBuf
	ip6.ParallelShards(s.workers, func(sh int) {
		evs[sh] = evictRes{evicted: evs[sh].evicted[:0]}
		ev := &evs[sh]
		targets := s.scanShards[sh][:0]
		s.active.WalkShard(sh, func(a ip6.Addr, st *targetState) bool {
			ref := st.lastSuccessDay
			if ref < 0 {
				ref = st.firstDay
			}
			if day-ref > s.cfg.UnresponsiveDays {
				s.active.DeleteInShard(sh, a)
				ev.count++
				if s.cfg.RetainUnresponsive {
					ev.evicted = append(ev.evicted, a)
				}
				return true
			}
			targets = append(targets, a)
			return true
		})
		ip6.SortAddrs(targets)
		s.scanShards[sh] = targets
	})
	total := 0
	for sh := range evs {
		total += len(s.scanShards[sh])
		rec.Evicted += evs[sh].count
		s.evictedTotal += evs[sh].count
		s.unresponsive.AddSlice(evs[sh].evicted)
	}
	return total
}

// shardDigest accumulates one shard's slice of a scan. Each instance is
// only ever touched by the worker currently holding its shard (the scan
// engine serializes same-shard batches), so no locking is needed; the
// merge into the ScanRecord walks shards in canonical order, which makes
// records and snapshots bit-identical for any worker count or batch size.
type shardDigest struct {
	raw, clean   [netmodel.NumProtocols]int
	rawAny       ip6.Set
	cleanAny     ip6.Set
	cleanByProto [netmodel.NumProtocols]ip6.Set
	injectedDNS  ip6.Set
	injectedRes  int

	// Churn counters, filled in by finalizeDigest.
	firstResp, respAgain, unresp int
}

// digestSink returns the scan.Sink that classifies and folds streamed
// batches into per-shard accumulators. It runs on the engine's worker
// goroutines and touches only its shard's digest (an address lives in
// exactly one shard); service state stays untouched until finalizeDigest,
// so an errored or cancelled scan mutates nothing.
func (s *Service) digestSink(digests []*shardDigest) scan.Sink {
	return func(b *scan.Batch) error {
		d := digests[b.Shard]
		if d == nil {
			d = &shardDigest{
				rawAny:      ip6.NewSet(0),
				cleanAny:    ip6.NewSet(0),
				injectedDNS: ip6.NewSet(0),
			}
			for i := range d.cleanByProto {
				d.cleanByProto[i] = ip6.NewSet(0)
			}
			digests[b.Shard] = d
		}
		for i := range b.Results {
			r := &b.Results[i]
			if !r.Success {
				continue
			}
			// Classify exactly once; the evidence sets below feed the
			// GFW tracker at finalize time (the old path re-parsed the
			// DNS payload three times per result).
			injected := r.Proto == netmodel.UDP53 && gfw.ClassifyResult(*r).Injected()
			d.raw[r.Proto]++
			d.rawAny.Add(r.Target)
			if injected {
				d.injectedRes++
				d.injectedDNS.Add(r.Target)
			} else {
				d.clean[r.Proto]++
				d.cleanAny.Add(r.Target)
				d.cleanByProto[r.Proto].Add(r.Target)
			}
		}
		return nil
	}
}

// finalizeDigest applies the per-shard accumulators to service state —
// target liveness, GFW evidence, cumulative responsive sets, churn — as a
// per-shard sweep on the worker pool (shards are independent, and with
// the sharded target store the liveness bumps are shard-local too: no
// cross-shard locking anywhere), then merges the counters into the record
// in canonical shard order. It only runs for a completed scan, so aborted
// scans leave the service exactly as it was.
func (s *Service) finalizeDigest(digests []*shardDigest, day int, rec *ScanRecord) {
	// lastClean persists across scans: SetShard replaces each shard's
	// content anyway, and a persistent set object is what lets its shard
	// epochs prove "unchanged since the last publication" to the
	// incremental snapshot freeze (SetShard only bumps an epoch when the
	// replacement actually changes membership).
	lastClean := s.lastClean
	if lastClean == nil {
		lastClean = make(map[netmodel.Protocol]*ip6.ShardedSet, len(s.cfg.Protocols))
		for _, p := range s.cfg.Protocols {
			lastClean[p] = ip6.NewShardedSet()
		}
	}

	for sh := 0; sh < ip6.AddrShards; sh++ {
		if digests[sh] == nil {
			// A shard with no batches still matters: its previously
			// responsive addresses all churned to unresponsive. The zero
			// digest's nil sets are safe to read.
			digests[sh] = &shardDigest{}
		}
	}
	ip6.ParallelShards(s.workers, func(sh int) {
		d := digests[sh]
		// Target liveness: before the filter deployment, injected
		// success keeps the target alive (that is the published
		// behaviour), so any response counts; after deployment only
		// clean responses do. Addresses of one shard never appear in
		// another, so the targetState writes are race-free.
		bump := d.cleanAny
		if !s.gfwDeployed {
			bump = d.rawAny
		}
		for a := range bump {
			if st, ok := s.active.GetInShard(sh, a); ok {
				st.lastSuccessDay = day
			}
		}
		s.tracker.AddEvidenceShard(sh, d.injectedDNS, &d.cleanByProto)

		prev := s.prevRespAny.Shard(sh)
		for a := range d.cleanAny {
			if !prev.Has(a) {
				if s.everRespAny.HasInShard(sh, a) {
					d.respAgain++
				} else {
					d.firstResp++
				}
			}
		}
		for a := range prev {
			if !d.cleanAny.Has(a) {
				d.unresp++
			}
		}
		s.everRespAny.AddAllToShard(sh, d.cleanAny)
		for _, p := range s.cfg.Protocols {
			s.everResp[p].AddAllToShard(sh, d.cleanByProto[p])
			lastClean[p].SetShard(sh, d.cleanByProto[p])
		}
		s.prevRespAny.SetShard(sh, d.cleanAny)
	})

	for sh := 0; sh < ip6.AddrShards; sh++ {
		d := digests[sh]
		for p := 0; p < netmodel.NumProtocols; p++ {
			rec.ResponsiveRaw[p] += d.raw[p]
			rec.ResponsiveClean[p] += d.clean[p]
		}
		// Shards partition the address space, so disjoint-set lengths sum
		// to the union's cardinality.
		rec.TotalRaw += d.rawAny.Len()
		rec.TotalClean += d.cleanAny.Len()
		rec.InjectedDNS += d.injectedRes
		rec.FirstResp += d.firstResp
		rec.RespAgain += d.respAgain
		rec.Unresp += d.unresp
	}
	s.lastClean = lastClean
	s.publishServeSnapshot(day)
}

// publishServeSnapshot builds and publishes the serving layer's immutable
// snapshot for this scan: frozen sorted copies of the clean responsive
// sets (any-protocol and per-protocol), a frozen clone of the
// aliased-prefix index, and the frozen GFW injection-evidence set. The
// copies are independent of the live state — the timeline mutates on
// without ever touching a published snapshot — and the publish itself is
// one atomic pointer swap on the QueryHandle, so concurrent readers see
// either the whole previous snapshot or the whole new one, never a mix.
//
// Publication is copy-on-publish incremental: hitlists are highly stable
// between consecutive scans, so each set's freeze shares the previous
// generation's frozen per-shard slices and re-sorts only shards whose
// mutation epoch advanced (ip6.FreezeSortedDelta). Shared slices are
// immutable on both sides, so old and new snapshots stay independently
// queryable. After a restore the previous generation is gone and the
// first publish degrades to a full freeze.
func (s *Service) publishServeSnapshot(day int) {
	if !s.cfg.ServeSnapshots {
		return
	}
	s.serveScans++
	// The first scan always publishes; afterwards every ServeEvery-th.
	if every := s.cfg.ServeEvery; every > 1 && s.serveScans != 1 && (s.serveScans-1)%every != 0 {
		return
	}
	start := time.Now()
	prev := s.queryHandle.Current()
	refrozen, shared := 0, 0
	freeze := func(set *ip6.ShardedSet, prevIdx *ip6.SortedShardSet) *ip6.SortedShardSet {
		out, r, sh := ip6.FreezeSortedDelta(set, prevIdx)
		refrozen += r
		shared += sh
		return out
	}
	var perProto [netmodel.NumProtocols]*ip6.SortedShardSet
	for _, p := range s.cfg.Protocols {
		var prevP *ip6.SortedShardSet
		if prev != nil {
			prevP = prev.PerProto[p]
		}
		perProto[p] = freeze(s.lastClean[p], prevP)
	}
	var prevAny, prevInj *ip6.SortedShardSet
	if prev != nil {
		prevAny, prevInj = prev.Any, prev.Injected
	}
	any := freeze(s.prevRespAny, prevAny)
	inj, r, sh := s.tracker.FreezeInjectedSeenDelta(prevInj)
	refrozen += r
	shared += sh
	s.queryHandle.Publish(serve.NewSnapshot(day, any, perProto, s.aliased.Prefixes(), inj))
	s.queryHandle.NotePublish(refrozen, shared, time.Since(start))
}

// compactingSeen wraps a round-local spill set as a scan.AddSet that
// compacts itself every compactEvery inserts (compact errors are sticky
// on the set and surface from the round's Err check).
type compactingSeen struct {
	set *ip6.SpillSet
	n   int
}

// compactEvery balances merge cost against probe fan-in: a few hundred
// thousand inserts accrue at most a handful of runs per shard under any
// sane budget.
const compactEvery = 1 << 18

func (c *compactingSeen) Add(a ip6.Addr) bool {
	ok := c.set.Add(a)
	if c.n++; c.n%compactEvery == 0 {
		c.set.Compact()
	}
	return ok
}

// countSource interposes on a target stream to count pulled addresses.
type countSource struct {
	src scan.TargetSource
	n   int
}

func (c *countSource) Next(buf []ip6.Addr) (int, error) {
	n, err := c.src.Next(buf)
	c.n += n
	return n, err
}

func (c *countSource) Close() error {
	if cl, ok := c.src.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// runTGA runs one streamed generate → probe → feed back round: the
// configured feed emits candidates derived from the cumulative clean
// responsive set (including this scan's responders), the engine pulls
// and probes them with streaming dedup against every address ever seen
// as input, and distinct responders are ingested as input under the
// feed's name — so they join the active window and the next scan's
// target set. No candidate list is ever materialized; only the (much
// smaller) responder set is.
func (s *Service) runTGA(ctx context.Context, day int, rec *ScanRecord) error {
	seeds, refrozen := s.tgaSeedView()
	rec.TGARefrozenShards = refrozen
	if seeds.Len() == 0 {
		return nil
	}
	// Candidate dedup tracks this round's emissions; under a memory
	// budget that tracking set spills too, so a hitlist-scale candidate
	// stream never accumulates in RAM. The cross-round filter is the
	// (possibly disk-backed) cumulative inputSeen either way.
	var seen scan.AddSet = ip6.NewSet(0)
	var roundSpill *ip6.SpillSet
	if s.spill != nil {
		set, err := ip6.NewSpillSet(s.spill.dir, s.spill.shardBudget)
		if err != nil {
			return fmt.Errorf("core: TGA dedup spill set: %w", err)
		}
		defer set.Close()
		roundSpill = set
		// Periodic compaction keeps the round set's per-shard run fan-in
		// near 1 — without it a long candidate stream would probe every
		// frozen run per Add. Safe: the dedup filter runs on the single
		// puller goroutine, so no per-shard sweep is ever active here.
		seen = &compactingSeen{set: set}
	}
	counted := &countSource{src: scan.DedupWith(s.cfg.TGAFeed.Candidates(day, seeds), s.inputSeen.Has, seen)}
	resp, stats, err := s.scanner.StreamResponsiveFrom(ctx, counted, s.cfg.Protocols, day)
	if err != nil {
		return fmt.Errorf("core: TGA candidate scan: %w", err)
	}
	// A disk error in the round's dedup set degrades Has to false
	// (candidates probed twice) — fail the scan like every other spill
	// error instead of letting outputs silently diverge from the
	// budget-less run.
	if roundSpill != nil {
		if err := roundSpill.Err(); err != nil {
			return fmt.Errorf("core: TGA dedup spill set: %w", err)
		}
	}
	rec.ProbesSent += stats.ProbesSent
	rec.TGACandidates = counted.n

	// The responder union is sharded — and, under a memory budget,
	// disk-backed like every other history-sized set — instead of a flat
	// resident set; feedback streams it in globally sorted order without
	// materializing a slice.
	var union ip6.SpillableSet
	var unionSpill *ip6.SpillSet
	if s.spill != nil {
		set, err := ip6.NewSpillSet(s.spill.dir, s.spill.shardBudget)
		if err != nil {
			return fmt.Errorf("core: TGA union spill set: %w", err)
		}
		defer set.Close()
		unionSpill = set
		union = set
	} else {
		union = ip6.NewShardedSet()
	}
	for _, p := range s.cfg.Protocols {
		set := resp[p]
		for sh := 0; sh < ip6.AddrShards; sh++ {
			for a := range set.Shard(sh) {
				union.AddToShard(sh, a)
			}
		}
	}
	rec.TGAResponsive = union.Len()
	if unionSpill != nil {
		if err := unionSpill.Err(); err != nil {
			return fmt.Errorf("core: TGA union spill set: %w", err)
		}
	}
	if union.Len() == 0 {
		return nil
	}
	src, err := sortedUnionSource(union)
	if err != nil {
		return fmt.Errorf("core: TGA feedback source: %w", err)
	}
	feedback := []sources.NamedSource{{Name: s.cfg.TGAFeed.Name(), Src: src}}
	if err := s.ingest(feedback, day, rec); err != nil {
		return err
	}
	if unionSpill != nil {
		if err := unionSpill.Err(); err != nil {
			return fmt.Errorf("core: TGA union spill set: %w", err)
		}
	}
	return nil
}

// tgaSeedView returns the generators' seed view over everRespAny,
// re-frozen by epoch delta: only shards whose membership moved since the
// last round are re-walked and re-sorted, the rest pointer-share their
// frozen span with the previous view. Steady-state TGA rounds — no new
// responders since the previous round — reuse every span for free, and
// the cumulative seed slice is never materialized at all. It returns the
// view plus the number of shards re-frozen.
func (s *Service) tgaSeedView() (*tga.SeedView, int) {
	frozen, refrozen, _ := ip6.FreezeSortedSetDelta(s.everRespAny, s.tgaFrozen)
	s.tgaFrozen = frozen
	s.tgaView = tga.NewSeedView(frozen)
	return s.tgaView, refrozen
}

// maybeSnapshot captures due snapshots. Snapshots read only the
// scan-sized resident sets (prevRespAny, lastClean, aliased), so no
// spill interaction happens here; the spilled cumulative sets were
// compacted moments earlier in RunScan's digest-finalization step, which
// is what keeps the InputSeen/EverResponsive accessor merges cheap at
// snapshot days too.
func (s *Service) maybeSnapshot(day int) {
	for len(s.snapQueue) > 0 && day >= s.snapQueue[0] {
		want := s.snapQueue[0]
		s.snapQueue = s.snapQueue[1:]
		snap := &Snapshot{
			Day:           day,
			Responsive:    make(map[netmodel.Protocol]ip6.Set, len(s.lastClean)),
			ResponsiveAny: s.prevRespAny.Merge(),
			Aliased:       s.aliased.Prefixes(),
		}
		for p, set := range s.lastClean {
			snap.Responsive[p] = set.Merge()
		}
		s.snapshots[want] = snap
	}
}
