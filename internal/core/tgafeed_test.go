package core

import (
	"reflect"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/scan"
	"hitlist6/internal/tga"
	"hitlist6/internal/tga/sixtree"
)

// aliasNeighborFeed is a minimal CandidateFeed: it proposes addresses
// inside the tiny world's aliased /64 — which the alias rule answers for
// — plus a dark one, exercising the full generate → probe → feed back
// loop deterministically. (The region's own seed is purged by APD before
// it ever responds, so these candidates are genuinely new input.)
type aliasNeighborFeed struct{}

func (aliasNeighborFeed) Name() string { return "tga-test" }

func (aliasNeighborFeed) Candidates(day int, seeds *tga.SeedView) scan.TargetSource {
	if seeds.Len() == 0 {
		return scan.SliceSource(nil)
	}
	alias := ip6.MustParsePrefix("2001:100:a::/64")
	var cands []ip6.Addr
	for i := uint64(0); i < 8; i++ {
		cands = append(cands, alias.NthAddr(100+i))
	}
	cands = append(cands, ip6.MustParseAddr("2001:100::ddd")) // dark
	return scan.SliceSource(cands)
}

// TestTGAFeedLoop drives the closed TGA loop on the tiny world: the
// candidate round must probe deduplicated candidates, feed responders
// back as input under the feed's name, keep everything deterministic
// across worker counts, and leave the no-feed pipeline byte-identical
// (which TestShardedStoreMatchesReference separately pins to goldens).
func TestTGAFeedLoop(t *testing.T) {
	run := func(workers int) *Service {
		n, feeds := tinyWorld(t)
		cfg := DefaultConfig(1)
		cfg.ScanWorkers = workers
		cfg.TGAFeed = aliasNeighborFeed{}
		s := NewService(cfg, n, feeds, nil)
		runDays(t, s, weekly(0, 28))
		return s
	}

	s := run(1)
	recs := s.Records()
	sawCands, sawResp := false, false
	for _, rec := range recs {
		if rec.TGACandidates > 0 {
			sawCands = true
		}
		if rec.TGAResponsive > 0 {
			sawResp = true
		}
	}
	if !sawCands || !sawResp {
		t.Fatalf("TGA loop too quiet: candidates=%v responders=%v", sawCands, sawResp)
	}
	if s.InputByFeed()["tga-test"] == 0 {
		t.Error("no TGA responders ingested under the feed name")
	}
	// The responders joined the active window: the aliased /64 is in the
	// alias filter, so they are admitted only until APD detects the
	// prefix — but input accounting must have seen them.
	if s.Funnel().Input <= 5 {
		t.Errorf("input funnel did not grow with TGA feedback: %+v", s.Funnel())
	}

	// Candidates are deduplicated against input before probing: a second
	// scan must not re-probe previously ingested responders, so per-scan
	// candidate counts shrink once responders are absorbed.
	first, last := recs[0], recs[len(recs)-1]
	if first.TGACandidates == 0 || last.TGACandidates >= first.TGACandidates {
		t.Errorf("dedup did not shrink candidate rounds: first=%d last=%d",
			first.TGACandidates, last.TGACandidates)
	}

	// Bit-identical across worker counts, like every other output.
	base := stripShardTiming(recs)
	for _, workers := range []int{2, 8} {
		got := stripShardTiming(run(workers).Records())
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: TGA-fed records diverge from serial run", workers)
		}
	}
}

// TestTGASeedViewSharesUnchangedShards pins the tentpole invariant of
// the incremental TGA pipeline, mirroring the serve layer's
// TestServePublishSharesUnchangedShards: successive rounds' seed views
// pointer-share the frozen spans of shards whose membership did not
// move, and only epoch-dirtied shards re-freeze.
func TestTGASeedViewSharesUnchangedShards(t *testing.T) {
	sliceShared := func(a, b []ip6.Addr) bool {
		return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
	}

	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.TGAFeed = aliasNeighborFeed{}
	s := NewService(cfg, n, feeds, nil)

	runDays(t, s, weekly(0, 56))
	prev := s.tgaFrozen
	if prev == nil || prev.Len() == 0 {
		t.Fatal("no seed view frozen after warm-up rounds")
	}
	prevView := s.tgaView

	// Late steady-state scans: the responsive world has been absorbed, so
	// most shards' epochs hold still and their spans must be shared, not
	// re-frozen. (Some shards may still dirty — the alias region answers
	// forever — so assert sharing per clean shard rather than globally.)
	runDays(t, s, weekly(63, 63))
	cur := s.tgaFrozen
	if cur == prev {
		t.Fatal("freeze did not produce a new view object")
	}
	shared, refrozen := 0, 0
	for sh := 0; sh < ip6.AddrShards; sh++ {
		a, b := prev.Shard(sh), cur.Shard(sh)
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if sliceShared(a, b) {
			shared++
		} else {
			refrozen++
		}
	}
	if shared == 0 {
		t.Errorf("steady-state round shared no spans (refrozen=%d)", refrozen)
	}
	rec := s.Records()[len(s.Records())-1]
	if rec.TGARefrozenShards != refrozen {
		t.Errorf("TGARefrozenShards=%d, want %d", rec.TGARefrozenShards, refrozen)
	}
	// The view wrapper is rebuilt per round but reads the same spans.
	if s.tgaView == prevView {
		t.Error("seed view object not refreshed")
	}
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if !tga.SameSpan(s.tgaView.Shard(sh), cur.Shard(sh)) {
			t.Fatalf("view shard %d does not wrap the frozen span", sh)
		}
	}
}

// TestTGAStreamerFeedAdapter wires a real streaming generator through
// tga.CandidateFeed into the service, proving the adapter satisfies
// core.CandidateFeed and the loop runs (6Tree expands the web /64's two
// seeds into neighbor candidates).
func TestTGAStreamerFeedAdapter(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.TGAFeed = tga.CandidateFeed{Gen: sixtree.New(sixtree.DefaultConfig()), Budget: 512}
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, weekly(0, 28))

	cands := 0
	for _, rec := range s.Records() {
		cands += rec.TGACandidates
	}
	if cands == 0 {
		t.Fatal("6Tree candidate feed generated nothing")
	}
}
