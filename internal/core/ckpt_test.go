package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hitlist6/internal/ckpt"
	"hitlist6/internal/ip6"
)

// ckptTinyCfg is the reference-scenario config with durability on:
// journaled chunked ingest plus a checkpoint after every scan.
func ckptTinyCfg(ckdir string) Config {
	cfg := DefaultConfig(1)
	cfg.GFWFilterFromDay = 150
	cfg.SnapshotDays = []int{14, 70, 180}
	cfg.CheckpointDir = ckdir
	cfg.CheckpointEvery = 1
	return cfg
}

// TestJournaledIngestMatchesReference pins that merely turning
// durability on — the journaled chunked-ingest path plus a checkpoint
// after every one of the 29 scans — leaves records and snapshots
// bit-identical to the pre-durability goldens.
func TestJournaledIngestMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n, feeds := tinyWorld(t)
		cfg := ckptTinyCfg(filepath.Join(t.TempDir(), "ckpt"))
		cfg.ScanWorkers = workers
		s := NewService(cfg, n, feeds, nil)
		runDays(t, s, weekly(0, 196))
		compareGolden(t, "reference_tiny.json", goldenFrom(s.Records(), s.Snapshots()),
			fmt.Sprintf("journaled workers=%d", workers))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResumeMatchesUninterrupted is the durability acceptance gate: a
// timeline interrupted after scan k and resumed from the checkpoint —
// in a fresh process, against a fresh world, with a different worker
// count, fleet size, or memory budget — produces records and snapshots
// bit-identical to the same goldens an uninterrupted run is pinned to.
func TestResumeMatchesUninterrupted(t *testing.T) {
	days := weekly(0, 196)
	cases := []struct {
		label         string
		k             int // scans completed before the "crash"
		first, second func(cfg *Config, scratch string)
	}{
		{"workers 1→4", 10,
			func(c *Config, _ string) { c.ScanWorkers = 1 },
			func(c *Config, _ string) { c.ScanWorkers = 4 }},
		{"workers 4→1", 27,
			func(c *Config, _ string) { c.ScanWorkers = 4 },
			func(c *Config, _ string) { c.ScanWorkers = 1 }},
		{"fleet 2→4", 7,
			func(c *Config, _ string) { c.FleetWorkers = 2 },
			func(c *Config, _ string) { c.FleetWorkers = 4 }},
		{"spill→spill", 12,
			func(c *Config, d string) { c.MemoryBudget = spillBudget; c.SpillDir = filepath.Join(d, "spill1") },
			func(c *Config, d string) { c.MemoryBudget = spillBudget; c.SpillDir = filepath.Join(d, "spill2") }},
		{"spill→resident", 20,
			func(c *Config, d string) { c.MemoryBudget = spillBudget; c.SpillDir = filepath.Join(d, "spill1") },
			func(c *Config, _ string) {}},
	}
	for _, tc := range cases {
		scratch := t.TempDir()
		for _, sub := range []string{"spill1", "spill2"} {
			if err := os.MkdirAll(filepath.Join(scratch, sub), 0o755); err != nil {
				t.Fatal(err)
			}
		}
		ckdir := filepath.Join(scratch, "ckpt")

		n, feeds := tinyWorld(t)
		cfg := ckptTinyCfg(ckdir)
		tc.first(&cfg, scratch)
		s := NewService(cfg, n, feeds, nil)
		runDays(t, s, days[:tc.k])
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", tc.label, err)
		}

		n2, feeds2 := tinyWorld(t)
		cfg2 := ckptTinyCfg(ckdir)
		tc.second(&cfg2, scratch)
		s2, err := Resume(ckdir, cfg2, n2, feeds2, nil)
		if err != nil {
			t.Fatalf("%s: resume: %v", tc.label, err)
		}
		if got := len(s2.Records()); got != tc.k {
			t.Fatalf("%s: resumed with %d records, want %d", tc.label, got, tc.k)
		}
		runDays(t, s2, days[tc.k:])
		compareGolden(t, "reference_tiny.json", goldenFrom(s2.Records(), s2.Snapshots()), "resume "+tc.label)
		if err := s2.Close(); err != nil {
			t.Fatalf("%s: close resumed: %v", tc.label, err)
		}
	}
}

// TestResumeGenerationContinuity pins the serving cadence across a
// restart: with ServeEvery=3 an uninterrupted 7-scan run publishes
// generations {1,1,1,2,2,2,3}; interrupting after scan 4 and resuming
// must not republish the stale snapshot (servers answer SERVFAIL until
// the next finalization) and must continue the same sequence — scans 5
// and 6 gated, scan 7 publishing generation 3, not restarting at 1.
func TestResumeGenerationContinuity(t *testing.T) {
	days := weekly(0, 42) // 7 scans
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	mkCfg := func() Config {
		cfg := DefaultConfig(1)
		cfg.ServeSnapshots = true
		cfg.ServeEvery = 3
		cfg.CheckpointDir = ckdir
		cfg.CheckpointEvery = 1
		return cfg
	}

	n, feeds := tinyWorld(t)
	s := NewService(mkCfg(), n, feeds, nil)
	runDays(t, s, days[:4])
	if g := s.QueryHandle().Current().Generation; g != 2 {
		t.Fatalf("generation after 4 scans = %d, want 2", g)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	n2, feeds2 := tinyWorld(t)
	s2, err := Resume(ckdir, mkCfg(), n2, feeds2, nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer s2.Close()
	if s2.QueryHandle().Current() != nil {
		t.Fatal("resume republished a stale snapshot")
	}
	var gens []uint64
	for _, d := range days[4:] {
		runDays(t, s2, []int{d})
		var g uint64
		if cur := s2.QueryHandle().Current(); cur != nil {
			g = cur.Generation
		}
		gens = append(gens, g)
	}
	want := []uint64{0, 0, 3} // scans 5, 6 gated; scan 7 publishes
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("generations after resume = %v, want %v", gens, want)
		}
	}
}

// TestResumeRefusesCorruptCheckpoint: a bit-flip in any payload file
// must make Resume refuse loudly with ckpt.ErrCorrupt — never
// half-load.
func TestResumeRefusesCorruptCheckpoint(t *testing.T) {
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	n, feeds := tinyWorld(t)
	s := NewService(ckptTinyCfg(ckdir), n, feeds, nil)
	runDays(t, s, weekly(0, 28))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(ckdir, ckptActiveFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	n2, feeds2 := tinyWorld(t)
	_, err = Resume(ckdir, ckptTinyCfg(ckdir), n2, feeds2, nil)
	if !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("resume from bit-flipped checkpoint: err = %v, want ErrCorrupt", err)
	}
}

// TestResumeRefusesConfigMismatch: a checkpoint taken under one config
// digest must not silently restore into a service with different
// pipeline parameters (here: a different seed).
func TestResumeRefusesConfigMismatch(t *testing.T) {
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	n, feeds := tinyWorld(t)
	s := NewService(ckptTinyCfg(ckdir), n, feeds, nil)
	runDays(t, s, weekly(0, 14))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	n2, feeds2 := tinyWorld(t)
	cfg := ckptTinyCfg(ckdir)
	cfg.Seed = 2
	_, err := Resume(ckdir, cfg, n2, feeds2, nil)
	if err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("resume with mismatched config: err = %v, want config mismatch", err)
	}
}

// TestResumeDiscardsStaleJournal: a journal file next to the checkpoint
// is debris from a crash mid-scan; Resume must discard it and the
// resumed timeline must still match the uninterrupted goldens.
func TestResumeDiscardsStaleJournal(t *testing.T) {
	days := weekly(0, 196)
	ckdir := filepath.Join(t.TempDir(), "ckpt")
	n, feeds := tinyWorld(t)
	s := NewService(ckptTinyCfg(ckdir), n, feeds, nil)
	const k = 9
	runDays(t, s, days[:k])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the SIGKILL-mid-ingest debris: a finished journal holding
	// candidates of the scan that never committed.
	jw, err := ckpt.CreateJournal(JournalPath(ckdir))
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Add(0, ip6.MustParseAddr("2001:100::80")); err != nil {
		t.Fatal(err)
	}
	if err := jw.Finish(); err != nil {
		t.Fatal(err)
	}

	n2, feeds2 := tinyWorld(t)
	s2, err := Resume(ckdir, ckptTinyCfg(ckdir), n2, feeds2, nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if _, _, ok, err := ckpt.JournalStat(JournalPath(ckdir)); err != nil || ok {
		t.Fatalf("stale journal not discarded on resume (ok=%v, err=%v)", ok, err)
	}
	runDays(t, s2, days[k:])
	compareGolden(t, "reference_tiny.json", goldenFrom(s2.Records(), s2.Snapshots()), "resume after stale journal")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRejectsSpillDirCollision: the checkpoint directory and
// the spill scratch directory must differ — spill compaction deletes
// and rewrites files under its dir, which would destroy a checkpoint.
func TestCheckpointRejectsSpillDirCollision(t *testing.T) {
	dir := t.TempDir()
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.MemoryBudget = spillBudget
	cfg.SpillDir = dir
	s := NewService(cfg, n, feeds, nil)
	defer s.Close()
	runDays(t, s, []int{0})
	if err := s.Checkpoint(dir); err == nil {
		t.Fatal("checkpoint into the spill dir succeeded; want refusal")
	}
}
