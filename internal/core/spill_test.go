package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// spillBudget is small enough that the tiny reference scenario spills
// constantly (one resident address per shard per set) while staying
// functional.
const spillBudget = 1

// spillTinyRun is refTinyRun with a memory budget: same scenario, the
// cumulative sets disk-backed and spilling hard.
func spillTinyRun(t testing.TB, workers int, dir string) *Service {
	t.Helper()
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.GFWFilterFromDay = 150
	cfg.SnapshotDays = []int{14, 70, 180}
	cfg.ScanWorkers = workers
	cfg.MemoryBudget = spillBudget
	cfg.SpillDir = dir
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, weekly(0, 196))
	return s
}

// TestShardedStoreSpillMatchesReference is the external-memory
// acceptance gate: with a memory budget tiny enough to force constant
// spilling, records and snapshots stay bit-identical to the same
// pre-refactor goldens the resident implementation is pinned to — the
// spillable digest is an exact refactor, not an approximation.
func TestShardedStoreSpillMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := spillTinyRun(t, workers, t.TempDir())
		if s.SpilledRuns() == 0 {
			t.Fatalf("workers=%d: budget %d never spilled — the test exercised the resident path", workers, spillBudget)
		}
		g := goldenFrom(s.Records(), s.Snapshots())
		compareGolden(t, "reference_tiny.json", g, fmt.Sprintf("spill workers=%d", workers))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if testing.Short() {
		t.Skip("generated-world spill comparison in -short mode")
	}
	w, feeds := generatedWorld(t, 23)
	cfg := DefaultConfig(23)
	cfg.ScanWorkers = runtime.GOMAXPROCS(0)
	cfg.MemoryBudget = 64 << 10 // a few dozen resident addrs per shard per set
	s := NewService(cfg, w, feeds, nil)
	defer s.Close()
	for d := 0; d <= 140; d += 14 {
		runDays(t, s, []int{d})
	}
	if s.SpilledRuns() == 0 {
		t.Fatal("generated world: budget never spilled")
	}
	compareGolden(t, "reference_generated.json", goldenFrom(s.Records(), nil), "spill generated")
}

// TestSpillScratchLifecycle pins the scratch hygiene: spill files live in
// the configured directory while the service runs and are gone after
// Close.
func TestSpillScratchLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := spillTinyRun(t, 1, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no spill scratch files in the configured dir")
	}
	for _, e := range entries {
		if !strings.Contains(e.Name(), "spill") {
			t.Errorf("unexpected file %s in spill dir", e.Name())
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, filepath.Join(dir, e.Name()))
		}
		t.Fatalf("scratch files left after Close: %v", names)
	}
	// A resident service needs no Close but tolerates one.
	n, feeds := tinyWorld(t)
	resident := NewService(DefaultConfig(1), n, feeds, nil)
	if err := resident.Close(); err != nil {
		t.Fatal(err)
	}
	if resident.SpilledRuns() != 0 {
		t.Error("resident service reports spilled runs")
	}
}

// TestTGAFeedLoopSpillEquivalence runs the closed TGA loop with and
// without a budget: the spill-backed candidate dedup must leave every
// record identical.
func TestTGAFeedLoopSpillEquivalence(t *testing.T) {
	run := func(budget int64) []*ScanRecord {
		n, feeds := tinyWorld(t)
		cfg := DefaultConfig(1)
		cfg.ScanWorkers = 4
		cfg.TGAFeed = aliasNeighborFeed{}
		cfg.MemoryBudget = budget
		s := NewService(cfg, n, feeds, nil)
		defer s.Close()
		runDays(t, s, weekly(0, 28))
		return stripShardTiming(s.Records())
	}
	resident := run(0)
	spilled := run(spillBudget)
	if !reflect.DeepEqual(resident, spilled) {
		t.Fatal("TGA loop records diverge between resident and spilling runs")
	}
	saw := false
	for _, rec := range resident {
		if rec.TGACandidates > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("TGA loop never produced candidates — equivalence proved nothing")
	}
}

// TestSpillMergedViewsMatchResident checks the merged accessors (the
// experiment suite's read path) agree between implementations after a
// real run.
func TestSpillMergedViewsMatchResident(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfgR := DefaultConfig(1)
	cfgR.GFWFilterFromDay = 150
	resident := NewService(cfgR, n, feeds, nil)
	runDays(t, resident, weekly(0, 84))

	spilling := spillTinyRunDays(t, weekly(0, 84))
	defer spilling.Close()

	if got, want := spilling.InputSeen(), resident.InputSeen(); got.Len() != want.Len() {
		t.Fatalf("InputSeen: %d vs %d", got.Len(), want.Len())
	} else {
		for a := range want {
			if !got.Has(a) {
				t.Fatalf("InputSeen missing %v", a)
			}
		}
	}
	if got, want := spilling.EverResponsiveAny(), resident.EverResponsiveAny(); got.Len() != want.Len() {
		t.Fatalf("EverResponsiveAny: %d vs %d", got.Len(), want.Len())
	}
	if got, want := spilling.EverResponsiveAnyLen(), resident.EverResponsiveAnyLen(); got != want {
		t.Fatalf("EverResponsiveAnyLen: %d vs %d", got, want)
	}
}

// spillTinyRunDays runs the tiny world under budget for the given days
// (GFW filter at 150, like the reference scenario).
func spillTinyRunDays(t testing.TB, days []int) *Service {
	t.Helper()
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.GFWFilterFromDay = 150
	cfg.MemoryBudget = spillBudget
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, days)
	return s
}
