package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"hitlist6/internal/fleet"
)

// fleetTinyRun is refTinyRun with the main scan running fleet-backed.
func fleetTinyRun(t testing.TB, workers int, hook fleet.FaultHook) ([]*ScanRecord, map[int]*Snapshot, *Service) {
	t.Helper()
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.GFWFilterFromDay = 150
	cfg.SnapshotDays = []int{14, 70, 180}
	cfg.FleetWorkers = workers
	cfg.FleetFaultHook = hook
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, weekly(0, 196))
	return s.Records(), s.Snapshots(), s
}

// TestFleetServiceMatchesReference pins the tentpole invariant at the
// service level: a fleet-backed pipeline produces records and snapshots
// bit-identical to the single-scanner goldens, for several node counts,
// with the previous scan's shard profile actively steering assignment
// from the second scan on.
func TestFleetServiceMatchesReference(t *testing.T) {
	for _, workers := range []int{2, 4} {
		recs, snaps, s := fleetTinyRun(t, workers, nil)
		compareGolden(t, "reference_tiny.json", goldenFrom(recs, snaps), fmt.Sprintf("fleet workers=%d", workers))
		res := s.LastFleet()
		if len(res.Workers) != workers {
			t.Fatalf("fleet workers=%d: LastFleet reports %d workers", workers, len(res.Workers))
		}
		shards := 0
		for _, ws := range res.Workers {
			shards += ws.Shards
		}
		if shards == 0 {
			t.Fatalf("fleet workers=%d: no shards attributed to any worker", workers)
		}
	}
}

// TestFleetServiceSurvivesWorkerDeath injects one worker death (first
// batch fault point of the whole run, i.e. mid-first-scan) and expects
// the re-issued shards to leave the goldens untouched.
func TestFleetServiceSurvivesWorkerDeath(t *testing.T) {
	var killed atomic.Bool
	hook := func(p fleet.FaultPoint) error {
		if p.Batch >= 0 && killed.CompareAndSwap(false, true) {
			return fleet.ErrWorkerKilled
		}
		return nil
	}
	recs, snaps, _ := fleetTinyRun(t, 4, hook)
	if !killed.Load() {
		t.Fatal("fault hook never fired")
	}
	compareGolden(t, "reference_tiny.json", goldenFrom(recs, snaps), "fleet with worker death")
}
