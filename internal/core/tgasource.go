package core

// TGA feedback streaming: the round's responder union is a sharded (and
// possibly disk-backed) set, but ingest consumes one globally ordered
// stream — the order the former materialized union.Sorted() slice fixed,
// which seq numbers and the APD candidate queue depend on. sortedUnionSource
// reproduces exactly that order without materializing anything: one
// ascending cursor per shard, interleaved by an address-keyed min-heap.

import (
	"io"

	"hitlist6/internal/ip6"
)

// addrCursor pulls one shard's members in ascending order; ok=false ends
// the stream.
type addrCursor func() (ip6.Addr, bool, error)

type unionEntry struct {
	head ip6.Addr
	next addrCursor
}

// unionSource is the scan.TargetSource over the merged shard cursors.
type unionSource struct {
	heap []unionEntry
	err  error // deferred cursor error, surfaced on the next pull
}

// sortedUnionSource streams u's members in ascending address order —
// byte-identical to scan.SliceSource over a sorted materialization of u.
// The set must not be mutated while the source is being consumed.
func sortedUnionSource(u ip6.SpillableSet) (*unionSource, error) {
	s := &unionSource{}
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if u.ShardLen(sh) == 0 {
			continue
		}
		cur, err := shardSortedCursor(u, sh)
		if err != nil {
			return nil, err
		}
		a, ok, err := cur()
		if err != nil {
			return nil, err
		}
		if ok {
			s.heap = append(s.heap, unionEntry{head: a, next: cur})
		}
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	return s, nil
}

// shardSortedCursor returns shard sh's ascending cursor: the spill set's
// run-merging cursor when the union is disk-backed, otherwise a sort of
// the resident shard (scan-sized — one shard of one round's responders).
func shardSortedCursor(u ip6.SpillableSet, sh int) (addrCursor, error) {
	if sp, ok := u.(*ip6.SpillSet); ok {
		return sp.ShardSortedCursor(sh)
	}
	members := make([]ip6.Addr, 0, u.ShardLen(sh))
	u.WalkShard(sh, func(a ip6.Addr) bool {
		members = append(members, a)
		return true
	})
	ip6.SortAddrs(members)
	i := 0
	return func() (ip6.Addr, bool, error) {
		if i >= len(members) {
			return ip6.Addr{}, false, nil
		}
		a := members[i]
		i++
		return a, true, nil
	}, nil
}

func (s *unionSource) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.heap) && s.heap[l].head.Less(s.heap[min].head) {
			min = l
		}
		if r < len(s.heap) && s.heap[r].head.Less(s.heap[min].head) {
			min = r
		}
		if min == i {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}

// Next implements scan.TargetSource.
func (s *unionSource) Next(buf []ip6.Addr) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(buf) && len(s.heap) > 0 {
		e := &s.heap[0]
		buf[n] = e.head
		n++
		a, ok, err := e.next()
		if err != nil {
			// Deliver what was already merged; the error surfaces on the
			// next pull so no address is lost or reordered.
			s.err = err
			return n, nil
		}
		if ok {
			e.head = a
		} else {
			last := len(s.heap) - 1
			s.heap[0] = s.heap[last]
			s.heap = s.heap[:last]
		}
		if len(s.heap) > 0 {
			s.siftDown(0)
		}
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}
