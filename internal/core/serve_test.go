package core

import (
	"sync"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/serve"
)

// TestServeSnapshotsPublished checks the publish hook end to end on the
// tiny world: a snapshot appears after the first scan, generations
// advance with the timeline, and the queryable dimensions (liveness,
// alias membership, GFW evidence) match the service's own cumulative
// state.
func TestServeSnapshotsPublished(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.ServeSnapshots = true
	s := NewService(cfg, n, feeds, nil)
	h := s.QueryHandle()
	if h == nil || h.Current() != nil {
		t.Fatalf("handle before first scan: %v, current %v", h, h.Current())
	}

	runDays(t, s, weekly(0, 28))
	snap := h.Current()
	if snap == nil {
		t.Fatal("no snapshot published")
	}
	if snap.Day != 28 || snap.Generation != 5 {
		t.Fatalf("snapshot day=%d gen=%d, want day=28 gen=5", snap.Day, snap.Generation)
	}

	web := ip6.MustParseAddr("2001:100::80")
	ans, ok := h.Lookup(web)
	if !ok || !ans.Live || !ans.Protos.Has(netmodel.ICMP) || !ans.Protos.Has(netmodel.TCP80) {
		t.Fatalf("web answer = %+v ok=%v", ans, ok)
	}
	aliasAddr := ip6.MustParsePrefix("2001:100:a::/64").NthAddr(7)
	if ans, _ := h.Lookup(aliasAddr); !ans.Aliased || ans.AliasPrefix.Bits() != 64 {
		t.Fatalf("alias answer = %+v", ans)
	}
	if ans, _ := h.Lookup(ip6.MustParseAddr("2001:100::4444")); ans.Live || ans.Aliased || ans.Injected {
		t.Fatalf("absent answer = %+v", ans)
	}
	// The snapshot agrees with the service's own published views.
	if got, want := snap.Any.Len(), s.Records()[len(s.Records())-1].TotalClean; got != want {
		t.Fatalf("snapshot Any len = %d, service TotalClean = %d", got, want)
	}
}

// TestServeEveryGate checks the ServeEvery downsampling: the first scan
// always publishes, then every Nth finalization.
func TestServeEveryGate(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.ServeSnapshots = true
	cfg.ServeEvery = 3
	s := NewService(cfg, n, feeds, nil)

	days := weekly(0, 42) // 7 scans → publishes at scans 1, 4, 7
	var gens []uint64
	for _, d := range days {
		runDays(t, s, []int{d})
		gens = append(gens, s.QueryHandle().Current().Generation)
	}
	want := []uint64{1, 1, 1, 2, 2, 2, 3}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("generations after each scan = %v, want %v", gens, want)
		}
	}
}

// TestServePublishSharesUnchangedShards pins copy-on-publish: between
// consecutive published generations, shards whose membership did not
// change are literally the same frozen slices (pointer-shared), shards
// that changed are fresh arrays, and the very first publish — with no
// previous generation — is a full freeze sharing nothing.
func TestServePublishSharesUnchangedShards(t *testing.T) {
	sliceShared := func(a, b []ip6.Addr) bool {
		return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
	}
	sliceEqual := func(a, b []ip6.Addr) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.ServeSnapshots = true
	cfg.GFWFilterFromDay = 90
	s := NewService(cfg, n, feeds, nil)
	h := s.QueryHandle()

	days := weekly(0, 112)
	runDays(t, s, days[:1])
	if _, shared, _ := h.PublishStats(); shared != 0 {
		t.Fatalf("first publish shared %d shards, want 0 (no previous generation)", shared)
	}

	prev := h.Current()
	sharedShards, changedShards := 0, 0
	for _, d := range days[1:] {
		runDays(t, s, []int{d})
		cur := h.Current()
		pairs := [][2]*ip6.SortedShardSet{{prev.Any, cur.Any}, {prev.Injected, cur.Injected}}
		for _, p := range s.cfg.Protocols {
			pairs = append(pairs, [2]*ip6.SortedShardSet{prev.PerProto[p], cur.PerProto[p]})
		}
		for _, pp := range pairs {
			for sh := 0; sh < ip6.AddrShards; sh++ {
				as, bs := pp[0].Shard(sh), pp[1].Shard(sh)
				switch {
				case sliceShared(as, bs):
					sharedShards++
				case !sliceEqual(as, bs):
					changedShards++
				}
			}
		}
		prev = cur
	}
	// The tiny world is stable between most scans, so unchanged shards
	// dominate; it also churns (host death at day 50, the injection era
	// from day 60), so changed shards occur and are never shared.
	if sharedShards == 0 {
		t.Fatal("no shard was ever pointer-shared between consecutive generations")
	}
	if changedShards == 0 {
		t.Fatal("no shard ever changed — the churn half of the test did not run")
	}
	refrozen, shared, _ := h.PublishStats()
	if shared == 0 || refrozen == 0 {
		t.Fatalf("publish stats refrozen=%d shared=%d, want both nonzero", refrozen, shared)
	}
}

// TestServeConsistencyUnderScan is the serving layer's race test: N
// goroutines hammer QueryHandle lookups while the timeline advances
// through K scans (host death, alias detection, the GFW injection era
// and the filter deployment all inside the window). Every sampled
// answer must be internally consistent with exactly one published
// snapshot — re-deriving the answer from the snapshot of the sampled
// generation must reproduce it field for field, and generations must
// advance monotonically per reader. Run under -race this also proves
// the publish/read path has no data races: published snapshots are
// independent frozen copies, so scan-side mutation never touches them.
func TestServeConsistencyUnderScan(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.ServeSnapshots = true
	cfg.GFWFilterFromDay = 90
	s := NewService(cfg, n, feeds, nil)
	h := s.QueryHandle()

	probes := []ip6.Addr{
		ip6.MustParseAddr("2001:100::80"),                 // stable web host
		ip6.MustParseAddr("2001:100::81"),                 // dies at day 50
		ip6.MustParsePrefix("2001:100:a::/64").NthAddr(7), // aliased
		ip6.MustParseAddr("240e::1"),                      // GFW-injected from day 60
		ip6.MustParseAddr("240e::2"),
		ip6.MustParseAddr("2001:100::4444"), // never listed
	}

	type sample struct {
		addr ip6.Addr
		ans  serve.Answer
	}
	const readers = 8
	samples := make([][]sample, readers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			finals := len(probes) // guaranteed post-timeline samples
			for i := 0; ; i++ {
				select {
				case <-done:
					// A few guaranteed samples after the timeline finishes
					// — the checker never runs on an empty set even when
					// the scans outpace the scheduler.
					if finals--; finals < 0 {
						return
					}
				default:
				}
				a := probes[i%len(probes)]
				ans, ok := h.Lookup(a)
				if !ok {
					continue // before the first publish
				}
				if ans.Generation < lastGen {
					t.Errorf("reader %d: generation went backwards: %d after %d", r, ans.Generation, lastGen)
					return
				}
				lastGen = ans.Generation
				// Keep a bounded but churn-covering sample.
				if len(samples[r]) < 50000 {
					samples[r] = append(samples[r], sample{a, ans})
				}
			}
		}(r)
	}

	// Advance the timeline while the readers run, recording every
	// published snapshot by generation (publishes happen synchronously
	// inside RunScan, so after it returns Current is this scan's).
	snaps := make(map[uint64]*serve.Snapshot)
	for _, d := range weekly(0, 112) {
		runDays(t, s, []int{d})
		snap := h.Current()
		snaps[snap.Generation] = snap
	}
	close(done)
	wg.Wait()

	checked := 0
	for r := range samples {
		for _, smp := range samples[r] {
			snap := snaps[smp.ans.Generation]
			if snap == nil {
				t.Fatalf("sampled generation %d was never recorded", smp.ans.Generation)
			}
			if want := snap.Lookup(smp.addr); want != smp.ans {
				t.Fatalf("torn answer for %v at gen %d:\n  sampled %+v\n  snapshot %+v",
					smp.addr, smp.ans.Generation, smp.ans, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no reader observed a snapshot")
	}
}
