package core

import (
	"context"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/sources"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// tinyWorld is a hand-built world: one web host, one aliased /64, one
// GFW-affected CN region with an injection era, and feeds delivering them.
func tinyWorld(t testing.TB) (*netmodel.Network, []*sources.Feed) {
	t.Helper()
	ases := []*netmodel.AS{
		{ASN: 100, Name: "Cloud", Country: "DE", Category: netmodel.CatCloud,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:100::/32")}, AnnouncedFrom: []int{0}},
		{ASN: 4134, Name: "CN", Country: "CN", Category: netmodel.CatISP, RouterRotationDays: 7,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("240e::/24")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(1, netmodel.NewASTable(ases))
	web := ip6.MustParseAddr("2001:100::80")
	n.AddHost(&netmodel.Host{Addr: web, Protos: netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80),
		BornDay: 0, DeathDay: netmodel.Forever, UptimePermille: 1000, FP: netmodel.FPLinux, MTU: 1500})
	// A host that dies at day 50: must be evicted ~30 days later.
	dying := ip6.MustParseAddr("2001:100::81")
	n.AddHost(&netmodel.Host{Addr: dying, Protos: netmodel.ProtoSetOf(netmodel.ICMP),
		BornDay: 0, DeathDay: 50, UptimePermille: 1000, MTU: 1500})
	n.AddAlias(&netmodel.AliasRule{
		Prefix: ip6.MustParsePrefix("2001:100:a::/64"), AS: ases[0],
		Protos:  netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80),
		BornDay: 0, DeathDay: netmodel.Forever, Backends: 1, FP: netmodel.FPBSD, MTU: 1500})
	g := netmodel.NewGFWModel(1)
	g.AffectedASNs[4134] = true
	g.BlockedDomains["google.com"] = true
	g.Eras = []netmodel.InjectionEra{{StartDay: 60, EndDay: 200, Mode: netmodel.InjectTeredo}}
	n.GFW = g

	aliasAddr := ip6.MustParsePrefix("2001:100:a::/64").NthAddr(7)
	cn1 := ip6.MustParseAddr("240e::1")
	cn2 := ip6.MustParseAddr("240e::2")
	feeds := []*sources.Feed{
		sources.Recurring("dns", 0, netmodel.Forever, func(day int) []ip6.Addr {
			return []ip6.Addr{web, dying, aliasAddr}
		}),
		sources.Recurring("cn", 0, netmodel.Forever, func(day int) []ip6.Addr {
			if day >= 60 {
				return []ip6.Addr{cn1, cn2}
			}
			return nil
		}),
	}
	return n, feeds
}

func runDays(t testing.TB, s *Service, days []int) {
	t.Helper()
	for _, d := range days {
		if _, err := s.RunScan(context.Background(), d); err != nil {
			t.Fatalf("scan at day %d: %v", d, err)
		}
	}
}

func weekly(from, to int) []int {
	var out []int
	for d := from; d <= to; d += 7 {
		out = append(out, d)
	}
	return out
}

func TestPipelineBasics(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	s := NewService(cfg, n, feeds, nil)

	runDays(t, s, weekly(0, 28))
	recs := s.Records()
	if len(recs) != 5 {
		t.Fatalf("records: %d", len(recs))
	}
	r0 := recs[0]
	if r0.NewInput != 3 {
		t.Errorf("new input: %d", r0.NewInput)
	}
	// The aliased /64 was filtered before scanning (detected via the /64
	// candidate from input).
	if r0.AliasedInput == 0 {
		t.Error("alias filter did not fire")
	}
	if r0.ScannedTargets != 2 {
		t.Errorf("scan set: %d", r0.ScannedTargets)
	}
	if r0.ResponsiveClean[netmodel.ICMP] != 2 || r0.ResponsiveClean[netmodel.TCP80] != 1 {
		t.Errorf("responsive: %+v", r0.ResponsiveClean)
	}
	if r0.TotalClean != 2 || r0.FirstResp != 2 {
		t.Errorf("totals: %+v", r0)
	}
	// Later scans: no new input (dedup), stable responsiveness.
	if recs[1].NewInput != 0 {
		t.Errorf("dedup failed: %d new", recs[1].NewInput)
	}
	if s.AliasedPrefixes().Len() == 0 {
		t.Error("no aliased prefixes recorded")
	}
}

func TestThirtyDayEviction(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.RetainUnresponsive = true
	s := NewService(cfg, n, feeds, nil)

	runDays(t, s, weekly(0, 112))
	dying := ip6.MustParseAddr("2001:100::81")
	if s.UnresponsivePool().Len() == 0 || !s.UnresponsivePool().Has(dying) {
		t.Errorf("dying host not evicted: pool=%v", s.UnresponsivePool().Sorted())
	}
	// The web host survives.
	last := s.Records()[len(s.Records())-1]
	if last.ResponsiveClean[netmodel.ICMP] < 1 {
		t.Error("web host lost")
	}
	// Unresp churn fired when the dying host vanished.
	sawUnresp := false
	for _, rec := range s.Records() {
		if rec.Unresp > 0 {
			sawUnresp = true
		}
	}
	if !sawUnresp {
		t.Error("no unresponsive churn recorded")
	}
}

func TestGFWPublishedVsCleanAndFilter(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.GFWFilterFromDay = 150
	s := NewService(cfg, n, feeds, nil)

	runDays(t, s, weekly(0, 196))

	var peakRaw, peakClean, injectedAt int
	for _, rec := range s.Records() {
		if rec.ResponsiveRaw[netmodel.UDP53] > peakRaw {
			peakRaw = rec.ResponsiveRaw[netmodel.UDP53]
			injectedAt = rec.Day
		}
		if rec.ResponsiveClean[netmodel.UDP53] > peakClean {
			peakClean = rec.ResponsiveClean[netmodel.UDP53]
		}
	}
	if peakRaw < 2 {
		t.Fatalf("no DNS spike in published view (peak %d)", peakRaw)
	}
	if peakClean != 0 {
		t.Errorf("cleaned view shows injected responders: %d", peakClean)
	}
	if injectedAt < 60 {
		t.Errorf("spike before era start: day %d", injectedAt)
	}
	// After deployment, the cumulative filter holds the injected-only
	// addresses and the funnel accounts for them.
	if s.Funnel().GFWFiltered == 0 {
		t.Error("GFW input filter never fired")
	}
	inj, injOnly, _ := s.Tracker().Stats()
	if inj < 2 || injOnly < 2 {
		t.Errorf("tracker stats: %d %d", inj, injOnly)
	}
	// New CN input arriving post-deployment is dropped at ingest.
	gfwIngest := 0
	for _, rec := range s.Records() {
		if rec.Day > 150 {
			gfwIngest += rec.GFWFilteredInput
		}
	}
	_ = gfwIngest // both ingest-drop and active-drop paths are valid here
}

func TestSnapshots(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.SnapshotDays = []int{14, 70}
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, weekly(0, 84))

	snaps := s.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots: %d", len(snaps))
	}
	for day, snap := range snaps {
		if snap.ResponsiveAny.Len() == 0 {
			t.Errorf("snapshot %d empty", day)
		}
		if len(snap.Responsive) == 0 {
			t.Errorf("snapshot %d has no per-protocol sets", day)
		}
	}
	if !snaps[14].Responsive[netmodel.ICMP].Has(ip6.MustParseAddr("2001:100::80")) {
		t.Error("web host missing from snapshot")
	}
}

func TestFunnelAccounting(t *testing.T) {
	n, feeds := tinyWorld(t)
	s := NewService(DefaultConfig(1), n, feeds, nil)
	runDays(t, s, weekly(0, 28))
	f := s.Funnel()
	if f.Input != 3 {
		t.Errorf("funnel input: %d", f.Input)
	}
	if f.AliasedInput == 0 {
		t.Errorf("funnel aliased: %+v", f)
	}
	if f.ActiveScan == 0 || f.Responsive == 0 {
		t.Errorf("funnel active/responsive: %+v", f)
	}
	if got := s.InputByFeed()["dns"]; got != 3 {
		t.Errorf("per-feed input: %d", got)
	}
	if len(s.PerASInput()) == 0 {
		t.Error("per-AS input empty")
	}
}

func TestBlocklistFilter(t *testing.T) {
	n, feeds := tinyWorld(t)
	bl := ip6.NewPrefixSet()
	bl.Add(ip6.MustParsePrefix("2001:100::80/128"))
	s := NewService(DefaultConfig(1), n, feeds, bl)
	runDays(t, s, []int{0})
	rec := s.Records()[0]
	if rec.BlockedInput != 1 {
		t.Errorf("blocked: %d", rec.BlockedInput)
	}
	if rec.ResponsiveClean[netmodel.TCP80] != 0 {
		t.Error("blocked host was scanned")
	}
}

// TestServiceOnGeneratedWorld is the end-to-end smoke test: a miniature
// paper world run through a compressed schedule.
func TestServiceOnGeneratedWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-world run in -short mode")
	}
	w, err := worldgen.Generate(worldgen.TestParams(11))
	if err != nil {
		t.Fatal(err)
	}
	tracer := yarrp.New(w.Net, yarrp.Config{Seed: 11})
	feeds := w.BuildFeeds(tracer)
	cfg := DefaultConfig(11)
	cfg.GFWFilterFromDay = worldgen.GFWFilterDeployDay
	cfg.SnapshotDays = w.SnapshotDays()
	s := NewService(cfg, w.Net, feeds, w.Blocklist)

	// Every 4th scheduled scan keeps the test fast.
	for i := 0; i < len(w.ScanDays); i += 4 {
		if _, err := s.RunScan(context.Background(), w.ScanDays[i]); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Records()
	last := recs[len(recs)-1]
	if last.TotalClean == 0 {
		t.Fatal("no responsive addresses at the end")
	}
	if s.AliasedPrefixes().Len() == 0 {
		t.Error("no aliased prefixes detected")
	}
	// The GFW spike must be visible in raw-vs-clean DNS at some scan.
	sawSpike := false
	for _, rec := range recs {
		if rec.ResponsiveRaw[netmodel.UDP53] > 3*(rec.ResponsiveClean[netmodel.UDP53]+1) {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Error("no GFW spike in published view")
	}
	// Churn is recorded.
	churn := 0
	for _, rec := range recs {
		churn += rec.FirstResp + rec.RespAgain + rec.Unresp
	}
	if churn == 0 {
		t.Error("no churn recorded")
	}
	if s.EverResponsiveAnyLen() < last.TotalClean {
		t.Error("cumulative responsive smaller than current")
	}
}
