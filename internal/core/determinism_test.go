package core

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
	"hitlist6/internal/sources"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// generatedWorld builds a miniature generated world plus its feeds; each
// call is independent so runs can be compared for determinism.
func generatedWorld(t testing.TB, seed uint64) (*netmodel.Network, []*sources.Feed) {
	t.Helper()
	w, err := worldgen.Generate(worldgen.TestParams(seed))
	if err != nil {
		t.Fatal(err)
	}
	tracer := yarrp.New(w.Net, yarrp.Config{Seed: seed})
	return w.Net, w.BuildFeeds(tracer)
}

// stripShardTiming normalizes the throughput-telemetry parts of the
// per-shard stats before determinism comparisons: Nanos measures the
// machine (wall clock) and Batches the batch-size configuration, so
// neither is a deterministic scan output. Per-shard probes, responses
// and successes stay — they must be bit-identical like everything else.
func stripShardTiming(recs []*ScanRecord) []*ScanRecord {
	for _, r := range recs {
		for i := range r.ShardStats {
			r.ShardStats[i].Nanos = 0
			r.ShardStats[i].Batches = 0
		}
	}
	return recs
}

// TestDigestDeterministicAcrossWorkersAndBatches is the streaming
// engine's core guarantee: scan records and snapshots are bit-identical
// no matter how many workers probe the shards or how the batches are cut.
func TestDigestDeterministicAcrossWorkersAndBatches(t *testing.T) {
	run := func(workers, batch int) ([]*ScanRecord, map[int]*Snapshot) {
		n, feeds := tinyWorld(t)
		cfg := DefaultConfig(1)
		cfg.GFWFilterFromDay = 150
		cfg.SnapshotDays = []int{14, 70, 180}
		cfg.ScanWorkers = workers
		cfg.ScanBatchSize = batch
		s := NewService(cfg, n, feeds, nil)
		runDays(t, s, weekly(0, 196))
		return stripShardTiming(s.Records()), s.Snapshots()
	}

	baseRecs, baseSnaps := run(1, 1)
	if len(baseRecs) == 0 || len(baseSnaps) != 3 {
		t.Fatalf("baseline run: %d records, %d snapshots", len(baseRecs), len(baseSnaps))
	}
	// The baseline run must exercise the interesting paths, or equality
	// proves nothing.
	sawChurn, sawInjected := false, false
	for _, rec := range baseRecs {
		if rec.FirstResp+rec.RespAgain+rec.Unresp > 0 {
			sawChurn = true
		}
		if rec.InjectedDNS > 0 {
			sawInjected = true
		}
	}
	if !sawChurn || !sawInjected {
		t.Fatalf("baseline run too quiet: churn=%v injected=%v", sawChurn, sawInjected)
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, batch := range []int{0, 3, 64} {
			recs, snaps := run(workers, batch)
			if !reflect.DeepEqual(baseRecs, recs) {
				t.Errorf("workers=%d batch=%d: records differ from workers=1 batch=1", workers, batch)
				for i := range baseRecs {
					if i < len(recs) && !reflect.DeepEqual(baseRecs[i], recs[i]) {
						t.Errorf("  first divergence at record %d:\n  base: %+v\n  got:  %+v",
							i, *baseRecs[i], *recs[i])
						break
					}
				}
			}
			if !reflect.DeepEqual(baseSnaps, snaps) {
				t.Errorf("workers=%d batch=%d: snapshots differ", workers, batch)
			}
		}
	}
}

// TestDigestDeterministicOnGeneratedWorld repeats the check on a
// generated world — bigger active sets, real feed churn, APD rounds —
// with a compressed schedule.
func TestDigestDeterministicOnGeneratedWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-world determinism in -short mode")
	}
	run := func(workers, batch int) []*ScanRecord {
		w, feeds := generatedWorld(t, 23)
		cfg := DefaultConfig(23)
		cfg.ScanWorkers = workers
		cfg.ScanBatchSize = batch
		s := NewService(cfg, w, feeds, nil)
		for d := 0; d <= 140; d += 14 {
			if _, err := s.RunScan(context.Background(), d); err != nil {
				t.Fatal(err)
			}
		}
		return stripShardTiming(s.Records())
	}
	base := run(1, 2)
	if last := base[len(base)-1]; last.TotalClean == 0 {
		t.Fatal("generated world produced no responsive addresses")
	}
	got := run(runtime.GOMAXPROCS(0), 128)
	if !reflect.DeepEqual(base, got) {
		t.Error("records diverge between serial/tiny-batch and parallel/big-batch runs")
	}
}

// TestDigestSinkIsPureAccumulation pins the abort-atomicity contract: the
// streaming sink folds batches into shard-local digests only, so a scan
// that errors or is cancelled mid-stream leaves the service — tracker
// evidence, target liveness — exactly as it was. State changes happen
// solely in finalizeDigest, which runs only for completed scans.
func TestDigestSinkIsPureAccumulation(t *testing.T) {
	n, feeds := tinyWorld(t)
	s := NewService(DefaultConfig(1), n, feeds, nil)
	runDays(t, s, []int{0})

	web := ip6.MustParseAddr("2001:100::80")
	st, ok := s.active.Get(web)
	if !ok {
		t.Fatal("web host not active")
	}
	dayBefore := st.lastSuccessDay
	injBefore, _, otherBefore := s.Tracker().Stats()

	// fresh has never responded before, so its tracker evidence is new.
	fresh := ip6.MustParseAddr("2001:100::99")
	digests := make([]*shardDigest, ip6.AddrShards)
	sink := s.digestSink(digests)
	for _, r := range []scan.Result{
		{Target: web, Proto: netmodel.ICMP, Day: 7, Success: true},
		{Target: fresh, Proto: netmodel.ICMP, Day: 7, Success: true},
	} {
		if err := sink(&scan.Batch{Shard: ip6.ShardOf(r.Target), Results: []scan.Result{r}}); err != nil {
			t.Fatal(err)
		}
	}

	// The sink alone must not have touched service state.
	if st.lastSuccessDay != dayBefore {
		t.Errorf("sink bumped lastSuccessDay: %d", st.lastSuccessDay)
	}
	if inj, _, other := s.Tracker().Stats(); inj != injBefore || other != otherBefore {
		t.Errorf("sink mutated tracker: injected %d→%d other %d→%d", injBefore, inj, otherBefore, other)
	}

	// Finalize applies it.
	s.finalizeDigest(digests, 7, &ScanRecord{})
	if st.lastSuccessDay != 7 {
		t.Errorf("finalize did not bump lastSuccessDay: %d", st.lastSuccessDay)
	}
	if _, _, other := s.Tracker().Stats(); other != otherBefore+1 {
		t.Errorf("finalize did not record evidence: other %d→%d", otherBefore, other)
	}
}

// updateRef regenerates the committed reference goldens. They were
// captured from the pre-sharded-store implementation (the serial
// map[Addr]*targetState bookkeeping loop) and pin the refactor to
// bit-identical records and snapshots; only regenerate them for a change
// that intentionally alters service outputs.
var updateRef = flag.Bool("update-ref", false, "regenerate testdata reference goldens")

// refSnapshot is the JSON shape of one snapshot in the golden file:
// every set rendered as sorted address strings so encoding is canonical.
type refSnapshot struct {
	Day           int                 `json:"day"`
	ResponsiveAny []string            `json:"responsiveAny"`
	Responsive    map[string][]string `json:"responsive"`
	Aliased       []string            `json:"aliased"`
}

type refGolden struct {
	Records   []*ScanRecord           `json:"records"`
	Snapshots map[string]*refSnapshot `json:"snapshots,omitempty"`
}

func setStrings(s ip6.Set) []string {
	out := make([]string, 0, s.Len())
	for _, a := range s.Sorted() {
		out = append(out, a.String())
	}
	return out
}

func goldenFrom(recs []*ScanRecord, snaps map[int]*Snapshot) *refGolden {
	g := &refGolden{Records: recs}
	if len(snaps) > 0 {
		g.Snapshots = make(map[string]*refSnapshot, len(snaps))
		for day, snap := range snaps {
			rs := &refSnapshot{
				Day:           snap.Day,
				ResponsiveAny: setStrings(snap.ResponsiveAny),
				Responsive:    make(map[string][]string, len(snap.Responsive)),
			}
			for p, set := range snap.Responsive {
				rs.Responsive[fmt.Sprint(int(p))] = setStrings(set)
			}
			for _, p := range snap.Aliased {
				rs.Aliased = append(rs.Aliased, p.String())
			}
			sort.Strings(rs.Aliased)
			g.Snapshots[fmt.Sprint(day)] = rs
		}
	}
	return g
}

// refTinyRun executes the hand-built-world reference scenario.
func refTinyRun(t testing.TB, workers, batch int) ([]*ScanRecord, map[int]*Snapshot) {
	t.Helper()
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.GFWFilterFromDay = 150
	cfg.SnapshotDays = []int{14, 70, 180}
	cfg.ScanWorkers = workers
	cfg.ScanBatchSize = batch
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, weekly(0, 196))
	return s.Records(), s.Snapshots()
}

// refGeneratedRun executes the generated-world reference scenario.
func refGeneratedRun(t testing.TB, workers, batch int) []*ScanRecord {
	t.Helper()
	w, feeds := generatedWorld(t, 23)
	cfg := DefaultConfig(23)
	cfg.ScanWorkers = workers
	cfg.ScanBatchSize = batch
	s := NewService(cfg, w, feeds, nil)
	for d := 0; d <= 140; d += 14 {
		if _, err := s.RunScan(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	return s.Records()
}

func refPath(name string) string { return filepath.Join("testdata", name) }

func writeGolden(t *testing.T, name string, g *refGolden) {
	t.Helper()
	data, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(refPath(name), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func compareGolden(t *testing.T, name string, g *refGolden, label string) {
	t.Helper()
	want, err := os.ReadFile(refPath(name))
	if err != nil {
		t.Fatalf("reference golden missing (run with -update-ref to capture): %v", err)
	}
	got, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if string(got) == string(want) {
		return
	}
	// Locate the first diverging record for a readable failure.
	var ref refGolden
	if err := json.Unmarshal(want, &ref); err != nil {
		t.Fatalf("%s: golden %s unreadable: %v", label, name, err)
	}
	for i := range ref.Records {
		if i >= len(g.Records) {
			t.Fatalf("%s: %s: only %d of %d reference records produced", label, name, len(g.Records), len(ref.Records))
		}
		if !reflect.DeepEqual(ref.Records[i], g.Records[i]) {
			t.Fatalf("%s: %s: first divergence at record %d:\n ref: %+v\n got: %+v",
				label, name, i, *ref.Records[i], *g.Records[i])
		}
	}
	t.Fatalf("%s: %s: snapshots diverge from pre-refactor reference", label, name)
}

// TestShardedStoreMatchesReference proves the sharded target store is an
// exact refactor: records and snapshots stay bit-identical to goldens
// captured from the pre-refactor serial implementation, across several
// worker-count settings (and a non-default batch size for good measure).
func TestShardedStoreMatchesReference(t *testing.T) {
	if *updateRef {
		recs, snaps := refTinyRun(t, 1, 1)
		writeGolden(t, "reference_tiny.json", goldenFrom(recs, snaps))
		writeGolden(t, "reference_generated.json", goldenFrom(refGeneratedRun(t, 1, 1), nil))
		t.Log("reference goldens regenerated")
		return
	}
	for _, workers := range []int{1, 2, 5, 8} {
		recs, snaps := refTinyRun(t, workers, 0)
		compareGolden(t, "reference_tiny.json", goldenFrom(recs, snaps), fmt.Sprintf("tiny workers=%d", workers))
	}
	if testing.Short() {
		t.Skip("generated-world reference comparison in -short mode")
	}
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0) + 2} {
		g := goldenFrom(refGeneratedRun(t, workers, 64), nil)
		compareGolden(t, "reference_generated.json", g, fmt.Sprintf("generated workers=%d", workers))
	}
}

// TestEverResponsiveMergedViews pins the merged accessors the experiment
// suite reads after the sharded-accumulator refactor.
func TestEverResponsiveMergedViews(t *testing.T) {
	n, feeds := tinyWorld(t)
	s := NewService(DefaultConfig(1), n, feeds, nil)
	runDays(t, s, weekly(0, 28))

	any := s.EverResponsiveAny()
	if any.Len() == 0 {
		t.Fatal("no cumulative responsive addresses")
	}
	perProto := 0
	for p := 0; p < netmodel.NumProtocols; p++ {
		set := s.EverResponsive(netmodel.Protocol(p))
		perProto += set.Len()
		for a := range set {
			if !any.Has(a) {
				t.Errorf("proto %d member %v missing from any-view", p, a)
			}
		}
	}
	if perProto < any.Len() {
		t.Errorf("per-proto views (%d) smaller than any-view (%d)", perProto, any.Len())
	}
	// Merged views are copies: mutating one must not corrupt the service.
	before := s.EverResponsiveAny().Len()
	for a := range any {
		any.Delete(a)
	}
	if s.EverResponsiveAny().Len() != before {
		t.Error("merged view shares storage with service state")
	}
}
