package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
	"hitlist6/internal/sources"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// generatedWorld builds a miniature generated world plus its feeds; each
// call is independent so runs can be compared for determinism.
func generatedWorld(t testing.TB, seed uint64) (*netmodel.Network, []*sources.Feed) {
	t.Helper()
	w, err := worldgen.Generate(worldgen.TestParams(seed))
	if err != nil {
		t.Fatal(err)
	}
	tracer := yarrp.New(w.Net, yarrp.Config{Seed: seed})
	return w.Net, w.BuildFeeds(tracer)
}

// TestDigestDeterministicAcrossWorkersAndBatches is the streaming
// engine's core guarantee: scan records and snapshots are bit-identical
// no matter how many workers probe the shards or how the batches are cut.
func TestDigestDeterministicAcrossWorkersAndBatches(t *testing.T) {
	run := func(workers, batch int) ([]*ScanRecord, map[int]*Snapshot) {
		n, feeds := tinyWorld(t)
		cfg := DefaultConfig(1)
		cfg.GFWFilterFromDay = 150
		cfg.SnapshotDays = []int{14, 70, 180}
		cfg.ScanWorkers = workers
		cfg.ScanBatchSize = batch
		s := NewService(cfg, n, feeds, nil)
		runDays(t, s, weekly(0, 196))
		return s.Records(), s.Snapshots()
	}

	baseRecs, baseSnaps := run(1, 1)
	if len(baseRecs) == 0 || len(baseSnaps) != 3 {
		t.Fatalf("baseline run: %d records, %d snapshots", len(baseRecs), len(baseSnaps))
	}
	// The baseline run must exercise the interesting paths, or equality
	// proves nothing.
	sawChurn, sawInjected := false, false
	for _, rec := range baseRecs {
		if rec.FirstResp+rec.RespAgain+rec.Unresp > 0 {
			sawChurn = true
		}
		if rec.InjectedDNS > 0 {
			sawInjected = true
		}
	}
	if !sawChurn || !sawInjected {
		t.Fatalf("baseline run too quiet: churn=%v injected=%v", sawChurn, sawInjected)
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, batch := range []int{0, 3, 64} {
			recs, snaps := run(workers, batch)
			if !reflect.DeepEqual(baseRecs, recs) {
				t.Errorf("workers=%d batch=%d: records differ from workers=1 batch=1", workers, batch)
				for i := range baseRecs {
					if i < len(recs) && !reflect.DeepEqual(baseRecs[i], recs[i]) {
						t.Errorf("  first divergence at record %d:\n  base: %+v\n  got:  %+v",
							i, *baseRecs[i], *recs[i])
						break
					}
				}
			}
			if !reflect.DeepEqual(baseSnaps, snaps) {
				t.Errorf("workers=%d batch=%d: snapshots differ", workers, batch)
			}
		}
	}
}

// TestDigestDeterministicOnGeneratedWorld repeats the check on a
// generated world — bigger active sets, real feed churn, APD rounds —
// with a compressed schedule.
func TestDigestDeterministicOnGeneratedWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-world determinism in -short mode")
	}
	run := func(workers, batch int) []*ScanRecord {
		w, feeds := generatedWorld(t, 23)
		cfg := DefaultConfig(23)
		cfg.ScanWorkers = workers
		cfg.ScanBatchSize = batch
		s := NewService(cfg, w, feeds, nil)
		for d := 0; d <= 140; d += 14 {
			if _, err := s.RunScan(context.Background(), d); err != nil {
				t.Fatal(err)
			}
		}
		return s.Records()
	}
	base := run(1, 2)
	if last := base[len(base)-1]; last.TotalClean == 0 {
		t.Fatal("generated world produced no responsive addresses")
	}
	got := run(runtime.GOMAXPROCS(0), 128)
	if !reflect.DeepEqual(base, got) {
		t.Error("records diverge between serial/tiny-batch and parallel/big-batch runs")
	}
}

// TestDigestSinkIsPureAccumulation pins the abort-atomicity contract: the
// streaming sink folds batches into shard-local digests only, so a scan
// that errors or is cancelled mid-stream leaves the service — tracker
// evidence, target liveness — exactly as it was. State changes happen
// solely in finalizeDigest, which runs only for completed scans.
func TestDigestSinkIsPureAccumulation(t *testing.T) {
	n, feeds := tinyWorld(t)
	s := NewService(DefaultConfig(1), n, feeds, nil)
	runDays(t, s, []int{0})

	web := ip6.MustParseAddr("2001:100::80")
	st, ok := s.active[web]
	if !ok {
		t.Fatal("web host not active")
	}
	dayBefore := st.lastSuccessDay
	injBefore, _, otherBefore := s.Tracker().Stats()

	// fresh has never responded before, so its tracker evidence is new.
	fresh := ip6.MustParseAddr("2001:100::99")
	digests := make([]*shardDigest, ip6.AddrShards)
	sink := s.digestSink(digests)
	for _, r := range []scan.Result{
		{Target: web, Proto: netmodel.ICMP, Day: 7, Success: true},
		{Target: fresh, Proto: netmodel.ICMP, Day: 7, Success: true},
	} {
		if err := sink(&scan.Batch{Shard: ip6.ShardOf(r.Target), Results: []scan.Result{r}}); err != nil {
			t.Fatal(err)
		}
	}

	// The sink alone must not have touched service state.
	if st.lastSuccessDay != dayBefore {
		t.Errorf("sink bumped lastSuccessDay: %d", st.lastSuccessDay)
	}
	if inj, _, other := s.Tracker().Stats(); inj != injBefore || other != otherBefore {
		t.Errorf("sink mutated tracker: injected %d→%d other %d→%d", injBefore, inj, otherBefore, other)
	}

	// Finalize applies it.
	s.finalizeDigest(digests, 7, &ScanRecord{})
	if st.lastSuccessDay != 7 {
		t.Errorf("finalize did not bump lastSuccessDay: %d", st.lastSuccessDay)
	}
	if _, _, other := s.Tracker().Stats(); other != otherBefore+1 {
		t.Errorf("finalize did not record evidence: other %d→%d", otherBefore, other)
	}
}

// TestEverResponsiveMergedViews pins the merged accessors the experiment
// suite reads after the sharded-accumulator refactor.
func TestEverResponsiveMergedViews(t *testing.T) {
	n, feeds := tinyWorld(t)
	s := NewService(DefaultConfig(1), n, feeds, nil)
	runDays(t, s, weekly(0, 28))

	any := s.EverResponsiveAny()
	if any.Len() == 0 {
		t.Fatal("no cumulative responsive addresses")
	}
	perProto := 0
	for p := 0; p < netmodel.NumProtocols; p++ {
		set := s.EverResponsive(netmodel.Protocol(p))
		perProto += set.Len()
		for a := range set {
			if !any.Has(a) {
				t.Errorf("proto %d member %v missing from any-view", p, a)
			}
		}
	}
	if perProto < any.Len() {
		t.Errorf("per-proto views (%d) smaller than any-view (%d)", perProto, any.Len())
	}
	// Merged views are copies: mutating one must not corrupt the service.
	before := s.EverResponsiveAny().Len()
	for a := range any {
		any.Delete(a)
	}
	if s.EverResponsiveAny().Len() != before {
		t.Error("merged view shares storage with service state")
	}
}
