package core

// Checkpoint/restore: a crash-consistent on-disk image of full service
// state, so a multi-week timeline survives restarts. Service.Checkpoint
// stages every piece of cumulative state into a ckpt.Writer — address
// sets as .hl6 images streamed shard-sorted (resident sets sort a copy,
// SpillSets merge their frozen runs without materializing anything),
// the active target store and APD history as small binary tables, and
// counters/records/snapshots as JSON — then commits atomically. Resume
// rebuilds a Service from the newest complete checkpoint; a timeline
// interrupted at day k (SIGKILL included) and resumed is byte-identical
// to an uninterrupted run for any worker count, fleet mode, memory
// budget and serve cadence (TestResumeMatchesUninterrupted).
//
// Deliberately not persisted: lastShardStats (wall-clock dispatch
// profile — outputs are pinned dispatch-order-invariant, so the resumed
// run's first scan just uses canonical order) and published serve
// snapshots (derived state; only the generation counter survives, via
// serve.Handle.RestoreGeneration, so numbering continues seamlessly).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"

	"hitlist6/internal/apd"
	"hitlist6/internal/ckpt"
	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/sources"
)

// Checkpoint payload file names.
const (
	ckptStateFile     = "state.json"
	ckptRecordsFile   = "records.json"
	ckptSnapshotsFile = "snapshots.json"
	ckptActiveFile    = "active.bin"
	ckptInputSeenFile = "inputseen.hl6"
	ckptEverAnyFile   = "everrespany.hl6"
	ckptGFWDropFile   = "gfwdrop.hl6"
	ckptPrevRespFile  = "prevresp.hl6"
	ckptTrkInjFile    = "trk_injected.hl6"
	ckptTrkOtherFile  = "trk_other.hl6"
	ckptTrkRealFile   = "trk_realdns.hl6"
	ckptUnrespFile    = "unresp.hl6"
	ckptAPDFile       = "apd_history.bin"
	ckptPending64File = "pending64.bin"
	ckptSeen64File    = "seen64.bin"
)

func ckptEverRespFile(p int) string  { return fmt.Sprintf("everresp_%d.hl6", p) }
func ckptLastCleanFile(p int) string { return fmt.Sprintf("lastclean_%d.hl6", p) }

// JournalPath returns where the ingest journal for a checkpoint
// directory lives: a sibling file, so the checkpoint directory itself
// only ever holds committed state.
func JournalPath(dir string) string { return dir + ".journal" }

// ckptState is the JSON-encoded scalar state plus the configuration
// digest Resume verifies before loading anything.
type ckptState struct {
	// Configuration digest: the knobs that shape service state. Worker
	// counts, fleet mode, memory budget and batch size are deliberately
	// absent — outputs are pinned invariant to them, so a resumed run
	// may change them freely.
	Seed             uint64 `json:"seed"`
	Protocols        []int  `json:"protocols"`
	UnresponsiveDays int    `json:"unresponsive_days"`
	GFWFilterFromDay int    `json:"gfw_filter_from_day"`
	APDEveryScans    int    `json:"apd_every_scans"`
	APDMaxNew        int    `json:"apd_max_new_candidates"`
	RetainUnresp     bool   `json:"retain_unresponsive"`
	SnapshotDays     []int  `json:"snapshot_days,omitempty"`
	ServeEvery       int    `json:"serve_every,omitempty"`
	TGAFeedName      string `json:"tga_feed,omitempty"`

	// Cursor and cumulative accounting.
	ScanIndex    int                `json:"scan_index"`
	InputTotal   int                `json:"input_total"`
	BlockedTotal int                `json:"blocked_total"`
	GFWTotal     int                `json:"gfw_total"`
	AliasedTotal int                `json:"aliased_total"`
	EvictedTotal int                `json:"evicted_total"`
	GFWDeployed  bool               `json:"gfw_deployed"`
	PerASInput   map[string]ASInput `json:"per_as_input,omitempty"`
	InputByFeed  map[string]int     `json:"input_by_feed,omitempty"`
	Aliased      []string           `json:"aliased_prefixes,omitempty"`
	SnapQueue    []int              `json:"snap_queue,omitempty"`
	ServeScans   int                `json:"serve_scans"`
	Generation   uint64             `json:"generation"`
}

// configState extracts the digest fields from a (normalized) Config.
func configState(cfg Config) ckptState {
	st := ckptState{
		Seed:             cfg.Seed,
		UnresponsiveDays: cfg.UnresponsiveDays,
		GFWFilterFromDay: cfg.GFWFilterFromDay,
		APDEveryScans:    cfg.APDEveryScans,
		APDMaxNew:        cfg.APDMaxNewCandidates,
		RetainUnresp:     cfg.RetainUnresponsive,
		SnapshotDays:     cfg.SnapshotDays,
		ServeEvery:       cfg.ServeEvery,
	}
	for _, p := range cfg.Protocols {
		st.Protocols = append(st.Protocols, int(p))
	}
	if cfg.TGAFeed != nil {
		st.TGAFeedName = cfg.TGAFeed.Name()
	}
	return st
}

// defaultCheckpointFullEvery is the compaction cadence when
// Config.CheckpointFullEvery is unset: one full rewrite per 8
// checkpoints bounds restore to reading at most 8 chain levels.
const defaultCheckpointFullEvery = 8

// ckptMark remembers which set object a checkpoint payload was written
// from and the per-shard epochs at write time. Object identity matters:
// epochs are only comparable within one set object, so a wholesale set
// replacement (GFW-filter deployment swaps in a fresh drop set) makes
// every shard dirty automatically.
type ckptMark struct {
	set    ip6.SpillableSet
	epochs [ip6.AddrShards]uint64
}

func markOf(set ip6.SpillableSet) *ckptMark {
	m := &ckptMark{set: set}
	for sh := 0; sh < ip6.AddrShards; sh++ {
		m.epochs[sh] = set.ShardEpoch(sh)
	}
	return m
}

// dirtyMask returns the bitmap of shards whose epoch moved since mark
// (bit i = shard i dirty); with no usable mark every shard is dirty.
func dirtyMask(mark *ckptMark, set ip6.SpillableSet) uint64 {
	if mark == nil || mark.set != set {
		return ^uint64(0)
	}
	var mask uint64
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if set.ShardEpoch(sh) != mark.epochs[sh] {
			mask |= 1 << uint(sh)
		}
	}
	return mask
}

// ckptPayload is one delta-eligible address-set payload.
type ckptPayload struct {
	name string
	set  ip6.SpillableSet
}

// addrSetPayloads lists the cumulative address sets a checkpoint stages
// as (possibly delta) .hl6 payloads, in canonical write order. The list
// is computed per call: payloads appear as the state they mirror does
// (the GFW drop set after deployment, lastClean after the first scan).
func (s *Service) addrSetPayloads() []ckptPayload {
	out := []ckptPayload{
		{ckptInputSeenFile, s.inputSeen},
		{ckptEverAnyFile, s.everRespAny},
	}
	for p := range s.everResp {
		out = append(out, ckptPayload{ckptEverRespFile(p), s.everResp[p]})
	}
	if s.gfwDeployed {
		out = append(out, ckptPayload{ckptGFWDropFile, s.gfwInputDrop})
	}
	out = append(out, ckptPayload{ckptPrevRespFile, s.prevRespAny})
	if s.lastClean != nil {
		for _, p := range s.cfg.Protocols {
			out = append(out, ckptPayload{ckptLastCleanFile(int(p)), s.lastClean[p]})
		}
	}
	inj, other, real := s.tracker.EvidenceSets()
	out = append(out,
		ckptPayload{ckptTrkInjFile, inj},
		ckptPayload{ckptTrkOtherFile, other},
		ckptPayload{ckptTrkRealFile, real})
	return out
}

// Checkpoint writes a crash-consistent snapshot of the service's full
// state to dir (atomically replacing any previous checkpoint there).
// The service stays usable afterwards; SpillSet deltas are frozen to
// disk as a side effect, which changes no membership observation.
//
// Successive checkpoints into the same directory are written as deltas:
// cumulative address-set payloads carry only the shards whose mutation
// epoch advanced since the previous checkpoint, the superseded head is
// parked as the new head's parent, and Resume resolves shards through
// the chain. Every CheckpointFullEvery-th checkpoint (and any checkpoint
// without a usable parent — first ever, different directory, resumed
// from a fallback) is a full rewrite that collapses the chain.
func (s *Service) Checkpoint(dir string) (err error) {
	if s.spill != nil {
		if err := s.spill.err(); err != nil {
			return fmt.Errorf("core: checkpoint with failed spill state: %w", err)
		}
		if filepath.Clean(dir) == filepath.Clean(s.spill.dir) {
			return fmt.Errorf("core: checkpoint dir %s collides with spill dir", dir)
		}
	}
	fullEvery := s.cfg.CheckpointFullEvery
	if fullEvery <= 0 {
		fullEvery = defaultCheckpointFullEvery
	}
	// Delta only against a head this process wrote (or resumed from) at
	// an earlier scan: equal scan indexes would collide in the parent
	// namespace, and a foreign directory has no marks to diff against.
	delta := s.ckptMarks != nil && s.ckptDir == filepath.Clean(dir) &&
		s.scanIndex > s.ckptScan && s.ckptDepth+1 < fullEvery
	var w *ckpt.Writer
	if delta {
		if w, err = ckpt.BeginDelta(dir); err != nil {
			// Head unreadable (wiped, damaged): fall back to a full
			// rewrite rather than failing the checkpoint.
			delta, w = false, nil
		}
	}
	if w == nil {
		if w, err = ckpt.Begin(dir); err != nil {
			return err
		}
	}
	defer func() {
		if err != nil {
			w.Abort()
		}
	}()

	if err := s.writeState(w); err != nil {
		return err
	}
	if err := writeJSONFile(w, ckptRecordsFile, s.records, int64(len(s.records))); err != nil {
		return err
	}
	if err := s.writeSnapshots(w); err != nil {
		return err
	}
	if err := s.writeActive(w); err != nil {
		return err
	}
	newMarks := make(map[string]*ckptMark)
	for _, pl := range s.addrSetPayloads() {
		if err := s.writeAddrSet(w, pl.name, pl.set, delta, newMarks); err != nil {
			return err
		}
	}
	if s.cfg.RetainUnresponsive {
		if err := writeFlatSet(w, ckptUnrespFile, s.unresponsive); err != nil {
			return err
		}
	}
	if err := s.writeAPDHistory(w); err != nil {
		return err
	}
	if err := writePrefixList(w, ckptPending64File, s.pendingAPD64); err != nil {
		return err
	}
	seen := make([]ip6.Prefix, 0, len(s.seen64))
	for p := range s.seen64 {
		seen = append(seen, p)
	}
	sortPrefixes(seen)
	if err := writePrefixList(w, ckptSeen64File, seen); err != nil {
		return err
	}

	lastDay := -1
	if len(s.records) > 0 {
		lastDay = s.records[len(s.records)-1].Day
	}
	if err := w.Commit(ckpt.Manifest{
		ScanIndex:  s.scanIndex,
		LastDay:    lastDay,
		Generation: s.queryHandle.Generation(),
	}); err != nil {
		return err
	}
	// Only a committed head updates the delta baseline — an aborted
	// write leaves the old head (and its marks) valid.
	s.ckptMarks = newMarks
	s.ckptDir = filepath.Clean(dir)
	s.ckptScan = s.scanIndex
	if delta {
		s.ckptDepth++
	} else {
		s.ckptDepth = 0
	}
	return nil
}

// writeState stages state.json.
func (s *Service) writeState(w *ckpt.Writer) error {
	st := configState(s.cfg)
	st.ScanIndex = s.scanIndex
	st.InputTotal = s.inputTotal
	st.BlockedTotal = s.blockedTotal
	st.GFWTotal = s.gfwTotal
	st.AliasedTotal = s.aliasedTotal
	st.EvictedTotal = s.evictedTotal
	st.GFWDeployed = s.gfwDeployed
	st.ServeScans = s.serveScans
	st.Generation = s.queryHandle.Generation()
	if len(s.perASInput) > 0 {
		st.PerASInput = make(map[string]ASInput, len(s.perASInput))
		for asn, ai := range s.perASInput {
			st.PerASInput[strconv.Itoa(asn)] = *ai
		}
	}
	if len(s.inputByFeed) > 0 {
		st.InputByFeed = s.inputByFeed
	}
	for _, p := range s.aliased.Prefixes() {
		st.Aliased = append(st.Aliased, p.String())
	}
	st.SnapQueue = s.snapQueue
	return writeJSONFile(w, ckptStateFile, &st, 0)
}

// writeSnapshots stages snapshots.json: requested-day keys mapping to
// sorted string-encoded sets (the exact encoding golden comparisons use,
// so a JSON round trip is loss-free).
func (s *Service) writeSnapshots(w *ckpt.Writer) error {
	type ckptSnapshot struct {
		Day        int                 `json:"day"`
		Responsive map[string][]string `json:"responsive"`
		Any        []string            `json:"responsive_any"`
		Aliased    []string            `json:"aliased"`
	}
	out := make(map[string]ckptSnapshot, len(s.snapshots))
	for want, snap := range s.snapshots {
		cs := ckptSnapshot{Day: snap.Day, Responsive: make(map[string][]string, len(snap.Responsive))}
		for p, set := range snap.Responsive {
			cs.Responsive[strconv.Itoa(int(p))] = addrStrings(set)
		}
		cs.Any = addrStrings(snap.ResponsiveAny)
		for _, p := range snap.Aliased {
			cs.Aliased = append(cs.Aliased, p.String())
		}
		out[strconv.Itoa(want)] = cs
	}
	return writeJSONFile(w, ckptSnapshotsFile, out, int64(len(out)))
}

func addrStrings(set ip6.Set) []string {
	out := make([]string, 0, len(set))
	for _, a := range set.Sorted() {
		out = append(out, a.String())
	}
	return out
}

// writeActive stages the target store: a per-shard count table, then
// each shard's (address, firstDay, lastSuccessDay) records sorted by
// address.
func (s *Service) writeActive(w *ckpt.Writer) error {
	f, err := w.Create(ckptActiveFile)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 64*1024)
	var hdr [8 * ip6.AddrShards]byte
	total := int64(0)
	for sh := 0; sh < ip6.AddrShards; sh++ {
		n := s.active.ShardLen(sh)
		binary.LittleEndian.PutUint64(hdr[8*sh:], uint64(n))
		total += int64(n)
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	type activeRec struct {
		addr ip6.Addr
		st   targetState
	}
	var recs []activeRec
	var rec [ip6.AddrBytes + 8]byte
	for sh := 0; sh < ip6.AddrShards; sh++ {
		recs = recs[:0]
		s.active.WalkShard(sh, func(a ip6.Addr, st *targetState) bool {
			recs = append(recs, activeRec{addr: a, st: *st})
			return true
		})
		sort.Slice(recs, func(x, y int) bool { return recs[x].addr.Less(recs[y].addr) })
		for _, r := range recs {
			copy(rec[:], r.addr[:])
			binary.LittleEndian.PutUint32(rec[16:], uint32(int32(r.st.firstDay)))
			binary.LittleEndian.PutUint32(rec[20:], uint32(int32(r.st.lastSuccessDay)))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	f.SetCount(total)
	return f.Close()
}

// writeAPDHistory stages the detector's per-prefix response history.
func (s *Service) writeAPDHistory(w *ckpt.Writer) error {
	entries := s.detector.ExportHistory()
	f, err := w.Create(ckptAPDFile)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 64*1024)
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(entries)))
	if _, err := bw.Write(n4[:]); err != nil {
		return err
	}
	var u2 [2]byte
	for _, e := range entries {
		if err := writePrefix(bw, e.Prefix); err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(u2[:], uint16(len(e.Counts)))
		if _, err := bw.Write(u2[:]); err != nil {
			return err
		}
		for _, c := range e.Counts {
			binary.LittleEndian.PutUint16(u2[:], c)
			if _, err := bw.Write(u2[:]); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	f.SetCount(int64(len(entries)))
	return f.Close()
}

// writeJSONFile stages one JSON payload file.
func writeJSONFile(w *ckpt.Writer, name string, v any, count int64) error {
	f, err := w.Create(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding %s: %w", name, err)
	}
	data = append(data, '\n')
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.SetCount(count)
	return f.Close()
}

// writeAddrSet stages a sharded address set as a .hl6 image, streamed in
// shard-sorted order: resident shards sort a copy, SpillSet shards merge
// their frozen runs straight off disk. With dirtyOnly set the payload is
// a delta: shards whose epoch matches the previous checkpoint's mark are
// written with zero count and excluded from the file's DeltaShards
// bitmap — readers resolve them through the parent chain. newMarks, when
// non-nil, receives the set's current epochs under name so the next
// checkpoint can diff against this one.
func (s *Service) writeAddrSet(w *ckpt.Writer, name string, set ip6.SpillableSet, dirtyOnly bool, newMarks map[string]*ckptMark) error {
	mask := ^uint64(0)
	if dirtyOnly {
		mask = dirtyMask(s.ckptMarks[name], set)
	}
	if err := writeAddrSetMasked(w, name, set, mask, dirtyOnly); err != nil {
		return err
	}
	if newMarks != nil {
		newMarks[name] = markOf(set)
	}
	return nil
}

// writeAddrSetMasked streams the shards selected by mask; with delta set
// the file records mask as its DeltaShards bitmap.
func writeAddrSetMasked(w *ckpt.Writer, name string, set ip6.SpillableSet, mask uint64, delta bool) error {
	f, err := w.Create(name)
	if err != nil {
		return err
	}
	var counts [ip6.AddrShards]uint64
	total := int64(0)
	for sh := 0; sh < ip6.AddrShards; sh++ {
		if mask&(1<<uint(sh)) == 0 {
			continue
		}
		counts[sh] = uint64(set.ShardLen(sh))
		total += int64(counts[sh])
	}
	spill, _ := set.(*ip6.SpillSet)
	var scratch []ip6.Addr
	err = hlfile.WriteSharded(f, &counts, func(sh int, emit func(ip6.Addr) error) error {
		if mask&(1<<uint(sh)) == 0 {
			return nil
		}
		if spill != nil {
			return spill.WalkShardSorted(sh, emit)
		}
		scratch = scratch[:0]
		set.WalkShard(sh, func(a ip6.Addr) bool {
			scratch = append(scratch, a)
			return true
		})
		ip6.SortAddrs(scratch)
		for _, a := range scratch {
			if err := emit(a); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: writing %s: %w", name, err)
	}
	if delta {
		f.SetDeltaShards(mask)
	}
	f.SetCount(total)
	return f.Close()
}

// writeFlatSet stages a flat Set as a .hl6 image, bucketing by canonical
// shard first. Always full content: the fresh bucketing set has no
// epoch continuity to diff against.
func writeFlatSet(w *ckpt.Writer, name string, set ip6.Set) error {
	sharded := ip6.NewShardedSet()
	for a := range set {
		sharded.Add(a)
	}
	return writeAddrSetMasked(w, name, sharded, ^uint64(0), false)
}

// writePrefixList stages prefixes in the given order (17 bytes each:
// masked address + length).
func writePrefixList(w *ckpt.Writer, name string, prefixes []ip6.Prefix) error {
	f, err := w.Create(name)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 64*1024)
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(prefixes)))
	if _, err := bw.Write(n4[:]); err != nil {
		return err
	}
	for _, p := range prefixes {
		if err := writePrefix(bw, p); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	f.SetCount(int64(len(prefixes)))
	return f.Close()
}

func writePrefix(w io.Writer, p ip6.Prefix) error {
	var buf [ip6.AddrBytes + 1]byte
	a := p.Addr()
	copy(buf[:], a[:])
	buf[ip6.AddrBytes] = byte(p.Bits())
	_, err := w.Write(buf[:])
	return err
}

func readPrefix(r io.Reader) (ip6.Prefix, error) {
	var buf [ip6.AddrBytes + 1]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return ip6.Prefix{}, err
	}
	return ip6.PrefixFrom(ip6.AddrFrom16([ip6.AddrBytes]byte(buf[:ip6.AddrBytes])), int(buf[ip6.AddrBytes])), nil
}

func sortPrefixes(ps []ip6.Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ip6.ComparePrefix(ps[i], ps[j]) < 0 })
}

// Resume rebuilds a Service from the newest complete checkpoint under
// dir (falling back to the ".prev" copy or a parked delta parent if a
// crash interrupted the commit renames). Delta chains are resolved and
// fully verified: every payload shard is loaded from the newest chain
// level that carries it. cfg must agree with the checkpointed
// configuration on every state-shaping knob; worker count, fleet mode,
// memory budget and serve attachment may differ freely — outputs are
// pinned invariant to them. A stale ingest journal next to dir is debris
// from a crash mid-scan and is discarded: the interrupted scan re-runs
// in full on the resumed service. Validation failures (truncated files,
// CRC mismatches, missing or damaged chain parents, config drift) return
// an error with no service constructed — restore never half-loads.
func Resume(dir string, cfg Config, net *netmodel.Network, feeds []*sources.Feed, blocklist *ip6.PrefixSet) (*Service, error) {
	resolved, err := ckpt.Resolve(dir)
	if err != nil {
		return nil, err
	}
	snap, err := ckpt.OpenChain(resolved)
	if err != nil {
		return nil, err
	}
	var st ckptState
	if err := readJSONFile(snap, ckptStateFile, &st); err != nil {
		return nil, err
	}

	s := NewService(cfg, net, feeds, blocklist)
	if s.spill != nil {
		if err := s.spill.err(); err != nil {
			s.Close()
			return nil, fmt.Errorf("core: resume spill state: %w", err)
		}
	}
	if err := checkConfig(configState(s.cfg), st); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.restoreFrom(snap, &st); err != nil {
		s.Close()
		return nil, err
	}
	// With the head itself resolved (not a fallback copy under another
	// name), the loaded sets' current epochs become the delta baseline:
	// the next Checkpoint into dir can chain onto this head. A fallback
	// resolve leaves no baseline, so the next checkpoint is a full
	// rewrite — correct in every crash window.
	if filepath.Clean(resolved) == filepath.Clean(dir) {
		marks := make(map[string]*ckptMark)
		for _, pl := range s.addrSetPayloads() {
			marks[pl.name] = markOf(pl.set)
		}
		s.ckptMarks = marks
		s.ckptDir = filepath.Clean(dir)
		s.ckptScan = snap.Manifest.ScanIndex
		s.ckptDepth = snap.Manifest.Depth
	}
	// A journal file here means the crash landed mid-scan, after spooling
	// candidates but before the scan finalized: the whole scan replays on
	// the resumed timeline, so the spooled sequence is void.
	os.Remove(JournalPath(dir))
	return s, nil
}

// checkConfig verifies the resumed configuration digest matches the
// checkpointed one.
func checkConfig(now, saved ckptState) error {
	saved = ckptState{
		Seed:             saved.Seed,
		Protocols:        saved.Protocols,
		UnresponsiveDays: saved.UnresponsiveDays,
		GFWFilterFromDay: saved.GFWFilterFromDay,
		APDEveryScans:    saved.APDEveryScans,
		APDMaxNew:        saved.APDMaxNew,
		RetainUnresp:     saved.RetainUnresp,
		SnapshotDays:     saved.SnapshotDays,
		ServeEvery:       saved.ServeEvery,
		TGAFeedName:      saved.TGAFeedName,
	}
	if !reflect.DeepEqual(now, saved) {
		return fmt.Errorf("%w: configuration drift: checkpoint was taken with different state-shaping settings (have %+v, checkpoint %+v)", ckpt.ErrCorrupt, now, saved)
	}
	return nil
}

// restoreFrom loads every payload into the freshly built service.
func (s *Service) restoreFrom(snap *ckpt.Snapshot, st *ckptState) error {
	s.scanIndex = st.ScanIndex
	s.inputTotal = st.InputTotal
	s.blockedTotal = st.BlockedTotal
	s.gfwTotal = st.GFWTotal
	s.aliasedTotal = st.AliasedTotal
	s.evictedTotal = st.EvictedTotal
	s.serveScans = st.ServeScans
	s.queryHandle.RestoreGeneration(st.Generation)
	for asn, ai := range st.PerASInput {
		n, err := strconv.Atoi(asn)
		if err != nil {
			return fmt.Errorf("%w: per-AS key %q", ckpt.ErrCorrupt, asn)
		}
		cp := ai
		s.perASInput[n] = &cp
	}
	for feed, n := range st.InputByFeed {
		s.inputByFeed[feed] = n
	}
	for _, ps := range st.Aliased {
		p, err := ip6.ParsePrefix(ps)
		if err != nil {
			return fmt.Errorf("%w: aliased prefix %q", ckpt.ErrCorrupt, ps)
		}
		s.aliased.Add(p)
	}
	s.aliased.Freeze()
	s.snapQueue = append([]int(nil), st.SnapQueue...)

	if err := readJSONFile(snap, ckptRecordsFile, &s.records); err != nil {
		return err
	}
	if err := s.readSnapshots(snap); err != nil {
		return err
	}
	if err := s.readActive(snap); err != nil {
		return err
	}
	if err := loadAddrSet(snap, ckptInputSeenFile, s.inputSeen); err != nil {
		return err
	}
	if err := loadAddrSet(snap, ckptEverAnyFile, s.everRespAny); err != nil {
		return err
	}
	for p := range s.everResp {
		if err := loadAddrSet(snap, ckptEverRespFile(p), s.everResp[p]); err != nil {
			return err
		}
	}
	if st.GFWDeployed {
		s.gfwDeployed = true
		drop := s.newCumulativeSet()
		if s.spill != nil {
			if err := s.spill.err(); err != nil {
				return fmt.Errorf("core: resume spill state: %w", err)
			}
		}
		if err := loadAddrSet(snap, ckptGFWDropFile, drop); err != nil {
			return err
		}
		s.gfwInputDrop = drop
	}
	if err := loadAddrSet(snap, ckptPrevRespFile, s.prevRespAny); err != nil {
		return err
	}
	if snap.HasInChain(ckptLastCleanFile(int(s.cfg.Protocols[0]))) {
		s.lastClean = make(map[netmodel.Protocol]*ip6.ShardedSet, len(s.cfg.Protocols))
		for _, p := range s.cfg.Protocols {
			set := ip6.NewShardedSet()
			if err := loadAddrSet(snap, ckptLastCleanFile(int(p)), set); err != nil {
				return err
			}
			s.lastClean[p] = set
		}
	}
	inj, other, real := s.tracker.EvidenceSets()
	if err := loadAddrSet(snap, ckptTrkInjFile, inj); err != nil {
		return err
	}
	if err := loadAddrSet(snap, ckptTrkOtherFile, other); err != nil {
		return err
	}
	if err := loadAddrSet(snap, ckptTrkRealFile, real); err != nil {
		return err
	}
	if s.cfg.RetainUnresponsive && snap.HasInChain(ckptUnrespFile) {
		flat := ip6.NewShardedSet()
		if err := loadAddrSet(snap, ckptUnrespFile, flat); err != nil {
			return err
		}
		s.unresponsive = flat.Merge()
	}
	if err := s.readAPDHistory(snap); err != nil {
		return err
	}
	pending, err := readPrefixList(snap, ckptPending64File)
	if err != nil {
		return err
	}
	s.pendingAPD64 = pending
	seen, err := readPrefixList(snap, ckptSeen64File)
	if err != nil {
		return err
	}
	for _, p := range seen {
		s.seen64[p] = struct{}{}
	}
	if s.spill != nil {
		if err := s.spill.err(); err != nil {
			return fmt.Errorf("core: resume spill state: %w", err)
		}
	}
	return nil
}

// readJSONFile parses one JSON payload.
func readJSONFile(snap *ckpt.Snapshot, name string, v any) error {
	if !snap.Has(name) {
		return fmt.Errorf("%w: %s missing from manifest", ckpt.ErrCorrupt, name)
	}
	data, err := os.ReadFile(snap.Path(name))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w: %s: %v", ckpt.ErrCorrupt, name, err)
	}
	return nil
}

// readSnapshots rebuilds the captured snapshots.
func (s *Service) readSnapshots(snap *ckpt.Snapshot) error {
	type ckptSnapshot struct {
		Day        int                 `json:"day"`
		Responsive map[string][]string `json:"responsive"`
		Any        []string            `json:"responsive_any"`
		Aliased    []string            `json:"aliased"`
	}
	var raw map[string]ckptSnapshot
	if err := readJSONFile(snap, ckptSnapshotsFile, &raw); err != nil {
		return err
	}
	for key, cs := range raw {
		want, err := strconv.Atoi(key)
		if err != nil {
			return fmt.Errorf("%w: snapshot key %q", ckpt.ErrCorrupt, key)
		}
		out := &Snapshot{Day: cs.Day, Responsive: make(map[netmodel.Protocol]ip6.Set, len(cs.Responsive))}
		for pk, addrs := range cs.Responsive {
			p, err := strconv.Atoi(pk)
			if err != nil || p < 0 || p >= netmodel.NumProtocols {
				return fmt.Errorf("%w: snapshot protocol key %q", ckpt.ErrCorrupt, pk)
			}
			set, err := parseAddrSet(addrs)
			if err != nil {
				return err
			}
			out.Responsive[netmodel.Protocol(p)] = set
		}
		if out.ResponsiveAny, err = parseAddrSet(cs.Any); err != nil {
			return err
		}
		for _, ps := range cs.Aliased {
			p, err := ip6.ParsePrefix(ps)
			if err != nil {
				return fmt.Errorf("%w: snapshot aliased prefix %q", ckpt.ErrCorrupt, ps)
			}
			out.Aliased = append(out.Aliased, p)
		}
		s.snapshots[want] = out
	}
	return nil
}

func parseAddrSet(addrs []string) (ip6.Set, error) {
	set := ip6.NewSet(len(addrs))
	for _, as := range addrs {
		a, err := ip6.ParseAddr(as)
		if err != nil {
			return nil, fmt.Errorf("%w: snapshot address %q", ckpt.ErrCorrupt, as)
		}
		set.Add(a)
	}
	return set, nil
}

// readActive rebuilds the sharded target store.
func (s *Service) readActive(snap *ckpt.Snapshot) error {
	if !snap.Has(ckptActiveFile) {
		return fmt.Errorf("%w: %s missing from manifest", ckpt.ErrCorrupt, ckptActiveFile)
	}
	f, err := os.Open(snap.Path(ckptActiveFile))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	var hdr [8 * ip6.AddrShards]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: %s header: %v", ckpt.ErrCorrupt, ckptActiveFile, err)
	}
	var rec [ip6.AddrBytes + 8]byte
	for sh := 0; sh < ip6.AddrShards; sh++ {
		n := binary.LittleEndian.Uint64(hdr[8*sh:])
		for i := uint64(0); i < n; i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return fmt.Errorf("%w: %s truncated: %v", ckpt.ErrCorrupt, ckptActiveFile, err)
			}
			a := ip6.AddrFrom16([ip6.AddrBytes]byte(rec[:ip6.AddrBytes]))
			s.active.PutInShard(sh, a, &targetState{
				firstDay:       int(int32(binary.LittleEndian.Uint32(rec[16:]))),
				lastSuccessDay: int(int32(binary.LittleEndian.Uint32(rec[20:]))),
			})
		}
	}
	return nil
}

// readAPDHistory rebuilds the detector's response history.
func (s *Service) readAPDHistory(snap *ckpt.Snapshot) error {
	if !snap.Has(ckptAPDFile) {
		return fmt.Errorf("%w: %s missing from manifest", ckpt.ErrCorrupt, ckptAPDFile)
	}
	f, err := os.Open(snap.Path(ckptAPDFile))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	var n4 [4]byte
	if _, err := io.ReadFull(br, n4[:]); err != nil {
		return fmt.Errorf("%w: %s header: %v", ckpt.ErrCorrupt, ckptAPDFile, err)
	}
	n := binary.LittleEndian.Uint32(n4[:])
	entries := make([]apd.HistoryEntry, 0, n)
	var u2 [2]byte
	for i := uint32(0); i < n; i++ {
		p, err := readPrefix(br)
		if err != nil {
			return fmt.Errorf("%w: %s truncated: %v", ckpt.ErrCorrupt, ckptAPDFile, err)
		}
		if _, err := io.ReadFull(br, u2[:]); err != nil {
			return fmt.Errorf("%w: %s truncated: %v", ckpt.ErrCorrupt, ckptAPDFile, err)
		}
		counts := make([]uint16, binary.LittleEndian.Uint16(u2[:]))
		for j := range counts {
			if _, err := io.ReadFull(br, u2[:]); err != nil {
				return fmt.Errorf("%w: %s truncated: %v", ckpt.ErrCorrupt, ckptAPDFile, err)
			}
			counts[j] = binary.LittleEndian.Uint16(u2[:])
		}
		entries = append(entries, apd.HistoryEntry{Prefix: p, Counts: counts})
	}
	s.detector.ImportHistory(entries)
	return nil
}

// loadAddrSet streams a .hl6 payload back into a sharded set, resolving
// each shard through the delta chain: the newest level carrying the
// shard holds its current content (a delta writes a shard exactly when
// it changed). Single-level checkpoints degenerate to one reader.
func loadAddrSet(snap *ckpt.Snapshot, name string, set ip6.SpillableSet) error {
	if !snap.HasInChain(name) {
		return fmt.Errorf("%w: %s missing from manifest", ckpt.ErrCorrupt, name)
	}
	readers := make(map[string]*hlfile.Reader)
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	shardCursor := func(sh int) (func() (ip6.Addr, bool, error), error) {
		lvl := snap.FindShard(name, sh)
		if lvl == nil {
			return nil, fmt.Errorf("%w: %s shard %d unresolved in delta chain", ckpt.ErrCorrupt, name, sh)
		}
		rdr, ok := readers[lvl.Dir]
		if !ok {
			var err error
			rdr, err = hlfile.Open(lvl.Path(name))
			if err != nil {
				return nil, fmt.Errorf("core: opening %s: %w", lvl.Path(name), err)
			}
			readers[lvl.Dir] = rdr
		}
		return rdr.ShardCursor(sh), nil
	}
	if spill, ok := set.(*ip6.SpillSet); ok {
		for sh := 0; sh < ip6.AddrShards; sh++ {
			cur, err := shardCursor(sh)
			if err != nil {
				return err
			}
			if err := spill.ImportShardSorted(sh, cur); err != nil {
				return fmt.Errorf("core: loading %s: %w", name, err)
			}
		}
		return nil
	}
	for sh := 0; sh < ip6.AddrShards; sh++ {
		cur, err := shardCursor(sh)
		if err != nil {
			return err
		}
		for {
			a, ok, err := cur()
			if err != nil {
				return fmt.Errorf("core: loading %s: %w", name, err)
			}
			if !ok {
				break
			}
			set.AddToShard(sh, a)
		}
	}
	return nil
}

// journalChunk is how many journal records one replay chunk admits:
// resident footprint of a durable ingest is O(journalChunk), not
// O(candidate stream).
const journalChunk = 1 << 16

// ingestJournaled is the durable service's admission sweep: every feed's
// candidate stream is spooled to the on-disk rollback journal first (in
// the same deterministic feed-name-sorted sequence the resident paths
// walk), then replayed in bounded chunks through the shared admission
// chain. A source error discards the journal with nothing admitted — the
// same all-or-nothing contract the resident paths keep by collecting
// first — and a crash mid-scan leaves only journal debris that Resume
// discards. Outputs are bit-identical to the resident paths for any
// worker count: chunk replay preserves the global sequence order
// per shard, and every merged counter is a commutative sum.
func (s *Service) ingestJournaled(srcs []sources.NamedSource, day int, rec *ScanRecord) error {
	jpath := JournalPath(s.cfg.CheckpointDir)
	if err := os.MkdirAll(filepath.Dir(jpath), 0o755); err != nil {
		return fmt.Errorf("core: creating checkpoint parent: %w", err)
	}
	jw, err := ckpt.CreateJournal(jpath)
	if err != nil {
		return err
	}

	// Spool phase: pull every source to exhaustion into the journal.
	// Non-unicast candidates are dropped here (they never receive a
	// sequence number on any path), so replay admits records verbatim.
	buf := make([]ip6.Addr, ingestChunk)
	for fi, fs := range srcs {
		var jerr error
		err := drainSource(fs.Src, buf, func(seg []ip6.Addr) {
			if jerr != nil {
				return
			}
			for _, a := range seg {
				if !a.IsGlobalUnicast() {
					continue
				}
				if jerr = jw.Add(int32(fi), a); jerr != nil {
					return
				}
			}
		})
		if err == nil {
			err = jerr
		}
		if err != nil {
			jw.Discard()
			return err
		}
	}
	if err := jw.Finish(); err != nil {
		return err
	}

	// Replay phase: bounded chunks through the per-shard admission sweep.
	jr, err := ckpt.OpenJournal(jpath)
	if err != nil {
		return err
	}
	defer jr.Close()
	seq := int32(0)
	chunk := make([]routedInput, 0, journalChunk)
	for {
		chunk = chunk[:0]
		for len(chunk) < journalChunk {
			feed, a, ok, err := jr.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			chunk = append(chunk, routedInput{addr: a, feed: feed, seq: seq})
			seq++
		}
		if len(chunk) == 0 {
			break
		}
		s.admitChunk(chunk, srcs, day, rec)
	}
	jr.Close()
	return jr.Remove()
}

// admitChunk admits one replay chunk: route to shards, run the shared
// admission chain per shard on the worker pool, merge counters in
// canonical shard order, and track newly admitted /64s in sequence
// order. Per-shard admission order equals sequence order within the
// chunk, and chunks replay in sequence order, so every shard observes
// the same candidate order a serial pass over the whole stream would
// deliver.
func (s *Service) admitChunk(chunk []routedInput, srcs []sources.NamedSource, day int, rec *ScanRecord) {
	for _, e := range chunk {
		sh := ip6.ShardOf(e.addr)
		s.routeBuf[sh] = append(s.routeBuf[sh], e)
	}
	results := make([]*shardIngest, ip6.AddrShards)
	ip6.ParallelShards(s.workers, func(sh int) {
		entries := s.routeBuf[sh]
		if len(entries) == 0 {
			return
		}
		r := &shardIngest{
			ingestCounters: ingestCounters{perAS: make(map[int]*ASInput)},
			perFeed:        make([]int, len(srcs)),
		}
		for _, e := range entries {
			outcome := s.admitOne(sh, e.addr, day, &r.ingestCounters)
			if outcome == admitDup {
				continue
			}
			r.perFeed[e.feed]++
			if outcome == admitAdmitted {
				r.admitted = append(r.admitted, e)
			}
		}
		results[sh] = r
	})
	var admitted []routedInput
	for sh := 0; sh < ip6.AddrShards; sh++ {
		s.routeBuf[sh] = s.routeBuf[sh][:0]
		r := results[sh]
		if r == nil {
			continue
		}
		s.applyIngest(rec, &r.ingestCounters)
		for fi, n := range r.perFeed {
			if n > 0 {
				s.inputByFeed[srcs[fi].Name] += n
			}
		}
		admitted = append(admitted, r.admitted...)
	}
	sort.Slice(admitted, func(i, j int) bool { return admitted[i].seq < admitted[j].seq })
	for _, e := range admitted {
		s.trackSlash64(e.addr)
	}
}

// readPrefixList loads a prefix table in file order.
func readPrefixList(snap *ckpt.Snapshot, name string) ([]ip6.Prefix, error) {
	if !snap.Has(name) {
		return nil, fmt.Errorf("%w: %s missing from manifest", ckpt.ErrCorrupt, name)
	}
	f, err := os.Open(snap.Path(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	var n4 [4]byte
	if _, err := io.ReadFull(br, n4[:]); err != nil {
		return nil, fmt.Errorf("%w: %s header: %v", ckpt.ErrCorrupt, name, err)
	}
	n := binary.LittleEndian.Uint32(n4[:])
	out := make([]ip6.Prefix, 0, n)
	for i := uint32(0); i < n; i++ {
		p, err := readPrefix(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s truncated: %v", ckpt.ErrCorrupt, name, err)
		}
		out = append(out, p)
	}
	return out, nil
}
