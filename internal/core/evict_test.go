package core

import (
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/sources"
)

// ghostFeeds delivers a single never-responding address every day of the
// tinyWorld network, isolating the 30-day filter from scan responses.
func ghostFeeds(ghost ip6.Addr) []*sources.Feed {
	return []*sources.Feed{
		sources.Recurring("ghost", 0, netmodel.Forever, func(day int) []ip6.Addr {
			return []ip6.Addr{ghost}
		}),
	}
}

// TestEvictionBoundaryDay pins the filter's edge: a target whose
// reference day is exactly UnresponsiveDays old is still scanned
// (eviction fires strictly beyond the horizon), one day later it is
// gone.
func TestEvictionBoundaryDay(t *testing.T) {
	ghost := ip6.MustParseAddr("2001:100::ee")
	cfg := DefaultConfig(1)
	cfg.RetainUnresponsive = true

	n, _ := tinyWorld(t)
	s := NewService(cfg, n, ghostFeeds(ghost), nil)
	runDays(t, s, []int{0, 30})
	at30 := s.Records()[1]
	if at30.Evicted != 0 || at30.ScannedTargets != 1 {
		t.Errorf("day 30 (exactly on the horizon): evicted=%d scanned=%d, want 0/1",
			at30.Evicted, at30.ScannedTargets)
	}

	n2, _ := tinyWorld(t)
	s2 := NewService(cfg, n2, ghostFeeds(ghost), nil)
	runDays(t, s2, []int{0, 31})
	at31 := s2.Records()[1]
	if at31.Evicted != 1 || at31.ScannedTargets != 0 {
		t.Errorf("day 31 (past the horizon): evicted=%d scanned=%d, want 1/0",
			at31.Evicted, at31.ScannedTargets)
	}
	if !s2.UnresponsivePool().Has(ghost) {
		t.Error("evicted address missing from retained pool")
	}
	if s2.Funnel().ActiveScan != 0 {
		t.Errorf("active after eviction: %d", s2.Funnel().ActiveScan)
	}
}

// TestEvictedAddressNotReadmitted: input dedup is cumulative, so a feed
// that keeps delivering an evicted address cannot re-admit it — the
// paper's service only re-tests such addresses through the dedicated
// re-scan experiment, never through the daily pipeline.
func TestEvictedAddressNotReadmitted(t *testing.T) {
	ghost := ip6.MustParseAddr("2001:100::ee")
	cfg := DefaultConfig(1)
	cfg.RetainUnresponsive = true
	n, _ := tinyWorld(t)
	s := NewService(cfg, n, ghostFeeds(ghost), nil)
	runDays(t, s, []int{0, 31, 38, 45})
	for _, rec := range s.Records()[1:] {
		if rec.NewInput != 0 {
			t.Errorf("day %d: re-ingested evicted address (new input %d)", rec.Day, rec.NewInput)
		}
		if rec.ScannedTargets != 0 && rec.Day > 31 {
			t.Errorf("day %d: evicted address scanned again", rec.Day)
		}
	}
	if got := s.Funnel().Evicted; got != 1 {
		t.Errorf("cumulative evictions: %d, want 1 (no double eviction)", got)
	}
	if !s.UnresponsivePool().Has(ghost) {
		t.Error("pool lost the evicted address")
	}
}

// TestEvictionVsGFWDeployment: before the filter deploys, injected DNS
// answers keep GFW-phantom addresses alive (the published behaviour), so
// the 30-day filter never evicts them; deployment then removes them from
// the active window via the cumulative filter — as a GFW drop, not an
// eviction — and they stay out.
func TestEvictionVsGFWDeployment(t *testing.T) {
	n, feeds := tinyWorld(t)
	cfg := DefaultConfig(1)
	cfg.GFWFilterFromDay = 150
	cfg.RetainUnresponsive = true
	s := NewService(cfg, n, feeds, nil)
	runDays(t, s, weekly(0, 196))

	cn1 := ip6.MustParseAddr("240e::1")
	cn2 := ip6.MustParseAddr("240e::2")
	if s.UnresponsivePool().Has(cn1) || s.UnresponsivePool().Has(cn2) {
		t.Error("GFW-phantom address was evicted; injected responses should have kept it alive")
	}

	var deployRec *ScanRecord
	evictedAfter := 0
	for _, rec := range s.Records() {
		if deployRec == nil && rec.Day >= 150 {
			deployRec = rec
		}
		if rec.Day >= 150 {
			evictedAfter += rec.Evicted
		}
	}
	if deployRec == nil {
		t.Fatal("no scan at or after the deployment day")
	}
	// Both CN addresses were active at deployment (kept alive by
	// injections) and must be dropped by the cumulative filter there.
	if deployRec.GFWFilteredInput != 2 {
		t.Errorf("deployment scan GFW drops: %d, want 2", deployRec.GFWFilteredInput)
	}
	if evictedAfter != 0 {
		t.Errorf("post-deployment evictions: %d, want 0 (phantoms leave via the filter)", evictedAfter)
	}
	// The scan set afterwards holds only the real web host: the dying
	// host was evicted mid-timeline, the aliased input filtered at
	// ingest, the phantoms filtered at deployment.
	last := s.Records()[len(s.Records())-1]
	if last.ScannedTargets != 1 {
		t.Errorf("final scan set: %d targets, want 1", last.ScannedTargets)
	}
}
