package rng

import (
	"math"
	"sort"
)

// Zipf samples from a Zipf-Mandelbrot-like distribution over ranks
// [0, n): P(k) proportional to 1/(k+q)^s. It precomputes the CDF, so sampling
// is O(log n). It is used to skew address populations across ASes the way
// the paper's Figure 2/8/9 CDFs are skewed.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s >= 0 and
// shift q >= 0.
func NewZipf(n int, s, q float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k)+1+q, s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(r *Stream) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Weight returns the probability mass of rank k.
func (z *Zipf) Weight(k int) float64 {
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Weighted is an alias-free cumulative weighted sampler over arbitrary
// weights.
type Weighted struct {
	cdf []float64
}

// NewWeighted builds a sampler from non-negative weights. At least one
// weight must be positive.
func NewWeighted(weights []float64) *Weighted {
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("rng: all weights zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf}
}

// Sample draws an index with probability proportional to its weight.
func (w *Weighted) Sample(r *Stream) int {
	u := r.Float64()
	i := sort.SearchFloat64s(w.cdf, u)
	if i >= len(w.cdf) {
		i = len(w.cdf) - 1
	}
	return i
}

// Poisson draws from a Poisson distribution with mean lambda.
// For large lambda it uses a normal approximation, which is accurate enough
// for workload generation.
func (r *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial draws the number of successes among n trials with probability p.
// It uses a normal approximation when n*p is large.
func (r *Stream) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	np := float64(n) * p
	if np > 50 && float64(n)*(1-p) > 50 {
		v := np + math.Sqrt(np*(1-p))*r.NormFloat64()
		switch {
		case v < 0:
			return 0
		case v > float64(n):
			return n
		}
		return int(v + 0.5)
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}
