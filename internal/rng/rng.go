// Package rng provides deterministic random number generation for the
// simulator and the scanners.
//
// Everything in this repository that needs randomness draws it from a named
// Stream derived from a 64-bit seed and a purpose string. Two runs with the
// same seed produce bit-identical worlds, scans and experiment outputs, which
// is what makes the reproduction harness meaningful.
//
// The core generator is xoshiro256**, seeded through splitmix64 as its
// authors recommend. Stateless helpers (Hash64, Mix) are used where the
// simulation needs a *function* of (entity, time) rather than a sequence,
// e.g. per-scan responsiveness draws that must not depend on probe order.
package rng

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// SplitMix64 advances the splitmix64 state and returns the next value.
// It is used for seeding and as a cheap one-shot mixer.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix returns a well-mixed function of its inputs. It is the stateless
// workhorse behind hash-based simulation draws.
func Mix(vs ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, v := range vs {
		h ^= v
		h *= 0x9e3779b97f4a7c15
		h = bits.RotateLeft64(h, 29)
		h *= 0xbf58476d1ce4e5b9
	}
	h ^= h >> 32
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return h
}

// HashString hashes a string with FNV-1a, widened through Mix.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix(h)
}

// HashBytes hashes a byte slice with FNV-1a, widened through Mix.
func HashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return Mix(h)
}

// Stream is a xoshiro256** generator. The zero value is not valid; use
// NewStream or Derive.
type Stream struct {
	s [4]uint64
}

// NewStream returns a Stream seeded from seed and a purpose label.
// Distinct purposes yield statistically independent streams.
func NewStream(seed uint64, purpose string) *Stream {
	st := NewStreamSeed(seed ^ HashString(purpose))
	return &st
}

// NewStreamSeed returns a Stream seeded directly:
// NewStream(seed, purpose) draws identically to
// NewStreamSeed(seed ^ HashString(purpose)). It returns a value, so hot
// paths that derive one short-lived stream per entity (the alias
// detector's per-slot draws) can hoist the label hash and keep the
// generator on the stack.
func NewStreamSeed(seed uint64) Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		st.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with all zeros.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// Derive returns a new independent Stream keyed by additional values,
// without disturbing the parent stream's state.
func (r *Stream) Derive(vs ...uint64) *Stream {
	seed := Mix(append([]uint64{r.s[0], r.s[1], r.s[2], r.s[3]}, vs...)...)
	var st Stream
	sm := seed
	for i := range st.s {
		st.s[i] = SplitMix64(&sm)
	}
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method.
	x := r.Uint64()
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1)
// using the Marsaglia polar method.
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes a slice in place using swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fill fills b with pseudo-random bytes.
func (r *Stream) Fill(b []byte) {
	for len(b) >= 8 {
		binary.LittleEndian.PutUint64(b, r.Uint64())
		b = b[8:]
	}
	if len(b) > 0 {
		v := r.Uint64()
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
}
