package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "test")
	b := NewStream(42, "test")
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverged at %d: %x vs %x", i, x, y)
		}
	}
}

func TestStreamPurposeIndependence(t *testing.T) {
	a := NewStream(42, "alpha")
	b := NewStream(42, "beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("purpose-separated streams produced %d identical values", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := NewStream(1, "parent")
	d1 := parent.Derive(1)
	d2 := parent.Derive(2)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams with different keys matched")
	}
	// Deriving must not disturb the parent.
	p1 := NewStream(1, "parent")
	_ = p1.Derive(1)
	_ = p1.Derive(2)
	p2 := NewStream(1, "parent")
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Derive mutated parent state")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewStream(7, "bounds")
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := NewStream(9, "unif")
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewStream(3, "float")
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewStream(4, "bool")
	for i := 0; i < 50; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewStream(5, "norm")
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewStream(6, "perm")
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix(12345, 67890)
	flipped := Mix(12345^1, 67890)
	diff := base ^ flipped
	pop := 0
	for ; diff != 0; diff &= diff - 1 {
		pop++
	}
	if pop < 16 || pop > 48 {
		t.Errorf("avalanche popcount %d, want within [16,48]", pop)
	}
}

func TestMixProperty(t *testing.T) {
	// Mix must be a pure function and sensitive to argument order.
	f := func(a, b uint64) bool {
		if Mix(a, b) != Mix(a, b) {
			return false
		}
		if a != b && Mix(a, b) == Mix(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("www.google.com") != HashString("www.google.com") {
		t.Fatal("HashString not stable")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("trivial collision")
	}
	if HashBytes([]byte("xyz")) != HashString("xyz") {
		t.Fatal("HashBytes and HashString disagree")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0, 2.0)
	r := NewStream(8, "zipf")
	const draws = 100000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] < counts[500]*5 {
		t.Errorf("zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// Weights must sum to ~1.
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.Weight(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("zipf weights sum %v", sum)
	}
}

func TestWeightedSampler(t *testing.T) {
	w := NewWeighted([]float64{0, 1, 3, 0})
	r := NewStream(10, "weighted")
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[w.Sample(r)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight buckets sampled: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight ratio %v, want ~3", ratio)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewStream(11, "poisson")
	for _, lambda := range []float64{0.5, 4, 100} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestBinomialMean(t *testing.T) {
	r := NewStream(12, "binom")
	const n, p, draws = 1000, 0.3, 5000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / draws
	if math.Abs(mean-n*p) > 5 {
		t.Errorf("Binomial mean %v, want ~%v", mean, n*p)
	}
	if r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 || r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial edge cases wrong")
	}
}

func TestFill(t *testing.T) {
	r := NewStream(13, "fill")
	for _, n := range []int{0, 1, 7, 8, 9, 16, 33} {
		b := make([]byte, n)
		r.Fill(b)
		if n >= 8 {
			allZero := true
			for _, c := range b {
				if c != 0 {
					allZero = false
				}
			}
			if allZero {
				t.Errorf("Fill(%d) produced all zeros", n)
			}
		}
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	r := NewStream(1, "bench")
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkMix(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Mix(uint64(i), 12345)
	}
	_ = sink
}
