package serve

import (
	"errors"
	"net"
)

// maxUDPQuery bounds the receive buffer; queries are tiny, and anything
// larger than a full EDNS payload is not a query we answer.
const maxUDPQuery = 4096

// ServeUDP answers DNS queries from conn until the connection is closed
// (the shutdown signal: close the conn, the loop returns nil). Each call
// runs one receive loop with its own Scratch and reply buffer; run
// several goroutines over the same PacketConn to serve multi-core —
// the responder is stateless and the snapshot handle lock-free, so loops
// scale without coordination.
func ServeUDP(conn net.PacketConn, r *DNSResponder) error {
	buf := make([]byte, maxUDPQuery)
	out := make([]byte, 0, 512)
	var sc Scratch
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if resp := r.Respond(buf[:n], out[:0], &sc); resp != nil {
			out = resp
			if _, err := conn.WriteTo(resp, addr); err != nil && errors.Is(err, net.ErrClosed) {
				return nil
			}
		}
	}
}
