package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

func mustAddr(t testing.TB, s string) ip6.Addr {
	t.Helper()
	a, err := ip6.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sortedOf(addrs ...ip6.Addr) *ip6.SortedShardSet {
	s := ip6.NewShardedSet()
	for _, a := range addrs {
		s.Add(a)
	}
	return ip6.FreezeSorted(s)
}

// testSnapshot builds a small snapshot with one address per dimension.
func testSnapshot(t testing.TB) (*Snapshot, map[string]ip6.Addr) {
	t.Helper()
	addrs := map[string]ip6.Addr{
		"live":    mustAddr(t, "2001:db8::1"),
		"icmp":    mustAddr(t, "2001:db8::1"),
		"udp53":   mustAddr(t, "2001:db8::53"),
		"alias":   mustAddr(t, "2001:db8:aaaa::17"),
		"gfw":     mustAddr(t, "2001:db8:cafe::2"),
		"nothing": mustAddr(t, "2001:db8::dead"),
	}
	var perProto [netmodel.NumProtocols]*ip6.SortedShardSet
	perProto[netmodel.ICMP] = sortedOf(addrs["live"])
	perProto[netmodel.UDP53] = sortedOf(addrs["udp53"])
	snap := NewSnapshot(
		1000,
		sortedOf(addrs["live"], addrs["udp53"]),
		perProto,
		[]ip6.Prefix{ip6.MustParsePrefix("2001:db8:aaaa::/48")},
		sortedOf(addrs["gfw"]),
	)
	return snap, addrs
}

func respond(t testing.TB, r *DNSResponder, sc *Scratch, name string, qtype dnswire.Type) *dnswire.Message {
	t.Helper()
	wire, err := dnswire.NewQuery(99, name, qtype).Encode()
	if err != nil {
		t.Fatal(err)
	}
	reply := r.Respond(wire, nil, sc)
	if reply == nil {
		t.Fatalf("Respond(%q) dropped the query", name)
	}
	m, err := dnswire.Decode(reply)
	if err != nil {
		t.Fatalf("Respond(%q) reply does not decode: %v", name, err)
	}
	if m.Header.ID != 99 || !m.Header.Response {
		t.Fatalf("Respond(%q) header = %+v", name, m.Header)
	}
	return m
}

func TestDNSResponder(t *testing.T) {
	snap, addrs := testSnapshot(t)
	h := NewHandle()
	h.Publish(snap)
	r := NewDNSResponder(h, "hitlist6.test")
	var sc Scratch

	// Hits on every dataset.
	for _, c := range []struct {
		dataset string
		addr    ip6.Addr
		ttl     uint32
	}{
		{"live", addrs["live"], ServeTTL},
		{"live", addrs["udp53"], ServeTTL},
		{"icmp", addrs["live"], ServeTTL},
		{"udp53", addrs["udp53"], ServeTTL},
		{"alias", addrs["alias"], 48},
		{"gfw", addrs["gfw"], ServeTTL},
	} {
		m := respond(t, r, &sc, r.QueryName(c.addr, c.dataset), dnswire.TypeA)
		if m.Header.RCode != dnswire.RCodeNoError || len(m.Answers) != 1 {
			t.Fatalf("%s/%v: rcode=%v answers=%d", c.dataset, c.addr, m.Header.RCode, len(m.Answers))
		}
		ans := m.Answers[0]
		if ans.Type != dnswire.TypeA || ans.A != listedA || ans.TTL != c.ttl {
			t.Fatalf("%s/%v: answer = %+v", c.dataset, c.addr, ans)
		}
	}

	// Misses: unlisted address, wrong dataset, unknown dataset, bad key.
	for _, name := range []string{
		r.QueryName(addrs["nothing"], "live"),
		r.QueryName(addrs["udp53"], "icmp"),
		r.QueryName(addrs["live"], "alias"),
		r.QueryName(addrs["live"], "bogus"),
		"not-hex.live.hitlist6.test",
		"live.hitlist6.test",
	} {
		if m := respond(t, r, &sc, name, dnswire.TypeA); m.Header.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("%q: rcode = %v, want NXDOMAIN", name, m.Header.RCode)
		}
	}

	// Listed but a type we do not serve: NOERROR, no data.
	if m := respond(t, r, &sc, r.QueryName(addrs["live"], "live"), dnswire.TypeTXT); m.Header.RCode != dnswire.RCodeNoError || len(m.Answers) != 0 {
		t.Fatalf("TXT: got rcode=%v answers=%d", m.Header.RCode, len(m.Answers))
	}
	// Outside our zone: REFUSED.
	if m := respond(t, r, &sc, "example.com", dnswire.TypeA); m.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("foreign zone: rcode = %v, want REFUSED", m.Header.RCode)
	}
	// Apex: authoritative NOERROR.
	if m := respond(t, r, &sc, "hitlist6.test", dnswire.TypeA); m.Header.RCode != dnswire.RCodeNoError || !m.Header.Authoritative {
		t.Fatalf("apex: %+v", m.Header)
	}
}

func TestDNSResponderNoSnapshot(t *testing.T) {
	r := NewDNSResponder(NewHandle(), "hitlist6.test")
	var sc Scratch
	m := respond(t, r, &sc, "20010db8000000000000000000000001.live.hitlist6.test", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %v, want SERVFAIL before first publish", m.Header.RCode)
	}
}

func TestSnapshotLookup(t *testing.T) {
	snap, addrs := testSnapshot(t)
	h := NewHandle()
	h.Publish(snap)

	ans, ok := h.Lookup(addrs["live"])
	if !ok || !ans.Live || !ans.Protos.Has(netmodel.ICMP) || ans.Protos.Has(netmodel.UDP53) || ans.Aliased || ans.Injected {
		t.Fatalf("live answer = %+v ok=%v", ans, ok)
	}
	if ans.Day != 1000 || ans.Generation != snap.Generation {
		t.Fatalf("stamps = %+v", ans)
	}
	ans, _ = h.Lookup(addrs["alias"])
	if ans.Live || !ans.Aliased || ans.AliasPrefix.Bits() != 48 {
		t.Fatalf("alias answer = %+v", ans)
	}
	ans, _ = h.Lookup(addrs["gfw"])
	if !ans.Injected || ans.Live {
		t.Fatalf("gfw answer = %+v", ans)
	}
	if _, ok := NewHandle().Lookup(addrs["live"]); ok {
		t.Fatal("empty handle reported ok")
	}
}

func TestHTTPHandler(t *testing.T) {
	snap, addrs := testSnapshot(t)
	h := NewHandle()
	h.Publish(snap)
	mux := NewHTTPHandler(h)

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/v1/query?addr=" + addrs["live"].String())
	if rec.Code != 200 {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body)
	}
	var ans HTTPAnswer
	if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
		t.Fatal(err)
	}
	if !ans.Live || !ans.Protocols["icmp"] || ans.Protocols["udp53"] || ans.Aliased || ans.GFWInjected || ans.Day != 1000 {
		t.Fatalf("answer = %+v", ans)
	}
	rec = get("/v1/query?addr=" + addrs["alias"].String())
	var alias HTTPAnswer
	if err := json.Unmarshal(rec.Body.Bytes(), &alias); err != nil {
		t.Fatal(err)
	}
	if !alias.Aliased || alias.AliasPrefix != "2001:db8:aaaa::/48" {
		t.Fatalf("alias answer = %+v", alias)
	}
	if rec := get("/v1/query?addr=junk"); rec.Code != 400 {
		t.Fatalf("bad addr status = %d", rec.Code)
	}
	rec = get("/v1/snapshot")
	var info HTTPSnapshotInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Day != 1000 || info.LiveAddrs != 2 || info.AliasedPrefixes != 1 || info.GFWAddrs != 1 || info.Protocols["icmp"] != 1 {
		t.Fatalf("snapshot info = %+v", info)
	}
	if rec := get("/healthz"); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := NewHTTPHandler(NewHandle()); true {
		w := httptest.NewRecorder()
		rec.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		if w.Code != 503 {
			t.Fatalf("empty healthz = %d", w.Code)
		}
	}
}
