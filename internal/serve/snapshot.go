// Package serve is the hitlist-as-a-service read path: immutable
// snapshots of the service's published state (per-protocol liveness,
// alias prefixes, GFW-injection verdicts) answered over DNS and
// HTTP/JSON at high QPS while the scan timeline keeps advancing.
//
// The design is copy-on-publish: at each digest finalization the
// pipeline freezes its mutable sharded sets into sorted point-lookup
// indexes (ip6.SortedShardSet, a frozen ip6.PrefixSet), assembles them
// into one Snapshot, and swaps it into a Handle with a single atomic
// pointer store. Readers load the pointer once per query and answer
// everything from that one immutable snapshot — no locks, no torn reads
// across liveness/alias/GFW fields, and writers never wait for readers.
// The DNS hot path (dnswire.DecodeQueryInto → binary search →
// dnswire.AppendReplyRaw) answers with zero allocations per query.
package serve

import (
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// Snapshot is one immutable, fully frozen view of the service's
// queryable state. Every field is read-only after construction; a
// Snapshot is shared by any number of concurrent readers without
// synchronization. Nil set fields answer "no" (a snapshot built from a
// bare .hl6 hitlist has only Any).
type Snapshot struct {
	// Day is the scan day the snapshot was finalized on.
	Day int

	// Generation is the Handle's publish counter, assigned by Publish —
	// distinct for every published snapshot even if two scans land on
	// the same day.
	Generation uint64

	// Any holds the addresses responsive on at least one protocol in
	// the snapshot's scan (the published hitlist).
	Any *ip6.SortedShardSet

	// PerProto holds the clean responders per probed protocol; nil
	// entries were not probed.
	PerProto [netmodel.NumProtocols]*ip6.SortedShardSet

	// Aliased is a frozen private copy of the detected alias prefixes.
	Aliased *ip6.PrefixSet

	// Injected holds every address that ever showed GFW DNS-injection
	// evidence.
	Injected *ip6.SortedShardSet
}

// Answer is the result of one point query, derived from exactly one
// snapshot — the consistency unit the race tests pin.
type Answer struct {
	Day        int
	Generation uint64

	// Live is any-protocol liveness in the snapshot's scan.
	Live bool
	// Protos is the per-protocol liveness bitmask.
	Protos netmodel.ProtoSet

	Aliased     bool
	AliasPrefix ip6.Prefix

	// Injected reports GFW DNS-injection evidence.
	Injected bool
}

// NewSnapshot assembles a snapshot from frozen components, building the
// frozen alias index from the prefix list (the caller's PrefixSet keeps
// mutating with the timeline, so the copy is what makes the snapshot
// immutable).
func NewSnapshot(day int, any *ip6.SortedShardSet, perProto [netmodel.NumProtocols]*ip6.SortedShardSet, aliased []ip6.Prefix, injected *ip6.SortedShardSet) *Snapshot {
	s := &Snapshot{Day: day, Any: any, PerProto: perProto, Injected: injected}
	if len(aliased) > 0 {
		ps := ip6.NewPrefixSet()
		for _, p := range aliased {
			ps.Add(p)
		}
		ps.Freeze()
		s.Aliased = ps
	}
	return s
}

// Lookup answers every query dimension for one address from this
// snapshot. It allocates nothing: three binary searches over packed
// sorted arrays plus one segment-index lookup.
func (s *Snapshot) Lookup(a ip6.Addr) Answer {
	ans := Answer{Day: s.Day, Generation: s.Generation}
	sh := ip6.ShardOf(a)
	ans.Live = s.Any.HasInShard(sh, a)
	for i := range s.PerProto {
		if s.PerProto[i].HasInShard(sh, a) {
			ans.Protos = ans.Protos.With(netmodel.Protocol(i))
		}
	}
	if s.Aliased != nil {
		if p, ok := s.Aliased.Match(a); ok {
			ans.Aliased, ans.AliasPrefix = true, p
		}
	}
	ans.Injected = s.Injected.HasInShard(sh, a)
	return ans
}
