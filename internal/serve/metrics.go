package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates query-path telemetry across every front end sharing
// it (DNS responder loops and the HTTP API). Counting is two atomic adds
// on the hot path — no locks, no allocations — so the DNS answer path
// keeps its zero-allocation guarantee with metrics attached.
type Metrics struct {
	queries atomic.Uint64
	hits    atomic.Uint64

	// Scrape-to-scrape QPS state, touched only by /metrics requests.
	mu          sync.Mutex
	lastScrape  time.Time
	lastQueries uint64
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{} }

// CountQuery records one answered point query and whether it hit.
func (m *Metrics) CountQuery(hit bool) {
	m.queries.Add(1)
	if hit {
		m.hits.Add(1)
	}
}

// Totals returns the cumulative query and hit counts.
func (m *Metrics) Totals() (queries, hits uint64) {
	return m.queries.Load(), m.hits.Load()
}

// MetricsHandler serves the /metrics scrape endpoint: cumulative query
// and hit counters, the hit rate, queries-per-second since the previous
// scrape, and the served snapshot's generation and age (from the
// handle's publication stamp). Text exposition format, one gauge per
// line, so any Prometheus-style scraper ingests it directly.
func MetricsHandler(h *Handle, m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		queries, hits := m.Totals()

		m.mu.Lock()
		now := time.Now()
		qps := 0.0
		if !m.lastScrape.IsZero() {
			if dt := now.Sub(m.lastScrape).Seconds(); dt > 0 {
				qps = float64(queries-m.lastQueries) / dt
			}
		}
		m.lastScrape = now
		m.lastQueries = queries
		m.mu.Unlock()

		hitRate := 0.0
		if queries > 0 {
			hitRate = float64(hits) / float64(queries)
		}
		gen := h.Generation()
		age := 0.0
		if at, ok := h.PublishedAt(); ok {
			age = now.Sub(at).Seconds()
		}
		refrozen, shared, build := h.PublishStats()

		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "hitlist6_queries_total %d\n", queries)
		fmt.Fprintf(w, "hitlist6_hits_total %d\n", hits)
		fmt.Fprintf(w, "hitlist6_hit_rate %g\n", hitRate)
		fmt.Fprintf(w, "hitlist6_qps %g\n", qps)
		fmt.Fprintf(w, "hitlist6_snapshot_generation %d\n", gen)
		fmt.Fprintf(w, "hitlist6_snapshot_age_seconds %g\n", age)
		fmt.Fprintf(w, "hitlist6_snapshot_shards_refrozen %d\n", refrozen)
		fmt.Fprintf(w, "hitlist6_snapshot_shards_shared %d\n", shared)
		fmt.Fprintf(w, "hitlist6_snapshot_publish_seconds %g\n", build.Seconds())
	})
}
