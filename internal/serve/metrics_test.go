package serve

import (
	"net/http/httptest"
	"strings"
	"testing"

	"hitlist6/internal/dnswire"
)

// TestDNSTruncatesOversizeReply pins the TC-bit path: when the full
// answer would exceed the responder's UDP payload ceiling, the reply is
// header plus question only with TC set — never a clipped record — and
// the client is expected to retry over TCP.
func TestDNSTruncatesOversizeReply(t *testing.T) {
	snap, addrs := testSnapshot(t)
	h := NewHandle()
	h.Publish(snap)
	r := NewDNSResponder(h, "hitlist6.test")
	var sc Scratch
	name := r.QueryName(addrs["live"], "live")
	wire, err := dnswire.NewQuery(99, name, dnswire.TypeA).Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Control: the answer fits the default 512-byte ceiling untruncated.
	full := r.Respond(wire, nil, &sc)
	if full == nil {
		t.Fatal("control query dropped")
	}
	m, err := dnswire.Decode(full)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Truncated || len(m.Answers) != 1 {
		t.Fatalf("control reply: TC=%v answers=%d", m.Header.Truncated, len(m.Answers))
	}

	// Lower the ceiling just below the full reply: the same query must
	// now truncate instead of clipping the record.
	r.udpLimit = len(full) - 1
	short := r.Respond(wire, nil, &sc)
	if short == nil {
		t.Fatal("truncating query dropped")
	}
	if len(short) > r.udpLimit {
		t.Fatalf("truncated reply is %d bytes, over the %d-byte limit", len(short), r.udpLimit)
	}
	m, err = dnswire.Decode(short)
	if err != nil {
		t.Fatalf("truncated reply does not decode: %v", err)
	}
	if !m.Header.Truncated {
		t.Fatal("TC bit not set on oversize reply")
	}
	if m.Header.RCode != dnswire.RCodeNoError || len(m.Answers) != 0 {
		t.Fatalf("truncated reply: rcode=%v answers=%d", m.Header.RCode, len(m.Answers))
	}
}

// TestMetricsEndpoint: queries through both front ends feed one
// collector, and /metrics exposes the counters plus the snapshot's
// generation in text exposition format.
func TestMetricsEndpoint(t *testing.T) {
	snap, addrs := testSnapshot(t)
	h := NewHandle()
	h.Publish(snap)
	m := NewMetrics()

	r := NewDNSResponder(h, "hitlist6.test")
	r.SetMetrics(m)
	var sc Scratch
	respond(t, r, &sc, r.QueryName(addrs["live"], "live"), dnswire.TypeA)    // hit
	respond(t, r, &sc, r.QueryName(addrs["nothing"], "live"), dnswire.TypeA) // miss

	if q, hits := m.Totals(); q != 2 || hits != 1 {
		t.Fatalf("after DNS queries: totals = %d, %d", q, hits)
	}

	mux := NewHTTPHandlerWithMetrics(h, m)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query?addr="+addrs["live"].String(), nil))
	if rec.Code != 200 {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body)
	}
	if q, hits := m.Totals(); q != 3 || hits != 2 {
		t.Fatalf("after HTTP query: totals = %d, %d", q, hits)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"hitlist6_queries_total 3\n",
		"hitlist6_hits_total 2\n",
		"hitlist6_snapshot_generation 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}
