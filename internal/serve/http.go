package serve

import (
	"encoding/json"
	"net/http"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// HTTPAnswer is the JSON shape of one query response. Protocol keys use
// the same DNS-safe labels as the DNS datasets ("icmp", "tcp443", ...),
// so the two front ends are diffable row for row.
type HTTPAnswer struct {
	Addr        string          `json:"addr"`
	Day         int             `json:"day"`
	Generation  uint64          `json:"generation"`
	Live        bool            `json:"live"`
	Protocols   map[string]bool `json:"protocols,omitempty"`
	Aliased     bool            `json:"aliased"`
	AliasPrefix string          `json:"alias_prefix,omitempty"`
	GFWInjected bool            `json:"gfw_injected"`
}

// HTTPSnapshotInfo is the JSON shape of the snapshot metadata endpoint.
type HTTPSnapshotInfo struct {
	Day             int            `json:"day"`
	Generation      uint64         `json:"generation"`
	LiveAddrs       int            `json:"live_addrs"`
	Protocols       map[string]int `json:"protocols,omitempty"`
	AliasedPrefixes int            `json:"aliased_prefixes"`
	GFWAddrs        int            `json:"gfw_addrs"`
}

// answerJSON converts a point answer to its JSON shape.
func answerJSON(a ip6.Addr, ans Answer) HTTPAnswer {
	out := HTTPAnswer{
		Addr:        a.String(),
		Day:         ans.Day,
		Generation:  ans.Generation,
		Live:        ans.Live,
		Aliased:     ans.Aliased,
		GFWInjected: ans.Injected,
	}
	if ans.Protos != 0 {
		out.Protocols = make(map[string]bool, netmodel.NumProtocols)
		for _, p := range netmodel.Protocols {
			if ans.Protos.Has(p) {
				out.Protocols[protoLabels[p]] = true
			}
		}
	}
	if ans.Aliased {
		out.AliasPrefix = ans.AliasPrefix.String()
	}
	return out
}

// NewHTTPHandler returns the HTTP/JSON front end over a handle:
//
//	GET /v1/query?addr=2001:db8::1   → HTTPAnswer
//	GET /v1/snapshot                  → HTTPSnapshotInfo
//	GET /healthz                      → 200 once a snapshot is published
//
// Handlers read the snapshot through Handle.Lookup / Handle.Current, so
// every response is consistent with exactly one publication; the DNS
// path stays the allocation-free one, HTTP trades a few allocations for
// the JSON ergonomics.
func NewHTTPHandler(h *Handle) http.Handler { return NewHTTPHandlerWithMetrics(h, nil) }

// NewHTTPHandlerWithMetrics is NewHTTPHandler plus telemetry: queries
// through /v1/query feed the collector, and GET /metrics exposes the
// counters (QPS, hit rate, snapshot generation and age) in text
// exposition format. A nil collector serves the plain API.
func NewHTTPHandlerWithMetrics(h *Handle, m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, req *http.Request) {
		a, err := ip6.ParseAddr(req.URL.Query().Get("addr"))
		if err != nil {
			http.Error(w, "bad or missing addr parameter", http.StatusBadRequest)
			return
		}
		ans, ok := h.Lookup(a)
		if !ok {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		if m != nil {
			m.CountQuery(ans.Live)
		}
		writeJSON(w, answerJSON(a, ans))
	})
	if m != nil {
		mux.Handle("/metrics", MetricsHandler(h, m))
	}
	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, req *http.Request) {
		s := h.Current()
		if s == nil {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		info := HTTPSnapshotInfo{
			Day:        s.Day,
			Generation: s.Generation,
			LiveAddrs:  s.Any.Len(),
			GFWAddrs:   s.Injected.Len(),
		}
		if s.Aliased != nil {
			info.AliasedPrefixes = s.Aliased.Len()
		}
		for p, set := range s.PerProto {
			if set != nil {
				if info.Protocols == nil {
					info.Protocols = make(map[string]int, netmodel.NumProtocols)
				}
				info.Protocols[protoLabels[p]] = set.Len()
			}
		}
		writeJSON(w, info)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if h.Current() == nil {
			http.Error(w, "no snapshot", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
