package serve

import (
	"sync/atomic"

	"hitlist6/internal/ip6"
)

// Handle is the publication point between the scanning pipeline and the
// query servers: one atomic pointer to the current Snapshot. Publish is
// a single pointer store (plus a generation stamp); Current is a single
// pointer load. Readers therefore never lock and never observe a
// half-built snapshot, and the writer never waits for readers — old
// snapshots stay valid for queries already holding them and are
// reclaimed by the garbage collector once the last reader drops theirs.
type Handle struct {
	cur atomic.Pointer[Snapshot]
	gen atomic.Uint64
}

// NewHandle returns an empty handle; Current returns nil until the
// first Publish.
func NewHandle() *Handle { return &Handle{} }

// Publish stamps s with the next generation and makes it the current
// snapshot. s must not be mutated afterwards.
func (h *Handle) Publish(s *Snapshot) {
	s.Generation = h.gen.Add(1)
	h.cur.Store(s)
}

// Current returns the most recently published snapshot, or nil before
// the first publication. The result is immutable and safe to query for
// any length of time.
func (h *Handle) Current() *Snapshot { return h.cur.Load() }

// Lookup answers one point query against the current snapshot. The
// snapshot pointer is loaded exactly once, so all fields of the Answer
// are consistent with one publication. ok is false before the first
// Publish.
func (h *Handle) Lookup(a ip6.Addr) (ans Answer, ok bool) {
	s := h.cur.Load()
	if s == nil {
		return Answer{}, false
	}
	return s.Lookup(a), true
}
