package serve

import (
	"sync/atomic"
	"time"

	"hitlist6/internal/ip6"
)

// Handle is the publication point between the scanning pipeline and the
// query servers: one atomic pointer to the current Snapshot. Publish is
// a single pointer store (plus a generation stamp); Current is a single
// pointer load. Readers therefore never lock and never observe a
// half-built snapshot, and the writer never waits for readers — old
// snapshots stay valid for queries already holding them and are
// reclaimed by the garbage collector once the last reader drops theirs.
type Handle struct {
	cur atomic.Pointer[Snapshot]
	gen atomic.Uint64

	// pubNanos is the wall-clock time of the last Publish (UnixNano; 0
	// before the first) — telemetry for the metrics endpoint's
	// generation-age gauge, never part of query answers.
	pubNanos atomic.Int64

	// Publish-side incremental-freeze telemetry (NotePublish): cumulative
	// shard counts across publications plus the last publication's
	// build+swap latency. Never part of query answers.
	pubRefrozen   atomic.Uint64
	pubShared     atomic.Uint64
	pubBuildNanos atomic.Int64
}

// NewHandle returns an empty handle; Current returns nil until the
// first Publish.
func NewHandle() *Handle { return &Handle{} }

// Publish stamps s with the next generation and makes it the current
// snapshot. s must not be mutated afterwards.
func (h *Handle) Publish(s *Snapshot) {
	s.Generation = h.gen.Add(1)
	h.cur.Store(s)
	h.pubNanos.Store(time.Now().UnixNano())
}

// Generation returns the last generation stamped (0 before the first
// Publish or restore).
func (h *Handle) Generation() uint64 { return h.gen.Load() }

// PublishedAt returns when the current snapshot was published; ok is
// false before the first Publish (including after a restore, until the
// next finalization publishes).
func (h *Handle) PublishedAt() (time.Time, bool) {
	n := h.pubNanos.Load()
	if n == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, n), true
}

// NotePublish records how the last published snapshot was built: how
// many frozen shard indexes were re-frozen vs shared with the previous
// generation (copy-on-publish), and how long the build-plus-swap took.
func (h *Handle) NotePublish(refrozen, shared int, build time.Duration) {
	h.pubRefrozen.Add(uint64(refrozen))
	h.pubShared.Add(uint64(shared))
	h.pubBuildNanos.Store(int64(build))
}

// PublishStats returns the cumulative re-frozen and shared shard counts
// across publications and the last publication's build latency.
func (h *Handle) PublishStats() (refrozen, shared uint64, build time.Duration) {
	return h.pubRefrozen.Load(), h.pubShared.Load(), time.Duration(h.pubBuildNanos.Load())
}

// RestoreGeneration fast-forwards the generation counter without
// publishing a snapshot — the checkpoint-restore path. Snapshots are
// deliberately not checkpointed (they are derived state); servers answer
// SERVFAIL until the resumed timeline's next finalization publishes
// generation gen+1, and generation numbering continues exactly where the
// interrupted run left off.
func (h *Handle) RestoreGeneration(gen uint64) { h.gen.Store(gen) }

// Current returns the most recently published snapshot, or nil before
// the first publication. The result is immutable and safe to query for
// any length of time.
func (h *Handle) Current() *Snapshot { return h.cur.Load() }

// Lookup answers one point query against the current snapshot. The
// snapshot pointer is loaded exactly once, so all fields of the Answer
// are consistent with one publication. ok is false before the first
// Publish.
func (h *Handle) Lookup(a ip6.Addr) (ans Answer, ok bool) {
	s := h.cur.Load()
	if s == nil {
		return Answer{}, false
	}
	return s.Lookup(a), true
}
