package serve

import (
	"encoding/binary"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// The DNS query grammar is rbldnsd's: one dataset per subzone, the
// looked-up key as the first label. A query asks
//
//	<32-hex-digit address>.<dataset>.<zone>    IN A
//
// where dataset is "live" (responsive on any protocol), a protocol name
// ("icmp", "tcp443", "tcp80", "udp443", "udp53"), "alias" (inside a
// detected alias prefix) or "gfw" (GFW DNS-injection evidence). A hit
// answers A 127.0.0.2 (the rbldnsd listed-convention); for alias hits
// the TTL carries the matched prefix length, otherwise it is ServeTTL.
// A miss answers NXDOMAIN. The 32-digit form is ip6.Addr.FullHex — one
// label, fitting DNS's 63-octet limit with room to spare.

// ServeTTL is the answer TTL for non-alias hits.
const ServeTTL = 300

// MaxUDPReply is the classic DNS UDP payload limit: replies that would
// exceed it are sent header-plus-question only with the TC bit set, so
// the client retries over TCP instead of reading a silently clipped
// datagram.
const MaxUDPReply = 512

// listedA is the rbldnsd-style "listed" answer payload.
var listedA = [4]byte{127, 0, 0, 2}

// typeANY is the QTYPE * (any); dnswire defines only concrete RR types.
const typeANY dnswire.Type = 255

// protoLabels maps netmodel.Protocol values to their DNS-safe dataset
// labels (Protocol.String uses "TCP/443"-style names, which are not
// valid labels).
var protoLabels = [netmodel.NumProtocols]string{
	netmodel.ICMP:   "icmp",
	netmodel.TCP443: "tcp443",
	netmodel.TCP80:  "tcp80",
	netmodel.UDP443: "udp443",
	netmodel.UDP53:  "udp53",
}

// DNSResponder answers hitlist queries for one zone from a Handle's
// current snapshot. It is stateless apart from the handle and zone, so
// one responder is shared by any number of server goroutines; the
// per-goroutine mutable state lives in Scratch.
type DNSResponder struct {
	h    *Handle
	zone string // normalized, non-empty

	// udpLimit is the reply-size ceiling before truncation (MaxUDPReply;
	// tests lower it to exercise the TC path with ordinary names).
	udpLimit int

	// metrics, when non-nil, counts answered dataset queries — two
	// atomic adds, so the answer path stays allocation-free.
	metrics *Metrics
}

// NewDNSResponder builds a responder serving the given zone (e.g.
// "hitlist6.test"); the zone is normalized like every other name.
func NewDNSResponder(h *Handle, zone string) *DNSResponder {
	return &DNSResponder{h: h, zone: dnswire.NormalizeName(zone), udpLimit: MaxUDPReply}
}

// SetMetrics attaches a telemetry collector; nil detaches. Not safe to
// call concurrently with Respond.
func (r *DNSResponder) SetMetrics(m *Metrics) { r.metrics = m }

// Zone returns the normalized zone the responder is authoritative for.
func (r *DNSResponder) Zone() string { return r.zone }

// Scratch is the per-goroutine reusable state of Respond: the decoded
// query view whose name buffer is recycled across packets. The zero
// value is ready to use.
type Scratch struct {
	q dnswire.ServerQuery
}

// Respond answers one wire-format query, appending the reply to dst and
// returning it (dst's backing array is reused across calls — pass the
// previous reply re-sliced to [:0]). It returns nil when the packet
// should be dropped (responses, non-queries). With a warmed Scratch and
// a reply-sized dst the call performs zero allocations: decode reuses
// the scratch name buffer, the snapshot lookup is binary searches, and
// the encode is dnswire.AppendReplyRaw into dst.
func (r *DNSResponder) Respond(msg []byte, dst []byte, sc *Scratch) []byte {
	q := &sc.q
	if err := dnswire.DecodeQueryInto(msg, q); err != nil {
		if err == dnswire.ErrNotAQuery {
			return nil // never answer answers
		}
		if len(msg) >= 12 {
			return appendHeaderOnly(dst, binary.BigEndian.Uint16(msg), dnswire.RCodeFormErr)
		}
		return nil
	}
	hdr := dnswire.Header{
		ID:               q.ID,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: q.RecursionDesired,
	}
	if q.Class != dnswire.ClassIN && dnswire.Type(q.Class) != typeANY {
		hdr.RCode = dnswire.RCodeRefused
		return dnswire.AppendReplyRaw(dst, hdr, q.Raw, 0, 0, nil)
	}
	key, dataset, inZone := r.splitName(q.Name)
	if !inZone {
		hdr.Authoritative = false
		hdr.RCode = dnswire.RCodeRefused
		return dnswire.AppendReplyRaw(dst, hdr, q.Raw, 0, 0, nil)
	}
	if len(dataset) == 0 && len(key) == 0 {
		// Zone apex: authoritative, no data for any of our types.
		return dnswire.AppendReplyRaw(dst, hdr, q.Raw, 0, 0, nil)
	}
	snap := r.h.Current()
	if snap == nil {
		hdr.RCode = dnswire.RCodeServFail
		return dnswire.AppendReplyRaw(dst, hdr, q.Raw, 0, 0, nil)
	}
	hit, ttl := lookupDataset(snap, key, dataset)
	if r.metrics != nil {
		r.metrics.CountQuery(hit)
	}
	if !hit {
		hdr.RCode = dnswire.RCodeNXDomain
		return dnswire.AppendReplyRaw(dst, hdr, q.Raw, 0, 0, nil)
	}
	if q.Type != dnswire.TypeA && q.Type != typeANY {
		// Listed, but not the type asked for: NOERROR, no data.
		return dnswire.AppendReplyRaw(dst, hdr, q.Raw, 0, 0, nil)
	}
	start := len(dst)
	out := dnswire.AppendReplyRaw(dst, hdr, q.Raw, dnswire.TypeA, ttl, listedA[:])
	if len(out)-start > r.udpLimit {
		// The full answer would overflow the UDP payload: re-encode the
		// header and question only with TC set, never a clipped record.
		hdr.Truncated = true
		return dnswire.AppendReplyRaw(out[:start], hdr, q.Raw, 0, 0, nil)
	}
	return out
}

// splitName splits a normalized query name into the key label, the
// dataset label and zone membership. For the zone apex both returns are
// empty with inZone true.
func (r *DNSResponder) splitName(name []byte) (key, dataset []byte, inZone bool) {
	zl := len(r.zone)
	if len(name) == zl {
		if string(name) != r.zone {
			return nil, nil, false
		}
		return nil, nil, true
	}
	if len(name) < zl+2 || string(name[len(name)-zl:]) != r.zone || name[len(name)-zl-1] != '.' {
		return nil, nil, false
	}
	rest := name[:len(name)-zl-1]
	for i := len(rest) - 1; i >= 0; i-- {
		if rest[i] == '.' {
			return rest[:i], rest[i+1:], true
		}
	}
	return nil, rest, true
}

// lookupDataset answers one (key, dataset) membership question against
// a snapshot. Unknown datasets and malformed keys are misses — exactly
// how a DNS zone treats names that do not exist.
func lookupDataset(snap *Snapshot, key, dataset []byte) (hit bool, ttl uint32) {
	a, ok := parseHexAddr(key)
	if !ok {
		return false, 0
	}
	switch string(dataset) { // compiler-optimized; no allocation
	case "live":
		return snap.Any.Has(a), ServeTTL
	case "alias":
		if snap.Aliased == nil {
			return false, 0
		}
		if p, ok := snap.Aliased.Match(a); ok {
			return true, uint32(p.Bits())
		}
		return false, 0
	case "gfw":
		return snap.Injected.Has(a), ServeTTL
	default:
		for p, label := range protoLabels {
			if string(dataset) == label {
				return snap.PerProto[p].Has(a), ServeTTL
			}
		}
	}
	return false, 0
}

// parseHexAddr parses the 32-digit ip6.Addr.FullHex label form without
// allocating.
func parseHexAddr(b []byte) (ip6.Addr, bool) {
	var a ip6.Addr
	if len(b) != 32 {
		return a, false
	}
	for i := 0; i < 16; i++ {
		hi, ok1 := hexVal(b[2*i])
		lo, ok2 := hexVal(b[2*i+1])
		if !ok1 || !ok2 {
			return ip6.Addr{}, false
		}
		a[i] = hi<<4 | lo
	}
	return a, true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// appendHeaderOnly emits a bare 12-byte error response (no question
// echo) for packets that failed question parsing.
func appendHeaderOnly(dst []byte, id uint16, rcode dnswire.RCode) []byte {
	if cap(dst)-len(dst) < 12 {
		grown := make([]byte, len(dst), len(dst)+12)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	dst = dst[:start+12]
	binary.BigEndian.PutUint16(dst[start:], id)
	binary.BigEndian.PutUint16(dst[start+2:], 0x8000|uint16(rcode)) // QR, rcode
	for i := 4; i < 12; i += 2 {
		binary.BigEndian.PutUint16(dst[start+i:], 0)
	}
	return dst
}

// QueryName appends the query name for (addr, dataset) under the
// responder's zone — the client-side counterpart of the grammar above,
// used by tests, benchmarks and the smoke client.
func (r *DNSResponder) QueryName(a ip6.Addr, dataset string) string {
	return a.FullHex() + "." + dataset + "." + r.zone
}
