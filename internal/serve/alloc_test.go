package serve

import (
	"testing"

	"hitlist6/internal/dnswire"
)

// TestServeDNSAlloc pins the DNS query hot path at zero allocations per
// query: decode into a warmed Scratch, binary-search point lookups on
// the frozen snapshot, and AppendReplyRaw into a reused reply buffer.
// It runs in CI next to the ProbeOne guards; a regression here is a
// serving-throughput regression.
func TestServeDNSAlloc(t *testing.T) {
	snap, addrs := testSnapshot(t)
	h := NewHandle()
	h.Publish(snap)
	r := NewDNSResponder(h, "hitlist6.test")

	var sc Scratch
	out := make([]byte, 0, 512)
	// One query per dataset family, hits and misses both — every branch
	// of the answer path must stay allocation-free.
	var queries [][]byte
	for _, q := range []struct {
		key     string
		dataset string
	}{
		{"live", "live"}, {"nothing", "live"},
		{"live", "icmp"}, {"udp53", "udp53"},
		{"alias", "alias"}, {"nothing", "alias"},
		{"gfw", "gfw"}, {"live", "gfw"},
	} {
		wire, err := dnswire.NewQuery(7, r.QueryName(addrs[q.key], q.dataset), dnswire.TypeA).Encode()
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, wire)
	}
	// Warm the scratch name buffer.
	for _, q := range queries {
		out = r.Respond(q, out[:0], &sc)
	}
	allocs := testing.AllocsPerRun(500, func() {
		for _, q := range queries {
			out = r.Respond(q, out[:0], &sc)
			if out == nil {
				t.Fatal("query dropped")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("DNS serve path allocs per %d queries = %v, want 0", len(queries), allocs)
	}
}
