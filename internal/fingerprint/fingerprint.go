// Package fingerprint implements the two alias-verification techniques of
// Section 5.1: TCP-feature fingerprinting and the Too Big Trick (TBT).
//
// Fingerprinting compares TCP handshake features (option order, window,
// window scale, MSS, iTTL) across addresses of an aliased prefix: equal
// values are consistent with one host, differing values indicate several.
// The TBT exploits IPv6's end-host-only fragmentation: poisoning one
// address's PMTU cache and observing which sibling addresses subsequently
// fragment reveals how many addresses share a server.
package fingerprint

import (
	"context"
	"fmt"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
)

// FPSample is the fingerprint observed at one address.
type FPSample struct {
	Addr ip6.Addr
	FP   netmodel.TCPFingerprint
}

// CollectTCP handshakes with n pseudo-random addresses inside prefix and
// returns the observed fingerprints. Unresponsive draws are skipped.
func CollectTCP(ctx context.Context, s *scan.Scanner, prefix ip6.Prefix, n, day int) ([]FPSample, error) {
	r := rng.NewStream(rng.Mix(prefix.Addr().Hi(), uint64(prefix.Bits()), uint64(day)), "fp-collect")
	targets := make([]ip6.Addr, n)
	for i := range targets {
		targets[i] = prefix.RandomAddr(r)
	}
	results, _, err := s.Scan(ctx, targets, []netmodel.Protocol{netmodel.TCP80}, day)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: scanning %v: %w", prefix, err)
	}
	var out []FPSample
	for _, res := range results {
		if res.Success && res.Kind == netmodel.RespSynAck {
			out = append(out, FPSample{Addr: res.Target, FP: res.FP})
		}
	}
	return out, nil
}

// FPSummary aggregates fingerprints over one prefix.
type FPSummary struct {
	Samples int
	// Distinct counts distinct full fingerprints.
	Distinct int
	// DistinctIgnoringWindow counts distinct fingerprints when the TCP
	// window — which may legitimately vary per connection — is ignored.
	DistinctIgnoringWindow int
	// Uniform: all samples match on every feature.
	Uniform bool
	// WindowOnly: differences exist but only in the window size.
	WindowOnly bool
}

// Summarize reduces samples to an FPSummary.
func Summarize(samples []FPSample) FPSummary {
	sum := FPSummary{Samples: len(samples)}
	if len(samples) == 0 {
		return sum
	}
	full := make(map[netmodel.TCPFingerprint]struct{})
	noWin := make(map[netmodel.TCPFingerprint]struct{})
	for _, s := range samples {
		full[s.FP] = struct{}{}
		f := s.FP
		f.Window = 0
		noWin[f] = struct{}{}
	}
	sum.Distinct = len(full)
	sum.DistinctIgnoringWindow = len(noWin)
	sum.Uniform = len(full) == 1
	sum.WindowOnly = len(full) > 1 && len(noWin) == 1
	return sum
}

// TBTOutcome classifies a Too Big Trick run.
type TBTOutcome uint8

// TBT outcomes; the paper reports 93.75 % AllShared, 0.85 % NoneShared and
// 5.4 % PartialShared over the prefixes where the trick applies.
const (
	TBTUnsupported   TBTOutcome = iota // targets unresponsive or already fragmenting
	TBTAllShared                       // all tested addresses share one PMTU cache
	TBTNoneShared                      // only the poisoned address fragments
	TBTPartialShared                   // some but not all share (CDN fleets)
)

// String names the outcome.
func (o TBTOutcome) String() string {
	switch o {
	case TBTUnsupported:
		return "unsupported"
	case TBTAllShared:
		return "all-shared"
	case TBTNoneShared:
		return "none-shared"
	case TBTPartialShared:
		return "partial-shared"
	}
	return "unknown"
}

// TBTResult reports one Too Big Trick run over a prefix.
type TBTResult struct {
	Prefix  ip6.Prefix
	Outcome TBTOutcome
	// Tested is how many addresses passed the pre-check.
	Tested int
	// Fragmented is how many of the tested addresses returned fragmented
	// replies after the single PTB message (including the poisoned one).
	Fragmented int
}

// Prober is the minimal wire access the TBT needs; *netmodel.Network
// satisfies it.
type Prober interface {
	Probe(netmodel.Probe) netmodel.Response
}

// TBTAddresses is the number of addresses under test, as in the paper.
const TBTAddresses = 8

// TooBigTrick runs the three-step procedure of Beverly et al. as applied
// by Song et al. against one prefix:
//
//	(i)   verify 8 addresses answer 1300-byte echos unfragmented,
//	(ii)  send an ICMPv6 Packet Too Big (MTU 1280) to one of them,
//	(iii) re-probe all and count fragmented replies.
func TooBigTrick(p Prober, prefix ip6.Prefix, day int) TBTResult {
	res := TBTResult{Prefix: prefix}
	r := rng.NewStream(rng.Mix(prefix.Addr().Hi(), prefix.Addr().Lo(), uint64(prefix.Bits()), uint64(day)), "tbt")
	const echoSize = 1300

	// Step (i): responsive, unfragmented baseline.
	var under []ip6.Addr
	for attempts := 0; attempts < 4*TBTAddresses && len(under) < TBTAddresses; attempts++ {
		a := prefix.RandomAddr(r)
		resp := p.Probe(netmodel.Probe{Kind: netmodel.EchoRequest, Target: a, Day: day, Size: echoSize})
		if resp.Kind == netmodel.RespEchoReply && !resp.Fragmented {
			under = append(under, a)
		}
	}
	res.Tested = len(under)
	if len(under) < TBTAddresses {
		res.Outcome = TBTUnsupported
		return res
	}

	// Step (ii): poison one address's path MTU.
	p.Probe(netmodel.Probe{Kind: netmodel.PacketTooBig, Target: under[0], Day: day, MTU: 1280})

	// Step (iii): who fragments now?
	for _, a := range under {
		resp := p.Probe(netmodel.Probe{Kind: netmodel.EchoRequest, Target: a, Day: day, Size: echoSize})
		if resp.Kind == netmodel.RespEchoReply && resp.Fragmented {
			res.Fragmented++
		}
	}
	switch {
	case res.Fragmented >= res.Tested:
		res.Outcome = TBTAllShared
	case res.Fragmented <= 1:
		res.Outcome = TBTNoneShared
	default:
		res.Outcome = TBTPartialShared
	}
	return res
}
