package fingerprint

import (
	"context"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
)

func testWorld(t testing.TB) *netmodel.Network {
	t.Helper()
	ases := []*netmodel.AS{
		{ASN: 54113, Name: "Fastly", Country: "US", Category: netmodel.CatCDN,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2a04:4e40::/32")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(9, netmodel.NewASTable(ases))
	as := ases[0]
	add := func(prefix string, backends int, jitter bool) {
		n.AddAlias(&netmodel.AliasRule{
			Prefix: ip6.MustParsePrefix(prefix), AS: as,
			Protos:   netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80),
			Backends: backends, WindowJitter: jitter,
			BornDay: 0, DeathDay: netmodel.Forever, FP: netmodel.FPLinuxLB, MTU: 1500,
		})
	}
	add("2a04:4e40:1::/48", 1, false)    // single host alias
	add("2a04:4e40:2::/48", 4, false)    // CDN fleet, uniform FP
	add("2a04:4e40:3::/48", 4, true)     // fleet with per-backend window jitter
	add("2a04:4e40:4::/48", 4096, false) // per-address termination
	return n
}

func lossless(n *netmodel.Network) *scan.Scanner {
	cfg := scan.DefaultConfig(1)
	cfg.LossRate = 0
	return scan.New(n, cfg)
}

func TestCollectAndSummarizeUniform(t *testing.T) {
	n := testWorld(t)
	s := lossless(n)
	samples, err := CollectTCP(context.Background(), s, ip6.MustParsePrefix("2a04:4e40:2::/48"), 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 16 {
		t.Fatalf("samples: %d", len(samples))
	}
	sum := Summarize(samples)
	if !sum.Uniform || sum.Distinct != 1 || sum.WindowOnly {
		t.Errorf("uniform fleet: %+v", sum)
	}
}

func TestSummarizeWindowJitter(t *testing.T) {
	n := testWorld(t)
	s := lossless(n)
	samples, err := CollectTCP(context.Background(), s, ip6.MustParsePrefix("2a04:4e40:3::/48"), 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(samples)
	if sum.Uniform {
		t.Errorf("jittered fleet summarized uniform: %+v", sum)
	}
	if !sum.WindowOnly {
		t.Errorf("expected window-only variance: %+v", sum)
	}
	if sum.DistinctIgnoringWindow != 1 {
		t.Errorf("non-window features varied: %+v", sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sum := Summarize(nil)
	if sum.Samples != 0 || sum.Uniform || sum.WindowOnly {
		t.Errorf("empty summary: %+v", sum)
	}
}

func TestTBTAllShared(t *testing.T) {
	n := testWorld(t)
	res := TooBigTrick(n, ip6.MustParsePrefix("2a04:4e40:1::/48"), 3)
	if res.Outcome != TBTAllShared {
		t.Errorf("single-host alias: %+v", res)
	}
	if res.Tested != TBTAddresses || res.Fragmented != TBTAddresses {
		t.Errorf("counters: %+v", res)
	}
}

func TestTBTPartialShared(t *testing.T) {
	n := testWorld(t)
	n.ResetPMTU()
	res := TooBigTrick(n, ip6.MustParsePrefix("2a04:4e40:2::/48"), 4)
	if res.Outcome != TBTPartialShared {
		t.Errorf("4-backend fleet: %+v", res)
	}
	if res.Fragmented < 2 || res.Fragmented >= TBTAddresses {
		t.Errorf("fragmented count: %+v", res)
	}
}

func TestTBTNoneShared(t *testing.T) {
	n := testWorld(t)
	n.ResetPMTU()
	res := TooBigTrick(n, ip6.MustParsePrefix("2a04:4e40:4::/48"), 5)
	if res.Outcome != TBTNoneShared {
		t.Errorf("per-address termination: %+v", res)
	}
	if res.Fragmented != 1 {
		t.Errorf("only the poisoned address should fragment: %+v", res)
	}
}

func TestTBTUnsupported(t *testing.T) {
	n := testWorld(t)
	// A prefix with no responsive addresses at all.
	res := TooBigTrick(n, ip6.MustParsePrefix("2a04:4e40:ff::/48"), 6)
	if res.Outcome != TBTUnsupported {
		t.Errorf("unresponsive prefix: %+v", res)
	}
	if TBTUnsupported.String() != "unsupported" || TBTAllShared.String() != "all-shared" ||
		TBTNoneShared.String() != "none-shared" || TBTPartialShared.String() != "partial-shared" {
		t.Error("outcome strings")
	}
}

func TestTBTDeterministicPerDay(t *testing.T) {
	n := testWorld(t)
	n.ResetPMTU()
	r1 := TooBigTrick(n, ip6.MustParsePrefix("2a04:4e40:2::/48"), 9)
	n.ResetPMTU()
	r2 := TooBigTrick(n, ip6.MustParsePrefix("2a04:4e40:2::/48"), 9)
	if r1.Fragmented != r2.Fragmented || r1.Outcome != r2.Outcome {
		t.Errorf("TBT not deterministic: %+v vs %+v", r1, r2)
	}
}

func BenchmarkTooBigTrick(b *testing.B) {
	n := testWorld(b)
	p := ip6.MustParsePrefix("2a04:4e40:2::/48")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ResetPMTU()
		TooBigTrick(n, p, i)
	}
}
