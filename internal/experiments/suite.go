// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic world: the pipeline funnel (Fig. 1), input
// and responsiveness distributions (Figs. 2, 8, 9), the published-vs-
// cleaned timeline (Fig. 3), churn (Fig. 4), aliased-prefix analyses
// (Figs. 5, 6; Table 2), source evaluations (Tables 3, 4; Figs. 7, 8), the
// GFW accounting (Table 5), and the in-text experiments (DNS behaviour,
// fingerprints/TBT, domains, EUI-64) plus ablations.
//
// All experiments share one Suite: a single four-year service run whose
// records, snapshots and state feed every artifact, exactly like the
// paper's data pipeline.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"hitlist6/internal/core"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// Params sizes a suite run.
type Params struct {
	Seed uint64
	// Scale is the world scale (paper magnitudes × Scale).
	Scale float64
	// TailASes is the synthetic AS tail size.
	TailASes int
	// ScanStride runs every N-th scheduled scan (1 = full schedule);
	// larger strides trade fidelity for speed in tests and benchmarks.
	ScanStride int
}

// DefaultParams is the full reproduction configuration.
func DefaultParams(seed uint64) Params {
	return Params{Seed: seed, Scale: 1.0 / 500, TailASes: 240, ScanStride: 1}
}

// QuickParams is a reduced configuration for tests and benchmarks.
func QuickParams(seed uint64) Params {
	return Params{Seed: seed, Scale: 1.0 / 10000, TailASes: 48, ScanStride: 4}
}

// Suite lazily runs the service once and derives every artifact from it.
type Suite struct {
	P Params

	once sync.Once
	err  error

	World *worldgen.World
	Svc   *core.Service

	// SnapDec2021 is the extra snapshot used as the TGA seed set.
	SnapDec2021 int

	nsOnce sync.Once
	nsErr  error
	nsRes  *NewSourcesResult
}

// NewSuite builds a lazy suite.
func NewSuite(p Params) *Suite {
	if p.ScanStride <= 0 {
		p.ScanStride = 1
	}
	return &Suite{P: p, SnapDec2021: netmodel.DayOf(2021, 12, 1)}
}

// Run generates the world and executes the full service timeline.
func (s *Suite) Run(ctx context.Context) error {
	s.once.Do(func() { s.err = s.run(ctx) })
	return s.err
}

func (s *Suite) run(ctx context.Context) error {
	wp := worldgen.Params{
		Seed:             s.P.Seed,
		Scale:            s.P.Scale,
		TailASes:         s.P.TailASes,
		ScanIntervalDays: 7,
	}
	w, err := worldgen.Generate(wp)
	if err != nil {
		return fmt.Errorf("experiments: generating world: %w", err)
	}
	s.World = w

	tracer := yarrp.New(w.Net, yarrp.Config{Seed: s.P.Seed})
	feeds := w.BuildFeeds(tracer)

	cfg := core.DefaultConfig(s.P.Seed)
	cfg.GFWFilterFromDay = worldgen.GFWFilterDeployDay
	cfg.RetainUnresponsive = true
	cfg.SnapshotDays = append(w.SnapshotDays(), s.SnapDec2021)
	sort.Ints(cfg.SnapshotDays)
	s.Svc = core.NewService(cfg, w.Net, feeds, w.Blocklist)

	for i := 0; i < len(w.ScanDays); i += s.P.ScanStride {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := s.Svc.RunScan(ctx, w.ScanDays[i]); err != nil {
			return fmt.Errorf("experiments: scan %d: %w", i, err)
		}
	}
	// Always finish on the evaluation end day.
	if last := w.ScanDays[len(w.ScanDays)-1]; s.lastScanDay() != last {
		if _, err := s.Svc.RunScan(ctx, last); err != nil {
			return fmt.Errorf("experiments: final scan: %w", err)
		}
	}
	return nil
}

func (s *Suite) lastScanDay() int {
	recs := s.Svc.Records()
	if len(recs) == 0 {
		return -1
	}
	return recs[len(recs)-1].Day
}

// snapshotFor returns the snapshot captured for a requested day.
func (s *Suite) snapshotFor(day int) (*core.Snapshot, error) {
	snap, ok := s.Svc.Snapshots()[day]
	if !ok {
		return nil, fmt.Errorf("experiments: no snapshot for day %d (%s)", day, netmodel.DateString(day))
	}
	return snap, nil
}

// aliasedExclTrafficforce returns the final aliased prefixes without the
// Trafficforce event, as several analyses require.
func (s *Suite) aliasedExclTrafficforce() []ip6.Prefix {
	var out []ip6.Prefix
	tf := s.World.Net.AS.ByASN(worldgen.ASNTrafficforce)
	for _, p := range s.Svc.AliasedPrefixes().Prefixes() {
		if as := s.World.Net.AS.Lookup(p.Addr()); as != nil && tf != nil && as.ASN == tf.ASN {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Runner is one experiment.
type Runner struct {
	Name  string
	About string
	Run   func(ctx context.Context, s *Suite, w io.Writer) error
}

// All lists every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"fig1", "pipeline funnel", Figure1},
		{"fig2", "input distribution across ASes (CDF)", Figure2},
		{"fig3", "responsive addresses over time, published vs cleaned", Figure3},
		{"fig4", "churn per scan", Figure4},
		{"fig5", "aliased prefix length CDF per year", Figure5},
		{"fig6", "aliased address share per AS (heatmap)", Figure6},
		{"fig7", "overlap between new sources", Figure7},
		{"fig8", "AS distribution of new-source responsive addresses", Figure8},
		{"fig9", "AS distribution per protocol", Figure9},
		{"fig10", "protocol overlap", Figure10},
		{"table1", "responsive addresses and ASes per year", Table1},
		{"table2", "responsiveness of aliased prefixes", Table2},
		{"table3", "new input sources", Table3},
		{"table4", "responsive addresses per new source", Table4},
		{"table5", "top ASes impacted by the GFW", Table5},
		{"dnseval", "behaviour of remaining DNS responders (Sec. 4.2)", DNSEval},
		{"fingerprints", "TCP fingerprints and Too Big Trick (Sec. 5.1)", Fingerprints},
		{"domains", "domains hosted in aliased prefixes (Sec. 5.2)", Domains},
		{"eui64", "EUI-64 composition of the input (Sec. 4.1)", EUI64},
		{"ablations", "design-choice ablations", Ablations},
		{"shardbal", "scan-engine shard balance (per-shard probes and probe time)", ShardBalance},
		{"serve", "hitlist-as-a-service: query consistency while the timeline advances", ServeWhileScanning},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}
