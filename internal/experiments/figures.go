package experiments

import (
	"context"
	"fmt"
	"io"

	"hitlist6/internal/analysis"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/worldgen"
)

// Figure1 prints the pipeline funnel (cumulative input through every
// filter down to responsive addresses).
func Figure1(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	f := s.Svc.Funnel()
	tb := analysis.NewTable("stage", "addresses", "removed")
	tb.Row("cumulative input", analysis.Humanize(f.Input), "")
	tb.Row("after blocklist filter", analysis.Humanize(f.Input-f.Blocked), "-"+analysis.Humanize(f.Blocked))
	tb.Row("after GFW filter", analysis.Humanize(f.Input-f.Blocked-f.GFWFiltered), "-"+analysis.Humanize(f.GFWFiltered))
	tb.Row("after aliased prefix filter", analysis.Humanize(f.Input-f.Blocked-f.GFWFiltered-f.AliasedInput), "-"+analysis.Humanize(f.AliasedInput))
	tb.Row("after 30-day filter (scanned)", analysis.Humanize(f.ActiveScan), "-"+analysis.Humanize(f.Evicted))
	tb.Row("responsive addresses", analysis.Humanize(f.Responsive), "")
	fmt.Fprintf(w, "Figure 1 — IPv6 Hitlist pipeline funnel (scale %.5f)\n\n%s", s.P.Scale, tb)
	return nil
}

// Figure2 prints the CDFs of input addresses across ASes: complete input,
// non-aliased, GFW-impacted, and responsive.
func Figure2(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	type series struct {
		name   string
		counts []analysis.ASCount
	}
	var complete, nonAliased, gfwSeries []analysis.ASCount
	for asn, ai := range s.Svc.PerASInput() {
		name := fmt.Sprintf("AS%d", asn)
		if as := s.World.Net.AS.ByASN(asn); as != nil {
			name = as.Name
		}
		complete = append(complete, analysis.ASCount{ASN: asn, Name: name, Count: ai.Total})
		if na := ai.Total - ai.Aliased; na > 0 {
			nonAliased = append(nonAliased, analysis.ASCount{ASN: asn, Name: name, Count: na})
		}
		if ai.GFW > 0 {
			gfwSeries = append(gfwSeries, analysis.ASCount{ASN: asn, Name: name, Count: ai.GFW})
		}
	}
	sortASCounts(complete)
	sortASCounts(nonAliased)
	sortASCounts(gfwSeries)

	snap, err := s.snapshotFor(netmodel.Day2022)
	if err != nil {
		return err
	}
	responsive := analysis.ByAS(snap.ResponsiveAny, s.World.Net.AS)

	fmt.Fprintf(w, "Figure 2 — input distribution across ASes\n\n")
	for _, sr := range []series{
		{"complete input", complete},
		{"non-aliased", nonAliased},
		{"gfw", gfwSeries},
		{"responsive", responsive},
	} {
		cdf := analysis.RankCDF(sr.counts)
		top := "n/a"
		if len(sr.counts) > 0 {
			top = fmt.Sprintf("%s (%s)", sr.counts[0].Name, analysis.Pct(sr.counts[0].Count, cdf.Total))
		}
		fmt.Fprintf(w, "%-16s total=%-9s ASes=%-6d top=%s\n", sr.name, analysis.Humanize(cdf.Total), len(sr.counts), top)
		fmt.Fprintf(w, "%-16s", "")
		for _, pt := range cdf.SeriesPoints() {
			fmt.Fprintf(w, " top%-5d=%5.1f%%", pt.Rank, 100*pt.Frac)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n80%% of complete input covered by top %d ASes; 50%% of responsive by top %d ASes\n",
		analysis.RankCDF(complete).RanksFor(0.8), analysis.RankCDF(responsive).RanksFor(0.5))
	return nil
}

func sortASCounts(cs []analysis.ASCount) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Count > cs[j-1].Count; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// Figure3 prints the per-scan responsive series, published vs cleaned.
func Figure3(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 3 — responsive addresses over time (published | cleaned)\n\n")
	tb := analysis.NewTable("date", "total", "ICMP", "TCP/80", "TCP/443", "UDP/53", "UDP/443", "total*", "UDP/53*")
	for _, rec := range s.Svc.Records() {
		tb.Row(netmodel.DateString(rec.Day),
			rec.TotalRaw,
			rec.ResponsiveRaw[netmodel.ICMP],
			rec.ResponsiveRaw[netmodel.TCP80],
			rec.ResponsiveRaw[netmodel.TCP443],
			rec.ResponsiveRaw[netmodel.UDP53],
			rec.ResponsiveRaw[netmodel.UDP443],
			rec.TotalClean,
			rec.ResponsiveClean[netmodel.UDP53],
		)
	}
	fmt.Fprint(w, tb)

	// The headline: the DNS spike exists only in the published view.
	peakRaw, peakClean := 0, 0
	for _, rec := range s.Svc.Records() {
		if rec.ResponsiveRaw[netmodel.UDP53] > peakRaw {
			peakRaw = rec.ResponsiveRaw[netmodel.UDP53]
		}
		if rec.ResponsiveClean[netmodel.UDP53] > peakClean {
			peakClean = rec.ResponsiveClean[netmodel.UDP53]
		}
	}
	fmt.Fprintf(w, "\npeak UDP/53 published=%s cleaned=%s (paper: >100 M vs ~148 k)\n",
		analysis.Humanize(peakRaw), analysis.Humanize(peakClean))
	return nil
}

// Figure4 prints the churn series.
func Figure4(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4 — churn between consecutive scans (cleaned view)\n\n")
	tb := analysis.NewTable("date", "first-resp", "resp-again", "unresp")
	for _, rec := range s.Svc.Records() {
		tb.Row(netmodel.DateString(rec.Day), rec.FirstResp, rec.RespAgain, rec.Unresp)
	}
	fmt.Fprint(w, tb)
	return nil
}

// Figure5 prints the aliased-prefix length CDF per year (2022 excluding
// Trafficforce, as in the paper's plot).
func Figure5(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5 — aliased prefix length distribution per year\n\n")
	tb := analysis.NewTable("year", "prefixes", "/32-", "/48", "/64", "longer", "share /64")
	years := []struct {
		label string
		day   int
	}{
		{"2018", netmodel.Day2018}, {"2019", netmodel.Day2019}, {"2020", netmodel.Day2020},
		{"2021", netmodel.Day2021},
	}
	rowFor := func(label string, prefixes []ip6.Prefix) {
		var le32, p48, p64, longer int
		for _, p := range prefixes {
			switch {
			case p.Bits() <= 32:
				le32++
			case p.Bits() <= 48:
				p48++
			case p.Bits() <= 64:
				p64++
			default:
				longer++
			}
		}
		cdf := analysis.PrefixLenCDF(prefixes)
		share := "n/a"
		if len(prefixes) > 0 {
			share = fmt.Sprintf("%.1f %%", 100*(cdf[64]-cdf[63]))
		}
		tb.Row(label, len(prefixes), le32, p48, p64, longer, share)
	}
	for _, y := range years {
		snap, err := s.snapshotFor(y.day)
		if err != nil {
			return err
		}
		rowFor(y.label, snap.Aliased)
	}
	rowFor("2022 (excl TF)", s.aliasedExclTrafficforce())
	rowFor("2022 (all)", s.Svc.AliasedPrefixes().Prefixes())
	fmt.Fprint(w, tb)
	fmt.Fprintf(w, "\npaper: >90 %% of aliased prefixes are /64; Trafficforce adds 66.4 k /64s in Feb 2022\n")
	return nil
}

// Figure6 prints, per AS with aliased space, the total aliased address
// volume (as a power of two) and its share of the announced space.
func Figure6(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	type asAgg struct {
		aliased   float64 // addresses (may exceed float precision: fine for log2 buckets)
		announced float64
	}
	agg := make(map[int]*asAgg)
	for _, p := range s.Svc.AliasedPrefixes().Prefixes() {
		as := s.World.Net.AS.Lookup(p.Addr())
		if as == nil {
			continue
		}
		a := agg[as.ASN]
		if a == nil {
			a = &asAgg{}
			agg[as.ASN] = a
			for _, ap := range as.Announced {
				a.announced += pow2(ap.NumAddressesLog2())
			}
		}
		a.aliased += pow2(p.NumAddressesLog2())
	}
	fmt.Fprintf(w, "Figure 6 — aliased address space per AS vs announced space\n\n")
	tb := analysis.NewTable("AS", "log2(aliased)", "share of announced")
	var asns []int
	for asn := range agg {
		asns = append(asns, asn)
	}
	sortInts(asns)
	full, over50, over90 := 0, 0, 0
	for _, asn := range asns {
		a := agg[asn]
		share := a.aliased / a.announced
		if share > 0.5 {
			over50++
		}
		if share > 0.9 {
			over90++
		}
		if share > 0.99 {
			full++
		}
		name := fmt.Sprintf("AS%d", asn)
		if as := s.World.Net.AS.ByASN(asn); as != nil {
			name = as.Name
		}
		tb.Row(name, fmt.Sprintf("%.0f", log2(a.aliased)), fmt.Sprintf("%.2f %%", 100*share))
	}
	fmt.Fprint(w, tb)
	fmt.Fprintf(w, "\nASes with aliased space: %d; >50 %% aliased: %d; >90 %%: %d; ~100 %%: %d (paper: 80 / 61)\n",
		len(agg), over50, over90, full)
	return nil
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

func log2(x float64) float64 {
	n := 0.0
	for x >= 2 {
		x /= 2
		n++
	}
	return n
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Figure7 prints the overlap matrix between new-source responsive sets.
// The matrix is computed from the frozen sorted-shard sets by per-shard
// merge walks (analysis.OverlapSorted) — no flat set copies, no hashing.
func Figure7(ctx context.Context, s *Suite, w io.Writer) error {
	res, err := s.NewSources(ctx)
	if err != nil {
		return err
	}
	names := make([]string, len(res.Sources))
	sets := make([]*ip6.SortedShardSet, len(res.Sources))
	for i, src := range res.Sources {
		names[i] = src.Name
		sets[i] = src.AnySorted
	}
	m := analysis.OverlapSorted(names, sets)
	fmt.Fprintf(w, "Figure 7 — overlap between responsive addresses from new sources (%% of row)\n\n")
	printMatrix(w, names, m)
	return nil
}

// Figure8 prints AS-distribution CDFs for each new source.
func Figure8(ctx context.Context, s *Suite, w io.Writer) error {
	res, err := s.NewSources(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8 — AS distribution of responsive addresses per new source\n\n")
	for _, src := range res.Sources {
		counts := analysis.ByAS(src.Any, s.World.Net.AS)
		cdf := analysis.RankCDF(counts)
		top := "n/a"
		if len(counts) > 0 {
			top = fmt.Sprintf("%s %.1f%%", counts[0].Name, 100*cdf.At(1))
		}
		fmt.Fprintf(w, "%-14s responsive=%-8s ASes=%-5d top=%-24s top10=%5.1f%%\n",
			src.Name, analysis.Humanize(src.Any.Len()), len(counts), top, 100*cdf.At(10))
	}
	return nil
}

// Figure9 prints AS-distribution CDFs per protocol for the final hitlist.
func Figure9(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	snap, err := s.snapshotFor(netmodel.Day2022)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 9 — AS distribution of responsive addresses per protocol (%s)\n\n",
		worldgen.DateLabel(netmodel.Day2022))
	for _, p := range netmodel.Protocols {
		counts := analysis.ByAS(snap.Responsive[p], s.World.Net.AS)
		cdf := analysis.RankCDF(counts)
		fmt.Fprintf(w, "%-8s addrs=%-8s ASes=%-5d top1=%5.1f%% top10=%5.1f%% top100=%5.1f%%\n",
			p, analysis.Humanize(cdf.Total), len(counts), 100*cdf.At(1), 100*cdf.At(10), 100*cdf.At(100))
	}
	return nil
}

// Figure10 prints the protocol overlap matrix of the final hitlist.
func Figure10(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	snap, err := s.snapshotFor(netmodel.Day2022)
	if err != nil {
		return err
	}
	names := make([]string, 0, netmodel.NumProtocols)
	sets := make([]ip6.Set, 0, netmodel.NumProtocols)
	for _, p := range netmodel.Protocols {
		names = append(names, p.String())
		sets = append(sets, snap.Responsive[p])
	}
	m := analysis.Overlap(names, sets)
	fmt.Fprintf(w, "Figure 10 — protocol overlap (%% of row protocol's addresses)\n\n")
	printMatrix(w, names, m)
	fmt.Fprintf(w, "\npaper: TCP/UDP responders are almost all ICMP-responsive (>91 %%)\n")
	return nil
}

func printMatrix(w io.Writer, names []string, m [][]float64) {
	fmt.Fprintf(w, "%-14s", "")
	for _, n := range names {
		fmt.Fprintf(w, "%10s", n)
	}
	fmt.Fprintln(w)
	for i, row := range m {
		fmt.Fprintf(w, "%-14s", names[i])
		for j, v := range row {
			if i == j {
				fmt.Fprintf(w, "%10s", "-")
			} else {
				fmt.Fprintf(w, "%10.2f", v)
			}
		}
		fmt.Fprintln(w)
	}
}
