package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"hitlist6/internal/analysis"
	"hitlist6/internal/gfw"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/tga"
	"hitlist6/internal/tga/dc"
	"hitlist6/internal/tga/sixgan"
	"hitlist6/internal/tga/sixgraph"
	"hitlist6/internal/tga/sixtree"
	"hitlist6/internal/tga/sixveclm"
	"hitlist6/internal/worldgen"
)

// Table1 prints responsive addresses and covered ASes per protocol per
// snapshot year, plus the cumulative row.
func Table1(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 1 — responsive addresses and ASes over four years (cleaned)\n\n")
	tb := analysis.NewTable("snapshot", "ICMP", "ASes", "TCP/443", "ASes", "TCP/80", "ASes", "UDP/443", "ASes", "UDP/53", "ASes", "Total", "ASes")
	days := []int{netmodel.Day2018, netmodel.Day2019, netmodel.Day2020, netmodel.Day2021, netmodel.Day2022}
	for _, day := range days {
		snap, err := s.snapshotFor(day)
		if err != nil {
			return err
		}
		row := []interface{}{netmodel.DateString(day)}
		for _, p := range []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53} {
			set := snap.Responsive[p]
			row = append(row, analysis.Humanize(set.Len()), len(analysis.ByAS(set, s.World.Net.AS)))
		}
		row = append(row, analysis.Humanize(snap.ResponsiveAny.Len()),
			len(analysis.ByAS(snap.ResponsiveAny, s.World.Net.AS)))
		tb.Row(row...)
	}
	// Cumulative.
	row := []interface{}{"Cumulative"}
	for _, p := range []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53} {
		row = append(row, analysis.Humanize(s.Svc.EverResponsiveLen(p)), "")
	}
	row = append(row, analysis.Humanize(s.Svc.EverResponsiveAnyLen()), "")
	tb.Row(row...)
	fmt.Fprint(w, tb)
	return nil
}

// Table2 probes one random address per aliased prefix (Trafficforce
// excluded) on every protocol.
func Table2(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	prefixes := s.aliasedExclTrafficforce()
	day := worldgen.EndDay
	r := rng.NewStream(s.P.Seed, "table2")
	targets := make([]ip6.Addr, len(prefixes))
	for i, p := range prefixes {
		targets[i] = p.RandomAddr(r)
	}
	sets, _, err := s.Svc.Scanner().ResponsiveSet(ctx, targets, allProtocols(), day)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2 — responsiveness of aliased prefixes (one random address each, %d prefixes)\n\n", len(prefixes))
	tb := analysis.NewTable("protocol", "prefixes", "ASes")
	for _, p := range allProtocols() {
		respPrefixes := ip6.NewSet(0)
		ases := map[int]bool{}
		for i, t := range targets {
			if sets[p].Has(t) {
				respPrefixes.Add(prefixes[i].Addr())
				if as := s.World.Net.AS.Lookup(t); as != nil {
					ases[as.ASN] = true
				}
			}
		}
		tb.Row(p.String(), respPrefixes.Len(), len(ases))
	}
	fmt.Fprint(w, tb)
	fmt.Fprintf(w, "\npaper: ICMP 39.0 k / TCP 32 k / UDP-443 28.8 k / UDP-53 172 of 42.8 k prefixes\n")
	return nil
}

func allProtocols() []netmodel.Protocol {
	return []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}
}

// SourceEval is one evaluated candidate source.
type SourceEval struct {
	Name string
	// Candidates is the raw candidate volume; New excludes addresses the
	// service already knew; NonAliased excludes aliased/blocked ones.
	Candidates int
	New        int
	NonAliased int
	// CandidateASes counts ASes covered by the candidates.
	CandidateASes int
	// Responsive per protocol plus the union.
	Responsive map[netmodel.Protocol]ip6.Set
	Any        ip6.Set
	// AnySorted is the frozen sorted-shard form of Any; the overlap
	// matrix (Figure 7) is computed from it by per-shard merge walks.
	AnySorted *ip6.SortedShardSet
	// GFWFiltered counts injection-classified DNS results removed.
	GFWFiltered int
}

// NewSourcesResult aggregates the Section 6 evaluation.
type NewSourcesResult struct {
	Sources []SourceEval
	// Union of all new-source responsive addresses.
	UnionAny ip6.Set
	// Hitlist is the final service snapshot for comparison.
	Hitlist *core2
}

type core2 struct {
	Responsive map[netmodel.Protocol]ip6.Set
	Any        ip6.Set
}

// NewSources runs the Section 6 evaluation once per suite: generate
// candidates from each source, filter, scan them twice across two weeks,
// aggregate, and remove GFW-injected responses.
func (s *Suite) NewSources(ctx context.Context) (*NewSourcesResult, error) {
	if err := s.Run(ctx); err != nil {
		return nil, err
	}
	s.nsOnce.Do(func() { s.nsRes, s.nsErr = s.newSources(ctx) })
	return s.nsRes, s.nsErr
}

func (s *Suite) newSources(ctx context.Context) (*NewSourcesResult, error) {
	snap, err := s.snapshotFor(s.SnapDec2021)
	if err != nil {
		return nil, err
	}
	seeds := snap.ResponsiveAny.Sorted()
	sc := func(x float64) int {
		n := int(x * s.P.Scale)
		if n < 1 {
			n = 1
		}
		return n
	}

	type rawSource struct {
		name   string
		addrs  []ip6.Addr
		rescan bool // scanned only once (the unresponsive pool)
	}
	var raws []rawSource

	// Passive sources: NS/MX infrastructure, CAIDA Ark, DET.
	passive := s.World.PassiveNSMX.Clone()
	passive.AddSlice(s.World.ArkAddrs)
	passive.AddSlice(s.World.DETAddrs)
	raws = append(raws, rawSource{name: "Passive", addrs: passive.Sorted()})

	// The 30-day-unresponsive pool, cleaned from GFW-injection addresses —
	// filtered in one pass against the tracker's sharded evidence instead
	// of materializing the merged injection set and a diff copy.
	unresp := s.Svc.UnresponsivePool()
	tracker := s.Svc.Tracker()
	pool := make([]ip6.Addr, 0, unresp.Len())
	for a := range unresp {
		if !tracker.InjectedSeenHas(a) {
			pool = append(pool, a)
		}
	}
	ip6.SortAddrs(pool)
	raws = append(raws, rawSource{name: "Unresponsive", addrs: pool, rescan: true})

	// Target generation on the December 2021 responsive seeds.
	gens := []struct {
		g      tga.Generator
		budget int
	}{
		{sixgraph.New(sixgraph.DefaultConfig()), sc(125.8e6)},
		{sixtree.New(sixtree.DefaultConfig()), sc(37.6e6)},
		{sixgan.New(sixgan.DefaultConfig()), sc(3.3e6)},
		{sixveclm.New(sixveclm.DefaultConfig()), sc(70.3e3)},
		{dc.New(dc.DefaultConfig()), sc(5.3e6)},
	}
	for _, g := range gens {
		raws = append(raws, rawSource{name: g.g.Name(), addrs: g.g.Generate(seeds, g.budget)})
	}

	res := &NewSourcesResult{UnionAny: ip6.NewSet(0)}
	scanner := s.Svc.Scanner()
	aliased := s.Svc.AliasedPrefixes()

	for _, raw := range raws {
		ev := SourceEval{
			Name:       raw.name,
			Candidates: len(raw.addrs),
			Responsive: make(map[netmodel.Protocol]ip6.Set, netmodel.NumProtocols),
		}
		candASes := map[int]bool{}
		var targets []ip6.Addr
		for _, a := range raw.addrs {
			if !a.IsGlobalUnicast() {
				continue
			}
			if as := s.World.Net.AS.Lookup(a); as != nil {
				candASes[as.ASN] = true
			}
			if raw.name != "Unresponsive" {
				if s.Svc.InputSeenHas(a) {
					continue
				}
				ev.New++
			} else {
				ev.New++
			}
			if aliased.Contains(a) || s.World.Blocklist.Contains(a) {
				continue
			}
			ev.NonAliased++
			targets = append(targets, a)
		}
		ev.CandidateASes = len(candASes)

		// Scan; aggregate two rounds a week apart (the pool only once).
		// Results stream straight into sharded accumulators — the old
		// path materialized the full targets × protocols result slice
		// per round, which dominated the evaluation's footprint.
		days := []int{worldgen.EndDay, worldgen.EndDay + 7}
		if raw.rescan {
			days = days[:1]
		}
		var respSh [netmodel.NumProtocols]*ip6.ShardedSet
		for _, p := range allProtocols() {
			respSh[p] = ip6.NewShardedSet()
		}
		anySh := ip6.NewShardedSet()
		var filtered [ip6.AddrShards]int
		for _, day := range days {
			_, err := scanner.StreamFrom(ctx, scan.SliceSource(targets), allProtocols(), day, func(b *scan.Batch) error {
				for i := range b.Results {
					r := &b.Results[i]
					if !r.Success {
						continue
					}
					if r.Proto == netmodel.UDP53 && gfw.ClassifyResult(*r).Injected() {
						filtered[b.Shard]++
						continue
					}
					respSh[r.Proto].AddToShard(b.Shard, r.Target)
					anySh.AddToShard(b.Shard, r.Target)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("scanning source %s: %w", raw.name, err)
			}
		}
		for _, c := range filtered {
			ev.GFWFiltered += c
		}
		for _, p := range allProtocols() {
			ev.Responsive[p] = respSh[p].Merge()
		}
		ev.Any = anySh.Merge()
		ev.AnySorted = ip6.FreezeSorted(anySh)
		res.UnionAny.AddAll(ev.Any)
		res.Sources = append(res.Sources, ev)
	}

	// Sort by responsive volume, as Table 4 does.
	sort.SliceStable(res.Sources, func(i, j int) bool {
		return res.Sources[i].Any.Len() > res.Sources[j].Any.Len()
	})

	finalSnap, err := s.snapshotFor(netmodel.Day2022)
	if err != nil {
		return nil, err
	}
	res.Hitlist = &core2{Responsive: finalSnap.Responsive, Any: finalSnap.ResponsiveAny}
	return res, nil
}

// Table3 prints the new candidate sources with AS coverage.
func Table3(ctx context.Context, s *Suite, w io.Writer) error {
	res, err := s.NewSources(ctx)
	if err != nil {
		return err
	}
	total := s.World.Net.AS.NumASes()
	fmt.Fprintf(w, "Table 3 — new input sources (announcing ASes: %d)\n\n", total)
	tb := analysis.NewTable("source", "candidates", "new", "non-aliased", "ASes", "% of ASes")
	for _, src := range res.Sources {
		tb.Row(src.Name, analysis.Humanize(src.Candidates), analysis.Humanize(src.New),
			analysis.Humanize(src.NonAliased), src.CandidateASes, analysis.Pct(src.CandidateASes, total))
	}
	fmt.Fprint(w, tb)
	return nil
}

// Table4 prints responsive addresses per source and protocol, with the
// top-AS bias, the current hitlist, and the combined total.
func Table4(ctx context.Context, s *Suite, w io.Writer) error {
	res, err := s.NewSources(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 4 — responsive addresses for new sources by protocol\n\n")
	tb := analysis.NewTable("source", "ICMP", "TCP/443", "TCP/80", "UDP/443", "UDP/53", "Total", "Top-1 AS", "Top-2 AS", "ASes")

	row := func(name string, perProto map[netmodel.Protocol]ip6.Set, any ip6.Set) {
		counts := analysis.ByAS(any, s.World.Net.AS)
		top1, top2 := "-", "-"
		if len(counts) > 0 {
			top1 = fmt.Sprintf("%s %s", counts[0].Name, analysis.Pct(counts[0].Count, any.Len()))
		}
		if len(counts) > 1 {
			top2 = fmt.Sprintf("%s %s", counts[1].Name, analysis.Pct(counts[1].Count, any.Len()))
		}
		tb.Row(name,
			analysis.Humanize(perProto[netmodel.ICMP].Len()),
			analysis.Humanize(perProto[netmodel.TCP443].Len()),
			analysis.Humanize(perProto[netmodel.TCP80].Len()),
			analysis.Humanize(perProto[netmodel.UDP443].Len()),
			analysis.Humanize(perProto[netmodel.UDP53].Len()),
			analysis.Humanize(any.Len()), top1, top2, len(counts))
	}

	unionProto := make(map[netmodel.Protocol]ip6.Set)
	totalProto := make(map[netmodel.Protocol]ip6.Set)
	for _, p := range allProtocols() {
		unionProto[p] = ip6.NewSet(0)
		totalProto[p] = ip6.NewSet(0)
	}
	for _, src := range res.Sources {
		row(src.Name, src.Responsive, src.Any)
		for _, p := range allProtocols() {
			unionProto[p].AddAll(src.Responsive[p])
			totalProto[p].AddAll(src.Responsive[p])
		}
	}
	row("New Sources", unionProto, res.UnionAny)
	row("IPv6 Hitlist", res.Hitlist.Responsive, res.Hitlist.Any)
	totalAny := res.UnionAny.Union(res.Hitlist.Any)
	for _, p := range allProtocols() {
		totalProto[p].AddAll(res.Hitlist.Responsive[p])
	}
	row("Total", totalProto, totalAny)
	fmt.Fprint(w, tb)

	gain := 0.0
	if res.Hitlist.Any.Len() > 0 {
		gain = 100 * float64(res.UnionAny.Diff(res.Hitlist.Any).Len()) / float64(res.Hitlist.Any.Len())
	}
	fmt.Fprintf(w, "\nnew responsive addresses: +%.0f %% over the hitlist (paper: +174 %%)\n", gain)
	return nil
}

// Table5 prints the top ASes of GFW-impacted addresses.
func Table5(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	impacted := s.Svc.Tracker().InjectedOnly()
	counts := analysis.ByAS(impacted, s.World.Net.AS)
	fmt.Fprintf(w, "Table 5 — top 10 ASes impacted by the GFW (total %s addresses)\n\n",
		analysis.Humanize(impacted.Len()))
	tb := analysis.NewTable("AS", "addresses", "%", "CDF")
	cum := 0
	for i, c := range counts {
		if i >= 10 {
			break
		}
		cum += c.Count
		tb.Row(fmt.Sprintf("AS%d (%s)", c.ASN, c.Name), analysis.Humanize(c.Count),
			analysis.Pct(c.Count, impacted.Len()), analysis.Pct(cum, impacted.Len()))
	}
	fmt.Fprint(w, tb)
	fmt.Fprintf(w, "\npaper: AS4134 46.4 %%, AS4812 14.6 %%, top-10 CDF 93.9 %%\n")
	return nil
}
