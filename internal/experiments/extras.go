package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"hitlist6/internal/analysis"
	"hitlist6/internal/apd"
	"hitlist6/internal/core"
	"hitlist6/internal/dnsdb"
	"hitlist6/internal/dnswire"
	"hitlist6/internal/fingerprint"
	"hitlist6/internal/gfw"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/serve"
	"hitlist6/internal/tga/dc"
	"hitlist6/internal/worldgen"
	"hitlist6/internal/yarrp"
)

// DNSEval reproduces the Section 4.2 experiment: probe every remaining
// DNS responder with a unique-hash subdomain of our own zone and classify
// the behaviour using the responses and our authoritative server's log.
func DNSEval(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	snap, err := s.snapshotFor(netmodel.Day2022)
	if err != nil {
		return err
	}
	targets := snap.Responsive[netmodel.UDP53].Sorted()
	zone := s.World.Net.OurZone
	qnameFor := func(a ip6.Addr) string {
		return fmt.Sprintf("h%016x.%s", rng.Mix(a.Hi(), a.Lo(), 0xd25), zone)
	}
	cfg := scan.DefaultConfig(s.P.Seed + 1)
	cfg.LossRate = 0
	cfg.QNameFor = qnameFor
	probe := scan.New(s.World.Net, cfg)

	s.World.Net.NSLogSnapshot() // clear any earlier entries
	results, _, err := probe.Scan(ctx, targets, []netmodel.Protocol{netmodel.UDP53}, worldgen.EndDay)
	if err != nil {
		return err
	}
	nslog := make(map[string]ip6.Addr)
	for _, q := range s.World.Net.NSLogSnapshot() {
		nslog[q.QName] = q.Source
	}

	var refusing, open, referral, proxy, broken, silent int
	for _, r := range results {
		if !r.Success || len(r.DNS) == 0 {
			silent++
			continue
		}
		m, err := dnswire.Decode(r.DNS[0])
		if err != nil {
			broken++
			continue
		}
		qname := dnswire.NormalizeName(qnameFor(r.Target))
		switch {
		case m.Header.RCode == dnswire.RCodeRefused || m.Header.RCode == dnswire.RCodeServFail || m.Header.RCode == dnswire.RCodeNXDomain:
			refusing++
		case m.Header.RCode == dnswire.RCodeNoError && len(m.Answers) > 0 && m.Answers[0].Type == dnswire.TypeAAAA && m.Answers[0].Target != "localhost":
			if src, ok := nslog[qname]; ok && src == r.Target {
				open++
			} else if ok {
				proxy++
			} else {
				broken++
			}
		case len(m.Authority) > 0 && m.Authority[0].Type == dnswire.TypeNS:
			referral++
		default:
			broken++
		}
	}
	total := len(targets)
	fmt.Fprintf(w, "Section 4.2 — behaviour of %d remaining DNS responders (unique-subdomain probe)\n\n", total)
	tb := analysis.NewTable("class", "targets", "share")
	tb.Row("error status (refusing)", refusing, analysis.Pct(refusing, total))
	tb.Row("open resolver (query seen at our NS)", open, analysis.Pct(open, total))
	tb.Row("referral to root/parent", referral, analysis.Pct(referral, total))
	tb.Row("proxy (NS query from other address)", proxy, analysis.Pct(proxy, total))
	tb.Row("incorrect/broken", broken, analysis.Pct(broken, total))
	tb.Row("no response", silent, analysis.Pct(silent, total))
	fmt.Fprint(w, tb)
	fmt.Fprintf(w, "\npaper: 93.8 %% refusing, 4.6 %% open resolvers, 593 referrals, 15 proxies, 1.1 %% broken\n")
	return nil
}

// Fingerprints reproduces Section 5.1: TCP fingerprints across aliased
// prefixes and the Too Big Trick outcome distribution.
func Fingerprints(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	prefixes := s.aliasedExclTrafficforce()
	const maxPrefixes = 600
	if len(prefixes) > maxPrefixes {
		prefixes = prefixes[:maxPrefixes]
	}

	var uniform, windowOnly, varied, noTCP int
	tbt := map[fingerprint.TBTOutcome]int{}
	for _, p := range prefixes {
		samples, err := fingerprint.CollectTCP(ctx, s.Svc.Scanner(), p, 12, worldgen.EndDay)
		if err != nil {
			return err
		}
		sum := fingerprint.Summarize(samples)
		switch {
		case sum.Samples == 0:
			noTCP++
		case sum.Uniform:
			uniform++
		case sum.WindowOnly:
			windowOnly++
		default:
			varied++
		}
		s.World.Net.ResetPMTU()
		res := fingerprint.TooBigTrick(s.World.Net, p, worldgen.EndDay)
		tbt[res.Outcome]++
	}

	fmt.Fprintf(w, "Section 5.1 — fingerprinting %d aliased prefixes\n\n", len(prefixes))
	tb := analysis.NewTable("measure", "prefixes", "share")
	withTCP := uniform + windowOnly + varied
	tb.Row("TCP fingerprint uniform", uniform, analysis.Pct(uniform, withTCP))
	tb.Row("differs only in window", windowOnly, analysis.Pct(windowOnly, withTCP))
	tb.Row("differs in other features", varied, analysis.Pct(varied, withTCP))
	tb.Row("no TCP response (ICMP-only)", noTCP, "")
	fmt.Fprint(w, tb)

	fmt.Fprintf(w, "\nToo Big Trick (8 addresses per prefix):\n")
	tb2 := analysis.NewTable("outcome", "prefixes", "share")
	applied := tbt[fingerprint.TBTAllShared] + tbt[fingerprint.TBTNoneShared] + tbt[fingerprint.TBTPartialShared]
	tb2.Row("all share one PMTU cache", tbt[fingerprint.TBTAllShared], analysis.Pct(tbt[fingerprint.TBTAllShared], applied))
	tb2.Row("partial sharing (2-7)", tbt[fingerprint.TBTPartialShared], analysis.Pct(tbt[fingerprint.TBTPartialShared], applied))
	tb2.Row("no sharing", tbt[fingerprint.TBTNoneShared], analysis.Pct(tbt[fingerprint.TBTNoneShared], applied))
	tb2.Row("unsupported", tbt[fingerprint.TBTUnsupported], "")
	fmt.Fprint(w, tb2)
	fmt.Fprintf(w, "\npaper: 99.5 %% uniform FPs; TBT 93.75 %% all-shared, 5.4 %% partial, 0.85 %% none\n")
	return nil
}

// Domains reproduces Section 5.2: how many domains resolve into aliased
// prefixes, and how many ranked domains are affected.
func Domains(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	aliased := s.Svc.AliasedPrefixes()
	reg := s.World.Registry

	inAliased := 0
	prefixDomains := make(map[ip6.Prefix]int)
	asSet := make(map[int]bool)
	var listHits [dnsdb.NumTopLists]int
	top1k := 0
	reg.Walk(func(d *dnsdb.Domain) bool {
		hit := false
		for _, a := range d.AAAA {
			if p, ok := aliased.Match(a); ok {
				hit = true
				prefixDomains[p]++
				if as := s.World.Net.AS.Lookup(a); as != nil {
					asSet[as.ASN] = true
				}
				break
			}
		}
		if hit {
			inAliased++
			for l := 0; l < dnsdb.NumTopLists; l++ {
				if d.Ranks[l] > 0 {
					listHits[l]++
					if l == int(dnsdb.Alexa) && d.Ranks[l] <= 1000 {
						top1k++
					}
				}
			}
		}
		return true
	})
	maxPrefix, maxCount := ip6.Prefix{}, 0
	for p, c := range prefixDomains {
		if c > maxCount {
			maxPrefix, maxCount = p, c
		}
	}

	fmt.Fprintf(w, "Section 5.2 — domains hosted in aliased prefixes\n\n")
	tb := analysis.NewTable("measure", "value")
	tb.Row("registered domains", analysis.Humanize(reg.NumDomains()))
	tb.Row("domains in aliased prefixes", analysis.Humanize(inAliased))
	tb.Row("distinct aliased prefixes hosting domains", len(prefixDomains))
	tb.Row("ASes announcing them", len(asSet))
	tb.Row("largest prefix", fmt.Sprintf("%v (%s domains)", maxPrefix, analysis.Humanize(maxCount)))
	tb.Row("Alexa-list domains affected", analysis.Humanize(listHits[dnsdb.Alexa]))
	tb.Row("Majestic-list domains affected", analysis.Humanize(listHits[dnsdb.Majestic]))
	tb.Row("Umbrella-list domains affected", analysis.Humanize(listHits[dnsdb.Umbrella]))
	tb.Row("Alexa top-1k affected", top1k)
	fmt.Fprint(w, tb)
	fmt.Fprintf(w, "\npaper: 15.0 M domains in 5.2 k prefixes across 133 ASes; 3.94 M in one /48\n")
	return nil
}

// EUI64 reproduces the Section 4.1 input-composition analysis.
func EUI64(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	st := analysis.EUI64Analysis(s.Svc.InputSeen())
	fmt.Fprintf(w, "Section 4.1 — EUI-64 composition of the cumulative input\n\n")
	tb := analysis.NewTable("measure", "value")
	tb.Row("input addresses", analysis.Humanize(st.Total))
	tb.Row("EUI-64 addresses", fmt.Sprintf("%s (%s)", analysis.Humanize(st.EUI64), analysis.Pct(st.EUI64, st.Total)))
	tb.Row("distinct MAC addresses", analysis.Humanize(st.DistinctMACs))
	tb.Row("MACs seen in exactly one address", analysis.Humanize(st.SingleUseMACs))
	tb.Row("most frequent MAC appears in", fmt.Sprintf("%s addresses", analysis.Humanize(st.TopMACAddrs)))
	tb.Row("its OUI", fmt.Sprintf("%02x:%02x:%02x", st.TopOUI[0], st.TopOUI[1], st.TopOUI[2]))
	fmt.Fprint(w, tb)
	fmt.Fprintf(w, "\npaper: 282 M EUI-64 input addresses from 22.7 M MACs; top value in 240 k addresses (ZTE OUI)\n")
	return nil
}

// Ablations quantifies the design choices the paper motivates.
func Ablations(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}

	// (a) APD cross-scan merge vs detection stability under loss.
	fmt.Fprintf(w, "Ablation A — APD merge window vs detection stability (25 %% probe loss)\n\n")
	var truth []ip6.Prefix
	for _, rule := range s.World.Net.AliasRules() {
		if rule.Prefix.Bits() == 64 && rule.BornDay == 0 {
			truth = append(truth, rule.Prefix)
			if len(truth) == 64 {
				break
			}
		}
	}
	lossy := scan.DefaultConfig(s.P.Seed + 7)
	lossy.LossRate = 0.25
	lossy.Retries = 0
	lossyScanner := scan.New(s.World.Net, lossy)
	tbA := analysis.NewTable("merge window", "detection rate")
	for _, window := range []int{0, 1, 3} {
		det := apd.NewDetector(lossyScanner, apd.Config{MergeScans: window})
		detected, rounds := 0, 0
		for day := worldgen.EndDay; day < worldgen.EndDay+8; day++ {
			res, err := det.Run(ctx, truth, day)
			if err != nil {
				return err
			}
			if day >= worldgen.EndDay+window {
				rounds += len(truth)
				res.Aliased.Walk(func(ip6.Prefix) bool { detected++; return true })
			}
		}
		tbA.Row(window, analysis.Pct(detected, rounds))
	}
	fmt.Fprint(w, tbA)

	// (b) APD long-prefix threshold vs candidate volume and recall.
	fmt.Fprintf(w, "\nAblation B — APD ≥N-address threshold for >/64 prefixes\n\n")
	var longInput []ip6.Addr
	r := rng.NewStream(s.P.Seed, "ablation-long")
	var longTruth []ip6.Prefix
	for _, rule := range s.World.Net.AliasRules() {
		if rule.Prefix.Bits() > 64 {
			longTruth = append(longTruth, rule.Prefix)
			// The service input saw a handful of addresses here.
			n := 3 + r.Intn(20)
			for i := 0; i < n; i++ {
				longInput = append(longInput, rule.Prefix.RandomAddr(r))
			}
		}
	}
	tbB := analysis.NewTable("threshold", "candidates", "long aliased detected", "recall")
	for _, threshold := range []int{100, 20, 5} {
		cfg := apd.DefaultConfig()
		cfg.MinAddrsLongPrefix = threshold
		cands := apd.Candidates(nil, longInput, cfg)
		det := apd.NewDetector(s.Svc.Scanner(), cfg)
		res, err := det.Run(ctx, cands, worldgen.EndDay)
		if err != nil {
			return err
		}
		found := 0
		for _, p := range longTruth {
			if res.Aliased.Has(p) {
				found++
			}
		}
		tbB.Row(threshold, len(cands), found, analysis.Pct(found, len(longTruth)))
	}
	fmt.Fprint(w, tbB)

	// (c) Distance clustering parameters.
	fmt.Fprintf(w, "\nAblation C — distance clustering parameters (seeds: Dec 2021 responsive)\n\n")
	snap, err := s.snapshotFor(s.SnapDec2021)
	if err != nil {
		return err
	}
	seeds := snap.ResponsiveAny.Sorted()
	tbC := analysis.NewTable("min size", "max gap", "candidates", "responsive", "hit rate")
	for _, cfgRow := range []dc.Config{
		{MinClusterSize: 10, MaxGap: 64, MaxFill: 4096},
		{MinClusterSize: 5, MaxGap: 64, MaxFill: 4096},
		{MinClusterSize: 10, MaxGap: 16, MaxFill: 4096},
		{MinClusterSize: 10, MaxGap: 256, MaxFill: 4096},
		{MinClusterSize: 20, MaxGap: 64, MaxFill: 4096},
	} {
		g := dc.New(cfgRow)
		cands := g.Generate(seeds, 200000)
		sets, _, err := s.Svc.Scanner().ResponsiveSet(ctx, cands, []netmodel.Protocol{netmodel.ICMP}, worldgen.EndDay)
		if err != nil {
			return err
		}
		hits := sets[netmodel.ICMP].Len()
		tbC.Row(cfgRow.MinClusterSize, cfgRow.MaxGap, len(cands), hits, analysis.Pct(hits, len(cands)))
	}
	fmt.Fprint(w, tbC)

	// (d) GFW filter placement: input-level vs post-scan.
	fmt.Fprintf(w, "\nAblation D — GFW filter placement\n\n")
	tracker := s.Svc.Tracker()
	injOnly := tracker.InjectedOnly().Len()
	injSeen := tracker.InjectedSeenLen()
	multi := injSeen - injOnly
	tbD := analysis.NewTable("strategy", "addresses removed", "real multi-protocol hosts lost")
	tbD.Row("naive input-level (drop on any injection)", analysis.Humanize(injSeen), analysis.Humanize(multi))
	tbD.Row("paper's post-scan filter", analysis.Humanize(injOnly), 0)
	fmt.Fprint(w, tbD)
	fmt.Fprintf(w, "\nthe post-scan filter keeps %s addresses that are responsive on other protocols\n",
		analysis.Humanize(multi))

	// (e) Injection detectability by era evidence.
	fmt.Fprintf(w, "\nAblation E — detector evidence breakdown on a live CN scan\n\n")
	var cnTargets []ip6.Addr
	for _, cn := range s.World.Net.AS.ByASN(4134).Announced {
		rr := rng.NewStream(s.P.Seed, "ablation-cn")
		for i := 0; i < 64; i++ {
			cnTargets = append(cnTargets, cn.RandomAddr(rr))
		}
	}
	results, _, err := s.Svc.Scanner().Scan(ctx, cnTargets, []netmodel.Protocol{netmodel.UDP53}, worldgen.EndDay)
	if err != nil {
		return err
	}
	var aOnly, teredo, multiResp, detected, truthInjected int
	for _, res := range results {
		if !res.Success {
			continue
		}
		c := gfw.ClassifyResult(res)
		if c.AForAAAA {
			aOnly++
		}
		if c.Teredo {
			teredo++
		}
		if c.MultiResponse {
			multiResp++
		}
		if c.Injected() {
			detected++
		}
		if res.InjectedTruth > 0 {
			truthInjected++
		}
	}
	tbE := analysis.NewTable("evidence", "responses")
	tbE.Row("A-for-AAAA", aOnly)
	tbE.Row("Teredo AAAA", teredo)
	tbE.Row("multiple responses", multiResp)
	tbE.Row("classified injected", detected)
	tbE.Row("ground-truth injected", truthInjected)
	fmt.Fprint(w, tbE)
	return nil
}

// ShardBalance renders the scan engine's per-shard throughput profile —
// the raw signal behind the adaptive dispatch order: cumulative probes
// and wall-clock nanos per canonical shard across every scan of the
// timeline, as min/median/max spreads plus the heaviest shards. Probes
// per shard are deterministic; nanos measure this machine and vary run
// to run.
func ShardBalance(ctx context.Context, s *Suite, w io.Writer) error {
	if err := s.Run(ctx); err != nil {
		return err
	}
	var probes, nanos [ip6.AddrShards]int64
	scans := 0
	for _, rec := range s.Svc.Records() {
		if len(rec.ShardStats) != ip6.AddrShards {
			continue
		}
		scans++
		for sh, st := range rec.ShardStats {
			probes[sh] += int64(st.ProbesSent)
			nanos[sh] += st.Nanos
		}
	}
	if scans == 0 {
		return fmt.Errorf("experiments: no per-shard stats recorded")
	}

	spread := func(vals [ip6.AddrShards]int64) (min, med, max int64) {
		sorted := append([]int64(nil), vals[:]...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1]
	}
	pMin, pMed, pMax := spread(probes)
	nMin, nMed, nMax := spread(nanos)

	fmt.Fprintf(w, "Shard balance — engine throughput per canonical shard (%d scans, %d shards)\n\n",
		scans, ip6.AddrShards)
	tb := analysis.NewTable("metric", "min", "median", "max", "max/median")
	ratio := "n/a"
	if pMed > 0 {
		ratio = fmt.Sprintf("%.2fx", float64(pMax)/float64(pMed))
	}
	tb.Row("probes", analysis.Humanize(int(pMin)), analysis.Humanize(int(pMed)), analysis.Humanize(int(pMax)), ratio)
	ratio = "n/a"
	if nMed > 0 {
		ratio = fmt.Sprintf("%.2fx", float64(nMax)/float64(nMed))
	}
	tb.Row("probe-time (ms)", fmt.Sprintf("%.1f", float64(nMin)/1e6),
		fmt.Sprintf("%.1f", float64(nMed)/1e6), fmt.Sprintf("%.1f", float64(nMax)/1e6), ratio)
	fmt.Fprint(w, tb)

	order := make([]int, ip6.AddrShards)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return nanos[order[i]] > nanos[order[j]] })
	fmt.Fprintf(w, "\nheaviest shards by probe time (dispatched first by the adaptive order):\n")
	tbH := analysis.NewTable("shard", "probes", "probe-ms", "share")
	var totalNanos int64
	for _, n := range nanos {
		totalNanos += n
	}
	for _, sh := range order[:5] {
		share := "n/a"
		if totalNanos > 0 {
			share = analysis.Pct(int(nanos[sh]/1e3), int(totalNanos/1e3))
		}
		tbH.Row(fmt.Sprintf("%d", sh), analysis.Humanize(int(probes[sh])),
			fmt.Sprintf("%.1f", float64(nanos[sh])/1e6), share)
	}
	fmt.Fprint(w, tbH)
	return nil
}

// ServeWhileScanning exercises the hitlist-as-a-service layer end to
// end: a dedicated timeline run publishes an immutable snapshot at each
// finalization while reader goroutines hammer the lock-free QueryHandle
// the whole time. Every sampled answer is re-derived offline from the
// snapshot of its generation — a single torn or stale-mixed answer
// fails the experiment. The queries/s figure is informational (it
// depends on the host), the consistency counts are the artifact.
func ServeWhileScanning(ctx context.Context, s *Suite, w io.Writer) error {
	wp := worldgen.Params{
		Seed:             s.P.Seed + 1,
		Scale:            s.P.Scale,
		TailASes:         s.P.TailASes,
		ScanIntervalDays: 7,
	}
	world, err := worldgen.Generate(wp)
	if err != nil {
		return err
	}
	feeds := world.BuildFeeds(yarrp.New(world.Net, yarrp.Config{Seed: wp.Seed}))
	cfg := core.DefaultConfig(wp.Seed)
	cfg.GFWFilterFromDay = worldgen.GFWFilterDeployDay
	cfg.ServeSnapshots = true
	svc := core.NewService(cfg, world.Net, feeds, world.Blocklist)
	defer svc.Close()

	// A bounded slice of the schedule: the suite's own four-year run
	// already covers fidelity; here ~16 scans suffice to demonstrate
	// serving across many snapshot swaps.
	days := world.ScanDays
	if stride := len(days) / 16; stride > 1 {
		strided := make([]int, 0, 16)
		for i := 0; i < len(days); i += stride {
			strided = append(strided, days[i])
		}
		days = strided
	}

	r := rng.NewStream(wp.Seed, "serve-experiment")
	prefixes := world.Net.AS.AnnouncedPrefixes()
	probes := make([]ip6.Addr, 256)
	for i := range probes {
		probes[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
	}

	h := svc.QueryHandle()
	type sample struct {
		addr ip6.Addr
		ans  serve.Answer
	}
	const readers = 4
	done := make(chan struct{})
	var queries atomic.Int64
	samples := make([][]sample, readers)
	var wg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		rd := rd
		wg.Add(1)
		go func() {
			defer wg.Done()
			finals := len(probes)
			for i := 0; ; i++ {
				a := probes[i%len(probes)]
				if ans, ok := h.Lookup(a); ok {
					queries.Add(1)
					// Sample sparsely so the cross-check spans the whole
					// run's generations, not just the first snapshot.
					if i%173 == 0 && len(samples[rd]) < 20000 {
						samples[rd] = append(samples[rd], sample{a, ans})
					}
				}
				select {
				case <-done:
					if finals--; finals < 0 {
						return
					}
				default:
				}
			}
		}()
	}

	snaps := make(map[uint64]*serve.Snapshot)
	for _, d := range days {
		if err := ctx.Err(); err != nil {
			close(done)
			wg.Wait()
			return err
		}
		if _, err := svc.RunScan(ctx, d); err != nil {
			close(done)
			wg.Wait()
			return err
		}
		if snap := h.Current(); snap != nil {
			snaps[snap.Generation] = snap
		}
	}
	close(done)
	wg.Wait()

	checked, torn := 0, 0
	gens := make(map[uint64]bool)
	for _, ss := range samples {
		for _, smp := range ss {
			snap, ok := snaps[smp.ans.Generation]
			if !ok {
				continue // reader sampled between Publish and the writer's map insert
			}
			gens[smp.ans.Generation] = true
			checked++
			if want := snap.Lookup(smp.addr); want != smp.ans {
				torn++
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("experiments: no reader sample matched a recorded snapshot")
	}
	if torn > 0 {
		return fmt.Errorf("experiments: %d torn answers across %d checked samples", torn, checked)
	}

	last := h.Current()
	fmt.Fprintf(w, "Hitlist-as-a-service — %d readers querying while %d scans publish snapshots\n\n",
		readers, len(days))
	tb := analysis.NewTable("metric", "value")
	tb.Row("snapshots published", fmt.Sprintf("%d", last.Generation))
	tb.Row("queries answered (informational)", analysis.Humanize(int(queries.Load())))
	tb.Row("samples cross-checked offline", analysis.Humanize(checked))
	tb.Row("generations observed by readers", fmt.Sprintf("%d", len(gens)))
	tb.Row("torn answers", "0")
	tb.Row("final snapshot: live addresses", analysis.Humanize(last.Any.Len()))
	tb.Row("final snapshot: aliased prefixes", fmt.Sprintf("%d", last.Aliased.Len()))
	tb.Row("final snapshot: GFW-injected addresses", analysis.Humanize(last.Injected.Len()))
	fmt.Fprint(w, tb)
	return nil
}
