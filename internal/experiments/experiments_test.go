package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hitlist6/internal/netmodel"
	"hitlist6/internal/worldgen"
)

// sharedSuite runs one quick suite for the whole test binary.
var sharedSuite = NewSuite(QuickParams(21))

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	ctx := context.Background()
	if err := sharedSuite.Run(ctx); err != nil {
		t.Fatalf("suite run: %v", err)
	}
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(ctx, sharedSuite, &buf); err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", r.Name)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fig3"); !ok {
		t.Error("fig3 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown experiment found")
	}
	if len(All()) < 20 {
		t.Errorf("experiments: %d", len(All()))
	}
}

// TestShapes verifies the headline shapes the reproduction must preserve.
func TestShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	ctx := context.Background()
	if err := sharedSuite.Run(ctx); err != nil {
		t.Fatal(err)
	}
	s := sharedSuite

	// Shape 1: the GFW spike — peak published UDP/53 far above cleaned.
	peakRaw, peakClean := 0, 0
	for _, rec := range s.Svc.Records() {
		if rec.ResponsiveRaw[netmodel.UDP53] > peakRaw {
			peakRaw = rec.ResponsiveRaw[netmodel.UDP53]
		}
		if rec.ResponsiveClean[netmodel.UDP53] > peakClean {
			peakClean = rec.ResponsiveClean[netmodel.UDP53]
		}
	}
	if peakRaw < 3*peakClean || peakRaw == 0 {
		t.Errorf("GFW spike shape: published peak %d vs cleaned %d", peakRaw, peakClean)
	}

	// Shape 2: aliased prefixes exist at multiple lengths, /64s among
	// them, and the Trafficforce event added ICMP-only /64s. (The paper's
	// ">90 % are /64" needs the full-scale /64 tail; at test scale the
	// constant-size named CDN prefixes dominate — see EXPERIMENTS.md.)
	p64, tf := 0, 0
	all := s.Svc.AliasedPrefixes().Prefixes()
	for _, p := range all {
		if p.Bits() == 64 {
			p64++
			if as := s.World.Net.AS.Lookup(p.Addr()); as != nil && as.ASN == worldgen.ASNTrafficforce {
				tf++
			}
		}
	}
	if len(all) == 0 || p64 == 0 {
		t.Errorf("aliased lengths: %d total, %d /64", len(all), p64)
	}
	if tf == 0 {
		t.Error("Trafficforce /64s not detected after the February 2022 event")
	}

	// Shape 3: new sources add responsive addresses beyond the hitlist.
	res, err := s.NewSources(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnionAny.Len() == 0 {
		t.Fatal("new sources found nothing")
	}
	gain := res.UnionAny.Diff(res.Hitlist.Any)
	if gain.Len() == 0 {
		t.Error("new sources contributed nothing new")
	}

	// Shape 4: GFW-impacted addresses concentrate in Chinese ASes.
	impacted := s.Svc.Tracker().InjectedOnly()
	if impacted.Len() > 0 {
		cn := 0
		for a := range impacted {
			if as := s.World.Net.AS.Lookup(a); as != nil && as.Country == "CN" {
				cn++
			}
		}
		if float64(cn) < 0.9*float64(impacted.Len()) {
			t.Errorf("GFW set not Chinese: %d/%d", cn, impacted.Len())
		}
	}

	// Shape 5: the cumulative responsive set far exceeds any snapshot.
	last := s.Svc.Records()[len(s.Svc.Records())-1]
	if s.Svc.EverResponsiveAnyLen() < 2*last.TotalClean {
		t.Errorf("cumulative %d vs current %d: churn shape missing",
			s.Svc.EverResponsiveAnyLen(), last.TotalClean)
	}
}

func TestOutputMentionsKeyFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	ctx := context.Background()
	var buf bytes.Buffer
	if err := Table5(ctx, sharedSuite, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AS4134") {
		t.Errorf("Table 5 must rank China Telecom Backbone first:\n%s", buf.String())
	}
}
