// Package fleet runs a scan as a coordinated fleet of scanner nodes —
// the horizontally-split deployment shape of the hitlist methodology's
// single-box ZMapv6 runs.
//
// A Coordinator partitions the 64 canonical shards across N worker
// "nodes". Each node is goroutine-confined with process-like isolation:
// it owns an independent scan.Scanner, pulls one shard at a time from
// the shared ShardedSource, and shares no mutable scan state with its
// peers — the only cross-node structures are the coordinator's
// scheduling queues and the merged statistics, both mutex-guarded.
// Because the engine's per-shard batch sequence depends only on the
// shard's target sequence (never on which scanner probes it, see
// internal/scan), and because a node delivers a shard's batches to the
// consumer sink only after the whole shard completed, fleet output is
// bit-identical to a single-process run for any node count: consumers
// see the same batches, same-shard calls sequential and in Seq order,
// exactly as the scan.Sink contract promises.
//
// Scheduling is LPT assignment plus work-stealing: shards are assigned
// to nodes longest-processing-time-first using the previous scan's
// per-shard wall-clock profile (SetShardProfile, generalizing the
// engine's slowest-first adaptive dispatch), and a node that drains its
// own queue steals the cheapest queued shard from the most loaded peer.
// Scheduling moves shards between nodes, never inside them, so it can
// reorder wall-clock completion but not one byte of output.
//
// Robustness: a node killed mid-scan (Config.FaultHook, standing in for
// a crashed fleet member) discards its buffered partial shard — the
// buffered-delivery design makes partial work state-neutral, mirroring
// the engine's abort-atomicity — and the coordinator re-issues the
// unfinished shard, plus everything still queued on the dead node, to
// the survivors via fresh ShardSource cursors. Output stays
// bit-identical as long as one node survives.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
)

// FaultPoint identifies one injection opportunity: Batch is -1 when the
// worker picks the shard up, otherwise the shard-local batch Seq just
// buffered.
type FaultPoint struct {
	Worker int
	Shard  int
	Batch  int
}

// FaultHook is the injectable failure knob: called at every FaultPoint,
// a non-nil return kills that worker node on the spot (its in-progress
// shard is discarded unfinished and re-issued to the survivors). It is
// invoked concurrently from worker goroutines.
type FaultHook func(FaultPoint) error

// ErrWorkerKilled is a convenience error for FaultHooks; any non-nil
// hook error has the same effect.
var ErrWorkerKilled = errors.New("fleet: worker killed")

// errKilled is the internal sentinel a dying node's sink returns to
// abort its stream without failing the whole fleet.
var errKilled = errors.New("fleet: node killed by fault hook")

// Config parameterizes a Coordinator.
type Config struct {
	// Workers is the node count; values < 1 mean 1.
	Workers int

	// Scan configures every node's scanner. SinkQueueDepth and Workers
	// are overridden per node (each node probes its one shard inline).
	Scan scan.Config

	// FaultHook, when set, injects worker failures (tests, drills).
	FaultHook FaultHook
}

// WorkerStats summarizes one node's share of a fleet scan.
type WorkerStats struct {
	// Shards is how many shards this node completed.
	Shards int
	// Steals counts shards taken from another node's queue.
	Steals int
	// Probes is the probe count across the node's completed shards.
	Probes uint64
	// Nanos is wall-clock probe time across the node's completed
	// shards (nondeterministic, like scan.ShardStats.Nanos).
	Nanos int64
	// Failed reports the node was killed by the fault hook.
	Failed bool
}

// Result is the outcome of one fleet scan.
type Result struct {
	// Stats is the merged scan statistics — identical to what a
	// single-process StreamFrom over the same source returns, except for
	// the nondeterministic ShardStats.Nanos.
	Stats scan.Stats
	// Workers holds per-node accounting, indexed by worker.
	Workers []WorkerStats
	// Reissued counts shards re-issued after a node death.
	Reissued int
}

// Coordinator owns a fleet of scanner nodes. It is not safe for
// concurrent Scan calls.
type Coordinator struct {
	cfg   Config
	nodes []*scan.Scanner

	profMu sync.Mutex
	prof   []scan.ShardStats
}

// New builds a fleet coordinator over the given network: Config.Workers
// independent scanner nodes sharing nothing but the world they probe.
func New(net *netmodel.Network, cfg Config) *Coordinator {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	nodeCfg := cfg.Scan
	// One node probes one shard at a time and buffers its own batches;
	// intra-node parallelism and sink decoupling would only add idle
	// goroutines.
	nodeCfg.Workers = 1
	nodeCfg.SinkQueueDepth = 0
	c := &Coordinator{cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		c.nodes = append(c.nodes, scan.New(net, nodeCfg))
	}
	return c
}

// SetShardProfile seeds the next Scan's LPT assignment with a previous
// scan's per-shard wall-clock profile (scan.Stats.PerShard): expensive
// shards are assigned first and spread across nodes, which is what
// makes stealing rare instead of constant. Profiles of the wrong length
// are ignored; nil clears. Purely a wall-clock knob — assignment never
// affects outputs.
func (c *Coordinator) SetShardProfile(prev []scan.ShardStats) {
	c.profMu.Lock()
	defer c.profMu.Unlock()
	if prev == nil {
		c.prof = nil
		return
	}
	if len(prev) != ip6.AddrShards {
		return
	}
	c.prof = append(c.prof[:0], prev...)
}

// shardResult is one completed shard's buffered output: batch copies in
// Seq order plus the node stream's statistics.
type shardResult struct {
	batches []scan.Batch
	stats   scan.Stats
}

// fleetRun is the state of one Scan call.
type fleetRun struct {
	c      *Coordinator
	ctx    context.Context
	cancel context.CancelFunc
	protos []netmodel.Protocol
	day    int
	sink   scan.Sink

	// srcMu serializes every ShardSource call: lazily-partitioned
	// sources build their plans on first use and are not race-safe.
	srcMu   sync.Mutex
	src     scan.ShardedSource
	pending [ip6.AddrShards]scan.TargetSource // planned first-use cursors
	sizes   [ip6.AddrShards]int

	// mu guards all scheduling and accounting state below. 64 shards
	// make queue operations rare relative to probing, so one central
	// lock never contends measurably.
	mu         sync.Mutex
	cond       *sync.Cond
	queues     [][]int // per-node shard deque, most expensive first
	load       []int64 // per-node queued (not in-flight) estimated cost
	cost       [ip6.AddrShards]int64
	alive      []bool
	aliveN     int
	incomplete int // shards not yet completed
	reissued   int
	stopping   bool
	err        error
	wstats     []WorkerStats

	probes, responses, successes, batches uint64
	perShard                              [ip6.AddrShards]scan.ShardStats
}

// Scan probes every (target, protocol) pair of src across the fleet and
// delivers results to sink under the scan.Sink contract (concurrent
// across shards, sequential and Seq-ordered within a shard, batches not
// retained). Batches for a shard are delivered only once the shard
// completed on some node, so a killed node leaves no partial trace. If
// src implements io.Closer it is closed when the scan ends, on every
// path. The returned Result.Stats equals a single-process run's Stats
// up to the nondeterministic per-shard Nanos.
func (c *Coordinator) Scan(ctx context.Context, src scan.ShardedSource, protos []netmodel.Protocol, day int, sink scan.Sink) (Result, error) {
	res := Result{Workers: make([]WorkerStats, len(c.nodes))}
	if src != nil {
		defer func() {
			if cl, ok := src.(io.Closer); ok {
				cl.Close()
			}
		}()
	}
	rate := c.nodes[0].Config().RatePPS
	if src == nil || len(protos) == 0 {
		res.Stats.PerShard = make([]scan.ShardStats, ip6.AddrShards)
		return res, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &fleetRun{
		c: c, ctx: runCtx, cancel: cancel,
		protos: protos, day: day, sink: sink,
		src:    src,
		queues: make([][]int, len(c.nodes)),
		load:   make([]int64, len(c.nodes)),
		alive:  make([]bool, len(c.nodes)),
		aliveN: len(c.nodes),
		wstats: res.Workers,
	}
	r.cond = sync.NewCond(&r.mu)
	for i := range r.alive {
		r.alive[i] = true
	}

	// Plan: one serial pass collects every shard's first-use cursor (so
	// the no-failure path calls ShardSource exactly once per shard, like
	// the engine) and its size when the source knows it.
	sizer, _ := src.(scan.ShardSizer)
	var shards []int
	for sh := 0; sh < ip6.AddrShards; sh++ {
		r.sizes[sh] = -1
		if f := src.ShardSource(sh); f != nil {
			r.pending[sh] = f
			if sizer != nil {
				r.sizes[sh] = sizer.ShardLen(sh)
			}
			shards = append(shards, sh)
		}
	}
	r.incomplete = len(shards)
	if r.incomplete == 0 {
		res.Stats.PerShard = make([]scan.ShardStats, ip6.AddrShards)
		return res, nil
	}

	// Estimate per-shard cost: previous-scan wall nanos when a profile
	// is set and saw the shard, target count otherwise, 1 as the floor.
	// Estimates only steer assignment; being wrong costs steals, not
	// correctness.
	c.profMu.Lock()
	prof := r.c.prof
	c.profMu.Unlock()
	for _, sh := range shards {
		cost := int64(1)
		if prof != nil && prof[sh].Nanos > 0 {
			cost = prof[sh].Nanos
		} else if r.sizes[sh] > 0 {
			cost = int64(r.sizes[sh])
		}
		r.cost[sh] = cost
	}

	// LPT assignment: most expensive shard first, each to the least
	// loaded node (ties to the lowest index — deterministic, though
	// nothing downstream depends on it).
	sort.Slice(shards, func(i, j int) bool {
		if r.cost[shards[i]] != r.cost[shards[j]] {
			return r.cost[shards[i]] > r.cost[shards[j]]
		}
		return shards[i] < shards[j]
	})
	for _, sh := range shards {
		best := 0
		for w := 1; w < len(r.load); w++ {
			if r.load[w] < r.load[best] {
				best = w
			}
		}
		r.queues[best] = append(r.queues[best], sh)
		r.load[best] += r.cost[sh]
	}

	var wg sync.WaitGroup
	for w := range c.nodes {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(w)
		}(w)
	}
	wg.Wait()

	res.Stats = scan.Stats{
		ProbesSent: r.probes,
		Responses:  r.responses,
		Successes:  r.successes,
		Batches:    r.batches,
	}
	res.Stats.EstimatedSeconds = float64(res.Stats.ProbesSent) / float64(rate)
	res.Stats.PerShard = append([]scan.ShardStats(nil), r.perShard[:]...)
	res.Reissued = r.reissued
	if r.err != nil {
		return res, r.err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// worker is one node's loop: pull a shard, scan it into a local buffer,
// deliver atomically, repeat. It exits when every shard completed, the
// fleet is stopping, or the fault hook kills it.
func (r *fleetRun) worker(w int) {
	hook := r.c.cfg.FaultHook
	for {
		sh, ok := r.nextShard(w)
		if !ok {
			return
		}
		if hook != nil {
			if err := hook(FaultPoint{Worker: w, Shard: sh, Batch: -1}); err != nil {
				r.die(w, sh)
				return
			}
		}
		out, err := r.scanShard(w, sh)
		if err != nil {
			if errors.Is(err, errKilled) {
				r.die(w, sh)
				return
			}
			r.fail(err)
			return
		}
		if err := r.deliver(out); err != nil {
			r.fail(err)
			return
		}
		r.complete(w, sh, out.stats)
	}
}

// nextShard pops the worker's own queue, steals from the most loaded
// peer when empty, and otherwise waits: unfinished shards in flight on
// other nodes may yet be re-issued here if their node dies.
func (r *fleetRun) nextShard(w int) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.stopping || r.incomplete == 0 {
			return 0, false
		}
		if q := r.queues[w]; len(q) > 0 {
			sh := q[0]
			r.queues[w] = q[1:]
			r.load[w] -= r.cost[sh]
			return sh, true
		}
		victim := -1
		for v := range r.queues {
			if v == w || len(r.queues[v]) == 0 {
				continue
			}
			if victim < 0 || r.load[v] > r.load[victim] {
				victim = v
			}
		}
		if victim >= 0 {
			// Steal from the tail: the victim's cheapest queued shard,
			// leaving its expensive head where the LPT seed put it.
			q := r.queues[victim]
			sh := q[len(q)-1]
			r.queues[victim] = q[:len(q)-1]
			r.load[victim] -= r.cost[sh]
			r.wstats[w].Steals++
			return sh, true
		}
		r.cond.Wait()
	}
}

// takeSource hands out shard sh's cursor: the planned first-use one, or
// a fresh ShardSource call on re-issue after a node death.
func (r *fleetRun) takeSource(sh int) scan.TargetSource {
	r.srcMu.Lock()
	defer r.srcMu.Unlock()
	if f := r.pending[sh]; f != nil {
		r.pending[sh] = nil
		return f
	}
	return r.src.ShardSource(sh)
}

// singleShard exposes one shard's cursor as a ShardedSource, so a node
// scans it through the engine's exact sharded batch machinery.
type singleShard struct {
	sh   int
	feed scan.TargetSource
	size int
}

func (s singleShard) Next(buf []ip6.Addr) (int, error) { return s.feed.Next(buf) }

func (s singleShard) ShardSource(sh int) scan.TargetSource {
	if sh == s.sh {
		return s.feed
	}
	return nil
}

func (s singleShard) ShardLen(sh int) int {
	if sh == s.sh {
		return s.size
	}
	return 0
}

// scanShard runs shard sh to completion on node w's scanner, buffering
// batch copies locally. Nothing reaches the consumer sink until the
// shard finished — the abort-atomicity that makes node deaths
// state-neutral. The engine recycles batch buffers and their DNS wire
// arenas together, so the buffered copies deep-copy DNS payloads along
// with the rows.
func (r *fleetRun) scanShard(w, sh int) (*shardResult, error) {
	feed := r.takeSource(sh)
	if feed == nil {
		// Shard sources are deterministic: a shard planned non-empty
		// cannot come back empty on re-issue.
		return nil, fmt.Errorf("fleet: shard %d source vanished on re-issue", sh)
	}
	hook := r.c.cfg.FaultHook
	out := &shardResult{}
	st, err := r.c.nodes[w].StreamFrom(r.ctx, singleShard{sh: sh, feed: feed, size: r.sizes[sh]},
		r.protos, r.day, func(b *scan.Batch) error {
			cp := scan.Batch{Shard: b.Shard, Seq: b.Seq, Stats: b.Stats}
			cp.Results = append([]scan.Result(nil), b.Results...)
			for i := range cp.Results {
				if dns := cp.Results[i].DNS; len(dns) > 0 {
					deep := make([][]byte, len(dns))
					for j, w := range dns {
						deep[j] = append([]byte(nil), w...)
					}
					cp.Results[i].DNS = deep
				}
			}
			out.batches = append(out.batches, cp)
			if hook != nil {
				if err := hook(FaultPoint{Worker: w, Shard: sh, Batch: b.Seq}); err != nil {
					return errKilled
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	out.stats = st
	return out, nil
}

// deliver forwards a completed shard's buffered batches to the consumer
// sink, in Seq order. Other shards may be delivering concurrently —
// exactly the concurrency the scan.Sink contract grants.
func (r *fleetRun) deliver(out *shardResult) error {
	for i := range out.batches {
		if err := r.sink(&out.batches[i]); err != nil {
			return err
		}
	}
	return nil
}

// complete merges a finished shard's statistics.
func (r *fleetRun) complete(w, sh int, st scan.Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wstats[w].Shards++
	r.wstats[w].Probes += st.ProbesSent
	r.wstats[w].Nanos += st.PerShard[sh].Nanos
	r.probes += st.ProbesSent
	r.responses += st.Responses
	r.successes += st.Successes
	r.batches += st.Batches
	r.perShard[sh] = st.PerShard[sh]
	r.incomplete--
	if r.incomplete == 0 {
		r.cond.Broadcast()
	}
}

// die removes a killed node: its unfinished shard and queued shards are
// re-issued to the least loaded survivors. With no survivors left the
// scan fails — there is nobody to finish the work.
func (r *fleetRun) die(w, sh int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wstats[w].Failed = true
	r.alive[w] = false
	r.aliveN--
	orphans := append([]int{sh}, r.queues[w]...)
	r.queues[w] = nil
	r.load[w] = 0
	if r.aliveN == 0 {
		r.failLocked(fmt.Errorf("fleet: all %d workers killed with %d shards unfinished", len(r.alive), r.incomplete))
		return
	}
	for _, osh := range orphans {
		best := -1
		for v := range r.queues {
			if !r.alive[v] {
				continue
			}
			if best < 0 || r.load[v] < r.load[best] {
				best = v
			}
		}
		r.queues[best] = append(r.queues[best], osh)
		r.load[best] += r.cost[osh]
		r.reissued++
	}
	r.cond.Broadcast()
}

// fail records the first error and stops the fleet: waiters wake, and
// in-flight node streams abort through the cancelled context.
func (r *fleetRun) fail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failLocked(err)
}

func (r *fleetRun) failLocked(err error) {
	if r.err == nil {
		r.err = err
	}
	r.stopping = true
	r.cancel()
	r.cond.Broadcast()
}
