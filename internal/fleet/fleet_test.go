package fleet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/worldgen"
)

// The shared test world: generated once per binary, probed read-only by
// every test (the network is sealed after generation).
var (
	worldOnce sync.Once
	worldNet  *netmodel.Network
	worldErr  error
	testAddrs []ip6.Addr
)

var testProtos = []netmodel.Protocol{netmodel.ICMP, netmodel.TCP443, netmodel.TCP80, netmodel.UDP443, netmodel.UDP53}

func testWorld(t *testing.T) (*netmodel.Network, []ip6.Addr) {
	t.Helper()
	worldOnce.Do(func() {
		w, err := worldgen.Generate(worldgen.Params{
			Seed: 17, Scale: 1.0 / 10000, TailASes: 48, ScanIntervalDays: 7,
		})
		if err != nil {
			worldErr = err
			return
		}
		worldNet = w.Net
		r := rng.NewStream(17, "fleet-test-targets")
		prefixes := w.Net.AS.AnnouncedPrefixes()
		testAddrs = make([]ip6.Addr, 4096)
		for i := range testAddrs {
			testAddrs[i] = prefixes[r.Intn(len(prefixes))].RandomAddr(r)
		}
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return worldNet, testAddrs
}

// collector accumulates batch copies per shard — the canonical-merge
// consumer shape every real sink follows.
type collector struct {
	mu      sync.Mutex
	batches map[int][]scan.Batch
}

func newCollector() *collector { return &collector{batches: make(map[int][]scan.Batch)} }

func (c *collector) sink(b *scan.Batch) error {
	cp := scan.Batch{Shard: b.Shard, Seq: b.Seq, Stats: b.Stats}
	cp.Results = append([]scan.Result(nil), b.Results...)
	// The engine recycles DNS wire buffers with the batch; retained
	// copies deep-copy the payloads.
	for i := range cp.Results {
		if dns := cp.Results[i].DNS; len(dns) > 0 {
			deep := make([][]byte, len(dns))
			for j, w := range dns {
				deep[j] = append([]byte(nil), w...)
			}
			cp.Results[i].DNS = deep
		}
	}
	c.mu.Lock()
	c.batches[b.Shard] = append(c.batches[b.Shard], cp)
	c.mu.Unlock()
	return nil
}

// stripNanos zeroes the nondeterministic wall-clock field so stats
// compare deterministically.
func stripNanos(st scan.Stats) scan.Stats {
	out := st
	out.PerShard = append([]scan.ShardStats(nil), st.PerShard...)
	for i := range out.PerShard {
		out.PerShard[i].Nanos = 0
	}
	return out
}

// singleRun is the single-process reference every fleet run must match
// byte for byte.
func singleRun(t *testing.T) (*collector, scan.Stats) {
	t.Helper()
	net, addrs := testWorld(t)
	s := scan.New(net, scan.DefaultConfig(17))
	ref := newCollector()
	st, err := s.StreamFrom(context.Background(), scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100, ref.sink)
	if err != nil {
		t.Fatal(err)
	}
	return ref, st
}

func requireSameBatches(t *testing.T, want, got *collector, label string) {
	t.Helper()
	if len(got.batches) != len(want.batches) {
		t.Fatalf("%s: %d shards with output, want %d", label, len(got.batches), len(want.batches))
	}
	for sh, wb := range want.batches {
		gb := got.batches[sh]
		if !reflect.DeepEqual(wb, gb) {
			t.Fatalf("%s: shard %d batches diverge (%d vs %d batches)", label, sh, len(gb), len(wb))
		}
	}
}

// TestFleetMatchesSingleScanner pins the equivalence invariant: for any
// node count — including more nodes than shards — the fleet delivers
// exactly the batches of a single-process run, and the merged stats
// match up to wall-clock nanos.
func TestFleetMatchesSingleScanner(t *testing.T) {
	net, addrs := testWorld(t)
	ref, refStats := singleRun(t)
	for _, workers := range []int{1, 2, 4, 8, 67} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			coord := New(net, Config{Workers: workers, Scan: scan.DefaultConfig(17)})
			got := newCollector()
			res, err := coord.Scan(context.Background(), scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100, got.sink)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBatches(t, ref, got, fmt.Sprintf("workers=%d", workers))
			if !reflect.DeepEqual(stripNanos(refStats), stripNanos(res.Stats)) {
				t.Fatalf("workers=%d: stats diverge:\n ref %+v\n got %+v", workers, stripNanos(refStats), stripNanos(res.Stats))
			}
			shards := 0
			for _, ws := range res.Workers {
				shards += ws.Shards
			}
			if shards != len(ref.batches) {
				t.Fatalf("workers=%d: worker stats cover %d shards, want %d", workers, shards, len(ref.batches))
			}
		})
	}
}

// TestFleetWorkerKilledMidShard kills the first node to buffer a batch,
// right after it did: the shard must be re-issued and the output must
// stay byte-identical — nothing from the dead node's partial run leaks.
// (The victim is "whoever gets there first", not a fixed index: on a
// single-CPU box some worker goroutines may never be scheduled before
// the others drain the queue.)
func TestFleetWorkerKilledMidShard(t *testing.T) {
	net, addrs := testWorld(t)
	ref, _ := singleRun(t)
	victim := atomic.Int32{}
	victim.Store(-1)
	hook := func(p FaultPoint) error {
		if p.Batch >= 0 && victim.CompareAndSwap(-1, int32(p.Worker)) {
			return ErrWorkerKilled
		}
		return nil
	}
	coord := New(net, Config{Workers: 4, Scan: scan.DefaultConfig(17), FaultHook: hook})
	got := newCollector()
	res, err := coord.Scan(context.Background(), scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100, got.sink)
	if err != nil {
		t.Fatal(err)
	}
	w := victim.Load()
	if w < 0 {
		t.Fatal("fault hook never fired")
	}
	if !res.Workers[w].Failed {
		t.Fatalf("worker %d not marked failed", w)
	}
	if res.Reissued < 1 {
		t.Fatalf("Reissued = %d, want >= 1", res.Reissued)
	}
	requireSameBatches(t, ref, got, "kill mid-shard")
}

// TestFleetWorkerKilledAtPickup kills the first node to pick a shard
// up, before it starts scanning — the other fault point — and expects
// the same re-issue path.
func TestFleetWorkerKilledAtPickup(t *testing.T) {
	net, addrs := testWorld(t)
	ref, _ := singleRun(t)
	victim := atomic.Int32{}
	victim.Store(-1)
	hook := func(p FaultPoint) error {
		if p.Batch < 0 && victim.CompareAndSwap(-1, int32(p.Worker)) {
			return ErrWorkerKilled
		}
		return nil
	}
	coord := New(net, Config{Workers: 3, Scan: scan.DefaultConfig(17), FaultHook: hook})
	got := newCollector()
	res, err := coord.Scan(context.Background(), scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100, got.sink)
	if err != nil {
		t.Fatal(err)
	}
	w := victim.Load()
	if w < 0 {
		t.Fatal("fault hook never fired")
	}
	if !res.Workers[w].Failed || res.Reissued < 1 {
		t.Fatalf("want worker %d failed with re-issues, got %+v reissued=%d", w, res.Workers[w], res.Reissued)
	}
	requireSameBatches(t, ref, got, "kill at pickup")
}

// TestFleetAllWorkersKilled verifies the no-survivors case fails loudly
// instead of returning partial output as complete.
func TestFleetAllWorkersKilled(t *testing.T) {
	net, addrs := testWorld(t)
	hook := func(p FaultPoint) error { return ErrWorkerKilled }
	coord := New(net, Config{Workers: 3, Scan: scan.DefaultConfig(17), FaultHook: hook})
	_, err := coord.Scan(context.Background(), scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100, func(*scan.Batch) error { return nil })
	if err == nil {
		t.Fatal("scan succeeded with every worker killed")
	}
}

// TestFleetStealsUnderSkewedProfile seeds a deliberately lying profile:
// one shard claims to dwarf everything, so LPT parks the rest on the
// other nodes and the first node must steal once its "huge" shard turns
// out cheap. Verifies stealing really happens and never affects output.
func TestFleetStealsUnderSkewedProfile(t *testing.T) {
	net, addrs := testWorld(t)
	ref, _ := singleRun(t)
	coord := New(net, Config{Workers: 4, Scan: scan.DefaultConfig(17)})
	prof := make([]scan.ShardStats, ip6.AddrShards)
	for i := range prof {
		prof[i].Nanos = 1
	}
	prof[ip6.ShardOf(addrs[0])].Nanos = 1 << 40
	coord.SetShardProfile(prof)
	got := newCollector()
	res, err := coord.Scan(context.Background(), scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100, got.sink)
	if err != nil {
		t.Fatal(err)
	}
	steals := 0
	for _, ws := range res.Workers {
		steals += ws.Steals
	}
	if steals == 0 {
		t.Fatal("skewed profile produced no steals")
	}
	requireSameBatches(t, ref, got, "steals")
}

// TestFleetEmptySource: nothing to scan is a clean no-op.
func TestFleetEmptySource(t *testing.T) {
	net, _ := testWorld(t)
	coord := New(net, Config{Workers: 4, Scan: scan.DefaultConfig(17)})
	res, err := coord.Scan(context.Background(), scan.SliceSource(nil).(scan.ShardedSource), testProtos, 100,
		func(*scan.Batch) error { return errors.New("sink must not be called") })
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ProbesSent != 0 || len(res.Stats.PerShard) != ip6.AddrShards {
		t.Fatalf("unexpected stats %+v", res.Stats)
	}
}

// TestFleetSinkErrorFailsScan: a consumer error is a real failure, not
// a node death — it aborts the whole fleet.
func TestFleetSinkErrorFailsScan(t *testing.T) {
	net, addrs := testWorld(t)
	coord := New(net, Config{Workers: 2, Scan: scan.DefaultConfig(17)})
	sinkErr := errors.New("consumer broke")
	_, err := coord.Scan(context.Background(), scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100,
		func(*scan.Batch) error { return sinkErr })
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want %v", err, sinkErr)
	}
}

// TestFleetContextCancelled: a cancelled context surfaces as the scan
// error.
func TestFleetContextCancelled(t *testing.T) {
	net, addrs := testWorld(t)
	coord := New(net, Config{Workers: 2, Scan: scan.DefaultConfig(17)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := coord.Scan(ctx, scan.SliceSource(addrs).(scan.ShardedSource), testProtos, 100,
		func(*scan.Batch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
