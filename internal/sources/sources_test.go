package sources

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
	"hitlist6/internal/yarrp"
)

func TestSnapshotFeed(t *testing.T) {
	addrs := []ip6.Addr{ip6.MustParseAddr("2001:db9::2"), ip6.MustParseAddr("2001:db9::1")}
	f := Snapshot("det", 100, addrs)
	// The window stays open for two weeks so the next scheduled scan
	// catches one-shot imports.
	if f.ActiveAt(99) || !f.ActiveAt(100) || !f.ActiveAt(113) || f.ActiveAt(114) {
		t.Error("activity window")
	}
	got, err := f.Collect(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Less(got[1]) {
		t.Errorf("snapshot: %v", got)
	}
}

func TestRecurringFeedAndDrain(t *testing.T) {
	calls := 0
	f1 := Recurring("dns", 0, 1000, func(day int) []ip6.Addr {
		calls++
		return []ip6.Addr{ip6.MustParseAddr("2001:db9::1")}
	})
	f2 := Snapshot("ark", 500, []ip6.Addr{ip6.MustParseAddr("2001:db9::2")})

	out, err := Drain(context.Background(), []*Feed{f1, f2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out["dns"]) != 1 {
		t.Errorf("drain day 10: %v", out)
	}
	out, err = Drain(context.Background(), []*Feed{f1, f2}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("drain day 500: %v", out)
	}
	if calls != 2 {
		t.Errorf("collect calls: %d", calls)
	}
}

func TestRotatingCPE(t *testing.T) {
	isp := &netmodel.AS{ASN: 3320, Name: "DTAG", Country: "DE", Category: netmodel.CatISP,
		Announced: []ip6.Prefix{ip6.MustParsePrefix("2003::/19")}, AnnouncedFrom: []int{0}}
	pool := RotatingCPE{
		ISP: isp, Base: ip6.MustParsePrefix("2003::/19"),
		MACs: 500, PerDay: 300, RotationDays: 30, Seed: 5,
	}
	f := pool.Feed("cpe-dtag", 0, 10000)

	day0, err := f.Collect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(day0) != 300 {
		t.Fatalf("per-day count: %d", len(day0))
	}
	euiCount := 0
	macs := map[ip6.MAC]bool{}
	for _, a := range day0 {
		if !ip6.MustParsePrefix("2003::/19").Contains(a) {
			t.Fatalf("address %v outside ISP space", a)
		}
		if a.IsEUI64() {
			euiCount++
			if m, ok := a.EUI64MAC(); ok {
				macs[m] = true
			}
		}
	}
	if euiCount != len(day0) {
		t.Errorf("all CPE addresses must be EUI-64: %d/%d", euiCount, len(day0))
	}
	// Fewer MACs than addresses: devices repeat.
	if len(macs) >= len(day0) {
		t.Errorf("no MAC reuse: %d macs for %d addrs", len(macs), len(day0))
	}

	// Rotation: same day within a period → same prefix per device; across
	// periods the accumulated distinct address set grows faster than the
	// per-day set.
	all := ip6.NewSet(0)
	for day := 0; day < 120; day += 30 {
		got, _ := f.Collect(context.Background(), day)
		all.AddSlice(got)
	}
	if all.Len() <= 350 {
		t.Errorf("rotation did not accumulate distinct addresses: %d", all.Len())
	}

	// The same MAC appears under multiple prefixes across periods
	// (the Section 4.1 EUI-64 grouping signal).
	iidToHis := map[uint64]map[uint64]bool{}
	for day := 0; day < 300; day += 30 {
		got, _ := f.Collect(context.Background(), day)
		for _, a := range got {
			iid, _ := a.EUI64IID()
			if iidToHis[iid] == nil {
				iidToHis[iid] = map[uint64]bool{}
			}
			iidToHis[iid][a.Hi()] = true
		}
	}
	multi := 0
	for _, his := range iidToHis {
		if len(his) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no IID observed under multiple prefixes")
	}
}

func TestTracerouteFeed(t *testing.T) {
	ases := []*netmodel.AS{
		{ASN: 1, Name: "T", Country: "US", Category: netmodel.CatTransit,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2914::/24")}, AnnouncedFrom: []int{0}},
		{ASN: 2, Name: "D", Country: "DE", Category: netmodel.CatISP,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2003::/19")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(3, netmodel.NewASTable(ases))
	tr := yarrp.New(n, yarrp.Config{Seed: 1})
	f := TracerouteFeed("atlas", 0, 100, tr, func(day int) []ip6.Addr {
		return []ip6.Addr{ip6.MustParseAddr("2003::42")}
	})
	got, err := f.Collect(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("traceroute feed found nothing")
	}
	for _, a := range got {
		if a == ip6.MustParseAddr("2003::42") {
			t.Error("feed leaked the target")
		}
	}
}

// TestDrainHonorsContext: cancellation between feeds stops the drain and
// returns the feeds already collected alongside ctx's error.
func TestDrainHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	a1 := []ip6.Addr{ip6.MustParseAddr("2001:db9::1")}
	collected := []string{}
	mk := func(name string, cancelAfter bool) *Feed {
		return &Feed{Name: name, FromDay: 0, ToDay: 100,
			Collect: func(context.Context, int) ([]ip6.Addr, error) {
				collected = append(collected, name)
				if cancelAfter {
					cancel()
				}
				return a1, nil
			}}
	}
	out, err := Drain(ctx, []*Feed{mk("a", false), mk("b", true), mk("c", false)}, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 2 || out["a"] == nil || out["b"] == nil {
		t.Errorf("partial results missing: %v", out)
	}
	if len(collected) != 2 {
		t.Errorf("feeds collected after cancellation: %v", collected)
	}

	// An erroring feed likewise surfaces with earlier feeds intact.
	boom := errors.New("collector offline")
	bad := &Feed{Name: "bad", FromDay: 0, ToDay: 100,
		Collect: func(context.Context, int) ([]ip6.Addr, error) { return nil, boom }}
	out, err = Drain(context.Background(), []*Feed{mk("a", false), bad}, 5)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(out) != 1 {
		t.Errorf("partial results missing: %v", out)
	}
}

// TestFeedSource pins the per-feed streaming source: lazy single
// collection, full in-order delivery, inactive feeds exhausted
// immediately, and Collect errors surfacing from the pull.
func TestFeedSource(t *testing.T) {
	addrs := []ip6.Addr{
		ip6.MustParseAddr("2001:db9::1"),
		ip6.MustParseAddr("2001:db9::2"),
		ip6.MustParseAddr("2001:db9::3"),
	}
	calls := 0
	f := &Feed{Name: "dns", FromDay: 0, ToDay: 100,
		Collect: func(context.Context, int) ([]ip6.Addr, error) {
			calls++
			return addrs, nil
		}}

	src := f.Source(context.Background(), 5)
	if calls != 0 {
		t.Fatal("Collect ran before the first pull")
	}
	got, err := scan.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, addrs) || calls != 1 {
		t.Errorf("pulled %v (collect calls %d)", got, calls)
	}

	// Inactive day: exhausted without collecting.
	src = f.Source(context.Background(), 200)
	if got, err := scan.Collect(src); err != nil || len(got) != 0 {
		t.Errorf("inactive feed: %v, %v", got, err)
	}
	if calls != 1 {
		t.Error("inactive feed ran Collect")
	}

	// Collect error surfaces from Next.
	boom := errors.New("collector offline")
	bad := &Feed{Name: "bad", FromDay: 0, ToDay: 100,
		Collect: func(context.Context, int) ([]ip6.Addr, error) { return nil, boom }}
	if _, err := scan.Collect(bad.Source(context.Background(), 5)); !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}

	// Open returns only active feeds, in feed order.
	late := &Feed{Name: "late", FromDay: 50, ToDay: 60, Collect: bad.Collect}
	srcs := Open(context.Background(), []*Feed{f, late}, 5)
	if len(srcs) != 1 || srcs[0].Name != "dns" {
		t.Errorf("Open: %v", srcs)
	}
}

// TestHitlistFileFeed pins the streaming .hl6-backed feed: lazy open on
// the first pull, full contents delivered, open errors surfacing from
// Next, inactivity yielding an empty stream, and Drain's materializing
// compat path agreeing with the stream.
func TestHitlistFileFeed(t *testing.T) {
	addrs := []ip6.Addr{
		ip6.MustParseAddr("2001:db8::1"),
		ip6.MustParseAddr("2001:db8::2"),
		ip6.MustParseAddr("2001:db8:99::1"),
	}
	path := filepath.Join(t.TempDir(), "import.hl6")
	if err := hlfile.Write(path, addrs); err != nil {
		t.Fatal(err)
	}

	f := HitlistFile("rdns-import", 50, path)
	if f.ActiveAt(49) || !f.ActiveAt(50) || f.ActiveAt(64) {
		t.Error("activity window")
	}
	got, err := scan.Collect(f.Source(context.Background(), 50))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ip6.SetOf(got...), ip6.SetOf(addrs...); !reflect.DeepEqual(got, want) {
		t.Errorf("streamed %v, want %v", got, want)
	}

	// Inactive day: exhausted immediately, no file touched.
	empty, err := scan.Collect(f.Source(context.Background(), 10))
	if err != nil || len(empty) != 0 {
		t.Errorf("inactive day yielded %d addrs, err %v", len(empty), err)
	}

	// Drain's compat path materializes the same contents.
	drained, err := Drain(context.Background(), []*Feed{f}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(drained["rdns-import"]) != len(addrs) {
		t.Errorf("Drain got %d addrs", len(drained["rdns-import"]))
	}

	// A missing file fails at pull time, not construction time.
	broken := HitlistFile("bad", 50, filepath.Join(t.TempDir(), "missing.hl6"))
	buf := make([]ip6.Addr, 8)
	if _, err := broken.Source(context.Background(), 50).Next(buf); err == nil {
		t.Error("missing file did not surface from Next")
	}

	// Cancellation before the first pull surfaces too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Source(ctx, 50).Next(buf); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled pull: %v", err)
	}
}
