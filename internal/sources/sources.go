// Package sources defines the candidate-address feeds the hitlist service
// accumulates input from: DNS resolutions, traceroute-derived router
// addresses, public snapshots (CAIDA Ark, DET), one-shot imports (rDNS) and
// rotating-CPE artifacts.
//
// A Feed is a named deterministic generator over simulation days. The world
// generator wires concrete feeds to the synthetic Internet; the service
// core just drains whatever is active.
package sources

import (
	"context"
	"fmt"
	"io"
	"sort"

	"hitlist6/internal/hlfile"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/scan"
	"hitlist6/internal/yarrp"
)

// Feed is one input source.
type Feed struct {
	// Name identifies the source in analyses ("dns-aaaa", "atlas", ...).
	Name string

	// FromDay/ToDay bound the feed's activity; one-shot imports use a
	// single-day window.
	FromDay, ToDay int

	// Collect returns the candidate addresses the feed contributes for a
	// given day. Implementations must be deterministic in day.
	Collect func(ctx context.Context, day int) ([]ip6.Addr, error)

	// Open, when set, supersedes Collect as the feed's streaming
	// backend: it returns a pull source whose addresses are never
	// materialized by the feed layer — hitlist-file feeds (.hl6 readers)
	// plug in here. Sources must be deterministic in day; closable
	// sources are closed by the consumer when the pull ends.
	Open func(ctx context.Context, day int) (scan.TargetSource, error)
}

// ActiveAt reports whether the feed produces data at the given day.
func (f *Feed) ActiveAt(day int) bool { return day >= f.FromDay && day < f.ToDay }

// Drain collects from every active feed and returns candidates per feed
// name, preserving feed order. Cancellation is honored between feeds: on
// a cancelled context (or a feed error) the feeds already collected are
// returned alongside the error, so callers can account for partial
// progress.
func Drain(ctx context.Context, feeds []*Feed, day int) (map[string][]ip6.Addr, error) {
	out := make(map[string][]ip6.Addr, len(feeds))
	for _, f := range feeds {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if !f.ActiveAt(day) {
			continue
		}
		var addrs []ip6.Addr
		var err error
		if f.Open != nil {
			// Streaming feeds materialize through their source here —
			// Drain is the compat path — keeping Open's documented
			// precedence over Collect on both consumption paths. The
			// source wraps its own errors with feed attribution.
			addrs, err = scan.Collect(f.Source(ctx, day))
		} else {
			addrs, err = f.Collect(ctx, day)
			if err != nil {
				err = fmt.Errorf("sources: feed %s at day %d: %w", f.Name, day, err)
			}
		}
		if err != nil {
			return out, err
		}
		out[f.Name] = addrs
	}
	return out, nil
}

// NamedSource pairs a feed's name with its streaming candidate source
// for one day.
type NamedSource struct {
	Name string
	Src  scan.TargetSource
}

// Open returns one lazy pull source per feed active at day, preserving
// feed order. Collection runs on a source's first pull, so a consumer
// that stops early never pays for later feeds' Collect, and cancellation
// between feeds falls out of the pull loop.
func Open(ctx context.Context, feeds []*Feed, day int) []NamedSource {
	var out []NamedSource
	for _, f := range feeds {
		if !f.ActiveAt(day) {
			continue
		}
		out = append(out, NamedSource{Name: f.Name, Src: f.Source(ctx, day)})
	}
	return out
}

// Source returns a pull-based source over the feed's contribution for
// one day. Feeds with a streaming backend (Open) hand it out directly —
// opened lazily on the first pull so errors surface from Next like every
// other source failure; Collect-based feeds run Collect lazily on the
// first pull and stream the collected list. An inactive feed yields an
// immediately exhausted source.
func (f *Feed) Source(ctx context.Context, day int) scan.TargetSource {
	if f.Open != nil {
		return &openSource{ctx: ctx, f: f, day: day}
	}
	return &feedSource{ctx: ctx, f: f, day: day}
}

// openSource defers a streaming feed's Open to the first pull.
type openSource struct {
	ctx context.Context
	f   *Feed
	day int
	src scan.TargetSource
	err error
}

func (s *openSource) open() error {
	if s.src != nil || s.err != nil {
		return s.err
	}
	if !s.f.ActiveAt(s.day) {
		s.src = scan.SliceSource(nil)
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return err
	}
	src, err := s.f.Open(s.ctx, s.day)
	if err != nil {
		s.err = err
		return err
	}
	s.src = src
	return nil
}

func (s *openSource) Next(buf []ip6.Addr) (int, error) {
	if err := s.open(); err != nil {
		return 0, s.attribute(err)
	}
	n, err := s.src.Next(buf)
	if err != nil && err != io.EOF {
		// Attribute mid-stream errors (a truncated hitlist file, a bad
		// read) to the feed, so multi-feed consumers know which import
		// failed; io.EOF is protocol, not failure, and passes through.
		err = s.attribute(err)
	}
	return n, err
}

func (s *openSource) attribute(err error) error {
	return fmt.Errorf("sources: feed %s at day %d: %w", s.f.Name, s.day, err)
}

func (s *openSource) Close() error {
	if s.src == nil {
		return nil
	}
	if c, ok := s.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

type feedSource struct {
	ctx     context.Context
	f       *Feed
	day     int
	started bool
	rest    []ip6.Addr
}

func (s *feedSource) collect() error {
	if s.started {
		return nil
	}
	s.started = true
	if !s.f.ActiveAt(s.day) {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	addrs, err := s.f.Collect(s.ctx, s.day)
	if err != nil {
		return fmt.Errorf("sources: feed %s at day %d: %w", s.f.Name, s.day, err)
	}
	s.rest = addrs
	return nil
}

func (s *feedSource) Next(buf []ip6.Addr) (int, error) {
	if err := s.collect(); err != nil {
		return 0, err
	}
	n := copy(buf, s.rest)
	s.rest = s.rest[n:]
	if len(s.rest) == 0 {
		return n, io.EOF
	}
	return n, nil
}

// Span implements scan.SpanSource: consumers read the collected list in
// place.
func (s *feedSource) Span(max int) ([]ip6.Addr, error) {
	if err := s.collect(); err != nil {
		return nil, err
	}
	if max > len(s.rest) {
		max = len(s.rest)
	}
	seg := s.rest[:max]
	s.rest = s.rest[max:]
	if len(s.rest) == 0 {
		return seg, io.EOF
	}
	return seg, nil
}

// HitlistFile builds a one-shot feed that streams a .hl6 binary hitlist
// (see internal/hlfile) straight off disk — the import path for real
// hitlist-scale snapshots: the feed layer holds no address list, the
// service's ingest pulls the mmap-backed reader chunk-wise. Note the
// consumer's own footprint still applies — core ingest routes one small
// record per candidate before its all-or-nothing admission sweep, so an
// import is scan-input-sized resident for that scan even under a memory
// budget (zmap6sim -hitlist is the truly constant-memory scan path).
// Like Snapshot, the window stays open for two weeks so the next
// scheduled scan picks it up; input dedup makes repeated delivery
// harmless.
func HitlistFile(name string, day int, path string) *Feed {
	return &Feed{
		Name:    name,
		FromDay: day,
		ToDay:   day + 14,
		Open: func(ctx context.Context, _ int) (scan.TargetSource, error) {
			return hlfile.OpenSource(path)
		},
	}
}

// Snapshot builds a one-shot feed that delivers a fixed address list (DET
// dumps, rDNS imports, Ark archives). The window stays open for two weeks
// so the next scheduled scan picks it up; the service's input dedup makes
// repeated delivery harmless.
func Snapshot(name string, day int, addrs []ip6.Addr) *Feed {
	cp := append([]ip6.Addr(nil), addrs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	return &Feed{
		Name:    name,
		FromDay: day,
		ToDay:   day + 14,
		Collect: func(context.Context, int) ([]ip6.Addr, error) { return cp, nil },
	}
}

// Recurring builds a feed that produces generate(day) on every day of
// [from, to).
func Recurring(name string, from, to int, generate func(day int) []ip6.Addr) *Feed {
	return &Feed{
		Name:    name,
		FromDay: from,
		ToDay:   to,
		Collect: func(_ context.Context, day int) ([]ip6.Addr, error) {
			return generate(day), nil
		},
	}
}

// TracerouteFeed wraps a Yarrp tracer into a feed: each collection
// traceroutes the targets chosen by pick(day) and contributes the
// discovered router interfaces. This is how rotating-IID routers — and
// with them the GFW-sensitive Chinese addresses — enter the input.
func TracerouteFeed(name string, from, to int, tracer *yarrp.Tracer, pick func(day int) []ip6.Addr) *Feed {
	return &Feed{
		Name:    name,
		FromDay: from,
		ToDay:   to,
		Collect: func(ctx context.Context, day int) ([]ip6.Addr, error) {
			targets := pick(day)
			found, err := tracer.Trace(ctx, targets, day)
			if err != nil {
				return nil, err
			}
			return found.Sorted(), nil
		},
	}
}

// RotatingCPE builds the ISP artifact feed of Section 4.1: a pool of CPE
// devices with EUI-64 interface identifiers whose ISP rotates the assigned
// /56 every rotationDays. Every rotation re-emits the same MACs under new
// prefixes, so the cumulative input grows while the per-day set stays flat.
// A skew parameter makes a few MACs appear in many distinct subnets (the
// paper's top EUI-64 value occurred in 240 k addresses).
type RotatingCPE struct {
	ISP          *netmodel.AS
	Base         ip6.Prefix // pool of customer prefixes, e.g. a /32
	MACs         int        // distinct CPE devices
	PerDay       int        // devices observed per collection day
	RotationDays int
	Seed         uint64
}

// Feed converts the pool into a recurring feed over [from, to).
func (c RotatingCPE) Feed(name string, from, to int) *Feed {
	return Recurring(name, from, to, func(day int) []ip6.Addr {
		out := make([]ip6.Addr, 0, c.PerDay)
		period := uint64(0)
		if c.RotationDays > 0 {
			period = uint64(day) / uint64(c.RotationDays)
		}
		r := rng.NewStream(rng.Mix(c.Seed, uint64(day), 0xc3e), "cpe-day")
		for i := 0; i < c.PerDay; i++ {
			// Zipf-ish device choice: low device indices are observed
			// (and re-observed) most, heavy devices span many subnets.
			dev := uint64(r.Intn(c.MACs))
			if r.Bool(0.3) {
				dev = uint64(r.Intn(c.MACs/100 + 1))
			}
			mac := macFor(c.Seed, dev)
			// The customer /56 rotates with the period; the /64 inside
			// is the device's LAN.
			sub := rng.Mix(c.Seed, dev, period, 0x5ef) % (1 << 24)
			p64 := ip6.PrefixFrom(ip6.AddrFromUint64s(
				c.Base.Addr().Hi()|sub<<8, 0), 64)
			out = append(out, ip6.AddrFromMAC(p64, mac))
		}
		return out
	})
}

func macFor(seed, dev uint64) ip6.MAC {
	h := rng.Mix(seed, dev, 0x3ac)
	// A ZTE-like OUI for the heavy devices, mixed vendors for the rest.
	oui := [3]byte{0x00, 0x1e, 0x73}
	if dev%5 != 0 {
		oui = [3]byte{byte(0x28 + dev%7), byte(h >> 40), byte(h >> 32)}
	}
	return ip6.MAC{oui[0], oui[1], oui[2], byte(h >> 16), byte(h >> 8), byte(h)}
}
