package netmodel

import "time"

// The simulation clock counts days since the IPv6 Hitlist service started
// publishing data (2018-07-01). All world events (host births, GFW eras,
// the Trafficforce announcement) and scans are dated on this axis.

// Epoch is day 0 of the simulation.
var Epoch = time.Date(2018, 7, 1, 0, 0, 0, 0, time.UTC)

// Forever marks an open-ended interval.
const Forever = 1 << 30

// DayOf converts a calendar date to a simulation day.
func DayOf(year int, month time.Month, day int) int {
	d := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return int(d.Sub(Epoch).Hours() / 24)
}

// DateOf converts a simulation day back to a calendar date.
func DateOf(day int) time.Time { return Epoch.AddDate(0, 0, day) }

// DateString formats a simulation day as YYYY-MM-DD.
func DateString(day int) string { return DateOf(day).Format("2006-01-02") }

// Well-known snapshot days used throughout the evaluation (the paper's
// Table 1 snapshot dates).
var (
	Day2018 = DayOf(2018, 7, 1)
	Day2019 = DayOf(2019, 4, 1)
	Day2020 = DayOf(2020, 4, 1)
	Day2021 = DayOf(2021, 4, 2)
	Day2022 = DayOf(2022, 4, 7)
)
