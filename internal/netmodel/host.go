package netmodel

import (
	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// DNSBehavior classifies how a UDP/53-responsive host answers queries.
// Section 4.2 of the paper probes the DNS-responsive remainder with a
// unique-hash subdomain and observes these classes.
type DNSBehavior uint8

// DNS behaviour classes.
const (
	DNSNone         DNSBehavior = iota // does not answer DNS
	DNSRefusing                        // authoritative/resolver answering with an error status (93.8 %)
	DNSOpenResolver                    // recursive resolver producing the correct record (4.6 %)
	DNSReferral                        // refers to root / parent zone (593 targets)
	DNSProxy                           // correct record, but recursion exits elsewhere (15 targets)
	DNSBroken                          // junk: bad status codes, referral to localhost (1.1 %)
)

// String names the behaviour class.
func (b DNSBehavior) String() string {
	switch b {
	case DNSNone:
		return "none"
	case DNSRefusing:
		return "refusing"
	case DNSOpenResolver:
		return "open-resolver"
	case DNSReferral:
		return "referral"
	case DNSProxy:
		return "proxy"
	case DNSBroken:
		return "broken"
	}
	return "unknown"
}

// Host is a single responsive end host (or router interface) in the world.
type Host struct {
	Addr   ip6.Addr
	Protos ProtoSet

	// BornDay..DeathDay (exclusive) bound the host's lifetime.
	BornDay  int
	DeathDay int

	// UptimePermille is the per-epoch probability (in 1/1000) that the
	// host answers during an availability epoch; it produces the churn of
	// Figure 4. 1000 means always up.
	UptimePermille uint16

	// FP is the host's TCP fingerprint.
	FP TCPFingerprint

	// DNS is the behaviour class when probed on UDP/53.
	DNS DNSBehavior

	// MTU is the link MTU for TBT purposes (usually 1500).
	MTU uint16

	// DownFrom/DownTo define an optional long outage window during which
	// the host is silent. Hosts with outages longer than the service's
	// 30-day filter get evicted and — because the filter never re-tests —
	// stay lost until a re-scan of the unresponsive pool finds them again
	// (the Section 6 "unresponsive addresses" source).
	DownFrom, DownTo int
}

// availEpochDays is the length of a host availability epoch: the up/down
// draw is constant within an epoch, so scans a day apart see little churn
// while scans a week apart see more — matching the increased churn the
// paper observes when scan runtime grew.
const availEpochDays = 10

// aliveAt reports whether the host exists at the given day.
func (h *Host) aliveAt(day int) bool {
	return day >= h.BornDay && day < h.DeathDay
}

// upAt reports whether the host answers probes at the given day: alive,
// outside any outage window, and drawn "up" for the availability epoch
// covering day. The draw is a pure function of (address, epoch) so any
// observer sees a consistent world.
func (h *Host) upAt(day int) bool {
	if !h.aliveAt(day) {
		return false
	}
	if h.DownTo > h.DownFrom && day >= h.DownFrom && day < h.DownTo {
		return false
	}
	if h.UptimePermille >= 1000 {
		return true
	}
	// Per-host phase offset decorrelates epoch boundaries across hosts.
	phase := rng.Mix(h.Addr.Hi(), h.Addr.Lo(), 0xeb0c) % availEpochDays
	epoch := (uint64(day) + phase) / availEpochDays
	return rng.Mix(h.Addr.Hi(), h.Addr.Lo(), epoch, 0x0b5e)%1000 < uint64(h.UptimePermille)
}

// RespondsTo reports whether the host answers protocol p at the given day.
func (h *Host) RespondsTo(p Protocol, day int) bool {
	return h.Protos.Has(p) && h.upAt(day)
}
