package netmodel

import (
	"sync"

	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// AliasRule makes a whole prefix fully responsive: every address inside
// answers the rule's protocols. Backends controls how many distinct
// servers stand behind the prefix:
//
//   - Backends == 1 models a true alias — a single host answering for the
//     complete prefix (the original IPv6 Hitlist definition);
//   - small Backends (2–16) model CDN load-balancing fleets where subsets
//     of addresses share a server, which the Too Big Trick exposes as
//     partially shared PMTU caches (Akamai/Cloudflare in the paper);
//   - large Backends model per-address termination (no sharing visible).
type AliasRule struct {
	Prefix ip6.Prefix
	AS     *AS

	Protos   ProtoSet
	Backends int

	BornDay  int
	DeathDay int

	// FP is the fleet's base TCP fingerprint. If WindowJitter is true,
	// each backend perturbs the TCP window size — the small population of
	// prefixes whose fingerprints differ in the paper (160 of 33.5 k).
	FP           TCPFingerprint
	WindowJitter bool

	// HostsDomains marks CDN prefixes that serve websites; the domain
	// registry places domains inside these.
	HostsDomains bool

	// DNS is the behaviour on UDP/53 when Protos includes it (e.g.
	// Cloudflare's anycast resolvers).
	DNS DNSBehavior

	// MTU is the served MTU (for TBT, usually 1500).
	MTU uint16
}

// activeAt reports whether the rule is in force at the given day.
func (r *AliasRule) activeAt(day int) bool {
	return day >= r.BornDay && day < r.DeathDay
}

// BackendOf maps an address to the backend index serving it.
func (r *AliasRule) BackendOf(a ip6.Addr) int {
	if r.Backends <= 1 {
		return 0
	}
	return int(rng.Mix(a.Hi(), a.Lo(), uint64(r.Prefix.Bits()), 0xbac4) % uint64(r.Backends))
}

// FingerprintFor returns the TCP fingerprint an observer sees when
// handshaking with address a under this rule.
func (r *AliasRule) FingerprintFor(a ip6.Addr) TCPFingerprint {
	fp := r.FP
	if r.WindowJitter {
		b := uint64(r.BackendOf(a))
		fp.Window = uint16(16384 + rng.Mix(b, r.Prefix.Addr().Hi(), 0x11f)%49152)
	}
	return fp
}

// pmtuKey identifies one PMTU cache: a concrete host address, or one
// backend of an aliased prefix.
type pmtuKey struct {
	prefix  ip6.Prefix
	backend int
	host    ip6.Addr
}

// pmtuCache is the mutable part of the world: Packet-Too-Big messages
// poison per-server PMTU caches, which the Too Big Trick then reads back
// through fragmented echo replies. Entries expire after pmtuHoldDays.
type pmtuCache struct {
	mu      sync.Mutex
	entries map[pmtuKey]pmtuEntry
}

type pmtuEntry struct {
	mtu uint16
	day int
}

const pmtuHoldDays = 1

func newPMTUCache() *pmtuCache {
	return &pmtuCache{entries: make(map[pmtuKey]pmtuEntry)}
}

func (c *pmtuCache) set(k pmtuKey, mtu uint16, day int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[k]; ok && cur.day == day && cur.mtu < mtu {
		return // keep the smaller learned MTU
	}
	c.entries[k] = pmtuEntry{mtu: mtu, day: day}
}

func (c *pmtuCache) get(k pmtuKey, day int) (uint16, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || day-e.day > pmtuHoldDays {
		return 0, false
	}
	return e.mtu, true
}

func (c *pmtuCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[pmtuKey]pmtuEntry)
}
