// Package netmodel implements the synthetic IPv6 Internet the hitlist
// service is measured against.
//
// The real paper probes the live Internet from a German vantage point over
// four years. That substrate is gated (scanning infrastructure, time), so
// this package provides the closest synthetic equivalent: an addressable
// "world" of autonomous systems, BGP announcements, host populations with
// growth and churn, fully responsive (aliased) prefixes backed by one or
// many servers, a Great-Firewall DNS injector, and router paths for
// traceroute. The scanner (internal/scan) and every filter in the pipeline
// interact with it only through probes and responses, never through ground
// truth, so the measurement code paths are the same as against the real
// Internet.
package netmodel

import "fmt"

// Protocol identifies one of the five protocols the IPv6 Hitlist probes.
type Protocol uint8

// The probed protocols, in the paper's order.
const (
	ICMP Protocol = iota
	TCP443
	TCP80
	UDP443
	UDP53
	NumProtocols = 5
)

// Protocols lists all probed protocols in canonical (paper table) order.
var Protocols = [NumProtocols]Protocol{ICMP, TCP443, TCP80, UDP443, UDP53}

// String returns the paper's notation, e.g. "TCP/80".
func (p Protocol) String() string {
	switch p {
	case ICMP:
		return "ICMP"
	case TCP80:
		return "TCP/80"
	case TCP443:
		return "TCP/443"
	case UDP53:
		return "UDP/53"
	case UDP443:
		return "UDP/443"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// ParseProtocol parses the notation produced by String.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range Protocols {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("netmodel: unknown protocol %q", s)
}

// ProtoSet is a bitmask over Protocol.
type ProtoSet uint8

// ProtoSetOf builds a set from protocols.
func ProtoSetOf(ps ...Protocol) ProtoSet {
	var s ProtoSet
	for _, p := range ps {
		s |= 1 << p
	}
	return s
}

// AllProtocols is the set of every probed protocol.
var AllProtocols = ProtoSetOf(ICMP, TCP80, TCP443, UDP53, UDP443)

// Has reports whether p is in the set.
func (s ProtoSet) Has(p Protocol) bool { return s&(1<<p) != 0 }

// With returns the set with p added.
func (s ProtoSet) With(p Protocol) ProtoSet { return s | 1<<p }

// Without returns the set with p removed.
func (s ProtoSet) Without(p Protocol) ProtoSet { return s &^ (1 << p) }

// Empty reports whether no protocol is set.
func (s ProtoSet) Empty() bool { return s == 0 }

// Count returns the number of protocols in the set.
func (s ProtoSet) Count() int {
	n := 0
	for _, p := range Protocols {
		if s.Has(p) {
			n++
		}
	}
	return n
}

// String lists the members, e.g. "ICMP+TCP/80".
func (s ProtoSet) String() string {
	if s == 0 {
		return "none"
	}
	out := ""
	for _, p := range Protocols {
		if s.Has(p) {
			if out != "" {
				out += "+"
			}
			out += p.String()
		}
	}
	return out
}

// TCPFingerprint captures the TCP handshake features the paper's
// fingerprinting uses (Section 5.1): an order-preserving string of TCP
// options, window size, window scale, MSS, and the initial TTL rounded to
// the next power of two (iTTL).
type TCPFingerprint struct {
	Optionstext string
	Window      uint16
	WScale      uint8
	MSS         uint16
	ITTL        uint8
}

// Equal reports whether two fingerprints match on all features.
func (f TCPFingerprint) Equal(g TCPFingerprint) bool { return f == g }

// EqualIgnoringWindow compares all features except the window size, which
// legitimately varies across connections to the same host.
func (f TCPFingerprint) EqualIgnoringWindow(g TCPFingerprint) bool {
	f.Window = 0
	g.Window = 0
	return f == g
}

// RoundITTL rounds an observed hop-decremented TTL up to the likely initial
// TTL (next power of two, capped at 255), as done by Backes et al. and the
// hitlist fingerprinting.
func RoundITTL(observed uint8) uint8 {
	switch {
	case observed <= 32:
		return 32
	case observed <= 64:
		return 64
	case observed <= 128:
		return 128
	default:
		return 255
	}
}

// Stock fingerprint profiles used by the world generator. Distinct profiles
// indicate distinct hosts; a uniform profile across an aliased prefix is
// consistent with a single host or a centrally administered fleet.
var (
	FPLinux     = TCPFingerprint{Optionstext: "MSS-SACK-TS-NOP-WS", Window: 64240, WScale: 7, MSS: 1440, ITTL: 64}
	FPLinuxLB   = TCPFingerprint{Optionstext: "MSS-SACK-TS-NOP-WS", Window: 65535, WScale: 9, MSS: 1440, ITTL: 64}
	FPBSD       = TCPFingerprint{Optionstext: "MSS-NOP-WS-SACK-TS", Window: 65535, WScale: 6, MSS: 1440, ITTL: 64}
	FPWindows   = TCPFingerprint{Optionstext: "MSS-NOP-WS-NOP-NOP-SACK", Window: 65535, WScale: 8, MSS: 1440, ITTL: 128}
	FPEmbedded  = TCPFingerprint{Optionstext: "MSS", Window: 5840, WScale: 0, MSS: 1220, ITTL: 64}
	FPMiddlebox = TCPFingerprint{Optionstext: "MSS-SACK-NOP-WS", Window: 29200, WScale: 5, MSS: 1380, ITTL: 255}
)

// FPProfiles enumerates the stock profiles for deterministic assignment.
var FPProfiles = []TCPFingerprint{FPLinux, FPLinuxLB, FPBSD, FPWindows, FPEmbedded, FPMiddlebox}
