package netmodel

import (
	"sort"

	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// Hop is one traceroute hop.
type Hop struct {
	TTL       int
	Addr      ip6.Addr
	Responded bool
}

// routerAddr synthesizes a router interface address inside as. Stable
// routers use low interface identifiers inside a router subnet; rotating
// routers (RouterRotationDays > 0) draw a fresh randomized IID every
// rotation period — these are exactly the short-lived addresses that
// accumulate in the hitlist input and, for Chinese ASes, trigger GFW
// injections when scanned later.
func routerAddr(as *AS, subnet, router uint64, day int) ip6.Addr {
	if len(as.Announced) == 0 {
		return ip6.Addr{}
	}
	base := as.Announced[int(subnet%uint64(len(as.Announced)))]
	// A router /64 inside the announcement.
	hi := base.Addr().Hi() | (rng.Mix(uint64(as.ASN), subnet, 0x707e)%(1<<16))<<8
	if as.RouterRotationDays > 0 {
		period := uint64(day) / uint64(as.RouterRotationDays)
		lo := rng.Mix(uint64(as.ASN), subnet, router, period, 0x201d)
		return ip6.AddrFromUint64s(hi, lo)
	}
	return ip6.AddrFromUint64s(hi, router+1)
}

// transitASes returns the backbone ASes, cached after first use.
func (n *Network) transitASes() []*AS {
	if n.transit != nil {
		return n.transit
	}
	var out []*AS
	for _, as := range n.AS.All() {
		if as.Category == CatTransit {
			out = append(out, as)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	n.transit = out
	return out
}

// Traceroute performs a Yarrp-style path measurement towards target and
// returns the hops that answered, in TTL order. Router responsiveness is
// drawn per (router, day) so repeated runs in a day agree.
func (n *Network) Traceroute(target ip6.Addr, day, maxHops int) []Hop {
	var hops []Hop
	ttl := 1

	// Vantage-side transit routers, selected by the destination region so
	// paths are stable per target block.
	region := target.Hi() >> 32
	transits := n.transitASes()
	if len(transits) > 0 {
		k := 2 + int(rng.Mix(region, 0x7a17)%3)
		if k > maxHops {
			k = maxHops
		}
		for i := 0; i < k; i++ {
			as := transits[int(rng.Mix(region, uint64(i), 0x1271)%uint64(len(transits)))]
			addr := routerAddr(as, rng.Mix(region, uint64(i)), uint64(i), day)
			responded := rng.Mix(addr.Hi(), addr.Lo(), uint64(day), 0x4e5)%100 < 92
			hops = append(hops, Hop{TTL: ttl, Addr: addr, Responded: responded})
			ttl++
		}
	}

	// Destination-side routers inside the target's AS.
	as := n.AS.Lookup(target)
	if as != nil && len(as.Announced) > 0 && ttl <= maxHops {
		k := 1 + int(rng.Mix(target.Hi(), 0xde57)%3)
		for i := 0; i < k && ttl <= maxHops; i++ {
			subnet := rng.Mix(target.Hi(), uint64(i), 0x50b)
			addr := routerAddr(as, subnet, uint64(i), day)
			responded := rng.Mix(addr.Hi(), addr.Lo(), uint64(day), 0x4e5)%100 < 88
			hops = append(hops, Hop{TTL: ttl, Addr: addr, Responded: responded})
			ttl++
		}
	}

	// The target itself, when it answers ICMP (alias rules included).
	if ttl <= maxHops && n.resolve(target, ip6.ShardOf(target), day).responds(ICMP, day) {
		hops = append(hops, Hop{TTL: ttl, Addr: target, Responded: true})
	}

	// Drop silent hops — Yarrp only reports answering interfaces.
	out := hops[:0]
	for _, h := range hops {
		if h.Responded {
			out = append(out, h)
		}
	}
	return out
}
