package netmodel

// WireArena recycles the wire-format DNS reply buffers and the [][]byte
// response lists the network builds for Probe responses. The streaming
// scan engine pairs one arena with each result batch: replies for the
// batch's probes are appended into recycled slots, and when the batch's
// buffer returns to the pool the arena is Reset and every slot becomes
// reusable — DNS payloads pool through batch recycling exactly like the
// Result rows themselves, instead of being freshly heap-allocated per
// probe and dropped at recycle.
//
// The protocol is pairwise: each reply buffer starts from Wire() and is
// handed back through Seal() once fully appended (the sealed, possibly
// grown slice replaces the slot so Reset reuses the final backing
// array); response lists do the same through List()/SealList(). Wire
// pairs may interleave freely with an open List pair — the two kinds
// use independent slot cursors — but two Wire (or two List) pairs must
// not nest. A nil *WireArena is valid everywhere and degrades to plain
// heap allocation, so call sites never branch on arena presence.
//
// An arena is single-goroutine state, like the batch it rides with.
type WireArena struct {
	wires [][]byte
	nw    int
	lists [][][]byte
	nl    int
}

// Wire returns an empty byte slice to append one reply message into,
// backed by a recycled buffer when one is free. Pair with Seal.
func (a *WireArena) Wire() []byte {
	if a == nil {
		return nil
	}
	if a.nw < len(a.wires) {
		b := a.wires[a.nw][:0]
		a.nw++
		return b
	}
	a.nw++
	a.wires = append(a.wires, nil)
	return nil
}

// Seal records the final slice of the most recent Wire so Reset can
// reuse its (possibly grown) backing array, and returns it unchanged.
func (a *WireArena) Seal(wire []byte) []byte {
	if a != nil {
		a.wires[a.nw-1] = wire
	}
	return wire
}

// List returns an empty response list, backed by a recycled slot when
// one is free. Pair with SealList.
func (a *WireArena) List() [][]byte {
	if a == nil {
		return nil
	}
	if a.nl < len(a.lists) {
		l := a.lists[a.nl][:0]
		a.nl++
		return l
	}
	a.nl++
	a.lists = append(a.lists, nil)
	return nil
}

// SealList records the final slice of the most recent List and returns
// it unchanged.
func (a *WireArena) SealList(l [][]byte) [][]byte {
	if a != nil {
		a.lists[a.nl-1] = l
	}
	return l
}

// Reset makes every slot reusable. Only call once every response built
// from the arena has been fully consumed (or deep-copied): the slices
// handed out since the previous Reset alias arena memory.
func (a *WireArena) Reset() {
	if a != nil {
		a.nw, a.nl = 0, 0
	}
}
