package netmodel

import (
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// probeSample builds a deterministic mix of probe targets: registered
// hosts, aliased addresses, dark addresses inside announced space, and
// unrouted space.
func probeSample(net *Network) []ip6.Addr {
	targets := []ip6.Addr{
		ip6.MustParseAddr("2001:4d00::80"),   // web host
		ip6.MustParseAddr("2001:4d00::53"),   // DNS host
		ip6.MustParseAddr("2001:4d00::f1"),   // flaky host
		ip6.MustParseAddr("2001:4d00::dead"), // dark, routed
		ip6.MustParseAddr("3fff::1"),         // unrouted
		ip6.MustParseAddr("240e::1234"),      // GFW space, no host
	}
	r := rng.NewStream(7, "seal-test")
	for _, pfx := range []string{"2600:9000:1::/48", "2602:1111:0:1::/64", "240e::/20", "2001:4d00::/32"} {
		p := ip6.MustParsePrefix(pfx)
		for i := 0; i < 16; i++ {
			targets = append(targets, p.RandomAddr(r))
		}
	}
	return targets
}

// TestSealedProbesMatchMapPath pins the frozen host index (and the frozen
// alias/AS prefix indexes Seal builds alongside it) to the map path: every
// probe must produce a byte-identical response sealed or unsealed.
func TestSealedProbesMatchMapPath(t *testing.T) {
	run := func(net *Network) []Response {
		var out []Response
		for _, target := range probeSample(net) {
			for _, day := range []int{0, 10, 150, 350} {
				out = append(out,
					net.Probe(Probe{Kind: EchoRequest, Target: target, Day: day, Size: 64}),
					net.Probe(Probe{Kind: TCPSYN, Target: target, Day: day, Port: 80}),
					net.Probe(Probe{Kind: TCPSYN, Target: target, Day: day, Port: 443}),
					net.Probe(Probe{Kind: QUICInitial, Target: target, Day: day, Port: 443}),
					net.Probe(dnsProbe(t, target, day, "www.google.com")),
					net.Probe(dnsProbe(t, target, day, "abc.hitlist-exp.example")),
				)
			}
		}
		return out
	}

	unsealed := run(testWorld(t))
	sealedNet := testWorld(t)
	sealedNet.Seal()
	if !sealedNet.Sealed() {
		t.Fatal("Seal did not take")
	}
	sealed := run(sealedNet)

	if len(unsealed) != len(sealed) {
		t.Fatalf("response counts differ: %d vs %d", len(unsealed), len(sealed))
	}
	for i := range unsealed {
		a, b := unsealed[i], sealed[i]
		if a.Kind != b.Kind || a.Fragmented != b.Fragmented || a.FP != b.FP ||
			a.InjectedCount != b.InjectedCount || len(a.DNS) != len(b.DNS) {
			t.Fatalf("probe %d: responses diverge: %+v vs %+v", i, a, b)
		}
		for j := range a.DNS {
			if string(a.DNS[j]) != string(b.DNS[j]) {
				t.Fatalf("probe %d message %d: wire bytes diverge\n%x\n%x", i, j, a.DNS[j], b.DNS[j])
			}
		}
	}
}

// TestSealInvalidatedByAddHost: hosts registered after a Seal must be
// visible (the seal drops back to the map path).
func TestSealInvalidatedByAddHost(t *testing.T) {
	net := testWorld(t)
	net.Seal()
	late := ip6.MustParseAddr("2001:4d00::1a7e")
	net.AddHost(&Host{Addr: late, Protos: ProtoSetOf(ICMP), BornDay: 0, DeathDay: Forever,
		UptimePermille: 1000, MTU: 1500})
	if net.Sealed() {
		t.Fatal("AddHost did not drop the seal")
	}
	if r := net.Probe(Probe{Kind: EchoRequest, Target: late, Day: 5, Size: 8}); r.Kind != RespEchoReply {
		t.Fatalf("late host invisible after seal invalidation: %+v", r)
	}
	// Resealing indexes the new host too.
	net.Seal()
	if r := net.Probe(Probe{Kind: EchoRequest, Target: late, Day: 5, Size: 8}); r.Kind != RespEchoReply {
		t.Fatalf("late host invisible after reseal: %+v", r)
	}
}

// TestStripedProbeCounter: the striped counter must aggregate exactly.
func TestStripedProbeCounter(t *testing.T) {
	net := testWorld(t)
	r := rng.NewStream(3, "counter-test")
	p := ip6.MustParsePrefix("2001:4d00::/32")
	const n = 500
	for i := 0; i < n; i++ {
		net.Probe(Probe{Kind: EchoRequest, Target: p.RandomAddr(r), Day: 1, Size: 8})
	}
	if got := net.ProbeCount(); got != n {
		t.Fatalf("ProbeCount = %d, want %d", got, n)
	}
}
