package netmodel

import (
	"encoding/binary"
	"sync"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// InjectionMode selects the record shape the injector forges. The paper
// observed A-record injection in the earlier events and Teredo-carrying
// AAAA records in the 2021/2022 event.
type InjectionMode uint8

// Injection modes.
const (
	InjectA InjectionMode = iota
	InjectTeredo
)

// InjectionEra is one period of GFW DNS-injection behaviour as seen from
// the (non-Chinese) vantage point. The three spikes in Figure 3 correspond
// to three eras.
type InjectionEra struct {
	StartDay int
	EndDay   int
	Mode     InjectionMode
}

// GFWModel simulates the Great Firewall's DNS injection at the border of
// Chinese networks: any UDP/53 query for a censored domain whose target
// sits inside an affected AS receives multiple forged answers, regardless
// of whether the target host exists.
type GFWModel struct {
	// AffectedASNs are the Chinese ASes whose inbound paths cross an
	// injector.
	AffectedASNs map[int]bool

	// BlockedDomains are censored names (and all their subdomains).
	BlockedDomains map[string]bool

	// Eras are injection periods; outside every era the injector is
	// silent towards our vantage point.
	Eras []InjectionEra

	// WrongIPv4s is the pool of valid, routed but unrelated IPv4
	// addresses forged answers carry (the paper maps them to Facebook,
	// Microsoft, Dropbox and others).
	WrongIPv4s []ip6.IPv4

	// TeredoServers is the pool of server IPv4s embedded into forged
	// Teredo addresses.
	TeredoServers []ip6.IPv4

	seed uint64

	// templates caches one encoded reply per (question, flags, answer
	// type): injection re-encodes the same handful of censored qnames
	// millions of times, so forging becomes one copy with the ID, TTL
	// and rdata patched in place. Keyed by injectKey.
	templates sync.Map

	// noTemplates disables the cache (the equivalence test's knob for
	// the always-encode reference path).
	noTemplates bool
}

// injectKey identifies one cached forged-reply template. Everything the
// encoded bytes depend on is in the key except ID, TTL and rdata, which
// are patched per injection (rdata length is fixed by ansType).
type injectKey struct {
	name    string
	qtype   dnswire.Type
	qclass  dnswire.Class
	rd      bool
	ansType dnswire.Type
}

// injectTemplate is the cached encoding plus its patch offsets. The ID
// lives at offset 0; the answer's TTL and rdata sit at fixed trailing
// offsets because the record is the last thing AppendReply emits.
type injectTemplate struct {
	wire   []byte
	ttlOff int
	rdOff  int
}

// NewGFWModel builds an injector with the default forged-address pools.
func NewGFWModel(seed uint64) *GFWModel {
	g := &GFWModel{
		AffectedASNs:   make(map[int]bool),
		BlockedDomains: make(map[string]bool),
		seed:           seed,
	}
	// Synthetic stand-ins for the unrelated operators the paper names
	// (documentation/test ranges are avoided so they look "generally
	// routed" to the filter).
	g.WrongIPv4s = []ip6.IPv4{
		{31, 13, 94, 37},    // Facebook-like
		{157, 240, 17, 35},  // Facebook-like
		{13, 107, 21, 200},  // Microsoft-like
		{204, 79, 197, 200}, // Microsoft-like
		{162, 125, 2, 6},    // Dropbox-like
		{199, 16, 158, 9},   // Twitter-like
		{69, 63, 184, 14},   // Facebook-like
		{108, 160, 166, 9},  // Dropbox-like
	}
	g.TeredoServers = []ip6.IPv4{
		{65, 54, 227, 120}, // teredo.ipv6.microsoft.com-like
		{94, 245, 121, 253},
	}
	return g
}

// Blocked reports whether qname (or a parent domain) is censored.
func (g *GFWModel) Blocked(qname string) bool {
	qname = dnswire.NormalizeName(qname)
	for qname != "" {
		if g.BlockedDomains[qname] {
			return true
		}
		dot := -1
		for i := 0; i < len(qname); i++ {
			if qname[i] == '.' {
				dot = i
				break
			}
		}
		if dot < 0 {
			return false
		}
		qname = qname[dot+1:]
	}
	return false
}

// eraAt returns the active era at the given day, if any.
func (g *GFWModel) eraAt(day int) (InjectionEra, bool) {
	for _, e := range g.Eras {
		if day >= e.StartDay && day < e.EndDay {
			return e, true
		}
	}
	return InjectionEra{}, false
}

// ActiveAt reports whether any injection era covers the day.
func (g *GFWModel) ActiveAt(day int) bool {
	_, ok := g.eraAt(day)
	return ok
}

// Inject returns the forged wire-format responses for a query towards
// target, or nil when the injector stays silent. Multiple injectors on the
// path produce two or three answers, as the paper observed ("ZMap
// accumulated two or three responses for each scanned address"). txid is
// the per-probe transaction ID the forged replies echo; query may be a
// shared read-only template (its Header.ID is ignored).
func (g *GFWModel) Inject(target ip6.Addr, targetAS *AS, query *dnswire.Message, txid uint16, day int) [][]byte {
	return g.injectInto(nil, target, targetAS, query, txid, day)
}

// injectInto is Inject with the forged replies built from arena slots
// (nil arena falls back to heap allocation — the public path).
func (g *GFWModel) injectInto(arena *WireArena, target ip6.Addr, targetAS *AS, query *dnswire.Message, txid uint16, day int) [][]byte {
	if targetAS == nil || !g.AffectedASNs[targetAS.ASN] {
		return nil
	}
	era, ok := g.eraAt(day)
	if !ok {
		return nil
	}
	if len(query.Questions) == 0 {
		return nil
	}
	q := query.Questions[0]
	if !g.Blocked(q.Name) {
		// Unblocked domains — including the authors' own — draw no
		// answer at all, not even a DNS error.
		return nil
	}
	hdr := dnswire.Header{
		ID:                 txid,
		Response:           true,
		RecursionDesired:   query.Header.RecursionDesired,
		RecursionAvailable: true,
		RCode:              dnswire.RCodeNoError,
	}
	n := 2 + int(rng.Mix(g.seed, target.Hi(), target.Lo(), uint64(day), 0x6f3)%2)
	out := arena.List()
	if out == nil {
		out = make([][]byte, 0, n)
	}
	for i := 0; i < n; i++ {
		h := rng.Mix(g.seed, target.Hi(), target.Lo(), uint64(day), uint64(i), 0x9a1)
		ttl := 60 + uint32(h%240)
		var wire []byte
		var err error
		switch era.Mode {
		case InjectA:
			// An A record answering an AAAA question: the signature of
			// the first two events. One allocation per forged message —
			// the old Reply+Encode pair burned six on the same bytes.
			a := g.WrongIPv4s[h%uint64(len(g.WrongIPv4s))]
			wire, err = g.forge(arena, hdr, query, dnswire.TypeA, ttl, a[:])
		case InjectTeredo:
			server := g.TeredoServers[h%uint64(len(g.TeredoServers))]
			client := g.WrongIPv4s[(h>>8)%uint64(len(g.WrongIPv4s))]
			aaaa := ip6.TeredoAddr(server, client)
			wire, err = g.forge(arena, hdr, query, dnswire.TypeAAAA, ttl, aaaa[:])
		}
		if err != nil {
			// The forged reply is built from validated parts; failing to
			// encode indicates a programming error.
			panic("netmodel: encoding injected response: " + err.Error())
		}
		out = append(out, wire)
	}
	return arena.SealList(out)
}

// forge encodes one injected reply: the cached-template fast path for
// the single-question queries every scanner sends, the generic encoder
// (byte-identical for this shape) for anything else.
func (g *GFWModel) forge(arena *WireArena, hdr dnswire.Header, query *dnswire.Message, ansType dnswire.Type, ttl uint32, rdata []byte) ([]byte, error) {
	q := query.Questions[0]
	if len(query.Questions) == 1 {
		if g.noTemplates {
			wire, err := dnswire.AppendReply(arena.Wire(), hdr, q, ansType, ttl, rdata)
			if err != nil {
				return nil, err
			}
			return arena.Seal(wire), nil
		}
		return g.forgeFromTemplate(arena, hdr, q, ansType, ttl, rdata)
	}
	reply := &dnswire.Message{Header: hdr, Questions: query.Questions}
	rr := dnswire.RR{Name: q.Name, Type: ansType, TTL: ttl}
	switch ansType {
	case dnswire.TypeA:
		copy(rr.A[:], rdata)
	case dnswire.TypeAAAA:
		copy(rr.AAAA[:], rdata)
	}
	reply.Answers = append(reply.Answers, rr)
	return reply.Encode()
}

// forgeFromTemplate copies the cached encoding for this question shape
// and patches the three per-injection fields in place. AppendReply lays
// the message out as header (ID at 0, flags at 2), question, then a
// single answer whose TTL(4), rdlen(2), rdata trail the buffer — so the
// patch offsets are len-relative constants captured at template build.
func (g *GFWModel) forgeFromTemplate(arena *WireArena, hdr dnswire.Header, q dnswire.Question, ansType dnswire.Type, ttl uint32, rdata []byte) ([]byte, error) {
	key := injectKey{name: q.Name, qtype: q.Type, qclass: q.Class, rd: hdr.RecursionDesired, ansType: ansType}
	v, ok := g.templates.Load(key)
	if !ok {
		proto := hdr
		proto.ID = 0
		tw, err := dnswire.AppendReply(nil, proto, q, ansType, 0, make([]byte, len(rdata)))
		if err != nil {
			return nil, err
		}
		rdOff := len(tw) - len(rdata)
		v, _ = g.templates.LoadOrStore(key, &injectTemplate{wire: tw, ttlOff: rdOff - 6, rdOff: rdOff})
	}
	t := v.(*injectTemplate)
	wire := arena.Seal(append(arena.Wire(), t.wire...))
	binary.BigEndian.PutUint16(wire, hdr.ID)
	binary.BigEndian.PutUint32(wire[t.ttlOff:], ttl)
	copy(wire[t.rdOff:], rdata)
	return wire, nil
}
