package netmodel

import (
	"testing"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// TestTrueRespondsMatchesProbe: the ground-truth oracle and the wire-level
// probe path must agree for every protocol on a mixed population.
func TestTrueRespondsMatchesProbe(t *testing.T) {
	net := testWorld(t)
	r := rng.NewStream(4, "consistency")

	var targets []ip6.Addr
	// Hosts, alias space, CN ghosts, unrouted.
	targets = append(targets,
		ip6.MustParseAddr("2001:4d00::80"),
		ip6.MustParseAddr("2001:4d00::53"),
		ip6.MustParseAddr("2001:4d00::f1"),
		ip6.MustParseAddr("3fff::1"),
	)
	for i := 0; i < 32; i++ {
		targets = append(targets, ip6.MustParsePrefix("2600:9000:1::/48").RandomAddr(r))
		targets = append(targets, ip6.MustParsePrefix("240e::/20").RandomAddr(r))
		targets = append(targets, ip6.MustParsePrefix("2001:4d00::/32").RandomAddr(r))
	}

	for _, day := range []int{10, 150, 350} {
		for _, target := range targets {
			for _, proto := range Protocols {
				truth := net.TrueResponds(target, proto, day)
				var probe Probe
				switch proto {
				case ICMP:
					probe = Probe{Kind: EchoRequest, Target: target, Day: day, Size: 8}
				case TCP80:
					probe = Probe{Kind: TCPSYN, Target: target, Day: day, Port: 80}
				case TCP443:
					probe = Probe{Kind: TCPSYN, Target: target, Day: day, Port: 443}
				case UDP443:
					probe = Probe{Kind: QUICInitial, Target: target, Day: day, Port: 443}
				case UDP53:
					q := dnswire.NewQuery(9, "www.google.com", dnswire.TypeAAAA)
					wire, _ := q.Encode()
					probe = Probe{Kind: DNSQuery, Target: target, Day: day, Payload: wire}
				}
				resp := net.Probe(probe)
				measured := resp.Positive() && resp.Kind != RespRST
				if truth != measured {
					t.Fatalf("day %d target %v proto %v: truth=%v measured=%v (kind %d)",
						day, target, proto, truth, measured, resp.Kind)
				}
			}
		}
	}
}

// TestProbeConcurrencySafe hammers the network from many goroutines: the
// PMTU cache and counters are the only mutable state and must be safe.
func TestProbeConcurrencySafe(t *testing.T) {
	net := testWorld(t)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			r := rng.NewStream(uint64(g), "conc")
			p48 := ip6.MustParsePrefix("2600:9000:1::/48")
			for i := 0; i < 500; i++ {
				a := p48.RandomAddr(r)
				net.Probe(Probe{Kind: EchoRequest, Target: a, Day: 5, Size: 1300})
				net.Probe(Probe{Kind: PacketTooBig, Target: a, Day: 5, MTU: 1280})
				net.Probe(Probe{Kind: TCPSYN, Target: a, Day: 5, Port: 80})
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if net.ProbeCount() != 8*500*3 {
		t.Errorf("probe count %d, want %d", net.ProbeCount(), 8*500*3)
	}
}

// TestAliasRuleLifetime: rules activate and deactivate with their days
// (the Trafficforce event mechanics).
func TestAliasRuleLifetime(t *testing.T) {
	net := testWorld(t)
	as := net.AS.ByASN(64501)
	net.AddAlias(&AliasRule{
		Prefix: ip6.MustParsePrefix("2600:9000:42::/48"), AS: as,
		Protos: ProtoSetOf(ICMP), Backends: 1,
		BornDay: 100, DeathDay: 200, FP: FPBSD, MTU: 1500,
	})
	a := ip6.MustParsePrefix("2600:9000:42::/48").NthAddr(5)
	if net.TrueResponds(a, ICMP, 99) {
		t.Error("rule active before born day")
	}
	if !net.TrueResponds(a, ICMP, 150) {
		t.Error("rule inactive within lifetime")
	}
	if net.TrueResponds(a, ICMP, 200) {
		t.Error("rule active after death day")
	}
}

// TestHostOutageWindow verifies the comeback mechanics the Section 6
// unresponsive-pool experiment depends on.
func TestHostOutageWindow(t *testing.T) {
	h := &Host{
		Addr: ip6.MustParseAddr("2001:4d00::77"), Protos: ProtoSetOf(ICMP),
		BornDay: 0, DeathDay: Forever, UptimePermille: 1000,
		DownFrom: 100, DownTo: 180,
	}
	if !h.RespondsTo(ICMP, 50) {
		t.Error("down before outage")
	}
	if h.RespondsTo(ICMP, 100) || h.RespondsTo(ICMP, 179) {
		t.Error("up during outage")
	}
	if !h.RespondsTo(ICMP, 180) {
		t.Error("down after outage")
	}
}
