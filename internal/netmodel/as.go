package netmodel

import (
	"fmt"
	"sort"

	"hitlist6/internal/ip6"
)

// Category classifies an AS by its dominant role; the world generator uses
// it to pick host populations, alias structure and path behaviour.
type Category uint8

// AS categories.
const (
	CatISP         Category = iota // eyeball networks: CPE, EUI-64, prefix rotation
	CatCDN                         // content delivery: aliased prefixes, many domains
	CatCloud                       // hosting/cloud: servers, some aliased space
	CatTransit                     // backbone: routers, few end hosts
	CatEducation                   // campus networks
	CatDNSProvider                 // anycast DNS services
	CatEnterprise                  // everything else
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatISP:
		return "isp"
	case CatCDN:
		return "cdn"
	case CatCloud:
		return "cloud"
	case CatTransit:
		return "transit"
	case CatEducation:
		return "education"
	case CatDNSProvider:
		return "dns"
	case CatEnterprise:
		return "enterprise"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// AS is an autonomous system in the synthetic Internet.
type AS struct {
	ASN      int
	Name     string
	Country  string // ISO code; "CN" ASes sit behind the GFW
	Category Category

	// Announced BGP prefixes. AnnouncedFrom gives the day each prefix
	// first appears in the routing table (0 for the beginning of time);
	// the Trafficforce event of February 2022 is modelled through this.
	Announced     []ip6.Prefix
	AnnouncedFrom []int

	// RouterRotationDays controls the AS's border-router addressing as
	// seen by traceroutes: 0 means stable router interface addresses;
	// a positive value rotates the randomized interface identifiers every
	// that many days. Rotation is what floods the hitlist input with
	// one-shot addresses (Section 4.1) and, in Chinese ASes, feeds the
	// GFW spike.
	RouterRotationDays int
}

// AnnouncedAddressesLog2 returns log2 of the total announced address space
// (approximated by the largest prefix; exact summing over prefixes is done
// in analysis where needed).
func (a *AS) AnnouncedAddressesLog2() int {
	best := -1
	for _, p := range a.Announced {
		if l := p.NumAddressesLog2(); l > best {
			best = l
		}
	}
	return best
}

// ASTable is the BGP view: longest-prefix-match from address to AS.
type ASTable struct {
	m *ip6.PrefixMap[*AS]
	// all ASes by ASN for iteration.
	byASN map[int]*AS
}

// NewASTable builds a table over the given ASes, indexing every announced
// prefix. Conflicting announcements are resolved longest-prefix-first at
// lookup, as in real routing.
func NewASTable(ases []*AS) *ASTable {
	t := &ASTable{m: ip6.NewPrefixMap[*AS](), byASN: make(map[int]*AS, len(ases))}
	for _, as := range ases {
		if _, dup := t.byASN[as.ASN]; dup {
			panic(fmt.Sprintf("netmodel: duplicate ASN %d", as.ASN))
		}
		t.byASN[as.ASN] = as
		for _, p := range as.Announced {
			t.m.Insert(p, as)
		}
	}
	return t
}

// Announce inserts an additional (more-specific) announcement for an AS
// after table construction, keeping AS.Announced/AnnouncedFrom in sync.
// CDNs announcing their aliased specifics use this.
func (t *ASTable) Announce(p ip6.Prefix, as *AS, fromDay int) {
	as.Announced = append(as.Announced, p)
	as.AnnouncedFrom = append(as.AnnouncedFrom, fromDay)
	t.m.Insert(p, as)
}

// Freeze seals the table's longest-prefix index into its flat sorted
// form (see ip6.PrefixMap.Freeze); Announce drops it again. Network.Seal
// calls this so per-probe AS attribution is a binary search.
func (t *ASTable) Freeze() { t.m.Freeze() }

// Lookup returns the origin AS of addr, or nil if unrouted.
func (t *ASTable) Lookup(addr ip6.Addr) *AS {
	_, as, ok := t.m.Lookup(addr)
	if !ok {
		return nil
	}
	return as
}

// LookupPrefix returns the matched announcement and AS for addr.
func (t *ASTable) LookupPrefix(addr ip6.Addr) (ip6.Prefix, *AS, bool) {
	return t.m.Lookup(addr)
}

// ByASN returns the AS with the given number, or nil.
func (t *ASTable) ByASN(asn int) *AS { return t.byASN[asn] }

// All returns every AS sorted by ASN.
func (t *ASTable) All() []*AS {
	out := make([]*AS, 0, len(t.byASN))
	for _, as := range t.byASN {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// NumASes returns the number of ASes announcing at least one prefix.
func (t *ASTable) NumASes() int { return len(t.byASN) }

// NumPrefixes returns the number of announced prefixes.
func (t *ASTable) NumPrefixes() int { return t.m.Len() }

// MaxAnnouncedBits returns the longest announced prefix length (-1 when
// the table is empty) — the granularity at which per-prefix lookup
// memoization stays exact.
func (t *ASTable) MaxAnnouncedBits() int { return t.m.MaxBits() }

// AnnouncedPrefixes returns every announced prefix in stable order.
func (t *ASTable) AnnouncedPrefixes() []ip6.Prefix { return t.m.Prefixes() }

// WalkPrefixes visits (prefix, AS) pairs; fn returning false stops.
func (t *ASTable) WalkPrefixes(fn func(ip6.Prefix, *AS) bool) {
	t.m.Walk(fn)
}
