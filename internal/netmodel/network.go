package netmodel

import (
	"sync"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// ProbeKind is the wire-level probe type.
type ProbeKind uint8

// Probe kinds.
const (
	EchoRequest  ProbeKind = iota // ICMPv6 echo request (Size selects payload)
	TCPSYN                        // TCP SYN to Port
	DNSQuery                      // UDP datagram to port 53 carrying Payload
	QUICInitial                   // UDP datagram to port 443 (QUIC Initial)
	PacketTooBig                  // ICMPv6 Packet Too Big carrying MTU
)

// Probe is one outgoing packet.
type Probe struct {
	Kind    ProbeKind
	Target  ip6.Addr
	Day     int
	Size    int    // echo payload size (TBT sends 1300 B)
	Port    uint16 // TCP destination port
	Payload []byte // DNS query wire bytes for DNSQuery
	MTU     uint16 // MTU announced in PacketTooBig
}

// RespKind is the wire-level response type.
type RespKind uint8

// Response kinds.
const (
	RespNone RespKind = iota // silence (timeout)
	RespEchoReply
	RespSynAck
	RespRST
	RespDNS
	RespQUIC
	RespUnreach
)

// Response is what (if anything) came back for a probe.
type Response struct {
	Kind RespKind

	// Fragmented marks a fragmented echo reply (TBT evidence).
	Fragmented bool

	// FP carries the TCP fingerprint for SYN-ACK responses.
	FP TCPFingerprint

	// DNS carries one or more wire-format DNS messages; more than one
	// indicates multiple responders (e.g. several GFW injectors).
	DNS [][]byte

	// InjectedCount is ground truth — how many of the DNS messages were
	// forged by the GFW. Detection code must never read it; it exists so
	// tests can score the detector.
	InjectedCount int
}

// Positive reports whether the response would be counted as target
// responsiveness by a ZMap-style scanner (any packet back except an
// unreachable).
func (r Response) Positive() bool {
	return r.Kind != RespNone && r.Kind != RespUnreach
}

// NSQuery is a query observed at the experimenter's authoritative name
// server (the unique-subdomain experiment of Section 4.2).
type NSQuery struct {
	Source ip6.Addr
	QName  string
}

// Network is the synthetic Internet.
type Network struct {
	Seed uint64

	// AS is the BGP view.
	AS *ASTable

	// GFW is the injection model (may be nil for GFW-free worlds).
	GFW *GFWModel

	// OurZone is the experimenter-controlled DNS zone used by the
	// Section 4.2 behaviour evaluation.
	OurZone string

	hosts   map[ip6.Addr]*Host
	aliases *ip6.PrefixMap[*AliasRule]
	pmtu    *pmtuCache

	nsmu  sync.Mutex
	nslog []NSQuery

	probemu sync.Mutex
	probes  uint64

	// transit caches the backbone ASes for path synthesis.
	transit []*AS
}

// NewNetwork builds an empty world over the given AS table.
func NewNetwork(seed uint64, table *ASTable) *Network {
	return &Network{
		Seed:    seed,
		AS:      table,
		OurZone: "hitlist-exp.example",
		hosts:   make(map[ip6.Addr]*Host),
		aliases: ip6.NewPrefixMap[*AliasRule](),
		pmtu:    newPMTUCache(),
	}
}

// AddHost registers a host. Later registrations of the same address win.
func (n *Network) AddHost(h *Host) { n.hosts[h.Addr] = h }

// AddAlias registers an aliased (fully responsive) prefix rule.
func (n *Network) AddAlias(r *AliasRule) { n.aliases.Insert(r.Prefix, r) }

// NumHosts returns the number of registered hosts.
func (n *Network) NumHosts() int { return len(n.hosts) }

// Host returns the host registered at addr, if any (ground truth).
func (n *Network) Host(addr ip6.Addr) (*Host, bool) {
	h, ok := n.hosts[addr]
	return h, ok
}

// WalkHosts visits every registered host (ground truth; iteration order is
// unspecified).
func (n *Network) WalkHosts(fn func(*Host) bool) {
	for _, h := range n.hosts {
		if !fn(h) {
			return
		}
	}
}

// AliasRules returns all registered alias rules (ground truth, for
// scoring detection quality in tests and for the world generator).
func (n *Network) AliasRules() []*AliasRule {
	out := make([]*AliasRule, 0, n.aliases.Len())
	n.aliases.Walk(func(_ ip6.Prefix, r *AliasRule) bool {
		out = append(out, r)
		return true
	})
	return out
}

// AliasRuleFor returns the alias rule covering addr at the given day.
func (n *Network) AliasRuleFor(addr ip6.Addr, day int) (*AliasRule, bool) {
	_, r, ok := n.aliases.Lookup(addr)
	if !ok || !r.activeAt(day) {
		return nil, false
	}
	return r, true
}

// ProbeCount returns how many probes the network has served — the load
// measure ethics sections care about.
func (n *Network) ProbeCount() uint64 {
	n.probemu.Lock()
	defer n.probemu.Unlock()
	return n.probes
}

// ResetPMTU clears all poisoned PMTU caches (between TBT runs).
func (n *Network) ResetPMTU() { n.pmtu.reset() }

// NSLogSnapshot returns and clears the queries seen at our authoritative
// name server.
func (n *Network) NSLogSnapshot() []NSQuery {
	n.nsmu.Lock()
	defer n.nsmu.Unlock()
	out := n.nslog
	n.nslog = nil
	return out
}

func (n *Network) recordNSQuery(src ip6.Addr, qname string) {
	n.nsmu.Lock()
	defer n.nsmu.Unlock()
	n.nslog = append(n.nslog, NSQuery{Source: src, QName: qname})
}

// TrueResponds is ground truth: whether target would answer protocol p at
// the given day (alias rules, live hosts, and GFW injection for UDP/53
// towards blocked domains — the last mirrors what a ZMap scan measures).
// Measurement code must use the scanner; this exists for world assembly
// and test scoring.
func (n *Network) TrueResponds(target ip6.Addr, p Protocol, day int) bool {
	if r, ok := n.AliasRuleFor(target, day); ok && r.Protos.Has(p) {
		return true
	}
	if h, ok := n.hosts[target]; ok && h.RespondsTo(p, day) {
		return true
	}
	if p == UDP53 && n.GFW != nil && n.GFW.ActiveAt(day) {
		if as := n.AS.Lookup(target); as != nil && n.GFW.AffectedASNs[as.ASN] {
			return true
		}
	}
	return false
}

// Probe sends one probe into the world and returns the response.
// It is safe for concurrent use.
func (n *Network) Probe(p Probe) Response {
	n.probemu.Lock()
	n.probes++
	n.probemu.Unlock()

	switch p.Kind {
	case EchoRequest:
		return n.probeEcho(p)
	case TCPSYN:
		return n.probeTCP(p)
	case DNSQuery:
		return n.probeDNS(p)
	case QUICInitial:
		return n.probeQUIC(p)
	case PacketTooBig:
		return n.probePTB(p)
	}
	return Response{}
}

// effectiveMTU returns the responder's current PMTU towards us and the
// cache key, honoring poisoned caches.
func (n *Network) effectiveMTU(target ip6.Addr, day int) (uint16, pmtuKey, bool) {
	if r, ok := n.AliasRuleFor(target, day); ok {
		key := pmtuKey{prefix: r.Prefix, backend: r.BackendOf(target)}
		if mtu, ok := n.pmtu.get(key, day); ok {
			return mtu, key, true
		}
		mtu := r.MTU
		if mtu == 0 {
			mtu = 1500
		}
		return mtu, key, true
	}
	if h, ok := n.hosts[target]; ok {
		key := pmtuKey{host: target}
		if mtu, ok := n.pmtu.get(key, day); ok {
			return mtu, key, true
		}
		mtu := h.MTU
		if mtu == 0 {
			mtu = 1500
		}
		return mtu, key, true
	}
	return 0, pmtuKey{}, false
}

func (n *Network) probeEcho(p Probe) Response {
	if !n.respondsToProto(p.Target, ICMP, p.Day) {
		return Response{}
	}
	mtu, _, _ := n.effectiveMTU(p.Target, p.Day)
	frag := p.Size > 0 && p.Size+48 > int(mtu) // 40 B IPv6 + 8 B ICMPv6 headers
	return Response{Kind: RespEchoReply, Fragmented: frag}
}

func (n *Network) probePTB(p Probe) Response {
	// Packet Too Big poisons the responder's PMTU cache; no reply.
	if !n.respondsToProto(p.Target, ICMP, p.Day) {
		return Response{}
	}
	mtu := p.MTU
	if mtu < 1280 {
		mtu = 1280
	}
	if _, key, ok := n.effectiveMTU(p.Target, p.Day); ok {
		n.pmtu.set(key, mtu, p.Day)
	}
	return Response{}
}

func (n *Network) probeTCP(p Probe) Response {
	var proto Protocol
	switch p.Port {
	case 80:
		proto = TCP80
	case 443:
		proto = TCP443
	default:
		return Response{}
	}
	if r, ok := n.AliasRuleFor(p.Target, p.Day); ok && r.Protos.Has(proto) {
		return Response{Kind: RespSynAck, FP: r.FingerprintFor(p.Target)}
	}
	if h, ok := n.hosts[p.Target]; ok {
		if h.RespondsTo(proto, p.Day) {
			return Response{Kind: RespSynAck, FP: h.FP}
		}
		// A live host without the port sends RST when it is up at all.
		if h.upAt(p.Day) && h.Protos.Has(ICMP) {
			return Response{Kind: RespRST}
		}
	}
	return Response{}
}

func (n *Network) probeQUIC(p Probe) Response {
	if n.respondsToProto(p.Target, UDP443, p.Day) {
		return Response{Kind: RespQUIC}
	}
	return Response{}
}

func (n *Network) respondsToProto(target ip6.Addr, proto Protocol, day int) bool {
	if r, ok := n.AliasRuleFor(target, day); ok && r.Protos.Has(proto) {
		return true
	}
	h, ok := n.hosts[target]
	return ok && h.RespondsTo(proto, day)
}

func (n *Network) probeDNS(p Probe) Response {
	query, err := dnswire.Decode(p.Payload)
	if err != nil || len(query.Questions) == 0 {
		return Response{}
	}
	var resp Response

	// GFW injection happens on the path, before and regardless of the
	// target itself.
	targetAS := n.AS.Lookup(p.Target)
	if n.GFW != nil {
		if injected := n.GFW.Inject(p.Target, targetAS, query, p.Day); len(injected) > 0 {
			resp.DNS = append(resp.DNS, injected...)
			resp.InjectedCount = len(injected)
			resp.Kind = RespDNS
		}
	}

	// The target's own answer, if it serves DNS.
	behavior := DNSNone
	var answerer ip6.Addr
	if r, ok := n.AliasRuleFor(p.Target, p.Day); ok && r.Protos.Has(UDP53) {
		behavior = r.DNS
		if behavior == DNSNone {
			behavior = DNSRefusing
		}
		answerer = p.Target
	} else if h, ok := n.hosts[p.Target]; ok && h.RespondsTo(UDP53, p.Day) {
		behavior = h.DNS
		if behavior == DNSNone {
			behavior = DNSRefusing
		}
		answerer = p.Target
	}
	if behavior != DNSNone {
		if wire := n.answerDNS(answerer, behavior, query, p.Day); wire != nil {
			resp.DNS = append(resp.DNS, wire)
			resp.Kind = RespDNS
		}
	}
	return resp
}

// syntheticAAAA derives the "correct" AAAA record for a name: a stable
// pseudo-address inside a hosting range. Both the open resolvers in the
// world and our own zone's authoritative server agree on it.
func syntheticAAAA(qname string) ip6.Addr {
	h := rng.HashString(dnswire.NormalizeName(qname))
	return ip6.AddrFromUint64s(0x2a0e_b107_0000_0000|h>>40, h)
}

func (n *Network) answerDNS(src ip6.Addr, behavior DNSBehavior, query *dnswire.Message, day int) []byte {
	q := query.Questions[0]
	reply := query.Reply()
	inOurZone := n.OurZone != "" && nameInZone(q.Name, n.OurZone)
	switch behavior {
	case DNSRefusing:
		reply.Header.RCode = dnswire.RCodeRefused
	case DNSOpenResolver:
		reply.Header.RecursionAvailable = true
		if q.Type == dnswire.TypeAAAA {
			reply.Answers = append(reply.Answers, dnswire.RR{
				Name: q.Name, Type: dnswire.TypeAAAA, TTL: 300, AAAA: syntheticAAAA(q.Name),
			})
		}
		if inOurZone {
			// Recursion reaches our authoritative server from the
			// resolver's own address.
			n.recordNSQuery(src, dnswire.NormalizeName(q.Name))
		}
	case DNSProxy:
		reply.Header.RecursionAvailable = true
		if q.Type == dnswire.TypeAAAA {
			reply.Answers = append(reply.Answers, dnswire.RR{
				Name: q.Name, Type: dnswire.TypeAAAA, TTL: 300, AAAA: syntheticAAAA(q.Name),
			})
		}
		if inOurZone {
			// The recursion exits through a different interface: the
			// query source at our name server does not match the probed
			// target.
			egress := src
			egress[15] ^= 0x5a
			egress[14] ^= 0x01
			n.recordNSQuery(egress, dnswire.NormalizeName(q.Name))
		}
	case DNSReferral:
		// Upward referral to the root zone.
		reply.Header.RCode = dnswire.RCodeNoError
		reply.Authority = append(reply.Authority,
			dnswire.RR{Name: "", Type: dnswire.TypeNS, TTL: 518400, Target: "a.root-servers.net"},
			dnswire.RR{Name: "", Type: dnswire.TypeNS, TTL: 518400, Target: "b.root-servers.net"},
		)
	case DNSBroken:
		// Incorrect status codes or referrals to localhost.
		if rng.Mix(src.Hi(), src.Lo(), uint64(day), 0xb40c)%2 == 0 {
			reply.Header.RCode = dnswire.RCodeNotImp
		} else {
			reply.Answers = append(reply.Answers, dnswire.RR{
				Name: q.Name, Type: dnswire.TypeCNAME, TTL: 0, Target: "localhost",
			})
		}
	default:
		return nil
	}
	wire, err := reply.Encode()
	if err != nil {
		panic("netmodel: encoding DNS answer: " + err.Error())
	}
	return wire
}

func nameInZone(name, zone string) bool {
	name = dnswire.NormalizeName(name)
	zone = dnswire.NormalizeName(zone)
	if name == zone {
		return true
	}
	return len(name) > len(zone)+1 && name[len(name)-len(zone):] == zone && name[len(name)-len(zone)-1] == '.'
}
