package netmodel

import (
	"sort"
	"sync"
	"sync/atomic"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// ProbeKind is the wire-level probe type.
type ProbeKind uint8

// Probe kinds.
const (
	EchoRequest  ProbeKind = iota // ICMPv6 echo request (Size selects payload)
	TCPSYN                        // TCP SYN to Port
	DNSQuery                      // UDP datagram to port 53 carrying Payload
	QUICInitial                   // UDP datagram to port 443 (QUIC Initial)
	PacketTooBig                  // ICMPv6 Packet Too Big carrying MTU
)

// Probe is one outgoing packet.
type Probe struct {
	Kind    ProbeKind
	Target  ip6.Addr
	Day     int
	Size    int    // echo payload size (TBT sends 1300 B)
	Port    uint16 // TCP destination port
	Payload []byte // DNS query wire bytes for DNSQuery
	MTU     uint16 // MTU announced in PacketTooBig

	// Query, when non-nil, is the parsed form of the DNS query and lets
	// the network skip decoding Payload — the scanner sets it from a
	// per-qname template so the probe hot path never re-parses the same
	// wire bytes. The message is shared across probes and must be treated
	// as read-only; TxID carries the per-probe transaction ID the reply
	// echoes (Query.Header.ID is ignored). When Query is nil the query is
	// decoded from Payload as always, with the ID taken from the wire.
	Query *dnswire.Message
	TxID  uint16

	// Arena, when non-nil, recycles the response's DNS wire buffers:
	// replies are appended into arena slots instead of fresh heap
	// allocations, and the caller reuses them by Reset once the response
	// is consumed. The scan engine pairs one arena with each batch; nil
	// (the default) keeps per-probe heap allocation.
	Arena *WireArena
}

// RespKind is the wire-level response type.
type RespKind uint8

// Response kinds.
const (
	RespNone RespKind = iota // silence (timeout)
	RespEchoReply
	RespSynAck
	RespRST
	RespDNS
	RespQUIC
	RespUnreach
)

// Response is what (if anything) came back for a probe.
type Response struct {
	Kind RespKind

	// Fragmented marks a fragmented echo reply (TBT evidence).
	Fragmented bool

	// FP carries the TCP fingerprint for SYN-ACK responses.
	FP TCPFingerprint

	// DNS carries one or more wire-format DNS messages; more than one
	// indicates multiple responders (e.g. several GFW injectors).
	DNS [][]byte

	// InjectedCount is ground truth — how many of the DNS messages were
	// forged by the GFW. Detection code must never read it; it exists so
	// tests can score the detector.
	InjectedCount int
}

// Positive reports whether the response would be counted as target
// responsiveness by a ZMap-style scanner (any packet back except an
// unreachable).
func (r Response) Positive() bool {
	return r.Kind != RespNone && r.Kind != RespUnreach
}

// NSQuery is a query observed at the experimenter's authoritative name
// server (the unique-subdomain experiment of Section 4.2).
type NSQuery struct {
	Source ip6.Addr
	QName  string
}

// Network is the synthetic Internet.
type Network struct {
	Seed uint64

	// AS is the BGP view.
	AS *ASTable

	// GFW is the injection model (may be nil for GFW-free worlds).
	GFW *GFWModel

	// OurZone is the experimenter-controlled DNS zone used by the
	// Section 4.2 behaviour evaluation.
	OurZone string

	hosts   map[ip6.Addr]*Host
	hostIdx *hostIndex
	aliases *ip6.PrefixMap[*AliasRule]
	pmtu    *pmtuCache

	nsmu  sync.Mutex
	nslog []NSQuery

	// probes counts served probes on shard-striped padded atomics: the
	// scan engine works one shard per worker at a time, so concurrent
	// workers increment disjoint cache lines and the old global mutex's
	// contention is gone. ProbeCount aggregates the stripes on read.
	probes [ip6.AddrShards]probeStripe

	// transit caches the backbone ASes for path synthesis.
	transit []*AS
}

// probeStripe is one padded counter stripe (its own cache line).
type probeStripe struct {
	n atomic.Uint64
	_ [56]byte
}

// NewNetwork builds an empty world over the given AS table.
func NewNetwork(seed uint64, table *ASTable) *Network {
	return &Network{
		Seed:    seed,
		AS:      table,
		OurZone: "hitlist-exp.example",
		hosts:   make(map[ip6.Addr]*Host),
		aliases: ip6.NewPrefixMap[*AliasRule](),
		pmtu:    newPMTUCache(),
	}
}

// AddHost registers a host. Later registrations of the same address win.
// Adding a host invalidates a previous Seal.
func (n *Network) AddHost(h *Host) {
	n.hosts[h.Addr] = h
	n.hostIdx = nil
}

// Seal freezes the world's lookup structures for probing: the host table
// into a shard-aligned sorted index (binary search over packed 16-byte
// keys instead of map hashing), and the alias-rule and BGP prefix tables
// into flat sorted segment indexes (ip6.PrefixMap.Freeze). Responses are
// bit-identical either way; sealing is purely a probe-throughput
// optimization. Call it once world assembly is done (the world generator
// does); AddHost drops the host seal and any table mutation drops its
// own frozen index, so a resumed build simply falls back to the map
// paths until resealed. Seal must not race with concurrent probes.
func (n *Network) Seal() {
	n.hostIdx = buildHostIndex(n.hosts)
	n.aliases.Freeze()
	if n.AS != nil {
		n.AS.Freeze()
	}
}

// Sealed reports whether the frozen host index is live.
func (n *Network) Sealed() bool { return n.hostIdx != nil }

// lookupHost resolves the host registered at a, through the sealed index
// when one is live. shard must be ip6.ShardOf(a).
func (n *Network) lookupHost(shard int, a ip6.Addr) *Host {
	if idx := n.hostIdx; idx != nil {
		return idx.lookup(shard, a)
	}
	return n.hosts[a]
}

// AddAlias registers an aliased (fully responsive) prefix rule.
func (n *Network) AddAlias(r *AliasRule) { n.aliases.Insert(r.Prefix, r) }

// NumHosts returns the number of registered hosts.
func (n *Network) NumHosts() int { return len(n.hosts) }

// Host returns the host registered at addr, if any (ground truth).
func (n *Network) Host(addr ip6.Addr) (*Host, bool) {
	h, ok := n.hosts[addr]
	return h, ok
}

// WalkHosts visits every registered host (ground truth; iteration order is
// unspecified).
func (n *Network) WalkHosts(fn func(*Host) bool) {
	for _, h := range n.hosts {
		if !fn(h) {
			return
		}
	}
}

// AliasRules returns all registered alias rules (ground truth, for
// scoring detection quality in tests and for the world generator),
// ordered by prefix. The stable order matters: consumers draw random
// indexes into the list (the world generator's DET source, the ablation
// harness), and the old map-order walk made those draws — and therefore
// several evaluation artifacts — differ from run to run.
func (n *Network) AliasRules() []*AliasRule {
	out := make([]*AliasRule, 0, n.aliases.Len())
	n.aliases.Walk(func(_ ip6.Prefix, r *AliasRule) bool {
		out = append(out, r)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return ip6.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0
	})
	return out
}

// AliasRuleFor returns the alias rule covering addr at the given day.
func (n *Network) AliasRuleFor(addr ip6.Addr, day int) (*AliasRule, bool) {
	_, r, ok := n.aliases.Lookup(addr)
	if !ok || !r.activeAt(day) {
		return nil, false
	}
	return r, true
}

// ProbeCount returns how many probes the network has served — the load
// measure ethics sections care about. It aggregates the per-shard counter
// stripes on read.
func (n *Network) ProbeCount() uint64 {
	var total uint64
	for i := range n.probes {
		total += n.probes[i].n.Load()
	}
	return total
}

// ResetPMTU clears all poisoned PMTU caches (between TBT runs).
func (n *Network) ResetPMTU() { n.pmtu.reset() }

// NSLogSnapshot returns and clears the queries seen at our authoritative
// name server.
func (n *Network) NSLogSnapshot() []NSQuery {
	n.nsmu.Lock()
	defer n.nsmu.Unlock()
	out := n.nslog
	n.nslog = nil
	return out
}

func (n *Network) recordNSQuery(src ip6.Addr, qname string) {
	n.nsmu.Lock()
	defer n.nsmu.Unlock()
	n.nslog = append(n.nslog, NSQuery{Source: src, QName: qname})
}

// TrueResponds is ground truth: whether target would answer protocol p at
// the given day (alias rules, live hosts, and GFW injection for UDP/53
// towards blocked domains — the last mirrors what a ZMap scan measures).
// Measurement code must use the scanner; this exists for world assembly
// and test scoring.
func (n *Network) TrueResponds(target ip6.Addr, p Protocol, day int) bool {
	if r, ok := n.AliasRuleFor(target, day); ok && r.Protos.Has(p) {
		return true
	}
	if h := n.lookupHost(ip6.ShardOf(target), target); h != nil && h.RespondsTo(p, day) {
		return true
	}
	if p == UDP53 && n.GFW != nil && n.GFW.ActiveAt(day) {
		if as := n.AS.Lookup(target); as != nil && n.GFW.AffectedASNs[as.ASN] {
			return true
		}
	}
	return false
}

// resolution is the outcome of the single per-probe target lookup: the
// active alias rule covering the target (if any) and the registered host
// at the exact address (if any). Every probe handler reads from it, so
// the alias radix walk and the host lookup happen exactly once per probe
// instead of once per handler-internal check.
type resolution struct {
	rule *AliasRule
	host *Host
}

// responds mirrors the pre-resolution respondsToProto check.
func (r resolution) responds(proto Protocol, day int) bool {
	if r.rule != nil && r.rule.Protos.Has(proto) {
		return true
	}
	return r.host != nil && r.host.RespondsTo(proto, day)
}

// resolve performs the one alias + host lookup of a probe. shard must be
// ip6.ShardOf(target).
func (n *Network) resolve(target ip6.Addr, shard, day int) resolution {
	var res resolution
	if _, r, ok := n.aliases.Lookup(target); ok && r.activeAt(day) {
		res.rule = r
	}
	res.host = n.lookupHost(shard, target)
	return res
}

// Probe sends one probe into the world and returns the response.
// It is safe for concurrent use.
func (n *Network) Probe(p Probe) Response {
	shard := ip6.ShardOf(p.Target)
	n.probes[shard].n.Add(1)

	res := n.resolve(p.Target, shard, p.Day)
	switch p.Kind {
	case EchoRequest:
		return n.probeEcho(p, res)
	case TCPSYN:
		return n.probeTCP(p, res)
	case DNSQuery:
		return n.probeDNS(p, res)
	case QUICInitial:
		return n.probeQUIC(p, res)
	case PacketTooBig:
		return n.probePTB(p, res)
	}
	return Response{}
}

// effectiveMTU returns the responder's current PMTU towards us and the
// cache key, honoring poisoned caches.
func (n *Network) effectiveMTU(target ip6.Addr, day int, res resolution) (uint16, pmtuKey, bool) {
	if r := res.rule; r != nil {
		key := pmtuKey{prefix: r.Prefix, backend: r.BackendOf(target)}
		if mtu, ok := n.pmtu.get(key, day); ok {
			return mtu, key, true
		}
		mtu := r.MTU
		if mtu == 0 {
			mtu = 1500
		}
		return mtu, key, true
	}
	if h := res.host; h != nil {
		key := pmtuKey{host: target}
		if mtu, ok := n.pmtu.get(key, day); ok {
			return mtu, key, true
		}
		mtu := h.MTU
		if mtu == 0 {
			mtu = 1500
		}
		return mtu, key, true
	}
	return 0, pmtuKey{}, false
}

func (n *Network) probeEcho(p Probe, res resolution) Response {
	if !res.responds(ICMP, p.Day) {
		return Response{}
	}
	mtu, _, _ := n.effectiveMTU(p.Target, p.Day, res)
	frag := p.Size > 0 && p.Size+48 > int(mtu) // 40 B IPv6 + 8 B ICMPv6 headers
	return Response{Kind: RespEchoReply, Fragmented: frag}
}

func (n *Network) probePTB(p Probe, res resolution) Response {
	// Packet Too Big poisons the responder's PMTU cache; no reply.
	if !res.responds(ICMP, p.Day) {
		return Response{}
	}
	mtu := p.MTU
	if mtu < 1280 {
		mtu = 1280
	}
	if _, key, ok := n.effectiveMTU(p.Target, p.Day, res); ok {
		n.pmtu.set(key, mtu, p.Day)
	}
	return Response{}
}

func (n *Network) probeTCP(p Probe, res resolution) Response {
	var proto Protocol
	switch p.Port {
	case 80:
		proto = TCP80
	case 443:
		proto = TCP443
	default:
		return Response{}
	}
	if r := res.rule; r != nil && r.Protos.Has(proto) {
		return Response{Kind: RespSynAck, FP: r.FingerprintFor(p.Target)}
	}
	if h := res.host; h != nil {
		if h.RespondsTo(proto, p.Day) {
			return Response{Kind: RespSynAck, FP: h.FP}
		}
		// A live host without the port sends RST when it is up at all.
		if h.upAt(p.Day) && h.Protos.Has(ICMP) {
			return Response{Kind: RespRST}
		}
	}
	return Response{}
}

func (n *Network) probeQUIC(p Probe, res resolution) Response {
	if res.responds(UDP443, p.Day) {
		return Response{Kind: RespQUIC}
	}
	return Response{}
}

func (n *Network) probeDNS(p Probe, res resolution) Response {
	query := p.Query
	txid := p.TxID
	if query == nil {
		// Compatibility path for hand-built probes carrying only wire
		// bytes: decode once, take the transaction ID from the wire.
		q, err := dnswire.Decode(p.Payload)
		if err != nil {
			return Response{}
		}
		query = q
		txid = q.Header.ID
	}
	if len(query.Questions) == 0 {
		return Response{}
	}
	var resp Response

	// GFW injection happens on the path, before and regardless of the
	// target itself.
	if n.GFW != nil {
		targetAS := n.AS.Lookup(p.Target)
		if injected := n.GFW.injectInto(p.Arena, p.Target, targetAS, query, txid, p.Day); len(injected) > 0 {
			resp.DNS = injected
			resp.InjectedCount = len(injected)
			resp.Kind = RespDNS
		}
	}

	// The target's own answer, if it serves DNS.
	behavior := DNSNone
	if r := res.rule; r != nil && r.Protos.Has(UDP53) {
		behavior = r.DNS
		if behavior == DNSNone {
			behavior = DNSRefusing
		}
	} else if h := res.host; h != nil && h.RespondsTo(UDP53, p.Day) {
		behavior = h.DNS
		if behavior == DNSNone {
			behavior = DNSRefusing
		}
	}
	if behavior != DNSNone {
		if wire := n.answerDNS(p.Arena, p.Target, behavior, query, txid, p.Day); wire != nil {
			if resp.DNS == nil {
				resp.DNS = p.Arena.List()
			}
			resp.DNS = p.Arena.SealList(append(resp.DNS, wire))
			resp.Kind = RespDNS
		}
	}
	return resp
}

// syntheticAAAA derives the "correct" AAAA record for a name: a stable
// pseudo-address inside a hosting range. Both the open resolvers in the
// world and our own zone's authoritative server agree on it.
func syntheticAAAA(qname string) ip6.Addr {
	h := rng.HashString(dnswire.NormalizeName(qname))
	return ip6.AddrFromUint64s(0x2a0e_b107_0000_0000|h>>40, h)
}

func (n *Network) answerDNS(arena *WireArena, src ip6.Addr, behavior DNSBehavior, query *dnswire.Message, txid uint16, day int) []byte {
	q := query.Questions[0]
	// replyHeader is the header every branch shares; AppendReply takes it
	// directly for the single-allocation fast paths, the slow branches
	// copy it into a full Message.
	hdr := dnswire.Header{
		ID:               txid,
		Response:         true,
		RecursionDesired: query.Header.RecursionDesired,
	}
	inOurZone := n.OurZone != "" && nameInZone(q.Name, n.OurZone)
	switch behavior {
	case DNSRefusing:
		hdr.RCode = dnswire.RCodeRefused
		return n.replyWire(arena, query, hdr, 0, 0, nil)
	case DNSOpenResolver, DNSProxy:
		hdr.RecursionAvailable = true
		if inOurZone {
			logged := src
			if behavior == DNSProxy {
				// The recursion exits through a different interface: the
				// query source at our name server does not match the
				// probed target.
				logged[15] ^= 0x5a
				logged[14] ^= 0x01
			}
			n.recordNSQuery(logged, dnswire.NormalizeName(q.Name))
		}
		if q.Type == dnswire.TypeAAAA {
			aaaa := syntheticAAAA(q.Name)
			return n.replyWire(arena, query, hdr, dnswire.TypeAAAA, 300, aaaa[:])
		}
		return n.replyWire(arena, query, hdr, 0, 0, nil)
	case DNSReferral:
		// Upward referral to the root zone; multi-record authority
		// sections go through the generic encoder.
		reply := &dnswire.Message{Header: hdr, Questions: query.Questions}
		reply.Authority = append(reply.Authority,
			dnswire.RR{Name: "", Type: dnswire.TypeNS, TTL: 518400, Target: "a.root-servers.net"},
			dnswire.RR{Name: "", Type: dnswire.TypeNS, TTL: 518400, Target: "b.root-servers.net"},
		)
		return encodeReply(reply)
	case DNSBroken:
		// Incorrect status codes or referrals to localhost.
		if rng.Mix(src.Hi(), src.Lo(), uint64(day), 0xb40c)%2 == 0 {
			hdr.RCode = dnswire.RCodeNotImp
			return n.replyWire(arena, query, hdr, 0, 0, nil)
		}
		reply := &dnswire.Message{Header: hdr, Questions: query.Questions}
		reply.Answers = append(reply.Answers, dnswire.RR{
			Name: q.Name, Type: dnswire.TypeCNAME, TTL: 0, Target: "localhost",
		})
		return encodeReply(reply)
	}
	return nil
}

// replyWire encodes a reply to query: header hdr, the question section
// echoed, and (when ansType != 0) one address answer named after the
// first question. Single-question queries — every query the scanner
// sends — take the dnswire.AppendReply fast path, appending into a
// recycled arena slot when one is supplied (one allocation without,
// zero steady-state with); anything else falls back to the generic
// encoder, whose output the fast path matches byte for byte. Invalid
// names panic as the old Encode path did (they were parsed off the
// wire, so failure is a programming error).
func (n *Network) replyWire(arena *WireArena, query *dnswire.Message, hdr dnswire.Header, ansType dnswire.Type, ttl uint32, rdata []byte) []byte {
	if len(query.Questions) == 1 {
		wire, err := dnswire.AppendReply(arena.Wire(), hdr, query.Questions[0], ansType, ttl, rdata)
		if err != nil {
			panic("netmodel: encoding DNS answer: " + err.Error())
		}
		return arena.Seal(wire)
	}
	reply := &dnswire.Message{Header: hdr, Questions: query.Questions}
	if ansType != 0 {
		rr := dnswire.RR{Name: query.Questions[0].Name, Type: ansType, TTL: ttl}
		switch ansType {
		case dnswire.TypeA:
			copy(rr.A[:], rdata)
		case dnswire.TypeAAAA:
			copy(rr.AAAA[:], rdata)
		}
		reply.Answers = append(reply.Answers, rr)
	}
	return encodeReply(reply)
}

// encodeReply is the generic-path encoder with the same panic contract.
func encodeReply(m *dnswire.Message) []byte {
	wire, err := m.Encode()
	if err != nil {
		panic("netmodel: encoding DNS answer: " + err.Error())
	}
	return wire
}

func nameInZone(name, zone string) bool {
	name = dnswire.NormalizeName(name)
	zone = dnswire.NormalizeName(zone)
	if name == zone {
		return true
	}
	return len(name) > len(zone)+1 && name[len(name)-len(zone):] == zone && name[len(name)-len(zone)-1] == '.'
}
