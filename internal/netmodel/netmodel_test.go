package netmodel

import (
	"strings"
	"testing"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
)

// testWorld builds a small deterministic network:
//   - AS64500 "PlainISP" with one always-up web host and one flaky host
//   - AS64501 "MiniCDN" with a /48 alias rule (4 backends)
//   - AS64502 "SoloAlias" with a /64 alias rule (1 backend)
//   - AS4134-like "CN-Backbone" behind the GFW
//   - AS64510 transit for traceroute paths
func testWorld(t testing.TB) *Network {
	t.Helper()
	ases := []*AS{
		{ASN: 64500, Name: "PlainISP", Country: "DE", Category: CatISP,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:4d00::/32")}, AnnouncedFrom: []int{0}},
		{ASN: 64501, Name: "MiniCDN", Country: "US", Category: CatCDN,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2600:9000::/32")}, AnnouncedFrom: []int{0}},
		{ASN: 64502, Name: "SoloAlias", Country: "US", Category: CatCloud,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2602:1111::/40")}, AnnouncedFrom: []int{0}},
		{ASN: 4134, Name: "CN-Backbone", Country: "CN", Category: CatISP, RouterRotationDays: 7,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("240e::/20")}, AnnouncedFrom: []int{0}},
		{ASN: 64510, Name: "Transit", Country: "US", Category: CatTransit,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2914::/24")}, AnnouncedFrom: []int{0}},
	}
	net := NewNetwork(1, NewASTable(ases))

	net.AddHost(&Host{
		Addr: ip6.MustParseAddr("2001:4d00::80"), Protos: ProtoSetOf(ICMP, TCP80, TCP443),
		BornDay: 0, DeathDay: Forever, UptimePermille: 1000, FP: FPLinux, MTU: 1500,
	})
	net.AddHost(&Host{
		Addr: ip6.MustParseAddr("2001:4d00::53"), Protos: ProtoSetOf(ICMP, UDP53),
		BornDay: 0, DeathDay: Forever, UptimePermille: 1000, FP: FPBSD, DNS: DNSRefusing, MTU: 1500,
	})
	net.AddHost(&Host{
		Addr: ip6.MustParseAddr("2001:4d00::f1"), Protos: ProtoSetOf(ICMP),
		BornDay: 0, DeathDay: Forever, UptimePermille: 500, FP: FPLinux, MTU: 1500,
	})
	net.AddAlias(&AliasRule{
		Prefix: ip6.MustParsePrefix("2600:9000:1::/48"), AS: ases[1],
		Protos: ProtoSetOf(ICMP, TCP80, TCP443, UDP443), Backends: 4,
		BornDay: 0, DeathDay: Forever, FP: FPLinuxLB, HostsDomains: true, MTU: 1500,
	})
	net.AddAlias(&AliasRule{
		Prefix: ip6.MustParsePrefix("2602:1111:0:1::/64"), AS: ases[2],
		Protos: ProtoSetOf(ICMP, TCP80), Backends: 1,
		BornDay: 0, DeathDay: Forever, FP: FPBSD, MTU: 1500,
	})

	gfw := NewGFWModel(1)
	gfw.AffectedASNs[4134] = true
	gfw.BlockedDomains["google.com"] = true
	gfw.Eras = []InjectionEra{
		{StartDay: 100, EndDay: 200, Mode: InjectA},
		{StartDay: 300, EndDay: 400, Mode: InjectTeredo},
	}
	net.GFW = gfw
	return net
}

func dnsProbe(t testing.TB, target ip6.Addr, day int, qname string) Probe {
	t.Helper()
	q := dnswire.NewQuery(0x4242, qname, dnswire.TypeAAAA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return Probe{Kind: DNSQuery, Target: target, Day: day, Payload: wire}
}

func TestHostResponsiveness(t *testing.T) {
	net := testWorld(t)
	web := ip6.MustParseAddr("2001:4d00::80")

	r := net.Probe(Probe{Kind: EchoRequest, Target: web, Day: 10, Size: 64})
	if r.Kind != RespEchoReply || r.Fragmented {
		t.Errorf("echo: %+v", r)
	}
	r = net.Probe(Probe{Kind: TCPSYN, Target: web, Day: 10, Port: 80})
	if r.Kind != RespSynAck || !r.FP.Equal(FPLinux) {
		t.Errorf("syn80: %+v", r)
	}
	r = net.Probe(Probe{Kind: TCPSYN, Target: web, Day: 10, Port: 443})
	if r.Kind != RespSynAck {
		t.Errorf("syn443: %+v", r)
	}
	// No QUIC on this host.
	r = net.Probe(Probe{Kind: QUICInitial, Target: web, Day: 10, Port: 443})
	if r.Kind != RespNone {
		t.Errorf("quic: %+v", r)
	}
	// Unknown target: silence.
	r = net.Probe(Probe{Kind: EchoRequest, Target: ip6.MustParseAddr("2001:4d00::dead"), Day: 10})
	if r.Kind != RespNone {
		t.Errorf("unknown: %+v", r)
	}
	if !r.Positive() == false {
		_ = r // Positive is false for RespNone
	}
	if net.ProbeCount() == 0 {
		t.Error("probe counter not advancing")
	}
}

func TestTCPPortClosedRST(t *testing.T) {
	net := testWorld(t)
	dns := ip6.MustParseAddr("2001:4d00::53") // ICMP+UDP53, no TCP
	r := net.Probe(Probe{Kind: TCPSYN, Target: dns, Day: 10, Port: 80})
	if r.Kind != RespRST {
		t.Errorf("want RST from live host w/o port, got %+v", r)
	}
	if r.Positive() != true {
		t.Error("RST should still be a positive signal at wire level")
	}
}

func TestFlakyHostChurn(t *testing.T) {
	net := testWorld(t)
	flaky, _ := net.Host(ip6.MustParseAddr("2001:4d00::f1"))
	up, transitions := 0, 0
	prev := false
	const days = 1000
	for d := 0; d < days; d++ {
		cur := flaky.RespondsTo(ICMP, d)
		if cur {
			up++
		}
		if d > 0 && cur != prev {
			transitions++
		}
		prev = cur
	}
	frac := float64(up) / days
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("uptime fraction %v, want ~0.5", frac)
	}
	if transitions == 0 {
		t.Error("no churn at all")
	}
	// State must be an epoch function: consecutive days mostly agree.
	if transitions > days/availEpochDays*3 {
		t.Errorf("too many transitions (%d) for epoch length %d", transitions, availEpochDays)
	}
	// Determinism.
	if flaky.RespondsTo(ICMP, 123) != flaky.RespondsTo(ICMP, 123) {
		t.Error("non-deterministic draw")
	}
}

func TestHostLifetime(t *testing.T) {
	net := testWorld(t)
	net.AddHost(&Host{
		Addr: ip6.MustParseAddr("2001:4d00::b0"), Protos: ProtoSetOf(ICMP),
		BornDay: 50, DeathDay: 60, UptimePermille: 1000,
	})
	h, _ := net.Host(ip6.MustParseAddr("2001:4d00::b0"))
	if h.RespondsTo(ICMP, 49) || !h.RespondsTo(ICMP, 50) || !h.RespondsTo(ICMP, 59) || h.RespondsTo(ICMP, 60) {
		t.Error("lifetime bounds wrong")
	}
}

func TestAliasFullyResponsive(t *testing.T) {
	net := testWorld(t)
	p := ip6.MustParsePrefix("2600:9000:1::/48")
	// Every random address inside answers ICMP/TCP80/TCP443/UDP443.
	for i := uint64(0); i < 32; i++ {
		a := p.NthAddr(i*7919 + 1)
		for _, proto := range []Protocol{ICMP, TCP80, TCP443, UDP443} {
			if !net.TrueResponds(a, proto, 10) {
				t.Fatalf("alias addr %v not responsive to %v", a, proto)
			}
		}
		if net.TrueResponds(a, UDP53, 10) {
			t.Fatalf("alias addr %v unexpectedly answers DNS", a)
		}
	}
	// Uniform fingerprints across the fleet (no jitter configured).
	a1 := p.NthAddr(1)
	a2 := p.NthAddr(999999)
	r1 := net.Probe(Probe{Kind: TCPSYN, Target: a1, Day: 10, Port: 80})
	r2 := net.Probe(Probe{Kind: TCPSYN, Target: a2, Day: 10, Port: 80})
	if !r1.FP.Equal(r2.FP) {
		t.Error("fleet fingerprints differ without jitter")
	}
	// Outside the alias prefix: silence.
	if net.TrueResponds(ip6.MustParseAddr("2600:9000:2::1"), ICMP, 10) {
		t.Error("address outside alias rule responded")
	}
}

func TestAliasWindowJitter(t *testing.T) {
	net := testWorld(t)
	as := net.AS.ByASN(64501)
	net.AddAlias(&AliasRule{
		Prefix: ip6.MustParsePrefix("2600:9000:2::/48"), AS: as,
		Protos: ProtoSetOf(TCP80), Backends: 8, WindowJitter: true,
		BornDay: 0, DeathDay: Forever, FP: FPLinuxLB, MTU: 1500,
	})
	p := ip6.MustParsePrefix("2600:9000:2::/48")
	seen := map[uint16]bool{}
	for i := uint64(0); i < 64; i++ {
		r := net.Probe(Probe{Kind: TCPSYN, Target: p.NthAddr(i * 104729), Day: 10, Port: 80})
		if r.Kind != RespSynAck {
			t.Fatalf("no synack: %+v", r)
		}
		seen[r.FP.Window] = true
		base := r.FP
		base.Window = 0
		want := FPLinuxLB
		want.Window = 0
		if base != want {
			t.Fatal("jitter must only change the window")
		}
	}
	if len(seen) < 2 {
		t.Errorf("window jitter produced %d distinct windows", len(seen))
	}
}

func TestTooBigTrickSharedCache(t *testing.T) {
	net := testWorld(t)
	solo := ip6.MustParsePrefix("2602:1111:0:1::/64")
	day := 42

	// Eight addresses under test, echo 1300 B: unfragmented.
	var addrs []ip6.Addr
	for i := uint64(0); i < 8; i++ {
		addrs = append(addrs, solo.NthAddr(i*7919+3))
	}
	for _, a := range addrs {
		r := net.Probe(Probe{Kind: EchoRequest, Target: a, Day: day, Size: 1300})
		if r.Kind != RespEchoReply || r.Fragmented {
			t.Fatalf("pre-PTB echo: %+v", r)
		}
	}
	// PTB to the first address only.
	net.Probe(Probe{Kind: PacketTooBig, Target: addrs[0], Day: day, MTU: 1280})
	// Single-host alias: every other address now fragments too.
	for _, a := range addrs {
		r := net.Probe(Probe{Kind: EchoRequest, Target: a, Day: day, Size: 1300})
		if !r.Fragmented {
			t.Fatalf("single-host alias did not share PMTU for %v", a)
		}
	}

	// CDN fleet (4 backends): only the poisoned backend fragments.
	net.ResetPMTU()
	cdn := ip6.MustParsePrefix("2600:9000:1::/48")
	rule, _ := net.AliasRuleFor(cdn.NthAddr(1), day)
	var poisoned, other ip6.Addr
	poisoned = cdn.NthAddr(1)
	for i := uint64(2); ; i++ {
		a := cdn.NthAddr(i)
		if rule.BackendOf(a) != rule.BackendOf(poisoned) {
			other = a
			break
		}
	}
	var sameBackend ip6.Addr
	for i := uint64(2); ; i++ {
		a := cdn.NthAddr(i)
		if a != poisoned && rule.BackendOf(a) == rule.BackendOf(poisoned) {
			sameBackend = a
			break
		}
	}
	net.Probe(Probe{Kind: PacketTooBig, Target: poisoned, Day: day, MTU: 1280})
	if r := net.Probe(Probe{Kind: EchoRequest, Target: sameBackend, Day: day, Size: 1300}); !r.Fragmented {
		t.Error("same backend did not share PMTU")
	}
	if r := net.Probe(Probe{Kind: EchoRequest, Target: other, Day: day, Size: 1300}); r.Fragmented {
		t.Error("different backend shared PMTU")
	}

	// The cache expires after pmtuHoldDays.
	if r := net.Probe(Probe{Kind: EchoRequest, Target: sameBackend, Day: day + pmtuHoldDays + 1, Size: 1300}); r.Fragmented {
		t.Error("PMTU cache did not expire")
	}
}

func TestGFWInjection(t *testing.T) {
	net := testWorld(t)
	cnTarget := ip6.MustParseAddr("240e::1234") // not a registered host

	// Outside any era: silence.
	r := net.Probe(dnsProbe(t, cnTarget, 50, "www.google.com"))
	if r.Kind != RespNone {
		t.Fatalf("pre-era injection: %+v", r)
	}

	// Era 1: A-record injection, multiple answers.
	r = net.Probe(dnsProbe(t, cnTarget, 150, "www.google.com"))
	if r.Kind != RespDNS {
		t.Fatalf("era1 no injection: %+v", r)
	}
	if len(r.DNS) < 2 || len(r.DNS) > 3 {
		t.Errorf("era1 responses: %d, want 2-3", len(r.DNS))
	}
	if r.InjectedCount != len(r.DNS) {
		t.Errorf("ground truth count mismatch: %d vs %d", r.InjectedCount, len(r.DNS))
	}
	for _, wire := range r.DNS {
		m, err := dnswire.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.ID != 0x4242 {
			t.Error("injection did not echo transaction ID")
		}
		if len(m.Answers) != 1 || m.Answers[0].Type != dnswire.TypeA {
			t.Errorf("era1 answer: %+v", m.Answers)
		}
	}

	// Era 2: Teredo AAAA injection.
	r = net.Probe(dnsProbe(t, cnTarget, 350, "www.google.com"))
	if r.Kind != RespDNS {
		t.Fatal("era2 no injection")
	}
	m, err := dnswire.Decode(r.DNS[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Type != dnswire.TypeAAAA || !m.Answers[0].AAAA.IsTeredo() {
		t.Errorf("era2 answer not Teredo: %+v", m.Answers)
	}

	// Unblocked domain: no response at all (the paper's own-domain test).
	r = net.Probe(dnsProbe(t, cnTarget, 150, "our-own-domain.example"))
	if r.Kind != RespNone {
		t.Errorf("unblocked domain drew response: %+v", r)
	}

	// Subdomains of blocked domains are blocked.
	if !net.GFW.Blocked("maps.google.com") || net.GFW.Blocked("example.org") {
		t.Error("Blocked() subdomain logic wrong")
	}

	// Non-Chinese target: no injection even in-era.
	r = net.Probe(dnsProbe(t, ip6.MustParseAddr("2001:4d00::9"), 150, "www.google.com"))
	if r.Kind != RespNone {
		t.Errorf("injection outside affected AS: %+v", r)
	}

	// TrueResponds reflects injection-driven UDP/53 "responsiveness".
	if !net.TrueResponds(cnTarget, UDP53, 150) {
		t.Error("TrueResponds misses GFW era")
	}
	if net.TrueResponds(cnTarget, UDP53, 50) {
		t.Error("TrueResponds wrong outside era")
	}
}

func TestDNSBehaviors(t *testing.T) {
	net := testWorld(t)
	mk := func(addr string, b DNSBehavior) ip6.Addr {
		a := ip6.MustParseAddr(addr)
		net.AddHost(&Host{Addr: a, Protos: ProtoSetOf(UDP53), BornDay: 0, DeathDay: Forever,
			UptimePermille: 1000, DNS: b})
		return a
	}
	refusing := ip6.MustParseAddr("2001:4d00::53")
	open := mk("2001:4d00::5301", DNSOpenResolver)
	referral := mk("2001:4d00::5302", DNSReferral)
	proxy := mk("2001:4d00::5303", DNSProxy)
	broken := mk("2001:4d00::5304", DNSBroken)

	decode1 := func(r Response) *dnswire.Message {
		t.Helper()
		if r.Kind != RespDNS || len(r.DNS) != 1 {
			t.Fatalf("bad DNS response: %+v", r)
		}
		m, err := dnswire.Decode(r.DNS[0])
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Refusing: REFUSED status.
	m := decode1(net.Probe(dnsProbe(t, refusing, 10, "abc123.hitlist-exp.example")))
	if m.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("refusing rcode: %v", m.Header.RCode)
	}

	// Open resolver: correct AAAA and a query logged at our NS from the
	// same source.
	m = decode1(net.Probe(dnsProbe(t, open, 10, "abc124.hitlist-exp.example")))
	if len(m.Answers) != 1 || m.Answers[0].AAAA != syntheticAAAA("abc124.hitlist-exp.example") {
		t.Errorf("open resolver answer: %+v", m.Answers)
	}
	log := net.NSLogSnapshot()
	if len(log) != 1 || log[0].Source != open || log[0].QName != "abc124.hitlist-exp.example" {
		t.Errorf("NS log: %+v", log)
	}

	// Referral: NS records for the root in authority.
	m = decode1(net.Probe(dnsProbe(t, referral, 10, "abc125.hitlist-exp.example")))
	if len(m.Authority) == 0 || m.Authority[0].Type != dnswire.TypeNS ||
		!strings.Contains(m.Authority[0].Target, "root-servers") {
		t.Errorf("referral authority: %+v", m.Authority)
	}

	// Proxy: correct answer, NS-log source differs from probed target.
	m = decode1(net.Probe(dnsProbe(t, proxy, 10, "abc126.hitlist-exp.example")))
	if len(m.Answers) != 1 {
		t.Fatalf("proxy answers: %+v", m.Answers)
	}
	log = net.NSLogSnapshot()
	if len(log) != 1 || log[0].Source == proxy {
		t.Errorf("proxy NS log should use different egress: %+v", log)
	}

	// Broken: NOTIMP or localhost referral.
	m = decode1(net.Probe(dnsProbe(t, broken, 10, "abc127.hitlist-exp.example")))
	junk := m.Header.RCode == dnswire.RCodeNotImp ||
		(len(m.Answers) == 1 && m.Answers[0].Target == "localhost")
	if !junk {
		t.Errorf("broken behaviour not junk-like: %+v", m)
	}

	// Queries outside our zone never reach our NS.
	net.Probe(dnsProbe(t, open, 10, "www.example.org"))
	if log := net.NSLogSnapshot(); len(log) != 0 {
		t.Errorf("foreign query logged at our NS: %+v", log)
	}
}

func TestTraceroute(t *testing.T) {
	net := testWorld(t)
	web := ip6.MustParseAddr("2001:4d00::80")
	hops := net.Traceroute(web, 10, 32)
	if len(hops) == 0 {
		t.Fatal("no hops")
	}
	last := hops[len(hops)-1]
	if last.Addr != web {
		t.Errorf("responsive target must be final hop: %v", last.Addr)
	}
	for i := 1; i < len(hops); i++ {
		if hops[i].TTL <= hops[i-1].TTL {
			t.Fatal("hops out of TTL order")
		}
	}
	// Determinism within a day.
	hops2 := net.Traceroute(web, 10, 32)
	if len(hops2) != len(hops) {
		t.Error("traceroute not deterministic")
	}

	// Unresponsive Chinese target: rotating router IIDs change across
	// rotation periods.
	cn := ip6.MustParseAddr("240e::abcd")
	h1 := net.Traceroute(cn, 0, 32)
	h2 := net.Traceroute(cn, 70, 32)
	if len(h1) == 0 || len(h2) == 0 {
		t.Fatal("no hops towards CN target")
	}
	cnAS := net.AS.ByASN(4134)
	addrOf := func(hops []Hop) (ip6.Addr, bool) {
		for _, h := range hops {
			if as := net.AS.Lookup(h.Addr); as == cnAS {
				return h.Addr, true
			}
		}
		return ip6.Addr{}, false
	}
	a1, ok1 := addrOf(h1)
	a2, ok2 := addrOf(h2)
	if ok1 && ok2 && a1 == a2 {
		t.Error("rotating router IID did not rotate across periods")
	}
}

func TestASTable(t *testing.T) {
	net := testWorld(t)
	as := net.AS.Lookup(ip6.MustParseAddr("2600:9000:1::5"))
	if as == nil || as.ASN != 64501 {
		t.Errorf("ASOf: %+v", as)
	}
	if net.AS.Lookup(ip6.MustParseAddr("3fff::1")) != nil {
		t.Error("unrouted address attributed")
	}
	if net.AS.NumASes() != 5 {
		t.Errorf("NumASes: %d", net.AS.NumASes())
	}
	if net.AS.NumPrefixes() != 5 {
		t.Errorf("NumPrefixes: %d", net.AS.NumPrefixes())
	}
	all := net.AS.All()
	if len(all) != 5 || all[0].ASN > all[1].ASN {
		t.Error("All not sorted")
	}
	p, as2, ok := net.AS.LookupPrefix(ip6.MustParseAddr("2914::1"))
	if !ok || as2.ASN != 64510 || p.Bits() != 24 {
		t.Errorf("LookupPrefix: %v %v %v", p, as2, ok)
	}
}

func TestProtoSet(t *testing.T) {
	s := ProtoSetOf(ICMP, UDP53)
	if !s.Has(ICMP) || !s.Has(UDP53) || s.Has(TCP80) {
		t.Error("membership")
	}
	if s.Count() != 2 {
		t.Errorf("Count: %d", s.Count())
	}
	s = s.With(TCP80).Without(ICMP)
	if s.Has(ICMP) || !s.Has(TCP80) {
		t.Error("With/Without")
	}
	if ProtoSet(0).String() != "none" || !ProtoSet(0).Empty() {
		t.Error("empty set")
	}
	if AllProtocols.Count() != 5 {
		t.Error("AllProtocols")
	}
	if s.String() == "" {
		t.Error("String")
	}
	if ICMP.String() != "ICMP" || TCP80.String() != "TCP/80" || UDP443.String() != "UDP/443" {
		t.Error("Protocol.String")
	}
	p, err := ParseProtocol("TCP/443")
	if err != nil || p != TCP443 {
		t.Error("ParseProtocol")
	}
	if _, err := ParseProtocol("SCTP"); err == nil {
		t.Error("ParseProtocol accepted junk")
	}
}

func TestFingerprintHelpers(t *testing.T) {
	a := FPLinux
	b := FPLinux
	b.Window = 1234
	if a.Equal(b) {
		t.Error("Equal ignores window")
	}
	if !a.EqualIgnoringWindow(b) {
		t.Error("EqualIgnoringWindow fails")
	}
	if RoundITTL(58) != 64 || RoundITTL(120) != 128 || RoundITTL(250) != 255 || RoundITTL(30) != 32 {
		t.Error("RoundITTL")
	}
}

func TestTimeHelpers(t *testing.T) {
	if Day2018 != 0 {
		t.Errorf("Day2018 = %d", Day2018)
	}
	if DateString(0) != "2018-07-01" {
		t.Errorf("DateString(0) = %s", DateString(0))
	}
	if DayOf(2018, 7, 2) != 1 {
		t.Error("DayOf")
	}
	if got := DateString(Day2022); got != "2022-04-07" {
		t.Errorf("Day2022 = %s", got)
	}
	if !DateOf(Day2021).Equal(DateOf(DayOf(2021, 4, 2))) {
		t.Error("DateOf")
	}
}

func TestCategoryString(t *testing.T) {
	for c := CatISP; c <= CatEnterprise; c++ {
		if c.String() == "" || c.String()[0] == 'C' {
			t.Errorf("Category(%d).String() = %q", c, c.String())
		}
	}
}

func BenchmarkProbeEcho(b *testing.B) {
	net := testWorld(b)
	web := ip6.MustParseAddr("2001:4d00::80")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Probe(Probe{Kind: EchoRequest, Target: web, Day: 10, Size: 64})
	}
}

func BenchmarkProbeDNSInjected(b *testing.B) {
	net := testWorld(b)
	p := dnsProbe(b, ip6.MustParseAddr("240e::1234"), 150, "www.google.com")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Probe(p)
	}
}

func BenchmarkTraceroute(b *testing.B) {
	net := testWorld(b)
	web := ip6.MustParseAddr("2001:4d00::80")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Traceroute(web, 10, 32)
	}
}
