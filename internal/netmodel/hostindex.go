package netmodel

import (
	"sort"

	"hitlist6/internal/ip6"
)

// hostIndex is the sealed, read-only form of the host table: hosts
// partitioned into the canonical ip6.AddrShards shards and sorted by
// address within each shard, with the 16-byte keys packed contiguously so
// a per-probe lookup is a cache-friendly binary search over one shard's
// key array instead of hashing a 16-byte map key. The scan engine probes
// one shard per worker at a time, so consecutive lookups hit the same
// small key range.
//
// The index is built once by Network.Seal after world assembly and
// invalidated by AddHost; an unsealed network falls back to the map.
type hostIndex struct {
	addrs [ip6.AddrShards][]ip6.Addr
	hosts [ip6.AddrShards][]*Host
}

// buildHostIndex freezes the host map into the shard-aligned sorted form.
func buildHostIndex(hosts map[ip6.Addr]*Host) *hostIndex {
	idx := &hostIndex{}
	var counts [ip6.AddrShards]int
	for a := range hosts {
		counts[ip6.ShardOf(a)]++
	}
	// One backing array per field, shared across shards, exactly sized.
	abuf := make([]ip6.Addr, 0, len(hosts))
	hbuf := make([]*Host, 0, len(hosts))
	off := 0
	for sh := range idx.addrs {
		end := off + counts[sh]
		idx.addrs[sh] = abuf[off:off:end]
		idx.hosts[sh] = hbuf[off:off:end]
		off = end
	}
	for a, h := range hosts {
		sh := ip6.ShardOf(a)
		idx.addrs[sh] = append(idx.addrs[sh], a)
		idx.hosts[sh] = append(idx.hosts[sh], h)
	}
	for sh := range idx.addrs {
		sort.Sort(&shardSorter{addrs: idx.addrs[sh], hosts: idx.hosts[sh]})
	}
	return idx
}

// lookup returns the host registered at a, or nil. shard must be
// ip6.ShardOf(a).
func (idx *hostIndex) lookup(shard int, a ip6.Addr) *Host {
	addrs := idx.addrs[shard]
	hi, lo := a.Hi(), a.Lo()
	i, j := 0, len(addrs)
	for i < j {
		m := int(uint(i+j) >> 1)
		mhi := addrs[m].Hi()
		if mhi < hi || (mhi == hi && addrs[m].Lo() < lo) {
			i = m + 1
		} else {
			j = m
		}
	}
	if i < len(addrs) && addrs[i] == a {
		return idx.hosts[shard][i]
	}
	return nil
}

// shardSorter sorts one shard's parallel addr/host slices by address.
type shardSorter struct {
	addrs []ip6.Addr
	hosts []*Host
}

func (s *shardSorter) Len() int           { return len(s.addrs) }
func (s *shardSorter) Less(i, j int) bool { return s.addrs[i].Less(s.addrs[j]) }
func (s *shardSorter) Swap(i, j int) {
	s.addrs[i], s.addrs[j] = s.addrs[j], s.addrs[i]
	s.hosts[i], s.hosts[j] = s.hosts[j], s.hosts[i]
}
