package netmodel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/rng"
)

// injectModels builds two identically-configured injectors: one on the
// template fast path, one pinned to the full-encode reference path.
func injectModels() (tpl, ref *GFWModel) {
	mk := func() *GFWModel {
		g := NewGFWModel(7)
		g.AffectedASNs[4134] = true
		g.BlockedDomains["google.com"] = true
		g.BlockedDomains["facebook.com"] = true
		g.Eras = []InjectionEra{
			{StartDay: 0, EndDay: 100, Mode: InjectA},
			{StartDay: 100, EndDay: 200, Mode: InjectTeredo},
		}
		return g
	}
	tpl, ref = mk(), mk()
	ref.noTemplates = true
	return tpl, ref
}

// TestInjectTemplateMatchesEncode pins the template patching against the
// full AppendReply encode, byte for byte, across both injection eras,
// blocked subdomains, recursion-flag variants, and many (target, txid,
// day) combinations — every field the patch must get right.
func TestInjectTemplateMatchesEncode(t *testing.T) {
	tpl, ref := injectModels()
	as := &AS{ASN: 4134}
	qnames := []string{"www.google.com", "google.com", "m.facebook.com", "a.b.facebook.com"}
	r := rng.NewStream(7, "gfw-template-test")
	for _, day := range []int{5, 60, 99, 100, 150, 199} {
		for _, qname := range qnames {
			for _, rd := range []bool{true, false} {
				for i := 0; i < 16; i++ {
					target := ip6.AddrFromUint64s(r.Uint64(), r.Uint64())
					txid := uint16(r.Uint64())
					q := dnswire.NewQuery(txid, qname, dnswire.TypeAAAA)
					q.Header.RecursionDesired = rd
					got := tpl.Inject(target, as, q, txid, day)
					want := ref.Inject(target, as, q, txid, day)
					if len(got) != len(want) {
						t.Fatalf("day=%d q=%s rd=%v: %d forged messages, want %d", day, qname, rd, len(got), len(want))
					}
					for j := range want {
						if !bytes.Equal(got[j], want[j]) {
							t.Fatalf("day=%d q=%s rd=%v target=%s msg %d:\n tpl %x\n ref %x",
								day, qname, rd, target, j, got[j], want[j])
						}
					}
				}
			}
		}
	}
}

// TestInjectTemplateConcurrent hammers one injector from many
// goroutines: the template cache must stay consistent under concurrent
// first-use and reuse (the scan engine injects from parallel workers).
func TestInjectTemplateConcurrent(t *testing.T) {
	tpl, ref := injectModels()
	as := &AS{ASN: 4134}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.NewStream(uint64(g), "gfw-template-conc")
			for i := 0; i < 500; i++ {
				target := ip6.AddrFromUint64s(r.Uint64(), r.Uint64())
				txid := uint16(r.Uint64())
				day := int(r.Uint64() % 200)
				q := dnswire.NewQuery(txid, "www.google.com", dnswire.TypeAAAA)
				got := tpl.Inject(target, as, q, txid, day)
				want := ref.Inject(target, as, q, txid, day)
				if len(got) != len(want) {
					errs <- fmt.Errorf("goroutine %d: count mismatch", g)
					return
				}
				for j := range want {
					if !bytes.Equal(got[j], want[j]) {
						errs <- fmt.Errorf("goroutine %d: byte mismatch at msg %d", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
