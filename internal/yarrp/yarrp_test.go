package yarrp

import (
	"context"
	"testing"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

func testWorld(t testing.TB) *netmodel.Network {
	t.Helper()
	ases := []*netmodel.AS{
		{ASN: 3356, Name: "Level3", Country: "US", Category: netmodel.CatTransit,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:1900::/24")}, AnnouncedFrom: []int{0}},
		{ASN: 6057, Name: "ANTEL", Country: "UY", Category: netmodel.CatISP, RouterRotationDays: 14,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2800:a0::/24")}, AnnouncedFrom: []int{0}},
		{ASN: 100, Name: "Host", Country: "DE", Category: netmodel.CatCloud,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:100::/32")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(11, netmodel.NewASTable(ases))
	n.AddHost(&netmodel.Host{Addr: ip6.MustParseAddr("2001:100::1"),
		Protos: netmodel.ProtoSetOf(netmodel.ICMP), BornDay: 0, DeathDay: netmodel.Forever,
		UptimePermille: 1000, MTU: 1500})
	return n
}

func TestTraceDiscoversRouters(t *testing.T) {
	n := testWorld(t)
	tr := New(n, Config{Seed: 1})
	targets := []ip6.Addr{
		ip6.MustParseAddr("2001:100::1"),  // responsive
		ip6.MustParseAddr("2800:a0::42"),  // unresponsive in rotating-ISP
		ip6.MustParseAddr("2001:100::99"), // unresponsive
	}
	found, err := tr.Trace(context.Background(), targets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if found.Len() == 0 {
		t.Fatal("no routers discovered")
	}
	// Targets themselves are never in the output.
	for _, target := range targets {
		if found.Has(target) {
			t.Errorf("target %v leaked into discovered set", target)
		}
	}
	// At least one transit router.
	transit := ip6.MustParsePrefix("2001:1900::/24")
	some := false
	for a := range found {
		if transit.Contains(a) {
			some = true
		}
	}
	if !some {
		t.Error("no transit routers discovered")
	}
}

func TestTraceDeterministic(t *testing.T) {
	n := testWorld(t)
	tr := New(n, Config{Seed: 1})
	targets := []ip6.Addr{ip6.MustParseAddr("2800:a0::42"), ip6.MustParseAddr("2001:100::1")}
	s1, _ := tr.Trace(context.Background(), targets, 10)
	s2, _ := tr.Trace(context.Background(), targets, 10)
	if s1.Len() != s2.Len() {
		t.Fatal("non-deterministic trace")
	}
	for a := range s1 {
		if !s2.Has(a) {
			t.Fatal("sets differ")
		}
	}
}

func TestRotationGrowsDiscoveredSet(t *testing.T) {
	n := testWorld(t)
	tr := New(n, Config{Seed: 1})
	targets := []ip6.Addr{ip6.MustParseAddr("2800:a0::42")}
	rot := ip6.MustParsePrefix("2800:a0::/24")
	all := ip6.NewSet(0)
	perPeriod := 0
	for day := 0; day < 70; day += 14 {
		s, err := tr.Trace(context.Background(), targets, day)
		if err != nil {
			t.Fatal(err)
		}
		cnt := 0
		for a := range s {
			if rot.Contains(a) {
				all.Add(a)
				cnt++
			}
		}
		if perPeriod == 0 {
			perPeriod = cnt
		}
	}
	if perPeriod == 0 {
		t.Skip("no rotating-AS hops responded on day 0; world too small")
	}
	if all.Len() <= perPeriod {
		t.Errorf("rotation did not accumulate: %d total vs %d per period", all.Len(), perPeriod)
	}
}

func TestLastHops(t *testing.T) {
	n := testWorld(t)
	tr := New(n, Config{Seed: 1})
	targets := []ip6.Addr{
		ip6.MustParseAddr("2001:100::1"),   // responsive: excluded
		ip6.MustParseAddr("2800:a0::4242"), // unresponsive: last hop recorded
	}
	last, err := tr.LastHops(context.Background(), targets, 3)
	if err != nil {
		t.Fatal(err)
	}
	if last.Has(ip6.MustParseAddr("2001:100::1")) {
		t.Error("responsive target in last-hop set")
	}
	// Unresponsive target contributes some router.
	if last.Len() == 0 {
		t.Error("no last hops recorded")
	}
}

func TestTraceCancel(t *testing.T) {
	n := testWorld(t)
	tr := New(n, Config{Seed: 1, Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	targets := make([]ip6.Addr, 100000)
	p := ip6.MustParsePrefix("2800:a0::/24")
	for i := range targets {
		targets[i] = p.NthAddr(uint64(i))
	}
	if _, err := tr.Trace(ctx, targets, 1); err == nil {
		t.Error("cancelled trace returned nil error")
	}
}

func BenchmarkTrace1k(b *testing.B) {
	n := testWorld(b)
	tr := New(n, Config{Seed: 1})
	p := ip6.MustParsePrefix("2800:a0::/24")
	targets := make([]ip6.Addr, 1000)
	for i := range targets {
		targets[i] = p.NthAddr(uint64(i) * 331)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Trace(context.Background(), targets, i); err != nil {
			b.Fatal(err)
		}
	}
}
