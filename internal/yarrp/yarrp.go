// Package yarrp simulates Yarrp-style randomized high-speed traceroutes,
// the topology source the hitlist service runs against all targets.
//
// Yarrp's defining property is that it randomizes the (target, TTL) probe
// order so no path sees a burst; here that becomes a seeded permutation of
// the target list. The output is the set of responding router interfaces —
// including the short-lived, rotating-IID addresses that flood the hitlist
// input and (inside Chinese ASes) later trigger GFW injections.
package yarrp

import (
	"context"
	"runtime"
	"sync"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
)

// Config parameterizes a trace run.
type Config struct {
	Seed    uint64
	MaxHops int
	Workers int
}

// Tracer runs traceroutes against the world.
type Tracer struct {
	net *netmodel.Network
	cfg Config
}

// New builds a tracer.
func New(n *netmodel.Network, cfg Config) *Tracer {
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 32
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Tracer{net: n, cfg: cfg}
}

// Trace runs traceroutes towards every target at the given day and
// returns the union of responding hop addresses (targets themselves are
// excluded — the caller already knows them; new addresses are the point).
func (t *Tracer) Trace(ctx context.Context, targets []ip6.Addr, day int) (ip6.Set, error) {
	perm := rng.NewStream(t.cfg.Seed, "yarrp-perm").Perm(len(targets))

	type chunk struct{ lo, hi int }
	nw := t.cfg.Workers
	chunks := make(chan chunk, nw)
	results := make([]ip6.Set, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		results[w] = ip6.NewSet(0)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := range chunks {
				for i := c.lo; i < c.hi; i++ {
					target := targets[perm[i]]
					for _, hop := range t.net.Traceroute(target, day, t.cfg.MaxHops) {
						if hop.Addr != target && hop.Addr.IsGlobalUnicast() {
							results[w].Add(hop.Addr)
						}
					}
				}
			}
		}(w)
	}

	var err error
	const step = 256
feed:
	for lo := 0; lo < len(targets); lo += step {
		hi := lo + step
		if hi > len(targets) {
			hi = len(targets)
		}
		select {
		case chunks <- chunk{lo, hi}:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(chunks)
	wg.Wait()

	out := ip6.NewSet(0)
	for _, s := range results {
		out.AddAll(s)
	}
	return out, err
}

// LastHops returns, for every target that did not answer itself, the last
// responding router address on its path — the addresses the paper
// identifies as the source of the GFW-affected input ("the targeted
// address is not responsive itself" but the last hop is captured).
func (t *Tracer) LastHops(ctx context.Context, targets []ip6.Addr, day int) (ip6.Set, error) {
	out := ip6.NewSet(0)
	for i, target := range targets {
		if i%1024 == 0 {
			select {
			case <-ctx.Done():
				return out, ctx.Err()
			default:
			}
		}
		hops := t.net.Traceroute(target, day, t.cfg.MaxHops)
		if len(hops) == 0 {
			continue
		}
		last := hops[len(hops)-1]
		if last.Addr != target && last.Addr.IsGlobalUnicast() {
			out.Add(last.Addr)
		}
	}
	return out, nil
}
