package worldgen

import (
	"fmt"

	"hitlist6/internal/dnsdb"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
)

// webProtos is the standard web-server protocol set.
var webProtos = netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80, netmodel.TCP443)

// buildAliases installs the fully responsive (aliased) prefixes: the named
// CDN structure from Section 5 plus the growing tail of aliased /64s.
func (w *World) buildAliases(p Params) {
	r := rng.NewStream(p.Seed, "aliases")
	add := func(prefix ip6.Prefix, asn int, protos netmodel.ProtoSet, backends, born int, domains bool, dns netmodel.DNSBehavior) *netmodel.AliasRule {
		as := w.Net.AS.ByASN(asn)
		rule := &netmodel.AliasRule{
			Prefix: prefix, AS: as, Protos: protos,
			Backends: backends, BornDay: born, DeathDay: netmodel.Forever,
			FP: netmodel.FPLinuxLB, HostsDomains: domains, DNS: dns, MTU: 1500,
		}
		w.Net.AddAlias(rule)
		// CDNs and hosters announce their aliased specifics in BGP (up to
		// /48), which is how the multi-level detection catches the whole
		// region at once instead of one /64 at a time.
		if prefix.Bits() < 64 {
			already := false
			for _, p := range as.Announced {
				if p == prefix {
					already = true
					break
				}
			}
			if !already {
				w.Net.AS.Announce(prefix, as, born)
			}
		}
		return rule
	}
	cdnProtos := webProtos.With(netmodel.UDP443)

	// Amazon: nearly its whole space fully responsive (the 200 M-address
	// bias the paper highlights). 14 of 16 /32s per /28.
	for _, base := range w.Net.AS.ByASN(ASNAmazon).Announced {
		for i := uint64(0); i < 14; i++ {
			add(base.Child(4, i), ASNAmazon, webProtos, 1, 0, i < 2, netmodel.DNSNone)
		}
	}
	// Fastly: 15/16 of the /32 aliased (95.3 % in the paper), QUIC on.
	fastly := w.Net.AS.ByASN(ASNFastly).Announced[0]
	for i := uint64(0); i < 15; i++ {
		add(fastly.Child(4, i), ASNFastly, cdnProtos, 1, 0, i < 4, netmodel.DNSNone)
	}
	// Cloudflare: domain-hosting /48s — one "mega" prefix hosts millions
	// of domains — plus a resolver prefix answering UDP/53. Partial
	// PMTU sharing (Backends > 1) reproduces the TBT findings.
	cf := w.Net.AS.ByASN(ASNCloudflare).Announced[0]
	nCF := 24
	for i := 0; i < nCF; i++ {
		rule := add(cf.Child(16, uint64(i+1)), ASNCloudflare, cdnProtos, 6, 0, true, netmodel.DNSNone)
		rule.FP = netmodel.FPLinux
	}
	add(cf.Child(16, 0x99), ASNCloudflare, cdnProtos.With(netmodel.UDP53), 6, 0, false, netmodel.DNSRefusing)
	// Cloudflare-London and Akamai-Intl: 100 % of announced space.
	add(w.Net.AS.ByASN(ASNCloudflareLon).Announced[0], ASNCloudflareLon, cdnProtos, 6, 0, true, netmodel.DNSNone)
	add(w.Net.AS.ByASN(ASNAkamaiIntl).Announced[0], ASNAkamaiIntl, cdnProtos, 6, 0, false, netmodel.DNSNone)
	// Akamai: partially aliased; the dense /48 that blew up 6Tree.
	ak := w.Net.AS.ByASN(ASNAkamai).Announced[0]
	for i := 0; i < 6; i++ {
		add(ak.Child(16, uint64(i+1)), ASNAkamai, cdnProtos, 8, 0, true, netmodel.DNSNone)
	}
	// Google: a few aliased QUIC-speaking /48s.
	gg := w.Net.AS.ByASN(ASNGoogle).Announced[0]
	for i := 0; i < 4; i++ {
		add(gg.Child(16, uint64(i+1)), ASNGoogle, cdnProtos, 1, 0, true, netmodel.DNSNone)
	}
	// EpicUp: whole /28s aliased — the shortest aliased prefixes.
	for _, pre := range w.Net.AS.ByASN(ASNEpicUp).Announced {
		add(pre, ASNEpicUp, netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80), 1, 0, false, netmodel.DNSNone)
	}
	// Misaka: anycast DNS service (UDP/53-responsive aliased prefix).
	add(w.Net.AS.ByASN(ASNMisaka).Announced[0].Child(3, 1), ASNMisaka,
		netmodel.ProtoSetOf(netmodel.ICMP, netmodel.UDP53), 1, 0, false, netmodel.DNSRefusing)
	// Trafficforce: every announced /64 aliased, ICMP only, born with the
	// February 2022 announcement.
	for _, pre := range w.Net.AS.ByASN(ASNTrafficforce).Announced {
		rule := add(pre, ASNTrafficforce, netmodel.ProtoSetOf(netmodel.ICMP), 1, TrafficforceDay, false, netmodel.DNSNone)
		rule.FP = netmodel.FPEmbedded
	}

	// The tail: aliased /64s across hosting ASes, growing from the 2018
	// level (12 k) to the 2022 level (42.8 k) linearly over the period.
	n2018 := p.count(12000)
	n2022 := p.count(42800)
	hostASNs := []int{ASNLinode, ASNDigitalOcean, ASNHomePL, ASNRacktech, ASNGlasfaser}
	for i := 0; i < p.TailASes; i += 2 {
		hostASNs = append(hostASNs, 300000+i)
	}
	for i := 0; i < n2022; i++ {
		asn := hostASNs[r.Intn(len(hostASNs))]
		as := w.Net.AS.ByASN(asn)
		base := as.Announced[r.Intn(len(as.Announced))]
		sub := base.Child(32, uint64(rng.Mix(p.Seed, uint64(i), 0xa64)%(1<<31)))
		born := 0
		if i >= n2018 {
			born = 1 + r.Intn(TrafficforceDay-2)
		}
		protos := cdnProtos
		switch {
		case r.Bool(0.08):
			protos = netmodel.ProtoSetOf(netmodel.ICMP, netmodel.TCP80)
		case r.Bool(0.25):
			protos = webProtos
		}
		backends := 1
		if r.Bool(0.01) {
			backends = 4096 // per-address termination: TBT sees no sharing
		}
		rule := add(sub, asn, protos, backends, born, r.Bool(0.12), netmodel.DNSNone)
		if r.Bool(0.005) {
			rule.WindowJitter = true // the 160/33.5k variable-FP prefixes
		}
		if r.Bool(0.3) {
			rule.FP = netmodel.FPLinux
		}
	}

	// A small population of longer aliased prefixes (/80, /96): the tail
	// of Figure 5, only detectable when enough input addresses fall into
	// them (the ≥100-address threshold ablation).
	nLong := p.count(1800)
	for i := 0; i < nLong; i++ {
		asn := hostASNs[r.Intn(len(hostASNs))]
		as := w.Net.AS.ByASN(asn)
		base := as.Announced[r.Intn(len(as.Announced))]
		bits := 80
		if i%3 == 0 {
			bits = 96
		}
		sub := ip6.PrefixFrom(ip6.AddrFromUint64s(
			base.Addr().Hi()|rng.Mix(p.Seed, uint64(i), 0x10f6)%(1<<32),
			rng.Mix(p.Seed, uint64(i), 0x20f6)&^0xffffffff), bits)
		add(sub, asn, webProtos, 1, 0, false, netmodel.DNSNone)
	}
}

// hostSpec is the outcome of the cohort draw for one host.
type hostSpec struct {
	born, death    int
	downFrom, down int
	transient      bool
	comeback       bool
}

// buildHosts creates the responsive host population: the Table 1 growth
// cohorts, the short-lived transients that dominate the cumulative count,
// the hidden hosts only target generation can find, and the comeback
// cohort for the unresponsive-pool re-scan.
func (w *World) buildHosts(p Params) {
	r := rng.NewStream(p.Seed, "hosts")

	// AS assignment: pinned shares for named ASes (Figure 2/9 shapes),
	// Zipf over the tail.
	type asShare struct {
		asn   int
		share float64
		dense bool // dense low-IID blocks (TGA-discoverable)
	}
	shares := []asShare{
		{ASNLinode, 0.079, true},
		{4812, 0.050, false},
		{ASNFreeSAS, 0.047, true},
		{ASNDTAG, 0.032, false},
		{ASNVNPT, 0.022, false},
		{ASNDigitalOcean, 0.021, true},
		{ASNGlasfaser, 0.019, false},
		{ASNHomePL, 0.016, true},
		{ASNRacktech, 0.012, true},
		{ASNChinaMobile, 0.012, true},
		{4134, 0.010, false},
		{ASNCERN, 0.009, true},
		{ASNARNES, 0.007, true},
		{ASNANTEL, 0.015, false},
		{ASNGoogle, 0.004, false},
	}
	pinned := 0.0
	for _, s := range shares {
		pinned += s.share
	}
	zipf := rng.NewZipf(p.TailASes, 1.05, 3)

	pickAS := func() (asn int, dense bool) {
		u := r.Float64()
		acc := 0.0
		for _, s := range shares {
			acc += s.share
			if u < acc {
				return s.asn, s.dense
			}
		}
		i := zipf.Sample(r)
		return 300000 + i, i%3 == 0
	}

	// Cohort sizes (paper magnitudes × scale).
	base := p.count(1.9e6)
	rdns := p.count(800e3)
	growth := p.count(1.4e6)
	transients := p.count(38e6)
	comebacks := p.count(1.2e6)
	hidden := p.count(2.6e6) // responsive but unknown to the service's feeds

	// Hidden hosts interleave with visible ones inside the same dense
	// blocks: the feeds know only part of each block, and the gap-filling
	// generators (Section 6) discover the rest.
	hiddenLeft := hidden
	maybeHidden := func(asn int, dense bool) {
		if dense && hiddenLeft > 0 && r.Bool(0.6) {
			w.addCohortHost(p, r, asn, dense, hostSpec{born: 0, death: netmodel.Forever}, feedHidden)
			hiddenLeft--
		}
	}

	for i := 0; i < base; i++ {
		asn, dense := pickAS()
		w.addCohortHost(p, r, asn, dense, hostSpec{born: 0, death: netmodel.Forever}, feedDefault)
		maybeHidden(asn, dense)
	}
	rdnsDay := netmodel.DayOf(2019, 2, 1)
	for i := 0; i < rdns; i++ {
		death := netmodel.Forever
		if r.Bool(0.8) {
			// The one-shot import's hosts fade out over the following
			// year, producing the 2019→2020 dip of Table 1.
			death = netmodel.DayOf(2019, 7, 1) + r.Intn(300)
		}
		asn, dense := pickAS()
		w.addCohortHost(p, r, asn, dense, hostSpec{born: rdnsDay, death: death}, feedRDNS)
	}
	growthFrom := netmodel.DayOf(2020, 2, 1)
	for i := 0; i < growth; i++ {
		born := growthFrom + r.Intn(EndDay-growthFrom)
		death := netmodel.Forever
		if r.Bool(0.15) {
			death = born + 300 + r.Intn(400)
		}
		asn, dense := pickAS()
		w.addCohortHost(p, r, asn, dense, hostSpec{born: born, death: death}, feedDefault)
		maybeHidden(asn, dense)
	}

	// Remaining hidden budget goes to Free SAS, the paper's top TGA bias.
	for hiddenLeft > 0 {
		w.addCohortHost(p, r, ASNFreeSAS, true, hostSpec{born: 0, death: netmodel.Forever}, feedHidden)
		hiddenLeft--
	}

	// Comeback cohort: long outage → evicted → responsive again later.
	// Concentrated in VNPT and DigitalOcean (Table 4's top ASes for the
	// unresponsive-address source).
	for i := 0; i < comebacks; i++ {
		asn := ASNVNPT
		switch {
		case r.Bool(0.062):
			asn = ASNDigitalOcean
		case r.Bool(0.45):
			asn, _ = pickAS()
		}
		born := r.Intn(netmodel.DayOf(2021, 1, 1))
		downFrom := born + 30 + r.Intn(200)
		spec := hostSpec{born: born, death: netmodel.Forever, downFrom: downFrom, down: 150 + r.Intn(400), comeback: true}
		w.addCohortHost(p, r, asn, false, spec, feedDefault)
	}

	// Transients: short-lived ICMP responders (rotating ISP space).
	transientASNs := []int{ASNDTAG, ASNANTEL, ASNVNPT, 4134, 4812, ASNGlasfaser}
	for i := 0; i < transients; i++ {
		asn := transientASNs[r.Intn(len(transientASNs))]
		if r.Bool(0.3) {
			asn = 300000 + zipf.Sample(r)
		}
		as := w.Net.AS.ByASN(asn)
		pre := as.Announced[r.Intn(len(as.Announced))]
		addr := ip6.AddrFromUint64s(pre.Addr().Hi()|rng.Mix(p.Seed, uint64(i), 0x77a)%(1<<30), r.Uint64())
		born := r.Intn(EndDay + 1)
		h := &netmodel.Host{
			Addr: addr, Protos: netmodel.ProtoSetOf(netmodel.ICMP),
			BornDay: born, DeathDay: born + 5 + r.Intn(21),
			UptimePermille: 1000, FP: netmodel.FPEmbedded, MTU: 1500,
		}
		w.Net.AddHost(h)
		w.transientByWeek[born/7] = append(w.transientByWeek[born/7], addr)
	}
}

// feedTag routes a cohort host into the right input feed.
type feedTag uint8

const (
	feedDefault feedTag = iota // dns-aaaa or traceroute, by protocol
	feedRDNS                   // the one-shot rDNS import
	feedHidden                 // no feed: only target generation finds it
)

// addCohortHost materializes one cohort host: placement, protocol mix,
// uptime, DNS behaviour — and records it in the feed pools.
func (w *World) addCohortHost(p Params, r *rng.Stream, asn int, dense bool, spec hostSpec, tag feedTag) {
	as := w.Net.AS.ByASN(asn)
	if as == nil || len(as.Announced) == 0 {
		return
	}
	addr := w.placeHost(p, r, as, dense)

	// Protocol mix. All percentages approximate Table 1 / Figure 10.
	protos := netmodel.ProtoSetOf(netmodel.ICMP)
	dnsBehavior := netmodel.DNSNone
	u := r.Float64()
	switch {
	case u < 0.27: // web server
		protos = webProtos
		switch v := r.Float64(); {
		case v < 0.09:
			protos = protos.Without(netmodel.TCP443)
		case v < 0.15:
			protos = protos.Without(netmodel.TCP80)
		}
		// QUIC adoption grows over the period.
		quicP := 0.03 + 0.09*float64(spec.born)/float64(EndDay+1)
		if r.Bool(quicP) {
			protos = protos.With(netmodel.UDP443)
		}
		if r.Bool(0.06) {
			protos = protos.Without(netmodel.ICMP)
		}
	case u < 0.314: // DNS infrastructure
		protos = netmodel.ProtoSetOf(netmodel.ICMP, netmodel.UDP53)
		switch v := r.Float64(); {
		case v < 0.938:
			dnsBehavior = netmodel.DNSRefusing
		case v < 0.984:
			dnsBehavior = netmodel.DNSOpenResolver
		case v < 0.988:
			dnsBehavior = netmodel.DNSReferral
		case v < 0.989:
			dnsBehavior = netmodel.DNSProxy
		default:
			dnsBehavior = netmodel.DNSBroken
		}
	}

	uptime := uint16(925 + r.Intn(70))
	if r.Bool(0.06) {
		uptime = 1000 // the 5.4 % responsive through the whole period
	}
	fp := netmodel.FPProfiles[r.Intn(len(netmodel.FPProfiles))]
	h := &netmodel.Host{
		Addr: addr, Protos: protos, BornDay: spec.born, DeathDay: spec.death,
		UptimePermille: uptime, FP: fp, DNS: dnsBehavior, MTU: 1500,
	}
	if spec.comeback {
		h.DownFrom = spec.downFrom
		h.DownTo = spec.downFrom + spec.down
		h.UptimePermille = 1000
	}
	w.Net.AddHost(h)

	switch tag {
	case feedHidden:
		// Invisible to every feed — only target generation finds these.
	case feedRDNS:
		w.rdnsAddrs = append(w.rdnsAddrs, addr)
	default:
		ref := hostRef{Addr: addr, Born: spec.born}
		switch {
		case protos.Has(netmodel.UDP53):
			w.dnsHosts = append(w.dnsHosts, ref)
		case protos.Has(netmodel.TCP80) || protos.Has(netmodel.TCP443):
			w.webHosts = append(w.webHosts, ref)
		default:
			w.icmpHosts = append(w.icmpHosts, ref)
		}
	}
}

// denseBlockSize is how many hosts share one dense /64 block. Blocks fill
// sequentially, so every dense block really is dense — the structure
// distance clustering and the pattern miners exploit.
const denseBlockSize = 20

// placeHost picks an address inside the AS. Dense ASes use block
// placement — runs of low IIDs with small gaps inside shared /64s — which
// is what distance clustering and the pattern miners exploit; other ASes
// scatter hosts across subnets with mixed IID styles.
func (w *World) placeHost(p Params, r *rng.Stream, as *netmodel.AS, dense bool) ip6.Addr {
	pre := as.Announced[r.Intn(len(as.Announced))]
	if dense {
		if w.denseCounter == nil {
			w.denseCounter = make(map[int]int)
		}
		idx := w.denseCounter[as.ASN]
		w.denseCounter[as.ASN]++
		block := uint64(idx / denseBlockSize)
		slot := uint64(idx % denseBlockSize)
		sub := rng.Mix(uint64(as.ASN), block, 0xb10c) % (1 << 24)
		hi := as.Announced[int(block)%len(as.Announced)].Addr().Hi() | sub
		base := (rng.Mix(uint64(as.ASN), block, 0x0ff5) % 16) << 8
		stride := 1 + rng.Mix(uint64(as.ASN), block, 0x57de)%5
		jitter := rng.Mix(uint64(as.ASN), block, slot, 0x717) % stride
		return ip6.AddrFromUint64s(hi, base+slot*(stride+1)+jitter+1)
	}
	sub := r.Uint64() % (1 << 28)
	hi := pre.Addr().Hi() | sub
	switch r.Intn(3) {
	case 0: // low IID
		return ip6.AddrFromUint64s(hi, 1+uint64(r.Intn(200)))
	case 1: // EUI-64
		mac := ip6.MAC{0x28, 0x6f, byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}
		return ip6.AddrFromMAC(ip6.PrefixFrom(ip6.AddrFromUint64s(hi, 0), 64), mac)
	default: // random IID
		return ip6.AddrFromUint64s(hi, r.Uint64())
	}
}

// buildDomains populates the DNS registry: domains hosted in CDN aliased
// prefixes (Section 5.2), domains on ordinary web hosts, NS/MX
// infrastructure concentrated in Amazon, and the three top lists.
func (w *World) buildDomains(p Params) {
	r := rng.NewStream(p.Seed, "domains")
	reg := dnsdb.NewRegistry()
	w.Registry = reg

	// Aliased prefixes that host domains, with Cloudflare's mega-prefix
	// first (3.94 M domains in a single /48 in the paper).
	var hosting []*netmodel.AliasRule
	for _, rule := range w.Net.AliasRules() {
		if rule.HostsDomains {
			hosting = append(hosting, rule)
		}
	}
	if len(hosting) == 0 {
		return
	}
	// Stable order for determinism.
	for i := 1; i < len(hosting); i++ {
		for j := i; j > 0 && ip6.ComparePrefix(hosting[j].Prefix, hosting[j-1].Prefix) < 0; j-- {
			hosting[j], hosting[j-1] = hosting[j-1], hosting[j]
		}
	}
	mega := hosting[0]
	for _, rule := range hosting {
		if rule.AS != nil && rule.AS.ASN == ASNCloudflare {
			mega = rule
			break
		}
	}

	inAliased := p.count(15e6)
	onHosts := p.count(10e6)
	topN := p.count(1e6)

	alexaRank, majRank, umbRank := 1, 1, 1
	addDomain := func(name string, addr ip6.Addr, ranked bool) {
		d := &dnsdb.Domain{Name: name, AAAA: []ip6.Addr{addr}}
		if ranked {
			if alexaRank <= topN && r.Bool(0.6) {
				d.Ranks[dnsdb.Alexa] = alexaRank
				alexaRank++
			}
			if majRank <= topN && r.Bool(0.5) {
				d.Ranks[dnsdb.Majestic] = majRank
				majRank++
			}
			if umbRank <= topN && r.Bool(0.4) {
				d.Ranks[dnsdb.Umbrella] = umbRank
				umbRank++
			}
		}
		reg.Add(d)
	}

	// Famous domains inside Cloudflare's aliased space (facebook.com and
	// spotify.com were within the affected Alexa Top 1k).
	fb := &dnsdb.Domain{Name: "facebook.com", AAAA: []ip6.Addr{mega.Prefix.NthAddr(0xface)}}
	fb.Ranks[dnsdb.Alexa] = alexaRank
	alexaRank++
	reg.Add(fb)
	sp := &dnsdb.Domain{Name: "spotify.com", AAAA: []ip6.Addr{mega.Prefix.NthAddr(0x5107)}}
	sp.Ranks[dnsdb.Alexa] = alexaRank
	alexaRank++
	reg.Add(sp)

	for i := 0; i < inAliased; i++ {
		rule := hosting[r.Intn(len(hosting))]
		if r.Bool(0.25) {
			rule = mega // the mega-prefix concentration
		}
		addr := rule.Prefix.NthAddr(uint64(r.Intn(1 << 30)))
		// ~17 % of ranked domains resolve into aliased prefixes.
		addDomain(fmt.Sprintf("site%d.example", i), addr, r.Bool(0.17))
	}
	for i := 0; i < onHosts && len(w.webHosts) > 0; i++ {
		addr := w.webHosts[r.Intn(len(w.webHosts))].Addr
		addDomain(fmt.Sprintf("host%d.example", i), addr, r.Bool(0.55))
	}

	// NS/MX infrastructure: 71 % inside Amazon's aliased space.
	amazonRules := []*netmodel.AliasRule{}
	for _, rule := range w.Net.AliasRules() {
		if rule.AS != nil && rule.AS.ASN == ASNAmazon {
			amazonRules = append(amazonRules, rule)
		}
	}
	nInfra := p.count(520e3)
	for i := 0; i < nInfra; i++ {
		var addr ip6.Addr
		if r.Bool(0.71) && len(amazonRules) > 0 {
			rule := amazonRules[r.Intn(len(amazonRules))]
			addr = rule.Prefix.NthAddr(uint64(r.Intn(1 << 26)))
		} else if len(w.dnsHosts) > 0 && r.Bool(0.5) {
			addr = w.dnsHosts[r.Intn(len(w.dnsHosts))].Addr
		} else if len(w.webHosts) > 0 {
			addr = w.webHosts[r.Intn(len(w.webHosts))].Addr
		} else {
			continue
		}
		name := fmt.Sprintf("ns%d.infra.example", i)
		reg.AddHost(name, addr)
		w.PassiveNSMX.Add(addr)
	}
}

// buildNewSources materializes the Section 6 snapshots: CAIDA Ark-style
// router addresses and the DET dump.
func (w *World) buildNewSources(p Params) {
	r := rng.NewStream(p.Seed, "new-sources")

	// Ark: traceroute-derived router interfaces from other vantage
	// points — mostly overlapping transit/ISP routers plus a slice of
	// fresh ones and some known hosts.
	nArk := p.count(900e3)
	for i := 0; i < nArk; i++ {
		switch {
		case r.Bool(0.55) && len(w.icmpHosts) > 0:
			w.ArkAddrs = append(w.ArkAddrs, w.icmpHosts[r.Intn(len(w.icmpHosts))].Addr)
		case r.Bool(0.5):
			// A fresh router interface in a tail AS.
			as := w.Net.AS.ByASN(300000 + r.Intn(p.TailASes))
			hi := as.Announced[0].Addr().Hi() | uint64(r.Intn(1<<16))<<8
			w.ArkAddrs = append(w.ArkAddrs, ip6.AddrFromUint64s(hi, uint64(1+r.Intn(8))))
		default:
			w.ArkAddrs = append(w.ArkAddrs, w.randomHostAddr(r))
		}
	}

	// DET: a published responsive-address snapshot — heavy overlap with
	// the hitlist, some aliased addresses, little genuinely new.
	nDET := p.count(2.1e6)
	rules := w.Net.AliasRules()
	for i := 0; i < nDET; i++ {
		switch {
		case r.Bool(0.72):
			w.DETAddrs = append(w.DETAddrs, w.randomHostAddr(r))
		case r.Bool(0.4) && len(rules) > 0:
			rule := rules[r.Intn(len(rules))]
			w.DETAddrs = append(w.DETAddrs, rule.Prefix.NthAddr(uint64(r.Intn(1<<24))))
		default:
			// Unresponsive junk candidates.
			as := w.Net.AS.ByASN(300000 + r.Intn(p.TailASes))
			hi := as.Announced[0].Addr().Hi() | r.Uint64()%(1<<28)
			w.DETAddrs = append(w.DETAddrs, ip6.AddrFromUint64s(hi, r.Uint64()))
		}
	}
}

func (w *World) randomHostAddr(r *rng.Stream) ip6.Addr {
	pools := [][]hostRef{w.webHosts, w.icmpHosts, w.dnsHosts}
	for _, pool := range []int{r.Intn(3), 0, 1, 2} {
		if len(pools[pool]) > 0 {
			return pools[pool][r.Intn(len(pools[pool]))].Addr
		}
	}
	return ip6.Addr{}
}
