package worldgen

import (
	"sort"

	"hitlist6/internal/dnsdb"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
	"hitlist6/internal/sources"
	"hitlist6/internal/yarrp"
)

// BuildFeeds wires the service's input feeds over the generated world.
// A yarrp tracer is required because the traceroute feeds really trace.
func (w *World) BuildFeeds(tracer *yarrp.Tracer) []*sources.Feed {
	p := w.Params
	var feeds []*sources.Feed

	// Host refs sorted by birth day for windowed emission.
	byBorn := func(refs []hostRef) []hostRef {
		cp := append([]hostRef(nil), refs...)
		sort.Slice(cp, func(i, j int) bool {
			if cp[i].Born != cp[j].Born {
				return cp[i].Born < cp[j].Born
			}
			return cp[i].Addr.Less(cp[j].Addr)
		})
		return cp
	}
	emitWindow := func(refs []hostRef, day, window int) []ip6.Addr {
		lo := sort.Search(len(refs), func(i int) bool { return refs[i].Born > day-window })
		hi := sort.Search(len(refs), func(i int) bool { return refs[i].Born > day })
		out := make([]ip6.Addr, 0, hi-lo)
		for _, ref := range refs[lo:hi] {
			out = append(out, ref.Addr)
		}
		return out
	}

	// DNS resolutions: web and DNS hosts appear when their records go
	// live (a 45-day window covers the service's scan cadence), plus a
	// rotating slice of registry records — the path through which CDN
	// (aliased) hosting addresses enter the input.
	dnsRefs := byBorn(append(append([]hostRef(nil), w.webHosts...), w.dnsHosts...))
	var registryAAAA []ip6.Addr
	w.Registry.Walk(func(d *dnsdb.Domain) bool {
		registryAAAA = append(registryAAAA, d.AAAA...)
		return true
	})
	ip6.SortAddrs(registryAAAA)
	feeds = append(feeds, sources.Recurring("dns-aaaa", 0, EndDay+1, func(day int) []ip6.Addr {
		out := emitWindow(dnsRefs, day, 45)
		if n := len(registryAAAA); n > 0 {
			k := p.count(2e6)
			start := (day * 131) % n
			for i := 0; i < k; i++ {
				out = append(out, registryAAAA[(start+i)%n])
			}
		}
		// Cloud rotation: CDN/ELB-style records point at ever-fresh
		// addresses inside Amazon's fully responsive space, the
		// accumulation bias of Figure 2.
		r := rng.NewStream(rng.Mix(p.Seed, uint64(day), 0xa3a), "amazon-rotation")
		amazon := w.Net.AS.ByASN(ASNAmazon)
		n := p.count(1.4e6)
		for i := 0; i < n; i++ {
			base := amazon.Announced[r.Intn(len(amazon.Announced))]
			out = append(out, ip6.AddrFromUint64s(
				base.Addr().Hi()|uint64(r.Intn(1<<24))<<8, uint64(r.Intn(1<<16))))
		}
		return out
	}))

	// The service's own traceroutes: ICMP hosts (routers, devices) plus
	// the short-lived transients observed in the current weeks.
	icmpRefs := byBorn(w.icmpHosts)
	feeds = append(feeds, sources.Recurring("traceroute", 0, EndDay+1, func(day int) []ip6.Addr {
		out := emitWindow(icmpRefs, day, 45)
		for wk := day/7 - 1; wk <= day/7; wk++ {
			out = append(out, w.transientByWeek[wk]...)
		}
		return out
	}))

	// Traceroutes towards Chinese networks: the GFW feeder. Destination
	// volume follows the era schedule; discovered rotating router
	// interfaces enter the input and, once scanned on UDP/53, "respond"
	// through injection.
	feeds = append(feeds, sources.TracerouteFeed("traceroute-cn", 0, EndDay+1, tracer, func(day int) []ip6.Addr {
		return w.cnDestinations(day)
	}))

	// RIPE-Atlas-like CPE artifacts: rotating EUI-64 device addresses.
	type cpePool struct {
		asn          int
		perDay, macs float64
		rotd         int
	}
	for _, c := range []cpePool{
		{ASNANTEL, 1.2e6, 8e6, 21},
		{ASNDTAG, 800e3, 6e6, 30},
		{ASNVNPT, 250e3, 4e6, 45},
		{ASNGlasfaser, 120e3, 1.5e6, 60},
	} {
		as := w.Net.AS.ByASN(c.asn)
		pool := sources.RotatingCPE{
			ISP: as, Base: as.Announced[0],
			MACs: p.count(c.macs), PerDay: p.count(c.perDay),
			RotationDays: c.rotd, Seed: p.Seed ^ uint64(c.asn),
		}
		feeds = append(feeds, pool.Feed("atlas-cpe-"+as.Name, 0, EndDay+1))
	}

	// The one-shot rDNS import of early 2019 (the Figure 4 event).
	rdnsDay := netmodel.DayOf(2019, 2, 1)
	rdnsAddrs := append([]ip6.Addr(nil), w.rdnsAddrs...)
	// The import also carried plenty of never-responsive junk.
	r := rng.NewStream(p.Seed, "rdns-junk")
	for i := 0; i < p.count(6e6); i++ {
		as := w.Net.AS.ByASN(300000 + r.Intn(p.TailASes))
		rdnsAddrs = append(rdnsAddrs, ip6.AddrFromUint64s(
			as.Announced[0].Addr().Hi()|uint64(r.Intn(1<<20)), r.Uint64()))
	}
	feeds = append(feeds, sources.Snapshot("rdns", rdnsDay, rdnsAddrs))

	return feeds
}

// cnDestinations samples traceroute destinations inside Chinese ASes for
// a given day, with volume following the injection-era schedule and AS
// choice following the Table 5 shares.
func (w *World) cnDestinations(day int) []ip6.Addr {
	p := w.Params
	rate := 100e3 // paper-scale destinations per scan, baseline
	switch {
	case day >= netmodel.DayOf(2021, 2, 1):
		// Era 3 ramps up towards the >100 M peak.
		ramp := float64(day-netmodel.DayOf(2021, 2, 1)) / float64(EndDay-netmodel.DayOf(2021, 2, 1))
		rate = 600e3 + ramp*1.2e6
	case day >= netmodel.DayOf(2020, 5, 1) && day < netmodel.DayOf(2020, 11, 1):
		rate = 500e3
	case day >= netmodel.DayOf(2019, 4, 15) && day < netmodel.DayOf(2019, 9, 1):
		rate = 300e3
	}
	n := p.count(rate)
	r := rng.NewStream(rng.Mix(p.Seed, uint64(day), 0xc4), "cn-dest")
	out := make([]ip6.Addr, 0, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		acc := 0.0
		region := w.cnSpace[len(w.cnSpace)-1]
		total := 0.0
		for _, c := range w.cnSpace {
			total += c.weight
		}
		for _, c := range w.cnSpace {
			acc += c.weight / total
			if u < acc {
				region = c
				break
			}
		}
		out = append(out, region.prefix.RandomAddr(r))
	}
	return out
}
