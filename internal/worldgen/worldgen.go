// Package worldgen builds the "paper world": a deterministic synthetic
// Internet whose statistical shapes match what Zirngibl et al. measured —
// named ASes (Amazon, Fastly, Cloudflare, Akamai, Trafficforce, EpicUp,
// Free SAS, the Chinese ASes of Table 5, …), host-population cohorts that
// trace the Table 1 growth curve, CDN aliased prefixes with backend
// fleets, dense low-IID regions for target generation, rotating-CPE input
// bias, the three GFW injection eras, and the input feeds that drive the
// hitlist service.
//
// Everything scales with Params.Scale: magnitudes are paper counts times
// the scale factor, so tests run tiny worlds while cmd/experiments runs
// the full reproduction.
package worldgen

import (
	"fmt"

	"hitlist6/internal/dnsdb"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
)

// Params configures world generation.
type Params struct {
	// Seed drives all world randomness.
	Seed uint64
	// Scale multiplies paper magnitudes (1.0 = full Internet; the
	// timeline experiments use 1/500, snapshot experiments 1/200).
	Scale float64
	// TailASes is the number of synthetic background ASes.
	TailASes int
	// ScanIntervalDays is the service cadence for the generated
	// schedule; the later "slow" period stretches it by half.
	ScanIntervalDays int
}

// TimelineParams is the default configuration for the 4-year service run.
func TimelineParams(seed uint64) Params {
	return Params{Seed: seed, Scale: 1.0 / 500, TailASes: 240, ScanIntervalDays: 7}
}

// SnapshotParams is the default configuration for single-snapshot
// experiments (aliased prefix analysis, new sources).
func SnapshotParams(seed uint64) Params {
	return Params{Seed: seed, Scale: 1.0 / 200, TailASes: 240, ScanIntervalDays: 7}
}

// TestParams is a miniature world for unit tests.
func TestParams(seed uint64) Params {
	return Params{Seed: seed, Scale: 1.0 / 20000, TailASes: 24, ScanIntervalDays: 7}
}

// count scales a paper magnitude.
func (p Params) count(paper float64) int {
	n := int(paper * p.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Named ASNs used throughout the experiments.
const (
	ASNAmazon        = 16509
	ASNFastly        = 54113
	ASNCloudflare    = 13335
	ASNCloudflareLon = 209242
	ASNAkamai        = 20940
	ASNAkamaiIntl    = 33905
	ASNGoogle        = 15169
	ASNLinode        = 63949
	ASNDigitalOcean  = 14061
	ASNFreeSAS       = 12322
	ASNDTAG          = 3320
	ASNANTEL         = 6057
	ASNVNPT          = 45899
	ASNTrafficforce  = 212144
	ASNEpicUp        = 397165
	ASNMisaka        = 50069
	ASNChinaMobile   = 9808
	ASNRacktech      = 208861
	ASNCERN          = 513
	ASNARNES         = 2107
	ASNHomePL        = 12824
	ASNGlasfaser     = 60294
	ASNLevel3        = 3356
	ASNNTT           = 2914
	ASNTelia         = 1299
)

// CNShares mirrors Table 5: the Chinese ASes impacted by the GFW and
// their share of impacted addresses.
var CNShares = []struct {
	ASN   int
	Share float64
}{
	{4134, 0.4644}, {4812, 0.1459}, {134774, 0.1388}, {134773, 0.0804},
	{140329, 0.0237}, {134772, 0.0193}, {4837, 0.0187}, {136200, 0.0176},
	{140330, 0.0172}, {140316, 0.0124},
	// The long tail of the 695 affected ASes, collapsed to a handful.
	{139018, 0.02}, {139019, 0.015}, {139020, 0.012}, {139021, 0.008},
	{ASNChinaMobile, 0.0086},
}

// TrafficforceDay is when AS212144 starts announcing its aliased /64s.
var TrafficforceDay = netmodel.DayOf(2022, 2, 1)

// GFWFilterDeployDay is when the paper deployed the GFW filter.
var GFWFilterDeployDay = netmodel.DayOf(2022, 2, 7)

// EndDay is the end of the evaluated period.
var EndDay = netmodel.Day2022

// World is a generated world plus everything experiments need.
type World struct {
	Params Params
	Net    *netmodel.Network

	// Blocklist holds operator opt-outs.
	Blocklist *ip6.PrefixSet

	// ScanDays is the service schedule from 2018-07-01 to 2022-04-07.
	ScanDays []int

	// Feeds are wired by BuildFeeds (requires a yarrp tracer, so it is
	// separate from Generate).
	transientByWeek map[int][]ip6.Addr
	webHosts        []hostRef
	dnsHosts        []hostRef
	icmpHosts       []hostRef
	rdnsAddrs       []ip6.Addr
	cnSpace         []cnRegion

	// New-source material for the Section 6 experiments.
	PassiveNSMX ip6.Set
	ArkAddrs    []ip6.Addr
	DETAddrs    []ip6.Addr

	// Registry is the synthetic DNS view.
	Registry *dnsdb.Registry

	// denseCounter sequences dense-block placement per AS.
	denseCounter map[int]int
}

type cnRegion struct {
	asn    int
	prefix ip6.Prefix
	weight float64
}

// hostRef ties a host address to its birth day so feeds only reveal live
// hosts.
type hostRef struct {
	Addr ip6.Addr
	Born int
}

// asSpec declares one named AS.
type asSpec struct {
	asn      int
	name     string
	cc       string
	cat      netmodel.Category
	prefixes []string
	rotation int
}

var namedASes = []asSpec{
	{ASNLevel3, "Level3", "US", netmodel.CatTransit, []string{"2001:1900::/24"}, 0},
	{ASNNTT, "NTT", "US", netmodel.CatTransit, []string{"2001:4000::/24"}, 0},
	{ASNTelia, "Telia", "SE", netmodel.CatTransit, []string{"2001:2000::/24"}, 0},
	{ASNAmazon, "Amazon", "US", netmodel.CatCloud, []string{"2600:9000::/28", "2a05:d000::/28"}, 0},
	{ASNFastly, "Fastly", "US", netmodel.CatCDN, []string{"2a04:4e40::/32"}, 0},
	{ASNCloudflare, "Cloudflare", "US", netmodel.CatCDN, []string{"2606:4700::/32", "2a06:98c0::/29"}, 0},
	{ASNCloudflareLon, "Cloudflare-London", "GB", netmodel.CatCDN, []string{"2a09:bac0::/32"}, 0},
	{ASNAkamai, "Akamai", "US", netmodel.CatCDN, []string{"2a02:26f0::/32"}, 0},
	{ASNAkamaiIntl, "Akamai-Intl", "NL", netmodel.CatCDN, []string{"2600:1480::/32"}, 0},
	{ASNGoogle, "Google", "US", netmodel.CatCloud, []string{"2607:f8b0::/32"}, 0},
	{ASNLinode, "Linode", "US", netmodel.CatCloud, []string{"2600:3c00::/27"}, 0},
	{ASNDigitalOcean, "DigitalOcean", "US", netmodel.CatCloud, []string{"2604:a880::/32"}, 0},
	{ASNFreeSAS, "Free SAS", "FR", netmodel.CatISP, []string{"2a01:e00::/26"}, 0},
	{ASNDTAG, "DTAG", "DE", netmodel.CatISP, []string{"2003::/19"}, 30},
	{ASNANTEL, "ANTEL", "UY", netmodel.CatISP, []string{"2800:a000::/24"}, 21},
	{ASNVNPT, "VNPT", "VN", netmodel.CatISP, []string{"2405:4800::/32"}, 45},
	{ASNMisaka, "Misaka", "US", netmodel.CatDNSProvider, []string{"2a0d:2140::/29"}, 0},
	{ASNCERN, "CERN", "CH", netmodel.CatEducation, []string{"2001:1458::/32"}, 0},
	{ASNARNES, "ARNES", "SI", netmodel.CatEducation, []string{"2001:1470::/32"}, 0},
	{ASNHomePL, "home.pl", "PL", netmodel.CatCloud, []string{"2a02:4780::/32"}, 0},
	{ASNGlasfaser, "Deutsche Glasfaser", "DE", netmodel.CatISP, []string{"2a00:6020::/32"}, 0},
	{ASNRacktech, "Racktech", "RU", netmodel.CatCloud, []string{"2a0e:1c80::/29"}, 0},
}

// Generate builds the world.
func Generate(p Params) (*World, error) {
	if p.Scale <= 0 {
		return nil, fmt.Errorf("worldgen: non-positive scale %v", p.Scale)
	}
	if p.ScanIntervalDays <= 0 {
		p.ScanIntervalDays = 7
	}
	w := &World{
		Params:          p,
		Blocklist:       ip6.NewPrefixSet(),
		transientByWeek: make(map[int][]ip6.Addr),
		PassiveNSMX:     ip6.NewSet(0),
		Registry:        dnsdb.NewRegistry(),
	}

	ases := buildASes(p)
	table := netmodel.NewASTable(ases)
	w.Net = netmodel.NewNetwork(p.Seed, table)

	w.buildGFW(p)
	w.buildAliases(p)
	w.buildHosts(p)
	w.buildDomains(p)
	w.buildSchedule(p)
	w.buildBlocklist(p)
	w.buildNewSources(p)
	// World assembly is done: freeze the host table into the
	// shard-aligned sorted index so per-probe lookups skip map hashing.
	w.Net.Seal()
	return w, nil
}

func buildASes(p Params) []*netmodel.AS {
	var out []*netmodel.AS
	for _, s := range namedASes {
		as := &netmodel.AS{
			ASN: s.asn, Name: s.name, Country: s.cc, Category: s.cat,
			RouterRotationDays: s.rotation,
		}
		for _, ps := range s.prefixes {
			as.Announced = append(as.Announced, ip6.MustParsePrefix(ps))
			as.AnnouncedFrom = append(as.AnnouncedFrom, 0)
		}
		out = append(out, as)
	}

	// Chinese ASes (Table 5): disjoint /24s under 2400::/12-ish space.
	for i, cn := range CNShares {
		hi := uint64(0x2400)<<48 | uint64(0x10+i)<<40
		pfx := ip6.PrefixFrom(ip6.AddrFromUint64s(hi, 0), 24)
		out = append(out, &netmodel.AS{
			ASN: cn.ASN, Name: fmt.Sprintf("CN-AS%d", cn.ASN), Country: "CN",
			Category: netmodel.CatISP, RouterRotationDays: 7,
			Announced: []ip6.Prefix{pfx}, AnnouncedFrom: []int{0},
		})
	}

	// EpicUp: several short /28 announcements (the shortest aliased
	// prefixes in the paper).
	epic := &netmodel.AS{ASN: ASNEpicUp, Name: "EpicUp", Country: "US", Category: netmodel.CatCloud}
	for i := 0; i < 4; i++ {
		hi := uint64(0x2a10)<<48 | uint64(i)<<40
		epic.Announced = append(epic.Announced, ip6.PrefixFrom(ip6.AddrFromUint64s(hi, 0), 28))
		epic.AnnouncedFrom = append(epic.AnnouncedFrom, 0)
	}
	out = append(out, epic)

	// Trafficforce: its /64s appear in BGP only at TrafficforceDay.
	tf := &netmodel.AS{ASN: ASNTrafficforce, Name: "Trafficforce", Country: "LT", Category: netmodel.CatEnterprise}
	nTF := p.count(66400)
	for i := 0; i < nTF; i++ {
		hi := uint64(0x2a11)<<48 | uint64(i)
		tf.Announced = append(tf.Announced, ip6.PrefixFrom(ip6.AddrFromUint64s(hi, 0), 64))
		tf.AnnouncedFrom = append(tf.AnnouncedFrom, TrafficforceDay)
	}
	out = append(out, tf)

	// Synthetic tail ASes: hosting and eyeball networks under 2c00::/12.
	r := rng.NewStream(p.Seed, "tail-ases")
	for i := 0; i < p.TailASes; i++ {
		hi := uint64(0x2c00)<<48 | uint64(i+1)<<32
		cat := netmodel.CatEnterprise
		switch i % 5 {
		case 0:
			cat = netmodel.CatCloud
		case 1:
			cat = netmodel.CatISP
		case 2:
			cat = netmodel.CatEducation
		}
		rotation := 0
		if cat == netmodel.CatISP && r.Bool(0.4) {
			rotation = 14 + r.Intn(40)
		}
		out = append(out, &netmodel.AS{
			ASN: 300000 + i, Name: fmt.Sprintf("Tail-%d", i), Country: tailCC(i),
			Category: cat, RouterRotationDays: rotation,
			Announced:     []ip6.Prefix{ip6.PrefixFrom(ip6.AddrFromUint64s(hi, 0), 32)},
			AnnouncedFrom: []int{0},
		})
	}
	return out
}

func tailCC(i int) string {
	ccs := []string{"DE", "US", "FR", "NL", "GB", "JP", "BR", "IN", "SE", "PL"}
	return ccs[i%len(ccs)]
}

// buildGFW wires the injector: affected ASes, blocked domains, eras.
func (w *World) buildGFW(p Params) {
	g := netmodel.NewGFWModel(p.Seed)
	for _, cn := range CNShares {
		g.AffectedASNs[cn.ASN] = true
		as := w.Net.AS.ByASN(cn.ASN)
		w.cnSpace = append(w.cnSpace, cnRegion{asn: cn.ASN, prefix: as.Announced[0], weight: cn.Share})
	}
	g.BlockedDomains["google.com"] = true
	g.BlockedDomains["facebook.com"] = true
	g.BlockedDomains["twitter.com"] = true
	// Three eras, matching the Figure 3 spikes: two A-record events and
	// the long Teredo event that outlives the April 2022 data edge (the
	// Section 6 scans a few weeks later still observe injection).
	g.Eras = []netmodel.InjectionEra{
		{StartDay: netmodel.DayOf(2019, 4, 15), EndDay: netmodel.DayOf(2019, 9, 1), Mode: netmodel.InjectA},
		{StartDay: netmodel.DayOf(2020, 5, 1), EndDay: netmodel.DayOf(2020, 11, 1), Mode: netmodel.InjectA},
		{StartDay: netmodel.DayOf(2021, 2, 1), EndDay: EndDay + 60, Mode: netmodel.InjectTeredo},
	}
	w.Net.GFW = g
}

// buildSchedule produces scan days: weekly until mid-2021, then the
// slower cadence the paper reports (runtime grew to multiple days).
func (w *World) buildSchedule(p Params) {
	slowFrom := netmodel.DayOf(2021, 7, 1)
	day := 0
	for day <= EndDay {
		w.ScanDays = append(w.ScanDays, day)
		step := p.ScanIntervalDays
		if day >= slowFrom {
			step += p.ScanIntervalDays / 2
		}
		day += step
	}
	if w.ScanDays[len(w.ScanDays)-1] != EndDay {
		w.ScanDays = append(w.ScanDays, EndDay)
	}
}

// buildBlocklist adds a few opted-out networks (the paper's request-based
// blocklist removes ~1.5 M input addresses).
func (w *World) buildBlocklist(p Params) {
	w.Blocklist.Add(ip6.MustParsePrefix("2001:1458:500::/48")) // a CERN enclave
	w.Blocklist.Add(ip6.MustParsePrefix("2003:40::/32"))       // a DTAG region
	w.Blocklist.Add(ip6.MustParsePrefix("2c00:7::/32"))        // a tail AS
}

// SnapshotDays returns the Table 1 snapshot days clipped to the schedule.
func (w *World) SnapshotDays() []int {
	return []int{netmodel.Day2018, netmodel.Day2019, netmodel.Day2020, netmodel.Day2021, netmodel.Day2022}
}

// DateLabel formats a day for reports.
func DateLabel(day int) string { return netmodel.DateString(day) }
