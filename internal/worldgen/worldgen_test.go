package worldgen

import (
	"context"
	"testing"

	"hitlist6/internal/netmodel"
	"hitlist6/internal/sources"
	"hitlist6/internal/yarrp"
)

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(TestParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.Net.AS.NumASes() < 40 {
		t.Errorf("ASes: %d", w.Net.AS.NumASes())
	}
	if w.Net.NumHosts() == 0 {
		t.Fatal("no hosts")
	}
	if len(w.Net.AliasRules()) == 0 {
		t.Fatal("no alias rules")
	}
	if len(w.ScanDays) < 100 {
		t.Errorf("scan days: %d", len(w.ScanDays))
	}
	if w.ScanDays[len(w.ScanDays)-1] != EndDay {
		t.Errorf("schedule must end at EndDay, got %d", w.ScanDays[len(w.ScanDays)-1])
	}
	if w.Registry.NumDomains() == 0 {
		t.Error("no domains")
	}
	if w.PassiveNSMX.Len() == 0 || len(w.ArkAddrs) == 0 || len(w.DETAddrs) == 0 {
		t.Error("new-source material missing")
	}
	if w.Blocklist.Len() == 0 {
		t.Error("empty blocklist")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(TestParams(7))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(TestParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if w1.Net.NumHosts() != w2.Net.NumHosts() {
		t.Errorf("host counts differ: %d vs %d", w1.Net.NumHosts(), w2.Net.NumHosts())
	}
	if len(w1.Net.AliasRules()) != len(w2.Net.AliasRules()) {
		t.Error("alias rules differ")
	}
	if len(w1.DETAddrs) != len(w2.DETAddrs) || (len(w1.DETAddrs) > 0 && w1.DETAddrs[0] != w2.DETAddrs[0]) {
		t.Error("DET snapshots differ")
	}
}

func TestNamedASStructure(t *testing.T) {
	w, err := Generate(TestParams(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range []int{ASNAmazon, ASNFastly, ASNCloudflare, ASNTrafficforce, ASNFreeSAS, 4134, 4812} {
		if w.Net.AS.ByASN(asn) == nil {
			t.Errorf("missing AS%d", asn)
		}
	}
	// Trafficforce prefixes are born at the event day.
	tf := w.Net.AS.ByASN(ASNTrafficforce)
	for _, from := range tf.AnnouncedFrom {
		if from != TrafficforceDay {
			t.Errorf("TF announcement day %d", from)
		}
	}
	// GFW is wired with the Table 5 ASes.
	if w.Net.GFW == nil || !w.Net.GFW.AffectedASNs[4134] || !w.Net.GFW.AffectedASNs[4812] {
		t.Error("GFW not wired")
	}
	if len(w.Net.GFW.Eras) != 3 {
		t.Errorf("eras: %d", len(w.Net.GFW.Eras))
	}
	// Aliased space responds: any address in a Fastly aliased child.
	fastly := w.Net.AS.ByASN(ASNFastly).Announced[0]
	if !w.Net.TrueResponds(fastly.Child(4, 3).NthAddr(12345), netmodel.ICMP, 100) {
		t.Error("Fastly aliased space unresponsive")
	}
}

func TestFeedsProduceInput(t *testing.T) {
	w, err := Generate(TestParams(3))
	if err != nil {
		t.Fatal(err)
	}
	tracer := yarrp.New(w.Net, yarrp.Config{Seed: 3})
	feeds := w.BuildFeeds(tracer)
	if len(feeds) < 6 {
		t.Fatalf("feeds: %d", len(feeds))
	}
	out, err := sources.Drain(context.Background(), feeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for name, addrs := range out {
		total += len(addrs)
		if name == "" {
			t.Error("unnamed feed")
		}
	}
	if total == 0 {
		t.Fatal("no input on day 0")
	}
	// The CN feed ramps up in era 3.
	early := len(w.cnDestinations(10))
	late := len(w.cnDestinations(netmodel.DayOf(2022, 1, 1)))
	if late <= early {
		t.Errorf("CN destination schedule flat: %d vs %d", early, late)
	}
	// rDNS snapshot stays open for two weeks (until the next scheduled
	// scan) and then closes.
	rdnsDay := netmodel.DayOf(2019, 2, 1)
	out, _ = sources.Drain(context.Background(), feeds, rdnsDay)
	if len(out["rdns"]) == 0 {
		t.Error("rdns feed empty on its day")
	}
	out, _ = sources.Drain(context.Background(), feeds, rdnsDay+7)
	if len(out["rdns"]) == 0 {
		t.Error("rdns feed must cover the following scan")
	}
	out, _ = sources.Drain(context.Background(), feeds, rdnsDay+20)
	if len(out["rdns"]) != 0 {
		t.Error("rdns feed active past its window")
	}
}

func TestGrowthCohortsShapeTable1(t *testing.T) {
	w, err := Generate(Params{Seed: 5, Scale: 1.0 / 2000, TailASes: 40, ScanIntervalDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	countAlive := func(day int) int {
		n := 0
		w.Net.WalkHosts(func(h *netmodel.Host) bool {
			if h.RespondsTo(netmodel.ICMP, day) {
				n++
			}
			return true
		})
		return n
	}
	y2018 := countAlive(netmodel.Day2018)
	y2019 := countAlive(netmodel.Day2019)
	y2020 := countAlive(netmodel.Day2020)
	y2022 := countAlive(netmodel.Day2022)
	if y2019 <= y2018 {
		t.Errorf("2018→2019 growth missing: %d → %d", y2018, y2019)
	}
	if y2020 >= y2019 {
		t.Errorf("2019→2020 dip missing: %d → %d", y2019, y2020)
	}
	if y2022 <= y2020 {
		t.Errorf("2020→2022 growth missing: %d → %d", y2020, y2022)
	}
}
