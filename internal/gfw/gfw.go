// Package gfw implements the paper's Section 4 contribution: detecting and
// filtering DNS responses injected by the Great Firewall of China.
//
// The detector works from response evidence only — exactly what a scan
// operator sees: A records answering AAAA questions, AAAA records carrying
// deprecated Teredo addresses, and multiple responses to a single query.
// Ground-truth flags from the network model are never consulted; tests use
// them solely to score the detector.
package gfw

import (
	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
)

// Classification is the evidence extracted from the DNS responses to one
// probe.
type Classification struct {
	// AForAAAA: at least one response answered the AAAA question with an
	// A record only (first/second injection era signature).
	AForAAAA bool

	// Teredo: at least one AAAA answer carries a Teredo (2001::/32)
	// address (third era signature).
	Teredo bool

	// MultiResponse: more than one DNS message arrived for one query,
	// indicating multiple on-path injectors.
	MultiResponse bool

	// Responses is the number of DNS messages received.
	Responses int
}

// Injected reports whether the evidence marks the result as a GFW
// injection. A clearly erroneous record (IPv4-only answer or Teredo
// address for an AAAA question) is the deciding signal, as in the paper;
// multiple responses alone are only supporting evidence.
func (c Classification) Injected() bool { return c.AForAAAA || c.Teredo }

// ClassifyMessages inspects raw wire-format responses to a AAAA query.
// It runs on dnswire.VisitAnswers — record types and AAAA rdata are read
// straight off the wire without decoding full messages — so the service
// digest and the source evaluations classify every DNS result without
// per-message allocations.
func ClassifyMessages(msgs [][]byte) Classification {
	c := Classification{Responses: len(msgs), MultiResponse: len(msgs) > 1}
	for _, wire := range msgs {
		hasA, hasRealAAAA, teredo := false, false, false
		err := dnswire.VisitAnswers(wire, func(t dnswire.Type, aaaa ip6.Addr) bool {
			switch t {
			case dnswire.TypeA:
				hasA = true
			case dnswire.TypeAAAA:
				if aaaa.IsTeredo() {
					teredo = true
				} else {
					hasRealAAAA = true
				}
			}
			return true
		})
		if err != nil {
			// Undecodable messages contribute no evidence, as when the
			// full decoder rejected them.
			continue
		}
		if teredo {
			c.Teredo = true
		}
		if hasA && !hasRealAAAA {
			c.AForAAAA = true
		}
	}
	return c
}

// ClassifyResult classifies a live scan result (UDP/53 only; other
// protocols yield the zero Classification).
func ClassifyResult(r scan.Result) Classification {
	if r.Proto != netmodel.UDP53 || len(r.DNS) == 0 {
		return Classification{}
	}
	return ClassifyMessages(r.DNS)
}

// ClassifyRecord classifies a parsed CSV row (the file-based filter tool
// path).
func ClassifyRecord(rec scan.Record) Classification {
	if rec.Proto != netmodel.UDP53 {
		return Classification{}
	}
	c := Classification{Responses: rec.Responses, MultiResponse: rec.Responses > 1}
	hasA, hasRealAAAA := false, false
	for _, a := range rec.Answers {
		switch a.Type {
		case dnswire.TypeA:
			hasA = true
		case dnswire.TypeAAAA:
			if addr, err := ip6.ParseAddr(a.Value); err == nil {
				if addr.IsTeredo() {
					c.Teredo = true
				} else {
					hasRealAAAA = true
				}
			}
		}
	}
	if hasA && !hasRealAAAA {
		c.AForAAAA = true
	}
	return c
}

// FilterResults splits scan results into kept and injected, implementing
// the post-scan filter the service now runs: injected DNS successes are
// removed so the 30-day filter can phase the addresses out, while
// responses on other protocols pass through untouched.
func FilterResults(results []scan.Result) (kept, injected []scan.Result) {
	kept = make([]scan.Result, 0, len(results))
	for _, r := range results {
		if r.Success && ClassifyResult(r).Injected() {
			injected = append(injected, r)
			continue
		}
		kept = append(kept, r)
	}
	return kept, injected
}

// FilterRecords is FilterResults over parsed CSV rows (cmd/gfw-filter).
func FilterRecords(recs []scan.Record) (kept, injected []scan.Record) {
	kept = make([]scan.Record, 0, len(recs))
	for _, rec := range recs {
		if rec.Success && ClassifyRecord(rec).Injected() {
			injected = append(injected, rec)
			continue
		}
		kept = append(kept, rec)
	}
	return kept, injected
}

// Tracker accumulates injection evidence across the service's lifetime and
// derives the cumulative input filter: the analog of the paper's list of
// 134 M addresses that saw at least one DNS injection but never responded
// to any other protocol.
//
// The evidence sets are sharded by address hash (ip6.ShardedSet) so the
// streaming scan engine can fold whole batches into the tracker from
// concurrent workers: every address in a shard-tagged batch lands in that
// shard, and the engine serializes same-shard batches, so no locking is
// needed and the accumulated state is identical for any worker count.
type Tracker struct {
	injectedSeen *ip6.ShardedSet // addresses with ≥1 injected DNS response
	otherProto   *ip6.ShardedSet // addresses responsive to any non-DNS protocol
	realDNS      *ip6.ShardedSet // addresses with ≥1 clean DNS response
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		injectedSeen: ip6.NewShardedSet(),
		otherProto:   ip6.NewShardedSet(),
		realDNS:      ip6.NewShardedSet(),
	}
}

// AddEvidenceShard folds one shard's per-scan evidence into the tracker:
// the targets that drew an injected DNS answer, plus the clean responsive
// sets per protocol (UDP/53 feeds the real-DNS evidence, every other
// protocol the other-protocol evidence). Distinct shards may be folded
// concurrently; every address must hash to shard i.
func (t *Tracker) AddEvidenceShard(i int, injectedDNS ip6.Set, cleanByProto *[netmodel.NumProtocols]ip6.Set) {
	t.injectedSeen.AddAllToShard(i, injectedDNS)
	for p, set := range cleanByProto {
		if netmodel.Protocol(p) == netmodel.UDP53 {
			t.realDNS.AddAllToShard(i, set)
		} else {
			t.otherProto.AddAllToShard(i, set)
		}
	}
}

// Observe folds one scan's results into the cumulative evidence, routing
// each address to its canonical shard — the convenience path for
// non-streaming consumers (e.g. replaying CSV-parsed results).
// Single-goroutine use only.
func (t *Tracker) Observe(results []scan.Result) {
	for i := range results {
		r := &results[i]
		if !r.Success {
			continue
		}
		sh := ip6.ShardOf(r.Target)
		if r.Proto != netmodel.UDP53 {
			t.otherProto.AddToShard(sh, r.Target)
		} else if ClassifyResult(*r).Injected() {
			t.injectedSeen.AddToShard(sh, r.Target)
		} else {
			t.realDNS.AddToShard(sh, r.Target)
		}
	}
}

// walkInjectedOnly visits every address that ever triggered an injection
// and never answered anything else — the one copy of the filter-list
// predicate both materializations below share.
func (t *Tracker) walkInjectedOnly(fn func(sh int, a ip6.Addr)) {
	for sh := 0; sh < ip6.AddrShards; sh++ {
		for a := range t.injectedSeen.Shard(sh) {
			if !t.otherProto.HasInShard(sh, a) && !t.realDNS.HasInShard(sh, a) {
				fn(sh, a)
			}
		}
	}
}

// InjectedOnly returns the addresses that ever triggered an injection and
// never answered anything else — the set the paper removes from the
// cumulative input.
func (t *Tracker) InjectedOnly() ip6.Set {
	out := ip6.NewSet(0)
	t.walkInjectedOnly(func(_ int, a ip6.Addr) { out.Add(a) })
	return out
}

// InjectedOnlySharded is InjectedOnly preserving the shard partitioning:
// consumers that sweep the list shard by shard (the service's cumulative
// input filter) keep shard-local membership checks and never pay for a
// flat merged copy.
func (t *Tracker) InjectedOnlySharded() *ip6.ShardedSet {
	out := ip6.NewShardedSet()
	t.walkInjectedOnly(func(sh int, a ip6.Addr) { out.AddToShard(sh, a) })
	return out
}

// InjectedSeen returns every address that ever showed injection evidence,
// including those that are real hosts on other protocols (which the paper
// keeps in the hitlist). The returned set is a merged copy; callers that
// only need the cardinality should use InjectedSeenLen, and membership
// checks should go through InjectedSeenHas.
func (t *Tracker) InjectedSeen() ip6.Set { return t.injectedSeen.Merge() }

// InjectedSeenHas reports whether a ever showed injection evidence,
// without materializing the merged copy.
func (t *Tracker) InjectedSeenHas(a ip6.Addr) bool { return t.injectedSeen.Has(a) }

// InjectedSeenLen returns the size of the injection-evidence set without
// materializing a merged copy.
func (t *Tracker) InjectedSeenLen() int { return t.injectedSeen.Len() }

// FreezeInjectedSeen returns an independent frozen sorted copy of the
// injection-evidence set — the point-lookup index serve snapshots carry.
// The tracker keeps accumulating evidence afterwards; the copy does not
// change.
func (t *Tracker) FreezeInjectedSeen() *ip6.SortedShardSet { return ip6.FreezeSorted(t.injectedSeen) }

// FreezeInjectedSeenDelta is FreezeInjectedSeen sharing unchanged shards
// with prev, a set previously frozen from this tracker (nil for a full
// freeze). Returns the frozen set plus the shards re-frozen and shared.
func (t *Tracker) FreezeInjectedSeenDelta(prev *ip6.SortedShardSet) (out *ip6.SortedShardSet, refrozen, shared int) {
	return ip6.FreezeSortedDelta(t.injectedSeen, prev)
}

// Stats summarizes the tracker.
func (t *Tracker) Stats() (injected, injectedOnly, otherProto int) {
	return t.injectedSeen.Len(), t.InjectedOnly().Len(), t.otherProto.Len()
}

// EvidenceSets exposes the tracker's three cumulative evidence sets —
// injected-seen, other-protocol, real-DNS — as live references, for
// checkpointing: the writer walks them shard by shard, and restore loads
// straight back into them. Callers must honor the per-shard writing
// contract.
func (t *Tracker) EvidenceSets() (injectedSeen, otherProto, realDNS *ip6.ShardedSet) {
	return t.injectedSeen, t.otherProto, t.realDNS
}
