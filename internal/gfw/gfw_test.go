package gfw

import (
	"testing"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/scan"
)

func wireAAAAQueryReply(t *testing.T, rrs ...dnswire.RR) []byte {
	t.Helper()
	q := dnswire.NewQuery(1, "www.google.com", dnswire.TypeAAAA)
	r := q.Reply()
	r.Answers = rrs
	w, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestClassifyAForAAAA(t *testing.T) {
	msg := wireAAAAQueryReply(t, dnswire.RR{Name: "www.google.com", Type: dnswire.TypeA, TTL: 60, A: ip6.IPv4{31, 13, 94, 37}})
	c := ClassifyMessages([][]byte{msg})
	if !c.AForAAAA || c.Teredo || c.MultiResponse || !c.Injected() {
		t.Errorf("classification: %+v", c)
	}
}

func TestClassifyTeredo(t *testing.T) {
	teredo := ip6.TeredoAddr(ip6.IPv4{65, 54, 227, 120}, ip6.IPv4{31, 13, 94, 37})
	msg := wireAAAAQueryReply(t, dnswire.RR{Name: "www.google.com", Type: dnswire.TypeAAAA, TTL: 60, AAAA: teredo})
	c := ClassifyMessages([][]byte{msg, msg})
	if !c.Teredo || !c.MultiResponse || c.Responses != 2 || !c.Injected() {
		t.Errorf("classification: %+v", c)
	}
}

func TestClassifyLegitimate(t *testing.T) {
	// A real AAAA answer (non-Teredo) must not be flagged, even alongside
	// an A record (dual-stack resolvers may add one).
	msg := wireAAAAQueryReply(t,
		dnswire.RR{Name: "www.google.com", Type: dnswire.TypeAAAA, TTL: 60, AAAA: ip6.MustParseAddr("2607:f8b0::2004")},
		dnswire.RR{Name: "www.google.com", Type: dnswire.TypeA, TTL: 60, A: ip6.IPv4{142, 250, 1, 1}},
	)
	c := ClassifyMessages([][]byte{msg})
	if c.Injected() {
		t.Errorf("legit response flagged: %+v", c)
	}

	// A REFUSED error with no answers is clean.
	q := dnswire.NewQuery(2, "www.google.com", dnswire.TypeAAAA)
	r := q.Reply()
	r.Header.RCode = dnswire.RCodeRefused
	w, _ := r.Encode()
	if ClassifyMessages([][]byte{w}).Injected() {
		t.Error("REFUSED flagged as injected")
	}

	// Garbage bytes are ignored, not flagged.
	if ClassifyMessages([][]byte{{1, 2, 3}}).Injected() {
		t.Error("undecodable response flagged")
	}
}

func TestDetectorAgainstModel(t *testing.T) {
	// End-to-end: scan a GFW-affected world and verify evidence-based
	// detection matches ground truth exactly.
	ases := []*netmodel.AS{
		{ASN: 4134, Name: "CN", Country: "CN", Category: netmodel.CatISP,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("240e::/20")}, AnnouncedFrom: []int{0}},
		{ASN: 100, Name: "EU", Country: "DE", Category: netmodel.CatCloud,
			Announced: []ip6.Prefix{ip6.MustParsePrefix("2001:100::/32")}, AnnouncedFrom: []int{0}},
	}
	n := netmodel.NewNetwork(5, netmodel.NewASTable(ases))
	n.AddHost(&netmodel.Host{Addr: ip6.MustParseAddr("2001:100::53"),
		Protos: netmodel.ProtoSetOf(netmodel.UDP53), BornDay: 0, DeathDay: netmodel.Forever,
		UptimePermille: 1000, DNS: netmodel.DNSRefusing})
	// A real Chinese DNS host: injected AND real answers arrive; still
	// classified injected by evidence (the paper filters the DNS result
	// but keeps the address if other protocols respond).
	n.AddHost(&netmodel.Host{Addr: ip6.MustParseAddr("240e::53"),
		Protos: netmodel.ProtoSetOf(netmodel.UDP53, netmodel.ICMP), BornDay: 0, DeathDay: netmodel.Forever,
		UptimePermille: 1000, DNS: netmodel.DNSRefusing})
	g := netmodel.NewGFWModel(5)
	g.AffectedASNs[4134] = true
	g.BlockedDomains["google.com"] = true
	g.Eras = []netmodel.InjectionEra{{StartDay: 0, EndDay: 1000, Mode: netmodel.InjectA}}
	n.GFW = g

	cfg := scan.DefaultConfig(1)
	cfg.LossRate = 0
	s := scan.New(n, cfg)

	var targets []ip6.Addr
	base := ip6.MustParsePrefix("240e::/20")
	for i := uint64(0); i < 50; i++ {
		targets = append(targets, base.NthAddr(i*887+1))
	}
	targets = append(targets, ip6.MustParseAddr("2001:100::53"), ip6.MustParseAddr("240e::53"))

	var results []scan.Result
	for _, a := range targets {
		results = append(results, s.ProbeOne(a, netmodel.UDP53, 10))
	}
	for _, r := range results {
		got := ClassifyResult(r).Injected()
		want := r.InjectedTruth > 0
		if got != want {
			t.Errorf("%v: detected=%v truth=%v", r.Target, got, want)
		}
	}

	kept, injected := FilterResults(results)
	if len(injected) != 51 { // 50 ghosts + the real CN host (injection rides along)
		t.Errorf("injected: %d", len(injected))
	}
	if len(kept) != len(results)-51 {
		t.Errorf("kept: %d", len(kept))
	}
}

func TestTracker(t *testing.T) {
	mk := func(addr string, proto netmodel.Protocol, injected bool) scan.Result {
		r := scan.Result{Target: ip6.MustParseAddr(addr), Proto: proto, Success: true}
		if proto == netmodel.UDP53 {
			var rr dnswire.RR
			if injected {
				rr = dnswire.RR{Name: "www.google.com", Type: dnswire.TypeA, A: ip6.IPv4{31, 13, 94, 37}}
			} else {
				rr = dnswire.RR{Name: "www.google.com", Type: dnswire.TypeAAAA, AAAA: ip6.MustParseAddr("2607:f8b0::2004")}
			}
			q := dnswire.NewQuery(1, "www.google.com", dnswire.TypeAAAA)
			reply := q.Reply()
			reply.Answers = []dnswire.RR{rr}
			w, err := reply.Encode()
			if err != nil {
				t.Fatal(err)
			}
			r.DNS = [][]byte{w}
		}
		return r
	}

	tr := NewTracker()
	// Scan 1: a pure-GFW ghost, a GFW-seen host that also does ICMP, a
	// clean DNS server.
	tr.Observe([]scan.Result{
		mk("240e::1", netmodel.UDP53, true),
		mk("240e::53", netmodel.UDP53, true),
		mk("240e::53", netmodel.ICMP, false),
		mk("2001:100::53", netmodel.UDP53, false),
		{Target: ip6.MustParseAddr("240e::9"), Proto: netmodel.UDP53, Success: false},
	})
	only := tr.InjectedOnly()
	if only.Len() != 1 || !only.Has(ip6.MustParseAddr("240e::1")) {
		t.Errorf("InjectedOnly: %v", only.Sorted())
	}
	if tr.InjectedSeen().Len() != 2 {
		t.Errorf("InjectedSeen: %d", tr.InjectedSeen().Len())
	}
	inj, injOnly, other := tr.Stats()
	if inj != 2 || injOnly != 1 || other != 1 {
		t.Errorf("Stats: %d %d %d", inj, injOnly, other)
	}

	// Scan 2: the ghost turns out to answer TCP later → leaves the
	// injected-only set.
	tr.Observe([]scan.Result{{Target: ip6.MustParseAddr("240e::1"), Proto: netmodel.TCP80, Success: true}})
	if tr.InjectedOnly().Len() != 0 {
		t.Error("InjectedOnly should shrink when other protocols respond")
	}
}

func TestClassifyRecordFromCSV(t *testing.T) {
	rec := scan.Record{
		Proto: netmodel.UDP53, Success: true, Responses: 3,
		Answers: []scan.AnswerSummary{
			{Type: dnswire.TypeA, Value: "31.13.94.37"},
		},
	}
	c := ClassifyRecord(rec)
	if !c.AForAAAA || !c.MultiResponse || !c.Injected() {
		t.Errorf("A record CSV: %+v", c)
	}

	teredo := ip6.TeredoAddr(ip6.IPv4{65, 54, 227, 120}, ip6.IPv4{31, 13, 94, 37})
	rec = scan.Record{
		Proto: netmodel.UDP53, Success: true, Responses: 2,
		Answers: []scan.AnswerSummary{{Type: dnswire.TypeAAAA, Value: teredo.String()}},
	}
	if !ClassifyRecord(rec).Teredo {
		t.Error("Teredo CSV not classified")
	}

	rec = scan.Record{
		Proto: netmodel.UDP53, Success: true, Responses: 1,
		Answers: []scan.AnswerSummary{{Type: dnswire.TypeAAAA, Value: "2607:f8b0::2004"}},
	}
	if ClassifyRecord(rec).Injected() {
		t.Error("clean CSV record flagged")
	}

	// Non-DNS records never classify.
	rec = scan.Record{Proto: netmodel.ICMP, Success: true}
	if ClassifyRecord(rec).Injected() {
		t.Error("ICMP record flagged")
	}

	kept, injected := FilterRecords([]scan.Record{
		{Proto: netmodel.UDP53, Success: true, Responses: 2,
			Answers: []scan.AnswerSummary{{Type: dnswire.TypeA, Value: "31.13.94.37"}}},
		{Proto: netmodel.ICMP, Success: true},
	})
	if len(kept) != 1 || len(injected) != 1 {
		t.Errorf("FilterRecords: %d/%d", len(kept), len(injected))
	}
}
