package scan

import (
	"fmt"
	"io"

	"hitlist6/internal/ip6"
)

// The pull-based producer side of the streaming engine. Every target
// producer in the pipeline — TGA generators, input feeds, the service's
// sharded scan-set buffers, the APD slot queue — implements TargetSource,
// and Scanner.StreamFrom pulls, shards and probes the stream without ever
// materializing the full target set. The optional refinements below let
// producers that already know more (contiguous storage, canonical
// pre-sharding, a fixed shard) skip work the engine would otherwise redo.

// TargetSource is a pull-based stream of scan targets.
//
// Next fills buf with up to len(buf) addresses and returns how many it
// wrote. Exhaustion is signaled with io.EOF, which may accompany the
// final addresses (n > 0); after io.EOF further calls return (0, io.EOF).
// Next must never return n == 0 with a nil error. Implementations must be
// deterministic: the emitted address sequence depends only on the
// source's construction, never on pull timing or buffer sizes — that is
// what makes every consumer of the streaming engine bit-reproducible.
//
// Sources are pulled from one goroutine at a time and need no internal
// locking. A source that holds resources (a file, a generator goroutine)
// may implement io.Closer; StreamFrom closes such sources when the
// stream ends, including on error or cancellation.
type TargetSource interface {
	Next(buf []ip6.Addr) (n int, err error)
}

// SpanSource is an optional TargetSource fast path for sources backed by
// contiguous memory: Span returns the next run of up to max addresses as
// a subslice of the source's own storage (valid until the next call),
// skipping the copy into the caller's buffer.
type SpanSource interface {
	TargetSource
	Span(max int) ([]ip6.Addr, error)
}

// ShardedSource is an optional TargetSource refinement for producers
// whose targets are already partitioned by ip6.ShardOf. The engine then
// skips the routing pass entirely: each probe worker pulls its shard's
// sub-source directly, which is the zero-materialization path the
// service's per-shard scan-set buffers use.
type ShardedSource interface {
	TargetSource
	// ShardSource returns a source yielding exactly the addresses of
	// canonical shard sh (every address must satisfy ip6.ShardOf == sh),
	// or nil when the shard is empty. Each shard source is pulled by at
	// most one goroutine at a time, independently of the others.
	ShardSource(sh int) TargetSource
}

// ShardSizer is an optional refinement: ShardLen reports how many
// addresses shard sh will yield (so the engine can size batch buffers
// exactly), or -1 when unknown.
type ShardSizer interface {
	ShardLen(sh int) int
}

// ShardHinter is an optional TargetSource refinement: ShardHint reports
// the canonical shard every address from this source hashes to, letting
// the engine's router skip per-address hashing, or -1 when the source
// spans shards.
type ShardHinter interface {
	ShardHint() int
}

// origSource is the internal refinement Stream uses to thread
// original-position mappings (Batch.OrigIndex) through StreamFrom.
type origSource interface {
	shardOrig(sh int) []int
}

// SliceSource wraps a materialized target slice as a TargetSource. The
// returned source also implements ShardedSource (partitioning lazily,
// preserving input order within each shard), SpanSource and ShardSizer,
// so slice-fed streams keep the exact plan-based fast path of the
// engine. The slice must not be mutated while the source is in use.
func SliceSource(addrs []ip6.Addr) TargetSource {
	return &sliceSource{rest: addrs, all: addrs}
}

type sliceSource struct {
	rest  []ip6.Addr
	all   []ip6.Addr
	plans []shardPlan
}

func (s *sliceSource) Next(buf []ip6.Addr) (int, error) {
	n := copy(buf, s.rest)
	s.rest = s.rest[n:]
	if len(s.rest) == 0 {
		return n, io.EOF
	}
	return n, nil
}

func (s *sliceSource) Span(max int) ([]ip6.Addr, error) {
	if max > len(s.rest) {
		max = len(s.rest)
	}
	seg := s.rest[:max]
	s.rest = s.rest[max:]
	if len(s.rest) == 0 {
		return seg, io.EOF
	}
	return seg, nil
}

func (s *sliceSource) built() []shardPlan {
	if s.plans == nil {
		s.plans = buildPlans(s.all)
	}
	return s.plans
}

func (s *sliceSource) ShardSource(sh int) TargetSource {
	plan := &s.built()[sh]
	if len(plan.targets) == 0 {
		return nil
	}
	return &spanSlice{rest: plan.targets}
}

func (s *sliceSource) ShardLen(sh int) int { return len(s.built()[sh].targets) }

func (s *sliceSource) shardOrig(sh int) []int { return s.built()[sh].orig }

// spanSlice is the per-shard cursor of slice-backed sharded sources.
type spanSlice struct{ rest []ip6.Addr }

func (s *spanSlice) Next(buf []ip6.Addr) (int, error) {
	n := copy(buf, s.rest)
	s.rest = s.rest[n:]
	if len(s.rest) == 0 {
		return n, io.EOF
	}
	return n, nil
}

func (s *spanSlice) Span(max int) ([]ip6.Addr, error) {
	if max > len(s.rest) {
		max = len(s.rest)
	}
	seg := s.rest[:max]
	s.rest = s.rest[max:]
	if len(s.rest) == 0 {
		return seg, io.EOF
	}
	return seg, nil
}

// ShardSlices wraps caller-partitioned per-shard target slices — the
// layout the service's scan-set buffers already hold — as a
// ShardedSource. shards[i] holds shard i's targets (every address must
// satisfy ip6.ShardOf == i) and len(shards) must be ip6.AddrShards.
// Generic Next pulls walk shards in canonical order.
func ShardSlices(shards [][]ip6.Addr) ShardedSource {
	if len(shards) != ip6.AddrShards {
		panic(fmt.Sprintf("scan: ShardSlices wants %d shards, got %d", ip6.AddrShards, len(shards)))
	}
	return &shardSlices{shards: shards}
}

type shardSlices struct {
	shards [][]ip6.Addr
	sh     int
	off    int
}

func (s *shardSlices) Next(buf []ip6.Addr) (int, error) {
	n := 0
	for n < len(buf) {
		for s.sh < len(s.shards) && s.off >= len(s.shards[s.sh]) {
			s.sh++
			s.off = 0
		}
		if s.sh >= len(s.shards) {
			return n, io.EOF
		}
		c := copy(buf[n:], s.shards[s.sh][s.off:])
		n += c
		s.off += c
	}
	// Report EOF eagerly when the cursor landed exactly on the end.
	sh, off := s.sh, s.off
	for sh < len(s.shards) && off >= len(s.shards[sh]) {
		sh++
		off = 0
	}
	if sh >= len(s.shards) {
		return n, io.EOF
	}
	return n, nil
}

func (s *shardSlices) ShardSource(sh int) TargetSource {
	if len(s.shards[sh]) == 0 {
		return nil
	}
	return &spanSlice{rest: s.shards[sh]}
}

func (s *shardSlices) ShardLen(sh int) int { return len(s.shards[sh]) }

// Chain concatenates sources: all of srcs[0]'s targets, then srcs[1]'s,
// and so on. Closing the chain closes every closable constituent.
func Chain(srcs ...TargetSource) TargetSource {
	return &chainSource{srcs: srcs}
}

type chainSource struct {
	srcs []TargetSource
	cur  int
}

func (c *chainSource) Next(buf []ip6.Addr) (int, error) {
	for c.cur < len(c.srcs) {
		n, err := c.srcs[c.cur].Next(buf)
		if err == io.EOF {
			c.cur++
			if n > 0 {
				if c.cur >= len(c.srcs) {
					return n, io.EOF
				}
				return n, nil
			}
			continue
		}
		if err != nil {
			return n, err
		}
		if n > 0 {
			return n, nil
		}
		return 0, fmt.Errorf("scan: chained source made no progress")
	}
	return 0, io.EOF
}

func (c *chainSource) Close() error {
	var first error
	for _, s := range c.srcs {
		if cl, ok := s.(io.Closer); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Filter wraps src, keeping only the addresses keep reports true for.
// Closing the filter closes src if closable.
func Filter(src TargetSource, keep func(ip6.Addr) bool) TargetSource {
	return &filterSource{src: src, keep: keep}
}

type filterSource struct {
	src  TargetSource
	keep func(ip6.Addr) bool
	eof  bool
}

func (f *filterSource) Next(buf []ip6.Addr) (int, error) {
	if f.eof {
		return 0, io.EOF
	}
	for {
		n, err := f.src.Next(buf)
		kept := 0
		for _, a := range buf[:n] {
			if f.keep(a) {
				buf[kept] = a
				kept++
			}
		}
		if err == io.EOF {
			f.eof = true
			return kept, io.EOF
		}
		if err != nil {
			return kept, err
		}
		if kept > 0 {
			return kept, nil
		}
		if n == 0 {
			return 0, fmt.Errorf("scan: filtered source made no progress")
		}
		// Everything in this pull was filtered out; pull again rather
		// than violate the no-progress-without-error contract.
	}
}

func (f *filterSource) Close() error {
	if cl, ok := f.src.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// AddSet is the accumulator DedupWith tracks emitted addresses in: Add
// reports whether the address was newly inserted. ip6.Set satisfies it
// resident; ip6.SpillSet satisfies it with bounded memory, which is what
// keeps hitlist-scale candidate streams deduplicable without holding the
// emitted set in RAM.
type AddSet interface {
	Add(a ip6.Addr) bool
}

// Dedup wraps src, dropping every address skip reports true for and any
// address already emitted earlier in the stream — the streaming
// counterpart of tga.DedupAgainstSeeds (with skip as seed-set
// membership). Closing the dedup source closes src if closable. The
// emitted-address set is resident; use DedupWith to supply a spillable
// one.
func Dedup(src TargetSource, skip func(ip6.Addr) bool) TargetSource {
	return DedupWith(src, skip, ip6.NewSet(0))
}

// DedupWith is Dedup with a caller-provided emitted-address accumulator,
// so larger-than-memory streams can dedup against a disk-backed set. The
// caller owns seen (and closes it if closable); the source only Adds.
func DedupWith(src TargetSource, skip func(ip6.Addr) bool, seen AddSet) TargetSource {
	return Filter(src, func(a ip6.Addr) bool {
		if skip != nil && skip(a) {
			return false
		}
		return seen.Add(a)
	})
}

// Collect drains a source into a slice — the materializing compat path
// for consumers that genuinely need the whole set (ordered output,
// analyses). It closes src if closable.
func Collect(src TargetSource) ([]ip6.Addr, error) {
	defer closeSource(src)
	var out []ip6.Addr
	buf := make([]ip6.Addr, DefaultSourceChunk)
	for {
		n, err := src.Next(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, fmt.Errorf("scan: source made no progress")
		}
	}
}

func closeSource(src TargetSource) {
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}
