// Package scan implements a ZMapv6-style stateless scanner against the
// synthetic Internet.
//
// Like the real tool, it sends one probe per (target, protocol), treats any
// returned packet as success — which is precisely how GFW-injected DNS
// answers were counted as responsive targets — supports retries to absorb
// probe loss, and emits ZMap-style CSV. Unlike the real tool it probes a
// netmodel.Network instead of a raw socket; everything above the probe layer
// is the same code path the paper's pipeline uses.
package scan

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
)

// Config parameterizes a scanner.
type Config struct {
	// Seed drives the deterministic loss draws.
	Seed uint64

	// Workers is the probe concurrency; 0 means GOMAXPROCS.
	Workers int

	// LossRate is the per-probe probability that either the probe or its
	// response is lost in transit.
	LossRate float64

	// Retries is how many times a lost probe is retransmitted.
	Retries int

	// QName is the DNS question sent on UDP/53 probes. The hitlist
	// service queries a AAAA record for www.google.com — a blocked
	// domain, which is what made the service GFW-sensitive. It is kept
	// for consistency (Section 4.2's argument) and filtered downstream.
	QName string

	// QNameFor, when set, overrides QName per target (the Section 4.2
	// unique-subdomain experiment).
	QNameFor func(ip6.Addr) string

	// RatePPS models the probes-per-second budget; it only affects the
	// reported scan duration, not wall-clock time.
	RatePPS int

	// BatchSize is the number of results per streamed batch; 0 means
	// DefaultBatchSize. It is a throughput knob only: scan outputs are
	// bit-identical across batch sizes.
	BatchSize int

	// SourceChunk is the number of targets StreamFrom pulls from a
	// TargetSource per Next/Span call; 0 means DefaultSourceChunk. A
	// throughput knob only: outputs are bit-identical across chunk
	// sizes.
	SourceChunk int

	// SinkQueueDepth, when > 0, decouples probe workers from the sink
	// through a bounded delivery queue of this many batches: one delivery
	// goroutine drains the queue in FIFO order (preserving the per-shard
	// Seq ordering of the Sink contract), probe workers run ahead until
	// the queue fills, and a slow consumer then applies backpressure
	// instead of stalling every worker inside each sink call. 0 invokes
	// the sink inline on the probe workers. A throughput knob only:
	// outputs are bit-identical either way.
	SinkQueueDepth int
}

// DefaultConfig mirrors the service's scanning configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:     seed,
		LossRate: 0.01,
		Retries:  1,
		QName:    "www.google.com",
		RatePPS:  100_000,
	}
}

// Result is the outcome of probing one target on one protocol.
type Result struct {
	Target ip6.Addr
	Proto  netmodel.Protocol
	Day    int

	// Success is the ZMap view: some packet came back.
	Success bool

	Kind netmodel.RespKind
	FP   netmodel.TCPFingerprint

	// DNS carries the raw response messages for UDP/53 probes.
	DNS [][]byte

	// InjectedTruth is ground truth from the network model (how many DNS
	// messages were injected); used only to score detection quality.
	InjectedTruth int

	// Attempts is how many probes a real scanner would have transmitted
	// for this (target, protocol): k when the k-th attempt drew a
	// response, and the full 1+Retries when nothing ever came back — a
	// scanner cannot distinguish genuine silence from probe loss, so it
	// retransmits every retry at a dark address even though the
	// deterministic world lets ProbeOne stop probing early. Probe
	// accounting (Stats.ProbesSent, EstimatedSeconds) sums these instead
	// of charging 1+Retries unconditionally. uint16 packs into the
	// struct padding after Success, keeping Result at its pre-Attempts
	// size.
	Attempts uint16
}

// Stats aggregates a scan run (or, on a Batch, one batch of it).
type Stats struct {
	ProbesSent uint64
	Responses  uint64
	Successes  uint64
	// Batches is the number of streamed batches delivered.
	Batches uint64
	// EstimatedSeconds is the modeled scan duration at Config.RatePPS.
	EstimatedSeconds float64
	// PerShard breaks the stream's throughput down by canonical shard
	// (ip6.AddrShards entries). It is filled on the aggregate Stats a
	// stream call returns, nil on per-batch Stats. All fields but
	// ShardStats.Nanos are deterministic.
	PerShard []ShardStats
}

// Scanner probes targets in a network.
type Scanner struct {
	net *netmodel.Network
	cfg Config

	// dnsQuery/dnsWire are the precomputed DNS probe template for the
	// fixed-QName configuration: the query is encoded and parsed once at
	// construction, and every UDP/53 probe carries the shared parsed
	// message plus its per-probe transaction ID (netmodel.Probe.Query /
	// TxID) instead of paying a NewQuery+Encode+Decode round trip. Both
	// are read-only after New. With QNameFor set (per-target qnames) the
	// template is nil and probes build their query per call.
	dnsQuery *dnswire.Message
	dnsWire  []byte

	// bufPool recycles batch result buffers across Stream calls; sinks
	// must not retain batches, which is what makes this reuse sound.
	bufPool sync.Pool

	// arenaPool recycles the per-batch DNS wire arenas (UDP/53 streams
	// only). The same no-retention contract covers the payloads: a sink
	// keeping Result.DNS past its return must deep-copy, as Scan's
	// materializing wrapper does.
	arenaPool sync.Pool

	// dispatch is the optional shard hand-out order of the sharded
	// stream path (SetDispatchOrder); nil means canonical ascending.
	dispatchMu sync.Mutex
	dispatch   []int
}

// New builds a scanner over the given network.
func New(net *netmodel.Network, cfg Config) *Scanner {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QName == "" {
		cfg.QName = "www.google.com"
	}
	if cfg.RatePPS <= 0 {
		cfg.RatePPS = 100_000
	}
	s := &Scanner{net: net, cfg: cfg}
	if cfg.QNameFor == nil {
		// An unencodable QName leaves the template nil; the per-probe
		// path then reports it exactly as before (panic on first UDP/53
		// probe), so template construction never changes behavior.
		if wire, err := dnswire.NewQuery(0, cfg.QName, dnswire.TypeAAAA).Encode(); err == nil {
			// Parse the template back from its own wire bytes so the
			// shared message is exactly what netmodel used to decode per
			// probe.
			if q, err := dnswire.Decode(wire); err == nil {
				s.dnsQuery, s.dnsWire = q, wire
			}
		}
	}
	return s
}

// Config returns the scanner's configuration.
func (s *Scanner) Config() Config { return s.cfg }

// SetDispatchOrder sets the order the sharded stream path hands whole
// shards to probe workers — the scheduler knob for adaptive dispatch:
// feeding the previous scan's slowest shards (ShardStats.Nanos) first
// trims the tail, because the stragglers are in flight while the cheap
// shards backfill idle workers. order must be a permutation of
// [0, ip6.AddrShards); nil restores canonical ascending order. Scan
// outputs never depend on the dispatch order — batches are per shard and
// consumers merge in canonical shard order — so this is purely a
// wall-clock knob.
func (s *Scanner) SetDispatchOrder(order []int) error {
	if order == nil {
		s.dispatchMu.Lock()
		s.dispatch = nil
		s.dispatchMu.Unlock()
		return nil
	}
	if len(order) != ip6.AddrShards {
		return fmt.Errorf("scan: dispatch order has %d entries, want %d", len(order), ip6.AddrShards)
	}
	var seen [ip6.AddrShards]bool
	for _, sh := range order {
		if sh < 0 || sh >= ip6.AddrShards || seen[sh] {
			return fmt.Errorf("scan: dispatch order is not a permutation of [0,%d)", ip6.AddrShards)
		}
		seen[sh] = true
	}
	cp := append([]int(nil), order...)
	s.dispatchMu.Lock()
	s.dispatch = cp
	s.dispatchMu.Unlock()
	return nil
}

// dispatchOrder returns the current hand-out order (nil = canonical).
func (s *Scanner) dispatchOrder() []int {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	return s.dispatch
}

// lost draws deterministic per-attempt probe loss.
func (s *Scanner) lost(a ip6.Addr, p netmodel.Protocol, day, attempt int) bool {
	if s.cfg.LossRate <= 0 {
		return false
	}
	th := uint64(s.cfg.LossRate * (1 << 32))
	return rng.Mix(s.cfg.Seed, a.Hi(), a.Lo(), uint64(p), uint64(day), uint64(attempt), 0x1055)&0xffffffff < th
}

// ProbeOne probes a single target with a single protocol, honoring loss
// and retries.
func (s *Scanner) ProbeOne(target ip6.Addr, proto netmodel.Protocol, day int) Result {
	return s.probeOne(target, proto, day, nil)
}

// probeOne is ProbeOne with the response's DNS wire buffers drawn from
// arena slots when one is supplied — the streaming engine's path, which
// pairs an arena with each batch and recycles both together. The
// returned Result's DNS slices then alias arena memory and are only
// valid until the arena resets.
func (s *Scanner) probeOne(target ip6.Addr, proto netmodel.Protocol, day int, arena *netmodel.WireArena) Result {
	res := Result{Target: target, Proto: proto, Day: day}
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		if s.lost(target, proto, day, attempt) {
			continue
		}
		pr := s.buildProbe(target, proto, day)
		pr.Arena = arena
		resp := s.net.Probe(pr)
		if resp.Kind == netmodel.RespNone {
			// Genuine silence: retrying cannot change the outcome, the
			// world is deterministic within a day.
			break
		}
		// ZMap classification: an RST means the host is alive but the
		// port is closed — recorded, but not a success.
		res.Success = resp.Positive() && resp.Kind != netmodel.RespRST
		res.Kind = resp.Kind
		res.FP = resp.FP
		res.DNS = resp.DNS
		res.InjectedTruth = resp.InjectedCount
		res.Attempts = uint16(attempt + 1)
		break
	}
	if res.Kind == netmodel.RespNone {
		// No packet ever came back; a real scanner retransmits every
		// retry at a silent target.
		res.Attempts = uint16(1 + s.cfg.Retries)
	}
	return res
}

func (s *Scanner) buildProbe(target ip6.Addr, proto netmodel.Protocol, day int) netmodel.Probe {
	switch proto {
	case netmodel.ICMP:
		return netmodel.Probe{Kind: netmodel.EchoRequest, Target: target, Day: day, Size: 8}
	case netmodel.TCP80:
		return netmodel.Probe{Kind: netmodel.TCPSYN, Target: target, Day: day, Port: 80}
	case netmodel.TCP443:
		return netmodel.Probe{Kind: netmodel.TCPSYN, Target: target, Day: day, Port: 443}
	case netmodel.UDP443:
		return netmodel.Probe{Kind: netmodel.QUICInitial, Target: target, Day: day, Port: 443}
	case netmodel.UDP53:
		txid := uint16(rng.Mix(s.cfg.Seed, target.Hi(), target.Lo(), uint64(day)))
		if s.dnsQuery != nil {
			// Template fast path: the shared parsed query plus the
			// per-probe transaction ID. Payload carries the template wire
			// bytes (transaction ID zero) for generic consumers; the
			// network reads Query/TxID and never re-parses them.
			return netmodel.Probe{
				Kind: netmodel.DNSQuery, Target: target, Day: day,
				Payload: s.dnsWire, Query: s.dnsQuery, TxID: txid,
			}
		}
		qname := s.cfg.QName
		if s.cfg.QNameFor != nil {
			qname = s.cfg.QNameFor(target)
		}
		q := dnswire.NewQuery(txid, qname, dnswire.TypeAAAA)
		wire, err := q.Encode()
		if err != nil {
			panic(fmt.Sprintf("scan: building DNS query for %q: %v", qname, err))
		}
		return netmodel.Probe{Kind: netmodel.DNSQuery, Target: target, Day: day, Payload: wire, Query: q, TxID: txid}
	}
	panic(fmt.Sprintf("scan: unknown protocol %v", proto))
}

// Scan probes every target with every requested protocol and returns all
// results. Order follows (target, protocol) input order. The context
// cancels the scan early; the partial result set and ctx.Err() are
// returned. Scan is a thin wrapper over Stream that materializes the full
// cross product — streaming consumers should use Stream directly and skip
// this allocation.
func (s *Scanner) Scan(ctx context.Context, targets []ip6.Addr, protos []netmodel.Protocol, day int) ([]Result, Stats, error) {
	results := make([]Result, len(targets)*len(protos))
	st, err := s.Stream(ctx, targets, protos, day, func(b *Batch) error {
		// Batches write disjoint index ranges, so no locking is needed.
		for i := range b.Results {
			r := b.Results[i]
			if len(r.DNS) > 0 {
				// The engine recycles the DNS wire buffers together with
				// the batch; the materialized result set outlives both,
				// so the payloads are deep-copied out here.
				dns := make([][]byte, len(r.DNS))
				for j, w := range r.DNS {
					dns[j] = append([]byte(nil), w...)
				}
				r.DNS = dns
			}
			results[b.OrigIndex(i)] = r
		}
		return nil
	})
	return results, st, err
}

// StreamResponsive streams a scan and accumulates, per protocol, the
// sharded set of targets that answered — the streaming counterpart of
// ResponsiveSet for consumers (like alias detection) that can query the
// sharded sets directly and skip the merged copy.
func (s *Scanner) StreamResponsive(ctx context.Context, targets []ip6.Addr, protos []netmodel.Protocol, day int) (map[netmodel.Protocol]*ip6.ShardedSet, Stats, error) {
	return s.StreamResponsiveFrom(ctx, SliceSource(targets), protos, day)
}

// StreamResponsiveFrom is StreamResponsive over a pull-based source: it
// probes everything src yields and accumulates, per protocol, the
// sharded set of targets that answered, never materializing the target
// list or the result cross product.
func (s *Scanner) StreamResponsiveFrom(ctx context.Context, src TargetSource, protos []netmodel.Protocol, day int) (map[netmodel.Protocol]*ip6.ShardedSet, Stats, error) {
	acc := make(map[netmodel.Protocol]*ip6.ShardedSet, len(protos))
	for _, p := range protos {
		acc[p] = ip6.NewShardedSet()
	}
	st, err := s.StreamFrom(ctx, src, protos, day, func(b *Batch) error {
		for i := range b.Results {
			if r := &b.Results[i]; r.Success {
				acc[r.Proto].AddToShard(b.Shard, r.Target)
			}
		}
		return nil
	})
	return acc, st, err
}

// ResponsiveSet streams a scan and returns, per protocol, the flat set of
// targets that answered. It is the aggregation the pipeline consumes; the
// full result cross product is never materialized.
func (s *Scanner) ResponsiveSet(ctx context.Context, targets []ip6.Addr, protos []netmodel.Protocol, day int) (map[netmodel.Protocol]ip6.Set, Stats, error) {
	acc, st, err := s.StreamResponsive(ctx, targets, protos, day)
	out := make(map[netmodel.Protocol]ip6.Set, len(protos))
	for _, p := range protos {
		out[p] = acc[p].Merge()
	}
	return out, st, err
}
