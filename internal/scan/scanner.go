// Package scan implements a ZMapv6-style stateless scanner against the
// synthetic Internet.
//
// Like the real tool, it sends one probe per (target, protocol), treats any
// returned packet as success — which is precisely how GFW-injected DNS
// answers were counted as responsive targets — supports retries to absorb
// probe loss, and emits ZMap-style CSV. Unlike the real tool it probes a
// netmodel.Network instead of a raw socket; everything above the probe layer
// is the same code path the paper's pipeline uses.
package scan

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
	"hitlist6/internal/rng"
)

// Config parameterizes a scanner.
type Config struct {
	// Seed drives the deterministic loss draws.
	Seed uint64

	// Workers is the probe concurrency; 0 means GOMAXPROCS.
	Workers int

	// LossRate is the per-probe probability that either the probe or its
	// response is lost in transit.
	LossRate float64

	// Retries is how many times a lost probe is retransmitted.
	Retries int

	// QName is the DNS question sent on UDP/53 probes. The hitlist
	// service queries a AAAA record for www.google.com — a blocked
	// domain, which is what made the service GFW-sensitive. It is kept
	// for consistency (Section 4.2's argument) and filtered downstream.
	QName string

	// QNameFor, when set, overrides QName per target (the Section 4.2
	// unique-subdomain experiment).
	QNameFor func(ip6.Addr) string

	// RatePPS models the probes-per-second budget; it only affects the
	// reported scan duration, not wall-clock time.
	RatePPS int
}

// DefaultConfig mirrors the service's scanning configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:     seed,
		LossRate: 0.01,
		Retries:  1,
		QName:    "www.google.com",
		RatePPS:  100_000,
	}
}

// Result is the outcome of probing one target on one protocol.
type Result struct {
	Target ip6.Addr
	Proto  netmodel.Protocol
	Day    int

	// Success is the ZMap view: some packet came back.
	Success bool

	Kind netmodel.RespKind
	FP   netmodel.TCPFingerprint

	// DNS carries the raw response messages for UDP/53 probes.
	DNS [][]byte

	// InjectedTruth is ground truth from the network model (how many DNS
	// messages were injected); used only to score detection quality.
	InjectedTruth int
}

// Stats aggregates a scan run.
type Stats struct {
	ProbesSent uint64
	Responses  uint64
	Successes  uint64
	// EstimatedSeconds is the modeled scan duration at Config.RatePPS.
	EstimatedSeconds float64
}

// Scanner probes targets in a network.
type Scanner struct {
	net *netmodel.Network
	cfg Config
}

// New builds a scanner over the given network.
func New(net *netmodel.Network, cfg Config) *Scanner {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QName == "" {
		cfg.QName = "www.google.com"
	}
	if cfg.RatePPS <= 0 {
		cfg.RatePPS = 100_000
	}
	return &Scanner{net: net, cfg: cfg}
}

// Config returns the scanner's configuration.
func (s *Scanner) Config() Config { return s.cfg }

// lost draws deterministic per-attempt probe loss.
func (s *Scanner) lost(a ip6.Addr, p netmodel.Protocol, day, attempt int) bool {
	if s.cfg.LossRate <= 0 {
		return false
	}
	th := uint64(s.cfg.LossRate * (1 << 32))
	return rng.Mix(s.cfg.Seed, a.Hi(), a.Lo(), uint64(p), uint64(day), uint64(attempt), 0x1055)&0xffffffff < th
}

// ProbeOne probes a single target with a single protocol, honoring loss
// and retries.
func (s *Scanner) ProbeOne(target ip6.Addr, proto netmodel.Protocol, day int) Result {
	res := Result{Target: target, Proto: proto, Day: day}
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		if s.lost(target, proto, day, attempt) {
			continue
		}
		resp := s.net.Probe(s.buildProbe(target, proto, day))
		if resp.Kind == netmodel.RespNone {
			// Genuine silence: retrying cannot help, the world is
			// deterministic within a day.
			break
		}
		// ZMap classification: an RST means the host is alive but the
		// port is closed — recorded, but not a success.
		res.Success = resp.Positive() && resp.Kind != netmodel.RespRST
		res.Kind = resp.Kind
		res.FP = resp.FP
		res.DNS = resp.DNS
		res.InjectedTruth = resp.InjectedCount
		break
	}
	return res
}

func (s *Scanner) buildProbe(target ip6.Addr, proto netmodel.Protocol, day int) netmodel.Probe {
	switch proto {
	case netmodel.ICMP:
		return netmodel.Probe{Kind: netmodel.EchoRequest, Target: target, Day: day, Size: 8}
	case netmodel.TCP80:
		return netmodel.Probe{Kind: netmodel.TCPSYN, Target: target, Day: day, Port: 80}
	case netmodel.TCP443:
		return netmodel.Probe{Kind: netmodel.TCPSYN, Target: target, Day: day, Port: 443}
	case netmodel.UDP443:
		return netmodel.Probe{Kind: netmodel.QUICInitial, Target: target, Day: day, Port: 443}
	case netmodel.UDP53:
		qname := s.cfg.QName
		if s.cfg.QNameFor != nil {
			qname = s.cfg.QNameFor(target)
		}
		txid := uint16(rng.Mix(s.cfg.Seed, target.Hi(), target.Lo(), uint64(day)))
		q := dnswire.NewQuery(txid, qname, dnswire.TypeAAAA)
		wire, err := q.Encode()
		if err != nil {
			panic(fmt.Sprintf("scan: building DNS query for %q: %v", qname, err))
		}
		return netmodel.Probe{Kind: netmodel.DNSQuery, Target: target, Day: day, Payload: wire}
	}
	panic(fmt.Sprintf("scan: unknown protocol %v", proto))
}

// Scan probes every target with every requested protocol using a worker
// pool and returns all results. Order follows (target, protocol) input
// order. The context cancels the scan early; the partial result set and
// ctx.Err() are returned.
func (s *Scanner) Scan(ctx context.Context, targets []ip6.Addr, protos []netmodel.Protocol, day int) ([]Result, Stats, error) {
	type job struct{ ti, pi int }
	results := make([]Result, len(targets)*len(protos))
	jobs := make(chan job, 4*s.cfg.Workers)
	var wg sync.WaitGroup
	var sent, succ, resp atomic.Uint64

	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r := s.ProbeOne(targets[j.ti], protos[j.pi], day)
				sent.Add(uint64(1 + s.cfg.Retries))
				if r.Kind != netmodel.RespNone {
					resp.Add(1)
				}
				if r.Success {
					succ.Add(1)
				}
				results[j.ti*len(protos)+j.pi] = r
			}
		}()
	}

	var err error
feed:
	for ti := range targets {
		for pi := range protos {
			select {
			case jobs <- job{ti, pi}:
			case <-ctx.Done():
				err = ctx.Err()
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()

	st := Stats{
		ProbesSent: sent.Load(),
		Responses:  resp.Load(),
		Successes:  succ.Load(),
	}
	st.EstimatedSeconds = float64(st.ProbesSent) / float64(s.cfg.RatePPS)
	return results, st, err
}

// ResponsiveSet runs a scan and returns, per protocol, the set of targets
// that answered. It is the aggregation the pipeline consumes.
func (s *Scanner) ResponsiveSet(ctx context.Context, targets []ip6.Addr, protos []netmodel.Protocol, day int) (map[netmodel.Protocol]ip6.Set, Stats, error) {
	results, st, err := s.Scan(ctx, targets, protos, day)
	out := make(map[netmodel.Protocol]ip6.Set, len(protos))
	for _, p := range protos {
		out[p] = ip6.NewSet(0)
	}
	for _, r := range results {
		if r.Success {
			out[r.Proto].Add(r.Target)
		}
	}
	return out, st, err
}
