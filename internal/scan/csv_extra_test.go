package scan

import (
	"bytes"
	"testing"

	"hitlist6/internal/dnswire"
	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// TestWriteRecordRoundtrip exercises the gfw-filter tool's path: parse a
// CSV, re-serialize records verbatim, parse again — a fixed point.
func TestWriteRecordRoundtrip(t *testing.T) {
	teredo := ip6.TeredoAddr(ip6.IPv4{65, 54, 227, 120}, ip6.IPv4{31, 13, 94, 37})
	recs := []Record{
		{
			Addr: ip6.MustParseAddr("240e::1"), Proto: netmodel.UDP53, Day: 1376,
			Success: true, Kind: netmodel.RespDNS, Responses: 3, RCode: "NOERROR",
			Answers: []AnswerSummary{
				{Type: dnswire.TypeAAAA, Value: teredo.String()},
				{Type: dnswire.TypeA, Value: "31.13.94.37"},
			},
		},
		{
			Addr: ip6.MustParseAddr("2001:db9::80"), Proto: netmodel.ICMP, Day: 1376,
			Success: true, Kind: netmodel.RespEchoReply,
		},
		{
			Addr: ip6.MustParseAddr("2001:db9::81"), Proto: netmodel.TCP443, Day: 1376,
			Success: false, Kind: netmodel.RespNone,
		},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("rows: %d", len(got))
	}
	for i := range recs {
		a, b := recs[i], got[i]
		if a.Addr != b.Addr || a.Proto != b.Proto || a.Day != b.Day ||
			a.Success != b.Success || a.Kind != b.Kind || a.Responses != b.Responses ||
			a.RCode != b.RCode || len(a.Answers) != len(b.Answers) {
			t.Fatalf("row %d mismatch:\n%+v\n%+v", i, a, b)
		}
		for j := range a.Answers {
			if a.Answers[j] != b.Answers[j] {
				t.Fatalf("answer %d/%d mismatch", i, j)
			}
		}
	}
	// Second pass is byte-identical (fixed point).
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2)
	for _, rec := range got {
		if err := w2.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-serialization is not a fixed point")
	}
}

// TestSummarizeDNSMultiMessage: answers accumulate across messages and
// the first message's rcode wins.
func TestSummarizeDNSMultiMessage(t *testing.T) {
	mk := func(rcode dnswire.RCode, rrs ...dnswire.RR) []byte {
		q := dnswire.NewQuery(5, "www.google.com", dnswire.TypeAAAA)
		r := q.Reply()
		r.Header.RCode = rcode
		r.Answers = rrs
		w, err := r.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	m1 := mk(dnswire.RCodeNoError, dnswire.RR{Name: "www.google.com", Type: dnswire.TypeA, A: ip6.IPv4{1, 2, 3, 4}})
	m2 := mk(dnswire.RCodeRefused, dnswire.RR{Name: "www.google.com", Type: dnswire.TypeA, A: ip6.IPv4{5, 6, 7, 8}})
	rcode, answers := SummarizeDNS([][]byte{m1, m2})
	if rcode != "NOERROR" {
		t.Errorf("rcode: %q", rcode)
	}
	if len(answers) != 2 || answers[0].Value != "1.2.3.4" || answers[1].Value != "5.6.7.8" {
		t.Errorf("answers: %+v", answers)
	}
	// Undecodable messages are skipped.
	rcode, answers = SummarizeDNS([][]byte{{0xde, 0xad}, m1})
	if len(answers) != 1 {
		t.Errorf("corrupt message not skipped: %+v", answers)
	}
	_ = rcode
}
