package scan

import (
	"context"
	"errors"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

// opaque hides every optional refinement of a source, forcing StreamFrom
// onto the routed (pull-and-hash) path.
type opaque struct{ src TargetSource }

func (o opaque) Next(buf []ip6.Addr) (int, error) { return o.src.Next(buf) }

// closeRecorder counts Close calls through the engine.
type closeRecorder struct {
	TargetSource
	closed int
}

func (c *closeRecorder) Close() error { c.closed++; return nil }

// errSource yields a prefix of targets and then fails.
type errSource struct {
	rest []ip6.Addr
	err  error
}

func (s *errSource) Next(buf []ip6.Addr) (int, error) {
	if len(s.rest) == 0 {
		return 0, s.err
	}
	n := copy(buf, s.rest)
	s.rest = s.rest[n:]
	return n, nil
}

// TestSliceSourceContract pins the TargetSource pull contract on the
// slice implementation: progress on every call, io.EOF exactly at
// exhaustion (with or without final data), and stability after EOF.
func TestSliceSourceContract(t *testing.T) {
	targets := streamTargets(10)
	src := SliceSource(targets)
	buf := make([]ip6.Addr, 4)
	var got []ip6.Addr
	for i := 0; ; i++ {
		n, err := src.Next(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			if n == 0 && i < 3 {
				t.Error("EOF without final data arrived early")
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("Next returned 0, nil")
		}
	}
	if !reflect.DeepEqual(got, targets) {
		t.Error("pulled sequence differs from slice")
	}
	if n, err := src.Next(buf); n != 0 || err != io.EOF {
		t.Errorf("post-EOF pull: n=%d err=%v", n, err)
	}

	// Empty slice: immediate EOF.
	if n, err := SliceSource(nil).Next(buf); n != 0 || err != io.EOF {
		t.Errorf("empty source: n=%d err=%v", n, err)
	}
}

// TestChainAndFilterSources: Chain preserves concatenation order, Filter
// drops without breaking the progress contract, Dedup removes skips and
// repeats in first-occurrence order.
func TestChainAndFilterSources(t *testing.T) {
	a := streamTargets(5)
	b := streamTargets(9)[5:]
	got, err := Collect(Chain(SliceSource(a), SliceSource(nil), SliceSource(b)))
	if err != nil {
		t.Fatal(err)
	}
	if want := streamTargets(9); !reflect.DeepEqual(got, want) {
		t.Errorf("chain order: got %d targets, want %d", len(got), len(want))
	}

	evens, err := Collect(Filter(SliceSource(streamTargets(10)), func(x ip6.Addr) bool { return x.Lo()%2 == 0 }))
	if err != nil {
		t.Fatal(err)
	}
	if len(evens) != 5 {
		t.Errorf("filter kept %d, want 5", len(evens))
	}

	dup := append(append([]ip6.Addr{}, streamTargets(6)...), streamTargets(8)...)
	skip := streamTargets(2)
	skipSet := ip6.NewSet(2)
	skipSet.AddSlice(skip)
	deduped, err := Collect(Dedup(SliceSource(dup), skipSet.Has))
	if err != nil {
		t.Fatal(err)
	}
	if want := streamTargets(8)[2:]; !reflect.DeepEqual(deduped, want) {
		t.Errorf("dedup: got %v want %v", deduped, want)
	}
}

// shardSequences collects each shard's target sequence in Seq order plus
// stats — the engine's complete deterministic output.
func shardSequences(t *testing.T, stream func(Sink) (Stats, error)) (map[int][]ip6.Addr, Stats) {
	t.Helper()
	var mu sync.Mutex
	seqs := make(map[int][]ip6.Addr)
	next := make(map[int]int)
	st, err := stream(func(b *Batch) error {
		mu.Lock()
		defer mu.Unlock()
		if b.Seq != next[b.Shard] {
			t.Errorf("shard %d: seq %d, want %d", b.Shard, b.Seq, next[b.Shard])
		}
		next[b.Shard]++
		for i := range b.Results {
			if ip6.ShardOf(b.Results[i].Target) != b.Shard {
				t.Errorf("target %v delivered in shard %d", b.Results[i].Target, b.Shard)
			}
			seqs[b.Shard] = append(seqs[b.Shard], b.Results[i].Target)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, st
}

// TestStreamFromRoutedMatchesStream is the routed path's equivalence
// guarantee: an opaque source (no sharding, no spans — the engine must
// pull, hash and route every address) produces per-shard batch sequences
// and stats bit-identical to Stream over the materialized slice, for
// every worker count, batch size and chunk size combination.
func TestStreamFromRoutedMatchesStream(t *testing.T) {
	n := testNet(t)
	targets := append(streamTargets(700),
		ip6.MustParseAddr("2001:100::80"),
		ip6.MustParseAddr("2001:100::53"),
		ip6.MustParseAddr("240e::1"))
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.UDP53}

	mk := func(workers, batch, chunk int) *Scanner {
		cfg := DefaultConfig(7)
		cfg.LossRate = 0.1
		cfg.Workers = workers
		cfg.BatchSize = batch
		cfg.SourceChunk = chunk
		return New(n, cfg)
	}
	base, baseStats := shardSequences(t, func(sink Sink) (Stats, error) {
		return mk(1, 16, 0).Stream(context.Background(), targets, protos, 9, sink)
	})
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 16, 512} {
			for _, chunk := range []int{1, 37, 0} {
				got, gotStats := shardSequences(t, func(sink Sink) (Stats, error) {
					return mk(workers, batch, chunk).StreamFrom(context.Background(),
						opaque{SliceSource(targets)}, protos, 9, sink)
				})
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("workers=%d batch=%d chunk=%d: routed shard sequences diverge", workers, batch, chunk)
				}
				if gotStats.ProbesSent != baseStats.ProbesSent || gotStats.Successes != baseStats.Successes {
					t.Fatalf("workers=%d batch=%d chunk=%d: stats diverge: %+v vs %+v",
						workers, batch, chunk, gotStats, baseStats)
				}
				if batch == 16 && gotStats.Batches != baseStats.Batches {
					t.Fatalf("workers=%d chunk=%d: batch boundaries diverge: %d vs %d",
						workers, chunk, gotStats.Batches, baseStats.Batches)
				}
			}
		}
	}
}

// hintedSource advertises the single canonical shard its addresses all
// hash to, exercising the router's ShardHint fast path.
type hintedSource struct {
	TargetSource
	shard int
}

func (h hintedSource) ShardHint() int { return h.shard }

// TestStreamFromShardHint: a source declaring its shard via ShardHint
// must stream identically to a plain routed source over the same
// targets — the hint only skips the per-address hash.
func TestStreamFromShardHint(t *testing.T) {
	n := testNet(t)
	all := streamTargets(900)
	byShard := make(map[int][]ip6.Addr)
	for _, a := range all {
		byShard[ip6.ShardOf(a)] = append(byShard[ip6.ShardOf(a)], a)
	}
	shard, targets := -1, []ip6.Addr(nil)
	for sh, ts := range byShard {
		if len(ts) > len(targets) {
			shard, targets = sh, ts
		}
	}
	cfg := DefaultConfig(7)
	cfg.Workers = 4
	cfg.BatchSize = 8
	cfg.SourceChunk = 13
	s := New(n, cfg)
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}

	base, baseStats := shardSequences(t, func(sink Sink) (Stats, error) {
		return s.Stream(context.Background(), targets, protos, 9, sink)
	})
	got, gotStats := shardSequences(t, func(sink Sink) (Stats, error) {
		return s.StreamFrom(context.Background(),
			hintedSource{TargetSource: opaque{SliceSource(targets)}, shard: shard}, protos, 9, sink)
	})
	if !reflect.DeepEqual(base, got) {
		t.Error("hinted stream diverges from plan-based stream")
	}
	if gotStats.ProbesSent != baseStats.ProbesSent || gotStats.Batches != baseStats.Batches {
		t.Errorf("hinted stats diverge: %+v vs %+v", gotStats, baseStats)
	}
}

// TestStreamFromSourceError: a source failing mid-stream surfaces its
// error, already-delivered batches stand, and the source is closed.
func TestStreamFromSourceError(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(5)
	cfg.BatchSize = 4
	cfg.SourceChunk = 8
	s := New(n, cfg)
	boom := errors.New("feed broke")
	src := &closeRecorder{TargetSource: &errSource{rest: streamTargets(100), err: boom}}
	delivered := 0
	var mu sync.Mutex
	_, err := s.StreamFrom(context.Background(), src, []netmodel.Protocol{netmodel.ICMP}, 3, func(b *Batch) error {
		mu.Lock()
		delivered += len(b.Results)
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if src.closed == 0 {
		t.Error("source not closed after error")
	}
	if delivered == 0 {
		t.Error("no batches delivered before the error")
	}
}

// TestStreamFromCancel: cancellation aborts a routed stream with
// ctx.Err() and still closes the source.
func TestStreamFromCancel(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(5)
	cfg.Workers = 2
	cfg.BatchSize = 2
	s := New(n, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &closeRecorder{TargetSource: opaque{SliceSource(streamTargets(5000))}}
	_, err := s.StreamFrom(ctx, src, allProtos(), 3, func(b *Batch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.closed == 0 {
		t.Error("source not closed after cancellation")
	}
}

// TestStreamFromNoProgressSource: a source that returns (0, nil) is a
// contract violation the engine must reject rather than spin on.
func TestStreamFromNoProgressSource(t *testing.T) {
	n := testNet(t)
	s := New(n, DefaultConfig(5))
	bad := opaque{src: badSource{}}
	_, err := s.StreamFrom(context.Background(), bad, allProtos(), 3, func(b *Batch) error { return nil })
	if err == nil {
		t.Fatal("no-progress source accepted")
	}
}

type badSource struct{}

func (badSource) Next(buf []ip6.Addr) (int, error) { return 0, nil }

// TestStreamFromEmpty: nil and immediately exhausted sources are clean
// no-ops on both engine paths.
func TestStreamFromEmpty(t *testing.T) {
	n := testNet(t)
	s := New(n, DefaultConfig(5))
	for name, src := range map[string]TargetSource{
		"nil":           nil,
		"emptySlice":    SliceSource(nil),
		"emptyRouted":   opaque{SliceSource(nil)},
		"emptySharded":  ShardSlices(make([][]ip6.Addr, ip6.AddrShards)),
		"emptyFiltered": Filter(SliceSource(streamTargets(50)), func(ip6.Addr) bool { return false }),
	} {
		st, err := s.StreamFrom(context.Background(), src, allProtos(), 3, func(b *Batch) error {
			t.Errorf("%s: sink called", name)
			return nil
		})
		if err != nil || st.ProbesSent != 0 || st.Batches != 0 {
			t.Errorf("%s: %+v, %v", name, st, err)
		}
	}
}

// TestStreamFromSinkQueueBackpressure: the bounded delivery queue with a
// deliberately slow sink behind a routed source still yields exactly the
// inline outputs, in per-shard Seq order.
func TestStreamFromSinkQueueBackpressure(t *testing.T) {
	n := testNet(t)
	targets := streamTargets(400)
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}
	mk := func(depth int) *Scanner {
		cfg := DefaultConfig(5)
		cfg.Workers = 4
		cfg.BatchSize = 8
		cfg.SourceChunk = 64
		cfg.SinkQueueDepth = depth
		return New(n, cfg)
	}
	inline, inlineStats := shardSequences(t, func(sink Sink) (Stats, error) {
		return mk(0).StreamFrom(context.Background(), opaque{SliceSource(targets)}, protos, 3, sink)
	})
	queued, queuedStats := shardSequences(t, func(sink Sink) (Stats, error) {
		slow := func(b *Batch) error {
			time.Sleep(50 * time.Microsecond)
			return sink(b)
		}
		return mk(2).StreamFrom(context.Background(), opaque{SliceSource(targets)}, protos, 3, slow)
	})
	if !reflect.DeepEqual(inline, queued) {
		t.Error("queued delivery changed the shard sequences")
	}
	if inlineStats.ProbesSent != queuedStats.ProbesSent || inlineStats.Batches != queuedStats.Batches {
		t.Errorf("queued stats differ: %+v vs %+v", queuedStats, inlineStats)
	}
}

// TestPerShardStats: the aggregate stats' per-shard breakdown must sum
// to the totals and agree with the per-batch delivery, on both paths.
func TestPerShardStats(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(5)
	cfg.Workers = 4
	s := New(n, cfg)
	targets := streamTargets(500)

	for name, stream := range map[string]func(Sink) (Stats, error){
		"plans": func(sink Sink) (Stats, error) {
			return s.Stream(context.Background(), targets, allProtos(), 3, sink)
		},
		"routed": func(sink Sink) (Stats, error) {
			return s.StreamFrom(context.Background(), opaque{SliceSource(targets)}, allProtos(), 3, sink)
		},
	} {
		var mu sync.Mutex
		perShard := make(map[int]uint64)
		st, err := stream(func(b *Batch) error {
			mu.Lock()
			perShard[b.Shard] += b.Stats.ProbesSent
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(st.PerShard) != ip6.AddrShards {
			t.Fatalf("%s: PerShard has %d entries", name, len(st.PerShard))
		}
		var sumProbes, sumResp, sumBatches uint64
		for sh, ss := range st.PerShard {
			sumProbes += ss.ProbesSent
			sumResp += ss.Responses
			sumBatches += ss.Batches
			if ss.ProbesSent != perShard[sh] {
				t.Errorf("%s: shard %d probes %d, batches said %d", name, sh, ss.ProbesSent, perShard[sh])
			}
			if ss.ProbesSent > 0 && ss.Nanos <= 0 {
				t.Errorf("%s: shard %d has probes but no time", name, sh)
			}
		}
		if sumProbes != st.ProbesSent || sumResp != st.Responses || sumBatches != st.Batches {
			t.Errorf("%s: per-shard sums (%d, %d, %d) != totals (%d, %d, %d)",
				name, sumProbes, sumResp, sumBatches, st.ProbesSent, st.Responses, st.Batches)
		}
	}
}
