package scan

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"hitlist6/internal/ip6"
	"hitlist6/internal/netmodel"
)

func streamTargets(n int) []ip6.Addr {
	p := ip6.MustParsePrefix("2001:100:a::/64")
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = p.NthAddr(uint64(i))
	}
	return out
}

// TestStreamScanEquivalence: Scan is a wrapper over Stream, and a manual
// Stream consumer reassembling via OrigIndex must reproduce Scan's output
// exactly, for several worker counts and batch sizes.
func TestStreamScanEquivalence(t *testing.T) {
	n := testNet(t)
	targets := append(streamTargets(150),
		ip6.MustParseAddr("2001:100::80"),
		ip6.MustParseAddr("2001:100::53"),
		ip6.MustParseAddr("240e::1"))
	protos := allProtos()

	mk := func(workers, batch int) *Scanner {
		cfg := DefaultConfig(7)
		cfg.LossRate = 0.1
		cfg.Retries = 1
		cfg.Workers = workers
		cfg.BatchSize = batch
		return New(n, cfg)
	}

	base, baseStats, err := mk(1, 4).Scan(context.Background(), targets, protos, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, batch := range []int{1, 7, 1024} {
			s := mk(workers, batch)
			got := make([]Result, len(targets)*len(protos))
			var mu sync.Mutex
			stats, err := s.Stream(context.Background(), targets, protos, 9, func(b *Batch) error {
				mu.Lock()
				defer mu.Unlock()
				for i := range b.Results {
					r := b.Results[i]
					// Retaining sinks deep-copy DNS payloads: the wire
					// buffers recycle with the batch. The DeepEqual
					// against Scan below pins that the wrapper's own
					// deep-copy reproduces the streamed bytes exactly.
					if len(r.DNS) > 0 {
						dns := make([][]byte, len(r.DNS))
						for j, w := range r.DNS {
							dns[j] = append([]byte(nil), w...)
						}
						r.DNS = dns
					}
					got[b.OrigIndex(i)] = r
				}
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("workers=%d batch=%d: streamed results differ from Scan", workers, batch)
			}
			if stats.ProbesSent != baseStats.ProbesSent ||
				stats.Responses != baseStats.Responses ||
				stats.Successes != baseStats.Successes {
				t.Fatalf("workers=%d batch=%d: stats differ: %+v vs %+v", workers, batch, stats, baseStats)
			}
		}
	}
}

// TestStreamShardContract checks the delivery guarantees consumers build
// on: every target in a batch hashes to the batch's shard, same-shard
// batches arrive in Seq order, and full batches hold exactly BatchSize
// results.
func TestStreamShardContract(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(5)
	cfg.Workers = 4
	cfg.BatchSize = 8
	s := New(n, cfg)
	targets := streamTargets(500)

	var mu sync.Mutex
	nextSeq := make(map[int]int)
	total := 0
	_, err := s.Stream(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}, 3, func(b *Batch) error {
		mu.Lock()
		defer mu.Unlock()
		if b.Seq != nextSeq[b.Shard] {
			t.Errorf("shard %d: seq %d, want %d", b.Shard, b.Seq, nextSeq[b.Shard])
		}
		nextSeq[b.Shard]++
		if len(b.Results) == 0 || len(b.Results) > cfg.BatchSize {
			t.Errorf("batch size %d", len(b.Results))
		}
		if b.Stats.Batches != 1 {
			t.Errorf("batch stats batches: %d", b.Stats.Batches)
		}
		for i := range b.Results {
			if ip6.ShardOf(b.Results[i].Target) != b.Shard {
				t.Errorf("target %v in shard %d, canonical %d",
					b.Results[i].Target, b.Shard, ip6.ShardOf(b.Results[i].Target))
			}
			total++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(targets) * 2; total != want {
		t.Errorf("streamed %d results, want %d", total, want)
	}
}

// TestStreamSinkError: a sink error aborts the stream and surfaces.
func TestStreamSinkError(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(5)
	cfg.BatchSize = 4
	s := New(n, cfg)
	boom := errors.New("boom")
	_, err := s.Stream(context.Background(), streamTargets(200), []netmodel.Protocol{netmodel.ICMP}, 3, func(b *Batch) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestStreamCancel: a canceled context stops the stream with ctx.Err().
func TestStreamCancel(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(5)
	cfg.Workers = 1
	s := New(n, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Stream(ctx, streamTargets(5000), allProtos(), 3, func(b *Batch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStreamEmpty: no targets or protocols is a clean no-op.
func TestStreamEmpty(t *testing.T) {
	n := testNet(t)
	s := New(n, DefaultConfig(5))
	st, err := s.Stream(context.Background(), nil, allProtos(), 3, func(b *Batch) error {
		t.Error("sink called for empty stream")
		return nil
	})
	if err != nil || st.ProbesSent != 0 || st.Batches != 0 {
		t.Errorf("empty stream: %+v, %v", st, err)
	}
}

// collectResponsive accumulates per-target success counts from a stream —
// an order-insensitive digest two runs can be compared by.
func collectResponsive(t *testing.T, stream func(Sink) (Stats, error)) (map[ip6.Addr]int, Stats) {
	t.Helper()
	var mu sync.Mutex
	succ := make(map[ip6.Addr]int)
	st, err := stream(func(b *Batch) error {
		mu.Lock()
		defer mu.Unlock()
		for i := range b.Results {
			if b.Results[i].Success {
				succ[b.Results[i].Target]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return succ, st
}

// TestStreamShardedEquivalence: feeding the engine pre-sharded target
// slices must reproduce a flat Stream over the same targets exactly — no
// global concatenation required.
func TestStreamShardedEquivalence(t *testing.T) {
	n := testNet(t)
	targets := append(streamTargets(300),
		ip6.MustParseAddr("2001:100::80"),
		ip6.MustParseAddr("2001:100::53"),
		ip6.MustParseAddr("240e::1"))
	protos := allProtos()
	cfg := DefaultConfig(7)
	cfg.Workers = 4
	cfg.BatchSize = 16
	s := New(n, cfg)

	flat, flatStats := collectResponsive(t, func(sink Sink) (Stats, error) {
		return s.Stream(context.Background(), targets, protos, 9, sink)
	})

	shards := make([][]ip6.Addr, ip6.AddrShards)
	for _, a := range targets {
		sh := ip6.ShardOf(a)
		shards[sh] = append(shards[sh], a)
	}
	sharded, shardedStats := collectResponsive(t, func(sink Sink) (Stats, error) {
		return s.StreamSharded(context.Background(), shards, protos, 9, sink)
	})

	if !reflect.DeepEqual(flat, sharded) {
		t.Error("sharded stream responsive sets differ from flat stream")
	}
	if flatStats.ProbesSent != shardedStats.ProbesSent || flatStats.Successes != shardedStats.Successes {
		t.Errorf("stats differ: %+v vs %+v", flatStats, shardedStats)
	}

	if _, err := s.StreamSharded(context.Background(), make([][]ip6.Addr, 3), protos, 9, func(*Batch) error { return nil }); err == nil {
		t.Error("wrong shard count accepted")
	}
}

// TestSinkQueueBackpressure: with SinkQueueDepth set, a deliberately slow
// sink must still receive every batch exactly once, in per-shard Seq
// order, with outputs identical to the inline path — the queue is a
// throughput knob, not a semantics change.
func TestSinkQueueBackpressure(t *testing.T) {
	n := testNet(t)
	targets := streamTargets(400)
	protos := []netmodel.Protocol{netmodel.ICMP, netmodel.TCP80}

	mk := func(depth int) *Scanner {
		cfg := DefaultConfig(5)
		cfg.Workers = 4
		cfg.BatchSize = 8
		cfg.SinkQueueDepth = depth
		return New(n, cfg)
	}

	inline, inlineStats := collectResponsive(t, func(sink Sink) (Stats, error) {
		return mk(0).Stream(context.Background(), targets, protos, 3, sink)
	})

	s := mk(2)
	nextSeq := make(map[int]int)
	succ := make(map[ip6.Addr]int)
	st, err := s.Stream(context.Background(), targets, protos, 3, func(b *Batch) error {
		// The delivery goroutine is single-threaded — no locking needed,
		// which is itself part of what the queue buys a slow consumer.
		if b.Seq != nextSeq[b.Shard] {
			t.Errorf("shard %d: seq %d, want %d", b.Shard, b.Seq, nextSeq[b.Shard])
		}
		nextSeq[b.Shard]++
		for i := range b.Results {
			if b.Results[i].Success {
				succ[b.Results[i].Target]++
			}
		}
		time.Sleep(100 * time.Microsecond) // deliberately slow consumer
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inline, succ) {
		t.Error("queued delivery changed the responsive sets")
	}
	if st.ProbesSent != inlineStats.ProbesSent || st.Batches != inlineStats.Batches {
		t.Errorf("queued stats differ: %+v vs %+v", st, inlineStats)
	}
}

// TestSinkQueueError: a sink error behind the queue still aborts the
// stream and surfaces from Stream.
func TestSinkQueueError(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(5)
	cfg.BatchSize = 4
	cfg.SinkQueueDepth = 3
	s := New(n, cfg)
	boom := errors.New("boom")
	seen := 0
	_, err := s.Stream(context.Background(), streamTargets(200), []netmodel.Protocol{netmodel.ICMP}, 3, func(b *Batch) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if seen != 2 {
		t.Errorf("sink called %d times after error, want 2", seen)
	}
}

// TestProbeAccountingCountsActualAttempts is the probe-accounting fix: a
// lossless scan with retries configured must charge exactly one probe per
// (target, protocol) — retries that never fired are not counted — and a
// lossy scan must charge strictly between 1× and (1+Retries)× pairs.
func TestProbeAccountingCountsActualAttempts(t *testing.T) {
	n := testNet(t)
	targets := streamTargets(400)
	pairs := uint64(len(targets))

	cfg := DefaultConfig(11)
	cfg.LossRate = 0
	cfg.Retries = 3
	s := New(n, cfg)
	_, st, err := s.Scan(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.ProbesSent != pairs {
		t.Errorf("lossless probes: %d, want %d (old accounting would say %d)",
			st.ProbesSent, pairs, pairs*4)
	}
	if want := float64(pairs) / float64(cfg.RatePPS); st.EstimatedSeconds != want {
		t.Errorf("estimated seconds: %v, want %v", st.EstimatedSeconds, want)
	}

	cfg.LossRate = 0.3
	s = New(n, cfg)
	_, st, err = s.Scan(context.Background(), targets, []netmodel.Protocol{netmodel.ICMP}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.ProbesSent <= pairs || st.ProbesSent >= pairs*uint64(1+cfg.Retries) {
		t.Errorf("lossy probes: %d, want in (%d, %d)", st.ProbesSent, pairs, pairs*4)
	}
}

// TestProbeOneAttempts pins the per-result attempt counter.
func TestProbeOneAttempts(t *testing.T) {
	n := testNet(t)
	cfg := DefaultConfig(1)
	cfg.LossRate = 0
	cfg.Retries = 3
	s := New(n, cfg)
	if r := s.ProbeOne(ip6.MustParseAddr("2001:100::80"), netmodel.ICMP, 5); r.Attempts != 1 {
		t.Errorf("responding host attempts: %d", r.Attempts)
	}
	// A silent target charges the full retry budget: a real scanner
	// cannot tell silence from loss and retransmits every retry.
	if r := s.ProbeOne(ip6.MustParseAddr("2001:100::dead"), netmodel.ICMP, 5); r.Attempts != 4 {
		t.Errorf("silent host attempts: %d, want %d", r.Attempts, 1+cfg.Retries)
	}
}
